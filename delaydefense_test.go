package delaydefense

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/vclock"
)

func openTestDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewSimulated(time.Date(2004, 8, 1, 0, 0, 0, 0, time.UTC))
	}
	db, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestOpenQueryRoundTrip(t *testing.T) {
	db := openTestDB(t, Config{N: 100, Alpha: 1, Beta: 2, Cap: time.Second})
	if _, err := db.Exec(`CREATE TABLE items (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO items VALUES (1, 'hello'), (2, 'world')`); err != nil {
		t.Fatal(err)
	}
	res, stats, err := db.Query("alice", `SELECT v FROM items WHERE id = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "world" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if stats.Delay <= 0 {
		t.Fatal("no delay imposed on cold tuple")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(t.TempDir(), Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestExecBypassesShield(t *testing.T) {
	clk := vclock.NewSimulated(time.Unix(0, 0))
	db := openTestDB(t, Config{N: 10, Alpha: 1, Beta: 1, Cap: time.Hour, Clock: clk})
	db.Exec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	db.Exec(`INSERT INTO t VALUES (1)`)
	if _, err := db.Exec(`SELECT * FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if clk.Slept() != 0 {
		t.Fatal("admin Exec slept")
	}
}

func TestQuoteExtraction(t *testing.T) {
	db := openTestDB(t, Config{N: 20, Alpha: 1, Beta: 1, Cap: time.Second})
	ids := make([]uint64, 20)
	for i := range ids {
		ids[i] = uint64(i)
	}
	if got := db.QuoteExtraction(ids); got != 20*time.Second {
		t.Fatalf("cold extraction quote = %v", got)
	}
}

func TestRegisterAndRateLimitSentinels(t *testing.T) {
	clk := vclock.NewSimulated(time.Unix(0, 0))
	db := openTestDB(t, Config{
		N: 10, Alpha: 1, Beta: 1, Cap: time.Millisecond, Clock: clk,
		QueryRate: 0.001, QueryBurst: 1, RegistrationInterval: time.Hour,
	})
	db.Exec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	db.Exec(`INSERT INTO t VALUES (1)`)
	if err := db.Register("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("b"); !errors.Is(err, ErrRegistrationThrottled) {
		t.Fatalf("err = %v", err)
	}
	db.Query("u", `SELECT * FROM t WHERE id = 1`)
	if _, _, err := db.Query("u", `SELECT * FROM t WHERE id = 1`); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v", err)
	}
}

func TestHandlerServesQueries(t *testing.T) {
	db := openTestDB(t, Config{N: 10, Alpha: 1, Beta: 1, Cap: time.Millisecond})
	db.Exec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
	db.Exec(`INSERT INTO t VALUES (1, 'x')`)
	h, err := db.Handler()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"sql":"SELECT * FROM t WHERE id = 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestUpdateRatePolicyThroughFacade(t *testing.T) {
	clk := vclock.NewSimulated(time.Unix(0, 0))
	db := openTestDB(t, Config{
		Kind: ByUpdateRate, N: 100, Alpha: 1, C: 1, Cap: 10 * time.Second, Clock: clk,
	})
	db.Exec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	for i := 0; i < 100; i++ {
		db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 0)`, i))
	}
	for i := 0; i < 30; i++ {
		if _, _, err := db.Query("w", `UPDATE t SET v = 1 WHERE id = 5`); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	_, hot, _ := db.Query("r", `SELECT * FROM t WHERE id = 5`)
	_, cold, _ := db.Query("r", `SELECT * FROM t WHERE id = 50`)
	if hot.Delay >= cold.Delay {
		t.Fatalf("hot-update %v not below never-updated %v", hot.Delay, cold.Delay)
	}
}

func TestPersistenceThroughFacade(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{N: 10, Alpha: 1, Beta: 1, Cap: time.Second,
		Clock: vclock.NewSimulated(time.Unix(0, 0))}
	db, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Exec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
	db.Exec(`INSERT INTO t VALUES (7, 'persists')`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Exec(`SELECT v FROM t WHERE id = 7`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str != "persists" {
		t.Fatalf("res = %v, %v", res, err)
	}
}
