// Frontdoor: the full HTTP deployment — a shielded server with rate
// limiting, subnet aggregation, and a registration throttle, attacked by
// a robot with many forged addresses on one subnet. The Sybil identities
// share one budget; the robot gets nowhere.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	delaydefense "repro"
	"repro/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "delaydefense-frontdoor-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := delaydefense.Open(dir, delaydefense.Config{
		N: 1000, Alpha: 1.0, Beta: 2.0, Cap: 50 * time.Millisecond,
		Clock:                delaydefense.NewSimulatedClock(time.Now()),
		QueryRate:            1,    // one query per second per principal
		QueryBurst:           5,    // small burst
		SubnetAggregation:    true, // forged addresses in a /24 collapse
		RegistrationInterval: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(`CREATE TABLE users (id INT PRIMARY KEY, email TEXT)`); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i += 250 {
		stmt := "INSERT INTO users VALUES "
		for j := i; j < i+250; j++ {
			if j > i {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'user%d@example.com')", j, j)
		}
		if _, err := db.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}

	h, err := db.Handler()
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	fmt.Printf("front door listening at %s\n\n", ts.URL)

	// A legitimate user asks a few questions.
	alice := server.NewClient(ts.URL, "alice")
	for i := 0; i < 3; i++ {
		resp, err := alice.Query(fmt.Sprintf(`SELECT email FROM users WHERE id = %d`, i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alice: %v (delayed %.1f ms)\n", resp.Rows[0][0], resp.DelayMillis)
	}

	// A robot forges 30 addresses on one /24 and hammers the server.
	fmt.Println("\nrobot attacks with 30 forged addresses on 10.9.8.0/24:")
	granted, denied := 0, 0
	for i := 0; i < 30; i++ {
		bot := server.NewClient(ts.URL, fmt.Sprintf("10.9.8.%d", i+1))
		_, err := bot.Query(fmt.Sprintf(`SELECT * FROM users WHERE id = %d`, 500+i))
		switch {
		case err == nil:
			granted++
		case strings.Contains(err.Error(), "429"):
			denied++
		default:
			log.Fatal(err)
		}
	}
	fmt.Printf("  %d queries served (the shared /24 burst), %d rate-limited\n", granted, denied)

	// Registering fresh identities is throttled too.
	fmt.Println("\nrobot tries to register new accounts:")
	for i := 0; i < 3; i++ {
		c := server.NewClient(ts.URL, fmt.Sprintf("sybil-%d", i))
		if err := c.Register(); err != nil {
			fmt.Printf("  sybil-%d: %v\n", i, err)
		} else {
			fmt.Printf("  sybil-%d: registered\n", i)
		}
	}

	stats, err := alice.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver stats: %d observations over %d distinct tuples\n",
		stats.Observations, stats.DistinctIDs)
}
