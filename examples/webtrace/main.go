// Webtrace: the paper's §4.1 scenario end to end. A Calgary-shaped web
// workload (static Zipf popularity) is replayed through the delay policy
// while the distribution is learned online; afterwards the example
// contrasts the median legitimate delay with the cost of a full
// extraction and with parallel (Sybil) variants of the attack.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/adversary"
	"repro/internal/counters"
	"repro/internal/delay"
	"repro/internal/trace"
)

func main() {
	// A 1/8-scale Calgary-shaped trace keeps the demo under a second.
	const (
		objects  = trace.CalgaryObjects / 8
		requests = trace.CalgaryRequests / 8
		cap      = 10 * time.Second
	)
	tr, err := trace.Synthetic("webtrace", objects, requests, trace.CalgaryAlpha, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d requests over %d objects (Zipf α=%.1f)\n",
		len(tr.Requests), objects, trace.CalgaryAlpha)

	// Learn online, quoting each request's delay before counting it.
	tracker, err := counters.NewDecayed(1) // static workload: keep full history
	if err != nil {
		log.Fatal(err)
	}
	// β tuned so ~90% of ranks sit at the cap, the paper's sweet spot.
	pre, _ := counters.NewDecayed(1)
	for _, id := range tr.Requests {
		pre.Observe(id)
	}
	beta, err := delay.TuneBeta(objects, trace.CalgaryAlpha, pre.MaxCount(), cap, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := delay.NewPopularity(delay.PopularityConfig{
		N: objects, Alpha: trace.CalgaryAlpha, Beta: beta, Cap: cap,
	}, tracker)
	if err != nil {
		log.Fatal(err)
	}

	delays := make([]float64, 0, len(tr.Requests))
	for _, id := range tr.Requests {
		delays = append(delays, pol.Delay(id).Seconds())
		tracker.Observe(id)
	}
	sort.Float64s(delays)
	fmt.Printf("legitimate user delays:  median %.3f ms, p99 %.1f ms\n",
		delays[len(delays)/2]*1000, delays[len(delays)*99/100]*1000)

	// The adversary must fetch everything.
	gate, err := delay.NewGate(pol, noopClock{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]uint64, objects)
	for i := range ids {
		ids[i] = uint64(i)
	}
	seq, err := adversary.Sequential(gate, ids)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential extraction:   %v (%.1f hours, ceiling %.1f hours)\n",
		seq.TotalDelay, seq.TotalDelay.Hours(), (time.Duration(objects) * cap).Hours())

	// Parallel attack with 20 Sybil identities, with and without a
	// registration throttle sized by the §2.4 cost model.
	par, err := adversary.Parallel(gate, ids, 20, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("20-way parallel attack:  wall time %.1f hours (no throttle)\n", par.WallTime.Hours())

	throttle := seq.TotalDelay / 4 // RegistrationIntervalToNeutralize
	best, kStar, err := adversary.OptimalParallel(gate, ids, throttle, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with registration throttle of one identity per %.1f hours:\n", throttle.Hours())
	fmt.Printf("  best attack uses %d identities and still takes %.1f hours (analytic k*=%d)\n",
		best.Identities, best.WallTime.Hours(), kStar)

	// A storefront reselling real user traffic never sees the tail.
	store, err := adversary.Storefront(gate, objects, trace.CalgaryAlpha, len(tr.Requests), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storefront relaying %d user queries covers only %.1f%% of the catalogue\n",
		store.QueriesForwarded, 100*store.Coverage)
}

// noopClock lets the gate quote without sleeping.
type noopClock struct{}

func (noopClock) Now() time.Time                                      { return time.Unix(0, 0) }
func (noopClock) Sleep(_ time.Duration)                               {}
func (noopClock) SleepCtx(ctx context.Context, _ time.Duration) error { return ctx.Err() }
