// Adaptive: the §2.3 sketch made real. When the dynamics of the workload
// are unknown, the shield tracks counts under several decay rates at once
// and serves delays from whichever tracker best predicts live traffic.
// This demo feeds a static phase (no-decay wins) and then a churning
// phase (decay wins) and prints the selector's choice as it flips.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	delaydefense "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "delaydefense-adaptive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const n = 2000
	db, err := delaydefense.Open(dir, delaydefense.Config{
		N:     n,
		Alpha: 1.0,
		Beta:  2.0,
		Cap:   time.Second,
		Clock: delaydefense.NewSimulatedClock(time.Now()),
		// Track under no decay and mild decay simultaneously.
		AdaptiveDecayRates: []float64{1.0, 1.05},
		AdaptiveWarmup:     500,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(`CREATE TABLE articles (id INT PRIMARY KEY, title TEXT)`); err != nil {
		log.Fatal(err)
	}
	for lo := 0; lo < n; lo += 500 {
		stmt := "INSERT INTO articles VALUES "
		for i := lo; i < lo+500; i++ {
			if i > lo {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'article %d')", i, i)
		}
		if _, err := db.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}

	shield := db.Shield()
	query := func(id int) {
		if _, _, err := db.Query("reader", fmt.Sprintf(`SELECT * FROM articles WHERE id = %d`, id)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("phase 1: static workload — a fixed set of evergreen articles")
	for i := 0; i < 4000; i++ {
		query((i * i) % 7)
	}
	fmt.Printf("  selector chose decay rate %.2f (full history wins on static data)\n\n",
		shield.ActiveDecayRate())

	fmt.Println("phase 2: breaking news — popularity churns every few hundred requests")
	for phase := 0; phase < 30; phase++ {
		hot := 100 + (phase*61)%1800
		for i := 0; i < 300; i++ {
			query(hot + i%3)
		}
	}
	fmt.Printf("  selector chose decay rate %.2f (forgetting wins once the workload shifts)\n\n",
		shield.ActiveDecayRate())

	ids, counts := shield.TopK(3)
	fmt.Println("current top articles per the active tracker:")
	for i := range ids {
		fmt.Printf("  #%d  article %4d  (decayed count %.1f)\n", i+1, ids[i], counts[i])
	}
}
