// Quickstart: open a delay-defended database, load a small catalogue,
// and watch the defense learn — popular tuples get cheap, the long tail
// stays expensive, and a full extraction is priced out of reach.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	delaydefense "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "delaydefense-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A simulated clock so the demo finishes instantly; drop it (or pass
	// nil) to impose real delays.
	clock := delaydefense.NewSimulatedClock(time.Now())

	const n = 10_000
	db, err := delaydefense.Open(dir, delaydefense.Config{
		N:     n,                // dataset size the delay formulas use
		Alpha: 1.0,              // assumed workload skew
		Beta:  2.5,              // extraction penalty exponent
		Cap:   10 * time.Second, // dmax: the most any single tuple costs
		Clock: clock,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Load data through the administrative path (no delays).
	if _, err := db.Exec(`CREATE TABLE listings (id INT PRIMARY KEY, city TEXT, price FLOAT)`); err != nil {
		log.Fatal(err)
	}
	for lo := 0; lo < n; lo += 500 {
		stmt := "INSERT INTO listings VALUES "
		for i := lo; i < lo+500; i++ {
			if i > lo {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'city-%d', %d.0)", i, i%100, 100+i%900)
		}
		if _, err := db.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}

	// A brand-new database knows nothing: every query pays the cap.
	_, stats, err := db.Query("alice", `SELECT * FROM listings WHERE id = 42`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold query for tuple 42:   delay %v (the cap — nothing learned yet)\n", stats.Delay)

	// Simulate a legitimate, skewed workload: a handful of hot listings.
	for i := 0; i < 5000; i++ {
		id := (i * i) % 50 // hot head
		if _, _, err := db.Query("alice", fmt.Sprintf(`SELECT * FROM listings WHERE id = %d`, id)); err != nil {
			log.Fatal(err)
		}
	}

	_, stats, err = db.Query("alice", `SELECT * FROM listings WHERE id = 42`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot query for tuple 42:    delay %v (learned popular)\n", stats.Delay)

	_, stats, err = db.Query("alice", `SELECT * FROM listings WHERE id = 9321`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold query for tuple 9321: delay %v (long tail stays expensive)\n", stats.Delay)

	// Price a full extraction without running one.
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	total := db.QuoteExtraction(ids)
	fmt.Printf("\nfull extraction of %d tuples would cost %v (~%.1f hours)\n",
		n, total, total.Hours())
	fmt.Printf("total simulated delay imposed on this session: %v\n", clock.Slept())
}
