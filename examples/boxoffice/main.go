// Boxoffice: the paper's §4.2 scenario — a workload whose popularity
// shifts every week (film releases) — showing why decayed counts matter.
// The same trace is replayed with no decay, mild weekly decay, and
// aggressive weekly decay; decay keeps the median legitimate delay low
// because it lets newly released (newly hot) films climb the popularity
// ranking quickly.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/delay"
	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	b := trace.BoxOffice2002(2002)
	fmt.Printf("synthetic 2002 box office: %d films, %d requests over %d weeks\n\n",
		b.Trace.NumObjects, len(b.Trace.Requests), b.Trace.Weeks)

	// Fig 2 / Fig 3 flavor: annual skew is mild, weekly skew is sharp.
	_, annual := b.TopAnnual(10)
	_, weekly := b.TopWeek(26, 10)
	fmt.Printf("annual top-1/top-10 sales ratio: %5.1f (mild skew)\n", annual[0]/annual[9])
	fmt.Printf("weekly top-1/top-10 sales ratio: %5.1f (sharp skew)\n\n", weekly[0]/weekly[9])

	// β tuned once from the full-history counts.
	pre, err := experimentsLearn(b.Trace)
	if err != nil {
		log.Fatal(err)
	}
	const cap = 10 * time.Second
	beta, err := delay.TuneBeta(b.Trace.NumObjects, 1.0, pre, cap, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("decay rate (applied weekly)   median user delay   adversary delay")
	for _, rate := range []float64{1.0, 1.2, 5.0} {
		res, err := experiments.ReplayPopularity(b.Trace, rate, delay.PopularityConfig{
			N: b.Trace.NumObjects, Alpha: 1.0, Beta: beta, Cap: cap,
		}, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.1f                        %9.2f ms        %6.2f hours\n",
			rate,
			float64(res.MedianDelay)/float64(time.Millisecond),
			res.AdversaryDelay.Hours())
	}
	fmt.Printf("\nadversary ceiling: %.2f hours (%d films × %v cap)\n",
		(time.Duration(b.Trace.NumObjects) * cap).Hours(), b.Trace.NumObjects, cap)
	fmt.Println("decay lowers the median on this shifting workload while the")
	fmt.Println("adversary keeps paying nearly the full ceiling — §2.3 in action.")
}

// experimentsLearn returns fmax (the top film's total request count)
// from a no-decay pre-pass.
func experimentsLearn(tr *trace.Trace) (float64, error) {
	counts := tr.Counts()
	var fmax float64
	for _, c := range counts {
		if float64(c) > fmax {
			fmax = float64(c)
		}
	}
	if fmax == 0 {
		return 0, fmt.Errorf("empty trace")
	}
	return fmax, nil
}
