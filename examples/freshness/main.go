// Freshness: the paper's §3 defense for datasets with *uniform* access
// patterns, where popularity-keyed delay cannot help. Delay is keyed to
// update rate instead: rarely updated tuples are slow to fetch, so by the
// time an extraction robot finishes its pass, most of what it stole has
// already changed.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	delaydefense "repro"
	"repro/internal/adversary"
	"repro/internal/counters"
	"repro/internal/delay"
	"repro/internal/zipf"
)

func main() {
	// Part 1: the shield in update-rate mode, end to end.
	const n = 2000
	clock := delaydefense.NewSimulatedClock(time.Now())
	dir, err := tempDir()
	if err != nil {
		log.Fatal(err)
	}
	db, err := delaydefense.Open(dir, delaydefense.Config{
		Kind:  delaydefense.ByUpdateRate,
		N:     n,
		Alpha: 1.0, // update-rate skew
		C:     2,
		Cap:   10 * time.Second,
		Clock: clock,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(`CREATE TABLE quotes (id INT PRIMARY KEY, price FLOAT)`); err != nil {
		log.Fatal(err)
	}
	for lo := 0; lo < n; lo += 500 {
		stmt := "INSERT INTO quotes VALUES "
		for i := lo; i < lo+500; i++ {
			if i > lo {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, %d.0)", i, i)
		}
		if _, err := db.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}

	// Skewed update traffic: tuple 0 changes constantly, the tail rarely.
	dist, _ := zipf.New(n, 1.0)
	sampler := zipf.NewSampler(dist, 7)
	for i := 0; i < 20000; i++ {
		id := sampler.Next() - 1
		stmt := fmt.Sprintf(`UPDATE quotes SET price = %d.5 WHERE id = %d`, i, id)
		if _, _, err := db.Query("feed", stmt); err != nil {
			log.Fatal(err)
		}
		clock.Advance(50 * time.Millisecond) // 20 updates/sec overall
	}

	_, hot, _ := db.Query("reader", `SELECT * FROM quotes WHERE id = 0`)
	_, cold, _ := db.Query("reader", fmt.Sprintf(`SELECT * FROM quotes WHERE id = %d`, n-1))
	fmt.Printf("constantly-updated tuple: delay %v\n", hot.Delay)
	fmt.Printf("rarely-updated tuple:     delay %v\n\n", cold.Delay)

	// Part 2: the staleness guarantee, measured with the simulator used
	// for the paper's Figs 4–6.
	fmt.Println("extraction under change (100k tuples, uniform queries, Zipf updates):")
	fmt.Println("  update skew   extraction takes   stale when done   Eq 12 bound")
	for _, alpha := range []float64{0.5, 1.0, 2.0} {
		tracker, _ := counters.NewDecayed(1)
		d, _ := zipf.New(100_000, alpha)
		pol, err := delay.NewUpdateRate(delay.UpdateRateConfig{
			N: 100_000, Alpha: alpha, C: 8, Cap: 10 * time.Second,
			Rmax: 1000 * d.Prob(1),
		}, tracker)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := adversary.ExtractUnderChange(pol, 100_000, alpha, 1000, 11)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %9.1f   %13.1f h   %14.0f%%   %10.0f%%\n",
			alpha, rep.TotalDelay.Hours(), 100*rep.StaleFraction,
			100*minf(rep.PredictedStale, 1))
	}
	fmt.Println("\nthe adversary can extract everything — but cannot keep it fresh.")
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func tempDir() (string, error) {
	return os.MkdirTemp("", "delaydefense-freshness-*")
}
