// Package delaydefense is a from-scratch reproduction of "Using Delay to
// Defend Against Database Extraction" (Jayapandian, Noble, Mickens,
// Jagadish; SDM @ VLDB 2004): an embedded relational database whose front
// door prices every tuple retrieval by how legitimate the access pattern
// looks.
//
// Popular tuples are nearly free; the cold long tail that only an
// extraction robot would ask for costs up to a configurable cap per
// tuple. Legitimate, skewed workloads see millisecond median delays while
// copying the whole database takes hours to weeks. A second policy keys
// delay to update rate instead, guaranteeing that an extracted copy is
// largely stale by the time the extraction finishes. Per-identity rate
// limits, subnet aggregation, and a registration throttle blunt parallel
// (Sybil) attacks.
//
// Quick start:
//
//	db, err := delaydefense.Open(dir, delaydefense.Config{
//		N:     100_000,         // dataset size
//		Alpha: 1.0,             // assumed workload skew
//		Beta:  2.0,             // extraction penalty exponent
//		Cap:   10 * time.Second // max delay per tuple
//	})
//	...
//	db.Exec(`CREATE TABLE items (id INT PRIMARY KEY, v TEXT)`) // admin path, no delay
//	res, stats, err := db.Query("alice", `SELECT * FROM items WHERE id = 7`)
//
// The full experiment suite reproducing the paper's Tables 1–5 and
// Figures 1–6 lives in cmd/extractbench and bench_test.go; DESIGN.md maps
// each to its modules and EXPERIMENTS.md records measured-vs-paper
// numbers.
package delaydefense

import (
	"context"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/vclock"
)

// Clock abstracts time for the shield; see NewSimulatedClock.
type Clock = vclock.Clock

// SimulatedClock is a discrete-event clock: sleeps advance it instantly,
// so experiments accumulate week-long adversary delays in microseconds.
type SimulatedClock = vclock.Simulated

// NewSimulatedClock returns a simulated clock starting at epoch. Pass it
// as Config.Clock to run the defense on virtual time.
func NewSimulatedClock(epoch time.Time) *SimulatedClock {
	return vclock.NewSimulated(epoch)
}

// Config parameterizes the shield; see core.Config for field docs.
type Config = core.Config

// DetectConfig parameterizes the extraction detector; assign a pointer
// to Config.Detect to enable it. See detect.Config for field docs.
type DetectConfig = detect.Config

// EscalationPolicy maps estimated extraction coverage to the delay
// multiplier the detector applies; see detect.EscalationPolicy.
type EscalationPolicy = detect.EscalationPolicy

// QueryStats reports the delay imposed on one query.
type QueryStats = core.QueryStats

// Result is a statement result: columns/rows for SELECT, affected count
// and touched keys for writes.
type Result = engine.Result

// PolicyKind selects how delays are keyed.
type PolicyKind = core.PolicyKind

// Policy kinds.
const (
	// ByPopularity keys delay to access popularity (§2 of the paper).
	ByPopularity = core.ByPopularity
	// ByUpdateRate keys delay to update rate (§3), for uniform access
	// patterns over frequently updated data.
	ByUpdateRate = core.ByUpdateRate
)

// Sentinel errors returned by Query and Register.
var (
	ErrRateLimited           = core.ErrRateLimited
	ErrRegistrationThrottled = core.ErrRegistrationThrottled
)

// DB is a delay-defended database: an embedded relational engine plus the
// shield that meters its front door. It is safe for concurrent use.
type DB struct {
	eng    *engine.Database
	shield *core.Shield
}

// EngineOption forwards engine tuning (buffer pool size, I/O cost hooks).
type EngineOption = engine.Option

// WithPoolPages sets the per-table buffer pool capacity in pages.
func WithPoolPages(n int) EngineOption { return engine.WithPoolPages(n) }

// WithWAL enables per-statement write-ahead logging with crash recovery;
// synced additionally fsyncs the log on every commit.
func WithWAL(synced bool) EngineOption { return engine.WithWAL(synced) }

// DefaultWALGroupWindow is the default group-commit accumulation window.
const DefaultWALGroupWindow = engine.DefaultWALGroupWindow

// WithWALGroupWindow sets the WAL group-commit accumulation window: with
// d > 0 concurrent commits coalesce into shared writes and fsyncs; 0
// makes every commit write and sync alone. The default is
// engine.DefaultWALGroupWindow. No effect unless WithWAL is also set.
func WithWALGroupWindow(d time.Duration) EngineOption { return engine.WithWALGroupWindow(d) }

// WithExclusiveWrites restores the legacy table-exclusive write path —
// each mutating statement holds the table lock for its whole duration —
// instead of per-page latches with snapshot reads. An escape hatch for
// A/B measurement, not a recommended mode.
func WithExclusiveWrites() EngineOption { return engine.WithExclusiveWrites() }

// WithPlanCache sets the engine's prepared-statement cache capacity in
// entries; 0 disables it. The default is engine.DefaultPlanCacheEntries.
func WithPlanCache(n int) EngineOption { return engine.WithPlanCache(n) }

// WithScanWorkers caps the goroutines a full table scan may fan out to.
// Zero or negative restores the default (GOMAXPROCS); 1 forces sequential
// scans.
func WithScanWorkers(n int) EngineOption { return engine.WithScanWorkers(n) }

// Open opens (creating if needed) a delay-defended database in dir.
func Open(dir string, cfg Config, opts ...EngineOption) (*DB, error) {
	eng, err := engine.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	shield, err := core.New(eng, cfg)
	if err != nil {
		eng.Close()
		return nil, err
	}
	return &DB{eng: eng, shield: shield}, nil
}

// Query executes sql on behalf of identity through the shield: results
// are delayed according to the policy, the access statistics are updated,
// and rate limits are enforced.
func (d *DB) Query(identity, sql string) (*Result, QueryStats, error) {
	return d.shield.Query(identity, sql)
}

// QueryCtx is Query with cancellation: when ctx is cancelled or its
// deadline passes mid-delay, the call returns promptly with the context's
// error. The attempt is still charged — access observations are recorded
// and the rate-limit token is burned — so cancellation cannot be used to
// probe delays for free.
func (d *DB) QueryCtx(ctx context.Context, identity, sql string) (*Result, QueryStats, error) {
	return d.shield.QueryCtx(ctx, identity, sql)
}

// Metrics returns the shield's instrument registry (counters, gauges and
// the delay histogram); Metrics().Handler() serves it as JSON.
func (d *DB) Metrics() *metrics.Registry { return d.shield.Metrics() }

// Exec executes sql directly against the engine, bypassing the shield.
// It is the administrative path for loading data and schema changes; do
// not expose it to untrusted clients.
func (d *DB) Exec(sql string) (*Result, error) { return d.eng.Exec(sql) }

// ExecScript executes a semicolon-separated statement sequence on the
// administrative path — typically a schema/load file.
func (d *DB) ExecScript(src string) ([]*Result, error) { return d.eng.ExecScript(src) }

// Register admits a new identity through the registration throttle.
func (d *DB) Register(identity string) error { return d.shield.Register(identity) }

// QuoteExtraction prices a full extraction of the given tuple ids under
// the current learned state, without sleeping or perturbing statistics.
func (d *DB) QuoteExtraction(ids []uint64) time.Duration {
	return d.shield.QuoteExtraction(ids)
}

// Shield exposes the underlying shield for advanced inspection
// (trackers, version store, gate).
func (d *DB) Shield() *core.Shield { return d.shield }

// Handler returns an http.Handler serving the shielded query API
// (POST /query, POST /register, GET /stats, GET /metrics, GET /healthz).
func (d *DB) Handler() (http.Handler, error) {
	srv, err := server.New(d.shield)
	if err != nil {
		return nil, err
	}
	return srv.Handler(), nil
}

// HandlerWithDeadline is Handler with a per-request query deadline: a
// query whose policy delay outlives d is cancelled and answered with
// HTTP 504 — still charged. Zero means no deadline.
func (d *DB) HandlerWithDeadline(deadline time.Duration) (http.Handler, error) {
	srv, err := server.New(d.shield, server.WithQueryDeadline(deadline))
	if err != nil {
		return nil, err
	}
	return srv.Handler(), nil
}

// SaveLearnedCounts persists the shield's learned access counts into a
// count table inside the database itself (the paper's design point that
// counts live with the data). Call before Close so a restarted process
// can LoadLearnedCounts instead of relearning — and re-exposing the
// start-up transient.
func (d *DB) SaveLearnedCounts() error {
	store, err := engine.NewCountStore(d.eng, "shield")
	if err != nil {
		return err
	}
	return d.shield.SaveCounts(store)
}

// LoadLearnedCounts restores counts saved by SaveLearnedCounts. Missing
// saved state is not an error; the shield simply starts cold.
func (d *DB) LoadLearnedCounts() error {
	store, err := engine.NewCountStore(d.eng, "shield")
	if err != nil {
		return err
	}
	return d.shield.LoadCounts(store.AllCounts)
}

// Flush persists all dirty pages.
func (d *DB) Flush() error { return d.eng.Flush() }

// Close flushes and closes the database.
func (d *DB) Close() error { return d.eng.Close() }
