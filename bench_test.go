package delaydefense

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices called out in DESIGN.md §5.
// The experiment benchmarks run the same code as cmd/extractbench at a
// reduced scale per iteration; run the command at -scale 1 for the
// paper-scale numbers recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/counters"
	"repro/internal/delay"
	"repro/internal/experiments"
	"repro/internal/ostree"
	"repro/internal/trace"
)

func benchCalgaryParams() experiments.CalgaryParams {
	p := experiments.DefaultCalgaryParams()
	p.Scale = 8
	return p
}

func BenchmarkFig1CalgaryDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(benchCalgaryParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1SyntheticScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table1(benchCalgaryParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2CapSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table2(benchCalgaryParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3CalgaryDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table3(benchCalgaryParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2BoxOfficeAnnual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(experiments.DefaultBoxOfficeParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3BoxOfficeWeek1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(experiments.DefaultBoxOfficeParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4BoxOfficeDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table4(experiments.DefaultBoxOfficeParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDynamicParams() experiments.DynamicParams {
	p := experiments.DefaultDynamicParams()
	p.N = 20_000
	return p
}

func BenchmarkFig4MedianByUpdate(b *testing.B) {
	// Figs 4–6 come from one sweep; each gets its own benchmark so the
	// per-figure cost is visible, at the price of redundant sweeps.
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := experiments.DynamicSweep(benchDynamicParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5AdversaryByUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := experiments.DynamicSweep(benchDynamicParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Staleness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := experiments.DynamicSweep(benchDynamicParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := experiments.DefaultOverheadParams(b.TempDir())
		p.Rows = 3000
		p.Queries = 30
		p.IOCost = 100 * time.Microsecond
		b.StartTimer()
		if _, _, err := experiments.Table5(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSybilAnalysis(b *testing.B) {
	p := experiments.DefaultSybilParams()
	p.Scale = 8
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SybilAnalysis(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorefrontCoverage(b *testing.B) {
	p := experiments.DefaultStorefrontParams()
	p.N /= 8
	p.Queries /= 8
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StorefrontCoverage(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelValidation(b *testing.B) {
	p := experiments.DefaultModelParams()
	p.N = 5000
	p.Requests = 100_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ModelValidation(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// naiveDecayed is the strawman §2.3 warns against: discount every count
// at each access.
type naiveDecayed struct {
	decay  float64
	counts map[uint64]float64
}

func (n *naiveDecayed) observe(id uint64) {
	inv := 1 / n.decay
	for k, v := range n.counts {
		n.counts[k] = v * inv
	}
	n.counts[id]++
}

// BenchmarkAblationDecayInflation measures the paper's inflation trick...
func BenchmarkAblationDecayInflation(b *testing.B) {
	d, err := counters.NewDecayed(1.000001)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(uint64(i % 10000))
	}
}

// ...against the naive per-access rescan it replaces.
func BenchmarkAblationDecayNaiveRescan(b *testing.B) {
	n := &naiveDecayed{decay: 1.000001, counts: make(map[uint64]float64)}
	// Pre-populate so the rescan cost is realistic.
	for i := uint64(0); i < 10000; i++ {
		n.counts[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.observe(uint64(i % 10000))
	}
}

// BenchmarkAblationCountCacheWriteBehind measures count maintenance
// through the §4.4 write-behind cache...
func BenchmarkAblationCountCacheWriteBehind(b *testing.B) {
	store := counters.NewMapStore()
	cache, err := counters.NewCountCache(1024, store)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Add(uint64(i%4096), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ...against synchronous persistence of every count update.
func BenchmarkAblationCountCacheSynchronous(b *testing.B) {
	store := counters.NewMapStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i % 4096)
		v, _, err := store.GetCount(id)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.PutCount(id, v+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSynopsis measures the bounded-memory Gibbons-style
// counting sample...
func BenchmarkAblationSynopsis(b *testing.B) {
	s := counters.NewSynopsis(256, 1.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(i % 100000))
	}
}

// ...against exact per-id counts.
func BenchmarkAblationExactCounts(b *testing.B) {
	d, err := counters.NewDecayed(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ObserveNoDecay(uint64(i % 100000))
	}
}

// BenchmarkAblationRankTree measures O(log n) rank queries on the
// order-statistics treap...
func BenchmarkAblationRankTree(b *testing.B) {
	tr := ostree.New(1)
	for i := uint64(0); i < 50000; i++ {
		tr.Upsert(i, float64(i%997))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Rank(uint64(i % 50000))
	}
}

// ...against recomputing rank by sorting a snapshot of all counts.
func BenchmarkAblationRankFullSort(b *testing.B) {
	counts := make([]float64, 50000)
	for i := range counts {
		counts[i] = float64(i % 997)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % 50000
		snapshot := append([]float64(nil), counts...)
		sort.Sort(sort.Reverse(sort.Float64Slice(snapshot)))
		target := counts[id]
		_ = sort.SearchFloat64s(snapshot, target)
	}
}

// BenchmarkShieldQuery measures the full front-door path (parse, plan,
// index lookup, delay quote, count update) on a warm engine with a
// simulated clock so imposed delays cost nothing.
func BenchmarkShieldQuery(b *testing.B) {
	db := openBenchDB(b)
	queries := make([]string, 512)
	for i := range queries {
		queries[i] = fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, i%1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Query("bench", queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShieldQueryParallel measures front-door throughput under
// concurrent clients.
func BenchmarkShieldQueryParallel(b *testing.B) {
	db := openBenchDB(b)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, i%1000)
			if _, _, err := db.Query("bench", q); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

func openAdaptiveBenchDB(b *testing.B) *DB {
	b.Helper()
	db, err := Open(b.TempDir(), Config{
		N: 1000, Alpha: 1, Beta: 2, Cap: 10 * time.Second,
		Clock:              benchClock{},
		AdaptiveDecayRates: []float64{1, 1.02, 1.05},
		AdaptiveWarmup:     10,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE items (id INT PRIMARY KEY, v TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO items VALUES (%d, 'v')`, i)); err != nil {
			b.Fatal(err)
		}
	}
	// Warm the adaptive selector so quoting happens in steady state.
	for i := 0; i < 200; i++ {
		db.Query("warm", fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, i%50))
	}
	return db
}

// BenchmarkAdaptiveQuoteBatch prices a 1000-tuple extraction in one call:
// the gate pins the active adaptive policy once for the whole batch, so
// the rate-selection lock is taken once per 1000 tuples.
func BenchmarkAdaptiveQuoteBatch(b *testing.B) {
	db := openAdaptiveBenchDB(b)
	ids := make([]uint64, 1000)
	for i := range ids {
		ids[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.QuoteExtraction(ids)
	}
}

// BenchmarkAdaptiveQuotePerTuple prices the same 1000 tuples one call at
// a time — each call re-resolves the active policy, the per-tuple lock
// churn the batch path eliminates. The gap against
// BenchmarkAdaptiveQuoteBatch is the win (normalize by the 1000:1 batch
// ratio when comparing per-op times).
func BenchmarkAdaptiveQuotePerTuple(b *testing.B) {
	db := openAdaptiveBenchDB(b)
	one := make([]uint64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for id := uint64(0); id < 1000; id++ {
			one[0] = id
			_ = db.QuoteExtraction(one)
		}
	}
}

// BenchmarkShieldQueryParallelScan measures front-door throughput for
// range scans returning 10/100/1000 tuples under concurrent clients —
// the workload the batch quote/observe path and the price cache exist
// for. cache=off runs the batch path against the tracker every time;
// cache=on adds a price cache with a bounded epoch lag (stale prices for
// hot tuples stay near zero, see DESIGN.md). Before batching, every
// tuple took the tracker mutex twice, so these collapsed onto one lock.
func BenchmarkShieldQueryParallelScan(b *testing.B) {
	for _, tuples := range []int{10, 100, 1000} {
		for _, cached := range []bool{false, true} {
			name := fmt.Sprintf("tuples=%d/cache=off", tuples)
			if cached {
				name = fmt.Sprintf("tuples=%d/cache=on", tuples)
			}
			b.Run(name, func(b *testing.B) {
				db := openBenchDBCfg(b, func(cfg *Config) {
					if cached {
						cfg.PriceCacheSize = 4096
						// Budget of tracker mutations a served price may
						// trail by; ~1k-tuple queries mutate 1k epochs, so
						// this lets prices survive a few hundred queries.
						cfg.PriceCacheEpochLag = 1 << 20
					}
				})
				q := fmt.Sprintf(`SELECT * FROM items WHERE id < %d`, tuples)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, _, err := db.Query("bench", q); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkShieldQueryDetect compares the front-door scan path with the
// extraction detector off and on (`make bench-detect`). detect=off is
// the zero-overhead baseline (no detector is constructed — a single nil
// check per query); detect=on adds one sharded sketch update per query:
// two O(1) sketch folds per tuple plus one shard lock round-trip. The
// grace threshold is set high enough that the bench principal never
// escalates, so the numbers isolate observation cost from surcharges.
func BenchmarkShieldQueryDetect(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run("tuples=1000/detect="+mode, func(b *testing.B) {
			db := openBenchDBCfg(b, func(cfg *Config) {
				if mode == "on" {
					cfg.Detect = &DetectConfig{
						Policy: EscalationPolicy{Grace: 1.0, Cap: 64},
					}
				}
			})
			q := `SELECT * FROM items WHERE id < 1000`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Query("bench", q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdaptiveObserveBatch is the regression benchmark for the
// adaptive observe path: a 100-tuple scan is charged as ONE entry into
// the selector's serialization section (verified below), where the
// pre-batching code took the lock once per tuple. ns/op creeping toward
// the per-tuple era is the regression signal.
func BenchmarkAdaptiveObserveBatch(b *testing.B) {
	db := openAdaptiveBenchDB(b)
	base := db.Shield().ObserveLockAcquisitions()
	q := `SELECT * FROM items WHERE id < 100`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Query("bench", q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := db.Shield().ObserveLockAcquisitions() - base; got != int64(b.N) {
		b.Fatalf("%d queries took %d observe lock acquisitions; want one per query", b.N, got)
	}
}

// BenchmarkEngineSelect measures the bare engine point lookup for
// comparison with BenchmarkShieldQuery — the per-query cost of the
// defense is the difference.
func BenchmarkEngineSelect(b *testing.B) {
	db := openBenchDB(b)
	queries := make([]string, 512)
	for i := range queries {
		queries[i] = fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, i%1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

func openBenchDB(b *testing.B) *DB {
	return openBenchDBCfg(b, nil)
}

func openBenchDBCfg(b *testing.B, mutate func(*Config)) *DB {
	b.Helper()
	cfg := Config{
		N: 1000, Alpha: 1, Beta: 2, Cap: 10 * time.Second,
		Clock: benchClock{},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	db, err := Open(b.TempDir(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE items (id INT PRIMARY KEY, v TEXT)`); err != nil {
		b.Fatal(err)
	}
	for lo := 0; lo < 1000; lo += 250 {
		stmt := "INSERT INTO items VALUES "
		for i := lo; i < lo+250; i++ {
			if i > lo {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'value-%d')", i, i)
		}
		if _, err := db.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// benchClock never sleeps, so benchmarks measure mechanism cost only.
type benchClock struct{}

func (benchClock) Now() time.Time                                      { return time.Unix(0, 0) }
func (benchClock) Sleep(_ time.Duration)                               {}
func (benchClock) SleepCtx(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// Replay benchmark: the §2.3 learning path at trace speed.
func BenchmarkTraceReplayLearning(b *testing.B) {
	tr, err := trace.Synthetic("bench", 5000, 100000, 1.5, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := delay.PopularityConfig{N: 5000, Alpha: 1.5, Beta: 2, Cap: 10 * time.Second}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ReplayPopularity(tr, 1.000001, cfg, false); err != nil {
			b.Fatal(err)
		}
	}
}
