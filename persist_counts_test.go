package delaydefense

import (
	"fmt"
	"testing"
	"time"
)

func TestLearnedCountsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{N: 100, Alpha: 1, Beta: 2, Cap: 10 * time.Second,
		Clock: NewSimulatedClock(time.Unix(0, 0))}
	db, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Exec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	for i := 0; i < 100; i++ {
		db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	// Learn: tuple 7 is hot.
	for i := 0; i < 500; i++ {
		if _, _, err := db.Query("u", `SELECT * FROM t WHERE id = 7`); err != nil {
			t.Fatal(err)
		}
	}
	_, hotBefore, _ := db.Query("u", `SELECT * FROM t WHERE id = 7`)
	if hotBefore.Delay >= time.Second {
		t.Fatalf("hot delay before restart = %v", hotBefore.Delay)
	}
	if err := db.SaveLearnedCounts(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: without loading, the tuple would be cold (cap). With
	// LoadLearnedCounts it stays cheap.
	db2, err := Open(dir, Config{N: 100, Alpha: 1, Beta: 2, Cap: 10 * time.Second,
		Clock: NewSimulatedClock(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.LoadLearnedCounts(); err != nil {
		t.Fatal(err)
	}
	_, hotAfter, err := db2.Query("u", `SELECT * FROM t WHERE id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if hotAfter.Delay >= time.Second {
		t.Fatalf("hot tuple cold after restart: %v", hotAfter.Delay)
	}
	// A never-seen tuple still pays the cap.
	_, cold, _ := db2.Query("u", `SELECT * FROM t WHERE id = 99`)
	if cold.Delay != 10*time.Second {
		t.Fatalf("cold delay = %v", cold.Delay)
	}
}

func TestLoadLearnedCountsColdStartIsFine(t *testing.T) {
	db := openTestDB(t, Config{N: 10, Alpha: 1, Beta: 1, Cap: time.Second})
	if err := db.LoadLearnedCounts(); err != nil {
		t.Fatal(err)
	}
	if got := db.Shield().Tracker().Len(); got != 0 {
		t.Fatalf("tracker len = %d after empty load", got)
	}
}

// TestSaveCountsCrashAtomic is the snapshot-atomicity regression: saving
// a smaller snapshot over a larger one must clear and rewrite the count
// table under a single WAL commit, so a crash right after the save
// recovers exactly the new snapshot — never a merge of old and new rows
// that would resurrect counts for tuples the tracker has since dropped.
func TestSaveCountsCrashAtomic(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{N: 100, Alpha: 1, Beta: 1, Cap: time.Second,
		Clock: NewSimulatedClock(time.Unix(0, 0))}
	db, err := Open(dir, cfg, WithWAL(false))
	if err != nil {
		t.Fatal(err)
	}
	db.Exec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	for i := 0; i < 10; i++ {
		db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	// First snapshot: five tracked tuples.
	for id := 0; id < 5; id++ {
		for i := 0; i < 3; i++ {
			if _, _, err := db.Query("u", fmt.Sprintf(`SELECT * FROM t WHERE id = %d`, id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.SaveLearnedCounts(); err != nil {
		t.Fatal(err)
	}
	// Shrink the tracker: deleting evicts the tuples from it.
	for id := 2; id < 5; id++ {
		if _, _, err := db.Query("u", fmt.Sprintf(`DELETE FROM t WHERE id = %d`, id)); err != nil {
			t.Fatal(err)
		}
	}
	// Second, smaller snapshot — then crash (no Close, no flush): only the
	// WAL carries the overwrite.
	if err := db.SaveLearnedCounts(); err != nil {
		t.Fatal(err)
	}
	db = nil

	db2, err := Open(dir, cfg, WithWAL(false))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.LoadLearnedCounts(); err != nil {
		t.Fatal(err)
	}
	tr := db2.Shield().Tracker()
	if got := tr.Len(); got != 2 {
		t.Fatalf("recovered %d tracked tuples, want exactly the 2 from the last snapshot", got)
	}
	for id := uint64(0); id < 2; id++ {
		if tr.Count(id) != 3 {
			t.Fatalf("count(%d) = %v, want 3", id, tr.Count(id))
		}
	}
	for id := uint64(2); id < 5; id++ {
		if tr.Count(id) != 0 {
			t.Fatalf("stale row for deleted tuple %d resurrected: count = %v", id, tr.Count(id))
		}
	}
}

func TestLearnedCountsAdaptiveRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{N: 50, Alpha: 1, Beta: 1, Cap: time.Second,
		Clock:              NewSimulatedClock(time.Unix(0, 0)),
		AdaptiveDecayRates: []float64{1, 1.05}}
	db, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Exec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	db.Exec(`INSERT INTO t VALUES (1), (2)`)
	for i := 0; i < 50; i++ {
		db.Query("u", `SELECT * FROM t WHERE id = 1`)
	}
	if err := db.SaveLearnedCounts(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.LoadLearnedCounts(); err != nil {
		t.Fatal(err)
	}
	// Every adaptive tracker was seeded.
	if db2.Shield().Tracker().Count(1) != 50 {
		t.Fatalf("imported count = %v", db2.Shield().Tracker().Count(1))
	}
}
