package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/server"
	"repro/internal/sqlmini"
)

// This file is the front-door merge executor: a multi-partition scan or
// aggregate fans to every owner shard concurrently — each scanning its
// ~1/P slice with its own parallel scan executor — and the partial
// results recombine here into exactly the response one shard holding
// everything would have produced. Three merge shapes:
//
//   - ORDER BY: each shard returns its slice already sorted (with the
//     sort column injected into the projection when the client did not
//     select it), and the executor k-way merges the sorted streams,
//     stripping the injected column before relay.
//   - Aggregates: the statement is rewritten into mergeable partials
//     (sqlmini.PartialAggregates) and the partials combine — counts and
//     sums add, AVG divides summed sums by summed counts, MIN/MAX take
//     the extreme over shards whose slice matched at least one row.
//   - LIMIT without ORDER BY: the fan-out stops as soon as enough rows
//     arrived — the shared context cancels outstanding shard RPCs, so a
//     LIMIT 10 against four shards costs roughly the fastest shard, not
//     the slowest.
//
// Error paths cancel the same way: the first shard error (or transport
// failure) aborts the remaining RPCs and is relayed (or 503s) at once.

// shardReply is one shard's answer to a fanned statement.
type shardReply struct {
	node   int
	status int
	ct     string
	resp   server.QueryResponse
	raw    []byte // body of a non-200 answer, relayed verbatim
	err    error  // transport failure (status 0) or 200-body decode failure
}

// fanStatements sends sqlFor(node) to each target concurrently,
// returning a channel carrying exactly one reply per target. Identity
// and client address are captured as strings before the goroutines
// start: with LIMIT early-cancel the handler can return while laggard
// RPCs still run, after which req belongs to the http server again.
func (r *Router) fanStatements(ctx context.Context, req *http.Request, targets []int, sqlFor func(int) string) <-chan shardReply {
	id := req.Header.Get("X-Identity")
	addr := req.RemoteAddr
	ch := make(chan shardReply, len(targets))
	for _, i := range targets {
		go func(i int) {
			body, err := json.Marshal(server.QueryRequest{SQL: sqlFor(i)})
			if err != nil {
				ch <- shardReply{node: i, err: err}
				return
			}
			ch <- r.shardQuery(ctx, i, body, id, addr)
		}(i)
	}
	return ch
}

// shardQuery runs one fanned RPC. It bypasses Node.do for one reason:
// do latches a node down on any transport error, but a scatter that
// cancelled its laggards on purpose (LIMIT satisfied, or another shard
// already errored) must not mark healthy shards dead for obeying the
// cancellation.
func (r *Router) shardQuery(ctx context.Context, node int, body []byte, id, addr string) shardReply {
	n := r.nodes[node]
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+"/query", bytes.NewReader(body))
	if err != nil {
		return shardReply{node: node, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("X-Identity", id)
	}
	if addr != "" {
		req.Header.Set("X-Forwarded-For", addr)
	}
	n.inflight.Add(1)
	var resp *http.Response
	if n.local != nil {
		resp, err = n.local.RoundTrip(req)
	} else {
		resp, err = n.http.Do(req)
	}
	n.inflight.Add(-1)
	if err != nil {
		if ctx.Err() == nil {
			n.down.Store(true)
			r.peerErrors.Inc()
			r.syncPeerDown()
		}
		return shardReply{node: node, err: err}
	}
	defer resp.Body.Close()
	out := shardReply{node: node, status: resp.StatusCode, ct: resp.Header.Get("Content-Type")}
	if resp.StatusCode == http.StatusOK {
		if derr := json.NewDecoder(resp.Body).Decode(&out.resp); derr != nil && ctx.Err() == nil {
			out.err = fmt.Errorf("shard %s: decoding response: %v", n.name, derr)
		}
	} else {
		out.raw, _ = io.ReadAll(resp.Body)
	}
	return out
}

// relayRaw copies a shard's non-200 answer to the client verbatim.
func relayRaw(w http.ResponseWriter, rep shardReply) {
	if rep.ct != "" {
		w.Header().Set("Content-Type", rep.ct)
	}
	w.WriteHeader(rep.status)
	w.Write(rep.raw)
}

// mergeSpec is the merge plan derived from the statement shape.
type mergeSpec struct {
	// aggs/src: original aggregate list and, per aggregate, the indices
	// of its partials in the rewritten shard statement.
	aggs []sqlmini.Aggregate
	src  [][]int
	// order + orderIdx: merge column. orderIdx -1 means resolve by name
	// against the shard response columns (SELECT *).
	order    *sqlmini.OrderBy
	orderIdx int
	// strip: the order column was injected into the shard projection
	// and must come back off before relay.
	strip bool
	limit int
	// earlyCancel: plain LIMIT scan — stop collecting (and cancel the
	// laggards) the moment enough rows arrived.
	earlyCancel bool
}

// scatterRead fans a multi-partition SELECT to every owner shard and
// merges the partials.
func (r *Router) scatterRead(w http.ResponseWriter, req *http.Request, pm *PartitionMap, sel *sqlmini.Select, sql string) {
	targets := pm.ownerSet()
	for _, i := range targets {
		if !r.nodes[i].readable() {
			// Owners hold the only copy of their slice: no shard can
			// stand in, so a missing owner is a missing partition.
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Errorf("partition owner %s unavailable", r.nodes[i].name))
			return
		}
	}

	spec := mergeSpec{limit: sel.Limit, orderIdx: -1}
	shardSQL := sql
	switch {
	case len(sel.Aggregates) > 0:
		partials, src := sqlmini.PartialAggregates(sel.Aggregates)
		spec.aggs, spec.src = sel.Aggregates, src
		shardSQL = sqlmini.Render(&sqlmini.Select{
			Table:      sel.Table,
			Aggregates: partials,
			Where:      sel.Where,
			Order:      sel.Order,
			Limit:      sel.Limit,
		})
	case sel.Order != nil:
		spec.order = sel.Order
		if len(sel.Columns) > 0 {
			idx := -1
			for i, c := range sel.Columns {
				if strings.EqualFold(c, sel.Order.Column) {
					idx = i
					break
				}
			}
			if idx >= 0 {
				spec.orderIdx = idx
			} else {
				// Inject the sort column so the merge can see it; the
				// shard sorts on the full row either way.
				cols := append(append([]string(nil), sel.Columns...), sel.Order.Column)
				spec.orderIdx = len(sel.Columns)
				spec.strip = true
				shardSQL = sqlmini.Render(&sqlmini.Select{
					Table:   sel.Table,
					Columns: cols,
					Where:   sel.Where,
					Order:   sel.Order,
					Limit:   sel.Limit,
				})
			}
		}
	default:
		spec.earlyCancel = sel.Limit >= 0
	}

	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	ch := r.fanStatements(ctx, req, targets, func(int) string { return shardSQL })

	replies := make([]shardReply, 0, len(targets))
	rows := 0
	for range targets {
		rep := <-ch
		if rep.err != nil {
			cancel()
			if rep.status == http.StatusOK {
				writeErr(w, http.StatusBadGateway, rep.err)
			} else {
				writeErr(w, http.StatusServiceUnavailable,
					fmt.Errorf("partition owner %s unreachable: %v", r.nodes[rep.node].name, rep.err))
			}
			return
		}
		if rep.status != http.StatusOK {
			cancel()
			relayRaw(w, rep)
			return
		}
		replies = append(replies, rep)
		if spec.earlyCancel {
			rows += len(rep.resp.Rows)
			if rows >= spec.limit {
				cancel()
				break
			}
		}
	}
	if r.pmap.Load() != pm {
		r.writePartitionStale(w)
		return
	}
	out, err := mergeReplies(replies, &spec)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// mergeReplies recombines per-shard partial results per the spec.
func mergeReplies(replies []shardReply, spec *mergeSpec) (*server.QueryResponse, error) {
	// Stable order: merge in node order, not arrival order.
	sortRepliesByNode(replies)
	out := &server.QueryResponse{Rows: [][]string{}}
	for _, rep := range replies {
		if rep.resp.DelayMillis > out.DelayMillis {
			out.DelayMillis = rep.resp.DelayMillis
		}
	}
	if len(spec.aggs) > 0 {
		return mergeAggregates(replies, spec, out)
	}
	if len(replies) == 0 {
		return out, nil
	}
	out.Columns = replies[0].resp.Columns
	if spec.order != nil {
		idx := spec.orderIdx
		if idx < 0 {
			for i, c := range out.Columns {
				if strings.EqualFold(c, spec.order.Column) {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("order column %q missing from shard response", spec.order.Column)
			}
		}
		out.Rows = mergeOrdered(replies, idx, spec.order.Desc, spec.limit)
	} else {
		for _, rep := range replies {
			out.Rows = append(out.Rows, rep.resp.Rows...)
		}
		if spec.limit >= 0 && len(out.Rows) > spec.limit {
			out.Rows = out.Rows[:spec.limit]
		}
	}
	if spec.strip {
		out.Columns = out.Columns[:len(out.Columns)-1]
		for i, row := range out.Rows {
			out.Rows[i] = row[:len(row)-1]
		}
	}
	return out, nil
}

func sortRepliesByNode(replies []shardReply) {
	for i := 1; i < len(replies); i++ {
		for j := i; j > 0 && replies[j].node < replies[j-1].node; j-- {
			replies[j], replies[j-1] = replies[j-1], replies[j]
		}
	}
}

// mergeOrdered k-way merges per-shard streams that are each already
// sorted on column idx. Ties break toward the lower node index, so the
// merged order is deterministic.
func mergeOrdered(replies []shardReply, idx int, desc bool, limit int) [][]string {
	total := 0
	for _, rep := range replies {
		total += len(rep.resp.Rows)
	}
	if limit >= 0 && limit < total {
		total = limit
	}
	out := make([][]string, 0, total)
	cursors := make([]int, len(replies))
	for len(out) < total || limit < 0 {
		best := -1
		for j := range replies {
			if cursors[j] >= len(replies[j].resp.Rows) {
				continue
			}
			if best < 0 {
				best = j
				continue
			}
			c := compareCell(replies[j].resp.Rows[cursors[j]][idx], replies[best].resp.Rows[cursors[best]][idx])
			if desc {
				c = -c
			}
			if c < 0 {
				best = j
			}
		}
		if best < 0 {
			break
		}
		out = append(out, replies[best].resp.Rows[cursors[best]])
		cursors[best]++
		if limit >= 0 && len(out) == limit {
			break
		}
	}
	return out
}

// compareCell orders two stringified cells the way the engine orders
// the values behind them: as integers when both parse exactly (int64
// beyond float53 must not misorder), as floats when both are numeric,
// and as strings otherwise.
func compareCell(a, b string) int {
	if ai, aerr := strconv.ParseInt(a, 10, 64); aerr == nil {
		if bi, berr := strconv.ParseInt(b, 10, 64); berr == nil {
			switch {
			case ai < bi:
				return -1
			case ai > bi:
				return 1
			}
			return 0
		}
	}
	if af, aerr := strconv.ParseFloat(a, 64); aerr == nil {
		if bf, berr := strconv.ParseFloat(b, 64); berr == nil {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
			return 0
		}
	}
	return strings.Compare(a, b)
}

// mergeAggregates combines shard-local partials into the final
// aggregate row, labeled exactly as a single node would label it.
func mergeAggregates(replies []shardReply, spec *mergeSpec, out *server.QueryResponse) (*server.QueryResponse, error) {
	out.Columns = make([]string, len(spec.aggs))
	for i, a := range spec.aggs {
		out.Columns[i] = sqlmini.AggregateName(a)
	}
	for _, rep := range replies {
		if len(rep.resp.Rows) == 0 {
			// LIMIT 0 on an aggregate yields no row; every shard ran
			// the same statement, so mirror it.
			return out, nil
		}
		if len(rep.resp.Rows) != 1 {
			return nil, fmt.Errorf("aggregate partial with %d rows from node %d", len(rep.resp.Rows), rep.node)
		}
	}
	cell := func(rep shardReply, part int) string {
		return rep.resp.Rows[0][part]
	}
	row := make([]string, len(spec.aggs))
	for i, a := range spec.aggs {
		parts := spec.src[i]
		switch a.Func {
		case sqlmini.AggCount:
			var total int64
			for _, rep := range replies {
				v, err := strconv.ParseInt(cell(rep, parts[0]), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad COUNT partial %q from node %d", cell(rep, parts[0]), rep.node)
				}
				total += v
			}
			row[i] = strconv.FormatInt(total, 10)
		case sqlmini.AggSum, sqlmini.AggAvg:
			var sum float64
			var count int64
			for _, rep := range replies {
				s, err := strconv.ParseFloat(cell(rep, parts[0]), 64)
				if err != nil {
					return nil, fmt.Errorf("bad %s partial %q from node %d", a.Func, cell(rep, parts[0]), rep.node)
				}
				sum += s
				if a.Func == sqlmini.AggAvg {
					c, err := strconv.ParseInt(cell(rep, parts[1]), 10, 64)
					if err != nil {
						return nil, fmt.Errorf("bad COUNT partial %q from node %d", cell(rep, parts[1]), rep.node)
					}
					count += c
				}
			}
			if a.Func == sqlmini.AggAvg {
				if count == 0 {
					row[i] = "0"
				} else {
					row[i] = strconv.FormatFloat(sum/float64(count), 'g', -1, 64)
				}
			} else {
				row[i] = strconv.FormatFloat(sum, 'g', -1, 64)
			}
		case sqlmini.AggMin, sqlmini.AggMax:
			// A shard whose slice matched no rows reports the engine's
			// empty-aggregate zero; the paired COUNT partial filters it
			// out of the global extreme.
			best := ""
			seen := false
			for _, rep := range replies {
				c, err := strconv.ParseInt(cell(rep, parts[1]), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad COUNT partial %q from node %d", cell(rep, parts[1]), rep.node)
				}
				if c == 0 {
					continue
				}
				v := cell(rep, parts[0])
				if !seen {
					best, seen = v, true
					continue
				}
				cmp := compareCell(v, best)
				if (a.Func == sqlmini.AggMin && cmp < 0) || (a.Func == sqlmini.AggMax && cmp > 0) {
					best = v
				}
			}
			if !seen {
				best = "0" // the engine's empty-aggregate answer
			}
			row[i] = best
		default:
			return nil, fmt.Errorf("unmergeable aggregate %v", a.Func)
		}
	}
	out.Rows = [][]string{row}
	return out, nil
}

// scatterWrite applies a predicate write (or a split INSERT's slices)
// on every target owner concurrently and acks the sum of the per-shard
// effects. No router-wide ordering lock: partitioned shards hold
// disjoint rows, so cross-shard apply order cannot diverge a row —
// every interleaving of two scatter writes is some serial order per
// row. Unlike reads, an error does not cancel the laggards: a write
// already in flight on another shard will land regardless, so the
// honest answer reports after every shard has spoken. A transport
// failure (or a shard error alongside other shards' successes) leaves
// the statement partially applied; the 503/relayed error tells the
// client the write did not fully commit, and re-issuing it is safe for
// the idempotent statements the grammar has (INSERT re-apply errors on
// the duplicate key; UPDATE/DELETE re-apply is a no-op).
func (r *Router) scatterWrite(w http.ResponseWriter, req *http.Request, pm *PartitionMap, targets []int, sqlFor func(int) string) {
	for _, i := range targets {
		// down excludes; resync does not — writes-only is exactly what
		// the resync latch means, and the owner has the only copy.
		if r.nodes[i].down.Load() {
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Errorf("partition owner %s unavailable", r.nodes[i].name))
			return
		}
	}
	if r.pmap.Load() != pm {
		r.writePartitionStale(w)
		return
	}
	ch := r.fanStatements(req.Context(), req, targets, sqlFor)
	replies := make([]shardReply, 0, len(targets))
	for range targets {
		replies = append(replies, <-ch)
	}
	sortRepliesByNode(replies)
	out := server.QueryResponse{}
	for _, rep := range replies {
		if rep.err != nil {
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Errorf("partition owner %s unreachable; write may be partially applied", r.nodes[rep.node].name))
			return
		}
		if rep.status != http.StatusOK {
			relayRaw(w, rep)
			return
		}
		out.Affected += rep.resp.Affected
		if rep.resp.DelayMillis > out.DelayMillis {
			out.DelayMillis = rep.resp.DelayMillis
		}
	}
	writeJSON(w, http.StatusOK, &out)
}
