package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/sqlmini"
)

// This file is the front-door merge executor: a multi-partition scan or
// aggregate fans to one live replica per partition — each leg carrying
// a partition filter naming exactly the partitions it answers for, so
// replicated copies and migration leftovers can never double into the
// result — and the partial results recombine here into exactly the
// response one shard holding everything would have produced. Three
// merge shapes:
//
//   - ORDER BY: each shard returns its slice already sorted (with the
//     sort column injected into the projection when the client did not
//     select it), and the executor k-way merges the sorted streams,
//     stripping the injected column before relay.
//   - Aggregates: the statement is rewritten into mergeable partials
//     (sqlmini.PartialAggregates) and the partials combine — counts and
//     sums add, AVG divides summed sums by summed counts, MIN/MAX take
//     the extreme over shards whose slice matched at least one row.
//   - LIMIT without ORDER BY: the fan-out stops as soon as enough rows
//     arrived — the shared context cancels outstanding shard RPCs, so a
//     LIMIT 10 against four shards costs roughly the fastest shard, not
//     the slowest.
//
// A failed leg (transport error, truncated body, shard 5xx) does not
// fail the scan when R > 1: its partitions re-cover onto the surviving
// replicas and retry with jittered backoff, bounded by readRetryRounds.
// Deterministic shard rejections (4xx) relay immediately.

// shardReply is one shard's answer to a fanned statement.
type shardReply struct {
	node   int
	status int
	ct     string
	resp   server.QueryResponse
	raw    []byte // body of a non-200 answer, relayed verbatim
	err    error  // transport failure (status 0) or 200-body decode failure
}

// fanStatements sends reqFor(node) to each target concurrently,
// returning a channel carrying exactly one reply per target. Identity
// and client address are captured as strings before the goroutines
// start: with LIMIT early-cancel the handler can return while laggard
// RPCs still run, after which req belongs to the http server again.
func (r *Router) fanStatements(ctx context.Context, req *http.Request, targets []int, reqFor func(int) server.QueryRequest) <-chan shardReply {
	id := req.Header.Get("X-Identity")
	addr := req.RemoteAddr
	ch := make(chan shardReply, len(targets))
	for _, i := range targets {
		go func(i int) {
			body, err := json.Marshal(reqFor(i))
			if err != nil {
				ch <- shardReply{node: i, err: err}
				return
			}
			ch <- r.shardQuery(ctx, i, body, id, addr)
		}(i)
	}
	return ch
}

// shardQuery runs one fanned RPC. It bypasses Node.do for one reason:
// do latches a node down on any transport error, but a scatter that
// cancelled its laggards on purpose (LIMIT satisfied, or another shard
// already errored) must not mark healthy shards dead for obeying the
// cancellation. The RPC carries the configured per-shard deadline; a
// shard that exceeds it counts as a peer failure (down latch plus the
// timeout counter) — the scatter retries its partitions elsewhere
// instead of pinning the router's in-flight slots.
func (r *Router) shardQuery(ctx context.Context, node int, body []byte, id, addr string) shardReply {
	n := r.nodes[node]
	rctx := ctx
	var cancel context.CancelFunc
	if d := r.cfg.ShardTimeout; d > 0 {
		rctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, n.base+"/query", bytes.NewReader(body))
	if err != nil {
		return shardReply{node: node, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("X-Identity", id)
	}
	if addr != "" {
		req.Header.Set("X-Forwarded-For", addr)
	}
	truncate := -1
	if fault.Enabled() {
		if k, ferr := fault.CheckWrite(fault.ClusterRPC, rpcBodyCap); ferr != nil {
			if k <= 0 {
				err = ferr // dropped before the wire
			} else {
				truncate = k // delivered, response cut short
			}
		}
	}
	n.inflight.Add(1)
	var resp *http.Response
	if err == nil {
		if n.local != nil {
			resp, err = n.local.RoundTrip(req)
		} else {
			resp, err = n.http.Do(req)
		}
	}
	n.inflight.Add(-1)
	if err != nil {
		if ctx.Err() == nil { // the scatter did not cancel this leg on purpose
			if rctx.Err() != nil {
				r.rpcTimeouts.Inc()
			}
			n.latchDown()
			r.peerErrors.Inc()
			r.syncPeerDown()
		}
		return shardReply{node: node, err: err}
	}
	if truncate >= 0 {
		resp.Body = &truncatedBody{r: io.LimitReader(resp.Body, int64(truncate)), c: resp.Body}
	}
	defer resp.Body.Close()
	out := shardReply{node: node, status: resp.StatusCode, ct: resp.Header.Get("Content-Type")}
	if resp.StatusCode == http.StatusOK {
		if derr := json.NewDecoder(resp.Body).Decode(&out.resp); derr != nil && ctx.Err() == nil {
			out.err = fmt.Errorf("shard %s: decoding response: %v", n.name, derr)
		}
	} else {
		out.raw, _ = io.ReadAll(resp.Body)
	}
	return out
}

// relayRaw copies a shard's non-200 answer to the client verbatim.
func relayRaw(w http.ResponseWriter, rep shardReply) {
	if rep.ct != "" {
		w.Header().Set("Content-Type", rep.ct)
	}
	w.WriteHeader(rep.status)
	w.Write(rep.raw)
}

// mergeSpec is the merge plan derived from the statement shape.
type mergeSpec struct {
	// aggs/src: original aggregate list and, per aggregate, the indices
	// of its partials in the rewritten shard statement.
	aggs []sqlmini.Aggregate
	src  [][]int
	// order + orderIdx: merge column. orderIdx -1 means resolve by name
	// against the shard response columns (SELECT *).
	order    *sqlmini.OrderBy
	orderIdx int
	// strip: the order column was injected into the shard projection
	// and must come back off before relay.
	strip bool
	limit int
	// earlyCancel: plain LIMIT scan — stop collecting (and cancel the
	// laggards) the moment enough rows arrived.
	earlyCancel bool
}

// readCover assigns every partition in parts to one readable replica:
// node index → the partitions that node answers for. avoid maps a
// partition to a replica that just failed with a shard error — when the
// group has an alternative, the retry goes elsewhere. A partition with
// no readable replica at all fails the cover.
func (r *Router) readCover(pm *PartitionMap, parts []int, avoid map[int]int) (map[int][]int, int, bool) {
	cover := make(map[int][]int)
	for _, p := range parts {
		pick := -1
		for _, i := range pm.groupOf(p) {
			if !r.nodes[i].readable() {
				continue
			}
			if a, bad := avoid[p]; bad && a == i {
				continue
			}
			pick = i
			break
		}
		if pick < 0 {
			// Only the just-failed replica (if any) remains readable;
			// better to retry it than to fail the partition.
			if a, bad := avoid[p]; bad && r.nodes[a].readable() {
				pick = a
			} else {
				return nil, p, false
			}
		}
		cover[pick] = append(cover[pick], p)
	}
	return cover, 0, true
}

// scatterRead fans a multi-partition SELECT to one live replica per
// partition and merges the partition-filtered partials.
func (r *Router) scatterRead(w http.ResponseWriter, req *http.Request, pm *PartitionMap, sel *sqlmini.Select, sql string) {
	spec := mergeSpec{limit: sel.Limit, orderIdx: -1}
	shardSQL := sql
	switch {
	case len(sel.Aggregates) > 0:
		partials, src := sqlmini.PartialAggregates(sel.Aggregates)
		spec.aggs, spec.src = sel.Aggregates, src
		shardSQL = sqlmini.Render(&sqlmini.Select{
			Table:      sel.Table,
			Aggregates: partials,
			Where:      sel.Where,
			Order:      sel.Order,
			Limit:      sel.Limit,
		})
	case sel.Order != nil:
		spec.order = sel.Order
		if len(sel.Columns) > 0 {
			idx := -1
			for i, c := range sel.Columns {
				if strings.EqualFold(c, sel.Order.Column) {
					idx = i
					break
				}
			}
			if idx >= 0 {
				spec.orderIdx = idx
			} else {
				// Inject the sort column so the merge can see it; the
				// shard sorts on the full row either way.
				cols := append(append([]string(nil), sel.Columns...), sel.Order.Column)
				spec.orderIdx = len(sel.Columns)
				spec.strip = true
				shardSQL = sqlmini.Render(&sqlmini.Select{
					Table:   sel.Table,
					Columns: cols,
					Where:   sel.Where,
					Order:   sel.Order,
					Limit:   sel.Limit,
				})
			}
		}
	default:
		spec.earlyCancel = sel.Limit >= 0
	}

	P := len(pm.Owners)
	need := make([]int, P)
	for p := range need {
		need[p] = p
	}
	avoid := make(map[int]int)

	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()

	var replies []shardReply
	var last *shardReply // remembered retryable shard answer for final relay
	rows, done := 0, false

	for round := 0; round < readRetryRounds && len(need) > 0 && !done; round++ {
		if round > 0 {
			r.readRetries.Inc()
			r.cfg.Clock.Sleep(rpcBackoff(round - 1))
		}
		cover, uncovered, ok := r.readCover(pm, need, avoid)
		if !ok {
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Errorf("partition %d unavailable: no readable replica", uncovered))
			return
		}
		targets := make([]int, 0, len(cover))
		for i := range cover {
			targets = append(targets, i)
		}
		sortInts(targets)
		ch := r.fanStatements(ctx, req, targets, func(i int) server.QueryRequest {
			return server.QueryRequest{
				SQL:     shardSQL,
				PFilter: &server.PartitionFilter{Count: P, Include: cover[i]},
			}
		})
		var redo []int
		for range targets {
			rep := <-ch
			switch {
			case rep.err != nil, rep.status >= http.StatusInternalServerError:
				// Transport failure, truncated body, or shard 5xx: this
				// leg's partitions retry on the surviving replicas.
				for _, p := range cover[rep.node] {
					avoid[p] = rep.node
				}
				redo = append(redo, cover[rep.node]...)
				keep := rep
				last = &keep
			case rep.status != http.StatusOK:
				// Deterministic rejection — every replica would answer
				// the same; relay it now.
				cancel()
				relayRaw(w, rep)
				return
			default:
				replies = append(replies, rep)
				if spec.earlyCancel {
					rows += len(rep.resp.Rows)
					if rows >= spec.limit {
						done = true
						cancel()
					}
				}
			}
			if done {
				break
			}
		}
		need = redo
	}

	if r.pmap.Load() != pm {
		r.writePartitionStale(w)
		return
	}
	if len(need) > 0 && !done {
		if last != nil && last.err == nil && last.status >= http.StatusInternalServerError {
			relayRaw(w, *last)
			return
		}
		detail := ""
		if last != nil && last.err != nil {
			detail = ": " + last.err.Error()
		}
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("scan incomplete: %d partitions unavailable after retries%s", len(need), detail))
		return
	}
	out, err := mergeReplies(replies, &spec)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// mergeReplies recombines per-shard partial results per the spec.
func mergeReplies(replies []shardReply, spec *mergeSpec) (*server.QueryResponse, error) {
	// Stable order: merge in node order, not arrival order.
	sortRepliesByNode(replies)
	out := &server.QueryResponse{Rows: [][]string{}}
	for _, rep := range replies {
		if rep.resp.DelayMillis > out.DelayMillis {
			out.DelayMillis = rep.resp.DelayMillis
		}
	}
	if len(spec.aggs) > 0 {
		return mergeAggregates(replies, spec, out)
	}
	if len(replies) == 0 {
		return out, nil
	}
	out.Columns = replies[0].resp.Columns
	if spec.order != nil {
		idx := spec.orderIdx
		if idx < 0 {
			for i, c := range out.Columns {
				if strings.EqualFold(c, spec.order.Column) {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("order column %q missing from shard response", spec.order.Column)
			}
		}
		out.Rows = mergeOrdered(replies, idx, spec.order.Desc, spec.limit)
	} else {
		for _, rep := range replies {
			out.Rows = append(out.Rows, rep.resp.Rows...)
		}
		if spec.limit >= 0 && len(out.Rows) > spec.limit {
			out.Rows = out.Rows[:spec.limit]
		}
	}
	if spec.strip {
		out.Columns = out.Columns[:len(out.Columns)-1]
		for i, row := range out.Rows {
			out.Rows[i] = row[:len(row)-1]
		}
	}
	return out, nil
}

func sortRepliesByNode(replies []shardReply) {
	for i := 1; i < len(replies); i++ {
		for j := i; j > 0 && replies[j].node < replies[j-1].node; j-- {
			replies[j], replies[j-1] = replies[j-1], replies[j]
		}
	}
}

// mergeOrdered k-way merges per-shard streams that are each already
// sorted on column idx. Ties break toward the lower node index, so the
// merged order is deterministic.
func mergeOrdered(replies []shardReply, idx int, desc bool, limit int) [][]string {
	total := 0
	for _, rep := range replies {
		total += len(rep.resp.Rows)
	}
	if limit >= 0 && limit < total {
		total = limit
	}
	out := make([][]string, 0, total)
	cursors := make([]int, len(replies))
	for len(out) < total || limit < 0 {
		best := -1
		for j := range replies {
			if cursors[j] >= len(replies[j].resp.Rows) {
				continue
			}
			if best < 0 {
				best = j
				continue
			}
			c := sqlmini.CompareCells(replies[j].resp.Rows[cursors[j]][idx], replies[best].resp.Rows[cursors[best]][idx])
			if desc {
				c = -c
			}
			if c < 0 {
				best = j
			}
		}
		if best < 0 {
			break
		}
		out = append(out, replies[best].resp.Rows[cursors[best]])
		cursors[best]++
		if limit >= 0 && len(out) == limit {
			break
		}
	}
	return out
}

// mergeAggregates combines shard-local partials into the final
// aggregate row, labeled exactly as a single node would label it.
func mergeAggregates(replies []shardReply, spec *mergeSpec, out *server.QueryResponse) (*server.QueryResponse, error) {
	out.Columns = make([]string, len(spec.aggs))
	for i, a := range spec.aggs {
		out.Columns[i] = sqlmini.AggregateName(a)
	}
	for _, rep := range replies {
		if len(rep.resp.Rows) == 0 {
			// LIMIT 0 on an aggregate yields no row; every shard ran
			// the same statement, so mirror it.
			return out, nil
		}
		if len(rep.resp.Rows) != 1 {
			return nil, fmt.Errorf("aggregate partial with %d rows from node %d", len(rep.resp.Rows), rep.node)
		}
	}
	cell := func(rep shardReply, part int) string {
		return rep.resp.Rows[0][part]
	}
	row := make([]string, len(spec.aggs))
	for i, a := range spec.aggs {
		parts := spec.src[i]
		switch a.Func {
		case sqlmini.AggCount:
			var total int64
			for _, rep := range replies {
				v, err := strconv.ParseInt(cell(rep, parts[0]), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad COUNT partial %q from node %d", cell(rep, parts[0]), rep.node)
				}
				total += v
			}
			row[i] = strconv.FormatInt(total, 10)
		case sqlmini.AggSum, sqlmini.AggAvg:
			var sum float64
			var count int64
			for _, rep := range replies {
				s, err := strconv.ParseFloat(cell(rep, parts[0]), 64)
				if err != nil {
					return nil, fmt.Errorf("bad %s partial %q from node %d", a.Func, cell(rep, parts[0]), rep.node)
				}
				sum += s
				if a.Func == sqlmini.AggAvg {
					c, err := strconv.ParseInt(cell(rep, parts[1]), 10, 64)
					if err != nil {
						return nil, fmt.Errorf("bad COUNT partial %q from node %d", cell(rep, parts[1]), rep.node)
					}
					count += c
				}
			}
			if a.Func == sqlmini.AggAvg {
				if count == 0 {
					row[i] = "0"
				} else {
					row[i] = strconv.FormatFloat(sum/float64(count), 'g', -1, 64)
				}
			} else {
				row[i] = strconv.FormatFloat(sum, 'g', -1, 64)
			}
		case sqlmini.AggMin, sqlmini.AggMax:
			// A shard whose slice matched no rows reports the engine's
			// empty-aggregate zero; the paired COUNT partial filters it
			// out of the global extreme.
			best := ""
			seen := false
			for _, rep := range replies {
				c, err := strconv.ParseInt(cell(rep, parts[1]), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad COUNT partial %q from node %d", cell(rep, parts[1]), rep.node)
				}
				if c == 0 {
					continue
				}
				v := cell(rep, parts[0])
				if !seen {
					best, seen = v, true
					continue
				}
				cmp := sqlmini.CompareCells(v, best)
				if (a.Func == sqlmini.AggMin && cmp < 0) || (a.Func == sqlmini.AggMax && cmp > 0) {
					best = v
				}
			}
			if !seen {
				best = "0" // the engine's empty-aggregate answer
			}
			row[i] = best
		default:
			return nil, fmt.Errorf("unmergeable aggregate %v", a.Func)
		}
	}
	out.Rows = [][]string{row}
	return out, nil
}

// scatterStmt is a statement the scatter-write path applies across the
// cluster: either a predicate write shipped verbatim, or a split
// multi-partition INSERT whose per-node slices are rendered under the
// scatter lock — with replication the target sets depend on migration
// state that may move between planning and execution.
type scatterStmt struct {
	sql      string
	ins      *sqlmini.Insert
	insParts []int
}

// predicateTarget extracts the table and WHERE of a predicate write so
// the scatter can pre-count the matching rows.
func predicateTarget(sql string) (string, *sqlmini.Where, bool) {
	stmt, err := sqlmini.Parse(sql)
	if err != nil {
		return "", nil, false
	}
	switch s := stmt.(type) {
	case *sqlmini.Update:
		return s.Table, s.Where, true
	case *sqlmini.Delete:
		return s.Table, s.Where, true
	}
	return "", nil, false
}

// scatterWrite applies a predicate write (or a split INSERT's slices)
// on every replica of every involved partition, holding the scatter
// lock — exclusive against all single-key group writes — so replicas
// apply it at the same point in each partition's write order. The ack
// rule is the group write's, per partition: the statement acks iff
// every involved partition has a read-serving replica that accepted
// it. An owning replica that failed while its partition still acked
// has diverged and is latched writes-only; a failed migration
// dual-write marks the partition dirty for re-copy, never failing the
// client. With no readable acceptance anywhere the first deterministic
// shard rejection relays (replicas agree on parse and constraint
// errors); a half-landed write answers 503 — re-issuing is safe for
// the idempotent statements the grammar has (INSERT re-apply errors on
// the duplicate key; UPDATE/DELETE re-apply is a no-op).
//
// Affected counts logical rows, not replica applications: a split
// INSERT acks its full row count, and a predicate write pre-counts the
// matching rows through the partition-filtered maintenance channel —
// summing per-shard counts would multiply by R and double-count
// migration copies.
func (r *Router) scatterWrite(w http.ResponseWriter, req *http.Request, pm *PartitionMap, stmt scatterStmt) {
	r.partLocks.Lock()
	defer r.partLocks.Unlock()
	if r.pmap.Load() != pm {
		r.writePartitionStale(w)
		return
	}

	P := len(pm.Owners)
	involved := make([]int, 0, P)
	if stmt.ins != nil {
		hit := make([]bool, P)
		for _, p := range stmt.insParts {
			hit[p] = true
		}
		for p, h := range hit {
			if h {
				involved = append(involved, p)
			}
		}
	} else {
		for p := 0; p < P; p++ {
			involved = append(involved, p)
		}
	}

	// Per-node roles, fixed under the lock: the partitions a node owns
	// (the write must land) and the partitions it is receiving as a
	// migration gainer (dual-write).
	owned := make(map[int][]int)
	gaining := make(map[int][]int)
	for _, p := range involved {
		any := false
		for _, i := range pm.groupOf(p) {
			if r.nodes[i].down.Load() {
				continue
			}
			owned[i] = append(owned[i], p)
			any = true
		}
		if !any {
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Errorf("partition %d unavailable: no reachable replica", p))
			return
		}
		for _, g := range r.migrationGainers(pm, p) {
			if r.nodes[g].down.Load() {
				r.migrationMarkDirty(pm, p) // the copy misses this write
				continue
			}
			gaining[g] = append(gaining[g], p)
		}
	}
	targets := make([]int, 0, len(owned)+len(gaining))
	for i := range owned {
		targets = append(targets, i)
	}
	for i := range gaining {
		if _, dup := owned[i]; !dup {
			targets = append(targets, i)
		}
	}
	sortInts(targets)

	var affected int64
	if stmt.ins != nil {
		affected = int64(len(stmt.ins.Rows))
	} else if table, where, ok := predicateTarget(stmt.sql); ok {
		if k, known := r.keyFor(table); known {
			n, err := r.scatterCount(req.Context(), pm, table, k.name, where)
			if err != nil {
				writeErr(w, http.StatusServiceUnavailable,
					fmt.Errorf("counting matched rows before scatter write: %v", err))
				return
			}
			affected = n
		}
		// Unknown table: no pre-count — the shards will reject the
		// statement deterministically and the rejection relays below.
	}

	r.writeFanout.Inc()
	ch := r.fanStatements(req.Context(), req, targets, func(i int) server.QueryRequest {
		if stmt.ins == nil {
			return server.QueryRequest{SQL: stmt.sql}
		}
		member := make(map[int]bool, len(owned[i])+len(gaining[i]))
		for _, p := range owned[i] {
			member[p] = true
		}
		for _, p := range gaining[i] {
			member[p] = true
		}
		rows := make([][]sqlmini.Literal, 0, len(stmt.ins.Rows))
		for ri, row := range stmt.ins.Rows {
			if member[stmt.insParts[ri]] {
				rows = append(rows, row)
			}
		}
		return server.QueryRequest{SQL: sqlmini.Render(&sqlmini.Insert{Table: stmt.ins.Table, Rows: rows})}
	})
	byNode := make(map[int]shardReply, len(targets))
	for range targets {
		rep := <-ch
		byNode[rep.node] = rep
	}
	okNode := func(rep shardReply) bool { return rep.err == nil && rep.status == http.StatusOK }

	// A partition is applied when a READABLE owner accepted the write;
	// resync owners are write-plane only.
	allApplied := true
	for _, p := range involved {
		applied := false
		for _, i := range pm.groupOf(p) {
			if rep, sent := byNode[i]; sent && okNode(rep) && r.nodes[i].readable() {
				applied = true
				break
			}
		}
		if !applied {
			allApplied = false
			break
		}
	}

	// Dual-write outcomes first: a failed gainer leg re-queues the
	// partition for the migrator regardless of how the client fares.
	for i, parts := range gaining {
		if rep := byNode[i]; !okNode(rep) {
			for _, p := range parts {
				r.migrationMarkDirty(pm, p)
			}
		}
	}

	if !allApplied {
		anyOK := false
		var firstErr *shardReply
		for _, i := range targets {
			if _, isOwner := owned[i]; !isOwner {
				continue
			}
			rep := byNode[i]
			if okNode(rep) {
				anyOK = true
			} else if rep.err == nil && rep.status != 0 && firstErr == nil {
				keep := rep
				firstErr = &keep
			}
		}
		if !anyOK && firstErr != nil {
			relayRaw(w, *firstErr)
			return
		}
		writeErr(w, http.StatusServiceUnavailable,
			errors.New("scatter write partially applied: a partition has no read-serving replica that accepted it; retry when the cluster recovers"))
		return
	}

	// Acked. Owners whose leg failed while they stayed reachable have
	// diverged from the replica set: quarantine them writes-only.
	diverged := false
	for i := range owned {
		rep := byNode[i]
		if okNode(rep) {
			continue
		}
		r.writeFanErr.Inc()
		n := r.nodes[i]
		if n.down.Load() {
			continue // died mid-write; the transport latched it
		}
		if !n.resync.Load() {
			n.latchResync()
			r.writeDiverged.Inc()
			diverged = true
		}
	}
	if diverged {
		r.syncPeerDown()
	}

	out := server.QueryResponse{Affected: int(affected)}
	for _, i := range targets {
		if rep := byNode[i]; okNode(rep) && rep.resp.DelayMillis > out.DelayMillis {
			out.DelayMillis = rep.resp.DelayMillis
		}
	}
	writeJSON(w, http.StatusOK, &out)
}
