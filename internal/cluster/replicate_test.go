package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// testChaosCluster is testPartitionedCluster on killable transports:
// every request crosses a Chaos switch, so a kill behaves like a
// crashed process on every router path. The shard handlers are
// returned for direct state inspection (bypassing the chaos switch).
func testChaosCluster(t testing.TB, n, partitions, tuples int, cfg Config) (*Router, []http.Handler, []*Chaos) {
	t.Helper()
	catalog := tuples
	if catalog == 0 {
		catalog = 100
	}
	nodes := make([]*Node, n)
	handlers := make([]http.Handler, n)
	chaos := make([]*Chaos, n)
	for i := range nodes {
		h, _ := newEmptyShard(t, catalog, nil)
		handlers[i] = h
		nodes[i], chaos[i] = NewChaosNode(fmt.Sprintf("shard-%d", i), h)
	}
	cfg.Partitions = partitions
	r, err := NewRouter(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tuples > 0 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO items VALUES ")
		for i := 1; i <= tuples; i++ {
			if i > 1 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'v%d')", i, i)
		}
		if err := r.ExecScript(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	return r, handlers, chaos
}

func healthOf(t testing.TB, h http.Handler) HealthResponse {
	t.Helper()
	resp, body := do(t, h, http.MethodGet, "/healthz", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d: %s", resp.StatusCode, body)
	}
	var hr HealthResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatalf("healthz: %v: %s", err, body)
	}
	return hr
}

func peerStatus(hr HealthResponse, name string) string {
	for _, p := range hr.Peers {
		if p.Name == name {
			return p.Status
		}
	}
	return "absent"
}

func readValue(t testing.TB, h http.Handler, identity string, key int) (string, bool) {
	t.Helper()
	resp, body := query(t, h, identity, fmt.Sprintf(`SELECT v FROM items WHERE id = %d`, key))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read key %d: HTTP %d: %s", key, resp.StatusCode, body)
	}
	qr := decodeQuery(t, body)
	if len(qr.Rows) == 0 {
		return "", false
	}
	return qr.Rows[0][0], true
}

// TestReplicatedPointReadFailsOver: with R=2, killing a key's primary
// replica keeps point reads of that key flowing — the group walk fails
// over to the surviving replica, the dead peer latches down, and after
// revive + resync the cluster returns to full health.
func TestReplicatedPointReadFailsOver(t *testing.T) {
	r, _, chaos := testChaosCluster(t, 4, 16, 32, Config{Replication: 2})
	h := r.Handler()
	pm := r.CurrentPartitionMap()

	const key = 7
	group := pm.GroupOf(pm.PartitionOf(key))
	if len(group) != 2 {
		t.Fatalf("replica group = %v, want 2 members", group)
	}
	primary := group[0]
	chaos[primary].Kill()

	for i := 0; i < 5; i++ {
		v, ok := readValue(t, h, fmt.Sprintf("reader-%d", i), key)
		if !ok || v != fmt.Sprintf("v%d", key) {
			t.Fatalf("post-kill read %d: got (%q, %v), want (\"v%d\", true)", i, v, ok, key)
		}
	}
	if r.readFailover.Value() == 0 && r.readRetries.Value() == 0 {
		t.Error("no failover or retry recorded; the kill was never exercised")
	}
	if st := peerStatus(healthOf(t, h), r.nodes[primary].name); st != "down" {
		t.Fatalf("killed primary status = %q, want down", st)
	}

	// Revive; the probe lands it writes-only, resync restores reads.
	chaos[primary].Revive()
	r.ExchangeNow()
	if st := peerStatus(healthOf(t, h), r.nodes[primary].name); st != "resync" {
		t.Fatalf("revived primary status = %q, want resync", st)
	}
	resp, body := do(t, h, http.MethodPost, "/admin/resync", "",
		fmt.Sprintf(`{"name":%q}`, r.nodes[primary].name))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resync: HTTP %d: %s", resp.StatusCode, body)
	}
	if hr := healthOf(t, h); hr.Status != "ok" {
		t.Fatalf("post-resync health = %q, want ok", hr.Status)
	}
}

// TestReplicatedWriteSurvivesDeadReplicaAndResync: a write acked while
// one replica is dead must remain readable through the outage, and the
// automated catch-up must deliver it to the revived replica — verified
// by querying that shard's handler directly.
func TestReplicatedWriteSurvivesDeadReplicaAndResync(t *testing.T) {
	r, handlers, chaos := testChaosCluster(t, 4, 16, 32, Config{Replication: 2})
	h := r.Handler()
	pm := r.CurrentPartitionMap()

	const key = 11
	group := pm.GroupOf(pm.PartitionOf(key))
	dead := group[1]
	chaos[dead].Kill()

	resp, body := query(t, h, "writer", fmt.Sprintf(`UPDATE items SET v = 'outage' WHERE id = %d`, key))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outage write: HTTP %d: %s", resp.StatusCode, body)
	}
	if v, ok := readValue(t, h, "reader", key); !ok || v != "outage" {
		t.Fatalf("acked write unreadable during outage: (%q, %v)", v, ok)
	}

	chaos[dead].Revive()
	r.ExchangeNow()
	// Still resync: reads must keep coming from the caught-up replica.
	if v, ok := readValue(t, h, "reader-2", key); !ok || v != "outage" {
		t.Fatalf("acked write unreadable while peer resyncs: (%q, %v)", v, ok)
	}
	resp, body = do(t, h, http.MethodPost, "/admin/resync", "",
		fmt.Sprintf(`{"name":%q}`, r.nodes[dead].name))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resync: HTTP %d: %s", resp.StatusCode, body)
	}
	// The revived shard itself — asked directly, off the router's read
	// plane — must now hold the write it missed.
	if v, ok := readValue(t, handlers[dead], "probe", key); !ok || v != "outage" {
		t.Fatalf("catch-up did not deliver the missed write to %s: (%q, %v)", r.nodes[dead].name, v, ok)
	}
	if hr := healthOf(t, h); hr.Status != "ok" {
		t.Fatalf("post-resync health = %q, want ok", hr.Status)
	}
}

// TestRebalanceMovesTuplesAutomatically is the ISSUE's acceptance
// test: POST /admin/rebalance with a map that reassigns a partition
// triggers the background migrator, and after it reports done the
// tuples have physically moved — the gainer answers for them directly,
// the loser no longer holds them, and every key stays readable through
// the router across the cutover.
func TestRebalanceMovesTuplesAutomatically(t *testing.T) {
	const tuples = 64
	r, _, nodes := testPartitionedCluster(t, 4, 16, tuples, nil, Config{})
	h := r.Handler()
	pm := r.CurrentPartitionMap()

	// Pick the partition owning key 1 and move it to the next node.
	part := pm.PartitionOf(1)
	loser := pm.Owners[part]
	gainer := (loser + 1) % 4
	moved := []int{}
	for k := 1; k <= tuples; k++ {
		if pm.PartitionOf(int64(k)) == part {
			moved = append(moved, k)
		}
	}
	if len(moved) == 0 {
		t.Fatal("no keys in the chosen partition")
	}

	owners := make([]string, len(pm.Owners))
	for p, o := range pm.Owners {
		owners[p] = nodes[o].name
	}
	owners[part] = nodes[gainer].name
	up, _ := json.Marshal(PartitionMapUpdate{Version: pm.Version + 1, Owners: owners, Wait: true})
	resp, body := do(t, h, http.MethodPost, "/admin/rebalance", "", string(up))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance: HTTP %d: %s", resp.StatusCode, body)
	}

	// Progress endpoint: terminal, successful, and it counted the move.
	resp, body = do(t, h, http.MethodGet, "/admin/rebalance", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance progress: HTTP %d", resp.StatusCode)
	}
	var prog MigrationProgress
	if err := json.Unmarshal(body, &prog); err != nil {
		t.Fatal(err)
	}
	if prog.Active || prog.State != "done" {
		t.Fatalf("migration state = %+v, want done", prog)
	}
	if prog.TuplesCopied < int64(len(moved)) {
		t.Errorf("tuples_copied = %d, want >= %d", prog.TuplesCopied, len(moved))
	}
	if v := r.CurrentPartitionMap().Version; v != pm.Version+1 {
		t.Fatalf("map version = %d, want %d", v, pm.Version+1)
	}

	// Ownership proof by direct shard reads: the gainer holds every
	// moved key, the loser none of them.
	for _, k := range moved {
		if v, ok := readValue(t, nodes[gainer].direct, "probe-gainer", k); !ok || v != fmt.Sprintf("v%d", k) {
			t.Fatalf("gainer %s missing moved key %d: (%q, %v)", nodes[gainer].name, k, v, ok)
		}
		if _, ok := readValue(t, nodes[loser].direct, "probe-loser", k); ok {
			t.Fatalf("loser %s still holds moved key %d after purge", nodes[loser].name, k)
		}
	}
	// And the router still serves everything.
	for k := 1; k <= tuples; k++ {
		if v, ok := readValue(t, h, "after", k); !ok || v != fmt.Sprintf("v%d", k) {
			t.Fatalf("key %d unreadable after rebalance: (%q, %v)", k, v, ok)
		}
	}

	// /healthz aggregates the partition state and migration outcome.
	hr := healthOf(t, h)
	if hr.PartitionVersion != pm.Version+1 || hr.Partitions != 16 || hr.Replication != 1 {
		t.Errorf("healthz partition state = v%d/%d/R%d, want v%d/16/R1",
			hr.PartitionVersion, hr.Partitions, hr.Replication, pm.Version+1)
	}
	if hr.Migration == nil || hr.Migration.State != "done" {
		t.Errorf("healthz migration = %+v, want done", hr.Migration)
	}
}

// TestRebalanceRollsBackOnDeadGainer: a migration that cannot deliver
// a slice to its gainer must roll back — old map intact, every key
// still readable, terminal state reported.
func TestRebalanceRollsBackOnDeadGainer(t *testing.T) {
	const tuples = 32
	r, _, chaos := testChaosCluster(t, 4, 16, tuples, Config{})
	h := r.Handler()
	pm := r.CurrentPartitionMap()

	part := pm.PartitionOf(1)
	loser := pm.Owners[part]
	gainer := (loser + 1) % 4
	chaos[gainer].Kill()

	owners := make([]string, len(pm.Owners))
	for p, o := range pm.Owners {
		owners[p] = r.nodes[o].name
	}
	owners[part] = r.nodes[gainer].name
	up, _ := json.Marshal(PartitionMapUpdate{Version: pm.Version + 1, Owners: owners, Wait: true})
	resp, body := do(t, h, http.MethodPost, "/admin/rebalance", "", string(up))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("rebalance with dead gainer: HTTP %d, want 502: %s", resp.StatusCode, body)
	}
	resp, body = do(t, h, http.MethodGet, "/admin/rebalance", "", "")
	var prog MigrationProgress
	json.Unmarshal(body, &prog)
	if resp.StatusCode != http.StatusOK || prog.Active || prog.State != "rolled_back" {
		t.Fatalf("migration state = %+v, want rolled_back", prog)
	}
	if v := r.CurrentPartitionMap().Version; v != pm.Version {
		t.Fatalf("rollback left map at v%d, want v%d", v, pm.Version)
	}
	chaos[gainer].Revive()
	r.ExchangeNow()
	do(t, h, http.MethodPost, "/admin/resync", "", fmt.Sprintf(`{"name":%q}`, r.nodes[gainer].name))
	for k := 1; k <= tuples; k++ {
		if v, ok := readValue(t, h, "after", k); !ok || v != fmt.Sprintf("v%d", k) {
			t.Fatalf("key %d unreadable after rollback: (%q, %v)", k, v, ok)
		}
	}
}

// TestCatchUpPeerRefusesStaleReplica pins the latch-order rule: when
// every replica of a partition has left the read plane, only the
// freshest copy (the last to latch — it witnessed every ack) may be
// cleared without a source; a staler replica must be refused with the
// blocker's name until the authoritative one is back. Clearing in the
// wrong order would purge the complete copy from the stale one.
func TestCatchUpPeerRefusesStaleReplica(t *testing.T) {
	r, handlers, chaos := testChaosCluster(t, 2, 8, 8, Config{Replication: 2})
	h := r.Handler()
	pm := r.CurrentPartitionMap()

	const key = 1
	group := pm.GroupOf(pm.PartitionOf(key))
	first, second := group[0], group[1]
	firstName, secondName := r.nodes[first].name, r.nodes[second].name

	// second dies; an acked write lands only on first.
	chaos[second].Kill()
	if resp, body := query(t, h, "w", fmt.Sprintf(`UPDATE items SET v = 'acked' WHERE id = %d`, key)); resp.StatusCode != http.StatusOK {
		t.Fatalf("write with one replica down: HTTP %d: %s", resp.StatusCode, body)
	}
	// second revives into writes-only resync (it missed the ack).
	chaos[second].Revive()
	r.ExchangeNow()
	if st := peerStatus(healthOf(t, h), secondName); st != "resync" {
		t.Fatalf("%s status = %q, want resync", secondName, st)
	}

	// Now first dies too. A write reaching only the resync replica is
	// not an ack.
	chaos[first].Kill()
	resp, body := query(t, h, "w", fmt.Sprintf(`UPDATE items SET v = 'unacked' WHERE id = %d`, key))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("resync-only write: HTTP %d, want 503: %s", resp.StatusCode, body)
	}

	// Catch-up must refuse the stale replica and name the fresh one.
	resp, body = do(t, h, http.MethodPost, "/admin/resync", "", fmt.Sprintf(`{"name":%q}`, secondName))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resync of stale replica: HTTP %d, want 409: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), firstName) {
		t.Fatalf("refusal does not name the authoritative replica %s: %s", firstName, body)
	}

	// Recover in the right order: the freshest clears sourceless, the
	// stale one then copies from it.
	chaos[first].Revive()
	r.ExchangeNow()
	for _, name := range []string{firstName, secondName} {
		if resp, body := do(t, h, http.MethodPost, "/admin/resync", "", fmt.Sprintf(`{"name":%q}`, name)); resp.StatusCode != http.StatusOK {
			t.Fatalf("resync %s: HTTP %d: %s", name, resp.StatusCode, body)
		}
	}
	if hr := healthOf(t, h); hr.Status != "ok" {
		t.Fatalf("post-recovery health = %q, want ok", hr.Status)
	}
	// The acked value survived everywhere; the unacked overwrite that
	// reached only the stale replica was purged by its catch-up copy.
	if v, ok := readValue(t, h, "r", key); !ok || v != "acked" {
		t.Fatalf("router read = (%q, %v), want acked", v, ok)
	}
	for i, hd := range handlers {
		if v, ok := readValue(t, hd, fmt.Sprintf("probe-%d", i), key); !ok || v != "acked" {
			t.Fatalf("shard %d holds (%q, %v), want acked", i, v, ok)
		}
	}
}

// TestClusterRPCFaultReadRetries: an injected cluster.rpc error on a
// replicated point read latches the struck peer and the bounded retry
// reroutes to the surviving replica — the client sees 200.
func TestClusterRPCFaultReadRetries(t *testing.T) {
	r, _, _ := testChaosCluster(t, 4, 16, 32, Config{Replication: 2})
	h := r.Handler()
	t.Cleanup(fault.Disable)
	fault.Enable(fault.NewRegistry(1).
		Add(fault.Rule{Site: fault.ClusterRPC, Kind: fault.Error, Count: 1}))

	if v, ok := readValue(t, h, "reader", 3); !ok || v != "v3" {
		t.Fatalf("read under rpc fault = (%q, %v), want v3", v, ok)
	}
	fault.Disable()
	if r.readRetries.Value() == 0 && r.readFailover.Value() == 0 {
		t.Error("injected rpc error produced no retry and no failover")
	}
	if hr := healthOf(t, h); hr.Status != "degraded" {
		t.Errorf("struck peer not latched: health = %q", hr.Status)
	}
}

// TestClusterFanoutFaultQuarantinesDivergentReplica: dropping one leg
// of a replicated group write still acks the write (the sibling
// answered) and quarantines the replica that missed it writes-only.
func TestClusterFanoutFaultQuarantinesDivergentReplica(t *testing.T) {
	r, _, _ := testChaosCluster(t, 4, 16, 32, Config{Replication: 2})
	h := r.Handler()
	t.Cleanup(fault.Disable)
	fault.Enable(fault.NewRegistry(1).
		Add(fault.Rule{Site: fault.ClusterFanout, Kind: fault.Error, Count: 1}))

	resp, body := query(t, h, "w", `UPDATE items SET v = 'divergent' WHERE id = 5`)
	fault.Disable()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write with one dropped leg: HTTP %d: %s", resp.StatusCode, body)
	}
	if r.writeDiverged.Value() == 0 {
		t.Fatal("dropped fan leg did not quarantine the divergent replica")
	}
	hr := healthOf(t, h)
	resyncs := 0
	var name string
	for _, p := range hr.Peers {
		if p.Status == "resync" {
			resyncs++
			name = p.Name
		}
	}
	if resyncs != 1 {
		t.Fatalf("resync peers = %d, want exactly 1: %+v", resyncs, hr.Peers)
	}
	// The acked value stays readable, and catch-up repairs the hole.
	if v, ok := readValue(t, h, "r", 5); !ok || v != "divergent" {
		t.Fatalf("acked write = (%q, %v), want divergent", v, ok)
	}
	if resp, body := do(t, h, http.MethodPost, "/admin/resync", "", fmt.Sprintf(`{"name":%q}`, name)); resp.StatusCode != http.StatusOK {
		t.Fatalf("resync: HTTP %d: %s", resp.StatusCode, body)
	}
	if hr := healthOf(t, h); hr.Status != "ok" {
		t.Fatalf("post-resync health = %q, want ok", hr.Status)
	}
}

// TestShardTimeoutLatchesSlowPeer: a peer slower than -shard-timeout
// counts as down — the timeout latches it, the timeout counter ticks,
// and the read fails over to the healthy replica.
func TestShardTimeoutLatchesSlowPeer(t *testing.T) {
	r, _, _ := testChaosCluster(t, 4, 16, 32, Config{
		Replication:  2,
		ShardTimeout: 5 * time.Millisecond,
	})
	h := r.Handler()
	t.Cleanup(fault.Disable)
	fault.Enable(fault.NewRegistry(1).
		Add(fault.Rule{Site: fault.ClusterRPC, Kind: fault.Latency, Latency: 100 * time.Millisecond, Count: 1}))

	if v, ok := readValue(t, h, "reader", 9); !ok || v != "v9" {
		t.Fatalf("read past slow peer = (%q, %v), want v9", v, ok)
	}
	fault.Disable()
	if r.rpcTimeouts.Value() == 0 {
		t.Error("cluster_rpc_timeouts_total = 0; the slow RPC was not timed out")
	}
	if hr := healthOf(t, h); hr.Status != "degraded" {
		t.Errorf("slow peer not latched: health = %q", hr.Status)
	}
}
