package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync/atomic"

	"repro/internal/server"
	"repro/internal/sqlmini"
)

// This file is the automated tuple migrator: POST /admin/rebalance
// proposes a next-version partition map and the router moves the tuples
// to match it before any request sees the new ownership. The protocol
// is copy-then-cutover with dual-writes bridging the gap:
//
//  1. While the migration runs, every write to a moving partition fans
//     to its future owners ("gainers") too. A gainer's failure never
//     fails the client — it marks the partition dirty for re-copy.
//  2. Each moving partition is copied under its write fence (the same
//     per-partition mutex single-key writes hold), one partition at a
//     time: purge the gainer's stale slice, then stream the owner's
//     slice page by page through the shard-side /admin/migrate plane.
//     Writes to OTHER partitions flow freely throughout.
//  3. Dirty partitions (a dual-write leg failed after their copy)
//     re-copy in bounded settle passes.
//  4. Cutover takes the scatter lock exclusively — blocking every
//     write for one final dirty re-copy — and installs the target map.
//     Requests pinned to the old version get the standard 409 fence.
//  5. Losing replicas purge their moved slices best-effort after the
//     cutover; a purge that fails leaves orphans the partition filter
//     already hides, and the next migration purges before copying.
//
// A copy failure after retries rolls the migration back: the source map
// stays live, gainers keep whatever partial slices landed (hidden by
// the filter, purged by the next attempt), and the error is reported in
// the progress record. No acked write is lost in either outcome: before
// cutover the old owners remain authoritative and never stopped
// applying writes; at cutover the final re-copy runs with all writes
// blocked, so the gainers are exact.

// migration is the live state of one rebalance.
type migration struct {
	source *PartitionMap
	target *PartitionMap
	// gainers[p]: target-group members not in the source group — the
	// nodes acquiring partition p, which dual-writes and the copier
	// must reach. losers[p]: source-group members not in the target
	// group, purged after cutover.
	gainers [][]int
	losers  [][]int
	// moving lists partitions with at least one gainer (copy required).
	moving []int
	// copied[p]: the fenced copy completed. dirty[p]: a dual-write leg
	// failed, the copy is stale and must re-run.
	copied []atomic.Bool
	dirty  []atomic.Bool

	partsDone     atomic.Int64
	tuplesCopied  atomic.Int64
	tuplesDeleted atomic.Int64
}

// MigrationProgress is the live (or last finished) rebalance, reported
// on /healthz and GET /admin/rebalance.
type MigrationProgress struct {
	Active        bool   `json:"active"`
	TargetVersion uint64 `json:"target_version,omitempty"`
	// State is "running", "done", or "rolled_back".
	State           string `json:"state,omitempty"`
	PartitionsTotal int    `json:"partitions_total"`
	PartitionsMoved int    `json:"partitions_moved"`
	TuplesCopied    int64  `json:"tuples_copied"`
	TuplesDeleted   int64  `json:"tuples_deleted"`
	Error           string `json:"error,omitempty"`
}

// migrationProgress snapshots the live migration, falling back to the
// last finished one. nil when no rebalance has ever run.
func (r *Router) migrationProgress() *MigrationProgress {
	if m := r.mig.Load(); m != nil {
		return &MigrationProgress{
			Active:          true,
			TargetVersion:   m.target.Version,
			State:           "running",
			PartitionsTotal: len(m.moving),
			PartitionsMoved: int(m.partsDone.Load()),
			TuplesCopied:    m.tuplesCopied.Load(),
			TuplesDeleted:   m.tuplesDeleted.Load(),
		}
	}
	return r.migLast.Load()
}

// migrationGainers returns the nodes acquiring partition p under the
// live migration, or nil. pm must be the map the caller routed under:
// a migration sourced from a different (superseded) map contributes no
// dual-write targets.
func (r *Router) migrationGainers(pm *PartitionMap, p int) []int {
	m := r.mig.Load()
	if m == nil || m.source != pm {
		return nil
	}
	return m.gainers[p]
}

// migrationMarkDirty records that partition p's copy missed a write
// (a dual-write leg failed or was skipped); the migrator re-copies it
// before cutover.
func (r *Router) migrationMarkDirty(pm *PartitionMap, p int) {
	m := r.mig.Load()
	if m == nil || m.source != pm {
		return
	}
	m.dirty[p].Store(true)
}

// Rebalance migrates the cluster to target (which must carry exactly
// the next map version) and installs it at cutover. Synchronous; one
// rebalance at a time.
func (r *Router) Rebalance(target *PartitionMap) error {
	if err := r.startMigration(target); err != nil {
		return err
	}
	return r.runMigration()
}

// startMigration validates target and registers the migration, turning
// dual-writes on. Serialized on migMu against concurrent rebalances
// and peer catch-ups.
func (r *Router) startMigration(target *PartitionMap) error {
	r.migMu.Lock()
	defer r.migMu.Unlock()
	if r.mig.Load() != nil {
		return errors.New("a rebalance is already running")
	}
	cur := r.pmap.Load()
	if cur == nil {
		return errors.New("partitioning is not enabled")
	}
	if err := r.validateNextMap(target); err != nil {
		return err
	}
	if target.Version != cur.Version+1 {
		return fmt.Errorf("partition map version must be %d (got %d)", cur.Version+1, target.Version)
	}
	P := len(cur.Owners)
	m := &migration{
		source:  cur,
		target:  target,
		gainers: make([][]int, P),
		losers:  make([][]int, P),
		copied:  make([]atomic.Bool, P),
		dirty:   make([]atomic.Bool, P),
	}
	for p := 0; p < P; p++ {
		src := make(map[int]bool)
		for _, i := range cur.groupOf(p) {
			src[i] = true
		}
		dst := make(map[int]bool)
		for _, i := range target.groupOf(p) {
			dst[i] = true
			if !src[i] {
				m.gainers[p] = append(m.gainers[p], i)
			}
		}
		for _, i := range cur.groupOf(p) {
			if !dst[i] {
				m.losers[p] = append(m.losers[p], i)
			}
		}
		if len(m.gainers[p]) > 0 {
			m.moving = append(m.moving, p)
		}
	}
	r.mig.Store(m)
	return nil
}

// migrationSettlePasses bounds the dirty re-copy rounds before cutover
// forces the remainder under the exclusive lock.
const migrationSettlePasses = 5

// migrationCopyRetries bounds per-partition copy attempts before the
// migration rolls back.
const migrationCopyRetries = 3

// runMigration executes the registered migration to completion:
// per-partition fenced copies, dirty settling, exclusive-lock cutover,
// then best-effort loser purges.
func (r *Router) runMigration() error {
	m := r.mig.Load()
	if m == nil {
		return errors.New("no migration registered")
	}
	ctx := context.Background()

	for _, p := range m.moving {
		if err := r.copyPartitionFenced(ctx, m, p); err != nil {
			return r.finishMigration(m, "rolled_back", err)
		}
		m.partsDone.Add(1)
		r.migPartsDone.Inc()
	}

	for pass := 0; pass < migrationSettlePasses; pass++ {
		var redo []int
		for _, p := range m.moving {
			if m.dirty[p].Load() {
				redo = append(redo, p)
			}
		}
		if len(redo) == 0 {
			break
		}
		for _, p := range redo {
			if err := r.copyPartitionFenced(ctx, m, p); err != nil {
				return r.finishMigration(m, "rolled_back", err)
			}
		}
	}

	// Cutover: block every write, force any remaining dirty partitions
	// exact, and swap the map. From the instant InstallPartitionMap
	// returns, requests route (and fence) by the target map.
	r.partLocks.Lock()
	for _, p := range m.moving {
		if !m.dirty[p].Load() {
			continue
		}
		if err := r.copyPartition(ctx, m, p); err != nil {
			r.partLocks.Unlock()
			return r.finishMigration(m, "rolled_back", err)
		}
	}
	err := r.InstallPartitionMap(m.target)
	r.partLocks.Unlock()
	if err != nil {
		return r.finishMigration(m, "rolled_back", err)
	}

	// The map is live; old owners purge their moved slices. Best
	// effort — a failure leaves orphans the partition filter hides and
	// the next migration's pre-copy purge removes.
	for p, losers := range m.losers {
		for _, i := range losers {
			if r.nodes[i].down.Load() {
				continue
			}
			if n, perr := r.purgeSlice(ctx, i, p, len(m.target.Owners)); perr == nil {
				m.tuplesDeleted.Add(n)
			}
		}
	}
	return r.finishMigration(m, "done", nil)
}

// finishMigration retires the live migration into the last-run record.
func (r *Router) finishMigration(m *migration, state string, err error) error {
	prog := &MigrationProgress{
		TargetVersion:   m.target.Version,
		State:           state,
		PartitionsTotal: len(m.moving),
		PartitionsMoved: int(m.partsDone.Load()),
		TuplesCopied:    m.tuplesCopied.Load(),
		TuplesDeleted:   m.tuplesDeleted.Load(),
	}
	if err != nil {
		prog.Error = err.Error()
	}
	r.migLast.Store(prog)
	r.mig.Store(nil)
	return err
}

// copyPartitionFenced copies one partition under its write fence, with
// bounded retries: writes to this partition queue for the copy's
// duration; writes to every other partition flow.
func (r *Router) copyPartitionFenced(ctx context.Context, m *migration, p int) error {
	var err error
	for attempt := 0; attempt < migrationCopyRetries; attempt++ {
		if attempt > 0 {
			r.cfg.Clock.Sleep(rpcBackoff(attempt - 1))
		}
		r.partLocks.RLock()
		r.partMu[p].Lock()
		err = r.copyPartition(ctx, m, p)
		r.partMu[p].Unlock()
		r.partLocks.RUnlock()
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("copying partition %d: %w", p, err)
}

// copyPartition copies partition p's slice from a readable source
// replica onto every gainer. Caller holds the partition's write fence
// (or the scatter lock exclusively), so no write can land mid-copy and
// clearing the dirty bit first is safe.
func (r *Router) copyPartition(ctx context.Context, m *migration, p int) error {
	src := -1
	for _, i := range m.source.groupOf(p) {
		if r.nodes[i].readable() {
			src = i
			break
		}
	}
	if src < 0 {
		return fmt.Errorf("partition %d has no readable source replica", p)
	}
	m.dirty[p].Store(false)
	for _, g := range m.gainers[p] {
		if r.nodes[g].down.Load() {
			return fmt.Errorf("gainer %s is down", r.nodes[g].name)
		}
		copied, deleted, err := r.copySlice(ctx, src, g, p, len(m.source.Owners))
		m.tuplesCopied.Add(copied)
		m.tuplesDeleted.Add(deleted)
		r.migTuples.Add(copied)
		if err != nil {
			return err
		}
	}
	m.copied[p].Store(true)
	return nil
}

// copySlice makes dst's slice of partition p (under a count-way split)
// an exact copy of src's: purge, then stream pulls into idempotent
// pushes. Returns tuples copied and deleted.
func (r *Router) copySlice(ctx context.Context, src, dst, p, count int) (int64, int64, error) {
	deleted, err := r.purgeSlice(ctx, dst, p, count)
	if err != nil {
		return 0, deleted, err
	}
	tables, err := r.shardTables(ctx, src)
	if err != nil {
		return 0, deleted, err
	}
	filter := &server.PartitionFilter{Count: count, Include: []int{p}}
	var copied int64
	for _, t := range tables {
		after := int64(math.MinInt64)
		for {
			page, err := r.adminMigrate(ctx, src, &server.MigrateRequest{
				Op: "pull", Table: t.Name, Filter: filter, After: after,
			})
			if err != nil {
				return copied, deleted, fmt.Errorf("pulling %s from %s: %w", t.Name, r.nodes[src].name, err)
			}
			if len(page.Rows) > 0 {
				if _, err := r.adminMigrate(ctx, dst, &server.MigrateRequest{
					Op: "push", Table: t.Name, Rows: page.Rows,
				}); err != nil {
					return copied, deleted, fmt.Errorf("pushing %s to %s: %w", t.Name, r.nodes[dst].name, err)
				}
				copied += int64(len(page.Rows))
			}
			if page.Done {
				break
			}
			after = page.Next
		}
	}
	return copied, deleted, nil
}

// purgeSlice deletes node's copy of partition p across every table it
// holds. Returns tuples deleted.
func (r *Router) purgeSlice(ctx context.Context, node, p, count int) (int64, error) {
	tables, err := r.shardTables(ctx, node)
	if err != nil {
		return 0, err
	}
	filter := &server.PartitionFilter{Count: count, Include: []int{p}}
	var deleted int64
	for _, t := range tables {
		after := int64(math.MinInt64)
		for {
			page, err := r.adminMigrate(ctx, node, &server.MigrateRequest{
				Op: "purge", Table: t.Name, Filter: filter, After: after,
			})
			if err != nil {
				return deleted, fmt.Errorf("purging %s on %s: %w", t.Name, r.nodes[node].name, err)
			}
			deleted += int64(page.Applied)
			if page.Done {
				break
			}
			after = page.Next
		}
	}
	return deleted, nil
}

// shardTables pulls a shard's table list (with schemas) off its admin
// plane.
func (r *Router) shardTables(ctx context.Context, node int) ([]server.TableSchema, error) {
	n := r.nodes[node]
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+"/admin/schema", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.do(req)
	if err != nil {
		r.peerErrors.Inc()
		r.syncPeerDown()
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard %s: schema fetch: %s", n.name, resp.Status)
	}
	var sr server.SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("shard %s: decoding schema: %w", n.name, err)
	}
	return sr.Tables, nil
}

// adminMigrate runs one migration op on a shard's admin plane. It goes
// through Node.do on purpose: a transport failure latches the shard
// down like any other RPC, and the cluster.rpc failpoint injects here
// too — the torture harness must see migrations survive (or cleanly
// roll back under) the same faults the query plane takes.
func (r *Router) adminMigrate(ctx context.Context, node int, mreq *server.MigrateRequest) (*server.MigrateResponse, error) {
	n := r.nodes[node]
	body, err := json.Marshal(mreq)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+"/admin/migrate", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.do(req)
	if err != nil {
		r.peerErrors.Inc()
		r.syncPeerDown()
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("shard %s: migrate %s: %s: %s", n.name, mreq.Op, resp.Status, bytes.TrimSpace(raw))
	}
	var out server.MigrateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("shard %s: decoding migrate response: %w", n.name, err)
	}
	return &out, nil
}

// scatterCount pre-counts the rows a predicate write will affect: the
// statement's WHERE, projected to the key column, partition-filtered
// across a primary cover so every row counts exactly once regardless
// of replication or in-flight copies. Runs on the migration plane (the
// count is bookkeeping, not a client read — it must not be priced or
// observed as one).
func (r *Router) scatterCount(ctx context.Context, pm *PartitionMap, table, keyCol string, where *sqlmini.Where) (int64, error) {
	P := len(pm.Owners)
	parts := make([]int, P)
	for p := range parts {
		parts[p] = p
	}
	cover, uncovered, ok := r.readCover(pm, parts, nil)
	if !ok {
		return 0, fmt.Errorf("partition %d unavailable: no readable replica", uncovered)
	}
	sql := sqlmini.Render(&sqlmini.Select{Table: table, Columns: []string{keyCol}, Where: where, Limit: -1})
	var total int64
	for node, include := range cover {
		page, err := r.adminMigrate(ctx, node, &server.MigrateRequest{
			Op: "count", SQL: sql,
			Filter: &server.PartitionFilter{Count: P, Include: include},
		})
		if err != nil {
			return 0, err
		}
		total += int64(page.Count)
	}
	return total, nil
}

// handleRebalanceGet reports migration progress.
func (r *Router) handleRebalanceGet(w http.ResponseWriter, req *http.Request) {
	prog := r.migrationProgress()
	if prog == nil {
		prog = &MigrationProgress{Active: false}
	}
	writeJSON(w, http.StatusOK, prog)
}

// handleRebalancePost proposes a next-version map and migrates the
// tuples to match it. The body is a PartitionMapUpdate: explicit
// Replicas/Owners, or a bare Replication to re-derive groups from the
// ring (the "turn on R=2" one-liner). Asynchronous by default (202;
// poll GET /admin/rebalance); Wait runs it synchronously.
func (r *Router) handleRebalancePost(w http.ResponseWriter, req *http.Request) {
	if ct := req.Header.Get("Content-Type"); ct != "" && ct != "application/json" {
		writeErr(w, http.StatusUnsupportedMediaType, fmt.Errorf("content type %q; want application/json", ct))
		return
	}
	var up PartitionMapUpdate
	if err := json.NewDecoder(req.Body).Decode(&up); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if up.Version == 0 {
		if cur := r.pmap.Load(); cur != nil {
			up.Version = cur.Version + 1
		}
	}
	target, err := r.mapFromUpdate(&up, true)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := r.startMigration(target); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	if up.Wait {
		if err := r.runMigration(); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Errorf("migration rolled back: %w", err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "rebalanced", "version": target.Version})
		return
	}
	go r.runMigration() //nolint:errcheck // outcome lands in migLast for GET /admin/rebalance
	writeJSON(w, http.StatusAccepted, map[string]any{"status": "migrating", "version": target.Version})
}

// CatchUpPeer restores a revived replica to the read path by data
// movement instead of operator assertion: for every partition the peer
// replicates that has another readable source, re-copy the slice under
// the partition's write fence, then clear both latches. The automated
// counterpart to POST /admin/peer-up for partitioned clusters.
func (r *Router) CatchUpPeer(name string) error {
	r.migMu.Lock()
	defer r.migMu.Unlock()
	if r.mig.Load() != nil {
		return errors.New("a rebalance is running; retry after it completes")
	}
	pm := r.pmap.Load()
	if pm == nil {
		return errors.New("partitioning is not enabled; use /admin/peer-up after resyncing manually")
	}
	ni := -1
	for i, n := range r.nodes {
		if n.name == name {
			ni = i
			break
		}
	}
	if ni < 0 {
		return fmt.Errorf("unknown peer %q", name)
	}
	ctx := context.Background()
	for p := range pm.Owners {
		group := pm.groupOf(p)
		member := false
		for _, i := range group {
			if i == ni {
				member = true
				break
			}
		}
		if !member {
			continue
		}
		src := -1
		for _, i := range group {
			if i != ni && r.nodes[i].readable() {
				src = i
				break
			}
		}
		if src < 0 {
			// No readable source for this partition. If the peer was the
			// LAST member of the group to leave the read plane, its copy
			// is complete — an acked write that fails on a readable
			// replica quarantines it immediately, so every replica holds
			// every write acked while it was readable, and the freshest
			// latch saw them all (the R=1 sole-owner case is the trivial
			// instance). A staler member must NOT be cleared first: its
			// catch-up would either skip the hole or, worse, later serve
			// as the purge-and-copy source for the complete replica.
			// Refuse and name the peer the operator must resync first.
			if r.nodes[ni].readable() {
				continue // already on the read plane; nothing missed
			}
			peerSeq := r.nodes[ni].latchSeq.Load()
			blocker := -1
			for _, i := range group {
				if i != ni && r.nodes[i].latchSeq.Load() > peerSeq {
					blocker = i
				}
			}
			if blocker >= 0 {
				return fmt.Errorf(
					"partition %d has no readable replica and %s is not its freshest copy; resync %s first",
					p, name, r.nodes[blocker].name)
			}
			continue
		}
		r.partLocks.RLock()
		r.partMu[p].Lock()
		_, _, err := r.copySlice(ctx, src, ni, p, len(pm.Owners))
		r.partMu[p].Unlock()
		r.partLocks.RUnlock()
		if err != nil {
			return fmt.Errorf("resyncing partition %d: %w", p, err)
		}
	}
	n := r.nodes[ni]
	n.down.Store(false)
	n.resync.Store(false)
	r.ae.mu.Lock()
	for j := range r.ae.marks {
		r.ae.marks[j] = 0
	}
	r.ae.mu.Unlock()
	r.syncPeerDown()
	return nil
}

// handleResync is POST /admin/resync {"name": ...}: CatchUpPeer over
// HTTP.
func (r *Router) handleResync(w http.ResponseWriter, req *http.Request) {
	if ct := req.Header.Get("Content-Type"); ct != "" && ct != "application/json" {
		writeErr(w, http.StatusUnsupportedMediaType, fmt.Errorf("content type %q; want application/json", ct))
		return
	}
	var pr PeerUpRequest
	if err := json.NewDecoder(req.Body).Decode(&pr); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if pr.Name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("empty peer name"))
		return
	}
	if err := r.CatchUpPeer(pr.Name); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "resynced", "name": pr.Name})
}
