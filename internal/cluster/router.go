package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/ratelimit"
	"repro/internal/server"
	"repro/internal/vclock"
)

// Policy selects which healthy shard serves a read.
type Policy int

const (
	// PolicyHash routes by consistent hash of the principal, so one
	// principal's queries land on one shard — its detector sees the
	// whole local stream, and anti-entropy only has to repair the
	// adversary who deliberately rotates identities or headers.
	PolicyHash Policy = iota
	// PolicyRoundRobin spreads reads evenly regardless of principal.
	PolicyRoundRobin
	// PolicyLeastLoaded routes to the shard with the fewest live
	// requests — delay-priced queries can pin a shard for seconds, so
	// live in-flight counts beat any static spread.
	PolicyLeastLoaded
)

// ParsePolicy maps the -route flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "", "hash":
		return PolicyHash, nil
	case "rr", "roundrobin", "round-robin":
		return PolicyRoundRobin, nil
	case "least", "leastloaded", "least-loaded":
		return PolicyLeastLoaded, nil
	}
	return 0, fmt.Errorf("cluster: unknown routing policy %q (want hash, rr, or least)", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "rr"
	case PolicyLeastLoaded:
		return "least"
	default:
		return "hash"
	}
}

// Defaults for the admission-control knobs. The per-principal rate is
// deliberately loose — fine-grained fairness lives in each shard's
// limiter and delay gate; the edge only stops the traffic no shard
// should ever see.
const (
	DefaultAdmitRate     = 100.0
	DefaultAdmitBurst    = 200.0
	DefaultAdmitMax      = 65536
	DefaultMaxInFlight   = 1024
	DefaultExchangeEvery = 5 * time.Second
	DefaultExportFloor   = 0.01
)

// Config parameterizes a Router. The zero value is usable.
type Config struct {
	// Policy is the read-routing policy.
	Policy Policy
	// AdmitRate and AdmitBurst shape the per-principal edge token
	// bucket (queries/second). 0 means the defaults.
	AdmitRate  float64
	AdmitBurst float64
	// AdmitMaxPrincipals bounds the edge limiter's memory.
	AdmitMaxPrincipals int
	// MaxInFlight caps queries in flight across the whole cluster; at
	// the cap the router answers 429 without touching any shard.
	MaxInFlight int
	// VNodes is the consistent-hash virtual node count per shard.
	VNodes int
	// Partitions, when > 0, hash-partitions tuples across the shards
	// instead of replicating: each of the Partitions partitions gets
	// a replica group of owner shards (assigned on the ring), point
	// statements route to the tuple's group alone, and scans
	// scatter-gather across one live replica per partition. 0 keeps
	// full replication.
	Partitions int
	// Replication is the replica-group size per partition (clamped to
	// the node count); <= 1 means one owner per partition. With R > 1
	// single-key writes apply to every replica in the router's order
	// and ack when at least one readable replica confirms; point reads
	// fail over inside the group.
	Replication int
	// ShardTimeout bounds each router→shard RPC; a shard that exceeds
	// it counts as a peer error (down-latch) rather than pinning the
	// router's in-flight slots. 0 disables the per-RPC deadline.
	ShardTimeout time.Duration
	// Clock drives the limiter and the anti-entropy staleness gauge.
	// nil means the real clock.
	Clock vclock.Clock
	// Metrics receives the cluster_* instruments. nil means a fresh
	// registry (served at the router's /metrics either way).
	Metrics *metrics.Registry
}

// Router is the cluster front door. Create with NewRouter, mount via
// Handler.
type Router struct {
	nodes []*Node
	ring  *ring
	cfg   Config
	mux   *http.ServeMux
	h     http.Handler
	limit *ratelimit.IdentityLimiter

	// pmap is the live partition map; nil means replicated mode. Swaps
	// (operator rebalances) serialize on pmapMu; readers load the
	// pointer once per request and every routing decision plus the
	// final relay check against that one map.
	pmap   atomic.Pointer[PartitionMap]
	pmapMu sync.Mutex
	// schemas caches each table's primary-key column (tableKey), fed by
	// snooping CREATE TABLE and lazily by GET /admin/schema from a
	// shard; schemaMu serializes the lazy fetch.
	schemas  sync.Map
	schemaMu sync.Mutex

	rr       counterRR
	inflight *metrics.Gauge

	// writeMu serializes write fan-outs. Every fan-out completes on
	// all reachable shards before the next begins, so all replicas
	// apply non-commutative writes in one (the router's) order —
	// without it two concurrent UPDATEs to the same row could commit
	// in opposite orders on different replicas and silently diverge
	// them. Reads never take this lock.
	writeMu sync.Mutex

	// Partitioned-mode write ordering: a single-key group write holds
	// partLocks.RLock plus its partition's mutex — writes to different
	// partitions run concurrently, writes inside one partition (and
	// the migrator's fenced copy of it) serialize. A scatter write
	// holds partLocks exclusively, serializing with every group write
	// at once. vnodes is kept so a rebalance can re-derive ring
	// placement at a new replication factor.
	partLocks sync.RWMutex
	partMu    []sync.Mutex
	vnodes    int

	// mig is the live migration (nil when none); migMu serializes
	// Rebalance/CatchUpPeer admission, migLast keeps the last finished
	// run's progress for /healthz and GET /admin/rebalance.
	mig     atomic.Pointer[migration]
	migMu   sync.Mutex
	migLast atomic.Pointer[MigrationProgress]

	routed        *metrics.Counter
	routedPolicy  *metrics.Counter
	readFailover  *metrics.Counter
	writeFanout   *metrics.Counter
	writeFanErr   *metrics.Counter
	writeDiverged *metrics.Counter
	admitRej      *metrics.Counter
	inflightRej   *metrics.Counter
	peerErrors    *metrics.Counter
	peerDown      *metrics.Gauge
	peerResync    *metrics.Gauge

	partSingleRead  *metrics.Counter
	partSingleWrite *metrics.Counter
	partScatter     *metrics.Counter
	partSplit       *metrics.Counter
	partVerRej      *metrics.Counter

	rpcTimeouts  *metrics.Counter
	readRetries  *metrics.Counter
	migPartsDone *metrics.Counter
	migTuples    *metrics.Counter

	ae struct {
		mu        sync.Mutex
		marks     []uint64
		lastRound time.Time
		stop      chan struct{}
		done      chan struct{}
	}
	aeRounds     *metrics.Counter
	aeBytes      *metrics.Counter
	aePrincipals *metrics.Counter
	aeRejected   *metrics.Counter
	aeErrors     *metrics.Counter
}

// counterRR is the round-robin cursor, a mutex instead of an atomic so
// the skip-down-peers walk stays race-simple.
type counterRR struct {
	mu sync.Mutex
	n  int
}

// NewRouter fronts the given shard nodes.
func NewRouter(nodes []*Node, cfg Config) (*Router, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	names := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == nil || n.name == "" {
			return nil, errors.New("cluster: nil or unnamed node")
		}
		if names[n.name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.name)
		}
		names[n.name] = true
	}
	if cfg.AdmitRate <= 0 {
		cfg.AdmitRate = DefaultAdmitRate
	}
	if cfg.AdmitBurst <= 0 {
		cfg.AdmitBurst = DefaultAdmitBurst
	}
	if cfg.AdmitMaxPrincipals <= 0 {
		cfg.AdmitMaxPrincipals = DefaultAdmitMax
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	limit, err := ratelimit.NewIdentityLimiter(cfg.AdmitRate, cfg.AdmitBurst, cfg.AdmitMaxPrincipals, cfg.Clock)
	if err != nil {
		return nil, err
	}

	r := &Router{
		nodes:  nodes,
		ring:   newRing(len(nodes), cfg.VNodes),
		cfg:    cfg,
		mux:    http.NewServeMux(),
		limit:  limit,
		vnodes: cfg.VNodes,
	}
	if cfg.Partitions > 0 {
		pm, err := NewPartitionMap(1, cfg.Partitions, len(nodes), cfg.VNodes, cfg.Replication)
		if err != nil {
			return nil, err
		}
		r.pmap.Store(pm)
		r.partMu = make([]sync.Mutex, cfg.Partitions)
	}
	m := cfg.Metrics
	r.inflight = m.Gauge("cluster_inflight")
	r.routed = m.Counter("cluster_routed_total")
	r.routedPolicy = m.Counter("cluster_routed_" + cfg.Policy.String() + "_total")
	r.readFailover = m.Counter("cluster_read_failovers_total")
	r.writeFanout = m.Counter("cluster_write_fanouts_total")
	r.writeFanErr = m.Counter("cluster_write_fanout_errors_total")
	r.writeDiverged = m.Counter("cluster_write_diverged_total")
	r.admitRej = m.Counter("cluster_admission_rejected_total")
	r.inflightRej = m.Counter("cluster_inflight_rejected_total")
	r.peerErrors = m.Counter("cluster_peer_errors_total")
	r.peerDown = m.Gauge("cluster_peer_down")
	r.peerResync = m.Gauge("cluster_peer_resync")
	r.partSingleRead = m.Counter("cluster_partition_single_reads_total")
	r.partSingleWrite = m.Counter("cluster_partition_single_writes_total")
	r.partScatter = m.Counter("cluster_partition_scatter_total")
	r.partSplit = m.Counter("cluster_partition_split_inserts_total")
	r.partVerRej = m.Counter("cluster_partition_version_rejects_total")
	r.rpcTimeouts = m.Counter("cluster_rpc_timeouts_total")
	r.readRetries = m.Counter("cluster_read_retries_total")
	r.migPartsDone = m.Counter("cluster_migration_partitions_total")
	r.migTuples = m.Counter("cluster_migration_tuples_total")
	m.GaugeFunc("cluster_partitions", func() float64 {
		if pm := r.pmap.Load(); pm != nil {
			return float64(len(pm.Owners))
		}
		return 0
	})
	r.aeRounds = m.Counter("cluster_antientropy_rounds_total")
	r.aeBytes = m.Counter("cluster_antientropy_sketch_bytes_total")
	r.aePrincipals = m.Counter("cluster_antientropy_principals_total")
	r.aeRejected = m.Counter("cluster_antientropy_rejected_total")
	r.aeErrors = m.Counter("cluster_antientropy_errors_total")
	m.GaugeFunc("cluster_nodes", func() float64 { return float64(len(nodes)) })
	m.GaugeFunc("cluster_antientropy_merge_lag_seconds", r.mergeLag)
	r.ae.marks = make([]uint64, len(nodes))

	r.mux.HandleFunc("POST /query", r.handleQuery)
	r.mux.HandleFunc("POST /register", r.handleRegister)
	r.mux.HandleFunc("GET /healthz", r.handleHealth)
	r.mux.HandleFunc("GET /metrics", m.Handler().ServeHTTP)
	r.mux.HandleFunc("GET /stats", r.proxyGet("/stats"))
	r.mux.HandleFunc("GET /admin/topk", r.proxyGet("/admin/topk"))
	r.mux.HandleFunc("GET /admin/suspects", r.handleSuspectsAgg)
	r.mux.HandleFunc("POST /admin/quote", r.handleQuoteProxy)
	r.mux.HandleFunc("POST /admin/peer-up", r.handlePeerUp)
	r.mux.HandleFunc("GET /admin/partition-map", r.handlePartitionMapGet)
	r.mux.HandleFunc("POST /admin/partition-map", r.handlePartitionMapPost)
	r.mux.HandleFunc("GET /admin/rebalance", r.handleRebalanceGet)
	r.mux.HandleFunc("POST /admin/rebalance", r.handleRebalancePost)
	r.mux.HandleFunc("POST /admin/resync", r.handleResync)
	r.h = server.WithRecovery(http.HandlerFunc(r.dispatch), m.Counter("cluster_panics_total"))
	return r, nil
}

// dispatch short-circuits the mux for POST /query — the hot path every
// point query takes — and defers everything else (including the 405
// for wrong-method /query) to the full route table.
func (r *Router) dispatch(w http.ResponseWriter, req *http.Request) {
	if req.Method == http.MethodPost && req.URL.Path == "/query" {
		r.handleQuery(w, req)
		return
	}
	r.mux.ServeHTTP(w, req)
}

// Handler returns the router's HTTP handler, panic-recovery wrapped
// like a single node's front door.
func (r *Router) Handler() http.Handler { return r.h }

// Nodes returns the routed shard set.
func (r *Router) Nodes() []*Node { return r.nodes }

func identity(req *http.Request) string {
	if id := req.Header.Get("X-Identity"); id != "" {
		return id
	}
	return req.RemoteAddr
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, server.ErrorResponse{Error: err.Error()})
}

// healthy returns the indices of peers eligible to serve reads: not
// latched down and not in writes-only resync.
func (r *Router) healthy() []int {
	out := make([]int, 0, len(r.nodes))
	for i, n := range r.nodes {
		if n.readable() {
			out = append(out, i)
		}
	}
	return out
}

// reachable returns the indices of peers on the write plane: everything
// not latched down, including resync peers — fan-out writes must keep
// reaching them or they fall further behind while awaiting resync.
func (r *Router) reachable() []int {
	out := make([]int, 0, len(r.nodes))
	for i, n := range r.nodes {
		if !n.down.Load() {
			out = append(out, i)
		}
	}
	return out
}

// syncPeerDown recounts the down/resync latch gauges after any latch
// change.
func (r *Router) syncPeerDown() {
	var down, resync int64
	for _, n := range r.nodes {
		if n.down.Load() {
			down++
		} else if n.resync.Load() {
			resync++
		}
	}
	r.peerDown.Set(down)
	r.peerResync.Set(resync)
}

// isSelect reports whether sql's first keyword is SELECT — the only
// read-only statement the engine's grammar has. Everything else
// (INSERT, UPDATE, DELETE, CREATE, and garbage the shard will 400)
// takes the write fan-out path.
func isSelect(sql string) bool {
	s := strings.TrimLeft(sql, " \t\r\n(")
	return len(s) >= 6 && strings.EqualFold(s[:6], "SELECT")
}

// bodyScratch pools the per-query forwarding state the hot path would
// otherwise allocate fresh: the read buffer and the re-readable reader
// the shard consumes the body through. Local shards serve synchronously
// inside the handler, so the handler's own reference bounds the
// lifetime; remote forwards hand the transport its own counted
// reference (scratchBody), because net/http may keep draining a
// request body briefly after RoundTrip returns. The buffer goes back
// to the pool when the last reference releases — never while any
// transport could still read it.
type bodyScratch struct {
	bytes.Reader
	buf  [2048]byte
	refs atomic.Int32
}

func (s *bodyScratch) Close() error { return nil }

func (s *bodyScratch) retain() { s.refs.Add(1) }

func (s *bodyScratch) release() {
	if s.refs.Add(-1) == 0 {
		scratchPool.Put(s)
	}
}

// scratchBody is a remote forward's view of a pooled scratch: its own
// read cursor over the shared buffer, returning the scratch's counted
// reference on the Close the transport guarantees to make.
type scratchBody struct {
	bytes.Reader
	s      *bodyScratch
	closed atomic.Bool
}

func (b *scratchBody) Close() error {
	if b.closed.CompareAndSwap(false, true) {
		b.s.release()
	}
	return nil
}

var scratchPool = sync.Pool{New: func() any { return new(bodyScratch) }}

// readBody drains r into the scratch buffer, spilling to a heap slice
// only for oversized bodies (bulk writes — off the hot path anyway).
func readBody(r io.Reader, s *bodyScratch) ([]byte, error) {
	n := 0
	for {
		m, err := r.Read(s.buf[n:])
		n += m
		if err == io.EOF {
			return s.buf[:n], nil
		}
		if err != nil {
			return nil, err
		}
		if n == len(s.buf) {
			rest, err := io.ReadAll(r)
			if err != nil {
				return nil, err
			}
			return append(append(make([]byte, 0, n+len(rest)), s.buf[:n]...), rest...), nil
		}
	}
}

var sqlKeyToken = []byte(`"sql"`)

// sniffSelect classifies a raw /query body without a full JSON decode.
// certain is false whenever the body's shape leaves ANY doubt — a key
// before "sql", duplicate "sql" keys (encoding/json keeps the last,
// the sniffer sees the first), escape sequences or a closing quote in
// the statement's first keyword — and the caller must fall back to
// json.Unmarshal. The asymmetric stakes set the bar: misrouting a read
// to the write fan-out just burns replica CPU, but misrouting a write
// to a single shard diverges the replicas, so the fast path only
// answers when the full decode could not possibly disagree.
func sniffSelect(body []byte) (isSel, certain bool) {
	if bytes.Count(body, sqlKeyToken) != 1 {
		return false, false
	}
	skip := func(i int) int {
		for i < len(body) {
			switch body[i] {
			case ' ', '\t', '\r', '\n':
				i++
			default:
				return i
			}
		}
		return i
	}
	i := skip(0)
	if i >= len(body) || body[i] != '{' {
		return false, false
	}
	i = skip(i + 1)
	if !bytes.HasPrefix(body[i:], sqlKeyToken) {
		return false, false
	}
	i = skip(i + len(sqlKeyToken))
	if i >= len(body) || body[i] != ':' {
		return false, false
	}
	i = skip(i + 1)
	if i >= len(body) || body[i] != '"' {
		return false, false
	}
	i++
	// Raw spaces and parens before the keyword mirror isSelect's trim;
	// escaped whitespace (\t, \n,  ) has a backslash the keyword
	// check below rejects, and raw control bytes are invalid JSON the
	// shard will 400 on either path.
	for i < len(body) && (body[i] == ' ' || body[i] == '(') {
		i++
	}
	if i+6 > len(body) {
		return false, false
	}
	const want = "select"
	for j := 0; j < 6; j++ {
		c := body[i+j]
		if c == '\\' || c == '"' {
			return false, false
		}
		if c|0x20 != want[j] {
			return false, true // a plain first keyword that is not SELECT
		}
	}
	return true, true
}

// readOrder returns the node indices to try for a read, preferred
// shard first, per the configured policy. Down peers are excluded;
// later entries are the failover sequence.
func (r *Router) readOrder(principal string) []int {
	switch r.cfg.Policy {
	case PolicyRoundRobin:
		h := r.healthy()
		if len(h) == 0 {
			return nil
		}
		r.rr.mu.Lock()
		start := r.rr.n % len(h)
		r.rr.n++
		r.rr.mu.Unlock()
		out := make([]int, 0, len(h))
		out = append(out, h[start:]...)
		return append(out, h[:start]...)
	case PolicyLeastLoaded:
		h := r.healthy()
		if len(h) == 0 {
			return nil
		}
		best := 0
		for i := 1; i < len(h); i++ {
			if r.nodes[h[i]].inflight.Load() < r.nodes[h[best]].inflight.Load() {
				best = i
			}
		}
		h[0], h[best] = h[best], h[0]
		return h
	default: // PolicyHash
		seq := r.ring.sequence(principal)
		out := seq[:0]
		for _, i := range seq {
			if r.nodes[i].readable() {
				out = append(out, i)
			}
		}
		return out
	}
}

// forward sends body to one node as a POST, preserving the identity
// header. The caller owns the response body.
//
// reuse=true redirects the *inbound* request at the node in place,
// reverse-proxy style — no second request allocation, headers pass
// through untouched. Only legal when the caller holds the request
// exclusively (single-target reads, not concurrent fan-out) and the
// node is local (client transports reject server-form requests); the
// downstream handler runs synchronously inside this call, so the
// mutation cannot race the client connection.
func (r *Router) forward(req *http.Request, n *Node, path string, body []byte, reuse bool) (*http.Response, error) {
	return r.forwardScratch(req, n, path, body, reuse, nil)
}

// forwardScratch is forward with the caller's pooled scratch: when body
// lives in a scratch buffer and the target is a remote peer, the
// request body carries its own counted reference so the buffer cannot
// return to the pool while the transport might still drain it.
func (r *Router) forwardScratch(req *http.Request, n *Node, path string, body []byte, reuse bool, scratch *bodyScratch) (*http.Response, error) {
	ctx := req.Context()
	var cancel context.CancelFunc
	timed := r.cfg.ShardTimeout > 0
	if timed {
		ctx, cancel = context.WithTimeout(ctx, r.cfg.ShardTimeout)
		// A timeout can abandon the shard handler mid-read, so the
		// request body must outlive this call safely: no in-place reuse
		// of the client's request, and pooled scratch always carries
		// its counted reference — a local handler on its own goroutine
		// may still be draining it after this scatter releases the
		// scratch.
		reuse = false
	}
	var out *http.Request
	if reuse && n.local != nil {
		u, err := n.urlFor(path)
		if err != nil {
			if cancel != nil {
				cancel()
			}
			return nil, err
		}
		uc := *u
		out = req
		out.URL = &uc
		out.Host = uc.Host
		out.RequestURI = ""
		out.Body = io.NopCloser(bytes.NewReader(body))
		out.ContentLength = int64(len(body))
		// Preserve the client address for shards falling back to
		// RemoteAddr identities.
		out.Header.Set("X-Forwarded-For", req.RemoteAddr)
	} else {
		nr, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+path, nil)
		if err != nil {
			if cancel != nil {
				cancel()
			}
			return nil, err
		}
		if scratch != nil && (n.local == nil || timed) {
			sb := &scratchBody{s: scratch}
			sb.Reset(body)
			scratch.retain()
			nr.Body = sb
		} else {
			nr.Body = io.NopCloser(bytes.NewReader(body))
		}
		nr.ContentLength = int64(len(body))
		nr.Header.Set("Content-Type", "application/json")
		if id := req.Header.Get("X-Identity"); id != "" {
			nr.Header.Set("X-Identity", id)
		}
		nr.Header.Set("X-Forwarded-For", req.RemoteAddr)
		out = nr
	}
	resp, err := n.do(out)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		if timed && ctx.Err() != nil && req.Context().Err() == nil {
			r.rpcTimeouts.Inc()
		}
		r.peerErrors.Inc()
		r.syncPeerDown()
		return nil, err
	}
	if cancel != nil {
		// The sub-context must survive until the caller finishes the
		// body; Close releases it.
		resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	}
	return resp, nil
}

// cancelBody ties a per-RPC timeout context to the response body's
// lifetime: the context cancels (releasing its timer) when the body
// closes.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelBody) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// relay copies a shard response to the client verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	if ct := req.Header.Get("Content-Type"); ct != "" && ct != "application/json" {
		writeErr(w, http.StatusUnsupportedMediaType, fmt.Errorf("content type %q; want application/json", ct))
		return
	}
	scratch := scratchPool.Get().(*bodyScratch)
	scratch.refs.Store(1)
	defer scratch.release()
	body, err := readBody(req.Body, scratch)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}

	// Classify before admission. Replicated mode only needs the
	// read/write bit, which the sniffer answers without a JSON decode
	// on the hot path; partitioned mode always decodes — the planner
	// needs the statement itself — and fences the client's pinned map
	// version first, so stale clients learn the new version without
	// burning admission tokens.
	pm := r.pmap.Load()
	var sql string
	var isSel bool
	if pm != nil {
		w.Header().Set("X-Partition-Version", strconv.FormatUint(pm.Version, 10))
		if pin := req.Header.Get("X-Partition-Version"); pin != "" {
			if v, perr := strconv.ParseUint(pin, 10, 64); perr != nil || v != pm.Version {
				r.writePartitionStale(w)
				return
			}
		}
		var q server.QueryRequest
		if err := json.Unmarshal(body, &q); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if q.SQL == "" {
			writeErr(w, http.StatusBadRequest, errors.New("empty sql"))
			return
		}
		sql = q.SQL
	} else {
		var certain bool
		isSel, certain = sniffSelect(body)
		if !certain {
			var q server.QueryRequest
			if err := json.Unmarshal(body, &q); err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
				return
			}
			if q.SQL == "" {
				writeErr(w, http.StatusBadRequest, errors.New("empty sql"))
				return
			}
			isSel = isSelect(q.SQL)
		}
	}

	// Admission: the global in-flight cap, then the per-principal
	// bucket — both answered at the edge, before any shard is touched.
	// The cap is a reserve-then-check on the gauge itself (not a read
	// followed by a separate increment), so concurrent arrivals cannot
	// overshoot MaxInFlight.
	if cur := r.inflight.AddGet(1); cur > int64(r.cfg.MaxInFlight) {
		r.inflight.Dec()
		r.inflightRej.Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests,
			fmt.Errorf("cluster at capacity (%d queries in flight)", cur-1))
		return
	}
	defer r.inflight.Dec()
	principal := identity(req)
	if !r.limit.Allow(principal) {
		r.admitRej.Inc()
		// Tell the backoff client exactly when its bucket refills —
		// a static guess either hammers the edge early or idles past
		// the token.
		w.Header().Set("Retry-After", retryAfterSecs(r.limit.RetryAfter(principal)))
		writeErr(w, http.StatusTooManyRequests,
			errors.New("edge rate limit exceeded; retry later"))
		return
	}
	r.routed.Inc()
	r.routedPolicy.Inc()

	if pm != nil {
		r.servePartitioned(w, req, pm, sql, body, scratch)
		return
	}
	if isSel {
		r.routeRead(w, req, principal, body, scratch)
		return
	}
	r.fanoutWrite(w, req, "/query", body, scratch)
}

// retryAfterSecs renders a refill wait as a Retry-After value, rounding
// up so the retry lands after the token exists.
func retryAfterSecs(d time.Duration) string {
	if d <= 0 {
		return "0"
	}
	return strconv.FormatInt(int64(math.Ceil(d.Seconds())), 10)
}

// routeRead tries the policy's preference sequence until a shard
// answers. An unreachable shard latches down and the read fails over;
// a shard that answers — any status — ends the walk.
func (r *Router) routeRead(w http.ResponseWriter, req *http.Request, principal string, body []byte, scratch *bodyScratch) {
	// Hash-affinity fast path: healthy owner, no preference-sequence
	// allocation, inbound request reused. This is the shape virtually
	// every point query takes.
	tried := -1
	if r.cfg.Policy == PolicyHash {
		if i := r.ring.owner(principal); r.nodes[i].readable() {
			if r.nodes[i].direct != nil {
				r.serveDirect(w, req, r.nodes[i], "/query", body, scratch)
				return
			}
			resp, err := r.forwardScratch(req, r.nodes[i], "/query", body, true, scratch)
			if err == nil {
				relay(w, resp)
				return
			}
			tried = i
		}
	}
	first := true
	for _, i := range r.readOrder(principal) {
		if i == tried {
			continue // already failed above; latched down since
		}
		if !first || tried >= 0 {
			r.readFailover.Inc()
		}
		first = false
		if r.nodes[i].direct != nil {
			r.serveDirect(w, req, r.nodes[i], "/query", body, scratch)
			return
		}
		resp, err := r.forwardScratch(req, r.nodes[i], "/query", body, true, scratch)
		if err != nil {
			continue
		}
		relay(w, resp)
		return
	}
	writeErr(w, http.StatusServiceUnavailable, errors.New("no healthy shards"))
}

// serveDirect serves a single-target read by invoking a local shard's
// handler on the client's own ResponseWriter — no recorder, no
// response copy, no relay. Only nodes with a direct handler qualify: a
// shard living in the router's process cannot die independently of the
// router, so skipping the transport layer forfeits no failover.
func (r *Router) serveDirect(w http.ResponseWriter, req *http.Request, n *Node, path string, body []byte, scratch *bodyScratch) {
	u, err := n.urlFor(path)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	// The cached URL is handed out by pointer: handlers treat req.URL
	// as read-only (the shard mux only matches on it), so sharing one
	// parsed value across requests is safe and saves the per-query
	// copy.
	req.URL = u
	req.Host = u.Host
	req.RequestURI = ""
	if scratch != nil {
		scratch.Reset(body)
		req.Body = scratch
	} else {
		req.Body = io.NopCloser(bytes.NewReader(body))
	}
	req.ContentLength = int64(len(body))
	if req.RemoteAddr != "" {
		req.Header.Set("X-Forwarded-For", req.RemoteAddr)
	}
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	n.direct.ServeHTTP(w, req)
}

// fanoutWrite broadcasts a write to every reachable shard (including
// writes-only resync peers — they must keep receiving new writes or
// they fall further behind) concurrently, under the router's write
// lock: each fan-out finishes on every shard before the next begins,
// so all replicas apply non-commutative writes in one total order.
// The write acks only when a *read-serving* shard accepted it — a
// success visible to no read route is not an acked write. A reachable
// shard whose outcome differs from the acked success (it answered, but
// with an error — a local disk/WAL failure the others did not share)
// has diverged from the replica set: it is latched into resync, out of
// the read path, until an operator repairs and confirms it; shards
// that died mid-write latch down as usual. Either way an acked write
// stays readable on every shard a read can route to.
func (r *Router) fanoutWrite(w http.ResponseWriter, req *http.Request, path string, body []byte, scratch *bodyScratch) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()

	targets := r.reachable()
	if len(targets) == 0 {
		writeErr(w, http.StatusServiceUnavailable, errors.New("no healthy shards"))
		return
	}
	r.writeFanout.Inc()
	type result struct {
		resp *http.Response
		err  error
	}
	results := make([]result, len(targets))
	var wg sync.WaitGroup
	for slot, i := range targets {
		wg.Add(1)
		go func(slot, i int) {
			defer wg.Done()
			resp, err := r.forwardScratch(req, r.nodes[i], path, body, false, scratch)
			results[slot] = result{resp: resp, err: err}
		}(slot, i)
	}
	wg.Wait()

	// Prefer relaying a success from a read-serving shard; otherwise
	// relay the first shard error answer (replicas agree on
	// deterministic rejections like a parse error); a success only on
	// resync replicas is NOT an ack — no read can route to it — and
	// all-transport-failure is a 503.
	var first *http.Response
	var ok *http.Response
	resyncOnlyOK := false
	for slot, res := range results {
		if res.err != nil {
			r.writeFanErr.Inc()
			continue
		}
		if res.resp.StatusCode == http.StatusOK {
			if ok == nil && r.nodes[targets[slot]].readable() {
				ok = res.resp
			} else if !r.nodes[targets[slot]].readable() {
				resyncOnlyOK = true
			}
			continue
		}
		if first == nil {
			first = res.resp
		}
	}
	if ok != nil {
		// The write is acked. Any reachable shard that answered the
		// same statement with a different outcome no longer matches
		// the replica set the client was told about — quarantine it
		// writes-only until an operator resyncs it.
		for slot, res := range results {
			if res.err != nil || res.resp.StatusCode == http.StatusOK {
				continue
			}
			n := r.nodes[targets[slot]]
			if !n.resync.Load() {
				n.latchResync()
				r.writeDiverged.Inc()
			}
		}
		r.syncPeerDown()
	}
	chosen := ok
	if chosen == nil {
		chosen = first
	}
	for _, res := range results {
		if res.resp != nil && res.resp != chosen {
			res.resp.Body.Close()
		}
	}
	if chosen == nil {
		if resyncOnlyOK {
			writeErr(w, http.StatusServiceUnavailable,
				errors.New("write applied to no read-serving replica; retry when the cluster recovers"))
			return
		}
		writeErr(w, http.StatusServiceUnavailable, errors.New("write reached no shard"))
		return
	}
	relay(w, chosen)
}

// handleRegister broadcasts a registration to every healthy shard so
// the principal exists wherever its queries may route.
func (r *Router) handleRegister(w http.ResponseWriter, req *http.Request) {
	if ct := req.Header.Get("Content-Type"); ct != "" && ct != "application/json" {
		writeErr(w, http.StatusUnsupportedMediaType, fmt.Errorf("content type %q; want application/json", ct))
		return
	}
	body, err := io.ReadAll(req.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	var reg server.RegisterRequest
	if err := json.Unmarshal(body, &reg); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if reg.Identity == "" {
		writeErr(w, http.StatusBadRequest, errors.New("empty identity"))
		return
	}
	r.fanoutWrite(w, req, "/register", body, nil)
}

// PeerHealth is one peer's entry in the router's /healthz body.
type PeerHealth struct {
	Name     string `json:"name"`
	Status   string `json:"status"`
	InFlight int64  `json:"in_flight"`
}

// HealthResponse is the router's /healthz body: "ok" with every peer
// up, "degraded" while any peer is latched down (unreachable) or
// resync (reachable, receiving writes, but out of the read path until
// caught up and confirmed via POST /admin/peer-up). The cluster still
// serves either way — reads route around the hole, writes go to
// everything reachable. In partitioned mode it also carries the map
// version, partition/replication shape, and the live (or last)
// migration progress, so operators and the torture harness share one
// readiness signal.
type HealthResponse struct {
	Status string       `json:"status"`
	Policy string       `json:"policy"`
	Peers  []PeerHealth `json:"peers"`

	PartitionVersion uint64 `json:"partition_version,omitempty"`
	Partitions       int    `json:"partitions,omitempty"`
	Replication      int    `json:"replication,omitempty"`
	// Migration reports the in-flight rebalance (or the last finished
	// one); nil when no rebalance has ever run.
	Migration *MigrationProgress `json:"migration,omitempty"`
}

func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	out := HealthResponse{Status: "ok", Policy: r.cfg.Policy.String()}
	for _, n := range r.nodes {
		st := "ok"
		switch {
		case n.down.Load():
			st = "down"
			out.Status = "degraded"
		case n.resync.Load():
			st = "resync"
			out.Status = "degraded"
		}
		out.Peers = append(out.Peers, PeerHealth{Name: n.name, Status: st, InFlight: n.inflight.Load()})
	}
	if pm := r.pmap.Load(); pm != nil {
		out.PartitionVersion = pm.Version
		out.Partitions = len(pm.Owners)
		out.Replication = pm.replication()
		out.Migration = r.migrationProgress()
	}
	writeJSON(w, http.StatusOK, out)
}

// proxyGet forwards a GET (with its query string) to the first healthy
// shard — ?node=<name> pins a specific one. Shard-local diagnostics
// like /stats are per-replica; the pin lets operators walk the fleet.
func (r *Router) proxyGet(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		var n *Node
		if want := req.URL.Query().Get("node"); want != "" {
			for _, cand := range r.nodes {
				if cand.name == want {
					n = cand
					break
				}
			}
			if n == nil {
				writeErr(w, http.StatusNotFound, fmt.Errorf("unknown node %q", want))
				return
			}
		} else {
			h := r.healthy()
			if len(h) == 0 {
				writeErr(w, http.StatusServiceUnavailable, errors.New("no healthy shards"))
				return
			}
			n = r.nodes[h[0]]
		}
		url := n.base + path
		if raw := req.URL.Query(); len(raw) > 0 {
			raw.Del("node")
			if enc := raw.Encode(); enc != "" {
				url += "?" + enc
			}
		}
		out, err := http.NewRequestWithContext(req.Context(), http.MethodGet, url, nil)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		resp, err := n.do(out)
		if err != nil {
			r.peerErrors.Inc()
			r.syncPeerDown()
			writeErr(w, http.StatusBadGateway, fmt.Errorf("shard %s unreachable: %w", n.name, err))
			return
		}
		relay(w, resp)
	}
}

// handleSuspectsAgg answers GET /admin/suspects with the cluster-wide
// coalition view: every reachable shard's suspect list merged by
// principal, keeping each principal's maximum escalation. A single
// shard's list only reflects the stream that shard saw — under
// partitioning (or identity rotation) that is a fraction of a
// coalition's activity, and an operator reading one shard would
// under-count exactly the adversaries the anti-entropy exchange exists
// to catch. ?node=<name> still pins one shard for per-replica
// inspection.
func (r *Router) handleSuspectsAgg(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("node") != "" {
		r.proxyGet("/admin/suspects")(w, req)
		return
	}
	k := 20
	if q := req.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 || n > 10000 {
			writeErr(w, http.StatusBadRequest, errors.New("k must be in [1, 10000]"))
			return
		}
		k = n
	}
	targets := r.reachable()
	if len(targets) == 0 {
		writeErr(w, http.StatusServiceUnavailable, errors.New("no healthy shards"))
		return
	}
	effective := func(s detect.Suspect) float64 {
		if s.CoalitionCoverage > s.Coverage {
			return s.CoalitionCoverage
		}
		return s.Coverage
	}
	merged := make(map[string]detect.Suspect)
	enabled := false
	answered := 0
	for _, i := range targets {
		n := r.nodes[i]
		sreq, err := http.NewRequestWithContext(req.Context(), http.MethodGet,
			n.base+"/admin/suspects?k="+strconv.Itoa(k), nil)
		if err != nil {
			continue
		}
		resp, err := n.do(sreq)
		if err != nil {
			r.peerErrors.Inc()
			r.syncPeerDown()
			continue
		}
		var sr server.SuspectsResponse
		derr := json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || derr != nil {
			continue
		}
		answered++
		enabled = enabled || sr.Enabled
		for _, s := range sr.Suspects {
			cur, ok := merged[s.Principal]
			if !ok || s.Multiplier > cur.Multiplier ||
				(s.Multiplier == cur.Multiplier && effective(s) > effective(cur)) {
				merged[s.Principal] = s
			}
		}
	}
	if answered == 0 {
		writeErr(w, http.StatusBadGateway, errors.New("no shard answered"))
		return
	}
	out := make([]detect.Suspect, 0, len(merged))
	for _, s := range merged {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool {
		ea, eb := effective(out[a]), effective(out[b])
		if ea != eb {
			return ea > eb
		}
		return out[a].Principal < out[b].Principal
	})
	if len(out) > k {
		out = out[:k]
	}
	writeJSON(w, http.StatusOK, server.SuspectsResponse{Enabled: enabled, Suspects: out})
}

// handleQuoteProxy forwards an extraction quote to the principal's
// hash-owner shard, with the same edge hardening a shard applies.
func (r *Router) handleQuoteProxy(w http.ResponseWriter, req *http.Request) {
	if ct := req.Header.Get("Content-Type"); ct != "" && ct != "application/json" {
		writeErr(w, http.StatusUnsupportedMediaType, fmt.Errorf("content type %q; want application/json", ct))
		return
	}
	body, err := io.ReadAll(req.Body)
	if err != nil || !json.Valid(body) {
		writeErr(w, http.StatusBadRequest, errors.New("malformed request body"))
		return
	}
	for _, i := range r.readOrder(identity(req)) {
		resp, err := r.forward(req, r.nodes[i], "/admin/quote", body, true)
		if err != nil {
			continue
		}
		relay(w, resp)
		return
	}
	writeErr(w, http.StatusServiceUnavailable, errors.New("no healthy shards"))
}

// PeerUpRequest is the POST /admin/peer-up body: an operator's
// assertion that the named peer holds the replica data again (restart
// plus resync from a healthy peer), clearing both the down latch and
// the writes-only resync latch. This is the ONLY path back into the
// read rotation — the automatic health probe stops at resync, because
// reachability proves nothing about the writes the peer missed.
type PeerUpRequest struct {
	Name string `json:"name"`
}

func (r *Router) handlePeerUp(w http.ResponseWriter, req *http.Request) {
	if ct := req.Header.Get("Content-Type"); ct != "" && ct != "application/json" {
		writeErr(w, http.StatusUnsupportedMediaType, fmt.Errorf("content type %q; want application/json", ct))
		return
	}
	var pr PeerUpRequest
	if err := json.NewDecoder(req.Body).Decode(&pr); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if pr.Name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("empty peer name"))
		return
	}
	for _, n := range r.nodes {
		if n.name == pr.Name {
			n.down.Store(false)
			n.resync.Store(false)
			// Reset every source watermark: the revived peer missed
			// rounds (and may have restarted), so the next exchange
			// re-pulls full history and re-converges it.
			r.ae.mu.Lock()
			for j := range r.ae.marks {
				r.ae.marks[j] = 0
			}
			r.ae.mu.Unlock()
			r.syncPeerDown()
			writeJSON(w, http.StatusOK, map[string]string{"status": "up", "name": pr.Name})
			return
		}
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("unknown peer %q", pr.Name))
}
