package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/vclock"
)

// newShard builds one delaydb shard: a real engine + shield + HTTP
// front door over tuples rows, delays running on a non-blocking
// simulated clock so tests never sleep.
func newShard(t testing.TB, tuples int, det *detect.Config) (http.Handler, *core.Shield) {
	t.Helper()
	db, err := engine.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE items (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	if tuples > 0 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO items VALUES ")
		for i := 1; i <= tuples; i++ {
			if i > 1 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'v%d')", i, i)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	shield, err := core.New(db, core.Config{
		N: tuples, Alpha: 1, Beta: 1, Cap: time.Millisecond,
		Clock:                vclock.NewSimulated(time.Date(2004, 8, 1, 0, 0, 0, 0, time.UTC)),
		Detect:               det,
		RegistrationInterval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(shield)
	if err != nil {
		t.Fatal(err)
	}
	return srv.Handler(), shield
}

// killableTransport fronts a local handler and simulates the shard
// process dying: once killed, every request fails at the transport
// level like a refused connection.
type killableTransport struct {
	inner http.RoundTripper
	dead  atomic.Bool
}

func (k *killableTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if k.dead.Load() {
		return nil, errors.New("dial tcp: connection refused")
	}
	return k.inner.RoundTrip(req)
}

// newKillableNode is NewLocalNode with a kill switch.
func newKillableNode(name string, h http.Handler) (*Node, *killableTransport) {
	kt := &killableTransport{inner: handlerTransport{h: h}}
	return &Node{
		name:  name,
		base:  "http://" + name,
		http:  &http.Client{Transport: kt},
		local: kt,
	}, kt
}

// testCluster builds n shards behind a router.
func testCluster(t testing.TB, n, tuples int, det *detect.Config, cfg Config) (*Router, []*core.Shield) {
	t.Helper()
	nodes := make([]*Node, n)
	shields := make([]*core.Shield, n)
	for i := range nodes {
		h, sh := newShard(t, tuples, det)
		nodes[i] = NewLocalNode(fmt.Sprintf("shard-%d", i), h)
		shields[i] = sh
	}
	r, err := NewRouter(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, shields
}

// do sends one request through a handler via the same client plumbing
// the router uses against its nodes.
func do(t testing.TB, h http.Handler, method, path, identity, body string) (*http.Response, []byte) {
	t.Helper()
	client := &http.Client{Transport: handlerTransport{h: h}}
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, "http://router"+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if identity != "" {
		req.Header.Set("X-Identity", identity)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func query(t testing.TB, h http.Handler, identity, sql string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(server.QueryRequest{SQL: sql})
	return do(t, h, http.MethodPost, "/query", identity, string(body))
}

func TestRingDistributionAndSequence(t *testing.T) {
	r := newRing(4, 0)
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		counts[r.owner(fmt.Sprintf("key-%d", i))]++
	}
	for n, c := range counts {
		// Perfectly even would be 2500; vnodes should keep every node
		// within a factor of ~2 of its fair share.
		if c < 1250 || c > 5000 {
			t.Errorf("node %d owns %d of 10000 keys; want a roughly even split %v", n, c, counts)
		}
	}
	seq := r.sequence("some-key")
	if len(seq) != 4 {
		t.Fatalf("sequence length %d, want 4", len(seq))
	}
	if seq[0] != r.owner("some-key") {
		t.Errorf("sequence starts at %d, owner is %d", seq[0], r.owner("some-key"))
	}
	seen := make(map[int]bool)
	for _, n := range seq {
		if seen[n] {
			t.Fatalf("sequence repeats node %d: %v", n, seq)
		}
		seen[n] = true
	}
	// Determinism: same key, same order.
	for i := 0; i < 3; i++ {
		again := r.sequence("some-key")
		for j := range seq {
			if again[j] != seq[j] {
				t.Fatalf("sequence not deterministic: %v vs %v", seq, again)
			}
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"": PolicyHash, "hash": PolicyHash,
		"rr": PolicyRoundRobin, "round-robin": PolicyRoundRobin,
		"least": PolicyLeastLoaded, "leastloaded": PolicyLeastLoaded,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestHashAffinityRoutesOnePrincipalToOneShard(t *testing.T) {
	r, shields := testCluster(t, 4, 50, nil, Config{Policy: PolicyHash})
	for q := 0; q < 8; q++ {
		resp, body := query(t, r.Handler(), "alice", `SELECT * FROM items WHERE id = 7`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: HTTP %d: %s", q, resp.StatusCode, body)
		}
	}
	served := 0
	for _, sh := range shields {
		if n := sh.QueriesServed(); n > 0 {
			served++
			if n != 8 {
				t.Errorf("affinity shard served %d queries, want all 8", n)
			}
		}
	}
	if served != 1 {
		t.Errorf("%d shards served alice, want exactly 1 (hash affinity)", served)
	}
}

func TestRoundRobinSpreadsReads(t *testing.T) {
	r, shields := testCluster(t, 4, 50, nil, Config{Policy: PolicyRoundRobin})
	for q := 0; q < 8; q++ {
		resp, body := query(t, r.Handler(), "alice", `SELECT * FROM items WHERE id = 7`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: HTTP %d: %s", q, resp.StatusCode, body)
		}
	}
	for i, sh := range shields {
		if n := sh.QueriesServed(); n != 2 {
			t.Errorf("shard %d served %d queries, want 2 under round-robin", i, n)
		}
	}
}

func TestLeastLoadedPrefersIdleShard(t *testing.T) {
	r, _ := testCluster(t, 3, 10, nil, Config{Policy: PolicyLeastLoaded})
	r.nodes[0].inflight.Store(5)
	r.nodes[2].inflight.Store(2)
	order := r.readOrder("anyone")
	if order[0] != 1 {
		t.Fatalf("least-loaded picked shard %d first, want the idle shard 1 (loads 5,0,2)", order[0])
	}
}

func TestWriteFanoutReplicatesToAllShards(t *testing.T) {
	r, shields := testCluster(t, 3, 10, nil, Config{})
	resp, body := query(t, r.Handler(), "writer", `INSERT INTO items VALUES (999, 'replicated')`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write: HTTP %d: %s", resp.StatusCode, body)
	}
	for i, sh := range shields {
		res, err := sh.DB().Exec(`SELECT v FROM items WHERE id = 999`)
		if err != nil || len(res.Rows) != 1 {
			t.Errorf("shard %d: replicated row missing (rows=%d err=%v)", i, len(res.Rows), err)
		}
	}
}

func TestRegisterBroadcasts(t *testing.T) {
	r, shields := testCluster(t, 2, 10, nil, Config{})
	resp, body := do(t, r.Handler(), http.MethodPost, "/register", "", `{"identity":"acct-1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: HTTP %d: %s", resp.StatusCode, body)
	}
	for i, sh := range shields {
		if v := sh.Metrics().Export()["shield_registrations_granted"].(float64); v != 1 {
			t.Errorf("shard %d registered %v identities, want 1", i, v)
		}
	}
}

func TestAdmissionRejectsBeforeAnyShard(t *testing.T) {
	clock := vclock.NewSimulated(time.Date(2004, 8, 1, 0, 0, 0, 0, time.UTC))
	r, shields := testCluster(t, 2, 10, nil, Config{
		AdmitRate: 0.001, AdmitBurst: 1, Clock: clock,
	})
	// First query spends the only token; the second must be rejected at
	// the edge with no shard work.
	resp, _ := query(t, r.Handler(), "greedy", `SELECT * FROM items WHERE id = 1`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: HTTP %d", resp.StatusCode)
	}
	resp, body := query(t, r.Handler(), "greedy", `SELECT * FROM items WHERE id = 1`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query: HTTP %d (%s), want 429", resp.StatusCode, body)
	}
	var total int64
	for _, sh := range shields {
		total += sh.QueriesServed()
	}
	if total != 1 {
		t.Errorf("shards served %d queries, want 1 — the rejected query touched a shard", total)
	}
	if v := r.admitRej.Value(); v != 1 {
		t.Errorf("cluster_admission_rejected_total = %d, want 1", v)
	}

	// Global in-flight cap: with the gauge pinned at the cap, the next
	// query bounces with 429 before identity limiting.
	r.inflight.Set(int64(r.cfg.MaxInFlight))
	resp, _ = query(t, r.Handler(), "someone-else", `SELECT * FROM items WHERE id = 1`)
	r.inflight.Set(0)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("at-capacity query: HTTP %d, want 429", resp.StatusCode)
	}
	if v := r.inflightRej.Value(); v != 1 {
		t.Errorf("cluster_inflight_rejected_total = %d, want 1", v)
	}
}

func TestRouterEdgeHardening(t *testing.T) {
	r, _ := testCluster(t, 2, 10, nil, Config{})
	h := r.Handler()

	// Wrong content type → 415.
	client := &http.Client{Transport: handlerTransport{h: h}}
	req, _ := http.NewRequest(http.MethodPost, "http://router/query", strings.NewReader(`{"sql":"SELECT * FROM items"}`))
	req.Header.Set("Content-Type", "text/plain")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("content-type status = %d, want 415", resp.StatusCode)
	}
	// Malformed JSON → 400.
	if resp, body := do(t, h, http.MethodPost, "/query", "", `{`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d (%s), want 400", resp.StatusCode, body)
	}
	// Empty sql → 400.
	if resp, _ := do(t, h, http.MethodPost, "/query", "", `{"sql":""}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sql status = %d, want 400", resp.StatusCode)
	}
	// Method mismatch → 405.
	if resp, _ := do(t, h, http.MethodGet, "/query", "", ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d, want 405", resp.StatusCode)
	}
	// Unknown peer-up → 404; malformed → 400; wrong type → 415.
	if resp, _ := do(t, h, http.MethodPost, "/admin/peer-up", "", `{"name":"nope"}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown peer-up status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := do(t, h, http.MethodPost, "/admin/peer-up", "", `{`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed peer-up status = %d, want 400", resp.StatusCode)
	}
	// Quote proxy is hardened like the shard endpoint.
	if resp, _ := do(t, h, http.MethodPost, "/admin/quote", "", `garbage`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed quote status = %d, want 400", resp.StatusCode)
	}
	// Unknown node pin on a GET proxy → 404.
	if resp, _ := do(t, h, http.MethodGet, "/stats?node=ghost", "", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown node pin status = %d, want 404", resp.StatusCode)
	}
}

func TestProxyGetAndQuote(t *testing.T) {
	r, _ := testCluster(t, 2, 10, nil, Config{})
	h := r.Handler()
	resp, body := do(t, h, http.MethodGet, "/stats?node=shard-1", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: HTTP %d: %s", resp.StatusCode, body)
	}
	var stats server.StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if len(stats.Tables) != 1 || stats.Tables[0] != "items" {
		t.Errorf("proxied stats tables = %v, want [items]", stats.Tables)
	}
	resp, body = do(t, h, http.MethodPost, "/admin/quote", "q", `{"ids":[1,2,3]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quote: HTTP %d: %s", resp.StatusCode, body)
	}
	var quote server.QuoteResponse
	if err := json.Unmarshal(body, &quote); err != nil {
		t.Fatal(err)
	}
	if quote.Tuples != 3 {
		t.Errorf("quote tuples = %d, want 3", quote.Tuples)
	}
}

func TestRouterMetricsExported(t *testing.T) {
	r, _ := testCluster(t, 2, 10, nil, Config{})
	query(t, r.Handler(), "m", `SELECT * FROM items WHERE id = 1`)
	resp, body := do(t, r.Handler(), http.MethodGet, "/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"cluster_routed_total", "cluster_routed_hash_total",
		"cluster_admission_rejected_total", "cluster_inflight_rejected_total",
		"cluster_peer_down", "cluster_peer_resync", "cluster_peer_errors_total",
		"cluster_write_diverged_total",
		"cluster_antientropy_rounds_total", "cluster_antientropy_sketch_bytes_total",
		"cluster_antientropy_merge_lag_seconds", "cluster_nodes",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("%s missing from /metrics", name)
		}
	}
	if v := m["cluster_routed_total"].(float64); v != 1 {
		t.Errorf("cluster_routed_total = %v, want 1", v)
	}
	if v := m["cluster_nodes"].(float64); v != 2 {
		t.Errorf("cluster_nodes = %v, want 2", v)
	}
}
