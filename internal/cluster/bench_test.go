package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/server"
)

// BenchmarkClusterPointQuery measures the router's tax on the hot
// path: the same point query against a shard directly vs through the
// front door (body re-read, admission, policy pick, second transport
// hop). bench.sh enforces via=router ≤ 1.15 × via=direct.
func BenchmarkClusterPointQuery(b *testing.B) {
	shard, _ := newShard(b, 100, nil)
	node := NewLocalNode("shard-0", shard)
	// Admission is opened wide: the bench measures routing overhead,
	// not the edge limiter's (correct) rejection of 100k qps clients.
	r, err := NewRouter([]*Node{node}, Config{
		Policy:    PolicyHash,
		AdmitRate: 1e9, AdmitBurst: 1e9, MaxInFlight: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	body, _ := json.Marshal(server.QueryRequest{SQL: `SELECT * FROM items WHERE id = 42`})

	run := func(b *testing.B, h http.Handler) {
		client := &http.Client{Transport: handlerTransport{h: h}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req, err := http.NewRequest(http.MethodPost, "http://bench/query", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Identity", "bench")
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("HTTP %d", resp.StatusCode)
			}
		}
	}

	b.Run("via=direct", func(b *testing.B) { run(b, shard) })
	b.Run("via=router", func(b *testing.B) { run(b, r.Handler()) })
}
