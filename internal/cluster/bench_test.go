package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/vclock"
)

// BenchmarkClusterPointQuery measures the router's tax on the hot
// path: the same point query against a shard directly vs through the
// front door (body re-read, admission, policy pick, second transport
// hop). bench.sh enforces via=router ≤ 1.15 × via=direct.
func BenchmarkClusterPointQuery(b *testing.B) {
	shard, _ := newShard(b, 100, nil)
	node := NewLocalNode("shard-0", shard)
	// Admission is opened wide: the bench measures routing overhead,
	// not the edge limiter's (correct) rejection of 100k qps clients.
	r, err := NewRouter([]*Node{node}, Config{
		Policy:    PolicyHash,
		AdmitRate: 1e9, AdmitBurst: 1e9, MaxInFlight: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	body, _ := json.Marshal(server.QueryRequest{SQL: `SELECT * FROM items WHERE id = 42`})

	run := func(b *testing.B, h http.Handler) {
		client := &http.Client{Transport: handlerTransport{h: h}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req, err := http.NewRequest(http.MethodPost, "http://bench/query", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Identity", "bench")
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("HTTP %d", resp.StatusCode)
			}
		}
	}

	b.Run("via=direct", func(b *testing.B) { run(b, shard) })
	b.Run("via=router", func(b *testing.B) { run(b, r.Handler()) })

	// via=remote shapes the node like an HTTP peer (no local fast path,
	// no direct handler): the forward path must hand the pooled request
	// body to the transport without copying it — ReportAllocs keeps the
	// per-request transport cost visible.
	remote := &Node{name: "shard-r", base: "http://shard-r", http: &http.Client{Transport: handlerTransport{h: shard}}}
	rr, err := NewRouter([]*Node{remote}, Config{
		Policy:    PolicyHash,
		AdmitRate: 1e9, AdmitBurst: 1e9, MaxInFlight: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("via=remote", func(b *testing.B) { run(b, rr.Handler()) })
}

// newIOShard builds a shard whose engine models 2004-era page I/O
// (250µs per physical page access, an 8-page pool, one scan worker), so
// scans are I/O-bound the way the paper's delay accounting assumes —
// and so scatter-gather's concurrency shows up even on a single-core
// bench host: shard scan workers sleeping in the I/O hook overlap.
func newIOShard(b *testing.B, catalogN int) http.Handler {
	b.Helper()
	db, err := engine.Open(b.TempDir(),
		engine.WithPoolPages(8),
		engine.WithIOCost(func() { time.Sleep(250 * time.Microsecond) }),
		engine.WithScanWorkers(1),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE items (id INT PRIMARY KEY, v TEXT)`); err != nil {
		b.Fatal(err)
	}
	shield, err := core.New(db, core.Config{
		N: catalogN, Alpha: 1, Beta: 1, Cap: time.Millisecond,
		Clock:                vclock.NewSimulated(time.Date(2004, 8, 1, 0, 0, 0, 0, time.UTC)),
		RegistrationInterval: time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(shield)
	if err != nil {
		b.Fatal(err)
	}
	return srv.Handler()
}

func benchLoadItems(b *testing.B, r *Router, tuples int) {
	b.Helper()
	pad := strings.Repeat("x", 180)
	// Chunked loads keep each statement's pinned-page working set
	// inside the deliberately small pool; placement still goes through
	// the router's split-insert path.
	const chunk = 100
	for lo := 1; lo <= tuples; lo += chunk {
		var sb strings.Builder
		sb.WriteString("INSERT INTO items VALUES ")
		for i := lo; i < lo+chunk && i <= tuples; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, '%s%d')", i, pad, i)
		}
		if err := r.ExecScript(sb.String()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchQuery(b *testing.B, h http.Handler, body []byte) {
	b.Helper()
	client := &http.Client{Transport: handlerTransport{h: h}}
	req, err := http.NewRequest(http.MethodPost, "http://bench/query", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Identity", "bench")
	resp, err := client.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
}

// BenchmarkClusterScan is the capacity claim under measurement: the
// same I/O-bound full-table aggregate over the same 2000 tuples, held
// by one shard (partitions=1) vs spread over four (partitions=4). With
// real horizontal scale the four shards each scan ~1/4 of the pages
// concurrently; bench.sh enforces partitions=4 ≤ 0.5 × partitions=1.
func BenchmarkClusterScan(b *testing.B) {
	const tuples = 2000
	scan := func(b *testing.B, shards int) {
		nodes := make([]*Node, shards)
		for i := range nodes {
			nodes[i] = NewLocalNode(fmt.Sprintf("shard-%d", i), newIOShard(b, tuples))
		}
		r, err := NewRouter(nodes, Config{
			Partitions: 64,
			AdmitRate:  1e9, AdmitBurst: 1e9, MaxInFlight: 1 << 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchLoadItems(b, r, tuples)
		body, _ := json.Marshal(server.QueryRequest{SQL: `SELECT COUNT(*) FROM items`})
		h := r.Handler()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchQuery(b, h, body)
		}
	}
	b.Run("partitions=1", func(b *testing.B) { scan(b, 1) })
	b.Run("partitions=4", func(b *testing.B) { scan(b, 4) })
}

// BenchmarkClusterWrite measures write amplification: a single-row
// INSERT against a 4-shard cluster, replicated (every shard applies it,
// behind the router-wide write ordering lock) vs partitioned (exactly
// the owner applies it, no global lock). bench.sh enforces
// mode=partitioned ≤ 1.0 × mode=replicated.
func BenchmarkClusterWrite(b *testing.B) {
	write := func(b *testing.B, partitions int) {
		nodes := make([]*Node, 4)
		for i := range nodes {
			h, _ := newShard(b, 1, nil)
			nodes[i] = NewLocalNode(fmt.Sprintf("shard-%d", i), h)
		}
		r, err := NewRouter(nodes, Config{
			Partitions: partitions,
			AdmitRate:  1e9, AdmitBurst: 1e9, MaxInFlight: 1 << 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		h := r.Handler()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body, _ := json.Marshal(server.QueryRequest{
				SQL: fmt.Sprintf(`INSERT INTO items VALUES (%d, 'w')`, 1000+i),
			})
			benchQuery(b, h, body)
		}
	}
	b.Run("mode=replicated", func(b *testing.B) { write(b, 0) })
	b.Run("mode=partitioned", func(b *testing.B) { write(b, 64) })
}

// BenchmarkClusterReplicatedPoint prices replica groups on the read
// hot path: the same point query through a 4-shard partitioned router
// with R=1 vs R=2. With every replica healthy the group walk stops at
// its first readable member, so R=2 should cost only the group lookup;
// bench.sh enforces r=2 ≤ 1.3 × r=1.
func BenchmarkClusterReplicatedPoint(b *testing.B) {
	point := func(b *testing.B, replication int) {
		nodes := make([]*Node, 4)
		for i := range nodes {
			h, _ := newEmptyShard(b, 100, nil)
			nodes[i] = NewLocalNode(fmt.Sprintf("shard-%d", i), h)
		}
		r, err := NewRouter(nodes, Config{
			Partitions:  64,
			Replication: replication,
			AdmitRate:   1e9, AdmitBurst: 1e9, MaxInFlight: 1 << 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO items VALUES ")
		for i := 1; i <= 100; i++ {
			if i > 1 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'v%d')", i, i)
		}
		if err := r.ExecScript(sb.String()); err != nil {
			b.Fatal(err)
		}
		body, _ := json.Marshal(server.QueryRequest{SQL: `SELECT * FROM items WHERE id = 42`})
		h := r.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchQuery(b, h, body)
		}
	}
	b.Run("r=1", func(b *testing.B) { point(b, 1) })
	b.Run("r=2", func(b *testing.B) { point(b, 2) })
}
