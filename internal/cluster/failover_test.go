package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestShardFailover kills one shard mid-workload and checks the
// ISSUE's failover contract: reads keep flowing via re-routing, no
// acked write is lost, and the router's /healthz names the degraded
// peer.
func TestShardFailover(t *testing.T) {
	const shards = 3
	nodes := make([]*Node, shards)
	kills := make([]*killableTransport, shards)
	for i := range nodes {
		h, _ := newShard(t, 20, nil)
		nodes[i], kills[i] = newKillableNode(fmt.Sprintf("shard-%d", i), h)
	}
	r, err := NewRouter(nodes, Config{Policy: PolicyHash})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handler()

	// Warm-up workload: writes replicate everywhere, reads succeed.
	resp, body := query(t, h, "w", `INSERT INTO items VALUES (100, 'pre-kill')`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-kill write: HTTP %d: %s", resp.StatusCode, body)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("reader-%d", i)
		if resp, body := query(t, h, id, `SELECT * FROM items WHERE id = 100`); resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-kill read %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}

	// Kill shard 1 mid-workload.
	kills[1].dead.Store(true)

	// Every read — including those whose hash owner is the dead shard —
	// keeps flowing, and the acked pre-kill write is still readable.
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("reader-%d", i)
		resp, body := query(t, h, id, `SELECT v FROM items WHERE id = 100`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill read %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var q struct {
			Rows [][]string `json:"rows"`
		}
		if err := json.Unmarshal(body, &q); err != nil {
			t.Fatal(err)
		}
		if len(q.Rows) != 1 || q.Rows[0][0] != "pre-kill" {
			t.Fatalf("post-kill read %d lost the acked write: %s", i, body)
		}
	}

	// Writes during the outage ack against the survivors and stay
	// readable through the router.
	resp, body = query(t, h, "w", `INSERT INTO items VALUES (200, 'during-outage')`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outage write: HTTP %d: %s", resp.StatusCode, body)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("outage-reader-%d", i)
		resp, body := query(t, h, id, `SELECT v FROM items WHERE id = 200`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("outage read: HTTP %d: %s", resp.StatusCode, body)
		}
		var q struct {
			Rows [][]string `json:"rows"`
		}
		json.Unmarshal(body, &q)
		if len(q.Rows) != 1 || q.Rows[0][0] != "during-outage" {
			t.Fatalf("outage write unreadable via router: %s", body)
		}
	}

	// /healthz reports the degraded peer by name.
	resp, body = do(t, h, http.MethodGet, "/healthz", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	var health HealthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("health status = %q, want degraded: %s", health.Status, body)
	}
	downNamed := false
	for _, p := range health.Peers {
		if p.Name == "shard-1" && p.Status == "down" {
			downNamed = true
		}
		if p.Name != "shard-1" && p.Status != "ok" {
			t.Errorf("healthy peer %s reported %q", p.Name, p.Status)
		}
	}
	if !downNamed {
		t.Fatalf("healthz does not name shard-1 down: %s", body)
	}
	if v := r.peerDown.Value(); v != 1 {
		t.Errorf("cluster_peer_down = %d, want 1", v)
	}
	if r.readFailover.Value() == 0 {
		t.Error("cluster_read_failovers_total = 0; hash-owned reads never failed over")
	}

	// Revive the shard; the operator latch-clear restores full health.
	kills[1].dead.Store(false)
	resp, _ = do(t, h, http.MethodPost, "/admin/peer-up", "", `{"name":"shard-1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-up: HTTP %d", resp.StatusCode)
	}
	resp, body = do(t, h, http.MethodGet, "/healthz", "", "")
	json.Unmarshal(body, &health)
	if health.Status != "ok" {
		t.Fatalf("post-revival health = %q, want ok: %s", health.Status, body)
	}
	if v := r.peerDown.Value(); v != 0 {
		t.Errorf("post-revival cluster_peer_down = %d, want 0", v)
	}
}

// TestAllShardsDown checks the router's terminal degradation: with no
// healthy peer, reads and writes answer 503 instead of hanging.
func TestAllShardsDown(t *testing.T) {
	h0, _ := newShard(t, 10, nil)
	node, kill := newKillableNode("only", h0)
	r, err := NewRouter([]*Node{node}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	kill.dead.Store(true)
	// First query latches the peer down (transport error on the walk).
	resp, _ := query(t, r.Handler(), "x", `SELECT * FROM items WHERE id = 1`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read with dead shard: HTTP %d, want 503", resp.StatusCode)
	}
	// Now latched: both paths answer 503 cleanly.
	resp, _ = query(t, r.Handler(), "x", `SELECT * FROM items WHERE id = 1`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("latched read: HTTP %d, want 503", resp.StatusCode)
	}
	resp, _ = query(t, r.Handler(), "x", `INSERT INTO items VALUES (5, 'x')`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("latched write: HTTP %d, want 503", resp.StatusCode)
	}
}
