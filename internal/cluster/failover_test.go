package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestShardFailover kills one shard mid-workload and checks the
// ISSUE's failover contract: reads keep flowing via re-routing, no
// acked write is lost, and the router's /healthz names the degraded
// peer.
func TestShardFailover(t *testing.T) {
	const shards = 3
	nodes := make([]*Node, shards)
	kills := make([]*killableTransport, shards)
	for i := range nodes {
		h, _ := newShard(t, 20, nil)
		nodes[i], kills[i] = newKillableNode(fmt.Sprintf("shard-%d", i), h)
	}
	r, err := NewRouter(nodes, Config{Policy: PolicyHash})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handler()

	// Warm-up workload: writes replicate everywhere, reads succeed.
	resp, body := query(t, h, "w", `INSERT INTO items VALUES (100, 'pre-kill')`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-kill write: HTTP %d: %s", resp.StatusCode, body)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("reader-%d", i)
		if resp, body := query(t, h, id, `SELECT * FROM items WHERE id = 100`); resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-kill read %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}

	// Kill shard 1 mid-workload.
	kills[1].dead.Store(true)

	// Every read — including those whose hash owner is the dead shard —
	// keeps flowing, and the acked pre-kill write is still readable.
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("reader-%d", i)
		resp, body := query(t, h, id, `SELECT v FROM items WHERE id = 100`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill read %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var q struct {
			Rows [][]string `json:"rows"`
		}
		if err := json.Unmarshal(body, &q); err != nil {
			t.Fatal(err)
		}
		if len(q.Rows) != 1 || q.Rows[0][0] != "pre-kill" {
			t.Fatalf("post-kill read %d lost the acked write: %s", i, body)
		}
	}

	// Writes during the outage ack against the survivors and stay
	// readable through the router.
	resp, body = query(t, h, "w", `INSERT INTO items VALUES (200, 'during-outage')`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outage write: HTTP %d: %s", resp.StatusCode, body)
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("outage-reader-%d", i)
		resp, body := query(t, h, id, `SELECT v FROM items WHERE id = 200`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("outage read: HTTP %d: %s", resp.StatusCode, body)
		}
		var q struct {
			Rows [][]string `json:"rows"`
		}
		json.Unmarshal(body, &q)
		if len(q.Rows) != 1 || q.Rows[0][0] != "during-outage" {
			t.Fatalf("outage write unreadable via router: %s", body)
		}
	}

	// /healthz reports the degraded peer by name.
	resp, body = do(t, h, http.MethodGet, "/healthz", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	var health HealthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("health status = %q, want degraded: %s", health.Status, body)
	}
	downNamed := false
	for _, p := range health.Peers {
		if p.Name == "shard-1" && p.Status == "down" {
			downNamed = true
		}
		if p.Name != "shard-1" && p.Status != "ok" {
			t.Errorf("healthy peer %s reported %q", p.Name, p.Status)
		}
	}
	if !downNamed {
		t.Fatalf("healthz does not name shard-1 down: %s", body)
	}
	if v := r.peerDown.Value(); v != 1 {
		t.Errorf("cluster_peer_down = %d, want 1", v)
	}
	if r.readFailover.Value() == 0 {
		t.Error("cluster_read_failovers_total = 0; hash-owned reads never failed over")
	}

	// Revive the shard; the operator latch-clear restores full health.
	kills[1].dead.Store(false)
	resp, _ = do(t, h, http.MethodPost, "/admin/peer-up", "", `{"name":"shard-1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-up: HTTP %d", resp.StatusCode)
	}
	resp, body = do(t, h, http.MethodGet, "/healthz", "", "")
	json.Unmarshal(body, &health)
	if health.Status != "ok" {
		t.Fatalf("post-revival health = %q, want ok: %s", health.Status, body)
	}
	if v := r.peerDown.Value(); v != 0 {
		t.Errorf("post-revival cluster_peer_down = %d, want 0", v)
	}
}

// TestProbeRevivalIsWritesOnly: the anti-entropy health probe may
// discover a down peer answering again, but reachability says nothing
// about the fan-out writes it missed while down — there is no data
// resync channel, only sketches re-converge. So probe revival lands
// the peer in writes-only resync: it receives new writes (so it stops
// falling behind) but serves no reads until an operator resyncs it and
// confirms POST /admin/peer-up.
func TestProbeRevivalIsWritesOnly(t *testing.T) {
	const shards = 3
	nodes := make([]*Node, shards)
	kills := make([]*killableTransport, shards)
	shields := make([]*core.Shield, shards)
	for i := range nodes {
		h, sh := newShard(t, 20, nil)
		nodes[i], kills[i] = newKillableNode(fmt.Sprintf("shard-%d", i), h)
		shields[i] = sh
	}
	r, err := NewRouter(nodes, Config{Policy: PolicyRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handler()

	// Kill shard 1; a write latches it down and acks on the survivors.
	kills[1].dead.Store(true)
	if resp, body := query(t, h, "w", `INSERT INTO items VALUES (300, 'missed')`); resp.StatusCode != http.StatusOK {
		t.Fatalf("outage write: HTTP %d: %s", resp.StatusCode, body)
	}
	if !nodes[1].Down() {
		t.Fatal("dead shard not latched down by the write")
	}

	// Transport heals; the next exchange round's probe revives the
	// peer — onto the write plane only.
	kills[1].dead.Store(false)
	if err := r.ExchangeNow(); err != nil {
		t.Fatalf("exchange: %v", err)
	}
	if nodes[1].Down() {
		t.Fatal("revived peer still latched down")
	}
	if !nodes[1].Resync() {
		t.Fatal("probe revival cleared the peer into full rotation; want writes-only resync")
	}
	if v := r.peerResync.Value(); v != 1 {
		t.Errorf("cluster_peer_resync = %d, want 1", v)
	}

	// Reads — even under round-robin — must avoid the resync peer, and
	// every one of them must see the write it missed.
	preReads := shields[1].QueriesServed()
	for i := 0; i < 12; i++ {
		resp, body := query(t, h, fmt.Sprintf("rdr-%d", i), `SELECT v FROM items WHERE id = 300`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var q struct {
			Rows [][]string `json:"rows"`
		}
		json.Unmarshal(body, &q)
		if len(q.Rows) != 1 || q.Rows[0][0] != "missed" {
			t.Fatalf("read %d lost the acked write (served by an un-resynced replica?): %s", i, body)
		}
	}
	if got := shields[1].QueriesServed(); got != preReads {
		t.Fatalf("resync peer served %d reads; it is missing acked writes", got-preReads)
	}

	// New writes keep reaching the resync peer.
	if resp, body := query(t, h, "w", `INSERT INTO items VALUES (301, 'post-revival')`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-revival write: HTTP %d: %s", resp.StatusCode, body)
	}
	if res, err := shields[1].DB().Exec(`SELECT v FROM items WHERE id = 301`); err != nil || len(res.Rows) != 1 {
		t.Errorf("resync peer missed a post-revival write (rows=%v err=%v)", res, err)
	}

	// /healthz names the resync peer and stays degraded.
	_, body := do(t, h, http.MethodGet, "/healthz", "", "")
	var health HealthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("health status = %q with a resync peer, want degraded: %s", health.Status, body)
	}
	named := false
	for _, p := range health.Peers {
		if p.Name == "shard-1" && p.Status == "resync" {
			named = true
		}
	}
	if !named {
		t.Fatalf("healthz does not name shard-1 resync: %s", body)
	}

	// Operator peer-up is the only way back into the read rotation.
	if resp, _ := do(t, h, http.MethodPost, "/admin/peer-up", "", `{"name":"shard-1"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-up: HTTP %d", resp.StatusCode)
	}
	if nodes[1].Resync() || nodes[1].Down() {
		t.Fatal("peer-up did not clear the latches")
	}
	_, body = do(t, h, http.MethodGet, "/healthz", "", "")
	json.Unmarshal(body, &health)
	if health.Status != "ok" {
		t.Fatalf("post-peer-up health = %q, want ok", health.Status)
	}
}

// writeFailTransport simulates a replica whose durable write path is
// broken: INSERTs on /query answer HTTP 500 (the process is alive and
// answering — no transport failure, no down latch) while everything
// else passes through.
type writeFailTransport struct {
	inner http.RoundTripper
	fail  atomic.Bool
}

func (f *writeFailTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.fail.Load() && req.Method == http.MethodPost && req.URL.Path == "/query" {
		body, err := io.ReadAll(req.Body)
		if err != nil {
			return nil, err
		}
		if bytes.Contains(body, []byte("INSERT")) {
			return &http.Response{
				Status:     http.StatusText(http.StatusInternalServerError),
				StatusCode: http.StatusInternalServerError,
				Header:     make(http.Header),
				Body:       io.NopCloser(strings.NewReader(`{"error":"wal: disk failure"}`)),
				Request:    req,
			}, nil
		}
		req.Body = io.NopCloser(bytes.NewReader(body))
	}
	return f.inner.RoundTrip(req)
}

// TestWriteDivergenceQuarantinesShard: when the router acks a write,
// a reachable shard that answered the same statement with an error has
// diverged from the replica set — it must leave the read path
// (writes-only resync) instead of staying in rotation serving reads
// that are missing acked writes.
func TestWriteDivergenceQuarantinesShard(t *testing.T) {
	const shards = 3
	nodes := make([]*Node, shards)
	fails := make([]*writeFailTransport, shards)
	shields := make([]*core.Shield, shards)
	for i := range nodes {
		h, sh := newShard(t, 20, nil)
		ft := &writeFailTransport{inner: handlerTransport{h: h}}
		name := fmt.Sprintf("shard-%d", i)
		nodes[i] = &Node{name: name, base: "http://" + name, http: &http.Client{Transport: ft}, local: ft}
		fails[i] = ft
		shields[i] = sh
	}
	r, err := NewRouter(nodes, Config{Policy: PolicyRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handler()

	fails[1].fail.Store(true)
	resp, body := query(t, h, "w", `INSERT INTO items VALUES (400, 'diverged')`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write: HTTP %d: %s — two healthy replicas accepted it", resp.StatusCode, body)
	}
	if !nodes[1].Resync() {
		t.Fatal("diverged shard still in full rotation")
	}
	if nodes[1].Down() {
		t.Fatal("diverged shard latched down; it is alive, just diverged")
	}
	if v := r.writeDiverged.Value(); v != 1 {
		t.Errorf("cluster_write_diverged_total = %d, want 1", v)
	}

	// Every read sees the acked write; none is served by the diverged
	// replica that rejected it.
	preReads := shields[1].QueriesServed()
	for i := 0; i < 12; i++ {
		resp, body := query(t, h, fmt.Sprintf("rdr-%d", i), `SELECT v FROM items WHERE id = 400`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var q struct {
			Rows [][]string `json:"rows"`
		}
		json.Unmarshal(body, &q)
		if len(q.Rows) != 1 || q.Rows[0][0] != "diverged" {
			t.Fatalf("read %d missed the acked write: %s", i, body)
		}
	}
	if got := shields[1].QueriesServed(); got != preReads {
		t.Fatalf("diverged shard served %d reads while quarantined", got-preReads)
	}
}

// TestConcurrentWritesConvergeReplicas: non-commutative writes from
// concurrent clients must leave every replica in the same final state
// — the router serializes fan-outs so all shards apply one order.
func TestConcurrentWritesConvergeReplicas(t *testing.T) {
	r, shields := testCluster(t, 3, 10, nil, Config{})
	h := r.Handler()
	const writers = 4
	const iters = 8
	var wg sync.WaitGroup
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				sql := fmt.Sprintf(`UPDATE items SET v = 'w%d-%d' WHERE id = 5`, wid, k)
				resp, body := query(t, h, fmt.Sprintf("writer-%d", wid), sql)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("writer %d iter %d: HTTP %d: %s", wid, k, resp.StatusCode, body)
					return
				}
			}
		}(wid)
	}
	wg.Wait()
	vals := make([]string, len(shields))
	for i, sh := range shields {
		res, err := sh.DB().Exec(`SELECT v FROM items WHERE id = 5`)
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("shard %d: rows=%v err=%v", i, res, err)
		}
		vals[i] = res.Rows[0][0].String()
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[0] {
			t.Fatalf("replicas diverged after concurrent UPDATEs: %v", vals)
		}
	}
}

// TestDirectShardPanicDoesNotLeakInflight: a panic inside a local
// shard handler unwinds through serveDirect up to the router's
// recovery middleware; both the per-node and the router-wide in-flight
// counts must be restored or the least-loaded policy and /healthz skew
// forever.
func TestDirectShardPanicDoesNotLeakInflight(t *testing.T) {
	panicky := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		panic("shard bug")
	})
	n := NewLocalNode("boom", panicky)
	r, err := NewRouter([]*Node{n}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := query(t, r.Handler(), "x", `SELECT * FROM items WHERE id = 1`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking shard: HTTP %d, want 500 from recovery", resp.StatusCode)
	}
	if v := n.InFlight(); v != 0 {
		t.Errorf("node in-flight leaked after panic: %d", v)
	}
	if v := r.inflight.Value(); v != 0 {
		t.Errorf("router in-flight leaked after panic: %d", v)
	}
}

// TestAllShardsDown checks the router's terminal degradation: with no
// healthy peer, reads and writes answer 503 instead of hanging.
func TestAllShardsDown(t *testing.T) {
	h0, _ := newShard(t, 10, nil)
	node, kill := newKillableNode("only", h0)
	r, err := NewRouter([]*Node{node}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	kill.dead.Store(true)
	// First query latches the peer down (transport error on the walk).
	resp, _ := query(t, r.Handler(), "x", `SELECT * FROM items WHERE id = 1`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read with dead shard: HTTP %d, want 503", resp.StatusCode)
	}
	// Now latched: both paths answer 503 cleanly.
	resp, _ = query(t, r.Handler(), "x", `SELECT * FROM items WHERE id = 1`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("latched read: HTTP %d, want 503", resp.StatusCode)
	}
	resp, _ = query(t, r.Handler(), "x", `INSERT INTO items VALUES (5, 'x')`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("latched write: HTTP %d, want 503", resp.StatusCode)
	}
}
