package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/detect"
	"repro/internal/server"
)

// Anti-entropy: the router periodically pulls each shard's sketch
// delta (principals observed locally since the last round whose
// coverage clears the export floor) and pushes the union to every
// other shard. Sketches are CRDTs — HLL unions by register max,
// MinHash by slot min — so hub-spoke exchange through the router
// converges every shard on the global per-principal view in ONE round,
// and re-delivery is harmless. Staleness is therefore bounded by one
// exchange period: a Sybil spreading identities (or one identity's
// queries) across shards under-prices for at most that long.
//
// The exchange rides the same GET/POST /admin/sketches endpoints and
// node transports queries use, so local and HTTP clusters serialize
// identically and a dead peer latches down here exactly as it would on
// the query path.

// ExchangeNow runs one synchronous anti-entropy round and returns the
// first error encountered (the round still visits every peer).
// Tests and the experiments drive rounds directly; deployments use
// StartAntiEntropy.
func (r *Router) ExchangeNow() error {
	r.ae.mu.Lock()
	defer r.ae.mu.Unlock()
	return r.exchangeLocked(DefaultExportFloor)
}

// ExchangeNowFloor is ExchangeNow with an explicit export floor.
func (r *Router) ExchangeNowFloor(floor float64) error {
	r.ae.mu.Lock()
	defer r.ae.mu.Unlock()
	return r.exchangeLocked(floor)
}

func (r *Router) exchangeLocked(floor float64) error {
	var firstErr error
	// Probe phase: each down peer gets a cheap /healthz check. A peer
	// that answers rejoins the write plane and the exchange in the
	// writes-only resync state — it missed fan-out writes while down,
	// so reachability alone must NOT put it back on the read path
	// (see Node.resync; only an operator's /admin/peer-up does that).
	// The revived peer also missed whole exchange rounds (and may have
	// restarted and lost its table), so revival resets EVERY source
	// watermark — the pulls below then re-export full history and the
	// straggler's *sketches* converge within this round. Merges are
	// idempotent, so the re-delivery to up-to-date peers costs
	// bandwidth, not correctness.
	revived := false
	for _, n := range r.nodes {
		if n.down.Load() && r.probePeer(n) {
			revived = true
		}
	}
	if revived {
		for j := range r.ae.marks {
			r.ae.marks[j] = 0
		}
		r.syncPeerDown()
	}

	// Pull phase: collect each reachable shard's delta (resync peers
	// included — the exchange is exactly their sketch repair channel).
	// New watermarks stay tentative until the push phase lands: a
	// delta is only "delivered" once every push of the round succeeds.
	pages := make([]*server.SketchPage, len(r.nodes))
	marks := make([]uint64, len(r.nodes))
	copy(marks, r.ae.marks)
	for i, n := range r.nodes {
		if n.down.Load() {
			continue
		}
		page, err := r.pullSketches(n, r.ae.marks[i], floor)
		if err != nil {
			r.aeErrors.Inc()
			r.syncPeerDown()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !page.Enabled {
			continue // shard runs without a detector; nothing to exchange
		}
		pages[i] = page
		marks[i] = page.Since
		for _, sn := range page.Sketches {
			r.aeBytes.Add(int64(sn.WireBytes()))
		}
		r.aePrincipals.Add(int64(len(page.Sketches)))
	}

	// Push phase: every shard absorbs every *other* shard's delta.
	// Advancing the pull watermark past pushed state is what keeps the
	// hub from echoing: Absorb does not mark sketches locally-seen.
	pushFailed := false
	for j, n := range r.nodes {
		if n.down.Load() {
			continue
		}
		var batch []detect.SketchSnapshot
		for i, page := range pages {
			if i == j || page == nil {
				continue
			}
			batch = append(batch, page.Sketches...)
		}
		if len(batch) == 0 {
			continue
		}
		rejected, err := r.pushSketches(n, batch)
		if err != nil {
			r.aeErrors.Inc()
			r.syncPeerDown()
			pushFailed = true
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.aeRejected.Add(int64(rejected))
	}
	// Commit the watermarks only if every push landed. A failed push —
	// even an HTTP error from a shard that stays up — leaves the marks
	// where they were, so the next round re-pulls the same deltas and
	// re-pushes them; idempotent merges make the re-delivery to the
	// peers that DID succeed free of everything but bandwidth. Without
	// this, a one-round push failure would permanently withhold those
	// sketches from the failed peer, breaking the one-period staleness
	// bound.
	if !pushFailed {
		copy(r.ae.marks, marks)
	}
	r.aeRounds.Inc()
	r.ae.lastRound = r.cfg.Clock.Now()
	return firstErr
}

// mergeLag is the live staleness gauge: seconds since the last
// completed exchange round (0 before the first round — nothing has
// diverged yet if nothing has exchanged).
func (r *Router) mergeLag() float64 {
	r.ae.mu.Lock()
	last := r.ae.lastRound
	r.ae.mu.Unlock()
	if last.IsZero() {
		return 0
	}
	return r.cfg.Clock.Now().Sub(last).Seconds()
}

// probePeer checks a down peer's /healthz. An answer clears the down
// latch but latches resync in its place: the peer is reachable again
// and rejoins the write fan-out and the sketch exchange, but it missed
// acked writes while down and this router has no data-resync channel
// (only sketches re-converge), so it must not serve reads until an
// operator replays/copies the data and confirms POST /admin/peer-up.
func (r *Router) probePeer(n *Node) bool {
	req, err := http.NewRequest(http.MethodGet, n.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := n.http.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	n.latchResync() // down→resync: same episode, original stamp kept
	n.down.Store(false)
	return true
}

func (r *Router) pullSketches(n *Node, since uint64, floor float64) (*server.SketchPage, error) {
	url := fmt.Sprintf("%s/admin/sketches?since=%d&floor=%g", n.base, since, floor)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: pulling sketches from %s: %w", n.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s sketch export returned HTTP %d", n.name, resp.StatusCode)
	}
	var page server.SketchPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, fmt.Errorf("cluster: decoding %s sketch page: %w", n.name, err)
	}
	return &page, nil
}

func (r *Router) pushSketches(n *Node, batch []detect.SketchSnapshot) (rejected int, err error) {
	// Respect the shard's per-request batch ceiling; sketches are a
	// few KiB each, so chunks stay well-bounded.
	const chunk = 1000
	for len(batch) > 0 {
		part := batch
		if len(part) > chunk {
			part = batch[:chunk]
		}
		batch = batch[len(part):]
		body, err := json.Marshal(server.SketchAbsorbRequest{Sketches: part})
		if err != nil {
			return rejected, err
		}
		req, err := http.NewRequest(http.MethodPost, n.base+"/admin/sketches", bytes.NewReader(body))
		if err != nil {
			return rejected, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := n.do(req)
		if err != nil {
			return rejected, fmt.Errorf("cluster: pushing sketches to %s: %w", n.name, err)
		}
		var out server.SketchAbsorbResponse
		decErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return rejected, fmt.Errorf("cluster: %s sketch absorb returned HTTP %d", n.name, resp.StatusCode)
		}
		if decErr != nil {
			return rejected, fmt.Errorf("cluster: decoding %s absorb response: %w", n.name, decErr)
		}
		rejected += out.Rejected
	}
	return rejected, nil
}

// StartAntiEntropy launches the periodic exchange loop. interval ≤ 0
// means DefaultExchangeEvery; floor < 0 means DefaultExportFloor.
// Call StopAntiEntropy to halt it; starting twice stops the first
// loop.
func (r *Router) StartAntiEntropy(interval time.Duration, floor float64) {
	if interval <= 0 {
		interval = DefaultExchangeEvery
	}
	if floor < 0 {
		floor = DefaultExportFloor
	}
	r.StopAntiEntropy()
	stop := make(chan struct{})
	done := make(chan struct{})
	r.ae.mu.Lock()
	r.ae.stop, r.ae.done = stop, done
	r.ae.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.ae.mu.Lock()
				r.exchangeLocked(floor)
				r.ae.mu.Unlock()
			}
		}
	}()
}

// StopAntiEntropy halts the exchange loop and waits for the in-flight
// round, if any, to finish. Safe to call when no loop is running.
func (r *Router) StopAntiEntropy() {
	r.ae.mu.Lock()
	stop, done := r.ae.stop, r.ae.done
	r.ae.stop, r.ae.done = nil, nil
	r.ae.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
