// Package cluster turns N independent delaydb nodes into one front
// door: a thin router consistent-hash-routes queries across shards
// (with round-robin and least-loaded alternatives), admission control
// rejects abusive traffic at the edge before any shard spends work on
// it, and a periodic anti-entropy exchanger gossips per-principal
// detection sketches between shards so coverage pricing and coalition
// clustering operate on the union view — the property that makes
// sharding itself not be an extraction attack (a Sybil spreading its
// identities across shards must price as if one node saw everything).
package cluster

import (
	"fmt"
	"sort"
)

// defaultVNodes is the virtual-node multiplier: enough points that the
// keyspace splits within a few percent of evenly for small clusters,
// small enough that the ring stays a cache-resident sorted array.
const defaultVNodes = 128

// ring is a consistent-hash ring over node indices. Immutable after
// construction — node failure is handled by walking the preference
// sequence at lookup time, not by mutating the ring, so a flapping
// peer never reshuffles keys owned by healthy nodes.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int
}

func newRing(nodes, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, nodes*vnodes), nodes: nodes}
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodes; v++ {
			h := fnv64a(fmt.Sprintf("node-%d#%d", n, v))
			r.points = append(r.points, ringPoint{hash: h, node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// owner returns the node index owning key: the first ring point at or
// after the key's hash, wrapping at the top.
func (r *ring) owner(key string) int {
	return r.points[r.search(key)].node
}

// sequence returns all node indices in preference order for key: the
// owner first, then each distinct node in ring order. Failover walks
// this sequence, so a key's fallback shard is as stable as its owner.
func (r *ring) sequence(key string) []int {
	out := make([]int, 0, r.nodes)
	seen := make([]bool, r.nodes)
	i := r.search(key)
	for len(out) < r.nodes {
		n := r.points[i].node
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

func (r *ring) search(key string) int {
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// fnv64a is the stdlib FNV-1a without the hash.Hash allocation.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
