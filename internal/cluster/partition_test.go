package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/vclock"
)

// newEmptyShard is newShard with no rows and an explicit catalog size:
// partitioned shards hold ~1/P of the data but price coverage against
// the global catalog, and the data arrives through the router so the
// split-insert path places each tuple on its owner.
func newEmptyShard(t testing.TB, catalogN int, det *detect.Config) (http.Handler, *core.Shield) {
	t.Helper()
	db, err := engine.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE items (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	shield, err := core.New(db, core.Config{
		N: catalogN, Alpha: 1, Beta: 1, Cap: time.Millisecond,
		Clock:                vclock.NewSimulated(time.Date(2004, 8, 1, 0, 0, 0, 0, time.UTC)),
		Detect:               det,
		RegistrationInterval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(shield)
	if err != nil {
		t.Fatal(err)
	}
	return srv.Handler(), shield
}

// testPartitionedCluster builds n empty shards behind a partitioned
// router and loads tuples 1..tuples through the router itself.
func testPartitionedCluster(t testing.TB, n, partitions, tuples int, det *detect.Config, cfg Config) (*Router, []*core.Shield, []*Node) {
	t.Helper()
	catalog := tuples
	if catalog == 0 {
		catalog = 100 // empty to start; tuples arrive through the router
	}
	nodes := make([]*Node, n)
	shields := make([]*core.Shield, n)
	for i := range nodes {
		h, sh := newEmptyShard(t, catalog, det)
		nodes[i] = NewLocalNode(fmt.Sprintf("shard-%d", i), h)
		shields[i] = sh
	}
	cfg.Partitions = partitions
	r, err := NewRouter(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tuples > 0 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO items VALUES ")
		for i := 1; i <= tuples; i++ {
			if i > 1 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'v%d')", i, i)
		}
		if err := r.ExecScript(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	return r, shields, nodes
}

func decodeQuery(t testing.TB, body []byte) server.QueryResponse {
	t.Helper()
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return qr
}

// shardCount asks one shard directly how many tuples it holds.
func shardCount(t testing.TB, n *Node) int {
	t.Helper()
	resp, body := query(t, n.direct, "probe-"+n.name, `SELECT COUNT(*) FROM items`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard count: HTTP %d: %s", resp.StatusCode, body)
	}
	qr := decodeQuery(t, body)
	var c int
	fmt.Sscanf(qr.Rows[0][0], "%d", &c)
	return c
}

func TestPartitionMapPlacement(t *testing.T) {
	pm, err := NewPartitionMap(1, 64, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Version != 1 || len(pm.Owners) != 64 {
		t.Fatalf("map = v%d/%d partitions, want v1/64", pm.Version, len(pm.Owners))
	}
	counts := make(map[int]int)
	for i := int64(0); i < 10000; i++ {
		o := pm.OwnerOf(i)
		if o != pm.OwnerOf(i) {
			t.Fatal("OwnerOf not deterministic")
		}
		counts[o]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 nodes own tuples: %v", len(counts), counts)
	}
	for n, c := range counts {
		// Fair share 2500; the ring plus splitmix should keep every
		// node within a factor of ~2.
		if c < 1000 || c > 5500 {
			t.Errorf("node %d owns %d of 10000 keys: %v", n, c, counts)
		}
	}
	if _, err := NewPartitionMap(1, 0, 4, 0, 1); err == nil {
		t.Error("accepted 0 partitions")
	}
	if _, err := NewPartitionMap(1, 8, 0, 0, 1); err == nil {
		t.Error("accepted 0 nodes")
	}
}

// TestPartitionedDataPlacementAndPointReads is the capacity claim in
// miniature: tuples loaded through the router land exactly once, on
// their owner, and point queries come back whole.
func TestPartitionedDataPlacementAndPointReads(t *testing.T) {
	const tuples = 60
	r, _, nodes := testPartitionedCluster(t, 4, 64, tuples, nil, Config{})
	h := r.Handler()

	total := 0
	for _, n := range nodes {
		c := shardCount(t, n)
		if c == tuples {
			t.Errorf("node %s holds the full dataset (%d tuples); partitioning did not split", n.name, c)
		}
		total += c
	}
	if total != tuples {
		t.Fatalf("shards hold %d tuples total, want exactly %d (each tuple once)", total, tuples)
	}

	pm := r.CurrentPartitionMap()
	for id := 1; id <= tuples; id++ {
		resp, body := query(t, h, "reader", fmt.Sprintf(`SELECT v FROM items WHERE id = %d`, id))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("id %d: HTTP %d: %s", id, resp.StatusCode, body)
		}
		qr := decodeQuery(t, body)
		if len(qr.Rows) != 1 || qr.Rows[0][0] != fmt.Sprintf("v%d", id) {
			t.Fatalf("id %d: rows %v", id, qr.Rows)
		}
		if got := resp.Header.Get("X-Partition-Version"); got != "1" {
			t.Fatalf("id %d: X-Partition-Version %q, want 1", id, got)
		}
		// The tuple must live on (and only on) the owner the map names.
		owner := pm.OwnerOf(int64(id))
		for i, n := range nodes {
			_, direct := query(t, n.direct, "probe", fmt.Sprintf(`SELECT v FROM items WHERE id = %d`, id))
			found := len(decodeQuery(t, direct).Rows) == 1
			if found != (i == owner) {
				t.Fatalf("id %d: on node %d (found=%v), owner is %d", id, i, found, owner)
			}
		}
	}
}

func TestPartitionedSingleKeyWrites(t *testing.T) {
	r, _, nodes := testPartitionedCluster(t, 4, 64, 40, nil, Config{})
	h := r.Handler()
	pm := r.CurrentPartitionMap()

	// UPDATE pinned by key: affects exactly one row, on the owner.
	resp, body := query(t, h, "writer", `UPDATE items SET v = 'patched' WHERE id = 7`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: HTTP %d: %s", resp.StatusCode, body)
	}
	if qr := decodeQuery(t, body); qr.Affected != 1 {
		t.Fatalf("update affected %d, want 1", qr.Affected)
	}
	_, direct := query(t, nodes[pm.OwnerOf(7)].direct, "probe", `SELECT v FROM items WHERE id = 7`)
	if rows := decodeQuery(t, direct).Rows; len(rows) != 1 || rows[0][0] != "patched" {
		t.Fatalf("owner rows after update: %v", rows)
	}

	// INSERT of one row lands on its owner alone.
	resp, body = query(t, h, "writer", `INSERT INTO items VALUES (1000, 'new')`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: HTTP %d: %s", resp.StatusCode, body)
	}
	owner := pm.OwnerOf(1000)
	for i, n := range nodes {
		_, direct := query(t, n.direct, "probe", `SELECT v FROM items WHERE id = 1000`)
		found := len(decodeQuery(t, direct).Rows) == 1
		if found != (i == owner) {
			t.Fatalf("inserted tuple on node %d (found=%v), owner is %d", i, found, owner)
		}
	}

	// DELETE pinned by key.
	resp, body = query(t, h, "writer", `DELETE FROM items WHERE id = 1000`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: HTTP %d: %s", resp.StatusCode, body)
	}
	if qr := decodeQuery(t, body); qr.Affected != 1 {
		t.Fatalf("delete affected %d, want 1", qr.Affected)
	}

	// Predicate write without a key pin scatters and sums effects.
	resp, body = query(t, h, "writer", `UPDATE items SET v = 'all' WHERE id <= 10`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scatter update: HTTP %d: %s", resp.StatusCode, body)
	}
	if qr := decodeQuery(t, body); qr.Affected != 10 {
		t.Fatalf("scatter update affected %d, want 10", qr.Affected)
	}
}

func TestScatterAggregates(t *testing.T) {
	r, _, _ := testPartitionedCluster(t, 4, 64, 30, nil, Config{})
	h := r.Handler()

	resp, body := query(t, h, "analyst",
		`SELECT COUNT(*), SUM(id), AVG(id), MIN(id), MAX(id) FROM items`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	qr := decodeQuery(t, body)
	wantCols := []string{"count(*)", "sum(id)", "avg(id)", "min(id)", "max(id)"}
	for i, c := range wantCols {
		if qr.Columns[i] != c {
			t.Fatalf("columns %v, want %v", qr.Columns, wantCols)
		}
	}
	if len(qr.Rows) != 1 {
		t.Fatalf("rows %v, want one", qr.Rows)
	}
	want := []string{"30", "465", "15.5", "1", "30"}
	for i, w := range want {
		if qr.Rows[i%1][i] != w {
			t.Fatalf("aggregate row %v, want %v", qr.Rows[0], want)
		}
	}

	// A predicate matching one tuple: shards whose slice matches
	// nothing report the empty-aggregate zero, which must not pollute
	// the global MIN (the count partial filters it).
	resp, body = query(t, h, "analyst",
		`SELECT MIN(id), MAX(id), COUNT(*) FROM items WHERE id >= 17 AND id <= 17`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	qr = decodeQuery(t, body)
	if qr.Rows[0][0] != "17" || qr.Rows[0][1] != "17" || qr.Rows[0][2] != "1" {
		t.Fatalf("sparse aggregate row %v, want [17 17 1]", qr.Rows[0])
	}
}

func TestScatterOrderByMergesAndStrips(t *testing.T) {
	r, _, _ := testPartitionedCluster(t, 4, 64, 40, nil, Config{})
	h := r.Handler()

	// The sort column is not projected: the router injects it for the
	// merge and strips it before relay.
	resp, body := query(t, h, "analyst", `SELECT v FROM items ORDER BY id DESC LIMIT 10`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	qr := decodeQuery(t, body)
	if len(qr.Columns) != 1 || qr.Columns[0] != "v" {
		t.Fatalf("columns %v, want [v] (injected sort column must be stripped)", qr.Columns)
	}
	if len(qr.Rows) != 10 {
		t.Fatalf("%d rows, want 10", len(qr.Rows))
	}
	for i, row := range qr.Rows {
		if want := fmt.Sprintf("v%d", 40-i); row[0] != want {
			t.Fatalf("row %d = %v, want %s", i, row, want)
		}
	}

	// Ascending over everything, sort column projected.
	resp, body = query(t, h, "analyst", `SELECT id, v FROM items ORDER BY id`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	qr = decodeQuery(t, body)
	if len(qr.Rows) != 40 {
		t.Fatalf("%d rows, want 40", len(qr.Rows))
	}
	for i, row := range qr.Rows {
		if want := fmt.Sprintf("%d", i+1); row[0] != want {
			t.Fatalf("row %d = %v, want id %s", i, row, want)
		}
	}
}

func TestScatterLimitWithoutOrder(t *testing.T) {
	r, _, _ := testPartitionedCluster(t, 4, 64, 40, nil, Config{})
	resp, body := query(t, r.Handler(), "analyst", `SELECT v FROM items LIMIT 5`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if qr := decodeQuery(t, body); len(qr.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(qr.Rows))
	}
}

func TestPartitionMapVersionBump(t *testing.T) {
	r, _, _ := testPartitionedCluster(t, 4, 16, 40, nil, Config{})
	h := r.Handler()

	// The admin surface reports the live map.
	resp, body := do(t, h, http.MethodGet, "/admin/partition-map", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET map: HTTP %d: %s", resp.StatusCode, body)
	}
	var pmr PartitionMapResponse
	if err := json.Unmarshal(body, &pmr); err != nil {
		t.Fatal(err)
	}
	if !pmr.Enabled || pmr.Version != 1 || pmr.Partitions != 16 || len(pmr.Owners) != 16 {
		t.Fatalf("map response %+v", pmr)
	}

	// Pick a key and verify a version-1 pin works.
	req := func(pin string, id int) (*http.Response, []byte) {
		b, _ := json.Marshal(server.QueryRequest{SQL: fmt.Sprintf(`SELECT v FROM items WHERE id = %d`, id)})
		client := &http.Client{Transport: handlerTransport{h: h}}
		rq, _ := http.NewRequest(http.MethodPost, "http://router/query", bytes.NewReader(b))
		rq.Header.Set("Content-Type", "application/json")
		rq.Header.Set("X-Identity", "pinned")
		if pin != "" {
			rq.Header.Set("X-Partition-Version", pin)
		}
		resp, err := client.Do(rq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	if resp, body := req("1", 7); resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned v1 before bump: HTTP %d: %s", resp.StatusCode, body)
	}

	// Rotate every partition to the next node — data is now misplaced
	// (migration is the operator's affair); the router must follow the
	// new map, not the data.
	rot := make([]string, len(pmr.Owners))
	idx := map[string]int{}
	for i, n := range r.Nodes() {
		idx[n.Name()] = i
	}
	for p, name := range pmr.Owners {
		rot[p] = r.Nodes()[(idx[name]+1)%len(r.Nodes())].Name()
	}

	// Wrong next version is refused.
	up, _ := json.Marshal(PartitionMapUpdate{Version: 3, Owners: rot})
	if resp, body := do(t, h, http.MethodPost, "/admin/partition-map", "", string(up)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("skip-version install: HTTP %d: %s", resp.StatusCode, body)
	}
	// Unknown node is refused.
	bad := append([]string(nil), rot...)
	bad[0] = "shard-99"
	up, _ = json.Marshal(PartitionMapUpdate{Version: 2, Owners: bad})
	if resp, body := do(t, h, http.MethodPost, "/admin/partition-map", "", string(up)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-node install: HTTP %d: %s", resp.StatusCode, body)
	}
	// The legal bump installs.
	up, _ = json.Marshal(PartitionMapUpdate{Version: 2, Owners: rot})
	if resp, body := do(t, h, http.MethodPost, "/admin/partition-map", "", string(up)); resp.StatusCode != http.StatusOK {
		t.Fatalf("install: HTTP %d: %s", resp.StatusCode, body)
	}

	// Old-version pins are rejected retryably, with the new version in
	// the headers, before any shard is touched.
	resp2, body2 := req("1", 7)
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("pinned v1 after bump: HTTP %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Partition-Version"); got != "2" {
		t.Fatalf("stale reject advertises version %q, want 2", got)
	}
	if got := resp2.Header.Get("Retry-After"); got != "0" {
		t.Fatalf("stale reject Retry-After %q, want 0", got)
	}

	// An unpinned read consults the NEW map: key 7's rotated owner does
	// not hold the tuple, so the router must return empty — the old
	// owner (which still physically has it) must not be asked.
	resp3, body3 := req("", 7)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-bump read: HTTP %d: %s", resp3.StatusCode, body3)
	}
	if qr := decodeQuery(t, body3); len(qr.Rows) != 0 {
		t.Fatalf("post-bump read returned %v; served from a non-owner", qr.Rows)
	}
}

// blockingNode parks every request until its context is cancelled —
// the laggard shard the early-cancel paths must abort.
type blockingNode struct {
	cancelled chan struct{}
	once      sync.Once
}

func (b *blockingNode) RoundTrip(req *http.Request) (*http.Response, error) {
	<-req.Context().Done()
	b.once.Do(func() { close(b.cancelled) })
	return nil, req.Context().Err()
}

func newBlockingNode(name string) (*Node, *blockingNode) {
	bt := &blockingNode{cancelled: make(chan struct{})}
	return &Node{
		name:  name,
		base:  "http://" + name,
		http:  &http.Client{Transport: bt},
		local: bt,
	}, bt
}

// buildMixedPartitioned builds a 2-node partitioned cluster where node
// 0 is a real shard holding tuples and node 1 blocks forever; the
// partition count is chosen so both nodes own partitions.
func buildMixedPartitioned(t *testing.T, tuples int) (*Router, *blockingNode) {
	t.Helper()
	h, _ := newShard(t, tuples, nil)
	real := NewLocalNode("shard-0", h)
	blocked, bt := newBlockingNode("shard-1")
	r, err := NewRouter([]*Node{real, blocked}, Config{Partitions: 32})
	if err != nil {
		t.Fatal(err)
	}
	if owners := r.CurrentPartitionMap().ownerSet(); len(owners) != 2 {
		t.Fatalf("partition map uses %v of 2 nodes; test needs both", owners)
	}
	return r, bt
}

func awaitCancel(t *testing.T, bt *blockingNode, what string) {
	t.Helper()
	select {
	case <-bt.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s did not cancel the outstanding shard RPC", what)
	}
}

func TestScatterLimitEarlyCancelsLaggards(t *testing.T) {
	r, bt := buildMixedPartitioned(t, 200)
	resp, body := query(t, r.Handler(), "analyst", `SELECT v FROM items LIMIT 5`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if qr := decodeQuery(t, body); len(qr.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(qr.Rows))
	}
	awaitCancel(t, bt, "LIMIT early-cancel")
	if r.Nodes()[1].Down() {
		t.Fatal("cancelled laggard was latched down; cancellation is not a peer failure")
	}
}

func TestScatterErrorEarlyCancelsLaggards(t *testing.T) {
	r, bt := buildMixedPartitioned(t, 50)
	// The real shard rejects the unknown table immediately; the
	// blocked shard must be cancelled rather than awaited.
	resp, body := query(t, r.Handler(), "analyst", `SELECT * FROM missing`)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("scatter over a missing table succeeded: %s", body)
	}
	awaitCancel(t, bt, "error early-cancel")
	if r.Nodes()[1].Down() {
		t.Fatal("cancelled laggard was latched down")
	}
}

func TestScatterOrderByEarlyCancelOnError(t *testing.T) {
	r, bt := buildMixedPartitioned(t, 50)
	resp, _ := query(t, r.Handler(), "analyst", `SELECT v FROM missing ORDER BY id LIMIT 3`)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("ORDER BY scatter over a missing table succeeded")
	}
	awaitCancel(t, bt, "ORDER BY error early-cancel")
}

func TestSplitInsertGroupsRowsByOwner(t *testing.T) {
	r, _, nodes := testPartitionedCluster(t, 4, 64, 0, nil, Config{})
	pm := r.CurrentPartitionMap()

	var sb strings.Builder
	sb.WriteString("INSERT INTO items VALUES ")
	want := make(map[int]int)
	for i := 1; i <= 20; i++ {
		if i > 1 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'v%d')", i, i)
		want[pm.OwnerOf(int64(i))]++
	}
	if len(want) < 2 {
		t.Fatal("test keys all hash to one owner; pick more keys")
	}
	resp, body := query(t, r.Handler(), "loader", sb.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("split insert: HTTP %d: %s", resp.StatusCode, body)
	}
	if qr := decodeQuery(t, body); qr.Affected != 20 {
		t.Fatalf("split insert affected %d, want 20", qr.Affected)
	}
	for i, n := range nodes {
		if c := shardCount(t, n); c != want[i] {
			t.Errorf("node %d holds %d tuples, want %d", i, c, want[i])
		}
	}
}

func TestSuspectsAggregatedAcrossShards(t *testing.T) {
	// Replicated 2-shard cluster; each shard's detector sees a
	// different principal's full scan directly.
	r, _ := testCluster(t, 2, 100, detectCfg(), Config{})
	nodes := r.Nodes()
	for q := 0; q < 2; q++ {
		if resp, body := query(t, nodes[0].direct, "eve", `SELECT * FROM items`); resp.StatusCode != http.StatusOK {
			t.Fatalf("eve scan: HTTP %d: %s", resp.StatusCode, body)
		}
		if resp, body := query(t, nodes[1].direct, "mallory", `SELECT * FROM items`); resp.StatusCode != http.StatusOK {
			t.Fatalf("mallory scan: HTTP %d: %s", resp.StatusCode, body)
		}
	}
	resp, body := do(t, r.Handler(), http.MethodGet, "/admin/suspects?k=10", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suspects: HTTP %d: %s", resp.StatusCode, body)
	}
	var sr server.SuspectsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Enabled {
		t.Fatal("aggregated suspects not enabled")
	}
	seen := map[string]detect.Suspect{}
	for _, s := range sr.Suspects {
		seen[s.Principal] = s
	}
	if _, ok := seen["eve"]; !ok {
		t.Fatalf("eve (shard-0 only) missing from aggregate: %s", body)
	}
	if _, ok := seen["mallory"]; !ok {
		t.Fatalf("mallory (shard-1 only) missing from aggregate: %s", body)
	}
	if cov := seen["eve"].Coverage; cov < 0.5 {
		t.Errorf("eve aggregate coverage %v, want the full-scan shard's view", cov)
	}

	// The per-shard pin still works and shows only that shard's view.
	resp, body = do(t, r.Handler(), http.MethodGet, "/admin/suspects?node=shard-1&k=10", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned suspects: HTTP %d: %s", resp.StatusCode, body)
	}
	var pinned server.SuspectsResponse
	if err := json.Unmarshal(body, &pinned); err != nil {
		t.Fatal(err)
	}
	for _, s := range pinned.Suspects {
		if s.Principal == "eve" && s.Coverage > 0.1 {
			t.Errorf("shard-1 reports eve coverage %v; eve never queried shard-1", s.Coverage)
		}
	}
}

func TestRetryAfterTracksBucketRefill(t *testing.T) {
	clk := vclock.NewSimulated(time.Date(2004, 8, 1, 0, 0, 0, 0, time.UTC))
	r, _ := testCluster(t, 1, 10, nil, Config{AdmitRate: 0.25, AdmitBurst: 1, Clock: clk})
	h := r.Handler()

	if resp, body := query(t, h, "patient", `SELECT v FROM items WHERE id = 1`); resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: HTTP %d: %s", resp.StatusCode, body)
	}
	resp, _ := query(t, h, "patient", `SELECT v FROM items WHERE id = 1`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query: HTTP %d, want 429", resp.StatusCode)
	}
	// Empty bucket at 0.25 tokens/s: one token in 4 seconds.
	if got := resp.Header.Get("Retry-After"); got != "4" {
		t.Fatalf("Retry-After %q, want 4 (refill time, not a static guess)", got)
	}
	clk.Sleep(2 * time.Second)
	resp, _ = query(t, h, "patient", `SELECT v FROM items WHERE id = 1`)
	if got := resp.Header.Get("Retry-After"); resp.StatusCode != http.StatusTooManyRequests || got != "2" {
		t.Fatalf("after 2s: HTTP %d Retry-After %q, want 429/2", resp.StatusCode, got)
	}
	clk.Sleep(2 * time.Second)
	if resp, body := query(t, h, "patient", `SELECT v FROM items WHERE id = 1`); resp.StatusCode != http.StatusOK {
		t.Fatalf("after refill: HTTP %d: %s", resp.StatusCode, body)
	}
}

func TestReadBodyPooledScratchNoAllocs(t *testing.T) {
	s := scratchPool.Get().(*bodyScratch)
	defer scratchPool.Put(s)
	payload := []byte(`{"sql":"SELECT v FROM items WHERE id = 1"}`)
	rd := bytes.NewReader(nil)
	allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(payload)
		if _, err := readBody(rd, s); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("readBody allocates %.1f objects per pooled request, want 0", allocs)
	}
}

func TestScratchBodyReleasesOnTransportClose(t *testing.T) {
	s := scratchPool.Get().(*bodyScratch)
	s.refs.Store(1)
	sb := &scratchBody{s: s}
	s.retain()
	if got := s.refs.Load(); got != 2 {
		t.Fatalf("refs %d after retain, want 2", got)
	}
	sb.Close()
	sb.Close() // transports may double-close; the second must be a no-op
	if got := s.refs.Load(); got != 1 {
		t.Fatalf("refs %d after body close, want 1 (handler still owns it)", got)
	}
	s.release()
	if got := s.refs.Load(); got != 0 {
		t.Fatalf("refs %d after handler release, want 0 (returned to pool)", got)
	}
}

// TestRemoteShapedCluster drives the full partitioned surface through
// nodes that look remote to the router (no local fast path, no direct
// handler) — the client/transport path real deployments take, where the
// pooled scratch must survive until the transport closes the body.
func TestRemoteShapedCluster(t *testing.T) {
	mk := func(name string, h http.Handler) *Node {
		return &Node{
			name: name,
			base: "http://" + name,
			http: &http.Client{Transport: handlerTransport{h: h}},
		}
	}
	nodes := make([]*Node, 3)
	for i := range nodes {
		h, _ := newEmptyShard(t, 30, nil)
		nodes[i] = mk(fmt.Sprintf("shard-%d", i), h)
	}
	r, err := NewRouter(nodes, Config{Partitions: 32})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO items VALUES ")
	for i := 1; i <= 30; i++ {
		if i > 1 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'v%d')", i, i)
	}
	if err := r.ExecScript(sb.String()); err != nil {
		t.Fatal(err)
	}
	h := r.Handler()
	for id := 1; id <= 30; id++ {
		resp, body := query(t, h, "reader", fmt.Sprintf(`SELECT v FROM items WHERE id = %d`, id))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("id %d: HTTP %d: %s", id, resp.StatusCode, body)
		}
		if qr := decodeQuery(t, body); len(qr.Rows) != 1 || qr.Rows[0][0] != fmt.Sprintf("v%d", id) {
			t.Fatalf("id %d: rows %v", id, qr.Rows)
		}
	}
	resp, body := query(t, h, "analyst", `SELECT COUNT(*), SUM(id) FROM items`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate: HTTP %d: %s", resp.StatusCode, body)
	}
	qr := decodeQuery(t, body)
	if qr.Rows[0][0] != "30" || qr.Rows[0][1] != "465" {
		t.Fatalf("aggregate row %v, want [30 465]", qr.Rows[0])
	}
}

func TestExecScriptSplitsStatements(t *testing.T) {
	got := splitStatements("CREATE TABLE t (id INT PRIMARY KEY);\n-- a comment; with a semicolon\nINSERT INTO t VALUES (1);\nINSERT INTO t VALUES (2)")
	want := []string{
		"CREATE TABLE t (id INT PRIMARY KEY)",
		"INSERT INTO t VALUES (1)",
		"INSERT INTO t VALUES (2)",
	}
	if len(got) != len(want) {
		t.Fatalf("split %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("split[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Semicolons inside string literals do not split.
	got = splitStatements(`INSERT INTO t VALUES (1, 'a;b''c;d');INSERT INTO t VALUES (2, 'x')`)
	if len(got) != 2 || !strings.Contains(got[0], "a;b''c;d") {
		t.Fatalf("quoted split = %q", got)
	}
}
