package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/parthash"
	"repro/internal/server"
	"repro/internal/sqlmini"
)

// This file is the tuple-partitioning layer: a versioned partition map
// assigning each tuple (by primary key) to exactly one owner shard, and
// the per-statement planner the router consults to route point queries
// and single-key writes to that one owner while scans scatter to every
// owner. Replication made every shard a full copy — writes fanned out
// N ways and a scan ran on one shard, so shards bought availability but
// zero capacity. Under partitioning each shard holds ~1/P of the tuples:
// single-key writes touch one shard (amplification N× → 1×, and no
// router-wide write ordering lock — rows on different shards are
// different rows, so cross-shard write order cannot diverge anything),
// and scatter scans run on all shards concurrently over 1/P-sized
// slices. Detection stays globally coherent without any new machinery:
// each shard's detector observes only its partition's tuple IDs, and the
// existing anti-entropy sketch exchange merges those per-slice sketches
// into the union view, so a coalition splitting its key range across
// partitions prices exactly as if one node saw the whole stream.

// DefaultPartitions is the partition count cmd/delaydb uses when
// -partitions is set without a value; plenty of headroom to rebalance
// onto more shards without re-hashing tuples.
const DefaultPartitions = 64

// PartitionMap is an immutable, versioned assignment of partitions to
// replica groups of owner shards. Tuples hash (by INT primary key) to
// one of P partitions; each partition has R owner nodes, primary first.
// Rebalancing installs a new map with the next version — requests
// pinned to the old version are rejected retryably, never answered from
// a shard that may no longer own the tuple.
type PartitionMap struct {
	Version uint64
	// Owners maps partition index → primary node index. It always
	// equals column 0 of Replicas; kept as its own slice because the
	// single-replica hot paths index it constantly.
	Owners []int
	// Replicas maps partition index → its full replica group (primary
	// first, then failover order off the ring). Every group has the
	// same length: min(R, nodes).
	Replicas [][]int
}

// NewPartitionMap assigns partitions to replica groups via the same
// consistent-hash ring the router uses for principals, so partition
// placement inherits the ring's balance properties. Each partition's
// group is the first `replication` distinct nodes of the ring's
// preference sequence, so replica choice is as stable as ownership.
// The partition index is pre-mixed through splitmix64 before it becomes
// a ring key: FNV-1a barely avalanches a trailing-byte change, so the
// naive keys "partition-0".."partition-63" would hash into one narrow
// arc of the ring and hand every partition to the same owner.
// vnodes <= 0 means the ring default; replication < 1 means 1, and is
// clamped to the node count.
func NewPartitionMap(version uint64, partitions, nodes, vnodes, replication int) (*PartitionMap, error) {
	if partitions < 1 {
		return nil, errors.New("cluster: partitions must be >= 1")
	}
	if nodes < 1 {
		return nil, errors.New("cluster: no nodes to own partitions")
	}
	if replication < 1 {
		replication = 1
	}
	if replication > nodes {
		replication = nodes
	}
	rg := newRing(nodes, vnodes)
	m := &PartitionMap{
		Version:  version,
		Owners:   make([]int, partitions),
		Replicas: make([][]int, partitions),
	}
	for p := range m.Owners {
		seq := rg.sequence("partition-" + strconv.FormatUint(parthash.Mix64(uint64(p)), 16))
		group := append([]int(nil), seq[:replication]...)
		m.Replicas[p] = group
		m.Owners[p] = group[0]
	}
	return m, nil
}

// normalize fills the replica groups of a map built owners-only (hand
// assembled by an operator or a test) and re-derives Owners from
// Replicas otherwise, so both views always agree.
func (m *PartitionMap) normalize() {
	if len(m.Replicas) == 0 {
		m.Replicas = make([][]int, len(m.Owners))
		for p, o := range m.Owners {
			m.Replicas[p] = []int{o}
		}
		return
	}
	if len(m.Owners) != len(m.Replicas) {
		m.Owners = make([]int, len(m.Replicas))
	}
	for p, g := range m.Replicas {
		if len(g) > 0 {
			m.Owners[p] = g[0]
		}
	}
}

// replication returns the replica-group size (1 for owners-only maps).
func (m *PartitionMap) replication() int {
	if len(m.Replicas) == 0 {
		return 1
	}
	r := 1
	for _, g := range m.Replicas {
		if len(g) > r {
			r = len(g)
		}
	}
	return r
}

// PartitionOf returns the partition a primary key hashes to. The hash
// is pinned in parthash so the shard-side partition filter agrees bit
// for bit.
func (m *PartitionMap) PartitionOf(key int64) int {
	return parthash.Index(key, len(m.Owners))
}

// OwnerOf returns the primary node index for the tuple with the given
// primary key.
func (m *PartitionMap) OwnerOf(key int64) int {
	return m.Owners[m.PartitionOf(key)]
}

// replicasOf returns the full replica group for a key's partition.
func (m *PartitionMap) replicasOf(key int64) []int {
	p := m.PartitionOf(key)
	if len(m.Replicas) == 0 {
		return []int{m.Owners[p]}
	}
	return m.Replicas[p]
}

// GroupOf returns a copy of partition p's replica group, primary
// first — the torture harness and external tooling derive rebalance
// targets from it.
func (m *PartitionMap) GroupOf(p int) []int {
	g := m.groupOf(p)
	out := make([]int, len(g))
	copy(out, g)
	return out
}

// groupOf returns partition p's replica group.
func (m *PartitionMap) groupOf(p int) []int {
	if len(m.Replicas) == 0 {
		return []int{m.Owners[p]}
	}
	return m.Replicas[p]
}

// ownerSet returns the distinct node indices holding any replica, in
// ascending order — the scatter-write target universe. Nodes owning no
// partition hold no tuples and are skipped.
func (m *PartitionMap) ownerSet() []int {
	seen := make(map[int]bool, len(m.Owners))
	out := make([]int, 0, len(m.Owners))
	for p := range m.Owners {
		for _, n := range m.groupOf(p) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Partitioned reports whether the router routes by tuple partition.
func (r *Router) Partitioned() bool { return r.pmap.Load() != nil }

// CurrentPartitionMap returns the live map (nil when partitioning is
// off). The map is immutable; callers must not mutate it.
func (r *Router) CurrentPartitionMap() *PartitionMap { return r.pmap.Load() }

// InstallPartitionMap swaps in a rebalanced map without moving any
// data — the raw fence-only install. The new map must keep the
// partition count (tuples never re-hash; only ownership moves), carry
// exactly the next version, and name only known shards. Callers that
// want the tuples to follow the map use Rebalance, which copies first
// and installs at cutover; a raw install is operator surgery, with the
// version fence guaranteeing only that no request straddles two maps.
func (r *Router) InstallPartitionMap(m *PartitionMap) error {
	if err := r.validateNextMap(m); err != nil {
		return err
	}
	r.pmapMu.Lock()
	defer r.pmapMu.Unlock()
	cur := r.pmap.Load()
	if cur == nil {
		return errors.New("cluster: partitioning is not enabled")
	}
	if m.Version != cur.Version+1 {
		return fmt.Errorf("cluster: partition map version must be %d (got %d)", cur.Version+1, m.Version)
	}
	r.pmap.Store(m)
	return nil
}

// validateNextMap checks everything about a proposed map except its
// version: partition count preserved, every replica group non-empty,
// duplicate-free, and naming only known shards. It normalizes the map
// (filling Replicas from Owners or vice versa) as a side effect.
func (r *Router) validateNextMap(m *PartitionMap) error {
	if m == nil {
		return errors.New("cluster: nil partition map")
	}
	cur := r.pmap.Load()
	if cur == nil {
		return errors.New("cluster: partitioning is not enabled")
	}
	m.normalize()
	if len(m.Owners) != len(cur.Owners) {
		return fmt.Errorf("cluster: partition count is fixed at %d (got %d)", len(cur.Owners), len(m.Owners))
	}
	for p := range m.Owners {
		g := m.groupOf(p)
		if len(g) == 0 {
			return fmt.Errorf("cluster: partition %d has no replicas", p)
		}
		seen := make(map[int]bool, len(g))
		for _, n := range g {
			if n < 0 || n >= len(r.nodes) {
				return fmt.Errorf("cluster: partition %d owned by unknown node index %d", p, n)
			}
			if seen[n] {
				return fmt.Errorf("cluster: partition %d lists node %d twice", p, n)
			}
			seen[n] = true
		}
	}
	return nil
}

// writePartitionStale answers a request caught on the wrong side of a
// partition map swap: 409 with the current version and Retry-After: 0 —
// the client refreshes its pin and retries immediately; nothing was
// served from a shard that may no longer own the tuple.
func (r *Router) writePartitionStale(w http.ResponseWriter) {
	cur := r.pmap.Load()
	r.partVerRej.Inc()
	w.Header().Set("X-Partition-Version", strconv.FormatUint(cur.Version, 10))
	w.Header().Set("Retry-After", "0")
	writeErr(w, http.StatusConflict,
		fmt.Errorf("partition map changed (current version %d); refresh and retry", cur.Version))
}

// tableKey is the routing-relevant slice of a table's schema: which
// column is the INT primary key (by name, for WHERE matching) and where
// it sits (by position, for splitting positional INSERT rows).
type tableKey struct {
	name string
	idx  int
}

// keyFor resolves a table's primary-key column, first from the snoop
// cache (CREATE TABLE statements pass through the router), then by
// pulling /admin/schema from a healthy shard — the cold path for
// routers fronting shards whose tables predate them.
func (r *Router) keyFor(table string) (tableKey, bool) {
	lc := strings.ToLower(table)
	if v, ok := r.schemas.Load(lc); ok {
		return v.(tableKey), true
	}
	r.fetchSchemas()
	if v, ok := r.schemas.Load(lc); ok {
		return v.(tableKey), true
	}
	return tableKey{}, false
}

func (r *Router) fetchSchemas() {
	r.schemaMu.Lock()
	defer r.schemaMu.Unlock()
	h := r.healthy()
	if len(h) == 0 {
		return
	}
	n := r.nodes[h[0]]
	req, err := http.NewRequest(http.MethodGet, n.base+"/admin/schema", nil)
	if err != nil {
		return
	}
	resp, err := n.do(req)
	if err != nil {
		r.peerErrors.Inc()
		r.syncPeerDown()
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var sr server.SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return
	}
	for _, t := range sr.Tables {
		r.schemas.Store(strings.ToLower(t.Name), tableKey{name: t.Key, idx: t.KeyIndex})
	}
}

// planKind enumerates the shapes a statement routes as.
type planKind int

const (
	// planBroadcast: DDL — every reachable shard must agree on the
	// catalog, so it rides the replicated fan-out (and its ordering
	// lock).
	planBroadcast planKind = iota
	// planSingleRead: a point query pinned to one tuple's owner.
	planSingleRead
	// planSingleWrite: a write pinned to one tuple's owner.
	planSingleWrite
	// planScatterRead: a scan or aggregate over every owner's slice,
	// recombined by the merge executor.
	planScatterRead
	// planScatterWrite: a predicate write (UPDATE/DELETE without a key
	// pin) applied on every owner's slice.
	planScatterWrite
	// planSplitInsert: a multi-row INSERT sliced into one per-owner
	// INSERT over just the rows that owner holds.
	planSplitInsert
)

// queryPlan is the planner's verdict for one statement.
type queryPlan struct {
	kind planKind
	// node is the single target (planSingleRead/planSingleWrite); -1
	// means any healthy shard (EXPLAIN — plans are identical modulo
	// slice statistics).
	node int
	// part is the partition a single read/write pins, or -1 when the
	// statement is not tuple-routable (EXPLAIN, anyWritePlan). It keys
	// the per-partition write lock and the replica group.
	part int
	// sel is the parsed statement for planScatterRead, which the merge
	// executor rewrites (partial aggregates, order-column injection).
	sel *sqlmini.Select
	// ins and insParts carry a multi-partition INSERT for
	// planSplitInsert: the parsed statement plus each row's partition.
	// The per-node slices are rendered inside the scatter-write lock,
	// because with replication the target sets depend on migration
	// state that may move between planning and execution.
	ins      *sqlmini.Insert
	insParts []int
}

// planStatement classifies sql against the partition map. A parse
// failure is answered at the edge — no shard burns work on garbage.
func (r *Router) planStatement(pm *PartitionMap, sql string) (queryPlan, error) {
	stmt, err := sqlmini.Parse(sql)
	if err != nil {
		return queryPlan{}, err
	}
	switch s := stmt.(type) {
	case *sqlmini.Select:
		if s.Explain {
			return queryPlan{kind: planSingleRead, node: -1, part: -1}, nil
		}
		if k, ok := r.keyFor(s.Table); ok {
			if key, ok := sqlmini.PKEqual(s.Where, k.name); ok {
				p := pm.PartitionOf(key)
				return queryPlan{kind: planSingleRead, node: pm.Owners[p], part: p}, nil
			}
		}
		return queryPlan{kind: planScatterRead, sel: s}, nil
	case *sqlmini.Insert:
		return r.planInsert(pm, s)
	case *sqlmini.Update:
		if k, ok := r.keyFor(s.Table); ok {
			if key, ok := sqlmini.PKEqual(s.Where, k.name); ok {
				p := pm.PartitionOf(key)
				return queryPlan{kind: planSingleWrite, node: pm.Owners[p], part: p}, nil
			}
		}
		return queryPlan{kind: planScatterWrite}, nil
	case *sqlmini.Delete:
		if k, ok := r.keyFor(s.Table); ok {
			if key, ok := sqlmini.PKEqual(s.Where, k.name); ok {
				p := pm.PartitionOf(key)
				return queryPlan{kind: planSingleWrite, node: pm.Owners[p], part: p}, nil
			}
		}
		return queryPlan{kind: planScatterWrite}, nil
	case *sqlmini.CreateTable:
		// Snoop the key column so the tuples this table will hold route
		// without a schema fetch.
		for i, col := range s.Columns {
			if col.PrimaryKey {
				r.schemas.Store(strings.ToLower(s.Table), tableKey{name: col.Name, idx: i})
				break
			}
		}
		return queryPlan{kind: planBroadcast}, nil
	case *sqlmini.DropTable:
		r.schemas.Delete(strings.ToLower(s.Table))
		return queryPlan{kind: planBroadcast}, nil
	default: // CREATE INDEX / DROP INDEX
		return queryPlan{kind: planBroadcast}, nil
	}
}

// planInsert routes an INSERT by the primary key of each row. All rows
// in one partition ship as-is to that partition's replica group; rows
// spanning partitions split into per-node INSERT slices, rendered
// later under the scatter-write lock. A row whose key cannot be read
// positionally (unknown table, short row, non-INT key) routes the
// whole statement to one shard whose engine rejects it — a
// deterministic error with no tuple applied anywhere.
func (r *Router) planInsert(pm *PartitionMap, s *sqlmini.Insert) (queryPlan, error) {
	k, ok := r.keyFor(s.Table)
	if !ok {
		return r.anyWritePlan()
	}
	parts := make([]int, len(s.Rows))
	single := -1
	multi := false
	for i, row := range s.Rows {
		if k.idx >= len(row) || row[k.idx].Kind != sqlmini.IntLit {
			return r.anyWritePlan()
		}
		parts[i] = pm.PartitionOf(row[k.idx].Int)
		if i == 0 {
			single = parts[i]
		} else if parts[i] != single {
			multi = true
		}
	}
	if !multi {
		return queryPlan{kind: planSingleWrite, node: pm.Owners[single], part: single}, nil
	}
	// Rows on multiple partitions sharing one replica group still fan
	// as a split insert; the slices per node are just identical.
	return queryPlan{kind: planSplitInsert, ins: s, insParts: parts}, nil
}

// anyWritePlan targets the first readable shard: used when a statement
// cannot be routed by key but will be rejected identically by any
// engine, so one shard's deterministic error stands for the cluster's.
func (r *Router) anyWritePlan() (queryPlan, error) {
	h := r.healthy()
	if len(h) == 0 {
		return queryPlan{}, errors.New("no healthy shards")
	}
	return queryPlan{kind: planSingleWrite, node: h[0], part: -1}, nil
}

// servePartitioned plans and dispatches one statement under the map the
// caller loaded. Admission has already run; the caller's pm pins the
// map version every routing decision and the final relay are checked
// against.
func (r *Router) servePartitioned(w http.ResponseWriter, req *http.Request, pm *PartitionMap, sql string, body []byte, scratch *bodyScratch) {
	plan, err := r.planStatement(pm, sql)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	switch plan.kind {
	case planBroadcast:
		r.fanoutWrite(w, req, "/query", body, scratch)
	case planSingleRead:
		if plan.part < 0 {
			h := r.healthy()
			if len(h) == 0 {
				writeErr(w, http.StatusServiceUnavailable, errors.New("no healthy shards"))
				return
			}
			r.partSingleRead.Inc()
			r.serveOwner(w, req, pm, h[0], body, scratch, true)
			return
		}
		r.partSingleRead.Inc()
		r.serveReplicaRead(w, req, pm, plan.part, body, scratch)
	case planSingleWrite:
		r.partSingleWrite.Inc()
		if plan.part < 0 {
			r.serveOwner(w, req, pm, plan.node, body, scratch, false)
			return
		}
		r.serveGroupWrite(w, req, pm, plan.part, body, scratch)
	case planScatterRead:
		r.partScatter.Inc()
		r.scatterRead(w, req, pm, plan.sel, sql)
	case planScatterWrite:
		r.partScatter.Inc()
		r.scatterWrite(w, req, pm, scatterStmt{sql: sql})
	case planSplitInsert:
		r.partSplit.Inc()
		r.scatterWrite(w, req, pm, scatterStmt{ins: plan.ins, insParts: plan.insParts})
	}
}

// serveOwner forwards a single-owner statement to its one shard. There
// is no failover: the owner holds the only copy of the tuple, so an
// unavailable owner is an unavailable partition, answered 503 (reads
// also exclude resync shards — a shard missing acked writes must not
// serve the only copy of a row). The response relays only after
// re-checking that the map did not change mid-flight — the reason this
// path uses forward+relay rather than serving the shard handler
// directly on the client's ResponseWriter, which could not retract an
// answer written under a stale map.
func (r *Router) serveOwner(w http.ResponseWriter, req *http.Request, pm *PartitionMap, node int, body []byte, scratch *bodyScratch, read bool) {
	n := r.nodes[node]
	if read && !n.readable() || !read && n.down.Load() {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("partition owner %s unavailable", n.name))
		return
	}
	resp, err := r.forwardScratch(req, n, "/query", body, n.local != nil, scratch)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("partition owner %s unreachable: %v", n.name, err))
		return
	}
	if r.pmap.Load() != pm {
		resp.Body.Close()
		r.writePartitionStale(w)
		return
	}
	relay(w, resp)
}

// PartitionMapResponse is the GET /admin/partition-map body.
type PartitionMapResponse struct {
	Enabled     bool   `json:"enabled"`
	Version     uint64 `json:"version,omitempty"`
	Partitions  int    `json:"partitions,omitempty"`
	Replication int    `json:"replication,omitempty"`
	// Owners names the primary shard per partition.
	Owners []string `json:"owners,omitempty"`
	// Replicas names each partition's full replica group, primary
	// first. Omitted when every group is a lone primary.
	Replicas [][]string `json:"replicas,omitempty"`
}

func (r *Router) handlePartitionMapGet(w http.ResponseWriter, req *http.Request) {
	pm := r.pmap.Load()
	if pm == nil {
		writeJSON(w, http.StatusOK, PartitionMapResponse{Enabled: false})
		return
	}
	out := PartitionMapResponse{
		Enabled:     true,
		Version:     pm.Version,
		Partitions:  len(pm.Owners),
		Replication: pm.replication(),
		Owners:      make([]string, len(pm.Owners)),
	}
	for p, o := range pm.Owners {
		out.Owners[p] = r.nodes[o].name
	}
	if out.Replication > 1 {
		out.Replicas = make([][]string, len(pm.Owners))
		for p := range pm.Owners {
			g := pm.groupOf(p)
			names := make([]string, len(g))
			for i, n := range g {
				names[i] = r.nodes[n].name
			}
			out.Replicas[p] = names
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// PartitionMapUpdate is the POST /admin/partition-map and
// POST /admin/rebalance body: a proposed map at exactly the next
// version. Either Owners (one primary per partition, R=1) or Replicas
// (the full group per partition, primary first) names the assignment;
// or, rebalance-only, a bare Replication re-derives the groups from
// the ring at the new size.
type PartitionMapUpdate struct {
	Version     uint64     `json:"version"`
	Owners      []string   `json:"owners,omitempty"`
	Replicas    [][]string `json:"replicas,omitempty"`
	Replication int        `json:"replication,omitempty"`
	// Wait makes POST /admin/rebalance run the migration synchronously
	// instead of answering 202 and migrating in the background.
	Wait bool `json:"wait,omitempty"`
}

// mapFromUpdate resolves an update body to a PartitionMap. allowDerive
// permits the bare-Replication form (rebalance), which needs the
// router's ring parameters.
func (r *Router) mapFromUpdate(up *PartitionMapUpdate, allowDerive bool) (*PartitionMap, error) {
	idx := make(map[string]int, len(r.nodes))
	for i, n := range r.nodes {
		idx[n.name] = i
	}
	switch {
	case len(up.Replicas) > 0:
		m := &PartitionMap{Version: up.Version, Replicas: make([][]int, len(up.Replicas))}
		for p, names := range up.Replicas {
			g := make([]int, len(names))
			for i, name := range names {
				ni, ok := idx[name]
				if !ok {
					return nil, fmt.Errorf("partition %d: unknown node %q", p, name)
				}
				g[i] = ni
			}
			m.Replicas[p] = g
		}
		m.normalize()
		return m, nil
	case len(up.Owners) > 0:
		m := &PartitionMap{Version: up.Version, Owners: make([]int, len(up.Owners))}
		for p, name := range up.Owners {
			ni, ok := idx[name]
			if !ok {
				return nil, fmt.Errorf("partition %d: unknown node %q", p, name)
			}
			m.Owners[p] = ni
		}
		m.normalize()
		return m, nil
	case allowDerive && up.Replication > 0:
		cur := r.pmap.Load()
		if cur == nil {
			return nil, errors.New("partitioning is not enabled")
		}
		return NewPartitionMap(up.Version, len(cur.Owners), len(r.nodes), r.vnodes, up.Replication)
	default:
		return nil, errors.New("update names no owners or replicas")
	}
}

func (r *Router) handlePartitionMapPost(w http.ResponseWriter, req *http.Request) {
	if ct := req.Header.Get("Content-Type"); ct != "" && ct != "application/json" {
		writeErr(w, http.StatusUnsupportedMediaType, fmt.Errorf("content type %q; want application/json", ct))
		return
	}
	var up PartitionMapUpdate
	if err := json.NewDecoder(req.Body).Decode(&up); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	m, err := r.mapFromUpdate(&up, false)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := r.InstallPartitionMap(m); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "installed", "version": m.Version})
}

// ExecScript runs a semicolon-separated statement script through the
// router's own planner — cmd/delaydb's -init path in partitioned mode,
// where loading every shard with the full dataset (the replicated
// habit) would defeat the partitioning. Statements bypass admission
// (it is the operator's own front door) but take the exact routing and
// merge paths client queries take.
func (r *Router) ExecScript(src string) error {
	for _, stmt := range splitStatements(src) {
		body, err := json.Marshal(server.QueryRequest{SQL: stmt})
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, "http://router/query", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Identity", "cluster-init")
		rec := &recordedResponse{header: make(http.Header), code: http.StatusOK}
		if pm := r.pmap.Load(); pm != nil {
			r.servePartitioned(rec, req, pm, stmt, body, nil)
		} else {
			r.fanoutWrite(rec, req, "/query", body, nil)
		}
		if rec.code != http.StatusOK {
			return fmt.Errorf("cluster: statement %q: %s: %s",
				stmt, http.StatusText(rec.code), bytes.TrimSpace(rec.body.Bytes()))
		}
	}
	return nil
}

// splitStatements splits a script on semicolons outside string
// literals, dropping -- line comments and blank statements. The ''
// escape is two quotes, so toggling in-string per quote handles it.
func splitStatements(src string) []string {
	var out []string
	var sb strings.Builder
	inStr := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == '\'':
			inStr = !inStr
			sb.WriteByte(c)
		case !inStr && c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			sb.WriteByte('\n')
		case !inStr && c == ';':
			if s := strings.TrimSpace(sb.String()); s != "" {
				out = append(out, s)
			}
			sb.Reset()
		default:
			sb.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(sb.String()); s != "" {
		out = append(out, s)
	}
	return out
}
