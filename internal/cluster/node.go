package cluster

import (
	"bytes"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// rpcBodyCap is the byte budget handed to the cluster.rpc torn-write
// failpoint: effectively unbounded, so an uninjected call passes every
// response through whole, while an injected one picks a cut point
// below any real response size.
const rpcBodyCap = 1 << 30

// Node is one delaydb shard behind the router. Local nodes (handlers
// in this process, the test and single-binary cluster mode) and HTTP
// peers (real deployments) share the same http.Client plumbing, so
// every byte the router moves crosses the same serialization boundary
// in both modes — a test against local nodes exercises the exact wire
// surface a deployment uses.
type Node struct {
	name string
	base string
	http *http.Client
	// local short-circuits http for in-process nodes: the request goes
	// straight to the RoundTripper, skipping the http.Client wrapper
	// (header copier, redirect plumbing) that costs real time on the
	// point-query hot path. Cancellation still works — the forwarded
	// request carries the client's context. nil for HTTP peers, which
	// keep the full client for its timeout handling.
	local http.RoundTripper
	// direct, when non-nil, serves single-target reads by invoking the
	// shard handler on the client's own ResponseWriter — no recorder,
	// no response copy, no relay. Only NewLocalNode sets it: a shard in
	// the router's own process cannot die independently of the router,
	// so the transport-failure failover the RoundTripper path provides
	// has nothing to catch here.
	direct http.Handler

	// urls caches parsed request URLs per path; the forward hot path
	// clones a cached value instead of re-parsing base+path per query.
	urls sync.Map // path → *url.URL

	// inflight is the live request count, the least-loaded policy's
	// signal and the per-peer gauge.
	inflight atomic.Int64
	// down latches when a request to the peer fails at the transport
	// level. Routing and the exchange skip down peers entirely. The
	// anti-entropy loop's health probe moves a down peer to resync;
	// only POST /admin/peer-up clears both latches.
	down atomic.Bool
	// resync latches when a peer rejoins after missing writes: a probe
	// revival (the peer was down, so fan-out writes skipped it) or a
	// write divergence (the peer answered a write with a different
	// outcome than the one the router acked). A resync peer is back on
	// the write plane — fan-out writes and anti-entropy keep it from
	// falling further behind — but serves NO reads: it is missing
	// acked writes, and an acked write must stay readable. Only an
	// operator's POST /admin/peer-up (asserting the replica has been
	// resynced from a healthy peer) restores it to the read path.
	resync atomic.Bool
	// latchSeq orders latch episodes: it is stamped from latchClock on
	// every readable→latched transition (and untouched on down→resync,
	// which continues the same episode). Because an acked write that
	// fails on a readable replica quarantines that replica immediately,
	// every readable replica holds every acked write — so when ALL
	// replicas of a partition are latched, the one with the highest
	// latchSeq left the read plane last and is the partition's one
	// complete copy. CatchUpPeer uses this to refuse clearing a stale
	// replica ahead of the authoritative one.
	latchSeq atomic.Int64
}

// latchClock issues latchSeq stamps, ordered across all nodes of the
// process (shared across routers; only relative order within one
// replica group matters).
var latchClock atomic.Int64

// latchDown latches the node down, stamping the start of a new latch
// episode if the node was readable.
func (n *Node) latchDown() {
	if n.readable() {
		n.latchSeq.Store(latchClock.Add(1))
	}
	n.down.Store(true)
}

// latchResync latches the node writes-only, stamping the start of a new
// latch episode if the node was readable. Called on a down node (probe
// revival) it keeps the episode's original stamp: the missed-writes
// window began at the down latch, not at revival.
func (n *Node) latchResync() {
	if n.readable() {
		n.latchSeq.Store(latchClock.Add(1))
	}
	n.resync.Store(true)
}

// NewHTTPNode returns a shard reached over the network at base
// (e.g. "http://10.0.0.3:8080"). The transport is tuned for the
// router's traffic shape — a small set of peers, each carrying many
// concurrent point queries: the default MaxIdleConnsPerHost of 2 would
// discard all but two keep-alive connections per shard after every
// burst, re-paying connection setup on the hot path, so idle pooling
// is sized to the fan-out a busy router actually sustains.
func NewHTTPNode(name, base string) *Node {
	return &Node{
		name: name,
		base: base,
		http: &http.Client{
			Timeout: 5 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

// NewLocalNode returns a shard served by an in-process handler —
// cmd/delaydb's -cluster mode and every cluster test. The handler is
// invoked through a RoundTripper, not called directly, so request and
// response still pass through http.Request/http.Response encoding.
func NewLocalNode(name string, h http.Handler) *Node {
	t := handlerTransport{h: h}
	return &Node{
		name:   name,
		base:   "http://" + name,
		http:   &http.Client{Transport: t},
		local:  t,
		direct: h,
	}
}

// Name returns the node's routing name.
func (n *Node) Name() string { return n.name }

// Down reports whether the peer is latched down.
func (n *Node) Down() bool { return n.down.Load() }

// Resync reports whether the peer is latched writes-only pending an
// operator resync.
func (n *Node) Resync() bool { return n.resync.Load() }

// readable reports whether the peer may serve reads: reachable and not
// missing acked writes.
func (n *Node) readable() bool { return !n.down.Load() && !n.resync.Load() }

// InFlight returns the live request count against this node.
func (n *Node) InFlight() int64 { return n.inflight.Load() }

// do sends req to the node, tracking in-flight load. A transport-level
// failure latches the node down; HTTP error statuses do not (the peer
// answered — it is alive, just unhappy).
func (n *Node) do(req *http.Request) (*http.Response, error) {
	truncate := -1
	if fault.Enabled() {
		if k, ferr := fault.CheckWrite(fault.ClusterRPC, rpcBodyCap); ferr != nil {
			if k <= 0 {
				// Dropped before the wire: indistinguishable from a
				// refused connection, so it latches the peer like one.
				if req.Body != nil {
					req.Body.Close()
				}
				n.latchDown()
				return nil, ferr
			}
			// Delivered, but the response comes back cut short: the
			// status line survives, the body truncates mid-stream, and
			// the caller's decoder hits unexpected EOF. No down latch —
			// the peer did answer.
			truncate = k
		}
	}
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	var resp *http.Response
	var err error
	if n.local != nil {
		resp, err = n.local.RoundTrip(req)
	} else {
		resp, err = n.http.Do(req)
	}
	if err != nil {
		n.latchDown()
		return nil, err
	}
	if truncate >= 0 {
		resp.Body = &truncatedBody{r: io.LimitReader(resp.Body, int64(truncate)), c: resp.Body}
		resp.ContentLength = -1
	}
	return resp, nil
}

// truncatedBody delivers a prefix of the real body (the cluster.rpc
// torn failure) while closing the whole underlying stream.
type truncatedBody struct {
	r io.Reader
	c io.Closer
}

func (t *truncatedBody) Read(p []byte) (int, error) { return t.r.Read(p) }
func (t *truncatedBody) Close() error               { return t.c.Close() }

// urlFor returns the parsed URL for base+path, cached per path.
func (n *Node) urlFor(path string) (*url.URL, error) {
	if u, ok := n.urls.Load(path); ok {
		return u.(*url.URL), nil
	}
	u, err := url.Parse(n.base + path)
	if err != nil {
		return nil, err
	}
	n.urls.Store(path, u)
	return u, nil
}

// handlerTransport adapts an http.Handler into an http.RoundTripper by
// recording the handler's response into a real http.Response.
type handlerTransport struct {
	h http.Handler
}

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if _, hasDeadline := req.Context().Deadline(); hasDeadline {
		// A deadline means the caller may abandon this call while the
		// handler still runs (a real transport would sever the
		// connection); serve it on a goroutine so the timeout can fire.
		// The goroutine owns the request body — it closes it when the
		// handler returns, whether or not anyone is still waiting.
		done := make(chan *http.Response, 1)
		go func() {
			rec := &recordedResponse{header: make(http.Header), code: http.StatusOK}
			t.h.ServeHTTP(rec, req)
			if req.Body != nil {
				req.Body.Close()
			}
			done <- rec.response(req)
		}()
		select {
		case resp := <-done:
			return resp, nil
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	rec := &recordedResponse{header: make(http.Header), code: http.StatusOK}
	t.h.ServeHTTP(rec, req)
	// Real transports guarantee exactly one Close of the request body;
	// pooled scratch bodies rely on that to return to their pool.
	if req.Body != nil {
		req.Body.Close()
	}
	return rec.response(req), nil
}

func (r *recordedResponse) response(req *http.Request) *http.Response {
	return &http.Response{
		Status:        http.StatusText(r.code),
		StatusCode:    r.code,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        r.header,
		Body:          io.NopCloser(bytes.NewReader(r.body.Bytes())),
		ContentLength: int64(r.body.Len()),
		Request:       req,
	}
}

// recordedResponse is a minimal ResponseWriter capturing status,
// headers, and body for handlerTransport.
type recordedResponse struct {
	header http.Header
	body   bytes.Buffer
	code   int
	wrote  bool
}

func (r *recordedResponse) Header() http.Header { return r.header }

func (r *recordedResponse) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

func (r *recordedResponse) Write(p []byte) (int, error) {
	r.wrote = true
	return r.body.Write(p)
}
