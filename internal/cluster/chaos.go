package cluster

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// Chaos is a kill switch on an in-process shard: while killed, every
// RPC to the node fails at the transport level, exactly as a crashed
// process fails — the router latches the peer down, reads fail over,
// writes quarantine. Revive restores the transport (the shard's state
// survives, as a restarted process's disk does); the router's probe
// and resync machinery take it from there.
type Chaos struct {
	name string
	dead atomic.Bool
}

// Kill severs the node's transport.
func (c *Chaos) Kill() { c.dead.Store(true) }

// Revive restores the node's transport.
func (c *Chaos) Revive() { c.dead.Store(false) }

// Dead reports whether the node is currently killed.
func (c *Chaos) Dead() bool { return c.dead.Load() }

// chaosTransport fails every round trip while the switch is dead.
type chaosTransport struct {
	inner http.RoundTripper
	c     *Chaos
}

func (t chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.c.dead.Load() {
		// Real transports guarantee exactly one Close of the request
		// body even on failure; pooled scratch bodies rely on it.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("chaos: node %s is killed", t.c.name)
	}
	return t.inner.RoundTrip(req)
}

// NewChaosNode returns an in-process shard node with a kill switch.
// Unlike NewLocalNode it sets no direct handler: every request —
// including the single-target fast paths — crosses the killable
// transport, so a kill is indistinguishable from a crashed process on
// every router path.
func NewChaosNode(name string, h http.Handler) (*Node, *Chaos) {
	c := &Chaos{name: name}
	t := chaosTransport{inner: handlerTransport{h: h}, c: c}
	return &Node{
		name:  name,
		base:  "http://" + name,
		http:  &http.Client{Transport: t},
		local: t,
	}, c
}
