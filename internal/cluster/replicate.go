package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/fault"
)

// This file is the replica-group layer over the partition map: point
// reads that fail over inside a partition's replica group (with
// bounded, jittered retry), and single-key group writes that apply to
// every replica in the router's order and ack on a readable-replica
// success. The invariant both paths defend: an acked write is readable
// on every shard a read can route to — a replica that missed or
// rejected an acked write leaves the read path (down or resync latch)
// before the ack is relayed.

// rpcBackoffBase mirrors the shard client's retry policy at the router
// layer (exponential with full ±50% jitter, capped at 10× base).
const rpcBackoffBase = 25 * time.Millisecond

// rpcBackoff returns the sleep before retry attempt (0-based).
func rpcBackoff(attempt int) time.Duration {
	d := rpcBackoffBase << attempt
	if max := 10 * rpcBackoffBase; d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// readRetryRounds bounds how many full walks of a replica group (or
// re-covers of a scatter) a read attempts before giving up: the first
// walk plus two jittered-backoff retries. Only idempotent reads retry;
// a charged write is never re-sent.
const readRetryRounds = 3

// serveReplicaRead answers a point read pinned to one partition: walk
// the replica group in preference order, skipping unreadable replicas,
// failing over past dead ones. A replica's transport failure latches it
// down and the walk continues — this is how a primary kill stays
// invisible to clients when R > 1. A 5xx answer is retryable too (on
// another replica first, then after a jittered backoff), bounded by
// readRetryRounds; the last shard answer is relayed when the budget
// runs out. The response relays only after re-checking the map pointer,
// so an answer computed under a superseded map is retracted as a 409.
func (r *Router) serveReplicaRead(w http.ResponseWriter, req *http.Request, pm *PartitionMap, part int, body []byte, scratch *bodyScratch) {
	group := pm.groupOf(part)
	var last *http.Response
	for round := 0; round < readRetryRounds; round++ {
		if round > 0 {
			any := false
			for _, i := range group {
				if r.nodes[i].readable() {
					any = true
					break
				}
			}
			if !any {
				break // nothing left to retry against
			}
			r.readRetries.Inc()
			r.cfg.Clock.Sleep(rpcBackoff(round - 1))
		}
		for ri, i := range group {
			n := r.nodes[i]
			if !n.readable() {
				continue
			}
			if ri > 0 || round > 0 {
				r.readFailover.Inc()
			}
			resp, err := r.forwardScratch(req, n, "/query", body, n.local != nil, scratch)
			if err != nil {
				continue // latched down; next replica
			}
			if resp.StatusCode >= http.StatusInternalServerError {
				if last != nil {
					last.Body.Close()
				}
				last = resp
				continue
			}
			if last != nil {
				last.Body.Close()
			}
			if r.pmap.Load() != pm {
				resp.Body.Close()
				r.writePartitionStale(w)
				return
			}
			relay(w, resp)
			return
		}
	}
	if last != nil {
		if r.pmap.Load() != pm {
			last.Body.Close()
			r.writePartitionStale(w)
			return
		}
		relay(w, last)
		return
	}
	writeErr(w, http.StatusServiceUnavailable,
		fmt.Errorf("partition %d unavailable: no readable replica", part))
}

// fanResult is one leg of a raw fan-out.
type fanResult struct {
	resp *http.Response
	err  error
}

// fanRaw sends body to every target concurrently, through the
// cluster.fanout failpoint, returning raw responses positionally.
func (r *Router) fanRaw(req *http.Request, targets []int, body []byte, scratch *bodyScratch) []fanResult {
	results := make([]fanResult, len(targets))
	var wg sync.WaitGroup
	for slot, i := range targets {
		wg.Add(1)
		go func(slot, i int) {
			defer wg.Done()
			if err := fault.Check(fault.ClusterFanout); err != nil {
				results[slot] = fanResult{err: err}
				return
			}
			resp, err := r.forwardScratch(req, r.nodes[i], "/query", body, false, scratch)
			results[slot] = fanResult{resp: resp, err: err}
		}(slot, i)
	}
	wg.Wait()
	return results
}

// serveGroupWrite applies a single-key write to its partition's whole
// replica group (plus any migration dual-write gainers), in the
// router's order: the caller holds the partition's mutex for the full
// fan, so two writes to one partition cannot interleave differently on
// different replicas. The ack rule generalizes the replicated fan-out:
// the write acks iff a readable replica of the OWNING group accepted
// it; an owning replica that failed while its siblings acked has
// diverged and is latched out of the read path (resync) before the ack
// relays. A gainer's failure never fails the client — it marks the
// partition dirty so the migrator re-copies it.
func (r *Router) serveGroupWrite(w http.ResponseWriter, req *http.Request, pm *PartitionMap, part int, body []byte, scratch *bodyScratch) {
	r.partLocks.RLock()
	defer r.partLocks.RUnlock()
	r.partMu[part].Lock()
	defer r.partMu[part].Unlock()

	// The map may have cut over while this write queued on the lock;
	// its partition assignment (and dual-write set) would be stale.
	if r.pmap.Load() != pm {
		r.writePartitionStale(w)
		return
	}

	group := pm.groupOf(part)
	gainers := r.migrationGainers(pm, part)
	targets := make([]int, 0, len(group)+len(gainers))
	owners := 0
	for _, i := range group {
		if !r.nodes[i].down.Load() {
			targets = append(targets, i)
			owners++
		}
	}
	if owners == 0 {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("partition %d unavailable: no reachable replica", part))
		return
	}
	for _, i := range gainers {
		if r.nodes[i].down.Load() {
			// The in-flight copy misses this write; re-queue the
			// partition for the migrator rather than dropping it.
			r.migrationMarkDirty(pm, part)
			continue
		}
		targets = append(targets, i)
	}

	// Single-target fast path — the R=1 steady state: forward and relay
	// raw, no fan bookkeeping. Requires the sole target to be readable,
	// because a success confined to a writes-only resync replica is not
	// an ack.
	if len(targets) == 1 && r.nodes[targets[0]].readable() {
		n := r.nodes[targets[0]]
		resp, err := r.forwardScratch(req, n, "/query", body, n.local != nil, scratch)
		if err != nil {
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Errorf("partition owner %s unreachable: %v", n.name, err))
			return
		}
		if r.pmap.Load() != pm {
			resp.Body.Close()
			r.writePartitionStale(w)
			return
		}
		relay(w, resp)
		return
	}

	r.writeFanout.Inc()
	results := r.fanRaw(req, targets, body, scratch)

	var ok, firstErr *http.Response
	resyncOnlyOK := false
	for slot, res := range results {
		isOwner := slot < owners
		if res.err != nil {
			r.writeFanErr.Inc()
			if !isOwner {
				r.migrationMarkDirty(pm, part)
			}
			continue
		}
		if res.resp.StatusCode == http.StatusOK {
			if isOwner && ok == nil && r.nodes[targets[slot]].readable() {
				ok = res.resp
			} else if isOwner && !r.nodes[targets[slot]].readable() {
				resyncOnlyOK = true
			}
			continue
		}
		if !isOwner {
			r.migrationMarkDirty(pm, part)
			continue
		}
		if firstErr == nil {
			firstErr = res.resp
		}
	}
	if ok != nil {
		// Acked: every owning replica that did not apply it must leave
		// the read path. Shards that died mid-write latched down inside
		// the transport; shards that answered an error — and shards
		// whose fan leg was dropped before the wire (cluster.fanout) —
		// are quarantined writes-only here.
		for slot, res := range results {
			if slot >= owners {
				continue
			}
			n := r.nodes[targets[slot]]
			applied := res.err == nil && res.resp.StatusCode == http.StatusOK
			if applied || n.down.Load() {
				continue
			}
			if !n.resync.Load() {
				n.latchResync()
				r.writeDiverged.Inc()
			}
		}
		r.syncPeerDown()
	}
	chosen := ok
	if chosen == nil {
		chosen = firstErr
	}
	for _, res := range results {
		if res.resp != nil && res.resp != chosen {
			res.resp.Body.Close()
		}
	}
	if chosen == nil {
		if resyncOnlyOK {
			writeErr(w, http.StatusServiceUnavailable,
				errors.New("write applied to no read-serving replica; retry when the cluster recovers"))
			return
		}
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("write reached no replica of partition %d", part))
		return
	}
	if r.pmap.Load() != pm {
		chosen.Body.Close()
		r.writePartitionStale(w)
		return
	}
	relay(w, chosen)
}
