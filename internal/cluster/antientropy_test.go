package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/detect"
)

// detectCfg is the detection policy the anti-entropy tests run: 60%
// grace, so any single shard's slice of a spread-out scan (½ of the
// catalog at 2 shards, ⅓ at 3) stays under it while the union view
// does not; ×8 cap.
func detectCfg() *detect.Config {
	return &detect.Config{
		Policy: detect.EscalationPolicy{Grace: 0.60, Cap: 8, RampWidth: 0.20, Hysteresis: 0.10},
	}
}

// TestAntiEntropyRestoresGlobalCoverage is the subsystem's core
// property: a principal whose scan is split across shards stays under
// every local coverage threshold until an exchange round unions the
// sketches — after which every shard prices it like a single node that
// saw the whole stream.
func TestAntiEntropyRestoresGlobalCoverage(t *testing.T) {
	// Round-robin routing so one identity's queries genuinely spread.
	r, shields := testCluster(t, 2, 200, detectCfg(), Config{Policy: PolicyRoundRobin})
	h := r.Handler()

	// Two queries alternate shards: each shard sees half the catalog
	// (25% < the 30% grace), the union is the full catalog.
	for _, sql := range []string{
		`SELECT * FROM items WHERE id <= 100`,
		`SELECT * FROM items WHERE id > 100`,
	} {
		if resp, body := query(t, h, "splitter", sql); resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
	}
	for i, sh := range shields {
		if m := sh.Detector().Multiplier("splitter"); m != 1 {
			t.Fatalf("shard %d multiplier %v before exchange, want 1 (local view under grace)", i, m)
		}
	}

	if err := r.ExchangeNowFloor(0.05); err != nil {
		t.Fatalf("exchange: %v", err)
	}
	for i, sh := range shields {
		if m := sh.Detector().Multiplier("splitter"); m <= 1 {
			t.Fatalf("shard %d multiplier %v after exchange, want > 1 (union is a full scan)", i, m)
		}
	}

	// Metrics: one round, sketches moved, nothing rejected.
	resp, body := do(t, h, http.MethodGet, "/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("metrics unavailable")
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if v := m["cluster_antientropy_rounds_total"].(float64); v != 1 {
		t.Errorf("rounds = %v, want 1", v)
	}
	if v := m["cluster_antientropy_sketch_bytes_total"].(float64); v <= 0 {
		t.Errorf("sketch bytes = %v, want > 0", v)
	}
	if v := m["cluster_antientropy_principals_total"].(float64); v != 2 {
		t.Errorf("principals exchanged = %v, want 2 (one delta per shard)", v)
	}
	if v := m["cluster_antientropy_rejected_total"].(float64); v != 0 {
		t.Errorf("rejected = %v, want 0", v)
	}

	// Idempotence / no echo: a second round with no new observations
	// moves nothing — absorbed sketches are not re-exported.
	if err := r.ExchangeNowFloor(0.05); err != nil {
		t.Fatalf("second exchange: %v", err)
	}
	_, body = do(t, h, http.MethodGet, "/metrics", "", "")
	json.Unmarshal(body, &m)
	if v := m["cluster_antientropy_principals_total"].(float64); v != 2 {
		t.Errorf("principals after idle round = %v, want still 2 (echo)", v)
	}
}

// TestAntiEntropyExportFloor keeps low-coverage principals local: only
// sketches above the floor gossip, so millions of legitimate users
// never cost exchange bandwidth.
func TestAntiEntropyExportFloor(t *testing.T) {
	r, shields := testCluster(t, 2, 200, detectCfg(), Config{Policy: PolicyRoundRobin})
	h := r.Handler()

	// A heavy splitter (its two queries round-robin over both shards),
	// then a tiny reader whose single query lands on one shard only.
	for _, sql := range []string{
		`SELECT * FROM items WHERE id <= 100`,
		`SELECT * FROM items WHERE id > 100`,
	} {
		query(t, h, "splitter", sql)
	}
	query(t, h, "casual", `SELECT * FROM items WHERE id <= 5`)

	if err := r.ExchangeNowFloor(0.10); err != nil {
		t.Fatalf("exchange: %v", err)
	}
	// The splitter's union reached both shards; the casual reader's
	// sketch crossed nowhere.
	casualTracked := 0
	for _, sh := range shields {
		if m := sh.Detector().Multiplier("splitter"); m <= 1 {
			t.Errorf("splitter multiplier %v, want > 1", m)
		}
		for _, s := range sh.Detector().Suspects(0) {
			if s.Principal == "casual" {
				casualTracked++
			}
		}
	}
	if casualTracked != 1 {
		t.Errorf("casual reader tracked on %d shards, want 1 (below the export floor)", casualTracked)
	}
}

// TestAntiEntropyRoutesAroundDeadPeer: a dead shard neither stalls the
// round nor poisons it; the survivors still converge, and the round
// latches the peer down.
func TestAntiEntropyRoutesAroundDeadPeer(t *testing.T) {
	const shards = 3
	nodes := make([]*Node, shards)
	kills := make([]*killableTransport, shards)
	shieldAt := make([]interface{ Detector() *detect.Detector }, shards)
	for i := range nodes {
		h, sh := newShard(t, 200, detectCfg())
		nodes[i], kills[i] = newKillableNode(fmt.Sprintf("shard-%d", i), h)
		shieldAt[i] = sh
	}
	r, err := NewRouter(nodes, Config{Policy: PolicyRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handler()

	// Spread a scan over the three shards round-robin.
	for _, sql := range []string{
		`SELECT * FROM items WHERE id <= 70`,
		`SELECT * FROM items WHERE id > 70 AND id <= 140`,
		`SELECT * FROM items WHERE id > 140`,
	} {
		if resp, body := query(t, h, "splitter", sql); resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
	}

	kills[2].dead.Store(true)
	if err := r.ExchangeNowFloor(0.05); err == nil {
		t.Fatal("exchange reported success with a dead peer")
	}
	// The survivors exchanged: both hold the union of shards 0+1
	// (~2/3 of the catalog > 30% grace → escalated).
	for i := 0; i < 2; i++ {
		if m := shieldAt[i].Detector().Multiplier("splitter"); m <= 1 {
			t.Errorf("surviving shard %d multiplier %v, want > 1", i, m)
		}
	}
	if !nodes[2].Down() {
		t.Error("dead peer not latched down by the exchange")
	}

	// Revive: the next round's health probe clears the down latch into
	// writes-only resync — reachability proves nothing about the
	// fan-out writes the peer missed — and the straggler's sketches
	// catch up to the full union through the exchange.
	kills[2].dead.Store(false)
	if err := r.ExchangeNowFloor(0.05); err != nil {
		t.Fatalf("post-revival exchange: %v", err)
	}
	if nodes[2].Down() {
		t.Error("revived peer still latched down after a successful probe")
	}
	if !nodes[2].Resync() {
		t.Error("probe revival landed the peer back in full rotation; want writes-only resync until an operator peer-up")
	}
	if m := shieldAt[2].Detector().Multiplier("splitter"); m <= 1 {
		t.Errorf("revived shard multiplier %v, want > 1 after catch-up", m)
	}
}

// sketchPushFailTransport passes everything through except POST
// /admin/sketches, which answers HTTP 500 while fail is set — a shard
// that is alive (no down latch) but whose absorb endpoint errors.
type sketchPushFailTransport struct {
	inner http.RoundTripper
	fail  atomic.Bool
}

func (f *sketchPushFailTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.fail.Load() && req.Method == http.MethodPost && req.URL.Path == "/admin/sketches" {
		return &http.Response{
			Status:     http.StatusText(http.StatusInternalServerError),
			StatusCode: http.StatusInternalServerError,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader(`{"error":"absorb failed"}`)),
			Request:    req,
		}, nil
	}
	return f.inner.RoundTrip(req)
}

// TestPushFailureRetainsWatermarks: a push that fails with an HTTP
// error (the shard answered, so nothing latches down and no revival
// reset will ever rescue it) must not advance the source watermarks —
// the next round re-pulls the same deltas and re-delivers them, so the
// failed peer misses the sketches for one round, not forever.
func TestPushFailureRetainsWatermarks(t *testing.T) {
	const shards = 2
	nodes := make([]*Node, shards)
	fails := make([]*sketchPushFailTransport, shards)
	shieldAt := make([]interface{ Detector() *detect.Detector }, shards)
	for i := range nodes {
		h, sh := newShard(t, 200, detectCfg())
		ft := &sketchPushFailTransport{inner: handlerTransport{h: h}}
		name := fmt.Sprintf("shard-%d", i)
		nodes[i] = &Node{name: name, base: "http://" + name, http: &http.Client{Transport: ft}, local: ft}
		fails[i] = ft
		shieldAt[i] = sh
	}
	r, err := NewRouter(nodes, Config{Policy: PolicyRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Handler()

	// Spread one principal's scan over both shards: each local half is
	// under grace, the union is not.
	for _, sql := range []string{
		`SELECT * FROM items WHERE id <= 100`,
		`SELECT * FROM items WHERE id > 100`,
	} {
		if resp, body := query(t, h, "splitter", sql); resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
	}

	fails[1].fail.Store(true)
	if err := r.ExchangeNowFloor(0.05); err == nil {
		t.Fatal("exchange reported success despite a failed push")
	}
	if nodes[1].Down() {
		t.Fatal("HTTP-error push latched the peer down; it answered, it is alive")
	}
	if m := shieldAt[0].Detector().Multiplier("splitter"); m <= 1 {
		t.Errorf("shard 0 multiplier %v, want > 1 (its push succeeded)", m)
	}
	if m := shieldAt[1].Detector().Multiplier("splitter"); m > 1 {
		t.Fatalf("shard 1 multiplier %v before any successful push", m)
	}

	// Next round, endpoint healed: the same deltas are re-pulled and
	// re-delivered; the bound is one round of staleness, not forever.
	fails[1].fail.Store(false)
	if err := r.ExchangeNowFloor(0.05); err != nil {
		t.Fatalf("post-heal exchange: %v", err)
	}
	if m := shieldAt[1].Detector().Multiplier("splitter"); m <= 1 {
		t.Errorf("shard 1 multiplier %v after the push retried, want > 1 — the delta was dropped by an advanced watermark", m)
	}
}
