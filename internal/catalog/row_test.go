package catalog

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	if IntValue(5).String() != "5" {
		t.Fatal("IntValue string")
	}
	if FloatValue(2.5).String() != "2.5" {
		t.Fatal("FloatValue string")
	}
	if TextValue("hi").String() != "hi" {
		t.Fatal("TextValue string")
	}
	if (Value{}).String() != "<invalid>" {
		t.Fatal("invalid string")
	}
}

func TestValueEqual(t *testing.T) {
	if !IntValue(3).Equal(IntValue(3)) {
		t.Fatal("equal ints")
	}
	if IntValue(3).Equal(IntValue(4)) {
		t.Fatal("unequal ints")
	}
	if IntValue(3).Equal(FloatValue(3)) {
		t.Fatal("cross-type equal")
	}
	if !TextValue("a").Equal(TextValue("a")) {
		t.Fatal("equal strings")
	}
	if !FloatValue(1.5).Equal(FloatValue(1.5)) {
		t.Fatal("equal floats")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{IntValue(3), IntValue(2), 1},
		{FloatValue(1.5), FloatValue(2.5), -1},
		{FloatValue(2.5), FloatValue(2.5), 0},
		{TextValue("a"), TextValue("b"), -1},
		{TextValue("b"), TextValue("b"), 0},
		{TextValue("c"), TextValue("b"), 1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v", c.a, c.b, got, err)
		}
	}
	if _, err := IntValue(1).Compare(TextValue("x")); err == nil {
		t.Fatal("cross-type compare accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema()
	row := Row{IntValue(42), TextValue("Spider-Man"), FloatValue(403706375)}
	data, err := EncodeRow(s, row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(s, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !got[i].Equal(row[i]) {
			t.Fatalf("column %d: %v != %v", i, got[i], row[i])
		}
	}
}

func TestEncodeRowValidation(t *testing.T) {
	s := testSchema()
	if _, err := EncodeRow(s, Row{IntValue(1)}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := EncodeRow(s, Row{TextValue("x"), TextValue("y"), FloatValue(1)}); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestDecodeRowErrors(t *testing.T) {
	s := testSchema()
	row := Row{IntValue(1), TextValue("abc"), FloatValue(2)}
	data, _ := EncodeRow(s, row)
	// Truncations at every boundary must error, not panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeRow(s, data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage.
	if _, err := DecodeRow(s, append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestEncodeNegativeAndExtremes(t *testing.T) {
	s := Schema{Table: "t", Columns: []Column{{Name: "id", Type: Int}, {Name: "f", Type: Float}}, Key: 0}
	row := Row{IntValue(-12345), FloatValue(math.Inf(-1))}
	data, err := EncodeRow(s, row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int != -12345 || !math.IsInf(got[1].Float, -1) {
		t.Fatalf("extremes lost: %v", got)
	}
}

func TestRowKey(t *testing.T) {
	s := testSchema()
	row := Row{IntValue(77), TextValue("x"), FloatValue(0)}
	k, err := s.RowKey(row)
	if err != nil || k != 77 {
		t.Fatalf("RowKey = %d, %v", k, err)
	}
	// Negative keys map through two's complement, stable and unique.
	row[0] = IntValue(-1)
	k, err = s.RowKey(row)
	if err != nil || k != math.MaxUint64 {
		t.Fatalf("negative RowKey = %d, %v", k, err)
	}
	if _, err := s.RowKey(Row{IntValue(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestRowCodecProperty(t *testing.T) {
	s := Schema{
		Table: "p",
		Columns: []Column{
			{Name: "id", Type: Int},
			{Name: "name", Type: Text},
			{Name: "score", Type: Float},
			{Name: "note", Type: Text},
		},
		Key: 0,
	}
	f := func(id int64, name string, score float64, note string) bool {
		row := Row{IntValue(id), TextValue(name), FloatValue(score), TextValue(note)}
		data, err := EncodeRow(s, row)
		if err != nil {
			return false
		}
		got, err := DecodeRow(s, data)
		if err != nil {
			return false
		}
		if got[0].Int != id || got[1].Str != name || got[3].Str != note {
			return false
		}
		// NaN compares unequal to itself; compare bit patterns.
		return math.Float64bits(got[2].Float) == math.Float64bits(score)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyStringsAndUnicode(t *testing.T) {
	s := Schema{Table: "t", Columns: []Column{{Name: "id", Type: Int}, {Name: "s", Type: Text}}, Key: 0}
	for _, str := range []string{"", "héllo wörld", "日本語", string([]byte{0, 1, 2})} {
		row := Row{IntValue(1), TextValue(str)}
		data, err := EncodeRow(s, row)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRow(s, data)
		if err != nil || got[1].Str != str {
			t.Fatalf("string %q: got %q, %v", str, got[1].Str, err)
		}
	}
}
