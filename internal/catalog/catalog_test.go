package catalog

import (
	"os"
	"path/filepath"
	"testing"
)

func testSchema() Schema {
	return Schema{
		Table: "movies",
		Columns: []Column{
			{Name: "id", Type: Int},
			{Name: "title", Type: Text},
			{Name: "gross", Type: Float},
		},
		Key: 0,
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"INT": Int, "integer": Int, "BIGINT": Int,
		"float": Float, "REAL": Float, "double": Float,
		"TEXT": Text, "varchar": Text, "STRING": Text,
	}
	for in, want := range cases {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestTypeString(t *testing.T) {
	if Int.String() != "INT" || Float.String() != "FLOAT" || Text.String() != "TEXT" {
		t.Fatal("type names wrong")
	}
	if Type(99).String() == "" {
		t.Fatal("invalid type has empty name")
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{Table: "", Columns: []Column{{Name: "id", Type: Int}}},
		{Table: "t"},
		{Table: "t", Columns: []Column{{Name: "id", Type: Int}}, Key: 5},
		{Table: "t", Columns: []Column{{Name: "id", Type: Text}}, Key: 0},
		{Table: "t", Columns: []Column{{Name: "id", Type: Int}, {Name: "ID", Type: Int}}},
		{Table: "t", Columns: []Column{{Name: "", Type: Int}}},
		{Table: "t", Columns: []Column{{Name: "id", Type: Int}, {Name: "x", Type: Type(9)}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestColumnIndex(t *testing.T) {
	s := testSchema()
	if s.ColumnIndex("title") != 1 {
		t.Fatal("title index")
	}
	if s.ColumnIndex("TITLE") != 1 {
		t.Fatal("case-insensitive lookup failed")
	}
	if s.ColumnIndex("nope") != -1 {
		t.Fatal("missing column found")
	}
}

func TestCatalogCreateGetDrop(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Create(testSchema()); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("MOVIES") // case-insensitive
	if err != nil || got.Table != "movies" {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if err := c.Create(testSchema()); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if tables := c.Tables(); len(tables) != 1 || tables[0] != "movies" {
		t.Fatalf("Tables = %v", tables)
	}
	if err := c.Drop("movies"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("movies"); err == nil {
		t.Fatal("dropped table still present")
	}
	if err := c.Drop("movies"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestCatalogPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	if err := c.Create(testSchema()); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c2.Get("movies")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Columns) != 3 || s.Columns[1].Name != "title" {
		t.Fatalf("reloaded schema = %+v", s)
	}
}

func TestCatalogRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt catalog accepted")
	}
}

func TestCatalogRejectsInvalidStoredSchema(t *testing.T) {
	dir := t.TempDir()
	// Valid JSON, invalid schema (TEXT primary key).
	blob := `[{"table":"t","columns":[{"name":"id","type":3}],"key":0}]`
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("invalid stored schema accepted")
	}
}

func TestCatalogCreateValidates(t *testing.T) {
	c, _ := Open(t.TempDir())
	bad := testSchema()
	bad.Key = 1 // TEXT key
	if err := c.Create(bad); err == nil {
		t.Fatal("invalid schema accepted")
	}
}
