// Package catalog defines the relational engine's schema objects and the
// binary row codec. A schema is a list of typed columns with exactly one
// INT primary key column, whose value doubles as the tuple id the delay
// defense tracks.
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Type enumerates column types.
type Type uint8

// Supported column types.
const (
	Int Type = iota + 1
	Float
	Text
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Text:
		return "TEXT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType converts a SQL type name to a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT":
		return Int, nil
	case "FLOAT", "REAL", "DOUBLE":
		return Float, nil
	case "TEXT", "VARCHAR", "STRING":
		return Text, nil
	default:
		return 0, fmt.Errorf("catalog: unknown type %q", s)
	}
}

// Column is one attribute of a relation.
type Column struct {
	Name string `json:"name"`
	Type Type   `json:"type"`
}

// IndexDef describes a secondary index over one column.
type IndexDef struct {
	Name   string `json:"name"`
	Column string `json:"column"`
}

// Schema describes a relation.
type Schema struct {
	Table   string   `json:"table"`
	Columns []Column `json:"columns"`
	// Key is the index of the primary key column; it must be an Int
	// column. Primary key values identify tuples to the delay defense.
	Key int `json:"key"`
	// Indexes are the secondary indexes defined on this relation.
	Indexes []IndexDef `json:"indexes,omitempty"`
}

// Validate checks structural invariants.
func (s Schema) Validate() error {
	if s.Table == "" {
		return errors.New("catalog: empty table name")
	}
	if len(s.Columns) == 0 {
		return errors.New("catalog: no columns")
	}
	if s.Key < 0 || s.Key >= len(s.Columns) {
		return fmt.Errorf("catalog: key index %d out of range", s.Key)
	}
	if s.Columns[s.Key].Type != Int {
		return errors.New("catalog: primary key must be an INT column")
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return errors.New("catalog: empty column name")
		}
		lower := strings.ToLower(c.Name)
		if seen[lower] {
			return fmt.Errorf("catalog: duplicate column %q", c.Name)
		}
		seen[lower] = true
		switch c.Type {
		case Int, Float, Text:
		default:
			return fmt.Errorf("catalog: column %q has invalid type", c.Name)
		}
	}
	idxNames := make(map[string]bool, len(s.Indexes))
	for _, idx := range s.Indexes {
		if idx.Name == "" {
			return errors.New("catalog: empty index name")
		}
		lower := strings.ToLower(idx.Name)
		if idxNames[lower] {
			return fmt.Errorf("catalog: duplicate index %q", idx.Name)
		}
		idxNames[lower] = true
		if s.ColumnIndex(idx.Column) < 0 {
			return fmt.Errorf("catalog: index %q references unknown column %q", idx.Name, idx.Column)
		}
	}
	return nil
}

// ColumnIndex returns the index of the named column (case-insensitive),
// or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Catalog maps table names to schemas and persists them as JSON in a meta
// file alongside the data files. It is safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	path    string
	schemas map[string]Schema
}

// Open loads (or initializes) the catalog stored in dir/catalog.json.
func Open(dir string) (*Catalog, error) {
	c := &Catalog{
		path:    filepath.Join(dir, "catalog.json"),
		schemas: make(map[string]Schema),
	}
	data, err := os.ReadFile(c.path)
	if errors.Is(err, os.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: reading %s: %w", c.path, err)
	}
	var schemas []Schema
	if err := json.Unmarshal(data, &schemas); err != nil {
		return nil, fmt.Errorf("catalog: parsing %s: %w", c.path, err)
	}
	for _, s := range schemas {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("catalog: stored schema %q: %w", s.Table, err)
		}
		c.schemas[strings.ToLower(s.Table)] = s
	}
	return c, nil
}

// Create registers a new table schema and persists the catalog.
func (c *Catalog) Create(s Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(s.Table)
	if _, exists := c.schemas[key]; exists {
		return fmt.Errorf("catalog: table %q already exists", s.Table)
	}
	c.schemas[key] = s
	if err := c.saveLocked(); err != nil {
		delete(c.schemas, key)
		return err
	}
	return nil
}

// Drop removes a table schema and persists the catalog.
func (c *Catalog) Drop(table string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(table)
	old, exists := c.schemas[key]
	if !exists {
		return fmt.Errorf("catalog: table %q does not exist", table)
	}
	delete(c.schemas, key)
	if err := c.saveLocked(); err != nil {
		c.schemas[key] = old
		return err
	}
	return nil
}

// UpdateSchema replaces a table's stored schema (used when indexes are
// added or dropped) and persists the catalog.
func (c *Catalog) UpdateSchema(s Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(s.Table)
	old, exists := c.schemas[key]
	if !exists {
		return fmt.Errorf("catalog: table %q does not exist", s.Table)
	}
	c.schemas[key] = s
	if err := c.saveLocked(); err != nil {
		c.schemas[key] = old
		return err
	}
	return nil
}

// Get returns the schema for table.
func (c *Catalog) Get(table string) (Schema, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.schemas[strings.ToLower(table)]
	if !ok {
		return Schema{}, fmt.Errorf("catalog: table %q does not exist", table)
	}
	return s, nil
}

// Tables returns all table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.schemas))
	for _, s := range c.schemas {
		out = append(out, s.Table)
	}
	sort.Strings(out)
	return out
}

func (c *Catalog) saveLocked() error {
	schemas := make([]Schema, 0, len(c.schemas))
	for _, s := range c.schemas {
		schemas = append(schemas, s)
	}
	sort.Slice(schemas, func(i, j int) bool { return schemas[i].Table < schemas[j].Table })
	data, err := json.MarshalIndent(schemas, "", "  ")
	if err != nil {
		return fmt.Errorf("catalog: encoding: %w", err)
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("catalog: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("catalog: committing %s: %w", c.path, err)
	}
	return nil
}
