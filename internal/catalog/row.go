package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Value is one typed cell of a row.
type Value struct {
	Type  Type
	Int   int64
	Float float64
	Str   string
}

// IntValue, FloatValue and TextValue construct Values.
func IntValue(v int64) Value     { return Value{Type: Int, Int: v} }
func FloatValue(v float64) Value { return Value{Type: Float, Float: v} }
func TextValue(v string) Value   { return Value{Type: Text, Str: v} }

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Type {
	case Int:
		return fmt.Sprintf("%d", v.Int)
	case Float:
		return fmt.Sprintf("%g", v.Float)
	case Text:
		return v.Str
	default:
		return "<invalid>"
	}
}

// Equal reports deep equality of two values (types must match).
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case Int:
		return v.Int == o.Int
	case Float:
		return v.Float == o.Float
	case Text:
		return v.Str == o.Str
	default:
		return false
	}
}

// Compare orders two values of the same type: -1, 0, or +1. It returns an
// error on type mismatch.
func (v Value) Compare(o Value) (int, error) {
	if v.Type != o.Type {
		return 0, fmt.Errorf("catalog: comparing %v with %v", v.Type, o.Type)
	}
	switch v.Type {
	case Int:
		switch {
		case v.Int < o.Int:
			return -1, nil
		case v.Int > o.Int:
			return 1, nil
		}
		return 0, nil
	case Float:
		switch {
		case v.Float < o.Float:
			return -1, nil
		case v.Float > o.Float:
			return 1, nil
		}
		return 0, nil
	case Text:
		switch {
		case v.Str < o.Str:
			return -1, nil
		case v.Str > o.Str:
			return 1, nil
		}
		return 0, nil
	default:
		return 0, errors.New("catalog: comparing invalid values")
	}
}

// Row is an ordered list of values matching a schema's columns.
type Row []Value

// EncodeRow serializes a row for the given schema. Layout: for each
// column, Int → 8-byte little-endian two's complement; Float → 8-byte
// IEEE-754 bits; Text → uvarint length + bytes.
func EncodeRow(s Schema, r Row) ([]byte, error) {
	if len(r) != len(s.Columns) {
		return nil, fmt.Errorf("catalog: row has %d values, schema %q has %d columns",
			len(r), s.Table, len(s.Columns))
	}
	buf := make([]byte, 0, 16*len(r))
	var scratch [binary.MaxVarintLen64]byte
	for i, col := range s.Columns {
		if r[i].Type != col.Type {
			return nil, fmt.Errorf("catalog: column %q expects %v, got %v",
				col.Name, col.Type, r[i].Type)
		}
		switch col.Type {
		case Int:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(r[i].Int))
			buf = append(buf, b[:]...)
		case Float:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(r[i].Float))
			buf = append(buf, b[:]...)
		case Text:
			n := binary.PutUvarint(scratch[:], uint64(len(r[i].Str)))
			buf = append(buf, scratch[:n]...)
			buf = append(buf, r[i].Str...)
		}
	}
	return buf, nil
}

// DecodeRow deserializes a row encoded by EncodeRow.
func DecodeRow(s Schema, data []byte) (Row, error) {
	return DecodeRowInto(s, data, nil, nil)
}

// DecodeRowInto is DecodeRow appending into row's storage (pass row[:0]
// to reuse a scratch slice across records). need, when non-nil, marks
// the columns whose values the caller will actually read: TEXT columns
// outside the mask are length-skipped and left as empty strings instead
// of being copied out of the page, which keeps hot point lookups and
// filtered scans from allocating a string per row for columns nobody
// projects or filters on. Fixed-width columns decode regardless (the
// skip would cost more than the read).
func DecodeRowInto(s Schema, data []byte, row Row, need []bool) (Row, error) {
	if row == nil {
		row = make(Row, 0, len(s.Columns))
	}
	off := 0
	for i, col := range s.Columns {
		switch col.Type {
		case Int:
			if off+8 > len(data) {
				return nil, fmt.Errorf("catalog: truncated INT column %q", col.Name)
			}
			row = append(row, IntValue(int64(binary.LittleEndian.Uint64(data[off:off+8]))))
			off += 8
		case Float:
			if off+8 > len(data) {
				return nil, fmt.Errorf("catalog: truncated FLOAT column %q", col.Name)
			}
			row = append(row, FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(data[off:off+8]))))
			off += 8
		case Text:
			l, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return nil, fmt.Errorf("catalog: bad TEXT length for column %q", col.Name)
			}
			off += n
			if off+int(l) > len(data) {
				return nil, fmt.Errorf("catalog: truncated TEXT column %q", col.Name)
			}
			if need == nil || need[i] {
				row = append(row, TextValue(string(data[off:off+int(l)])))
			} else {
				row = append(row, Value{Type: Text})
			}
			off += int(l)
		default:
			return nil, fmt.Errorf("catalog: invalid type in schema column %q", col.Name)
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("catalog: %d trailing bytes after row", len(data)-off)
	}
	return row, nil
}

// Key returns the row's primary key value as the tuple id used by the
// delay defense. Keys are INT by schema invariant; negative keys map via
// two's complement.
func (s Schema) RowKey(r Row) (uint64, error) {
	if len(r) != len(s.Columns) {
		return 0, errors.New("catalog: row/schema arity mismatch")
	}
	v := r[s.Key]
	if v.Type != Int {
		return 0, errors.New("catalog: primary key value is not INT")
	}
	return uint64(v.Int), nil
}
