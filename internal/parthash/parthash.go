// Package parthash pins the tuple-placement hash shared by the cluster
// router and the shard-side partition filter. The router uses it to pick
// a tuple's replica group; a shard uses it to decide which locally held
// rows belong to the partitions a scatter query asked it to answer for.
// Both sides must agree bit for bit — this package is the single
// definition.
package parthash

// Mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mix so adjacent primary keys land on unrelated partitions.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Index returns the partition a primary key hashes to under a
// partitions-way split.
func Index(key int64, partitions int) int {
	return int(Mix64(uint64(key)) % uint64(partitions))
}
