package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a registry from a fault spec string, the format behind
// the DELAYDB_FAULTS environment knob. The spec is a semicolon-separated
// list of rules:
//
//	site=kind[:arg][@mod[,mod...]]
//
// Kinds: "err", "latency:<duration>", "torn:<bytes>", "crash".
// Modifiers: "p<float>" (fire probability), "after<n>" (skip the first n
// hits), "every<n>" (then fire on every n-th hit), "count<n>" (fire at
// most n times).
//
// Examples:
//
//	pager.read=err@p0.01                 1% of page reads fail
//	wal.append=torn:13@after5,count1     6th WAL append tears at byte 13
//	pager.sync=latency:2ms@every10       every 10th fsync takes +2ms
//	wal.append=crash@after100            crash at the 101st commit
//
// Sites: pager.read, pager.write, pager.sync, wal.append, wal.replay,
// pool.load, wal.groupflush, cluster.rpc, cluster.fanout.
func Parse(spec string, seed uint64) (*Registry, error) {
	reg := NewRegistry(seed)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		rule, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		reg.Add(rule)
	}
	return reg, nil
}

func parseClause(clause string) (Rule, error) {
	siteStr, rest, ok := strings.Cut(clause, "=")
	if !ok {
		return Rule{}, fmt.Errorf("fault: clause %q lacks site=kind", clause)
	}
	site, err := ParseSite(strings.TrimSpace(siteStr))
	if err != nil {
		return Rule{}, err
	}
	kindStr, mods, hasMods := strings.Cut(rest, "@")
	rule := Rule{Site: site}

	kindName, arg, hasArg := strings.Cut(strings.TrimSpace(kindStr), ":")
	switch kindName {
	case "err":
		rule.Kind = Error
	case "crash":
		rule.Kind = Crash
	case "latency":
		rule.Kind = Latency
		if !hasArg {
			return Rule{}, fmt.Errorf("fault: latency rule %q needs a duration (latency:<dur>)", clause)
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Rule{}, fmt.Errorf("fault: latency in %q: %w", clause, err)
		}
		rule.Latency = d
	case "torn":
		rule.Kind = Torn
		if !hasArg {
			return Rule{}, fmt.Errorf("fault: torn rule %q needs a byte count (torn:<bytes>)", clause)
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return Rule{}, fmt.Errorf("fault: torn bytes in %q must be a non-negative int", clause)
		}
		rule.TornBytes = n
	default:
		return Rule{}, fmt.Errorf("fault: unknown kind %q in %q (err|latency|torn|crash)", kindName, clause)
	}
	if (rule.Kind == Error || rule.Kind == Crash) && hasArg {
		return Rule{}, fmt.Errorf("fault: kind %q in %q takes no argument", kindName, clause)
	}

	if hasMods {
		for _, mod := range strings.Split(mods, ",") {
			mod = strings.TrimSpace(mod)
			if err := applyMod(&rule, mod); err != nil {
				return Rule{}, fmt.Errorf("fault: modifier %q in %q: %w", mod, clause, err)
			}
		}
	}
	return rule, nil
}

func applyMod(rule *Rule, mod string) error {
	switch {
	case strings.HasPrefix(mod, "p"):
		p, err := strconv.ParseFloat(mod[1:], 64)
		if err != nil || p <= 0 || p > 1 {
			return fmt.Errorf("want p<float> in (0, 1]")
		}
		rule.P = p
	case strings.HasPrefix(mod, "after"):
		n, err := strconv.ParseUint(mod[len("after"):], 10, 64)
		if err != nil {
			return fmt.Errorf("want after<n>")
		}
		rule.After = n
	case strings.HasPrefix(mod, "every"):
		n, err := strconv.ParseUint(mod[len("every"):], 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("want every<n> with n ≥ 1")
		}
		rule.Every = n
	case strings.HasPrefix(mod, "count"):
		n, err := strconv.ParseUint(mod[len("count"):], 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("want count<n> with n ≥ 1")
		}
		rule.Count = n
	default:
		return fmt.Errorf("unknown modifier (p|after|every|count)")
	}
	return nil
}
