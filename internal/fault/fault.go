// Package fault is a deterministically seeded failpoint registry for the
// storage stack. Every pager, WAL, and buffer-pool I/O site runs a named
// failpoint; with no registry enabled the check compiles down to one
// atomic pointer load and a nil compare, so the production hot path pays
// nothing. With a registry enabled, rules injected per site can return
// errors, tear writes short (a crash-torn append without crashing the
// process), add I/O latency, or simulate a crash at the point itself.
//
// Rules trigger deterministically: hit counters plus a per-rule
// splitmix64 PRNG seeded from the registry seed, so a failing torture run
// replays byte-for-byte from its seed. The DELAYDB_FAULTS environment
// knob (see Parse) drives the same registry from outside the process.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one failpoint in the storage stack.
type Site uint8

// The failpoint catalog. Every I/O chokepoint of the storage layer runs
// exactly one of these (DESIGN.md §12 maps each to its call site).
const (
	// PagerRead guards physical page reads (Pager.Read).
	PagerRead Site = iota
	// PagerWrite guards physical page writes, including eviction
	// write-back, WriteImage during recovery, and file extension.
	PagerWrite
	// PagerSync guards fsync of the data file (Pager.Sync).
	PagerSync
	// WALAppend guards the WAL batch append — the commit point. Torn
	// rules here produce exactly the half-written tails recovery must
	// survive.
	WALAppend
	// WALReplay guards recovery's log scan (WAL.Replay).
	WALReplay
	// PoolLoad guards buffer-pool loading-frame fills (the miss path of
	// Pool.Fetch), upstream of the pager read itself.
	PoolLoad
	// WALGroupFlush guards the group-commit leader's flush, after the
	// coalesced batch hit the file but before the fsync — a leader crash
	// mid-group. Error rules here fail every committer in the group.
	WALGroupFlush
	// ClusterRPC guards every router→shard peer RPC. Error rules drop
	// the request before it leaves (a refused connection), latency rules
	// stall it in the network, and torn rules deliver the response but
	// truncate its body to n bytes — a connection dying mid-reply.
	ClusterRPC
	// ClusterFanout guards each per-target dispatch inside a router
	// fan-out (group writes, scatter reads/writes), letting one leg of a
	// fan fail while its siblings proceed.
	ClusterFanout

	numSites
)

var siteNames = [numSites]string{
	"pager.read",
	"pager.write",
	"pager.sync",
	"wal.append",
	"wal.replay",
	"pool.load",
	"wal.groupflush",
	"cluster.rpc",
	"cluster.fanout",
}

// String returns the site's spec name (as used in DELAYDB_FAULTS).
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// ParseSite resolves a spec name to its Site.
func ParseSite(name string) (Site, error) {
	for i, n := range siteNames {
		if n == name {
			return Site(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown site %q", name)
}

// Sites lists the full failpoint catalog.
func Sites() []Site {
	out := make([]Site, numSites)
	for i := range out {
		out[i] = Site(i)
	}
	return out
}

// Kind is what an armed rule does when it fires.
type Kind uint8

// Rule kinds.
const (
	// Error makes the site return Rule.Err (default ErrInjected).
	Error Kind = iota
	// Latency sleeps Rule.Latency at the site, then lets the I/O proceed.
	Latency
	// Torn lets only Rule.TornBytes bytes of the write reach the file,
	// then returns the error — a crash mid-write without the crash. At
	// non-write sites it behaves like Error.
	Torn
	// Crash invokes the crash handler (default: panic with a *CrashPanic)
	// — the in-process stand-in for dying at exactly this point.
	Crash
)

var kindNames = [...]string{"err", "latency", "torn", "crash"}

// String returns the kind's spec name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrInjected is the default error injected by Error and Torn rules.
// Storage wraps it like any real I/O failure, so errors.Is(err,
// storage.ErrIO) holds for injected faults too.
var ErrInjected = errors.New("fault: injected failure")

// CrashPanic is the panic value of a fired Crash rule under the default
// handler; harnesses recover it at the workload boundary.
type CrashPanic struct{ Site Site }

// Error implements error so recovered crash panics read naturally.
func (c *CrashPanic) Error() string {
	return fmt.Sprintf("fault: injected crash at %s", c.Site)
}

// Rule arms one site. The zero trigger fields mean "fire on every hit":
// After skips the first hits, Every fires on every n-th eligible hit,
// Count caps total fires, and P (when in (0,1)) gates each fire on the
// rule's deterministic PRNG.
type Rule struct {
	Site    Site
	Kind    Kind
	After   uint64        // skip the first After hits
	Every   uint64        // then fire on every Every-th eligible hit (0 = every)
	Count   uint64        // fire at most Count times (0 = unlimited)
	P       float64       // fire probability per eligible hit (0 = always)
	Latency time.Duration // Latency rules: how long to sleep
	TornBytes int         // Torn rules: bytes allowed through before the error
	Err     error         // Error/Torn rules: error to inject (nil = ErrInjected)
}

// ruleState is a Rule plus its runtime trigger state.
type ruleState struct {
	Rule
	hits  atomic.Uint64
	fires atomic.Uint64
	rngMu sync.Mutex
	rng   uint64
}

// splitmix64 is the standard SplitMix64 step, the same generator the
// detection sketches use; good enough to decorrelate rule firings and
// trivially reproducible.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4a9b51d9e2e35
	return z ^ (z >> 31)
}

func (r *ruleState) roll() float64 {
	r.rngMu.Lock()
	r.rng = splitmix64(r.rng)
	v := r.rng
	r.rngMu.Unlock()
	return float64(v>>11) / float64(1<<53)
}

// Registry is one armed set of rules. Build it, Add rules, then Enable
// it; the storage layer consults whichever registry is enabled.
type Registry struct {
	seed  uint64
	rules [numSites][]*ruleState
	hits  [numSites]atomic.Uint64
	fires [numSites]atomic.Uint64
}

// NewRegistry returns an empty registry whose probabilistic rules derive
// from seed (same seed, same firing sequence).
func NewRegistry(seed uint64) *Registry {
	return &Registry{seed: seed}
}

// Add arms a rule. Call before Enable; rules cannot be added to a live
// registry (there is no lock on the check path).
func (r *Registry) Add(rule Rule) *Registry {
	if rule.Site >= numSites {
		panic(fmt.Sprintf("fault: bad site %d", rule.Site))
	}
	st := &ruleState{Rule: rule}
	// Decorrelate rules: seed ⊕ site ⊕ rule index through one mix step.
	st.rng = splitmix64(r.seed ^ uint64(rule.Site)<<32 ^ uint64(len(r.rules[rule.Site])))
	r.rules[rule.Site] = append(r.rules[rule.Site], st)
	return r
}

// Hits returns how many times the site's failpoint has been evaluated.
func (r *Registry) Hits(s Site) uint64 { return r.hits[s].Load() }

// Fires returns how many times any rule at the site has fired.
func (r *Registry) Fires(s Site) uint64 { return r.fires[s].Load() }

// active is the enabled registry; nil means every failpoint is inert.
var active atomic.Pointer[Registry]

// Enable installs r as the process-wide registry (nil disables).
func Enable(r *Registry) { active.Store(r) }

// Disable removes the registry; failpoints return to zero overhead.
func Disable() { active.Store(nil) }

// Enabled reports whether a registry is installed.
func Enabled() bool { return active.Load() != nil }

// Active returns the enabled registry (nil when disabled), for
// introspection such as hit/fire counters.
func Active() *Registry { return active.Load() }

// crashHandler is invoked by Crash rules. Tests and harnesses may
// replace it; the default panics with a *CrashPanic.
var crashHandler atomic.Pointer[func(Site)]

// SetCrashHandler replaces the Crash rule handler (nil restores the
// panicking default).
func SetCrashHandler(fn func(Site)) {
	if fn == nil {
		crashHandler.Store(nil)
		return
	}
	crashHandler.Store(&fn)
}

func crash(s Site) {
	if fn := crashHandler.Load(); fn != nil {
		(*fn)(s)
		return
	}
	panic(&CrashPanic{Site: s})
}

// Check runs the failpoint at site. With no registry enabled it is a
// single atomic load. Otherwise it sleeps any injected latency and
// returns any injected error (Torn behaves like Error at non-write
// sites).
func Check(site Site) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	_, err := r.eval(site, 0)
	return err
}

// CheckWrite runs the failpoint at site for an n-byte write. It returns
// how many bytes the caller should actually write and the error to
// return afterwards: (n, nil) when nothing fires, (k < n, err) for a
// torn write. Callers perform the partial write, then return the error
// without advancing their logical size — exactly the state a crash
// mid-write leaves behind.
func CheckWrite(site Site, n int) (int, error) {
	r := active.Load()
	if r == nil {
		return n, nil
	}
	return r.eval(site, n)
}

// eval walks the site's rules in order. Latency rules sleep and keep
// going; the first Error/Torn/Crash rule that fires ends the walk.
func (r *Registry) eval(site Site, n int) (int, error) {
	r.hits[site].Add(1)
	for _, st := range r.rules[site] {
		hit := st.hits.Add(1)
		if hit <= st.After {
			continue
		}
		if st.Every > 1 && (hit-st.After-1)%st.Every != 0 {
			continue
		}
		if st.Count > 0 && st.fires.Load() >= st.Count {
			continue
		}
		if st.P > 0 && st.P < 1 && st.roll() >= st.P {
			continue
		}
		st.fires.Add(1)
		r.fires[site].Add(1)
		switch st.Kind {
		case Latency:
			time.Sleep(st.Latency)
		case Crash:
			crash(site)
		case Torn:
			allow := st.TornBytes
			if allow > n {
				allow = n
			}
			if allow < 0 {
				allow = 0
			}
			return allow, st.err()
		default: // Error
			return 0, st.err()
		}
	}
	return n, nil
}

func (st *ruleState) err() error {
	if st.Err != nil {
		return st.Err
	}
	return ErrInjected
}
