package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsInert(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("registry enabled at start")
	}
	if err := Check(PagerRead); err != nil {
		t.Fatalf("disabled Check: %v", err)
	}
	if n, err := CheckWrite(WALAppend, 100); n != 100 || err != nil {
		t.Fatalf("disabled CheckWrite = (%d, %v)", n, err)
	}
}

func TestErrorRuleTriggers(t *testing.T) {
	reg := NewRegistry(1).Add(Rule{Site: PagerRead, Kind: Error, After: 2, Count: 1})
	Enable(reg)
	defer Disable()
	for i := 0; i < 2; i++ {
		if err := Check(PagerRead); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := Check(PagerRead); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd hit: %v, want ErrInjected", err)
	}
	// Count: 1 — exhausted.
	if err := Check(PagerRead); err != nil {
		t.Fatalf("rule fired past its count: %v", err)
	}
	if reg.Hits(PagerRead) != 4 || reg.Fires(PagerRead) != 1 {
		t.Fatalf("hits/fires = %d/%d, want 4/1", reg.Hits(PagerRead), reg.Fires(PagerRead))
	}
}

func TestEveryTriggersPeriodically(t *testing.T) {
	Enable(NewRegistry(1).Add(Rule{Site: PagerSync, Kind: Error, Every: 3}))
	defer Disable()
	var fired []int
	for i := 0; i < 9; i++ {
		if Check(PagerSync) != nil {
			fired = append(fired, i)
		}
	}
	want := []int{0, 3, 6}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestTornWrite(t *testing.T) {
	Enable(NewRegistry(1).Add(Rule{Site: WALAppend, Kind: Torn, TornBytes: 13, Count: 1}))
	defer Disable()
	n, err := CheckWrite(WALAppend, 100)
	if n != 13 || !errors.Is(err, ErrInjected) {
		t.Fatalf("CheckWrite = (%d, %v), want (13, ErrInjected)", n, err)
	}
	// TornBytes beyond the write length clamps.
	Enable(NewRegistry(1).Add(Rule{Site: WALAppend, Kind: Torn, TornBytes: 500}))
	if n, _ := CheckWrite(WALAppend, 100); n != 100 {
		t.Fatalf("clamped torn = %d, want 100", n)
	}
}

func TestProbabilisticRuleIsDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		reg := NewRegistry(seed).Add(Rule{Site: PoolLoad, Kind: Error, P: 0.3})
		Enable(reg)
		defer Disable()
		var fired []int
		for i := 0; i < 200; i++ {
			if Check(PoolLoad) != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fire %d", i)
		}
	}
	if len(a) < 30 || len(a) > 90 {
		t.Fatalf("p=0.3 fired %d/200 times; trigger badly biased", len(a))
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing sequences")
	}
}

func TestCrashRuleInvokesHandler(t *testing.T) {
	var crashed Site = 255
	SetCrashHandler(func(s Site) { crashed = s })
	defer SetCrashHandler(nil)
	Enable(NewRegistry(1).Add(Rule{Site: WALAppend, Kind: Crash}))
	defer Disable()
	Check(WALAppend)
	if crashed != WALAppend {
		t.Fatalf("crash handler got site %v", crashed)
	}
}

func TestCrashDefaultPanics(t *testing.T) {
	Enable(NewRegistry(1).Add(Rule{Site: PagerWrite, Kind: Crash}))
	defer Disable()
	defer func() {
		r := recover()
		cp, ok := r.(*CrashPanic)
		if !ok || cp.Site != PagerWrite {
			t.Fatalf("recovered %v, want *CrashPanic at pager.write", r)
		}
	}()
	Check(PagerWrite)
	t.Fatal("no panic")
}

func TestLatencyRuleSleepsAndProceeds(t *testing.T) {
	Enable(NewRegistry(1).Add(Rule{Site: PagerRead, Kind: Latency, Latency: 20 * time.Millisecond}))
	defer Disable()
	start := time.Now()
	if err := Check(PagerRead); err != nil {
		t.Fatalf("latency rule returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency rule slept only %v", d)
	}
}

func TestParse(t *testing.T) {
	reg, err := Parse("pager.read=err@p0.5; wal.append=torn:13@after5,count1; pager.sync=latency:2ms@every10; pool.load=crash", 7)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		site Site
		want Rule
	}{
		{PagerRead, Rule{Site: PagerRead, Kind: Error, P: 0.5}},
		{WALAppend, Rule{Site: WALAppend, Kind: Torn, TornBytes: 13, After: 5, Count: 1}},
		{PagerSync, Rule{Site: PagerSync, Kind: Latency, Latency: 2 * time.Millisecond, Every: 10}},
		{PoolLoad, Rule{Site: PoolLoad, Kind: Crash}},
	}
	for _, c := range checks {
		rules := reg.rules[c.site]
		if len(rules) != 1 {
			t.Fatalf("site %v has %d rules", c.site, len(rules))
		}
		if rules[0].Rule != c.want {
			t.Fatalf("site %v rule = %+v, want %+v", c.site, rules[0].Rule, c.want)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"nonsense",
		"bogus.site=err",
		"pager.read=explode",
		"pager.read=latency",       // missing duration
		"pager.read=torn",          // missing bytes
		"pager.read=torn:-1",       // negative bytes
		"pager.read=err:arg",       // err takes no argument
		"pager.read=err@p2",        // p out of range
		"pager.read=err@zzz",       // unknown modifier
		"pager.read=err@every0",    // every needs n >= 1
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestSiteRoundTrip(t *testing.T) {
	for _, s := range Sites() {
		got, err := ParseSite(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip of %v: %v, %v", s, got, err)
		}
	}
	if _, err := ParseSite("nope"); err == nil {
		t.Fatal("ParseSite accepted garbage")
	}
}

// BenchmarkCheckDisabled pins the disabled-path cost: one atomic load.
func BenchmarkCheckDisabled(b *testing.B) {
	Disable()
	for i := 0; i < b.N; i++ {
		if err := Check(PagerRead); err != nil {
			b.Fatal(err)
		}
	}
}
