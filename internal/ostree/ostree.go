// Package ostree implements an order-statistics treap keyed by
// (weight, id), ordered by descending weight. It answers, in O(log n),
// the question the delay policy asks on every query: "what is the
// popularity rank of this tuple right now?"
//
// Rank 1 is the item with the greatest weight; ties are broken by
// ascending id so ranks are total and deterministic.
//
// Writes come in two flavours: Upsert repairs the treap in place, while
// UpsertDeferred records the new weight in O(1) and leaves the repair to
// the next rank-structure read (Rank, KthID, MaxWeight, Ascend), which
// applies all queued repairs in one pass. Point reads (Weight, Contains,
// Len) never touch the treap. Both flavours produce identical results;
// deferral only pays off for write bursts between reads — the shape the
// batched observe path produces — where it replaces a delete+reinsert
// per write with one amortized repair pass.
package ostree

import (
	"math/rand"
	"slices"
)

type node struct {
	weight float64
	id     uint64
	prio   uint32
	size   int
	left   *node
	right  *node
}

func size(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) update() {
	n.size = 1 + size(n.left) + size(n.right)
}

// before reports whether (w1,id1) sorts before (w2,id2): higher weight
// first, then lower id.
func before(w1 float64, id1 uint64, w2 float64, id2 uint64) bool {
	if w1 != w2 {
		return w1 > w2
	}
	return id1 < id2
}

// Tree is an order-statistics treap. The zero value is not usable; call
// New. Tree is not safe for concurrent use (reads repair deferred
// writes, so even read-read sharing needs external locking).
type Tree struct {
	root    *node
	weights map[uint64]float64
	// pending holds ids whose authoritative weight (weights) has not yet
	// been applied to the treap, mapped to the weight their resident node
	// still carries (inTree false when no node exists yet). flush drains
	// it before any rank-structure read.
	pending map[uint64]pendingNode
	scratch []uint64 // reused by flush for the sorted drain order
	rng     *rand.Rand
}

type pendingNode struct {
	weight float64
	inTree bool
}

// New returns an empty tree. seed fixes the treap priorities so structure
// (and therefore performance) is reproducible.
func New(seed int64) *Tree {
	return &Tree{
		weights: make(map[uint64]float64),
		pending: make(map[uint64]pendingNode),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Len returns the number of ids in the tree.
func (t *Tree) Len() int { return len(t.weights) }

// Contains reports whether id is present.
func (t *Tree) Contains(id uint64) bool {
	_, ok := t.weights[id]
	return ok
}

// Weight returns the stored weight for id and whether it is present.
func (t *Tree) Weight(id uint64) (float64, bool) {
	w, ok := t.weights[id]
	return w, ok
}

// split partitions n into nodes sorting before (w,id) and the rest.
func split(n *node, w float64, id uint64) (l, r *node) {
	if n == nil {
		return nil, nil
	}
	if before(n.weight, n.id, w, id) {
		n.right, r = split(n.right, w, id)
		n.update()
		return n, r
	}
	l, n.left = split(n.left, w, id)
	n.update()
	return l, n
}

func merge(l, r *node) *node {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = merge(l.right, r)
		l.update()
		return l
	default:
		r.left = merge(l, r.left)
		r.update()
		return r
	}
}

// Upsert sets id's weight, inserting it if absent, and moves its node in
// place — unless a repair for id is already queued, in which case the
// queued repair simply picks up the new weight.
func (t *Tree) Upsert(id uint64, weight float64) {
	old, ok := t.weights[id]
	if ok && old == weight {
		return
	}
	t.weights[id] = weight
	if _, deferred := t.pending[id]; deferred {
		return
	}
	t.apply(id, pendingNode{weight: old, inTree: ok})
}

// UpsertDeferred is Upsert with the treap repair queued for the next
// structural read instead of applied in place — O(1) per call. Bulk
// observe paths use it so a k-write burst costs k map updates plus one
// amortized repair pass instead of k treap delete+reinserts.
func (t *Tree) UpsertDeferred(id uint64, weight float64) {
	old, ok := t.weights[id]
	if ok && old == weight {
		return
	}
	if _, deferred := t.pending[id]; !deferred {
		t.pending[id] = pendingNode{weight: old, inTree: ok}
	}
	t.weights[id] = weight
}

// Delete removes id if present and reports whether it was found.
func (t *Tree) Delete(id uint64) bool {
	w, ok := t.weights[id]
	if !ok {
		return false
	}
	delete(t.weights, id)
	if p, deferred := t.pending[id]; deferred {
		delete(t.pending, id)
		if p.inTree {
			t.root = remove(t.root, p.weight, id)
		}
		return true
	}
	t.root = remove(t.root, w, id)
	return true
}

// flush applies deferred Upserts to the treap. Ids are drained in sorted
// order so the priorities drawn from the seeded rng — and therefore the
// treap structure — stay reproducible across runs.
func (t *Tree) flush() {
	switch len(t.pending) {
	case 0:
		return
	case 1:
		// The point-query cadence: one deferred write per read. Apply it
		// without the sort-and-drain machinery.
		for id, p := range t.pending {
			delete(t.pending, id)
			t.apply(id, p)
		}
		return
	}
	ids := t.scratch[:0]
	for id := range t.pending {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		t.apply(id, t.pending[id])
	}
	clear(t.pending)
	t.scratch = ids
}

func (t *Tree) apply(id uint64, p pendingNode) {
	if p.inTree {
		t.root = remove(t.root, p.weight, id)
	}
	w := t.weights[id]
	n := &node{weight: w, id: id, prio: t.rng.Uint32(), size: 1}
	l, r := split(t.root, w, id)
	t.root = merge(merge(l, n), r)
}

func remove(n *node, w float64, id uint64) *node {
	if n == nil {
		return nil
	}
	if n.weight == w && n.id == id {
		return merge(n.left, n.right)
	}
	if before(w, id, n.weight, n.id) {
		n.left = remove(n.left, w, id)
	} else {
		n.right = remove(n.right, w, id)
	}
	n.update()
	return n
}

// Rank returns the 1-based rank of id (rank 1 = greatest weight) and
// whether id is present. Absent ids report rank Len()+1: they sort after
// everything tracked, which is exactly how the delay policy treats a
// never-accessed tuple.
func (t *Tree) Rank(id uint64) (int, bool) {
	w, ok := t.weights[id]
	if !ok {
		return t.Len() + 1, false
	}
	t.flush()
	rank := 1
	n := t.root
	for n != nil {
		if n.weight == w && n.id == id {
			return rank + size(n.left), true
		}
		if before(w, id, n.weight, n.id) {
			n = n.left
		} else {
			rank += size(n.left) + 1
			n = n.right
		}
	}
	// Unreachable if weights map and tree are consistent.
	return t.Len() + 1, false
}

// KthID returns the id at rank k (1-based) and whether k is in range.
func (t *Tree) KthID(k int) (uint64, bool) {
	if k < 1 || k > t.Len() {
		return 0, false
	}
	t.flush()
	n := t.root
	for n != nil {
		ls := size(n.left)
		switch {
		case k == ls+1:
			return n.id, true
		case k <= ls:
			n = n.left
		default:
			k -= ls + 1
			n = n.right
		}
	}
	return 0, false
}

// Ascend calls fn for each id in rank order (rank 1 first) until fn
// returns false.
func (t *Tree) Ascend(fn func(rank int, id uint64, weight float64) bool) {
	t.flush()
	rank := 0
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		if !walk(n.left) {
			return false
		}
		rank++
		if !fn(rank, n.id, n.weight) {
			return false
		}
		return walk(n.right)
	}
	walk(t.root)
}

// ScaleAll multiplies every weight by f (> 0), preserving order. It is
// used when the decayed-counter increment is renormalized to avoid
// overflow. O(n).
func (t *Tree) ScaleAll(f float64) {
	if f <= 0 {
		panic("ostree: non-positive scale")
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		n.weight *= f
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	for id, w := range t.weights {
		t.weights[id] = w * f
	}
	// Deferred nodes scale in both views: the authoritative map above and
	// the snapshot of the weight their resident node now carries.
	for id, p := range t.pending {
		if p.inTree {
			p.weight *= f
			t.pending[id] = p
		}
	}
}

// MaxWeight returns the greatest weight in the tree (0, false if empty).
func (t *Tree) MaxWeight() (float64, bool) {
	t.flush()
	if t.root == nil {
		return 0, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.weight, true
}
