package ostree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New(1)
	if tr.Len() != 0 {
		t.Fatal("empty tree has nonzero length")
	}
	if r, ok := tr.Rank(42); ok || r != 1 {
		t.Fatalf("Rank on empty = %d, %v", r, ok)
	}
	if _, ok := tr.KthID(1); ok {
		t.Fatal("KthID on empty returned ok")
	}
	if _, ok := tr.MaxWeight(); ok {
		t.Fatal("MaxWeight on empty returned ok")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty returned true")
	}
}

func TestUpsertAndRank(t *testing.T) {
	tr := New(1)
	tr.Upsert(10, 5.0)
	tr.Upsert(20, 9.0)
	tr.Upsert(30, 1.0)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	check := func(id uint64, want int) {
		t.Helper()
		r, ok := tr.Rank(id)
		if !ok || r != want {
			t.Fatalf("Rank(%d) = %d, %v; want %d", id, r, ok, want)
		}
	}
	check(20, 1)
	check(10, 2)
	check(30, 3)

	// Update weight; rank shifts.
	tr.Upsert(30, 100.0)
	check(30, 1)
	check(20, 2)
	check(10, 3)
	if tr.Len() != 3 {
		t.Fatalf("Len after update = %d", tr.Len())
	}
}

func TestUpsertSameWeightNoop(t *testing.T) {
	tr := New(1)
	tr.Upsert(1, 2.5)
	tr.Upsert(1, 2.5)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestAbsentRankIsLenPlusOne(t *testing.T) {
	tr := New(1)
	tr.Upsert(1, 1)
	tr.Upsert(2, 2)
	r, ok := tr.Rank(999)
	if ok || r != 3 {
		t.Fatalf("absent rank = %d, %v; want 3, false", r, ok)
	}
}

func TestTieBreakByID(t *testing.T) {
	tr := New(1)
	tr.Upsert(7, 5.0)
	tr.Upsert(3, 5.0)
	tr.Upsert(5, 5.0)
	r3, _ := tr.Rank(3)
	r5, _ := tr.Rank(5)
	r7, _ := tr.Rank(7)
	if r3 != 1 || r5 != 2 || r7 != 3 {
		t.Fatalf("tie ranks = %d, %d, %d", r3, r5, r7)
	}
}

func TestDelete(t *testing.T) {
	tr := New(1)
	tr.Upsert(1, 10)
	tr.Upsert(2, 20)
	tr.Upsert(3, 30)
	if !tr.Delete(2) {
		t.Fatal("Delete(2) = false")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Contains(2) {
		t.Fatal("deleted id still present")
	}
	r1, _ := tr.Rank(1)
	r3, _ := tr.Rank(3)
	if r3 != 1 || r1 != 2 {
		t.Fatalf("ranks after delete = %d, %d", r1, r3)
	}
	if tr.Delete(2) {
		t.Fatal("double delete returned true")
	}
}

func TestKthID(t *testing.T) {
	tr := New(1)
	for i := uint64(1); i <= 10; i++ {
		tr.Upsert(i, float64(i))
	}
	// Rank 1 = id 10 (heaviest).
	for k := 1; k <= 10; k++ {
		id, ok := tr.KthID(k)
		if !ok || id != uint64(11-k) {
			t.Fatalf("KthID(%d) = %d, %v", k, id, ok)
		}
	}
	if _, ok := tr.KthID(0); ok {
		t.Fatal("KthID(0) ok")
	}
	if _, ok := tr.KthID(11); ok {
		t.Fatal("KthID(11) ok")
	}
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	tr := New(1)
	tr.Upsert(1, 3)
	tr.Upsert(2, 1)
	tr.Upsert(3, 2)
	var ids []uint64
	var ranks []int
	tr.Ascend(func(rank int, id uint64, w float64) bool {
		ranks = append(ranks, rank)
		ids = append(ids, id)
		return true
	})
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 2 {
		t.Fatalf("Ascend order = %v", ids)
	}
	for i, r := range ranks {
		if r != i+1 {
			t.Fatalf("ranks = %v", ranks)
		}
	}
	var n int
	tr.Ascend(func(rank int, id uint64, w float64) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestScaleAllPreservesOrder(t *testing.T) {
	tr := New(1)
	for i := uint64(1); i <= 100; i++ {
		tr.Upsert(i, float64(i*i))
	}
	before := make([]uint64, 0, 100)
	tr.Ascend(func(_ int, id uint64, _ float64) bool {
		before = append(before, id)
		return true
	})
	tr.ScaleAll(1e-50)
	after := make([]uint64, 0, 100)
	tr.Ascend(func(_ int, id uint64, _ float64) bool {
		after = append(after, id)
		return true
	})
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("order changed at %d", i)
		}
	}
	w, ok := tr.Weight(10)
	if !ok || w != 100*1e-50 {
		t.Fatalf("scaled weight = %v", w)
	}
}

func TestScaleAllPanicsOnNonPositive(t *testing.T) {
	tr := New(1)
	tr.Upsert(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tr.ScaleAll(0)
}

func TestMaxWeight(t *testing.T) {
	tr := New(1)
	tr.Upsert(1, 5)
	tr.Upsert(2, 50)
	tr.Upsert(3, 0.5)
	w, ok := tr.MaxWeight()
	if !ok || w != 50 {
		t.Fatalf("MaxWeight = %v, %v", w, ok)
	}
}

// TestAgainstReferenceModel drives the treap and a naive sorted-slice model
// with the same random operations and compares every rank.
func TestAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New(2)
	model := map[uint64]float64{}

	modelRank := func(id uint64) int {
		w := model[id]
		rank := 1
		for oid, ow := range model {
			if ow > w || (ow == w && oid < id) {
				rank++
			}
		}
		return rank
	}

	for step := 0; step < 5000; step++ {
		id := uint64(rng.Intn(200))
		switch rng.Intn(3) {
		case 0, 1: // upsert
			w := float64(rng.Intn(50))
			tr.Upsert(id, w)
			model[id] = w
		case 2: // delete
			got := tr.Delete(id)
			_, want := model[id]
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, id, got, want)
			}
			delete(model, id)
		}
		if tr.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model = %d", step, tr.Len(), len(model))
		}
	}
	for id := range model {
		got, ok := tr.Rank(id)
		if !ok {
			t.Fatalf("id %d missing", id)
		}
		if want := modelRank(id); got != want {
			t.Fatalf("Rank(%d) = %d, want %d", id, got, want)
		}
	}
}

// TestRankKthInverse checks Rank(KthID(k)) == k as a property.
func TestRankKthInverse(t *testing.T) {
	f := func(weights []float64) bool {
		tr := New(3)
		for i, w := range weights {
			tr.Upsert(uint64(i), w)
		}
		for k := 1; k <= tr.Len(); k++ {
			id, ok := tr.KthID(k)
			if !ok {
				return false
			}
			r, ok := tr.Rank(id)
			if !ok || r != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAscendMatchesSort(t *testing.T) {
	tr := New(4)
	type item struct {
		id uint64
		w  float64
	}
	var items []item
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		it := item{id: uint64(i), w: float64(rng.Intn(100))}
		items = append(items, it)
		tr.Upsert(it.id, it.w)
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].w != items[b].w {
			return items[a].w > items[b].w
		}
		return items[a].id < items[b].id
	})
	i := 0
	tr.Ascend(func(rank int, id uint64, w float64) bool {
		if items[i].id != id || items[i].w != w {
			t.Fatalf("position %d: got (%d,%v), want (%d,%v)", i, id, w, items[i].id, items[i].w)
		}
		i++
		return true
	})
	if i != len(items) {
		t.Fatalf("visited %d of %d", i, len(items))
	}
}
