package delay

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/counters"
)

// TestPopularityPropertyCapRespected: no configuration may ever exceed
// the cap for any tuple.
func TestPopularityPropertyCapRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		n := 10 + rng.Intn(5000)
		alpha := rng.Float64() * 2.5
		beta := rng.Float64() * 4
		cap := time.Duration(1+rng.Intn(10_000)) * time.Millisecond
		tr, err := counters.NewDecayed(1)
		if err != nil {
			return false
		}
		local := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			tr.Observe(uint64(local.Intn(n)))
		}
		p, err := NewPopularity(PopularityConfig{N: n, Alpha: alpha, Beta: beta, Cap: cap}, tr)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			if p.Delay(uint64(local.Intn(2*n))) > cap {
				return false
			}
		}
		return p.ExtractionDelay() <= time.Duration(n)*cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPopularityPropertyMoreAccessesNeverRaiseOwnDelay: observing a tuple
// can only lower (or keep) that tuple's delay relative to the others.
func TestPopularityPropertyMoreAccessesNeverRaiseOwnRank(t *testing.T) {
	f := func(accessPattern []uint8) bool {
		tr, err := counters.NewDecayed(1)
		if err != nil {
			return false
		}
		for _, a := range accessPattern {
			tr.Observe(uint64(a % 32))
		}
		target := uint64(5)
		before := tr.Rank(target)
		tr.Observe(target)
		after := tr.Rank(target)
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestModelPropertyDelayMonotoneInRank: Eq 1 must be non-decreasing in
// rank for every parameterization.
func TestModelPropertyDelayMonotoneInRank(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		m := Model{
			N:     10 + rng.Intn(100_000),
			Alpha: rng.Float64() * 2.5,
			Beta:  rng.Float64() * 4,
			Fmax:  1 + rng.Float64()*1e6,
		}
		if rng.Intn(2) == 0 {
			m.Cap = time.Duration(1+rng.Intn(10_000)) * time.Millisecond
		}
		prev := -1.0
		for _, rank := range []int{1, 2, 10, 100, m.N / 2, m.N} {
			if rank < 1 || rank > m.N {
				continue
			}
			d := m.DelaySecondsAtRank(rank)
			if d < prev {
				t.Fatalf("trial %d: delay fell from %v to %v at rank %d (%+v)", trial, prev, d, rank, m)
			}
			prev = d
		}
	}
}

// TestModelPropertyTotalsConsistent: the capped total never exceeds the
// uncapped total, and both are positive.
func TestModelPropertyTotalsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		capped := Model{
			N:     100 + rng.Intn(20_000),
			Alpha: rng.Float64() * 2,
			Beta:  rng.Float64() * 3,
			Fmax:  1 + rng.Float64()*1e5,
			Cap:   time.Duration(1+rng.Intn(10_000)) * time.Millisecond,
		}
		uncapped := capped
		uncapped.Cap = 0
		tc, tu := capped.TotalExtractionSeconds(), uncapped.TotalExtractionSeconds()
		if tc <= 0 || tu <= 0 {
			t.Fatalf("non-positive totals: %v, %v", tc, tu)
		}
		if tc > tu*(1+1e-9) {
			t.Fatalf("capped total %v exceeds uncapped %v (%+v)", tc, tu, capped)
		}
	}
}

// TestUpdateRatePropertyCapAndMonotone mirrors the popularity properties
// for the §3 policy.
func TestUpdateRatePropertyCapAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		tr, _ := counters.NewDecayed(1)
		cap := time.Duration(1+rng.Intn(5000)) * time.Millisecond
		u, err := NewUpdateRate(UpdateRateConfig{
			N:     10 + rng.Intn(10_000),
			Alpha: rng.Float64() * 2.5,
			C:     0.1 + rng.Float64()*10,
			Cap:   cap,
			Rmax:  0.1 + rng.Float64()*100,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		prev := time.Duration(-1)
		for _, rank := range []int{1, 5, 50, u.Config().N} {
			if rank > u.Config().N {
				continue
			}
			d := u.DelayForRank(rank)
			if d > cap {
				t.Fatalf("trial %d: rank %d delay %v above cap", trial, rank, d)
			}
			if d < prev {
				t.Fatalf("trial %d: delay fell at rank %d", trial, rank)
			}
			prev = d
		}
	}
}
