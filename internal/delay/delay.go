// Package delay implements the paper's delay-assignment policies and the
// gate that meters tuple retrievals.
//
// Two policies are provided:
//
//   - Popularity (§2): delay inversely related to access popularity,
//     d(i) = (1/N) · i^(α+β) / fmax  (Eq 1), capped at dmax (§2.2).
//   - UpdateRate (§3): delay inversely related to update rate,
//     d(i) = (c/N) · i^α / rmax  (Eq 9), also capped.
//
// Both learn their rank input online from counters.Decayed trackers and
// treat never-seen ids as maximally unpopular (the paper's start-up rule:
// "We assume all items are equally unpopular with frequencies of zero",
// relying on the cap to keep early queries servable).
package delay

import (
	"errors"
	"math"
	"time"
)

// Policy assigns a delay to the retrieval of a single tuple id.
type Policy interface {
	// Delay returns the pause to impose before yielding the tuple.
	Delay(id uint64) time.Duration
}

// BatchPolicy is implemented by policies that can price a whole result
// set in a bounded number of tracker lock acquisitions (and possibly a
// price cache) instead of two lock round-trips per tuple. DelayBatch
// returns the same saturating sum of per-tuple delays the gate would
// compute by calling Delay per id.
type BatchPolicy interface {
	Policy
	// DelayBatch returns the total delay for retrieving ids together.
	DelayBatch(ids []uint64) time.Duration
}

// satAdd adds a per-tuple delay into a running total, saturating at the
// maximum representable duration (the gate's aggregation rule).
func satAdd(total, d time.Duration) time.Duration {
	if total > maxDuration-d {
		return maxDuration
	}
	return total + d
}

// maxDuration saturates conversions from analytic float seconds; adversary
// totals with uncapped policies can exceed what int64 nanoseconds hold.
const maxDuration = time.Duration(math.MaxInt64)

// SecondsToDuration converts float seconds to a time.Duration, saturating
// at the maximum representable duration and clamping negatives to zero.
func SecondsToDuration(s float64) time.Duration {
	if s <= 0 || math.IsNaN(s) {
		return 0
	}
	ns := s * float64(time.Second)
	if ns >= float64(maxDuration) {
		return maxDuration
	}
	return time.Duration(ns)
}

// Seconds converts a duration to float seconds.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// TuneBeta chooses the penalty exponent β so that the cap rank M — the
// rank past which every tuple receives the maximum delay (Eq 5) — lands at
// capFraction·N items *below* the cap; i.e. a fraction (1 − capFraction)
// of the dataset is capped. The paper leaves β as the provider's knob
// ("chosen to balance the desired penalty imposed on an extraction attack
// with the undesirable delays to legitimate users"); this helper inverts
// Eq 5:
//
//	dmax = (1/N) · M^(α+β) / fmax  ⇒  α+β = ln(dmax·N·fmax) / ln(M)
//
// fmax is in the same units the policy will use (effective request count
// of the hottest item). Returns an error if the inputs admit no β ≥ 0.
func TuneBeta(n int, alpha, fmax float64, cap time.Duration, capFraction float64) (float64, error) {
	if n < 2 || fmax <= 0 || cap <= 0 || capFraction <= 0 || capFraction >= 1 {
		return 0, errors.New("delay: TuneBeta needs n ≥ 2, fmax > 0, cap > 0, capFraction in (0,1)")
	}
	m := capFraction * float64(n)
	if m < 2 {
		m = 2
	}
	target := cap.Seconds() * float64(n) * fmax
	if target <= 1 {
		return 0, errors.New("delay: cap too small to tune against")
	}
	exp := math.Log(target) / math.Log(m)
	beta := exp - alpha
	if beta < 0 {
		return 0, errors.New("delay: inputs require negative beta")
	}
	return beta, nil
}
