package delay

import (
	"errors"
	"math"
	"time"

	"repro/internal/stats"
	"repro/internal/zipf"
)

// Model is the closed-form Zipf analysis of §2.1–§2.2. It computes, for an
// idealized workload with Zipf parameter Alpha over N tuples, the per-rank
// delay (Eq 1), the adversary's total extraction delay (Eq 2 uncapped,
// Eq 6 capped), the median legitimate delay, and their ratio (Eq 4, 7).
// The experiment harness uses it to predict shapes; tests use it to verify
// that the learned policies converge to the analysis.
type Model struct {
	N     int
	Alpha float64
	Beta  float64
	// Fmax is the effective request count (or rate) of the most popular
	// item; delays scale as 1/Fmax.
	Fmax float64
	// Cap is dmax; zero means the uncapped simple scheme of §2.1.
	Cap time.Duration
}

// Validate reports whether the model's parameters are usable.
func (m Model) Validate() error {
	switch {
	case m.N < 1:
		return errors.New("delay: model N < 1")
	case m.Alpha < 0 || math.IsNaN(m.Alpha) || math.IsInf(m.Alpha, 0):
		return errors.New("delay: model invalid alpha")
	case m.Beta < 0 || math.IsNaN(m.Beta) || math.IsInf(m.Beta, 0):
		return errors.New("delay: model invalid beta")
	case m.Fmax <= 0 || math.IsNaN(m.Fmax) || math.IsInf(m.Fmax, 0):
		return errors.New("delay: model fmax must be positive")
	case m.Cap < 0:
		return errors.New("delay: model negative cap")
	}
	return nil
}

// DelaySecondsAtRank is Eq 1 with the §2.2 cap applied:
// d(i) = min(dmax, (1/N)·i^(α+β)/fmax).
func (m Model) DelaySecondsAtRank(i int) float64 {
	if i < 1 {
		i = 1
	}
	sec := math.Pow(float64(i), m.Alpha+m.Beta) / (float64(m.N) * m.Fmax)
	if m.Cap > 0 && sec > m.Cap.Seconds() {
		return m.Cap.Seconds()
	}
	return sec
}

// CapRank is Eq 5: the rank M at which the computed delay first reaches
// dmax. Returns N when uncapped or when no rank caps.
func (m Model) CapRank() int {
	if m.Cap <= 0 {
		return m.N
	}
	exp := m.Alpha + m.Beta
	if exp <= 0 {
		return m.N
	}
	r := math.Pow(m.Cap.Seconds()*float64(m.N)*m.Fmax, 1/exp)
	switch {
	case r < 1:
		return 1
	case r >= float64(m.N):
		return m.N
	default:
		return int(math.Ceil(r))
	}
}

// TotalExtractionSeconds is the adversary's cumulative delay for a full
// extraction: Eq 2 uncapped, Eq 6 capped:
//
//	dtotal = (1/(N·fmax)) · (Σ_{i=1..M} i^(α+β)) + (N−M)·dmax.
func (m Model) TotalExtractionSeconds() float64 {
	capRank := m.CapRank()
	head := stats.PowerSum(capRank, m.Alpha+m.Beta) / (float64(m.N) * m.Fmax)
	if m.Cap <= 0 || capRank >= m.N {
		return head
	}
	// Ranks M..N all pay dmax; the head sum above already slightly
	// overcounts rank M (its uncapped value can exceed dmax), so clamp.
	headCapped := head
	if over := math.Pow(float64(capRank), m.Alpha+m.Beta)/(float64(m.N)*m.Fmax) - m.Cap.Seconds(); over > 0 {
		headCapped -= over
	}
	return headCapped + float64(m.N-capRank)*m.Cap.Seconds()
}

// TotalExtraction returns TotalExtractionSeconds as a saturating Duration.
func (m Model) TotalExtraction() time.Duration {
	return SecondsToDuration(m.TotalExtractionSeconds())
}

// MedianRank is the rank of the tuple a median legitimate request touches
// under the Zipf(α) workload (exact, not asymptotic).
func (m Model) MedianRank() (int, error) {
	d, err := zipf.New(m.N, m.Alpha)
	if err != nil {
		return 0, err
	}
	return d.MedianRank(), nil
}

// MedianDelaySeconds is dmed: the delay of the median-rank tuple.
func (m Model) MedianDelaySeconds() (float64, error) {
	r, err := m.MedianRank()
	if err != nil {
		return 0, err
	}
	return m.DelaySecondsAtRank(r), nil
}

// Ratio is Eq 4 / Eq 7: dtotal/dmed, the factor by which an adversary's
// total delay exceeds a legitimate user's typical delay.
func (m Model) Ratio() (float64, error) {
	med, err := m.MedianDelaySeconds()
	if err != nil {
		return 0, err
	}
	if med <= 0 {
		return math.Inf(1), nil
	}
	return m.TotalExtractionSeconds() / med, nil
}

// AsymptoticRatio returns the Θ-class dominant term of Eq 4 for the
// uncapped scheme, by α regime:
//
//	α < 1: 2^((α+β)/(1−α)) · N
//	α = 1: N^((β+3)/2)
//	α > 1: N · (N / log N)^(α+β)
func (m Model) AsymptoticRatio() float64 {
	n := float64(m.N)
	ab := m.Alpha + m.Beta
	switch {
	case math.Abs(m.Alpha-1) < 1e-9:
		return math.Pow(n, (m.Beta+3)/2)
	case m.Alpha < 1:
		return math.Pow(2, ab/(1-m.Alpha)) * n
	default:
		return n * math.Pow(n/math.Log(n), ab)
	}
}
