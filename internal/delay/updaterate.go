package delay

import (
	"errors"
	"math"
	"time"

	"repro/internal/counters"
)

// UpdateRateConfig parameterizes the §3 policy that keys delay to data
// change rather than access popularity. It applies when the query load is
// uniform but updates are skewed.
type UpdateRateConfig struct {
	// N is the dataset size in tuples.
	N int
	// Alpha is the (assumed or estimated) Zipf parameter of the update
	// rate distribution.
	Alpha float64
	// C is the paper's constant c in Eq 9; larger values stretch all
	// delays and raise the guaranteed stale fraction (Eq 12) at the cost
	// of longer legitimate-user waits.
	C float64
	// Cap bounds the delay for any single retrieval. Zero means uncapped.
	Cap time.Duration
	// Rmax fixes the update rate of the most frequently updated item, in
	// updates per second. When zero it is learned from the tracker as the
	// decayed update count of the rank-1 item divided by the observation
	// window the caller maintains via SetWindow.
	Rmax float64
}

func (c UpdateRateConfig) validate() error {
	switch {
	case c.N < 1:
		return errors.New("delay: N < 1")
	case c.Alpha < 0 || math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0):
		return errors.New("delay: invalid alpha")
	case c.C <= 0 || math.IsNaN(c.C) || math.IsInf(c.C, 0):
		return errors.New("delay: c must be positive and finite")
	case c.Cap < 0:
		return errors.New("delay: negative cap")
	case c.Rmax < 0 || math.IsNaN(c.Rmax):
		return errors.New("delay: invalid rmax")
	}
	return nil
}

// UpdateRate is the §3 policy: d(i) = (c/N) · i^α / rmax (Eq 9), where i
// is the tuple's rank by update frequency (rank 1 = most updated) and
// rmax the update rate of the most updated item. Items that stay fresh
// longer take longer to retrieve. Never-updated tuples rank N.
type UpdateRate struct {
	cfg     UpdateRateConfig
	tracker *counters.Decayed
	window  float64 // seconds of update observation, for learned rmax
}

// NewUpdateRate returns an update-rate policy. tracker must be fed one
// observation per tuple update (RecordUpdate does this).
func NewUpdateRate(cfg UpdateRateConfig, tracker *counters.Decayed) (*UpdateRate, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if tracker == nil {
		return nil, errors.New("delay: nil tracker")
	}
	return &UpdateRate{cfg: cfg, tracker: tracker}, nil
}

// Config returns the policy's configuration.
func (u *UpdateRate) Config() UpdateRateConfig { return u.cfg }

// Tracker returns the underlying update tracker.
func (u *UpdateRate) Tracker() *counters.Decayed { return u.tracker }

// RecordUpdate notes that tuple id changed value.
func (u *UpdateRate) RecordUpdate(id uint64) { u.tracker.ObserveNoDecay(id) }

// SetWindow tells the policy how many seconds of updates the tracker has
// seen, so a learned rmax can be expressed in updates per second.
func (u *UpdateRate) SetWindow(seconds float64) { u.window = seconds }

func (u *UpdateRate) rmax() float64 {
	if u.cfg.Rmax > 0 {
		return u.cfg.Rmax
	}
	if u.window <= 0 {
		return 0
	}
	return u.tracker.MaxCount() / u.window
}

// Delay implements Policy.
func (u *UpdateRate) Delay(id uint64) time.Duration {
	rank := u.cfg.N
	if u.tracker.Count(id) > 0 {
		if r := u.tracker.Rank(id); r < rank {
			rank = r
		}
	}
	return u.delayAt(rank)
}

// DelayForRank returns the delay for the tuple at the given update-rate
// rank.
func (u *UpdateRate) DelayForRank(rank int) time.Duration { return u.delayAt(rank) }

func (u *UpdateRate) delayAt(rank int) time.Duration {
	if rank < 1 {
		rank = 1
	}
	rmax := u.rmax()
	if rmax <= 0 {
		if u.cfg.Cap > 0 {
			return u.cfg.Cap
		}
		return maxDuration
	}
	sec := u.cfg.C * math.Pow(float64(rank), u.cfg.Alpha) / (float64(u.cfg.N) * rmax)
	d := SecondsToDuration(sec)
	if u.cfg.Cap > 0 && d > u.cfg.Cap {
		return u.cfg.Cap
	}
	return d
}

// ExtractionDelay returns the total delay charged to a full sequential
// extraction of the N-tuple dataset under the current state.
func (u *UpdateRate) ExtractionDelay() time.Duration {
	var total float64
	for i := 1; i <= u.cfg.N; i++ {
		total += u.delayAt(i).Seconds()
	}
	return SecondsToDuration(total)
}

// PredictedStaleFraction is Eq 12: the fraction of the dataset guaranteed
// stale by the time a full extraction completes,
//
//	Smax ≈ (cmax / (1+α))^(1/α),
//
// clamped to [0, 1]. cmax is the delay constant actually in force (the
// policy's C) and alpha the update-skew parameter.
func PredictedStaleFraction(cmax, alpha float64) float64 {
	if alpha <= 0 || cmax <= 0 {
		return 0
	}
	s := math.Pow(cmax/(1+alpha), 1/alpha)
	if s > 1 {
		return 1
	}
	return s
}
