package delay

import (
	"errors"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/counters"
)

// UpdateRateConfig parameterizes the §3 policy that keys delay to data
// change rather than access popularity. It applies when the query load is
// uniform but updates are skewed.
type UpdateRateConfig struct {
	// N is the dataset size in tuples.
	N int
	// Alpha is the (assumed or estimated) Zipf parameter of the update
	// rate distribution.
	Alpha float64
	// C is the paper's constant c in Eq 9; larger values stretch all
	// delays and raise the guaranteed stale fraction (Eq 12) at the cost
	// of longer legitimate-user waits.
	C float64
	// Cap bounds the delay for any single retrieval. Zero means uncapped.
	Cap time.Duration
	// Rmax fixes the update rate of the most frequently updated item, in
	// updates per second. When zero it is learned from the tracker as the
	// decayed update count of the rank-1 item divided by the observation
	// window the caller maintains via SetWindow.
	Rmax float64
}

func (c UpdateRateConfig) validate() error {
	switch {
	case c.N < 1:
		return errors.New("delay: N < 1")
	case c.Alpha < 0 || math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0):
		return errors.New("delay: invalid alpha")
	case c.C <= 0 || math.IsNaN(c.C) || math.IsInf(c.C, 0):
		return errors.New("delay: c must be positive and finite")
	case c.Cap < 0:
		return errors.New("delay: negative cap")
	case c.Rmax < 0 || math.IsNaN(c.Rmax):
		return errors.New("delay: invalid rmax")
	}
	return nil
}

// UpdateRate is the §3 policy: d(i) = (c/N) · i^α / rmax (Eq 9), where i
// is the tuple's rank by update frequency (rank 1 = most updated) and
// rmax the update rate of the most updated item. Items that stay fresh
// longer take longer to retrieve. Never-updated tuples rank N.
type UpdateRate struct {
	cfg     UpdateRateConfig
	tracker *counters.Decayed
	// window is the observation span in seconds (float64 bits), stored
	// atomically: SetWindow runs on the write path while concurrent
	// SELECTs read it through rmax.
	window atomic.Uint64
	// windowGen counts SetWindow calls; it folds into the price-cache
	// epoch so a window change invalidates cached prices even though the
	// tracker itself did not mutate.
	windowGen atomic.Uint64
	cache     *PriceCache // optional, set via SetPriceCache
}

// NewUpdateRate returns an update-rate policy. tracker must be fed one
// observation per tuple update (RecordUpdate does this).
func NewUpdateRate(cfg UpdateRateConfig, tracker *counters.Decayed) (*UpdateRate, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if tracker == nil {
		return nil, errors.New("delay: nil tracker")
	}
	return &UpdateRate{cfg: cfg, tracker: tracker}, nil
}

// Config returns the policy's configuration.
func (u *UpdateRate) Config() UpdateRateConfig { return u.cfg }

// Tracker returns the underlying update tracker.
func (u *UpdateRate) Tracker() *counters.Decayed { return u.tracker }

// RecordUpdate notes that tuple id changed value.
func (u *UpdateRate) RecordUpdate(id uint64) { u.tracker.ObserveNoDecay(id) }

// SetWindow tells the policy how many seconds of updates the tracker has
// seen, so a learned rmax can be expressed in updates per second.
func (u *UpdateRate) SetWindow(seconds float64) {
	u.window.Store(math.Float64bits(seconds))
	u.windowGen.Add(1)
}

// SetPriceCache attaches a quote cache consulted (and filled) by
// DelayBatch. Call before the policy is shared; nil detaches.
func (u *UpdateRate) SetPriceCache(c *PriceCache) { u.cache = c }

// PriceCache returns the attached quote cache, or nil.
func (u *UpdateRate) PriceCache() *PriceCache { return u.cache }

// epoch is the cache-invalidation generation: tracker mutations and
// window changes both advance it (the sum of two monotone counters is
// monotone).
func (u *UpdateRate) epoch() uint64 { return u.tracker.Epoch() + u.windowGen.Load() }

func (u *UpdateRate) rmax() float64 {
	if u.cfg.Rmax > 0 {
		return u.cfg.Rmax
	}
	window := math.Float64frombits(u.window.Load())
	if window <= 0 {
		return 0
	}
	return u.tracker.MaxCount() / window
}

// Delay implements Policy.
func (u *UpdateRate) Delay(id uint64) time.Duration {
	rank := u.cfg.N
	if u.tracker.Count(id) > 0 {
		if r := u.tracker.Rank(id); r < rank {
			rank = r
		}
	}
	return u.delayAt(rank)
}

// DelayForRank returns the delay for the tuple at the given update-rate
// rank.
func (u *UpdateRate) DelayForRank(rank int) time.Duration { return u.delayAt(rank) }

// DelayBatch implements BatchPolicy: one tracker lock acquisition for
// rmax and one for the ranks price the whole batch, with cached tuples
// skipping the tracker entirely.
func (u *UpdateRate) DelayBatch(ids []uint64) time.Duration {
	if u.cache == nil {
		return u.delayBatchUncached(ids)
	}
	epoch := u.epoch()
	q := batchQuotePool.Get().(*batchQuote)
	defer batchQuotePool.Put(q)
	perTuple := q.grow(len(ids))
	if miss := u.cache.LookupBatch(ids, epoch, perTuple, q.miss[:0]); len(miss) > 0 {
		q.miss = miss
		missIDs := q.fillMissIDs(ids, miss)
		rmax := u.rmax()
		ranks := u.tracker.RankBatch(missIDs)
		prices := q.prices[:0]
		for j, r := range ranks {
			d := u.delayAtRmax(u.clampRank(r), rmax)
			prices = append(prices, d)
			perTuple[miss[j]] = d
		}
		q.prices = prices
		// Unlearned rmax prices at the cap; don't pin that transient.
		if rmax > 0 {
			u.cache.StoreBatch(missIDs, prices, epoch)
		}
	}
	var total time.Duration
	for _, d := range perTuple {
		total = satAdd(total, d)
	}
	return total
}

func (u *UpdateRate) delayBatchUncached(ids []uint64) time.Duration {
	if len(ids) == 1 {
		return u.delayAtRmax(u.clampRank(u.tracker.RankOne(ids[0])), u.rmax())
	}
	rmax := u.rmax()
	ranks := u.tracker.RankBatch(ids)
	var total time.Duration
	for _, r := range ranks {
		total = satAdd(total, u.delayAtRmax(u.clampRank(r), rmax))
	}
	return total
}

// clampRank maps a RankBatch rank into the policy's domain: never-updated
// tuples (-1) and ranks past N are charged as rank N, matching Delay.
func (u *UpdateRate) clampRank(r int) int {
	if r < 0 || r > u.cfg.N {
		return u.cfg.N
	}
	return r
}

func (u *UpdateRate) delayAt(rank int) time.Duration {
	return u.delayAtRmax(rank, u.rmax())
}

func (u *UpdateRate) delayAtRmax(rank int, rmax float64) time.Duration {
	if rank < 1 {
		rank = 1
	}
	if rmax <= 0 {
		if u.cfg.Cap > 0 {
			return u.cfg.Cap
		}
		return maxDuration
	}
	sec := u.cfg.C * math.Pow(float64(rank), u.cfg.Alpha) / (float64(u.cfg.N) * rmax)
	d := SecondsToDuration(sec)
	if u.cfg.Cap > 0 && d > u.cfg.Cap {
		return u.cfg.Cap
	}
	return d
}

// ExtractionDelay returns the total delay charged to a full sequential
// extraction of the N-tuple dataset under the current state.
func (u *UpdateRate) ExtractionDelay() time.Duration {
	var total float64
	for i := 1; i <= u.cfg.N; i++ {
		total += u.delayAt(i).Seconds()
	}
	return SecondsToDuration(total)
}

// PredictedStaleFraction is Eq 12: the fraction of the dataset guaranteed
// stale by the time a full extraction completes,
//
//	Smax ≈ (cmax / (1+α))^(1/α),
//
// clamped to [0, 1]. cmax is the delay constant actually in force (the
// policy's C) and alpha the update-skew parameter.
func PredictedStaleFraction(cmax, alpha float64) float64 {
	if alpha <= 0 || cmax <= 0 {
		return 0
	}
	s := math.Pow(cmax/(1+alpha), 1/alpha)
	if s > 1 {
		return 1
	}
	return s
}
