package delay

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

// constPolicy charges a fixed delay per tuple.
type constPolicy struct{ d time.Duration }

func (p constPolicy) Delay(uint64) time.Duration { return p.d }

func TestChargeCtxRecordsObservationsOnCancel(t *testing.T) {
	clk := vclock.NewSimulated(time.Unix(0, 0))
	var seen []uint64
	g, err := NewGate(constPolicy{time.Second}, clk, func(id uint64) { seen = append(seen, id) })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := g.ChargeCtx(ctx, 1, 2, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if d != 3*time.Second {
		t.Fatalf("quoted = %v", d)
	}
	// The anti-free-probe invariant: cancellation still charges the
	// learner, so repeated cancelled probes inflate the tuples'
	// popularity just like served queries would.
	if len(seen) != 3 {
		t.Fatalf("observations on cancel = %v", seen)
	}
	// And the cancelled sleep did not advance the simulated clock.
	if clk.Slept() != 0 {
		t.Fatalf("slept = %v", clk.Slept())
	}
}

func TestChargeCtxInstrumented(t *testing.T) {
	clk := vclock.NewSimulated(time.Unix(0, 0))
	g, err := NewGate(constPolicy{time.Second}, clk, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	hist := reg.Histogram("delay_seconds", metrics.DefaultDelayBuckets())
	cancelledHist := reg.Histogram("delay_cancelled_seconds", metrics.DefaultDelayBuckets())
	g.Instrument(reg.Gauge("inflight"), hist, cancelledHist)

	if d := g.Charge(7); d != time.Second {
		t.Fatalf("charge = %v", d)
	}
	if hist.Count() != 1 {
		t.Fatalf("histogram count = %d", hist.Count())
	}
	if reg.Gauge("inflight").Value() != 0 {
		t.Fatalf("inflight = %d after charge", reg.Gauge("inflight").Value())
	}

	// A cancelled charge lands in the cancelled histogram, not the served
	// one — total imposed delay stays fully accounted while served-query
	// latency stays clean.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g.ChargeCtx(ctx, 7)
	if hist.Count() != 1 {
		t.Fatalf("cancelled charge reached served histogram: %d", hist.Count())
	}
	if cancelledHist.Count() != 1 {
		t.Fatalf("cancelled histogram count = %d", cancelledHist.Count())
	}
}

// batchObservePolicy asserts the gate prefers the batch observer.
func TestChargeCtxUsesBatchObserver(t *testing.T) {
	clk := vclock.NewSimulated(time.Unix(0, 0))
	perTuple := 0
	g, err := NewGate(constPolicy{time.Millisecond}, clk, func(uint64) { perTuple++ })
	if err != nil {
		t.Fatal(err)
	}
	var batches [][]uint64
	g.SetBatchObserver(func(ids []uint64) {
		batches = append(batches, append([]uint64(nil), ids...))
	})
	if _, err := g.ChargeCtx(context.Background(), 4, 5, 6); err != nil {
		t.Fatal(err)
	}
	if perTuple != 0 {
		t.Fatalf("per-tuple observer called %d times despite batch observer", perTuple)
	}
	if len(batches) != 1 || len(batches[0]) != 3 {
		t.Fatalf("batch observer calls = %v", batches)
	}
}

// switchPolicy counts how many times the gate resolves it per batch.
type switchPolicy struct {
	resolves int
	inner    Policy
}

func (s *switchPolicy) Delay(id uint64) time.Duration { return s.inner.Delay(id) }
func (s *switchPolicy) ResolveBatch() Policy {
	s.resolves++
	return s.inner
}

func TestQuoteResolvesBatchPolicyOnce(t *testing.T) {
	sp := &switchPolicy{inner: constPolicy{time.Millisecond}}
	g, err := NewGate(sp, vclock.NewSimulated(time.Unix(0, 0)), nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 1000)
	for i := range ids {
		ids[i] = uint64(i)
	}
	if d := g.Quote(ids...); d != time.Second {
		t.Fatalf("quote = %v", d)
	}
	if sp.resolves != 1 {
		t.Fatalf("policy resolved %d times for one batch", sp.resolves)
	}
}

func TestChargeCtxScaled(t *testing.T) {
	clk := vclock.NewSimulated(time.Unix(0, 0))
	g, err := NewGate(constPolicy{time.Second}, clk, nil)
	if err != nil {
		t.Fatal(err)
	}
	// mult 1 is exactly the unscaled path.
	if d := g.QuoteScaled(1, 1, 2); d != g.Quote(1, 2) {
		t.Fatalf("mult 1: %v != %v", d, g.Quote(1, 2))
	}
	d, err := g.ChargeCtxScaled(context.Background(), 8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 16*time.Second {
		t.Fatalf("×8 charge on 2s quote = %v", d)
	}
	if clk.Slept() != 16*time.Second {
		t.Fatalf("slept %v, want the scaled delay", clk.Slept())
	}
	// Surcharge only: a sub-unity factor never discounts.
	if d := g.QuoteScaled(0.25, 1); d != time.Second {
		t.Fatalf("mult 0.25 discounted: %v", d)
	}
}

func TestScaleDelaySaturates(t *testing.T) {
	if got := scaleDelay(maxDuration/2, 1e9); got != maxDuration {
		t.Fatalf("scaled overflow = %v, want saturation", got)
	}
	if got := scaleDelay(time.Second, 2.5); got != 2500*time.Millisecond {
		t.Fatalf("×2.5 = %v", got)
	}
	if got := scaleDelay(0, 100); got != 0 {
		t.Fatalf("zero delay scaled to %v", got)
	}
}
