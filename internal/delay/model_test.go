package delay

import (
	"math"
	"testing"
	"time"
)

func TestModelValidate(t *testing.T) {
	good := Model{N: 100, Alpha: 1, Beta: 1, Fmax: 10, Cap: time.Second}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{N: 0, Alpha: 1, Fmax: 1},
		{N: 10, Alpha: -1, Fmax: 1},
		{N: 10, Alpha: 1, Beta: -1, Fmax: 1},
		{N: 10, Alpha: 1, Fmax: 0},
		{N: 10, Alpha: 1, Fmax: 1, Cap: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, m)
		}
	}
}

func TestModelDelayAtRankEq1(t *testing.T) {
	m := Model{N: 1000, Alpha: 1, Beta: 2, Fmax: 100}
	// d(i) = i^3 / (1000·100)
	if got, want := m.DelaySecondsAtRank(1), 1e-5; math.Abs(got-want) > 1e-15 {
		t.Fatalf("d(1) = %v, want %v", got, want)
	}
	if got, want := m.DelaySecondsAtRank(10), 1e-2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("d(10) = %v, want %v", got, want)
	}
	// Rank below 1 clamps to 1.
	if m.DelaySecondsAtRank(0) != m.DelaySecondsAtRank(1) {
		t.Fatal("rank 0 not clamped")
	}
}

func TestModelCapApplied(t *testing.T) {
	m := Model{N: 1000, Alpha: 1, Beta: 2, Fmax: 100, Cap: time.Second}
	// Uncapped d(1000) = 1e9/1e5 = 1e4 s ≫ cap.
	if got := m.DelaySecondsAtRank(1000); got != 1 {
		t.Fatalf("capped delay = %v, want 1", got)
	}
	mRank := m.CapRank()
	// d(M) ≥ cap > d(M−1).
	un := func(i int) float64 {
		return math.Pow(float64(i), 3) / (1000 * 100)
	}
	if un(mRank) < 1 {
		t.Fatalf("uncapped d(M=%d) = %v below cap", mRank, un(mRank))
	}
	if mRank > 1 && un(mRank-1) >= 1 {
		t.Fatalf("d(M-1) = %v already at cap", un(mRank-1))
	}
}

func TestModelCapRankEdges(t *testing.T) {
	// Cap so small everything is capped: M = 1.
	m := Model{N: 100, Alpha: 1, Beta: 1, Fmax: 1, Cap: time.Nanosecond}
	if got := m.CapRank(); got != 1 {
		t.Fatalf("tiny cap M = %d", got)
	}
	// Cap so large nothing is capped: M = N.
	m2 := Model{N: 100, Alpha: 1, Beta: 1, Fmax: 1, Cap: 24 * 365 * time.Hour}
	if got := m2.CapRank(); got != 100 {
		t.Fatalf("huge cap M = %d", got)
	}
	// Uncapped: M = N.
	m3 := Model{N: 100, Alpha: 1, Beta: 1, Fmax: 1}
	if got := m3.CapRank(); got != 100 {
		t.Fatalf("uncapped M = %d", got)
	}
}

func TestModelTotalExtractionUncappedEq2(t *testing.T) {
	m := Model{N: 100, Alpha: 1, Beta: 1, Fmax: 10}
	// dtotal = Σ i^2 / (100·10) = (100·101·201/6)/1000
	want := float64(100*101*201) / 6 / 1000
	if got := m.TotalExtractionSeconds(); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("dtotal = %v, want %v", got, want)
	}
}

func TestModelTotalExtractionCappedEq6(t *testing.T) {
	m := Model{N: 1000, Alpha: 1, Beta: 1, Fmax: 1, Cap: 10 * time.Second}
	// Brute force.
	var want float64
	for i := 1; i <= m.N; i++ {
		d := math.Pow(float64(i), 2) / (1000 * 1)
		if d > 10 {
			d = 10
		}
		want += d
	}
	got := m.TotalExtractionSeconds()
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("capped dtotal = %v, want %v", got, want)
	}
	if d := m.TotalExtraction(); math.Abs(d.Seconds()-want)/want > 1e-6 {
		t.Fatalf("TotalExtraction duration = %v", d)
	}
}

func TestModelCappedBelowUncapped(t *testing.T) {
	capped := Model{N: 10000, Alpha: 1.5, Beta: 2, Fmax: 100, Cap: 10 * time.Second}
	uncapped := capped
	uncapped.Cap = 0
	if capped.TotalExtractionSeconds() >= uncapped.TotalExtractionSeconds() {
		t.Fatal("cap did not reduce adversary total")
	}
}

func TestModelMedianAndRatio(t *testing.T) {
	m := Model{N: 100000, Alpha: 1.5, Beta: 2.5, Fmax: 1000, Cap: 10 * time.Second}
	rank, err := m.MedianRank()
	if err != nil {
		t.Fatal(err)
	}
	// Strong skew ⇒ tiny median rank.
	if rank > 10 {
		t.Fatalf("median rank = %d", rank)
	}
	med, err := m.MedianDelaySeconds()
	if err != nil {
		t.Fatal(err)
	}
	if med <= 0 || med > 0.001 {
		t.Fatalf("median delay = %v s, want sub-ms", med)
	}
	ratio, err := m.Ratio()
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1e6 {
		t.Fatalf("ratio = %v, want ≥ 1e6 for α=1.5", ratio)
	}
}

func TestModelRatioGrowsWithBeta(t *testing.T) {
	// "an adversary must face longer delays with higher β values"
	base := Model{N: 10000, Alpha: 1.2, Fmax: 100}
	prev := 0.0
	for _, beta := range []float64{0.5, 1, 2, 3} {
		m := base
		m.Beta = beta
		r, err := m.Ratio()
		if err != nil {
			t.Fatal(err)
		}
		if r <= prev {
			t.Fatalf("ratio did not grow with beta: %v at β=%v", r, beta)
		}
		prev = r
	}
}

func TestModelRatioGrowsWithN(t *testing.T) {
	// The core scaling claim: the adversary/median ratio grows
	// superlinearly in N for α ≥ 1.
	prev := 0.0
	for _, n := range []int{1000, 10000, 100000} {
		m := Model{N: n, Alpha: 1.5, Beta: 2, Fmax: 100}
		r, err := m.Ratio()
		if err != nil {
			t.Fatal(err)
		}
		if r <= prev*10 { // superlinear: 10x N ⇒ ≫10x ratio
			t.Fatalf("ratio at N=%d is %v, not superlinear over %v", n, r, prev)
		}
		prev = r
	}
}

func TestModelAsymptoticRatioRegimes(t *testing.T) {
	n := 10000
	lt := Model{N: n, Alpha: 0.5, Beta: 1, Fmax: 1}
	eq := Model{N: n, Alpha: 1, Beta: 1, Fmax: 1}
	gt := Model{N: n, Alpha: 1.5, Beta: 1, Fmax: 1}
	// α<1 regime is linear in N; α=1 polynomial; α>1 nearly N^(1+α+β).
	if lt.AsymptoticRatio() >= eq.AsymptoticRatio() {
		t.Fatal("α<1 class should be smallest here")
	}
	if eq.AsymptoticRatio() >= gt.AsymptoticRatio() {
		t.Fatal("α=1 class should be below α>1 class")
	}
	// α=1: N^((β+3)/2) = N^2 for β=1.
	if got, want := eq.AsymptoticRatio(), math.Pow(float64(n), 2); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("α=1 asymptotic = %v, want %v", got, want)
	}
}

func TestModelCappedKeepsAsymptoticOrdering(t *testing.T) {
	// §2.2: "This approach retains the benefits of the simple scheme; the
	// asymptotic relationships between adversary and median query remain
	// the same." Verify the capped ratio still grows strongly with N.
	var prev float64
	for _, n := range []int{1000, 10000, 100000} {
		m := Model{N: n, Alpha: 1.5, Beta: 2, Fmax: 100, Cap: 10 * time.Second}
		r, err := m.Ratio()
		if err != nil {
			t.Fatal(err)
		}
		if r <= prev {
			t.Fatalf("capped ratio not increasing at N=%d: %v vs %v", n, r, prev)
		}
		prev = r
	}
}
