package delay

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// PriceCache memoizes per-tuple delay quotes so repeat quotes for hot
// tuples skip the tracker entirely (no rank-tree walk, no tracker lock).
// It is a sharded (striped, power-of-two shard count) fixed-capacity map
// from tuple id to (delay, epoch).
//
// Invalidation is by generation, not by key: every tracker mutation
// advances the tracker's Epoch, and a cached price is served only while
//
//	currentEpoch − cachedEpoch ≤ epochLag.
//
// With epochLag 0 a price survives only until the next mutation, so
// served prices are exactly what the uncached path would compute. A
// positive lag trades rank freshness for throughput — safe in practice
// because a hot tuple's delay is pinned near zero by its low rank (a few
// observations cannot move it meaningfully), and cold tuples age out of
// the fixed-capacity shards rarely enough not to matter.
type PriceCache struct {
	shards []priceShard
	mask   uint64
	lag    uint64

	// locks counts shard-lock acquisitions; the batch paths promise at
	// most one per touched shard per batch, and the skew tests hold them
	// to it.
	locks atomic.Int64

	// groups pools the counting-sort scratch the batch paths group ids
	// with, so a steady stream of k-tuple quotes does not allocate four
	// slices per batch.
	groups sync.Pool

	// Optional instrumentation, set via Instrument before first use.
	hits       *metrics.Counter
	misses     *metrics.Counter
	stale      *metrics.Counter
	contention *metrics.Gauge
}

// shardGroups is the reusable scratch for one groupByShard call.
type shardGroups struct {
	shardOf []uint32
	bounds  []int
	order   []int
	next    []int
}

type priceShard struct {
	mu      sync.Mutex
	entries map[uint64]priceEntry
	cap     int
}

type priceEntry struct {
	delay time.Duration
	epoch uint64
}

// DefaultPriceCacheShards is the shard count used when the caller passes
// zero: enough stripes that a front door's worth of concurrent quoters
// rarely collide, small enough to stay cache-friendly.
const DefaultPriceCacheShards = 16

// NewPriceCache returns a cache holding at most capacity prices split
// over shards stripes (rounded up to a power of two; 0 means
// DefaultPriceCacheShards). epochLag bounds how many tracker mutations a
// served price may be stale by; 0 means exact.
func NewPriceCache(capacity, shards int, epochLag uint64) (*PriceCache, error) {
	if capacity < 1 {
		return nil, errors.New("delay: price cache capacity < 1")
	}
	if shards <= 0 {
		shards = DefaultPriceCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if n > capacity {
		// Never more stripes than entries; keeps per-shard capacity ≥ 1.
		for n > 1 && n > capacity {
			n >>= 1
		}
	}
	c := &PriceCache{shards: make([]priceShard, n), mask: uint64(n - 1), lag: epochLag}
	per := (capacity + n - 1) / n
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].entries = make(map[uint64]priceEntry, per)
	}
	return c, nil
}

// Instrument attaches hit/miss/stale counters and a shard-contention
// gauge (incremented whenever a lookup or store finds its shard lock
// held). Any may be nil. Call before the cache is shared.
func (c *PriceCache) Instrument(hits, misses, stale *metrics.Counter, contention *metrics.Gauge) {
	c.hits = hits
	c.misses = misses
	c.stale = stale
	c.contention = contention
}

// EpochLag returns the configured staleness bound.
func (c *PriceCache) EpochLag() uint64 { return c.lag }

// Len returns the number of cached prices across all shards.
func (c *PriceCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// shard picks the stripe for id; Fibonacci hashing spreads the sequential
// ids real tables hand out.
func (c *PriceCache) shard(id uint64) *priceShard {
	return &c.shards[(id*0x9E3779B97F4A7C15)>>33&c.mask]
}

func (c *PriceCache) lock(s *priceShard) {
	c.locks.Add(1)
	if s.mu.TryLock() {
		return
	}
	if c.contention != nil {
		c.contention.Inc()
	}
	s.mu.Lock()
}

// LockAcquisitions returns the cumulative number of shard-lock
// acquisitions across all operations. Tests diff it around a batch call
// to assert the one-lock-per-shard-per-batch contract.
func (c *PriceCache) LockAcquisitions() int64 { return c.locks.Load() }

// Lookup returns the cached price for id if one exists and is no more
// than the configured lag behind epoch (the caller's snapshot of the
// tracker epoch).
func (c *PriceCache) Lookup(id, epoch uint64) (time.Duration, bool) {
	s := c.shard(id)
	c.lock(s)
	e, ok := s.entries[id]
	s.mu.Unlock()
	if !ok {
		if c.misses != nil {
			c.misses.Inc()
		}
		return 0, false
	}
	// An entry tagged ahead of the caller's snapshot (a racing Store saw a
	// newer epoch) underflows to a huge lag and is conservatively refused.
	if epoch-e.epoch > c.lag {
		if c.stale != nil {
			c.stale.Inc()
		}
		return 0, false
	}
	if c.hits != nil {
		c.hits.Inc()
	}
	return e.delay, true
}

// Store caches the price computed for id at the given tracker epoch,
// evicting an arbitrary resident entry if the shard is full.
func (c *PriceCache) Store(id uint64, d time.Duration, epoch uint64) {
	s := c.shard(id)
	c.lock(s)
	s.store(id, d, epoch)
	s.mu.Unlock()
}

// store inserts under the shard lock, evicting if full.
func (s *priceShard) store(id uint64, d time.Duration, epoch uint64) {
	if _, ok := s.entries[id]; !ok && len(s.entries) >= s.cap {
		for k := range s.entries {
			delete(s.entries, k)
			break
		}
	}
	s.entries[id] = priceEntry{delay: d, epoch: epoch}
}

// batchQuote is the per-call scratch a policy's DelayBatch prices a
// batch with: the per-tuple prices, the cache-miss indices, and the
// compacted miss ids/prices handed to the tracker and StoreBatch. One
// pool serves every policy, so steady-state quoting allocates nothing.
type batchQuote struct {
	perTuple []time.Duration
	miss     []int
	missIDs  []uint64
	prices   []time.Duration
}

var batchQuotePool = sync.Pool{New: func() any { return new(batchQuote) }}

// grow returns q.perTuple sized for n ids. Slots are not zeroed: the
// callers' fill discipline writes each index exactly once, by the hit
// path or the miss path.
func (q *batchQuote) grow(n int) []time.Duration {
	if cap(q.perTuple) < n {
		q.perTuple = make([]time.Duration, n)
	}
	q.perTuple = q.perTuple[:n]
	return q.perTuple
}

// fillMissIDs compacts the missed ids into q's reusable buffer.
func (q *batchQuote) fillMissIDs(ids []uint64, miss []int) []uint64 {
	missIDs := q.missIDs[:0]
	for _, i := range miss {
		missIDs = append(missIDs, ids[i])
	}
	q.missIDs = missIDs
	return missIDs
}

// batchGroupThreshold is the batch size below which grouping ids by shard
// costs more than just taking the per-id locks.
const batchGroupThreshold = 8

// groupByShard counting-sorts indices of ids by shard into pooled
// scratch. bounds[s] and bounds[s+1] delimit, in order, the positions
// into ids owned by shard s. Callers must return g via putGroups once
// done with order/bounds.
func (c *PriceCache) groupByShard(ids []uint64) (g *shardGroups, order []int, bounds []int) {
	n := len(c.shards)
	if v := c.groups.Get(); v != nil {
		g = v.(*shardGroups)
	} else {
		g = &shardGroups{}
	}
	shardOf := g.shardOf[:0]
	bounds = g.bounds[:0]
	for s := 0; s <= n; s++ {
		bounds = append(bounds, 0)
	}
	for _, id := range ids {
		s := uint32((id * 0x9E3779B97F4A7C15) >> 33 & c.mask)
		shardOf = append(shardOf, s)
		bounds[s+1]++
	}
	for s := 1; s <= n; s++ {
		bounds[s] += bounds[s-1]
	}
	order = g.order[:0]
	for range ids {
		order = append(order, 0)
	}
	next := append(g.next[:0], bounds[:n]...)
	for i := range ids {
		s := shardOf[i]
		order[next[s]] = i
		next[s]++
	}
	g.shardOf, g.bounds, g.order, g.next = shardOf, bounds, order, next
	return g, order, bounds
}

func (c *PriceCache) putGroups(g *shardGroups) { c.groups.Put(g) }

// LookupBatch resolves a whole batch of ids against the cache at the
// caller's epoch snapshot, writing valid prices into prices (parallel to
// ids) and appending the indices it could not serve to miss (pass a
// scratch slice sliced to zero length to reuse its storage; nil works
// too). Ids are grouped by shard so a k-tuple quote takes at most one
// lock round-trip per shard instead of one per tuple.
func (c *PriceCache) LookupBatch(ids []uint64, epoch uint64, prices []time.Duration, miss []int) []int {
	if len(ids) < batchGroupThreshold {
		for i, id := range ids {
			if d, ok := c.Lookup(id, epoch); ok {
				prices[i] = d
			} else {
				miss = append(miss, i)
			}
		}
		return miss
	}
	g, order, bounds := c.groupByShard(ids)
	defer c.putGroups(g)
	var hits, misses, stale int64
	for s := range c.shards {
		lo, hi := bounds[s], bounds[s+1]
		if lo == hi {
			continue
		}
		sh := &c.shards[s]
		c.lock(sh)
		for _, i := range order[lo:hi] {
			e, ok := sh.entries[ids[i]]
			switch {
			case !ok:
				misses++
				miss = append(miss, i)
			case epoch-e.epoch > c.lag:
				stale++
				miss = append(miss, i)
			default:
				hits++
				prices[i] = e.delay
			}
		}
		sh.mu.Unlock()
	}
	if c.hits != nil && hits > 0 {
		c.hits.Add(hits)
	}
	if c.misses != nil && misses > 0 {
		c.misses.Add(misses)
	}
	if c.stale != nil && stale > 0 {
		c.stale.Add(stale)
	}
	return miss
}

// StoreBatch caches the prices (parallel to ids) computed at epoch,
// taking each touched shard lock once.
func (c *PriceCache) StoreBatch(ids []uint64, prices []time.Duration, epoch uint64) {
	if len(ids) < batchGroupThreshold {
		for i, id := range ids {
			c.Store(id, prices[i], epoch)
		}
		return
	}
	g, order, bounds := c.groupByShard(ids)
	defer c.putGroups(g)
	for s := range c.shards {
		lo, hi := bounds[s], bounds[s+1]
		if lo == hi {
			continue
		}
		sh := &c.shards[s]
		c.lock(sh)
		for _, i := range order[lo:hi] {
			sh.store(ids[i], prices[i], epoch)
		}
		sh.mu.Unlock()
	}
}
