package delay

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestUpdateRateConfigValidation(t *testing.T) {
	tr := mustTracker(t, 1)
	bad := []UpdateRateConfig{
		{N: 0, Alpha: 1, C: 1},
		{N: 10, Alpha: -1, C: 1},
		{N: 10, Alpha: 1, C: 0},
		{N: 10, Alpha: 1, C: -2},
		{N: 10, Alpha: 1, C: math.Inf(1)},
		{N: 10, Alpha: 1, C: 1, Cap: -1},
		{N: 10, Alpha: 1, C: 1, Rmax: -1},
	}
	for i, cfg := range bad {
		if _, err := NewUpdateRate(cfg, tr); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewUpdateRate(UpdateRateConfig{N: 10, Alpha: 1, C: 1}, nil); err == nil {
		t.Error("nil tracker accepted")
	}
	good := UpdateRateConfig{N: 10, Alpha: 1, C: 1, Cap: time.Second, Rmax: 5}
	u, err := NewUpdateRate(good, tr)
	if err != nil {
		t.Fatal(err)
	}
	if u.Config() != good {
		t.Error("Config round trip")
	}
	if u.Tracker() != tr {
		t.Error("Tracker accessor")
	}
}

func TestUpdateRateEq9(t *testing.T) {
	tr := mustTracker(t, 1)
	u, _ := NewUpdateRate(UpdateRateConfig{N: 100, Alpha: 2, C: 3, Rmax: 10}, tr)
	// d(i) = 3 · i^2 / (100 · 10)
	if got, want := u.DelayForRank(1).Seconds(), 3.0/1000; math.Abs(got-want) > 1e-12 {
		t.Fatalf("d(1) = %v, want %v", got, want)
	}
	if got, want := u.DelayForRank(10).Seconds(), 0.3; math.Abs(got-want) > 1e-9 {
		t.Fatalf("d(10) = %v, want %v", got, want)
	}
}

func TestUpdateRateHotItemsCheap(t *testing.T) {
	tr := mustTracker(t, 1)
	cap := 10 * time.Second
	u, _ := NewUpdateRate(UpdateRateConfig{N: 1000, Alpha: 1.5, C: 1, Cap: cap, Rmax: 100}, tr)
	// Frequently updated item.
	for i := 0; i < 500; i++ {
		u.RecordUpdate(1)
	}
	u.RecordUpdate(2)
	d1, d2, dCold := u.Delay(1), u.Delay(2), u.Delay(999)
	if d1 >= d2 {
		t.Fatalf("hot update delay %v not below cooler %v", d1, d2)
	}
	// Never-updated tuples are charged the worst rank, N.
	if dCold != u.DelayForRank(1000) {
		t.Fatalf("never-updated tuple delay = %v, want rank-N delay %v", dCold, u.DelayForRank(1000))
	}
	if dCold <= d2 {
		t.Fatalf("cold delay %v not above updated tuple's %v", dCold, d2)
	}
}

func TestUpdateRateLearnedRmaxNeedsWindow(t *testing.T) {
	tr := mustTracker(t, 1)
	cap := 5 * time.Second
	u, _ := NewUpdateRate(UpdateRateConfig{N: 100, Alpha: 1, C: 1, Cap: cap}, tr)
	u.RecordUpdate(1)
	// No window ⇒ rmax unknown ⇒ cap.
	if got := u.Delay(1); got != cap {
		t.Fatalf("delay without window = %v, want cap", got)
	}
	u.SetWindow(100)                                 // 1 update / 100 s
	want := 1 * math.Pow(1, 1) / (100 * (1.0 / 100)) // = 1 s
	if got := u.Delay(1).Seconds(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("learned-rmax delay = %v, want %v", got, want)
	}
}

func TestUpdateRateUncappedColdSaturates(t *testing.T) {
	tr := mustTracker(t, 1)
	u, _ := NewUpdateRate(UpdateRateConfig{N: 100, Alpha: 1, C: 1}, tr)
	if got := u.Delay(1); got != maxDuration {
		t.Fatalf("cold uncapped = %v", got)
	}
}

func TestUpdateRateExtractionDelay(t *testing.T) {
	tr := mustTracker(t, 1)
	u, _ := NewUpdateRate(UpdateRateConfig{N: 100, Alpha: 1, C: 2, Rmax: 10, Cap: time.Minute}, tr)
	var want float64
	for i := 1; i <= 100; i++ {
		d := 2 * float64(i) / (100 * 10)
		if d > 60 {
			d = 60
		}
		want += d
	}
	got := u.ExtractionDelay().Seconds()
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("ExtractionDelay = %v, want %v", got, want)
	}
}

func TestPredictedStaleFractionEq12(t *testing.T) {
	// Smax = (c/(1+α))^(1/α), clamped to 1.
	if got, want := PredictedStaleFraction(1, 1), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Smax(1,1) = %v", got)
	}
	if got := PredictedStaleFraction(10, 1); got != 1 {
		t.Fatalf("Smax clamp = %v", got)
	}
	if got := PredictedStaleFraction(0, 1); got != 0 {
		t.Fatalf("Smax c=0 = %v", got)
	}
	if got := PredictedStaleFraction(1, 0); got != 0 {
		t.Fatalf("Smax α=0 = %v", got)
	}
	// Falls as skew rises (for c < 1+α region): at c=1, α=2: (1/3)^(1/2)≈0.577
	// vs α=1: 0.5 — actually rises; use c=0.5: α=1→0.25, α=2→(1/6)^0.5≈0.41.
	// The paper's Fig 6 shows staleness falling with skew because the same
	// cap translates to smaller effective c at high skew; the raw formula
	// behaviour is covered by exactness checks above.
	got := PredictedStaleFraction(0.5, 1)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Smax(0.5,1) = %v", got)
	}
}

func TestGateChargeAndQuote(t *testing.T) {
	tr := mustTracker(t, 1)
	p, _ := NewPopularity(PopularityConfig{N: 10, Alpha: 1, Beta: 1, Fmax: 1, Cap: time.Second}, tr)
	clk := newFakeClock()
	var observed []uint64
	g, err := NewGate(p, clk, func(id uint64) { observed = append(observed, id) })
	if err != nil {
		t.Fatal(err)
	}
	// Cold tuples: each pays... rank N=10 ⇒ d = 10^2/(10·1) = 10 s,
	// capped to 1 s. Two tuples ⇒ 2 s total (aggregation rule).
	q := g.Quote(1, 2)
	if q != 2*time.Second {
		t.Fatalf("Quote = %v", q)
	}
	if len(observed) != 0 {
		t.Fatal("Quote recorded observations")
	}
	got := g.Charge(1, 2)
	if got != 2*time.Second {
		t.Fatalf("Charge = %v", got)
	}
	if clk.slept != 2*time.Second {
		t.Fatalf("slept = %v", clk.slept)
	}
	if len(observed) != 2 || observed[0] != 1 || observed[1] != 2 {
		t.Fatalf("observed = %v", observed)
	}
	if g.Policy() != Policy(p) {
		t.Fatal("Policy accessor")
	}
}

func TestGateValidation(t *testing.T) {
	tr := mustTracker(t, 1)
	p, _ := NewPopularity(PopularityConfig{N: 10, Alpha: 1, Beta: 1, Fmax: 1}, tr)
	if _, err := NewGate(nil, newFakeClock(), nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := NewGate(p, nil, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
	// nil observe is fine.
	if _, err := NewGate(p, newFakeClock(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestGateQuoteSaturates(t *testing.T) {
	tr := mustTracker(t, 1)
	p, _ := NewPopularity(PopularityConfig{N: 10, Alpha: 1, Beta: 1}, tr) // uncapped, cold ⇒ maxDuration each
	g, _ := NewGate(p, newFakeClock(), nil)
	if got := g.Quote(1, 2, 3); got != maxDuration {
		t.Fatalf("saturating quote = %v", got)
	}
}

type fakeClock struct {
	now   time.Time
	slept time.Duration
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(0, 0)} }

func (f *fakeClock) Now() time.Time { return f.now }
func (f *fakeClock) Sleep(d time.Duration) {
	if d > 0 {
		f.slept += d
		f.now = f.now.Add(d)
	}
}
func (f *fakeClock) SleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.Sleep(d)
	return nil
}
