package delay

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/counters"
	"repro/internal/metrics"
)

func newCachedAndUncached(t *testing.T, tr *counters.Decayed, lag uint64) (cached, uncached *Popularity) {
	t.Helper()
	cfg := PopularityConfig{N: 500, Alpha: 1, Beta: 2, Cap: 10 * time.Second}
	var err error
	cached, err = NewPopularity(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPriceCache(256, 4, lag)
	if err != nil {
		t.Fatal(err)
	}
	cached.SetPriceCache(pc)
	uncached, err = NewPopularity(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return cached, uncached
}

// With PriceCacheEpochLag=0, every quote served through the cache must be
// bit-identical to the uncached batch path and to the original per-tuple
// Delay loop — at any quiescent point, whatever history preceded it.
func TestPriceCacheExactAtLagZero(t *testing.T) {
	tr, err := counters.NewDecayed(1.0001)
	if err != nil {
		t.Fatal(err)
	}
	cached, uncached := newCachedAndUncached(t, tr, 0)
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			tr.Observe(uint64(rng.Intn(300)))
		}
		ids := make([]uint64, 1+rng.Intn(64))
		for i := range ids {
			ids[i] = uint64(rng.Intn(600)) // half the range never observed
		}
		// Quote twice: the first fills the cache, the second must serve
		// from it (no mutation in between) with the identical total.
		first := cached.DelayBatch(ids)
		second := cached.DelayBatch(ids)
		want := uncached.DelayBatch(ids)
		var perTuple time.Duration
		for _, id := range ids {
			perTuple = satAdd(perTuple, uncached.Delay(id))
		}
		if first != want || second != want || perTuple != want {
			t.Fatalf("round %d: cached %v / %v, uncached batch %v, per-tuple %v",
				round, first, second, want, perTuple)
		}
	}
}

// Under concurrent Observe/Quote, a cache with lag 0 must never serve a
// price that the uncached path would not have produced at the same
// epoch. Each quoter snapshots the epoch; when the epoch is unchanged
// across both the cached and the uncached computation, the two totals
// compare bit-for-bit. Run with -race.
func TestPriceCacheConcurrentExactness(t *testing.T) {
	tr, err := counters.NewDecayed(1.0001)
	if err != nil {
		t.Fatal(err)
	}
	cached, uncached := newCachedAndUncached(t, tr, 0)
	stop := make(chan struct{})
	var mutatorDone sync.WaitGroup
	mutatorDone.Add(1)
	go func() {
		defer mutatorDone.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.ObserveBatch([]uint64{uint64(rng.Intn(200)), uint64(rng.Intn(200))})
		}
	}()
	var mismatches, checked atomic.Int64
	var quoters sync.WaitGroup
	for q := 0; q < 4; q++ {
		quoters.Add(1)
		go func(seed int64) {
			defer quoters.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				if i == 1500 && seed == 10 {
					// Half way in, silence the mutator so quoters also get
					// guaranteed stable-epoch windows to compare in.
					close(stop)
				}
				ids := make([]uint64, 1+rng.Intn(16))
				for j := range ids {
					ids[j] = uint64(rng.Intn(400))
				}
				e0 := tr.Epoch()
				got := cached.DelayBatch(ids)
				if tr.Epoch() != e0 {
					continue // mutated mid-quote; nothing to compare against
				}
				want := uncached.DelayBatch(ids)
				if tr.Epoch() != e0 {
					continue
				}
				checked.Add(1)
				if got != want {
					mismatches.Add(1)
				}
			}
		}(int64(q + 10))
	}
	quoters.Wait()
	mutatorDone.Wait()
	if checked.Load() == 0 {
		t.Fatal("no stable-epoch quote windows observed")
	}
	if mismatches.Load() != 0 {
		t.Fatalf("%d/%d stable-epoch quotes mismatched the uncached path", mismatches.Load(), checked.Load())
	}
}

// A positive epoch lag serves bounded-stale prices: within the lag the
// cached (possibly stale) value is returned; past it the entry is
// refused and recomputed.
func TestPriceCacheEpochLagBoundsStaleness(t *testing.T) {
	tr, err := counters.NewDecayed(1.5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPopularity(PopularityConfig{N: 100, Alpha: 1, Beta: 1, Cap: time.Second}, tr)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPriceCache(64, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	hits := reg.Counter("hits")
	misses := reg.Counter("misses")
	stale := reg.Counter("stale")
	pc.Instrument(hits, misses, stale, reg.Gauge("contention"))
	p.SetPriceCache(pc)

	tr.Observe(7)
	p.DelayBatch([]uint64{7}) // fill
	if misses.Value() != 1 {
		t.Fatalf("misses = %d", misses.Value())
	}
	tr.Observe(7) // 2 epoch ticks (observe + decay tick), within lag 4
	if p.DelayBatch([]uint64{7}); hits.Value() != 1 {
		t.Fatalf("hits = %d; in-lag lookup did not hit", hits.Value())
	}
	tr.Observe(7)
	tr.Observe(7) // now 6 ticks past the fill epoch: beyond the lag
	if p.DelayBatch([]uint64{7}); stale.Value() != 1 {
		t.Fatalf("stale = %d; out-of-lag lookup served", stale.Value())
	}
}

// The fixed capacity bounds residency no matter how many distinct ids
// pass through.
func TestPriceCacheCapacityBounded(t *testing.T) {
	pc, err := NewPriceCache(32, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 10_000; id++ {
		pc.Store(id, time.Millisecond, 0)
	}
	if n := pc.Len(); n > 32 {
		t.Fatalf("cache holds %d entries, capacity 32", n)
	}
}

func TestPriceCacheValidation(t *testing.T) {
	if _, err := NewPriceCache(0, 4, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	// Shard count is rounded up to a power of two and capped by capacity.
	pc, err := NewPriceCache(2, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pc.shards); got != 2 {
		t.Fatalf("shards = %d, want 2", got)
	}
	pc, err = NewPriceCache(1024, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pc.shards); got != 8 {
		t.Fatalf("shards = %d, want 8", got)
	}
}

// A quote made before anything is learned prices at the cap, but must not
// be cached: under a generous epoch lag the first real observation would
// otherwise leave retries pinned at the startup cap for up to lag
// mutations.
func TestPriceCacheDoesNotPinStartupTransient(t *testing.T) {
	tr, err := counters.NewDecayed(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPopularity(PopularityConfig{N: 1000, Alpha: 1, Beta: 2, Cap: time.Second}, tr)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPriceCache(64, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	p.SetPriceCache(pc)
	if d := p.DelayBatch([]uint64{7}); d != time.Second {
		t.Fatalf("unlearned quote = %v, want the cap", d)
	}
	tr.Observe(7)
	if d := p.DelayBatch([]uint64{7}); d >= time.Second {
		t.Fatalf("post-observation quote = %v: the startup cap was cached", d)
	}
}

// TestPriceCacheBatchLocksOncePerShard holds the batch paths to their
// contract — one shard-lock acquisition per touched shard per batch —
// under adversarial skew: every id in the batch hashes to the same
// shard, so the whole batch must cost exactly one lock round-trip.
func TestPriceCacheBatchLocksOncePerShard(t *testing.T) {
	pc, err := NewPriceCache(256, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	nShards := int(pc.mask) + 1
	if nShards != 16 {
		t.Fatalf("shard count = %d, want 16", nShards)
	}
	shardOf := func(id uint64) uint64 { return (id * 0x9E3779B97F4A7C15) >> 33 & pc.mask }

	// Collect 2*batchGroupThreshold ids that all land on shard 0 — the
	// worst case for any per-shard batching scheme.
	var skewed []uint64
	for id := uint64(1); len(skewed) < 2*batchGroupThreshold; id++ {
		if shardOf(id) == 0 {
			skewed = append(skewed, id)
		}
	}

	prices := make([]time.Duration, len(skewed))
	before := pc.LockAcquisitions()
	miss := pc.LookupBatch(skewed, 0, prices, nil)
	if got := pc.LockAcquisitions() - before; got != 1 {
		t.Errorf("skewed LookupBatch (all misses): %d lock acquisitions, want 1", got)
	}
	if len(miss) != len(skewed) {
		t.Fatalf("cold lookup: %d misses, want %d", len(miss), len(skewed))
	}

	for i := range prices {
		prices[i] = time.Duration(i+1) * time.Millisecond
	}
	before = pc.LockAcquisitions()
	pc.StoreBatch(skewed, prices, 0)
	if got := pc.LockAcquisitions() - before; got != 1 {
		t.Errorf("skewed StoreBatch: %d lock acquisitions, want 1", got)
	}

	got := make([]time.Duration, len(skewed))
	before = pc.LockAcquisitions()
	miss = pc.LookupBatch(skewed, 0, got, nil)
	if n := pc.LockAcquisitions() - before; n != 1 {
		t.Errorf("skewed LookupBatch (all hits): %d lock acquisitions, want 1", n)
	}
	if len(miss) != 0 {
		t.Fatalf("warm lookup: %d misses, want 0", len(miss))
	}
	for i := range got {
		if got[i] != prices[i] {
			t.Fatalf("id %d: cached %v, stored %v", skewed[i], got[i], prices[i])
		}
	}

	// A batch spanning two shards costs exactly two acquisitions.
	var other []uint64
	for id := uint64(1); len(other) < batchGroupThreshold; id++ {
		if shardOf(id) == 1 {
			other = append(other, id)
		}
	}
	mixed := append(append([]uint64(nil), skewed[:batchGroupThreshold]...), other...)
	mixedPrices := make([]time.Duration, len(mixed))
	before = pc.LockAcquisitions()
	pc.LookupBatch(mixed, 0, mixedPrices, nil)
	if got := pc.LockAcquisitions() - before; got != 2 {
		t.Errorf("two-shard LookupBatch: %d lock acquisitions, want 2", got)
	}
}
