package delay

import (
	"math"
	"testing"
	"time"

	"repro/internal/counters"
	"repro/internal/zipf"
)

func mustTracker(t *testing.T, decay float64) *counters.Decayed {
	t.Helper()
	tr, err := counters.NewDecayed(decay)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPopularityConfigValidation(t *testing.T) {
	tr := mustTracker(t, 1)
	bad := []PopularityConfig{
		{N: 0, Alpha: 1},
		{N: 10, Alpha: -1},
		{N: 10, Alpha: math.NaN()},
		{N: 10, Alpha: 1, Beta: -1},
		{N: 10, Alpha: 1, Cap: -time.Second},
		{N: 10, Alpha: 1, Fmax: -1},
	}
	for i, cfg := range bad {
		if _, err := NewPopularity(cfg, tr); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
	if _, err := NewPopularity(PopularityConfig{N: 10, Alpha: 1}, nil); err == nil {
		t.Error("nil tracker accepted")
	}
	good := PopularityConfig{N: 10, Alpha: 1.5, Beta: 2, Cap: time.Second}
	p, err := NewPopularity(good, tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.Config() != good {
		t.Error("Config round trip failed")
	}
	if p.Tracker() != tr {
		t.Error("Tracker accessor wrong")
	}
}

func TestStartupTransientChargesCap(t *testing.T) {
	// Before anything is learned, every query pays the cap — the paper's
	// §2.3 start-up rule.
	tr := mustTracker(t, 1)
	p, _ := NewPopularity(PopularityConfig{N: 1000, Alpha: 1.5, Beta: 2, Cap: 10 * time.Second}, tr)
	if got := p.Delay(42); got != 10*time.Second {
		t.Fatalf("cold delay = %v, want cap", got)
	}
	// Uncapped cold policy charges "forever" (saturated duration).
	p2, _ := NewPopularity(PopularityConfig{N: 1000, Alpha: 1.5, Beta: 2}, tr)
	if got := p2.Delay(42); got != maxDuration {
		t.Fatalf("uncapped cold delay = %v", got)
	}
}

func TestPopularDelayFallsAfterLearning(t *testing.T) {
	tr := mustTracker(t, 1)
	cap := 10 * time.Second
	p, _ := NewPopularity(PopularityConfig{N: 1000, Alpha: 1.0, Beta: 2, Cap: cap}, tr)
	for i := 0; i < 1000; i++ {
		tr.Observe(7)
	}
	// "The delay associated with popular items falls rapidly thereafter."
	if got := p.Delay(7); got >= cap/100 {
		t.Fatalf("hot tuple delay = %v, want tiny", got)
	}
	// Cold tuple still pays the cap.
	if got := p.Delay(999); got != cap {
		t.Fatalf("cold tuple delay = %v, want cap", got)
	}
}

func TestDelayMonotoneInRank(t *testing.T) {
	tr := mustTracker(t, 1)
	// Learn a strict ordering: id k accessed (100-k) times.
	for id := uint64(0); id < 50; id++ {
		for n := 0; n < int(100-id); n++ {
			tr.Observe(id)
		}
	}
	p, _ := NewPopularity(PopularityConfig{N: 100, Alpha: 1.0, Beta: 1.5, Cap: time.Hour}, tr)
	prev := time.Duration(-1)
	for id := uint64(0); id < 50; id++ {
		d := p.Delay(id)
		if d < prev {
			t.Fatalf("delay not monotone: id %d has %v < prev %v", id, d, prev)
		}
		prev = d
	}
}

func TestDelayUsesFixedFmax(t *testing.T) {
	tr := mustTracker(t, 1)
	tr.Observe(1)
	p, _ := NewPopularity(PopularityConfig{N: 100, Alpha: 1, Beta: 1, Fmax: 1000}, tr)
	// Rank of id 1 is 1; delay = 1^2/(100·1000) = 1e-5 s.
	want := SecondsToDuration(1e-5)
	if got := p.Delay(1); got != want {
		t.Fatalf("Delay = %v, want %v", got, want)
	}
	// DelayForRank agrees.
	if got := p.DelayForRank(1); got != want {
		t.Fatalf("DelayForRank = %v, want %v", got, want)
	}
}

func TestCapRank(t *testing.T) {
	tr := mustTracker(t, 1)
	cfg := PopularityConfig{N: 10000, Alpha: 1, Beta: 1, Fmax: 100, Cap: time.Second}
	p, _ := NewPopularity(cfg, tr)
	m := p.CapRank()
	// Check M is the first rank at or past the cap.
	if d := p.DelayForRank(m); d < cfg.Cap {
		t.Fatalf("rank M=%d delay %v below cap", m, d)
	}
	if m > 1 {
		if d := p.DelayForRank(m - 1); d >= cfg.Cap {
			t.Fatalf("rank M-1=%d delay %v already at cap", m-1, d)
		}
	}
	// Uncapped: CapRank = N.
	p2, _ := NewPopularity(PopularityConfig{N: 10000, Alpha: 1, Beta: 1, Fmax: 100}, tr)
	if p2.CapRank() != 10000 {
		t.Fatalf("uncapped CapRank = %d", p2.CapRank())
	}
}

func TestExtractionDelayMatchesModel(t *testing.T) {
	tr := mustTracker(t, 1)
	cfg := PopularityConfig{N: 5000, Alpha: 1.2, Beta: 1.3, Fmax: 500, Cap: 2 * time.Second}
	p, _ := NewPopularity(cfg, tr)
	m := Model{N: cfg.N, Alpha: cfg.Alpha, Beta: cfg.Beta, Fmax: cfg.Fmax, Cap: cfg.Cap}
	got := p.ExtractionDelay().Seconds()
	want := m.TotalExtractionSeconds()
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("ExtractionDelay = %v, model = %v", got, want)
	}
}

func TestAdversaryOrdersOfMagnitudeAboveMedian(t *testing.T) {
	// End-to-end shape check of the core claim: learn a Zipf(1.5)
	// workload, then compare an adversary's total extraction delay to the
	// median legitimate delay.
	const n = 20000
	tr := mustTracker(t, 1)
	d, err := zipf.New(n, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	s := zipf.NewSampler(d, 42)
	for i := 0; i < 300000; i++ {
		tr.Observe(uint64(s.Next()))
	}
	cap := 10 * time.Second
	fmax := tr.MaxCount()
	beta, err := TuneBeta(n, 1.5, fmax, cap, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewPopularity(PopularityConfig{N: n, Alpha: 1.5, Beta: beta, Cap: cap}, tr)

	// Median legitimate delay: quote the delay of fresh samples.
	var delays []float64
	for i := 0; i < 10001; i++ {
		delays = append(delays, p.Delay(uint64(s.Next())).Seconds())
	}
	med := medianOf(delays)
	adv := p.ExtractionDelay().Seconds()
	if med <= 0 {
		// Median could be truly zero-rounded; use a floor of one ns.
		med = 1e-9
	}
	ratio := adv / med
	if ratio < 1e5 {
		t.Fatalf("adversary/median ratio = %v, want ≥ 1e5 (adv=%vs med=%vs)", ratio, adv, med)
	}
	// Adversary must be within [50%, 100%] of the naive N·cap bound, and
	// the paper reports ≈90%.
	naive := float64(n) * cap.Seconds()
	if adv < 0.5*naive || adv > naive {
		t.Fatalf("adversary delay %v not in [0.5, 1.0]·N·cap (%v)", adv, naive)
	}
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestRankClampWhenObservedExceedsN(t *testing.T) {
	tr := mustTracker(t, 1)
	for id := uint64(0); id < 20; id++ {
		tr.Observe(id)
	}
	p, _ := NewPopularity(PopularityConfig{N: 10, Alpha: 1, Beta: 1, Fmax: 10, Cap: time.Minute}, tr)
	// id 19 has rank 20 > N; clamped to N=10.
	want := p.DelayForRank(10)
	if got := p.Delay(19); got != want {
		t.Fatalf("clamped delay = %v, want %v", got, want)
	}
}

func TestTuneBeta(t *testing.T) {
	const n = 100000
	fmax := 50000.0
	cap := 10 * time.Second
	beta, err := TuneBeta(n, 1.5, fmax, cap, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{N: n, Alpha: 1.5, Beta: beta, Fmax: fmax, Cap: cap}
	got := m.CapRank()
	if math.Abs(float64(got)-0.1*n) > 0.02*n {
		t.Fatalf("tuned cap rank = %d, want ≈ %d", got, n/10)
	}
}

func TestTuneBetaErrors(t *testing.T) {
	cases := []struct {
		n           int
		alpha, fmax float64
		cap         time.Duration
		frac        float64
	}{
		{1, 1, 10, time.Second, 0.5},
		{100, 1, 0, time.Second, 0.5},
		{100, 1, 10, 0, 0.5},
		{100, 1, 10, time.Second, 0},
		{100, 1, 10, time.Second, 1},
		{100, 9, 10, time.Second, 0.5}, // requires negative beta
	}
	for i, c := range cases {
		if _, err := TuneBeta(c.n, c.alpha, c.fmax, c.cap, c.frac); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSecondsToDuration(t *testing.T) {
	if SecondsToDuration(-1) != 0 {
		t.Error("negative seconds")
	}
	if SecondsToDuration(math.NaN()) != 0 {
		t.Error("NaN seconds")
	}
	if SecondsToDuration(1e300) != maxDuration {
		t.Error("no saturation")
	}
	if got := SecondsToDuration(1.5); got != 1500*time.Millisecond {
		t.Errorf("1.5s = %v", got)
	}
	if Seconds(2*time.Second) != 2 {
		t.Error("Seconds round trip")
	}
}
