package delay

import (
	"errors"
	"math"
	"time"

	"repro/internal/counters"
)

// PopularityConfig parameterizes the access-popularity policy of §2.
type PopularityConfig struct {
	// N is the dataset size in tuples. Ranks of never-observed tuples
	// default to N (maximally unpopular).
	N int
	// Alpha is the (assumed or estimated) Zipf parameter of the
	// legitimate workload.
	Alpha float64
	// Beta is the penalty exponent; see TuneBeta.
	Beta float64
	// Cap is the maximum delay dmax added to any single retrieval (§2.2).
	// Zero means uncapped (the "simple scheme" of §2.1).
	Cap time.Duration
	// Fmax fixes the effective request count of the most popular item.
	// When zero, it is learned from the tracker as the decayed count of
	// the current rank-1 item — the paper's implementation choice, which
	// is what makes stronger decay raise all delays (Table 3, Table 4).
	Fmax float64
}

func (c PopularityConfig) validate() error {
	switch {
	case c.N < 1:
		return errors.New("delay: N < 1")
	case c.Alpha < 0 || math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0):
		return errors.New("delay: invalid alpha")
	case c.Beta < 0 || math.IsNaN(c.Beta) || math.IsInf(c.Beta, 0):
		return errors.New("delay: invalid beta")
	case c.Cap < 0:
		return errors.New("delay: negative cap")
	case c.Fmax < 0 || math.IsNaN(c.Fmax):
		return errors.New("delay: invalid fmax")
	}
	return nil
}

// Popularity is the §2 policy: delay inversely related to learned access
// popularity. It is safe for concurrent use (the underlying tracker
// serializes access).
type Popularity struct {
	cfg     PopularityConfig
	tracker *counters.Decayed
	cache   *PriceCache // optional, set via SetPriceCache
}

// NewPopularity returns a popularity policy reading ranks from tracker.
// The tracker is shared: the caller (normally the Gate or Shield) is
// responsible for Observing accesses on it.
func NewPopularity(cfg PopularityConfig, tracker *counters.Decayed) (*Popularity, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if tracker == nil {
		return nil, errors.New("delay: nil tracker")
	}
	return &Popularity{cfg: cfg, tracker: tracker}, nil
}

// Config returns the policy's configuration.
func (p *Popularity) Config() PopularityConfig { return p.cfg }

// Tracker returns the underlying access tracker.
func (p *Popularity) Tracker() *counters.Decayed { return p.tracker }

// SetPriceCache attaches a quote cache consulted (and filled) by
// DelayBatch, keyed by the tracker's epoch. Call before the policy is
// shared between goroutines; nil detaches.
func (p *Popularity) SetPriceCache(c *PriceCache) { p.cache = c }

// PriceCache returns the attached quote cache, or nil.
func (p *Popularity) PriceCache() *PriceCache { return p.cache }

// DelayBatch implements BatchPolicy: the whole batch is priced with one
// tracker lock acquisition for fmax and one for the ranks — instead of
// three per tuple — and, when a price cache is attached, cached tuples
// skip the tracker entirely.
func (p *Popularity) DelayBatch(ids []uint64) time.Duration {
	if p.cache == nil {
		return p.delayBatchUncached(ids)
	}
	epoch := p.tracker.Epoch()
	q := batchQuotePool.Get().(*batchQuote)
	defer batchQuotePool.Put(q)
	perTuple := q.grow(len(ids))
	if miss := p.cache.LookupBatch(ids, epoch, perTuple, q.miss[:0]); len(miss) > 0 {
		q.miss = miss
		missIDs := q.fillMissIDs(ids, miss)
		fmax := p.fmax()
		ranks := p.tracker.RankBatch(missIDs)
		prices := q.prices[:0]
		for j, r := range ranks {
			d := p.delayAt(p.clampRank(r), fmax)
			prices = append(prices, d)
			perTuple[miss[j]] = d
		}
		q.prices = prices
		// The unlearned state (fmax ≤ 0) prices everything at the cap
		// regardless of rank; caching it would pin the start-up transient
		// for up to lag mutations after the first real observation.
		if fmax > 0 {
			p.cache.StoreBatch(missIDs, prices, epoch)
		}
	}
	// Sum in id order so totals are bit-identical to the per-tuple loop.
	var total time.Duration
	for _, d := range perTuple {
		total = satAdd(total, d)
	}
	return total
}

func (p *Popularity) delayBatchUncached(ids []uint64) time.Duration {
	if len(ids) == 1 {
		// Point queries skip the batch slices: two lock round-trips, zero
		// allocations, same arithmetic.
		return p.delayAt(p.clampRank(p.tracker.RankOne(ids[0])), p.fmax())
	}
	fmax := p.fmax()
	ranks := p.tracker.RankBatch(ids)
	var total time.Duration
	for _, r := range ranks {
		total = satAdd(total, p.delayAt(p.clampRank(r), fmax))
	}
	return total
}

// clampRank maps a RankBatch rank to the policy's domain: never-observed
// tuples (-1) and ranks past the configured dataset size are charged as
// rank N, exactly as the per-tuple rank() does.
func (p *Popularity) clampRank(r int) int {
	if r < 0 || r > p.cfg.N {
		return p.cfg.N
	}
	return r
}

// Delay implements Policy. The rank of a never-observed tuple is N; with
// no observations at all (fmax unknown) every delay is the cap, which is
// exactly the paper's start-up transient behaviour.
func (p *Popularity) Delay(id uint64) time.Duration {
	rank := p.rank(id)
	fmax := p.fmax()
	return p.delayAt(rank, fmax)
}

// DelayForRank returns the delay the policy would currently assign to the
// tuple of the given popularity rank.
func (p *Popularity) DelayForRank(rank int) time.Duration {
	return p.delayAt(rank, p.fmax())
}

func (p *Popularity) rank(id uint64) int {
	if p.tracker.Count(id) <= 0 {
		return p.cfg.N
	}
	r := p.tracker.Rank(id)
	if r > p.cfg.N {
		// More distinct ids observed than the configured dataset size;
		// clamp so the formula stays within its intended range.
		return p.cfg.N
	}
	return r
}

func (p *Popularity) fmax() float64 {
	if p.cfg.Fmax > 0 {
		return p.cfg.Fmax
	}
	// Learned: decayed count of the most popular item.
	return p.tracker.MaxCount()
}

func (p *Popularity) delayAt(rank int, fmax float64) time.Duration {
	return SecondsToDuration(p.delaySecondsAt(rank, fmax))
}

func (p *Popularity) delaySecondsAt(rank int, fmax float64) float64 {
	if rank < 1 {
		rank = 1
	}
	if fmax <= 0 {
		// Nothing learned yet: charge the cap (uncapped policies charge
		// effectively forever, so configure a cap when learning online).
		if p.cfg.Cap > 0 {
			return p.cfg.Cap.Seconds()
		}
		return maxDuration.Seconds()
	}
	sec := math.Pow(float64(rank), p.cfg.Alpha+p.cfg.Beta) / (float64(p.cfg.N) * fmax)
	if p.cfg.Cap > 0 && sec > p.cfg.Cap.Seconds() {
		return p.cfg.Cap.Seconds()
	}
	return sec
}

// DelaySeconds returns the exact delay for id in float seconds, without
// the sub-nanosecond truncation of time.Duration. Analysis code uses it
// where delays can be astronomically small (very hot tuples under huge
// fmax).
func (p *Popularity) DelaySeconds(id uint64) float64 {
	return p.delaySecondsAt(p.rank(id), p.fmax())
}

// CapRank returns M, the lowest rank whose computed delay reaches the cap
// (Eq 5). It returns N if no rank caps (or the policy is uncapped).
func (p *Popularity) CapRank() int {
	if p.cfg.Cap <= 0 {
		return p.cfg.N
	}
	fmax := p.fmax()
	if fmax <= 0 {
		return 1
	}
	// Solve rank^(α+β) = cap · N · fmax.
	exp := p.cfg.Alpha + p.cfg.Beta
	if exp <= 0 {
		return p.cfg.N
	}
	m := math.Pow(p.cfg.Cap.Seconds()*float64(p.cfg.N)*fmax, 1/exp)
	if m < 1 {
		return 1
	}
	if m >= float64(p.cfg.N) {
		return p.cfg.N
	}
	return int(math.Ceil(m))
}

// ExtractionDelay returns the total delay an adversary faces to retrieve
// the entire dataset of N tuples under the current learned state (Eq 6):
// the sum of per-rank delays with the cap applied. Tuples beyond the
// observed set take rank ≥ observed count and are charged as the tail.
func (p *Popularity) ExtractionDelay() time.Duration {
	fmax := p.fmax()
	var total float64
	for i := 1; i <= p.cfg.N; i++ {
		total += p.delayAt(i, fmax).Seconds()
	}
	return SecondsToDuration(total)
}
