package delay

import (
	"errors"
	"time"

	"repro/internal/vclock"
)

// Gate meters tuple retrievals: it computes the policy delay for the
// tuples a query returns, sleeps for it on the configured clock, and
// feeds the access observations back to the learner. A query returning
// multiple tuples is charged the sum of per-tuple delays, per §2.1's
// aggregation rule ("a query that returns multiple tuples can simply be
// considered the aggregate of multiple simple queries").
type Gate struct {
	policy  Policy
	clock   vclock.Clock
	observe func(id uint64)
}

// NewGate builds a gate. observe may be nil if the policy learns through
// some other path (e.g. update-rate policies observe writes, not reads).
func NewGate(policy Policy, clock vclock.Clock, observe func(id uint64)) (*Gate, error) {
	if policy == nil {
		return nil, errors.New("delay: nil policy")
	}
	if clock == nil {
		return nil, errors.New("delay: nil clock")
	}
	return &Gate{policy: policy, clock: clock, observe: observe}, nil
}

// Charge computes the total delay for the given result tuples, sleeps it,
// records the accesses, and returns the imposed delay.
func (g *Gate) Charge(ids ...uint64) time.Duration {
	total := g.Quote(ids...)
	g.clock.Sleep(total)
	if g.observe != nil {
		for _, id := range ids {
			g.observe(id)
		}
	}
	return total
}

// Quote returns the delay Charge would impose right now, without sleeping
// or recording observations. Experiments use it to measure the policy
// non-invasively, mirroring the paper's method of computing adversary
// delay "by examining the access counts after the trace was replayed".
func (g *Gate) Quote(ids ...uint64) time.Duration {
	var total time.Duration
	for _, id := range ids {
		d := g.policy.Delay(id)
		if total > maxDuration-d {
			return maxDuration
		}
		total += d
	}
	return total
}

// Policy returns the gate's policy.
func (g *Gate) Policy() Policy { return g.policy }
