package delay

import (
	"context"
	"errors"
	"time"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

// Gate meters tuple retrievals: it computes the policy delay for the
// tuples a query returns, sleeps for it on the configured clock, and
// feeds the access observations back to the learner. A query returning
// multiple tuples is charged the sum of per-tuple delays, per §2.1's
// aggregation rule ("a query that returns multiple tuples can simply be
// considered the aggregate of multiple simple queries").
type Gate struct {
	policy  Policy
	clock   vclock.Clock
	observe func(id uint64)
	// observeBatch, when set via SetBatchObserver, replaces per-tuple
	// observe calls with one call per charge.
	observeBatch func(ids []uint64)

	// Optional instrumentation, set via Instrument.
	inflight *metrics.Gauge
	// delayHist records charges whose full delay was served;
	// cancelledHist records charges whose sleep was cut short. Keeping
	// them apart means /metrics does not under-report imposed delay when
	// adversaries hang up early, while served-query latency stays clean.
	delayHist     *metrics.Histogram
	cancelledHist *metrics.Histogram
}

// BatchResolver is implemented by policies that serve delays through a
// mutable indirection (e.g. an adaptive tracker selector): ResolveBatch
// pins the policy to use for one Quote/Charge batch, so the gate pays the
// resolution cost (typically a lock) once per query instead of once per
// tuple.
type BatchResolver interface {
	ResolveBatch() Policy
}

// NewGate builds a gate. observe may be nil if the policy learns through
// some other path (e.g. update-rate policies observe writes, not reads).
func NewGate(policy Policy, clock vclock.Clock, observe func(id uint64)) (*Gate, error) {
	if policy == nil {
		return nil, errors.New("delay: nil policy")
	}
	if clock == nil {
		return nil, errors.New("delay: nil clock")
	}
	return &Gate{policy: policy, clock: clock, observe: observe}, nil
}

// Instrument attaches optional metrics: inflight counts goroutines
// currently sleeping in the gate; delayHist records each fully served
// charge's imposed delay in seconds; cancelledHist records the quoted
// delay of charges whose sleep was cut short by cancellation. Any may be
// nil. Call before the gate is shared between goroutines.
func (g *Gate) Instrument(inflight *metrics.Gauge, delayHist, cancelledHist *metrics.Histogram) {
	g.inflight = inflight
	g.delayHist = delayHist
	g.cancelledHist = cancelledHist
}

// SetBatchObserver replaces the per-tuple observe callback with one that
// records a whole charge's accesses in a single call, so the learner's
// serialization cost is paid once per query instead of once per tuple.
// Call before the gate is shared between goroutines.
func (g *Gate) SetBatchObserver(fn func(ids []uint64)) {
	g.observeBatch = fn
}

// Charge computes the total delay for the given result tuples, sleeps it,
// records the accesses, and returns the imposed delay.
func (g *Gate) Charge(ids ...uint64) time.Duration {
	d, _ := g.ChargeCtx(context.Background(), ids...)
	return d
}

// ChargeCtx is Charge with cancellation: the sleep ends early with
// ctx.Err() if ctx is cancelled or its deadline passes. The returned
// duration is always the full quoted delay.
//
// The access observations are recorded even when the sleep is cut short —
// a cancelled query has still revealed its result tuples' existence to
// the client's timing view, and more importantly, skipping the learning
// step would let an adversary probe the delay oracle for free by
// cancelling every query. Callers must likewise charge rate-limit tokens
// before calling (the Shield does).
func (g *Gate) ChargeCtx(ctx context.Context, ids ...uint64) (time.Duration, error) {
	return g.ChargeCtxScaled(ctx, 1, ids...)
}

// ChargeCtxScaled is ChargeCtx with the quoted delay multiplied by
// mult before sleeping — the surcharge hook the extraction detector
// escalates suspected principals through. mult 1 is the unscaled path;
// the product saturates at the maximum representable duration.
func (g *Gate) ChargeCtxScaled(ctx context.Context, mult float64, ids ...uint64) (time.Duration, error) {
	total := scaleDelay(g.Quote(ids...), mult)
	if g.inflight != nil {
		g.inflight.Inc()
	}
	err := g.clock.SleepCtx(ctx, total)
	if g.inflight != nil {
		g.inflight.Dec()
	}
	switch {
	case g.observeBatch != nil:
		g.observeBatch(ids)
	case g.observe != nil:
		for _, id := range ids {
			g.observe(id)
		}
	}
	if err != nil {
		if g.cancelledHist != nil {
			g.cancelledHist.Observe(total.Seconds())
		}
		return total, err
	}
	if g.delayHist != nil {
		g.delayHist.Observe(total.Seconds())
	}
	return total, nil
}

// Quote returns the delay Charge would impose right now, without sleeping
// or recording observations. Experiments use it to measure the policy
// non-invasively, mirroring the paper's method of computing adversary
// delay "by examining the access counts after the trace was replayed".
func (g *Gate) Quote(ids ...uint64) time.Duration {
	pol := g.policy
	if r, ok := pol.(BatchResolver); ok {
		pol = r.ResolveBatch()
	}
	if bp, ok := pol.(BatchPolicy); ok {
		return bp.DelayBatch(ids)
	}
	var total time.Duration
	for _, id := range ids {
		total = satAdd(total, pol.Delay(id))
	}
	return total
}

// QuoteScaled is Quote with the total multiplied by mult (saturating),
// matching what ChargeCtxScaled would impose.
func (g *Gate) QuoteScaled(mult float64, ids ...uint64) time.Duration {
	return scaleDelay(g.Quote(ids...), mult)
}

// scaleDelay multiplies a delay by an escalation factor, saturating at
// the maximum representable duration. Factors ≤ 1 leave the delay
// untouched: the detector only ever surcharges, never discounts.
func scaleDelay(d time.Duration, mult float64) time.Duration {
	if mult <= 1 || d <= 0 {
		return d
	}
	scaled := float64(d) * mult
	if scaled >= float64(maxDuration) {
		return maxDuration
	}
	return time.Duration(scaled)
}

// Policy returns the gate's policy.
func (g *Gate) Policy() Policy { return g.policy }
