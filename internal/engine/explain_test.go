package engine

import (
	"strings"
	"testing"
)

func explainDB(t *testing.T) *Database {
	t.Helper()
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, city TEXT, v INT)`)
	for i := 0; i < 20; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (`+itoa(i)+`, 'c`+itoa(i%3)+`', `+itoa(i*2)+`)`)
	}
	mustExec(t, db, `CREATE INDEX by_city ON t (city)`)
	return db
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func explain(t *testing.T, db *Database, sql string) string {
	t.Helper()
	res := mustExec(t, db, sql)
	if len(res.Rows) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("explain result = %+v", res)
	}
	return res.Rows[0][0].Str
}

func TestExplainPlans(t *testing.T) {
	db := explainDB(t)
	cases := []struct {
		sql  string
		want string
	}{
		{`EXPLAIN SELECT * FROM t WHERE id = 5`, "primary key point lookup"},
		{`EXPLAIN SELECT * FROM t WHERE id >= 3 AND id < 9`, "primary key range scan"},
		{`EXPLAIN SELECT * FROM t WHERE city = 'c1'`, "secondary index"},
		{`EXPLAIN SELECT * FROM t WHERE v = 4`, "full table scan"},
		{`EXPLAIN SELECT * FROM t`, "full table scan"},
		{`EXPLAIN SELECT * FROM t WHERE id = 1 AND id = 2`, "no-op"},
	}
	for _, c := range cases {
		got := explain(t, db, c.sql)
		if !strings.Contains(got, c.want) {
			t.Errorf("%s\n  plan %q does not mention %q", c.sql, got, c.want)
		}
	}
}

func TestExplainPrefersPointOverSecondary(t *testing.T) {
	db := explainDB(t)
	got := explain(t, db, `EXPLAIN SELECT * FROM t WHERE city = 'c1' AND id = 5`)
	if !strings.Contains(got, "primary key point lookup") {
		t.Fatalf("plan = %q", got)
	}
}

func TestExplainSecondaryShowsCandidates(t *testing.T) {
	db := explainDB(t)
	got := explain(t, db, `EXPLAIN SELECT * FROM t WHERE city = 'c0'`)
	if !strings.Contains(got, "candidate rows") {
		t.Fatalf("plan = %q", got)
	}
}

func TestExplainErrors(t *testing.T) {
	db := explainDB(t)
	if _, err := db.Exec(`EXPLAIN UPDATE t SET v = 1`); err == nil {
		t.Fatal("EXPLAIN UPDATE accepted")
	}
	if _, err := db.Exec(`EXPLAIN SELECT * FROM t WHERE nope = 1`); err == nil {
		t.Fatal("EXPLAIN with unknown column accepted")
	}
}
