package engine

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/sqlmini"
	"repro/internal/storage"
)

// planKind enumerates access paths.
type planKind int

const (
	planImpossible planKind = iota + 1
	planPKPoint
	planPKRange
	planSecondaryEq
	planFullScan
)

// boundConj is one WHERE conjunct with its column resolved to a schema
// index, so per-row evaluation compares by position instead of doing a
// string lookup per conjunct per row.
type boundConj struct {
	col int
	op  sqlmini.CmpOp
	val sqlmini.Literal
}

// resolveWhere validates the WHERE clause's column references against
// the schema once and appends the conjuncts in bound form to buf
// (pass nil, or a scratch slice to reuse its storage).
func resolveWhere(schema catalog.Schema, where *sqlmini.Where, buf []boundConj) ([]boundConj, error) {
	buf = buf[:0]
	if where == nil {
		return buf, nil
	}
	for _, c := range where.Conjuncts {
		ci := schema.ColumnIndex(c.Column)
		if ci < 0 {
			return nil, fmt.Errorf("engine: unknown column %q in WHERE", c.Column)
		}
		buf = append(buf, boundConj{col: ci, op: c.Op, val: c.Value})
	}
	return buf, nil
}

// queryPlan is the chosen access path for a WHERE clause. Bounds are
// held by value (with presence flags) rather than as pointers so
// choosing a plan allocates nothing on the point-lookup hot path.
type queryPlan struct {
	kind    planKind
	eq      int64
	lo, hi  int64
	hasLo   bool
	hasHi   bool
	sec     *secondary
	secRIDs []storage.RID
}

// Describe renders the plan for EXPLAIN output.
func (p queryPlan) Describe(t *table) string {
	keyCol := t.schema.Columns[t.schema.Key].Name
	switch p.kind {
	case planImpossible:
		return "no-op (contradictory equality predicates)"
	case planPKPoint:
		return fmt.Sprintf("primary key point lookup on %q = %d", keyCol, p.eq)
	case planPKRange:
		lo, hi := "-inf", "+inf"
		if p.hasLo {
			lo = fmt.Sprintf("%d", p.lo)
		}
		if p.hasHi {
			hi = fmt.Sprintf("%d", p.hi)
		}
		return fmt.Sprintf("primary key range scan on %q in [%s, %s]", keyCol, lo, hi)
	case planSecondaryEq:
		return fmt.Sprintf("secondary index %q equality on %q (%d candidate rows)",
			p.sec.def.Name, p.sec.def.Column, len(p.secRIDs))
	default:
		return "full table scan"
	}
}

// choosePlanBound picks an access path for resolved conjuncts. Paths,
// in preference order: primary key point lookup, secondary index
// equality, primary key range scan, full scan. The choice is
// value-dependent (contradiction detection, index probes), so cached
// plans re-run it per execution with the freshly bound parameters.
func choosePlanBound(t *table, conj []boundConj) queryPlan {
	key := t.schema.Key

	var p queryPlan
	hasEq := false
	impossible := false
	for _, c := range conj {
		if c.col != key || c.val.Kind != sqlmini.IntLit {
			continue
		}
		v := c.val.Int
		switch c.op {
		case sqlmini.OpEq:
			if hasEq && p.eq != v {
				impossible = true
			}
			p.eq = v
			hasEq = true
		case sqlmini.OpGe:
			if !p.hasLo || v > p.lo {
				p.lo, p.hasLo = v, true
			}
		case sqlmini.OpGt:
			if w := v + 1; !p.hasLo || w > p.lo {
				p.lo, p.hasLo = w, true
			}
		case sqlmini.OpLe:
			if !p.hasHi || v < p.hi {
				p.hi, p.hasHi = v, true
			}
		case sqlmini.OpLt:
			if w := v - 1; !p.hasHi || w < p.hi {
				p.hi, p.hasHi = w, true
			}
		}
	}
	switch {
	case impossible:
		p.kind = planImpossible
		return p
	case hasEq:
		p.kind = planPKPoint
		return p
	}

	// Secondary index path: an equality conjunct on an indexed non-key
	// column, considered only when the primary key gives no point handle.
	for _, c := range conj {
		if c.op != sqlmini.OpEq || c.col == key {
			continue
		}
		sec := t.findSecondaryByCol(c.col)
		if sec == nil {
			continue
		}
		if rids, ok := sec.lookupLiteral(c.val); ok {
			p.kind = planSecondaryEq
			p.sec = sec
			p.secRIDs = rids
			return p
		}
	}

	if p.hasLo || p.hasHi {
		p.kind = planPKRange
		return p
	}
	p.kind = planFullScan
	return p
}

// rowScratch is a pooled decode buffer for the index-driven scan paths
// (point, range, secondary), which decode one row at a time on the
// calling goroutine.
type rowScratch struct{ row catalog.Row }

var rowScratchPool = sync.Pool{New: func() any { return new(rowScratch) }}

// planAndScanBound picks an access path for the resolved conjuncts and
// streams matching rows to fn. fn returns (continue, error); scanning
// stops on either signal. need, when non-nil, is the decode mask (see
// catalog.DecodeRowInto) and must cover every conjunct column.
//
// Every path reads through a page snapshot consistent with the index
// state it was planned against: the plan (and any RIDs it captured) is
// taken under the index read lock together with the snapshot epoch, and
// commits publish their page versions and index changes atomically
// under the index write lock, so a scan never sees half a statement.
// Point lookups read optimistically at the current epoch without
// registering (no shared mutable state on the hot path) and retry once
// with a registered snapshot if version pruning got there first.
//
// Rows passed to fn are only valid for the duration of the call: the
// scan paths decode into reused scratch buffers. Callers that retain
// rows must copy them.
func (db *Database) planAndScanBound(t *table, conj []boundConj, need []bool, fn func(storage.RID, catalog.Row) (bool, error)) error {
	t.idxMu.RLock()
	p := choosePlanBound(t, conj)

	if p.kind == planImpossible {
		t.idxMu.RUnlock()
		return nil
	}
	if p.kind == planFullScan {
		t.idxMu.RUnlock()
		// Full scan: fan out across the parallel executor when the heap
		// is large enough; fn still sees rows in page order.
		snap := t.pool.BeginSnapshot()
		defer t.pool.EndSnapshot(snap)
		if w := db.scanWorkersFor(t); w > 1 {
			return db.parallelFullScan(t, conj, need, w, snap, fn)
		}
		sc := rowScratchPool.Get().(*rowScratch)
		defer rowScratchPool.Put(sc)
		var scanErr error
		err := t.heap.ScanAt(snap, func(rid storage.RID, rec []byte) bool {
			row, derr := catalog.DecodeRowInto(t.schema, rec, sc.row[:0], need)
			if derr != nil {
				scanErr = derr
				return false
			}
			sc.row = row
			ok, merr := matchesBound(row, conj)
			if merr != nil {
				scanErr = merr
				return false
			}
			if !ok {
				return true
			}
			cont, ferr := fn(rid, row)
			if ferr != nil {
				scanErr = ferr
				return false
			}
			return cont
		})
		if err != nil {
			return err
		}
		return scanErr
	}

	sc := rowScratchPool.Get().(*rowScratch)
	defer rowScratchPool.Put(sc)
	emitAt := func(rid storage.RID, snap uint64) (vis, cont bool, err error) {
		var row catalog.Row
		vis, err = t.heap.ViewAt(rid, snap, func(rec []byte) error {
			var derr error
			row, derr = catalog.DecodeRowInto(t.schema, rec, sc.row[:0], need)
			return derr
		})
		if err != nil || !vis {
			return vis, true, err
		}
		sc.row = row
		ok, err := matchesBound(row, conj)
		if err != nil || !ok {
			return true, true, err
		}
		cont, err = fn(rid, row)
		return true, cont, err
	}

	switch p.kind {
	case planPKPoint:
		// Optimistic: (rid, epoch) captured together under idxMu are
		// mutually consistent, and the row a committed index entry points
		// at is live at that epoch. The only way the read comes back
		// invisible is the unregistered version having been pruned —
		// retry once with a registered snapshot, re-reading the index.
		rid, found := t.pk.Get(p.eq)
		snap := t.pool.Epoch()
		t.idxMu.RUnlock()
		if !found {
			return nil
		}
		vis, _, err := emitAt(rid, snap)
		if err != nil || vis {
			return err
		}
		t.idxMu.RLock()
		rid, found = t.pk.Get(p.eq)
		snap = t.pool.BeginSnapshot()
		t.idxMu.RUnlock()
		defer t.pool.EndSnapshot(snap)
		if !found {
			return nil
		}
		_, _, err = emitAt(rid, snap)
		return err
	case planSecondaryEq:
		// The RID slice is immutable once published (index maintenance
		// replaces slices wholesale), so it outlives the lock; the
		// snapshot is registered before the lock drops so the versions
		// the RIDs point at stay reachable.
		snap := t.pool.BeginSnapshot()
		t.idxMu.RUnlock()
		defer t.pool.EndSnapshot(snap)
		for _, rid := range p.secRIDs {
			_, cont, err := emitAt(rid, snap)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		return nil
	default: // planPKRange
		// The B+tree traversal itself needs the index lock, so the range
		// path holds it shared for the duration of the scan; commits
		// queue behind it only for their (short) index-apply section.
		snap := t.pool.BeginSnapshot()
		defer t.pool.EndSnapshot(snap)
		defer t.idxMu.RUnlock()
		var lop, hip *int64
		if p.hasLo {
			lop = &p.lo
		}
		if p.hasHi {
			hip = &p.hi
		}
		var scanErr error
		t.pk.AscendRange(lop, hip, func(key int64, rid storage.RID) bool {
			_, cont, err := emitAt(rid, snap)
			if err != nil {
				scanErr = err
				return false
			}
			return cont
		})
		return scanErr
	}
}

// planAndScan resolves the WHERE clause and streams matching rows to fn
// with no decode mask (every column materialized). Rows are only valid
// during fn, as with planAndScanBound.
func (db *Database) planAndScan(t *table, where *sqlmini.Where, fn func(storage.RID, catalog.Row) (bool, error)) error {
	conj, err := resolveWhere(t.schema, where, nil)
	if err != nil {
		return err
	}
	return db.planAndScanBound(t, conj, nil, fn)
}

// matchesBound evaluates resolved conjuncts against a row.
func matchesBound(row catalog.Row, conj []boundConj) (bool, error) {
	for _, c := range conj {
		cmp, err := compareValueLiteral(row[c.col], c.val)
		if err != nil {
			return false, err
		}
		var ok bool
		switch c.op {
		case sqlmini.OpEq:
			ok = cmp == 0
		case sqlmini.OpNe:
			ok = cmp != 0
		case sqlmini.OpLt:
			ok = cmp < 0
		case sqlmini.OpLe:
			ok = cmp <= 0
		case sqlmini.OpGt:
			ok = cmp > 0
		case sqlmini.OpGe:
			ok = cmp >= 0
		default:
			return false, fmt.Errorf("engine: invalid operator %v", c.op)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// compareValueLiteral compares a column value with a literal, coercing
// numerics to float when the types differ.
func compareValueLiteral(v catalog.Value, lit sqlmini.Literal) (int, error) {
	switch v.Type {
	case catalog.Int:
		switch lit.Kind {
		case sqlmini.IntLit:
			return cmpInt(v.Int, lit.Int), nil
		case sqlmini.FloatLit:
			return cmpFloat(float64(v.Int), lit.Float), nil
		}
	case catalog.Float:
		switch lit.Kind {
		case sqlmini.FloatLit:
			return cmpFloat(v.Float, lit.Float), nil
		case sqlmini.IntLit:
			return cmpFloat(v.Float, float64(lit.Int)), nil
		}
	case catalog.Text:
		if lit.Kind == sqlmini.StringLit {
			return strings.Compare(v.Str, lit.Str), nil
		}
	}
	return 0, fmt.Errorf("engine: cannot compare %v column with literal %v", v.Type, lit)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
