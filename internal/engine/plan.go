package engine

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlmini"
	"repro/internal/storage"
)

// planKind enumerates access paths.
type planKind int

const (
	planImpossible planKind = iota + 1
	planPKPoint
	planPKRange
	planSecondaryEq
	planFullScan
)

// queryPlan is the chosen access path for a WHERE clause.
type queryPlan struct {
	kind    planKind
	eq      *int64
	lo, hi  *int64
	sec     *secondary
	secRIDs []storage.RID
}

// Describe renders the plan for EXPLAIN output.
func (p queryPlan) Describe(t *table) string {
	keyCol := t.schema.Columns[t.schema.Key].Name
	switch p.kind {
	case planImpossible:
		return "no-op (contradictory equality predicates)"
	case planPKPoint:
		return fmt.Sprintf("primary key point lookup on %q = %d", keyCol, *p.eq)
	case planPKRange:
		lo, hi := "-inf", "+inf"
		if p.lo != nil {
			lo = fmt.Sprintf("%d", *p.lo)
		}
		if p.hi != nil {
			hi = fmt.Sprintf("%d", *p.hi)
		}
		return fmt.Sprintf("primary key range scan on %q in [%s, %s]", keyCol, lo, hi)
	case planSecondaryEq:
		return fmt.Sprintf("secondary index %q equality on %q (%d candidate rows)",
			p.sec.def.Name, p.sec.def.Column, len(p.secRIDs))
	default:
		return "full table scan"
	}
}

// choosePlan picks an access path for the WHERE clause. Paths, in
// preference order: primary key point lookup, secondary index equality,
// primary key range scan, full scan.
func (db *Database) choosePlan(t *table, where *sqlmini.Where) (queryPlan, error) {
	keyCol := t.schema.Columns[t.schema.Key].Name

	// Validate referenced columns up front so malformed queries fail even
	// when no row would be visited.
	if where != nil {
		for _, c := range where.Conjuncts {
			if t.schema.ColumnIndex(c.Column) < 0 {
				return queryPlan{}, fmt.Errorf("engine: unknown column %q in WHERE", c.Column)
			}
		}
	}

	var p queryPlan
	impossible := false
	if where != nil {
		for _, c := range where.Conjuncts {
			if !strings.EqualFold(c.Column, keyCol) || c.Value.Kind != sqlmini.IntLit {
				continue
			}
			v := c.Value.Int
			switch c.Op {
			case sqlmini.OpEq:
				if p.eq != nil && *p.eq != v {
					impossible = true
				}
				p.eq = &v
			case sqlmini.OpGe:
				if p.lo == nil || v > *p.lo {
					p.lo = &v
				}
			case sqlmini.OpGt:
				w := v + 1
				if p.lo == nil || w > *p.lo {
					p.lo = &w
				}
			case sqlmini.OpLe:
				if p.hi == nil || v < *p.hi {
					p.hi = &v
				}
			case sqlmini.OpLt:
				w := v - 1
				if p.hi == nil || w < *p.hi {
					p.hi = &w
				}
			}
		}
	}
	switch {
	case impossible:
		p.kind = planImpossible
		return p, nil
	case p.eq != nil:
		p.kind = planPKPoint
		return p, nil
	}

	// Secondary index path: an equality conjunct on an indexed non-key
	// column, considered only when the primary key gives no point handle.
	if where != nil {
		for _, c := range where.Conjuncts {
			if c.Op != sqlmini.OpEq || strings.EqualFold(c.Column, keyCol) {
				continue
			}
			sec := t.findSecondary(c.Column)
			if sec == nil {
				continue
			}
			if rids, ok := sec.lookupLiteral(c.Value); ok {
				p.kind = planSecondaryEq
				p.sec = sec
				p.secRIDs = rids
				return p, nil
			}
		}
	}

	if p.lo != nil || p.hi != nil {
		p.kind = planPKRange
		return p, nil
	}
	p.kind = planFullScan
	return p, nil
}

// planAndScan picks an access path for the WHERE clause and streams
// matching rows to fn. fn returns (continue, error); scanning stops on
// either signal.
func (db *Database) planAndScan(t *table, where *sqlmini.Where, fn func(storage.RID, catalog.Row) (bool, error)) error {
	p, err := db.choosePlan(t, where)
	if err != nil {
		return err
	}

	emit := func(rid storage.RID) (bool, error) {
		rec, err := t.heap.Get(rid)
		if err != nil {
			return false, err
		}
		row, err := catalog.DecodeRow(t.schema, rec)
		if err != nil {
			return false, err
		}
		ok, err := matches(t.schema, row, where)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		return fn(rid, row)
	}

	switch p.kind {
	case planImpossible:
		return nil
	case planPKPoint:
		rid, found := t.pk.Get(*p.eq)
		if !found {
			return nil
		}
		_, err := emit(rid)
		return err
	case planSecondaryEq:
		for _, rid := range p.secRIDs {
			cont, err := emit(rid)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		return nil
	case planPKRange:
		var scanErr error
		t.pk.AscendRange(p.lo, p.hi, func(key int64, rid storage.RID) bool {
			cont, err := emit(rid)
			if err != nil {
				scanErr = err
				return false
			}
			return cont
		})
		return scanErr
	default:
		// Full scan: fan out across the parallel executor when the heap
		// is large enough; fn still sees rows in page order.
		if w := db.scanWorkersFor(t); w > 1 {
			return db.parallelFullScan(t, where, w, fn)
		}
		var scanErr error
		err := t.heap.Scan(func(rid storage.RID, rec []byte) bool {
			row, derr := catalog.DecodeRow(t.schema, rec)
			if derr != nil {
				scanErr = derr
				return false
			}
			ok, merr := matches(t.schema, row, where)
			if merr != nil {
				scanErr = merr
				return false
			}
			if !ok {
				return true
			}
			cont, ferr := fn(rid, append(catalog.Row(nil), row...))
			if ferr != nil {
				scanErr = ferr
				return false
			}
			return cont
		})
		if err != nil {
			return err
		}
		return scanErr
	}
}

// matches evaluates a conjunction against a row.
func matches(schema catalog.Schema, row catalog.Row, where *sqlmini.Where) (bool, error) {
	if where == nil {
		return true, nil
	}
	for _, c := range where.Conjuncts {
		ci := schema.ColumnIndex(c.Column)
		if ci < 0 {
			return false, fmt.Errorf("engine: unknown column %q in WHERE", c.Column)
		}
		cmp, err := compareValueLiteral(row[ci], c.Value)
		if err != nil {
			return false, err
		}
		var ok bool
		switch c.Op {
		case sqlmini.OpEq:
			ok = cmp == 0
		case sqlmini.OpNe:
			ok = cmp != 0
		case sqlmini.OpLt:
			ok = cmp < 0
		case sqlmini.OpLe:
			ok = cmp <= 0
		case sqlmini.OpGt:
			ok = cmp > 0
		case sqlmini.OpGe:
			ok = cmp >= 0
		default:
			return false, fmt.Errorf("engine: invalid operator %v", c.Op)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// compareValueLiteral compares a column value with a literal, coercing
// numerics to float when the types differ.
func compareValueLiteral(v catalog.Value, lit sqlmini.Literal) (int, error) {
	switch v.Type {
	case catalog.Int:
		switch lit.Kind {
		case sqlmini.IntLit:
			return cmpInt(v.Int, lit.Int), nil
		case sqlmini.FloatLit:
			return cmpFloat(float64(v.Int), lit.Float), nil
		}
	case catalog.Float:
		switch lit.Kind {
		case sqlmini.FloatLit:
			return cmpFloat(v.Float, lit.Float), nil
		case sqlmini.IntLit:
			return cmpFloat(v.Float, float64(lit.Int)), nil
		}
	case catalog.Text:
		if lit.Kind == sqlmini.StringLit {
			return strings.Compare(v.Str, lit.Str), nil
		}
	}
	return 0, fmt.Errorf("engine: cannot compare %v column with literal %v", v.Type, lit)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
