package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentMultiTable drives independent tables from separate
// goroutines; per-table serialization must not cross tables.
func TestConcurrentMultiTable(t *testing.T) {
	db := testDB(t)
	const tables = 4
	for i := 0; i < tables; i++ {
		mustExec(t, db, fmt.Sprintf(`CREATE TABLE t%d (id INT PRIMARY KEY, v INT)`, i))
	}
	var wg sync.WaitGroup
	for i := 0; i < tables; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				if _, err := db.Exec(fmt.Sprintf(`INSERT INTO t%d VALUES (%d, %d)`, i, j, j*10)); err != nil {
					t.Error(err)
					return
				}
			}
			for j := 0; j < 300; j += 7 {
				res, err := db.Exec(fmt.Sprintf(`SELECT v FROM t%d WHERE id = %d`, i, j))
				if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int != int64(j*10) {
					t.Errorf("t%d id %d: %v %v", i, j, res, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < tables; i++ {
		res := mustExec(t, db, fmt.Sprintf(`SELECT COUNT(*) FROM t%d`, i))
		if res.Rows[0][0].Int != 300 {
			t.Fatalf("t%d count = %v", i, res.Rows[0][0])
		}
	}
}

// TestConcurrentSameTableWriters serializes correctly on one table: all
// inserts land, no duplicates, index consistent with heap.
func TestConcurrentSameTableWriters(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	const workers = 8
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				id := w*per + j
				if _, err := db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, id)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	res := mustExec(t, db, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].Int != workers*per {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// Index path agrees with scan path on every key.
	for id := 0; id < workers*per; id += 97 {
		r := mustExec(t, db, fmt.Sprintf(`SELECT * FROM t WHERE id = %d`, id))
		if len(r.Rows) != 1 {
			t.Fatalf("id %d rows = %d", id, len(r.Rows))
		}
	}
}

// TestConcurrentReadersDuringWrites: readers must never observe decode
// errors or torn rows while a writer churns.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
	for i := 0; i < 100; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'init')`, i))
	}
	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(fmt.Sprintf(`UPDATE t SET v = 'gen-%d' WHERE id = %d`, i, i%100)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; i < 500; i++ {
				res, err := db.Exec(fmt.Sprintf(`SELECT v FROM t WHERE id = %d`, (r*131+i)%100))
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Rows) != 1 {
					t.Errorf("reader %d: %d rows", r, len(res.Rows))
					return
				}
			}
		}(r)
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}
