package engine

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/index"
	"repro/internal/sqlmini"
	"repro/internal/storage"
)

// secondary is a non-unique in-memory index over one column, rebuilt at
// load time like the primary key index. One of the three trees is
// populated according to the column type.
type secondary struct {
	def  catalog.IndexDef
	col  int
	typ  catalog.Type
	ints *index.BTree[int64, []storage.RID]
	flts *index.BTree[float64, []storage.RID]
	strs *index.BTree[string, []storage.RID]
}

func newSecondary(def catalog.IndexDef, schema catalog.Schema) (*secondary, error) {
	ci := schema.ColumnIndex(def.Column)
	if ci < 0 {
		return nil, fmt.Errorf("engine: index %q references unknown column %q", def.Name, def.Column)
	}
	s := &secondary{def: def, col: ci, typ: schema.Columns[ci].Type}
	switch s.typ {
	case catalog.Int:
		s.ints = index.NewBTree[int64, []storage.RID]()
	case catalog.Float:
		s.flts = index.NewBTree[float64, []storage.RID]()
	case catalog.Text:
		s.strs = index.NewBTree[string, []storage.RID]()
	default:
		return nil, fmt.Errorf("engine: index %q over invalid column type", def.Name)
	}
	return s, nil
}

// addRID appends rid under key, tolerating duplicates across distinct
// rids.
func addRID[K index.Ordered](t *index.BTree[K, []storage.RID], key K, rid storage.RID) {
	rids, _ := t.Get(key)
	t.Put(key, append(append([]storage.RID(nil), rids...), rid))
}

func removeRID[K index.Ordered](t *index.BTree[K, []storage.RID], key K, rid storage.RID) {
	rids, ok := t.Get(key)
	if !ok {
		return
	}
	out := rids[:0:0]
	for _, r := range rids {
		if r != rid {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		t.Delete(key)
		return
	}
	t.Put(key, out)
}

// insert indexes row at rid.
func (s *secondary) insert(row catalog.Row, rid storage.RID) {
	v := row[s.col]
	switch s.typ {
	case catalog.Int:
		addRID(s.ints, v.Int, rid)
	case catalog.Float:
		addRID(s.flts, v.Float, rid)
	case catalog.Text:
		addRID(s.strs, v.Str, rid)
	}
}

// remove unindexes row at rid.
func (s *secondary) remove(row catalog.Row, rid storage.RID) {
	v := row[s.col]
	switch s.typ {
	case catalog.Int:
		removeRID(s.ints, v.Int, rid)
	case catalog.Float:
		removeRID(s.flts, v.Float, rid)
	case catalog.Text:
		removeRID(s.strs, v.Str, rid)
	}
}

// lookupLiteral returns the rids whose column equals the literal, or
// ok=false if the literal's type cannot be an exact key for this index.
func (s *secondary) lookupLiteral(lit sqlmini.Literal) (rids []storage.RID, ok bool) {
	switch s.typ {
	case catalog.Int:
		if lit.Kind != sqlmini.IntLit {
			return nil, false
		}
		r, _ := s.ints.Get(lit.Int)
		return r, true
	case catalog.Float:
		switch lit.Kind {
		case sqlmini.FloatLit:
			r, _ := s.flts.Get(lit.Float)
			return r, true
		case sqlmini.IntLit:
			r, _ := s.flts.Get(float64(lit.Int))
			return r, true
		}
		return nil, false
	case catalog.Text:
		if lit.Kind != sqlmini.StringLit {
			return nil, false
		}
		r, _ := s.strs.Get(lit.Str)
		return r, true
	}
	return nil, false
}

// findSecondaryByCol returns the table's secondary index over the given
// schema column, if any. The planner resolves columns to indices before
// plan choice, so the lookup is an integer compare per index.
func (t *table) findSecondaryByCol(col int) *secondary {
	for _, s := range t.secondaries {
		if s.col == col {
			return s
		}
	}
	return nil
}

// createIndex defines and builds a secondary index over the table.
func (db *Database) execCreateIndex(s *sqlmini.CreateIndex) (*Result, error) {
	t, err := db.getTable(s.Table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, existing := range t.schema.Indexes {
		if strings.EqualFold(existing.Name, s.Name) {
			return nil, fmt.Errorf("engine: index %q already exists on %q", s.Name, s.Table)
		}
	}
	def := catalog.IndexDef{Name: s.Name, Column: s.Column}
	sec, err := newSecondary(def, t.schema)
	if err != nil {
		return nil, err
	}
	// Build from the heap.
	var scanErr error
	err = t.heap.Scan(func(rid storage.RID, rec []byte) bool {
		row, derr := catalog.DecodeRow(t.schema, rec)
		if derr != nil {
			scanErr = derr
			return false
		}
		sec.insert(row, rid)
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return nil, fmt.Errorf("engine: building index %q: %w", s.Name, err)
	}
	newSchema := t.schema
	newSchema.Indexes = append(append([]catalog.IndexDef(nil), t.schema.Indexes...), def)
	if err := db.cat.UpdateSchema(newSchema); err != nil {
		return nil, err
	}
	t.schema = newSchema
	t.secondaries = append(t.secondaries, sec)
	// The index changes plan choice; invalidate cached plans before the
	// exclusive lock drops so no stale template survives the DDL.
	db.bumpSchemaEpoch()
	return &Result{}, nil
}

// execDropIndex removes a secondary index.
func (db *Database) execDropIndex(s *sqlmini.DropIndex) (*Result, error) {
	t, err := db.getTable(s.Table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pos := -1
	for i, def := range t.schema.Indexes {
		if strings.EqualFold(def.Name, s.Name) {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("engine: index %q does not exist on %q", s.Name, s.Table)
	}
	newSchema := t.schema
	newSchema.Indexes = append(
		append([]catalog.IndexDef(nil), t.schema.Indexes[:pos]...),
		t.schema.Indexes[pos+1:]...)
	if err := db.cat.UpdateSchema(newSchema); err != nil {
		return nil, err
	}
	t.schema = newSchema
	t.secondaries = append(t.secondaries[:pos], t.secondaries[pos+1:]...)
	db.bumpSchemaEpoch()
	return &Result{}, nil
}
