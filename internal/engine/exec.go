package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlmini"
	"repro/internal/storage"
)

func (db *Database) execCreate(s *sqlmini.CreateTable) (*Result, error) {
	schema := catalog.Schema{Table: s.Table, Key: -1}
	for i, col := range s.Columns {
		typ, err := catalog.ParseType(col.TypeName)
		if err != nil {
			return nil, err
		}
		schema.Columns = append(schema.Columns, catalog.Column{Name: col.Name, Type: typ})
		if col.PrimaryKey {
			if schema.Key >= 0 {
				return nil, fmt.Errorf("engine: table %q has multiple primary keys", s.Table)
			}
			schema.Key = i
		}
	}
	if schema.Key < 0 {
		return nil, fmt.Errorf("engine: table %q needs an INT PRIMARY KEY column", s.Table)
	}
	if err := db.CreateTable(schema); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// literalToValue coerces a literal to the column type. INT literals widen
// to FLOAT columns; everything else must match exactly.
func literalToValue(lit sqlmini.Literal, col catalog.Column) (catalog.Value, error) {
	switch col.Type {
	case catalog.Int:
		if lit.Kind == sqlmini.IntLit {
			return catalog.IntValue(lit.Int), nil
		}
	case catalog.Float:
		switch lit.Kind {
		case sqlmini.FloatLit:
			return catalog.FloatValue(lit.Float), nil
		case sqlmini.IntLit:
			return catalog.FloatValue(float64(lit.Int)), nil
		}
	case catalog.Text:
		if lit.Kind == sqlmini.StringLit {
			return catalog.TextValue(lit.Str), nil
		}
	}
	return catalog.Value{}, fmt.Errorf("engine: literal %v does not fit column %q (%v)",
		lit, col.Name, col.Type)
}

func (db *Database) execInsert(s *sqlmini.Insert) (*Result, error) {
	t, err := db.getTable(s.Table)
	if err != nil {
		return nil, err
	}
	// Validate and encode every row before taking any lock.
	rows := make([]catalog.Row, 0, len(s.Rows))
	recs := make([][]byte, 0, len(s.Rows))
	keys := make([]int64, 0, len(s.Rows))
	for _, litRow := range s.Rows {
		if len(litRow) != len(t.schema.Columns) {
			return nil, fmt.Errorf("engine: INSERT has %d values, table %q has %d columns",
				len(litRow), s.Table, len(t.schema.Columns))
		}
		row := make(catalog.Row, len(litRow))
		for i, lit := range litRow {
			v, err := literalToValue(lit, t.schema.Columns[i])
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		rec, err := catalog.EncodeRow(t.schema, row)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		recs = append(recs, rec)
		keys = append(keys, row[t.schema.Key].Int)
	}
	if db.exclusiveWrites {
		return db.execInsertExclusive(t, rows, recs, keys)
	}

	run := func() (bool, error) {
		t.mu.RLock()
		defer t.mu.RUnlock()
		// Claim the keys so two statements inserting the same key cannot
		// both pass the index probe below; the claim also rejects a
		// duplicate within the statement itself.
		if busy, ok := t.claimKeys(keys); !ok {
			return false, fmt.Errorf("engine: duplicate primary key %d in table %q", busy, s.Table)
		}
		defer t.releaseKeys(keys)
		t.idxMu.RLock()
		for _, key := range keys {
			if _, exists := t.pk.Get(key); exists {
				t.idxMu.RUnlock()
				return false, fmt.Errorf("engine: duplicate primary key %d in table %q", key, s.Table)
			}
		}
		t.idxMu.RUnlock()

		ws := storage.NewWriteSet(t.pool)
		defer ws.Release()
		rids := make([]storage.RID, len(recs))
		for i, rec := range recs {
			rid, err := t.heap.InsertW(ws, rec)
			if err != nil {
				return false, err
			}
			rids[i] = rid
		}
		return t.commitWrite(ws, func() {
			for i, key := range keys {
				t.pk.Put(key, rids[i])
				for _, sec := range t.secondaries {
					sec.insert(rows[i], rids[i])
				}
			}
		})
	}
	cp, err := run()
	if err != nil {
		return nil, err
	}
	if cp {
		db.noteCheckpointErr(t.checkpoint())
	}
	return &Result{Affected: len(recs)}, nil
}

// execInsertExclusive is the WithExclusiveWrites insert path: the table
// lock excludes everything, pages mutate in place, and the WAL batch is
// rendered from the pool's dirty pages.
func (db *Database) execInsertExclusive(t *table, rows []catalog.Row, recs [][]byte, keys []int64) (*Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, rec := range recs {
		key := keys[i]
		if _, exists := t.pk.Get(key); exists {
			return nil, fmt.Errorf("engine: duplicate primary key %d in table %q", key, t.schema.Table)
		}
		rid, err := t.heap.Insert(rec)
		if err != nil {
			return nil, err
		}
		t.pk.Put(key, rid)
		for _, sec := range t.secondaries {
			sec.insert(rows[i], rid)
		}
	}
	if err := t.logMutation(); err != nil {
		return nil, err
	}
	return &Result{Affected: len(recs)}, nil
}

// selSpec is a fully resolved non-aggregate SELECT: conjuncts and
// projection bound to schema indices, the decode mask, and the
// ordering/limit parameters. execSelect builds one from the AST; the
// plan cache rebinds one from a cached template without re-parsing.
type selSpec struct {
	conj      []boundConj
	proj      []int
	cols      []string
	need      []bool
	orderCol  int // -1 when no ORDER BY
	orderDesc bool
	limit     int // -1 when absent
}

// needMask returns the decode mask covering the projection, the
// conjunct columns, the primary key, and extra (an ORDER BY column, or
// -1). It returns nil when every column is needed, which lets the
// decoder skip the mask check entirely.
func needMask(schema catalog.Schema, proj []int, conj []boundConj, extra int) []bool {
	need := make([]bool, len(schema.Columns))
	for _, ci := range proj {
		need[ci] = true
	}
	for _, c := range conj {
		need[c.col] = true
	}
	need[schema.Key] = true
	if extra >= 0 {
		need[extra] = true
	}
	for _, b := range need {
		if !b {
			return need
		}
	}
	return nil
}

func (db *Database) execSelect(s *sqlmini.Select) (*Result, error) {
	t, err := db.getTable(s.Table)
	if err != nil {
		return nil, err
	}
	// Shared lifecycle lock for the whole statement: concurrent readers
	// and (on the concurrent write path) writers proceed together; only
	// DDL, checkpoints, and cache teardown exclude it.
	t.mu.RLock()
	defer t.mu.RUnlock()
	conj, err := resolveWhere(t.schema, s.Where, nil)
	if err != nil {
		return nil, err
	}
	if s.Explain {
		t.idxMu.RLock()
		p := choosePlanBound(t, conj)
		t.idxMu.RUnlock()
		return &Result{
			Columns: []string{"plan"},
			Rows:    []catalog.Row{{catalog.TextValue(p.Describe(t))}},
		}, nil
	}
	if len(s.Aggregates) > 0 {
		return db.execAggregate(t, s, conj)
	}
	proj, err := projection(t.schema, s.Columns)
	if err != nil {
		return nil, err
	}
	spec := selSpec{
		conj:     conj,
		proj:     proj,
		cols:     projColumns(t.schema, proj),
		orderCol: -1,
		limit:    s.Limit,
	}
	if s.Order != nil {
		oi := t.schema.ColumnIndex(s.Order.Column)
		if oi < 0 {
			return nil, fmt.Errorf("engine: unknown column %q in ORDER BY", s.Order.Column)
		}
		spec.orderCol = oi
		spec.orderDesc = s.Order.Desc
	}
	spec.need = needMask(t.schema, proj, conj, spec.orderCol)
	return db.execSelectSpec(t, &spec)
}

// execSelectSpec runs a resolved non-aggregate SELECT. Callers hold the
// table read lock.
// resultBuf serves a small SELECT — the point-query hot path — from one
// allocation: the Result header, the first few row and key slots, and
// the first rows' projected values share a block, so a single-row answer
// costs one object instead of four. Larger results spill to ordinary
// appends; the inline arrays then ride along as slack in an allocation
// the caller holds anyway. The buffer cannot be pooled: the Result and
// everything it points into are handed to the caller for keeps.
type resultBuf struct {
	res  Result
	rows [2]catalog.Row
	keys [2]uint64
	vals [2]catalog.Value
	used int // vals slots consumed by earlier rows
}

// project copies the projected columns of row into fresh storage, carved
// from the inline value array while it lasts.
func (rb *resultBuf) project(proj []int, row catalog.Row) catalog.Row {
	var out catalog.Row
	if n := len(proj); len(rb.vals)-rb.used >= n {
		out = rb.vals[rb.used : rb.used+n : rb.used+n]
		rb.used += n
	} else {
		out = make(catalog.Row, n)
	}
	for i, ci := range proj {
		out[i] = row[ci]
	}
	return out
}

func (db *Database) execSelectSpec(t *table, spec *selSpec) (*Result, error) {
	rb := &resultBuf{}
	res := &rb.res
	res.Columns = spec.cols
	res.Rows = rb.rows[:0]
	res.Keys = rb.keys[:0]
	project := func(row catalog.Row) catalog.Row {
		return rb.project(spec.proj, row)
	}

	if spec.orderCol >= 0 {
		oi := spec.orderCol
		// Materialize, sort, then project and apply the limit.
		var rows []catalog.Row
		err := db.planAndScanBound(t, spec.conj, spec.need, func(_ storage.RID, row catalog.Row) (bool, error) {
			rows = append(rows, append(catalog.Row(nil), row...))
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		sort.SliceStable(rows, func(a, b int) bool {
			c, _ := rows[a][oi].Compare(rows[b][oi])
			if spec.orderDesc {
				return c > 0
			}
			return c < 0
		})
		for _, row := range rows {
			if spec.limit >= 0 && len(res.Rows) >= spec.limit {
				break
			}
			res.Rows = append(res.Rows, project(row))
			res.Keys = append(res.Keys, uint64(row[t.schema.Key].Int))
		}
		return res, nil
	}

	limit := spec.limit
	err := db.planAndScanBound(t, spec.conj, spec.need, func(rid storage.RID, row catalog.Row) (bool, error) {
		res.Rows = append(res.Rows, project(row))
		res.Keys = append(res.Keys, uint64(row[t.schema.Key].Int))
		if limit >= 0 && len(res.Rows) >= limit {
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// aggAccum accumulates one aggregate function over a subset of the
// matching rows. Accumulators are mergeable so the parallel scan
// executor can fold per-chunk partials into the final answer in page
// order (deterministic float sums for a given heap layout).
type aggAccum struct {
	col   int // -1 for COUNT(*)
	count int64
	sum   float64
	min   catalog.Value
	max   catalog.Value
	seen  bool
}

// observe folds one matching row into the accumulator.
func (a *aggAccum) observe(row catalog.Row) {
	a.count++
	if a.col < 0 {
		return
	}
	v := row[a.col]
	switch v.Type {
	case catalog.Int:
		a.sum += float64(v.Int)
	case catalog.Float:
		a.sum += v.Float
	}
	if !a.seen {
		a.min, a.max, a.seen = v, v, true
		return
	}
	if c, _ := v.Compare(a.min); c < 0 {
		a.min = v
	}
	if c, _ := v.Compare(a.max); c > 0 {
		a.max = v
	}
}

// merge folds another accumulator (over later rows) into this one.
func (a *aggAccum) merge(o aggAccum) {
	a.count += o.count
	a.sum += o.sum
	if !o.seen {
		return
	}
	if !a.seen {
		a.min, a.max, a.seen = o.min, o.max, true
		return
	}
	if c, _ := o.min.Compare(a.min); c < 0 {
		a.min = o.min
	}
	if c, _ := o.max.Compare(a.max); c > 0 {
		a.max = o.max
	}
}

// newAggAccums resolves the aggregate list against the schema, returning
// one accumulator per aggregate plus the result column names.
func newAggAccums(t *table, aggs []sqlmini.Aggregate) ([]aggAccum, []string, error) {
	accs := make([]aggAccum, len(aggs))
	cols := make([]string, len(aggs))
	for i, agg := range aggs {
		accs[i].col = -1
		if agg.Column != "" {
			ci := t.schema.ColumnIndex(agg.Column)
			if ci < 0 {
				return nil, nil, fmt.Errorf("engine: unknown column %q in %v", agg.Column, agg.Func)
			}
			colType := t.schema.Columns[ci].Type
			if (agg.Func == sqlmini.AggSum || agg.Func == sqlmini.AggAvg) && colType == catalog.Text {
				return nil, nil, fmt.Errorf("engine: %v over TEXT column %q", agg.Func, agg.Column)
			}
			accs[i].col = ci
			cols[i] = fmt.Sprintf("%s(%s)", strings.ToLower(agg.Func.String()), agg.Column)
		} else {
			cols[i] = "count(*)"
		}
	}
	return accs, cols, nil
}

// execAggregate evaluates COUNT/SUM/AVG/MIN/MAX over the matching rows,
// returning one summary row. Keys lists every tuple included in the
// aggregate: the delay defense treats an aggregate as "the aggregate of
// multiple simple queries" (§2.1), so an adversary cannot cheaply walk
// the database through SUMs. Full scans fan out across the parallel
// executor, each worker folding rows into private accumulators that are
// merged in page order. Callers hold the table read lock.
func (db *Database) execAggregate(t *table, s *sqlmini.Select, conj []boundConj) (*Result, error) {
	accs, cols, err := newAggAccums(t, s.Aggregates)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols}

	// Decode mask: the key, the filter columns, and the aggregated
	// columns; COUNT(*) aggregates contribute nothing.
	need := make([]bool, len(t.schema.Columns))
	need[t.schema.Key] = true
	for _, c := range conj {
		need[c.col] = true
	}
	for i := range accs {
		if accs[i].col >= 0 {
			need[accs[i].col] = true
		}
	}
	full := true
	for _, b := range need {
		full = full && b
	}
	if full {
		need = nil
	}

	t.idxMu.RLock()
	p := choosePlanBound(t, conj)
	t.idxMu.RUnlock()
	if w := db.scanWorkersFor(t); p.kind == planFullScan && w > 1 {
		snap := t.pool.BeginSnapshot()
		err = db.parallelAggregate(t, conj, need, w, snap, accs, res)
		t.pool.EndSnapshot(snap)
	} else {
		err = db.planAndScanBound(t, conj, need, func(_ storage.RID, row catalog.Row) (bool, error) {
			res.Keys = append(res.Keys, uint64(row[t.schema.Key].Int))
			for i := range accs {
				accs[i].observe(row)
			}
			return true, nil
		})
	}
	if err != nil {
		return nil, err
	}

	out := make(catalog.Row, len(s.Aggregates))
	for i, agg := range s.Aggregates {
		a := accs[i]
		switch agg.Func {
		case sqlmini.AggCount:
			out[i] = catalog.IntValue(a.count)
		case sqlmini.AggSum:
			out[i] = catalog.FloatValue(a.sum)
		case sqlmini.AggAvg:
			if a.count == 0 {
				out[i] = catalog.FloatValue(0)
			} else {
				out[i] = catalog.FloatValue(a.sum / float64(a.count))
			}
		case sqlmini.AggMin:
			if !a.seen {
				out[i] = catalog.IntValue(0)
			} else {
				out[i] = a.min
			}
		case sqlmini.AggMax:
			if !a.seen {
				out[i] = catalog.IntValue(0)
			} else {
				out[i] = a.max
			}
		default:
			return nil, fmt.Errorf("engine: unsupported aggregate %v", agg.Func)
		}
	}
	res.Rows = append(res.Rows, out)
	return res, nil
}

// setOp is one resolved SET assignment of an UPDATE.
type setOp struct {
	col int
	val catalog.Value
}

// ridMatch is a row a mutation's scan phase matched: where it was and
// the key it had when the snapshot saw it.
type ridMatch struct {
	rid storage.RID
	key int64
}

// sortMatches orders matched rows by (page, slot). A write set blocks
// on a latch only above its held high-water mark (see WriteSet), so
// latching matches in ascending order lets the common, uncontended
// statement wait for every row instead of skipping.
func sortMatches(matches []ridMatch) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].rid.Page != matches[j].rid.Page {
			return matches[i].rid.Page < matches[j].rid.Page
		}
		return matches[i].rid.Slot < matches[j].rid.Slot
	})
}

// lockRow latches the page of a matched row and revalidates the match
// against the latched (committed, now immutable to others) state: the
// snapshot that produced the match is in the past, so the row may have
// been updated, moved, or deleted since. Returns the row's current RID
// and decoded image, with ok=false when the row vanished, no longer
// matches the conjuncts, or sits on a page whose latch is contended and
// too low-numbered to block on (the statement then skips it —
// read-committed semantics).
// If the slot no longer holds the key, the primary key is chased once:
// an in-place update relocating the row (page overflow) is the one
// mover that leaves the key live elsewhere.
func (t *table) lockRow(ws *storage.WriteSet, rid storage.RID, key int64, conj []boundConj) (storage.RID, catalog.Row, bool, error) {
	// Acquire blocks only when rid.Page is above every page already
	// held; after a chase parked the set on a high page, lower-numbered
	// matches degrade to try-and-skip rather than risk a latch cycle.
	pg, ok, err := ws.Acquire(rid.Page)
	if err != nil || !ok {
		return rid, nil, false, err
	}
	for chased := false; ; chased = true {
		if rec, rerr := pg.Record(rid.Slot); rerr == nil {
			row, derr := catalog.DecodeRow(t.schema, rec)
			if derr != nil {
				return rid, nil, false, derr
			}
			if row[t.schema.Key].Int == key {
				ok, merr := matchesBound(row, conj)
				return rid, row, ok, merr
			}
		}
		if chased {
			return rid, nil, false, nil
		}
		t.idxMu.RLock()
		nrid, found := t.pk.Get(key)
		t.idxMu.RUnlock()
		if !found || nrid == rid {
			return rid, nil, false, nil
		}
		// The chase target is an arbitrary page; Acquire itself decides
		// whether blocking is safe (only above the held high-water mark)
		// and otherwise tries. Contended → skip the row.
		npg, ok, err := ws.Acquire(nrid.Page)
		if err != nil || !ok {
			return rid, nil, false, err
		}
		rid, pg = nrid, npg
	}
}

func (db *Database) execUpdate(s *sqlmini.Update) (*Result, error) {
	t, err := db.getTable(s.Table)
	if err != nil {
		return nil, err
	}
	// Resolve SET columns up front.
	var sets []setOp
	for _, a := range s.Set {
		ci := t.schema.ColumnIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("engine: unknown column %q in UPDATE", a.Column)
		}
		v, err := literalToValue(a.Value, t.schema.Columns[ci])
		if err != nil {
			return nil, err
		}
		sets = append(sets, setOp{col: ci, val: v})
	}
	if db.exclusiveWrites {
		return db.execUpdateExclusive(t, s, sets)
	}

	conj, err := resolveWhere(t.schema, s.Where, nil)
	if err != nil {
		return nil, err
	}
	type updOp struct {
		oldRow, newRow catalog.Row
		oldRID, newRID storage.RID
		oldKey, newKey int64
	}
	run := func() (*Result, bool, error) {
		t.mu.RLock()
		defer t.mu.RUnlock()
		// Collect matches from a snapshot scan, then latch and revalidate
		// each: mutating the heap during its own scan would risk visiting
		// relocated rows twice, and the snapshot rows are stale the moment
		// another statement commits.
		var matches []ridMatch
		err := db.planAndScanBound(t, conj, nil, func(rid storage.RID, row catalog.Row) (bool, error) {
			matches = append(matches, ridMatch{rid, row[t.schema.Key].Int})
			return true, nil
		})
		if err != nil {
			return nil, false, err
		}
		sortMatches(matches)
		ws := storage.NewWriteSet(t.pool)
		defer ws.Release()
		var claimed []int64
		defer func() { t.releaseKeys(claimed) }()
		var pend []updOp
		for _, m := range matches {
			rid, row, ok, err := t.lockRow(ws, m.rid, m.key, conj)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
			newRow := append(catalog.Row(nil), row...)
			for _, so := range sets {
				newRow[so.col] = so.val
			}
			newKey := newRow[t.schema.Key].Int
			if newKey != m.key {
				// Key change: claim the new key against concurrent inserts
				// (and against this statement funneling two rows onto one
				// key), then probe the committed index.
				if _, ok := t.claimKeys([]int64{newKey}); !ok {
					return nil, false, fmt.Errorf("engine: UPDATE would duplicate primary key %d", newKey)
				}
				claimed = append(claimed, newKey)
				t.idxMu.RLock()
				_, exists := t.pk.Get(newKey)
				t.idxMu.RUnlock()
				if exists {
					return nil, false, fmt.Errorf("engine: UPDATE would duplicate primary key %d", newKey)
				}
			}
			rec, err := catalog.EncodeRow(t.schema, newRow)
			if err != nil {
				return nil, false, err
			}
			nrid, err := t.heap.UpdateW(ws, rid, rec)
			if err != nil {
				return nil, false, err
			}
			pend = append(pend, updOp{row, newRow, rid, nrid, m.key, newKey})
		}
		cp, err := t.commitWrite(ws, func() {
			for _, op := range pend {
				if op.newKey != op.oldKey {
					t.pk.Delete(op.oldKey)
				}
				t.pk.Put(op.newKey, op.newRID)
				for _, sec := range t.secondaries {
					sec.remove(op.oldRow, op.oldRID)
					sec.insert(op.newRow, op.newRID)
				}
			}
		})
		if err != nil {
			return nil, false, err
		}
		res := &Result{Affected: len(pend)}
		for _, op := range pend {
			res.Keys = append(res.Keys, uint64(op.oldKey))
		}
		return res, cp, nil
	}
	res, cp, err := run()
	if err != nil {
		return nil, err
	}
	if cp {
		db.noteCheckpointErr(t.checkpoint())
	}
	return res, nil
}

// execUpdateExclusive is the WithExclusiveWrites update path.
func (db *Database) execUpdateExclusive(t *table, s *sqlmini.Update, sets []setOp) (*Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Collect matches first: mutating the heap during its own scan would
	// risk visiting relocated rows twice.
	type match struct {
		rid storage.RID
		row catalog.Row
	}
	var matches []match
	err := db.planAndScan(t, s.Where, func(rid storage.RID, row catalog.Row) (bool, error) {
		// The scan reuses its decode buffer; retained rows must be copies.
		matches = append(matches, match{rid, append(catalog.Row(nil), row...)})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, m := range matches {
		oldKey := m.row[t.schema.Key].Int
		newRow := append(catalog.Row(nil), m.row...)
		for _, so := range sets {
			newRow[so.col] = so.val
		}
		newKey := newRow[t.schema.Key].Int
		if newKey != oldKey {
			if _, exists := t.pk.Get(newKey); exists {
				return nil, fmt.Errorf("engine: UPDATE would duplicate primary key %d", newKey)
			}
		}
		rec, err := catalog.EncodeRow(t.schema, newRow)
		if err != nil {
			return nil, err
		}
		nrid, err := t.heap.Update(m.rid, rec)
		if err != nil {
			return nil, err
		}
		if newKey != oldKey {
			t.pk.Delete(oldKey)
		}
		t.pk.Put(newKey, nrid)
		for _, sec := range t.secondaries {
			sec.remove(m.row, m.rid)
			sec.insert(newRow, nrid)
		}
	}
	if err := t.logMutation(); err != nil {
		return nil, err
	}
	res := &Result{Affected: len(matches)}
	for _, m := range matches {
		res.Keys = append(res.Keys, uint64(m.row[t.schema.Key].Int))
	}
	return res, nil
}

func (db *Database) execDelete(s *sqlmini.Delete) (*Result, error) {
	t, err := db.getTable(s.Table)
	if err != nil {
		return nil, err
	}
	if db.exclusiveWrites {
		return db.execDeleteExclusive(t, s)
	}
	conj, err := resolveWhere(t.schema, s.Where, nil)
	if err != nil {
		return nil, err
	}
	type delOp struct {
		row catalog.Row
		rid storage.RID
		key int64
	}
	run := func() (*Result, bool, error) {
		t.mu.RLock()
		defer t.mu.RUnlock()
		var matches []ridMatch
		err := db.planAndScanBound(t, conj, nil, func(rid storage.RID, row catalog.Row) (bool, error) {
			matches = append(matches, ridMatch{rid, row[t.schema.Key].Int})
			return true, nil
		})
		if err != nil {
			return nil, false, err
		}
		sortMatches(matches)
		ws := storage.NewWriteSet(t.pool)
		defer ws.Release()
		var pend []delOp
		for _, m := range matches {
			rid, row, ok, err := t.lockRow(ws, m.rid, m.key, conj)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
			if err := t.heap.DeleteW(ws, rid); err != nil {
				return nil, false, err
			}
			pend = append(pend, delOp{row, rid, m.key})
		}
		cp, err := t.commitWrite(ws, func() {
			for _, op := range pend {
				t.pk.Delete(op.key)
				for _, sec := range t.secondaries {
					sec.remove(op.row, op.rid)
				}
			}
		})
		if err != nil {
			return nil, false, err
		}
		res := &Result{Affected: len(pend)}
		for _, op := range pend {
			res.Keys = append(res.Keys, uint64(op.key))
		}
		return res, cp, nil
	}
	res, cp, err := run()
	if err != nil {
		return nil, err
	}
	if cp {
		db.noteCheckpointErr(t.checkpoint())
	}
	return res, nil
}

// execDeleteExclusive is the WithExclusiveWrites delete path.
func (db *Database) execDeleteExclusive(t *table, s *sqlmini.Delete) (*Result, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	type match struct {
		rid storage.RID
		key int64
		row catalog.Row
	}
	var matches []match
	err := db.planAndScan(t, s.Where, func(rid storage.RID, row catalog.Row) (bool, error) {
		// The scan reuses its decode buffer; retained rows must be copies.
		matches = append(matches, match{rid, row[t.schema.Key].Int, append(catalog.Row(nil), row...)})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Affected: len(matches)}
	for _, m := range matches {
		if err := t.heap.Delete(m.rid); err != nil {
			return nil, err
		}
		t.pk.Delete(m.key)
		for _, sec := range t.secondaries {
			sec.remove(m.row, m.rid)
		}
		res.Keys = append(res.Keys, uint64(m.key))
	}
	if err := t.logMutation(); err != nil {
		return nil, err
	}
	return res, nil
}

// projection resolves a column name list to schema indices; nil means *.
func projection(schema catalog.Schema, cols []string) ([]int, error) {
	if cols == nil {
		out := make([]int, len(schema.Columns))
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	out := make([]int, 0, len(cols))
	for _, name := range cols {
		ci := schema.ColumnIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("engine: unknown column %q", name)
		}
		out = append(out, ci)
	}
	return out, nil
}

func projColumns(schema catalog.Schema, proj []int) []string {
	out := make([]string, len(proj))
	for i, ci := range proj {
		out[i] = schema.Columns[ci].Name
	}
	return out
}
