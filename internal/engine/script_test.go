package engine

import (
	"strings"
	"testing"
)

func TestExecScript(t *testing.T) {
	db := testDB(t)
	results, err := db.ExecScript(`
		CREATE TABLE t (id INT PRIMARY KEY, v TEXT);
		INSERT INTO t VALUES (1, 'a'), (2, 'b');
		CREATE INDEX by_v ON t (v);
		SELECT * FROM t WHERE v = 'b';
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if results[1].Affected != 2 {
		t.Fatalf("insert affected = %d", results[1].Affected)
	}
	if len(results[3].Rows) != 1 || results[3].Rows[0][0].Int != 2 {
		t.Fatalf("select rows = %v", results[3].Rows)
	}
}

func TestExecScriptStraySemicolonsAndNoTrailing(t *testing.T) {
	db := testDB(t)
	results, err := db.ExecScript(`;;CREATE TABLE t (id INT PRIMARY KEY);; INSERT INTO t VALUES (1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
}

func TestExecScriptEmpty(t *testing.T) {
	db := testDB(t)
	results, err := db.ExecScript("  \n ; ; ")
	if err != nil || len(results) != 0 {
		t.Fatalf("%v, %v", results, err)
	}
}

func TestExecScriptStopsAtFirstError(t *testing.T) {
	db := testDB(t)
	results, err := db.ExecScript(`
		CREATE TABLE t (id INT PRIMARY KEY);
		INSERT INTO t VALUES (1);
		INSERT INTO t VALUES (1);
		INSERT INTO t VALUES (2);
	`)
	if err == nil {
		t.Fatal("duplicate key in script accepted")
	}
	if !strings.Contains(err.Error(), "statement 3") {
		t.Fatalf("err = %v", err)
	}
	// First two ran; the fourth did not.
	if len(results) != 2 {
		t.Fatalf("partial results = %d", len(results))
	}
	res := mustExec(t, db, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].Int != 1 {
		t.Fatalf("rows after failed script = %v", res.Rows[0][0])
	}
}

func TestExecScriptParseErrorRunsNothing(t *testing.T) {
	db := testDB(t)
	_, err := db.ExecScript(`CREATE TABLE t (id INT PRIMARY KEY); NONSENSE;`)
	if err == nil {
		t.Fatal("garbage accepted")
	}
	// Parse failure is detected before execution: table must not exist.
	if _, err := db.Exec(`SELECT * FROM t`); err == nil {
		t.Fatal("script partially executed despite parse error")
	}
}

func TestExecScriptMissingSeparator(t *testing.T) {
	db := testDB(t)
	if _, err := db.ExecScript(`SELECT * FROM t SELECT * FROM t`); err == nil {
		t.Fatal("missing semicolon accepted")
	}
}
