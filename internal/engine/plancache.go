// Prepared-statement cache: the SQL front end's answer to the profile
// that showed parse+plan dominating the point-query hot path. A SELECT
// is normalized to a parameterized key (literals → '?', case and
// whitespace canonicalized; see sqlmini.Normalize), and the cache maps
// that key to a plan template — conjunct columns and operators resolved
// against the schema, projection and decode mask precomputed. A hit
// skips the lexer, the parser, and all name resolution: execution just
// rebinds the literal parameters into the template and runs the shared
// SELECT executor.
//
// Correctness rules:
//
//   - Entries are stamped with the schema epoch they were built under.
//     Every DDL (CREATE/DROP TABLE, CREATE/DROP INDEX) bumps the epoch
//     inside its exclusive section and purges the cache, and execution
//     re-checks the stamp under the table read lock, so a cached plan is
//     never served across a schema change.
//   - Anything value-dependent is re-derived per execution: predicate
//     contradiction, access-path choice, and secondary-index probes all
//     happen at bind time via choosePlanBound.
//   - Any abnormality at bind or execution time (table gone, stale
//     epoch, parameter shape the parser would have rejected) falls back
//     to the full parse path, which reproduces the exact uncached
//     behavior, including error text and timing.
//   - Statement shapes the template cannot express (EXPLAIN,
//     aggregates, ORDER BY) are remembered as uncacheable so repeats
//     skip the template-build attempt but still parse and execute
//     normally. Semantic errors (unknown table/column) are never
//     cached; they surface at Exec through the parse path, preserving
//     the error-timing behavior the shield's failure accounting relies
//     on.
package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/sqlmini"
)

// StmtKind classifies a prepared statement for callers that dispatch on
// statement type before executing (the shield blocks EXPLAIN, gates
// writes, and tombstones DELETEs).
type StmtKind int

const (
	KindOther StmtKind = iota
	KindSelect
	KindExplain
	KindDelete
)

func classify(stmt sqlmini.Statement) StmtKind {
	switch s := stmt.(type) {
	case *sqlmini.Select:
		if s.Explain {
			return KindExplain
		}
		return KindSelect
	case *sqlmini.Delete:
		return KindDelete
	default:
		return KindOther
	}
}

// conjTemplate is one WHERE conjunct with its literal stripped: the
// column is resolved, the operator fixed, and the value supplied at
// bind time from the normalized parameter list (conjunct i binds
// parameter i — the parser emits conjuncts in token order, which is the
// order Normalize collects literals in).
type conjTemplate struct {
	col int
	op  sqlmini.CmpOp
}

// planEntry is a cached plan template for one normalized SELECT shape.
// Entries are immutable after publication; slices are shared with every
// execution that binds them.
type planEntry struct {
	epoch       uint64
	table       string
	uncacheable bool // shape the template can't express; parse instead
	nparams     int
	conj        []conjTemplate
	hasLimit    bool // last parameter is the LIMIT literal
	proj        []int
	cols        []string
	need        []bool
}

// planCache maps normalized SQL keys to plan entries. Reads are
// lock-free: the map is copy-on-write behind an atomic pointer, so the
// hot path is one atomic load and one map probe. Writes (store, purge)
// serialize on mu and are rare once the workload's shapes have warmed.
type planCache struct {
	cap           int
	mu            sync.Mutex
	m             atomic.Pointer[map[string]*planEntry]
	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

func newPlanCache(capEntries int) *planCache {
	pc := &planCache{cap: capEntries}
	m := make(map[string]*planEntry)
	pc.m.Store(&m)
	return pc
}

// lookup returns the entry for key if it exists and is current. A stale
// entry (stored by a build that raced a DDL's purge) counts as an
// invalidation and is dropped.
func (pc *planCache) lookup(key []byte, epoch uint64) *planEntry {
	m := *pc.m.Load()
	e, ok := m[string(key)]
	if !ok {
		pc.misses.Add(1)
		return nil
	}
	if e.epoch != epoch {
		pc.remove(string(key), e)
		pc.misses.Add(1)
		return nil
	}
	pc.hits.Add(1)
	return e
}

// store publishes an entry under key unless a current one is already
// there. At capacity, new shapes simply don't cache (DESIGN §13): an
// adversarial flood of distinct shapes must not evict the legitimate
// workload's warm templates, and the delay defense already prices the
// flood itself. Entries stamped older than the incoming one are stale
// survivors of a racing purge and are dropped during the copy; newer
// ones are kept — a store that raced a DDL must not wipe the freshly
// rebuilt cache (lookup would reject the stale insert anyway).
func (pc *planCache) store(key []byte, e *planEntry) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	old := *pc.m.Load()
	if prev, ok := old[string(key)]; ok && prev.epoch >= e.epoch {
		return
	}
	next := make(map[string]*planEntry, len(old)+1)
	for k, v := range old {
		if v.epoch < e.epoch {
			continue // stale survivors of a racing purge: drop
		}
		next[k] = v
	}
	if _, replacing := next[string(key)]; !replacing && len(next) >= pc.cap {
		if len(next) != len(old) {
			pc.m.Store(&next) // still publish the stale-entry cleanup
		}
		return
	}
	next[string(key)] = e
	pc.m.Store(&next)
}

// remove drops a stale entry observed by lookup.
func (pc *planCache) remove(key string, stale *planEntry) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	old := *pc.m.Load()
	if old[key] != stale {
		return // already replaced or purged
	}
	next := make(map[string]*planEntry, len(old))
	for k, v := range old {
		if k != key {
			next[k] = v
		}
	}
	pc.m.Store(&next)
	pc.invalidations.Add(1)
}

// purge drops every entry (DDL invalidation).
func (pc *planCache) purge() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	old := *pc.m.Load()
	if n := len(old); n > 0 {
		pc.invalidations.Add(int64(n))
	}
	next := make(map[string]*planEntry)
	pc.m.Store(&next)
}

func (pc *planCache) stats() (hits, misses, invalidations int64, entries int) {
	return pc.hits.Load(), pc.misses.Load(), pc.invalidations.Load(), len(*pc.m.Load())
}

// Prepared is one statement readied for execution. Instances are pooled
// and carry the normalization and binding scratch across uses; callers
// must Release exactly once when done with the result of Prepare.
type Prepared struct {
	db    *Database
	kind  StmtKind
	sql   string
	stmt  sqlmini.Statement // parse-path statement (miss or uncacheable)
	entry *planEntry        // cached template (hit path)

	params []sqlmini.Literal // normalized literals, alias into norm
	norm   sqlmini.NormScratch
	conj   []boundConj
	spec   selSpec
}

var preparedPool = sync.Pool{New: func() any { return new(Prepared) }}

// Prepare readies one SQL statement for execution. Cacheable SELECT
// shapes are served from (and on miss, added to) the plan cache;
// everything else parses. Only lexical errors surface here — semantic
// errors (unknown table or column) surface at Exec, exactly as the
// one-shot path reports them.
func (db *Database) Prepare(sql string) (*Prepared, error) {
	p := preparedPool.Get().(*Prepared)
	p.db = db
	p.sql = sql
	p.stmt = nil
	p.entry = nil
	p.params = nil

	if db.planCache == nil || !sqlmini.HasPrefixKeyword(sql, "SELECT") {
		return p.prepareParsed()
	}
	key, params, err := sqlmini.Normalize(sql, &p.norm)
	if err != nil {
		// Lexical error: Parse would fail identically (same lexer).
		p.Release()
		return nil, err
	}
	epoch := db.schemaEpoch.Load()
	if e := db.planCache.lookup(key, epoch); e != nil {
		if e.uncacheable {
			return p.prepareParsed()
		}
		p.entry = e
		p.params = params
		p.kind = KindSelect
		return p, nil
	}
	// Miss: parse, then try to publish a template for the next time.
	// This execution runs from the parsed statement either way.
	if _, err := p.prepareParsed(); err != nil {
		return nil, err
	}
	if sel, ok := p.stmt.(*sqlmini.Select); ok {
		// Skip the store when a DDL has already moved the epoch on: the
		// entry would be dead on arrival (lookup rejects stale stamps),
		// and uncacheable markers bypass buildPlanEntry's own under-lock
		// epoch re-check.
		if e := db.buildPlanEntry(sel, params, epoch); e != nil && db.schemaEpoch.Load() == epoch {
			db.planCache.store(key, e)
		}
	}
	return p, nil
}

// prepareParsed fills p through the parser.
func (p *Prepared) prepareParsed() (*Prepared, error) {
	stmt, err := sqlmini.Parse(p.sql)
	if err != nil {
		p.Release()
		return nil, err
	}
	p.stmt = stmt
	p.kind = classify(stmt)
	return p, nil
}

// buildPlanEntry resolves sel into a plan template, or an uncacheable
// marker for shapes the template cannot express. It returns nil when
// nothing should be cached (semantic errors, or a parameter layout that
// does not line up with the normalized literal list).
func (db *Database) buildPlanEntry(sel *sqlmini.Select, params []sqlmini.Literal, epoch uint64) *planEntry {
	if sel.Explain || len(sel.Aggregates) > 0 || sel.Order != nil {
		return &planEntry{epoch: epoch, uncacheable: true}
	}
	t, err := db.getTable(sel.Table)
	if err != nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Re-read the epoch under the lock: if a DDL slipped between the
	// caller's read and here, the entry must carry the newer stamp or
	// not exist at all. Stamping with the caller's (older) epoch is also
	// safe — lookup would reject it — but building against a schema we
	// hold the read lock on deserves the matching stamp.
	if db.schemaEpoch.Load() != epoch {
		return nil
	}
	var conj []conjTemplate
	if sel.Where != nil {
		conj = make([]conjTemplate, 0, len(sel.Where.Conjuncts))
		for _, c := range sel.Where.Conjuncts {
			ci := t.schema.ColumnIndex(c.Column)
			if ci < 0 {
				return nil // semantic error: never cached
			}
			conj = append(conj, conjTemplate{col: ci, op: c.Op})
		}
	}
	hasLimit := sel.Limit != -1
	nparams := len(conj)
	if hasLimit {
		nparams++
	}
	// Self-check the conjunct-i ↔ parameter-i correspondence against the
	// literals the parser actually bound. Any mismatch means the
	// normalizer and parser disagree about this statement; do not cache.
	if nparams != len(params) {
		return nil
	}
	if sel.Where != nil {
		for i, c := range sel.Where.Conjuncts {
			if params[i] != c.Value {
				return nil
			}
		}
	}
	if hasLimit {
		want := sqlmini.Literal{Kind: sqlmini.IntLit, Int: int64(sel.Limit)}
		if params[len(params)-1] != want {
			return nil
		}
	}
	proj, err := projection(t.schema, sel.Columns)
	if err != nil {
		return nil
	}
	bound := make([]boundConj, len(conj))
	for i, ct := range conj {
		bound[i] = boundConj{col: ct.col, op: ct.op}
	}
	return &planEntry{
		epoch:    epoch,
		table:    sel.Table,
		nparams:  nparams,
		conj:     conj,
		hasLimit: hasLimit,
		proj:     proj,
		cols:     projColumns(t.schema, proj),
		need:     needMask(t.schema, proj, bound, -1),
	}
}

// Kind reports the statement's classification. Valid until Release.
func (p *Prepared) Kind() StmtKind { return p.kind }

// Exec runs the prepared statement. It may be called more than once
// before Release; cached executions rebind the parameters each time.
func (p *Prepared) Exec() (*Result, error) {
	if p.entry != nil {
		res, ok, err := p.db.execCachedSelect(p)
		if ok {
			return res, err
		}
		// The cached template no longer applies (DDL raced, or a
		// parameter the parser would reject): take the parse path, which
		// reproduces exact uncached behavior.
		if _, err := p.prepareParsedKeep(); err != nil {
			return nil, err
		}
	}
	return p.db.ExecStmt(p.stmt)
}

// prepareParsedKeep is prepareParsed without the Release-on-error (Exec
// callers still own p and must Release it themselves).
func (p *Prepared) prepareParsedKeep() (*Prepared, error) {
	stmt, err := sqlmini.Parse(p.sql)
	if err != nil {
		return nil, err
	}
	p.stmt = stmt
	p.kind = classify(stmt)
	p.entry = nil
	return p, nil
}

// execCachedSelect binds p's parameters into its cached template and
// runs it. ok=false means the caller must fall back to the parse path.
func (db *Database) execCachedSelect(p *Prepared) (res *Result, ok bool, err error) {
	e := p.entry
	if len(p.params) != e.nparams {
		return nil, false, nil
	}
	t, terr := db.getTable(e.table)
	if terr != nil {
		return nil, false, nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	// DDL holds the locks we just took shared, so this read is ordered
	// against every bump: a stale template cannot slip through.
	if db.schemaEpoch.Load() != e.epoch {
		return nil, false, nil
	}
	conj := p.conj[:0]
	for i, ct := range e.conj {
		conj = append(conj, boundConj{col: ct.col, op: ct.op, val: p.params[i]})
	}
	p.conj = conj
	limit := -1
	if e.hasLimit {
		lp := p.params[len(p.params)-1]
		if lp.Kind != sqlmini.IntLit || lp.Int < 0 {
			return nil, false, nil // parser rejects this LIMIT; let it
		}
		limit = int(lp.Int)
	}
	p.spec = selSpec{
		conj:     conj,
		proj:     e.proj,
		cols:     e.cols,
		need:     e.need,
		orderCol: -1,
		limit:    limit,
	}
	res, err = db.execSelectSpec(t, &p.spec)
	return res, true, err
}

// Release returns p to the pool. The Prepared must not be used after;
// Results it produced remain valid.
func (p *Prepared) Release() {
	if p == nil {
		return
	}
	p.db = nil
	p.kind = KindOther
	p.sql = ""
	p.stmt = nil
	p.entry = nil
	p.params = nil
	p.spec = selSpec{}
	preparedPool.Put(p)
}
