package engine

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// CountStore persists per-tuple access counts in a dedicated table of the
// database itself, implementing counters.Store. This is the paper's §2.3
// "add a count attribute" design realized as a side table, so that count
// maintenance pays real page I/O — which is exactly what the Table 5
// overhead experiment measures. Pair it with counters.CountCache to get
// the paper's "small, write-behind cache of tuple counts".
type CountStore struct {
	db    *Database
	table string
}

// countSchema returns the schema of a count side table.
func countSchema(name string) catalog.Schema {
	return catalog.Schema{
		Table: name,
		Columns: []catalog.Column{
			{Name: "id", Type: catalog.Int},
			{Name: "cnt", Type: catalog.Float},
		},
		Key: 0,
	}
}

// NewCountStore opens (creating if needed) the count side table for the
// named base table.
func NewCountStore(db *Database, baseTable string) (*CountStore, error) {
	name := "__counts_" + baseTable
	if _, err := db.cat.Get(name); err != nil {
		if cerr := db.CreateTable(countSchema(name)); cerr != nil {
			return nil, fmt.Errorf("engine: creating count table: %w", cerr)
		}
	}
	return &CountStore{db: db, table: name}, nil
}

// GetCount implements counters.Store.
func (s *CountStore) GetCount(id uint64) (float64, bool, error) {
	t, err := s.db.getTable(s.table)
	if err != nil {
		return 0, false, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	rid, found := t.pk.Get(int64(id))
	if !found {
		return 0, false, nil
	}
	rec, err := t.heap.Get(rid)
	if err != nil {
		return 0, false, err
	}
	row, err := catalog.DecodeRow(t.schema, rec)
	if err != nil {
		return 0, false, err
	}
	return row[1].Float, true, nil
}

// PutCount implements counters.Store.
func (s *CountStore) PutCount(id uint64, count float64) error {
	t, err := s.db.getTable(s.table)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	row := catalog.Row{catalog.IntValue(int64(id)), catalog.FloatValue(count)}
	rec, err := catalog.EncodeRow(t.schema, row)
	if err != nil {
		return err
	}
	if rid, found := t.pk.Get(int64(id)); found {
		nrid, err := t.heap.Update(rid, rec)
		if err != nil {
			return err
		}
		if nrid != rid {
			t.pk.Put(int64(id), nrid)
		}
		return t.logMutation()
	}
	rid, err := t.heap.Insert(rec)
	if err != nil {
		return err
	}
	t.pk.Put(int64(id), rid)
	return t.logMutation()
}

// ReplaceAllCounts implements counters.BatchStore: it clears the side
// table and writes the new snapshot under one table lock and — crucially
// — one WAL commit record, so a crash mid-save recovers to the previous
// complete snapshot instead of a torn mix, and rows from an earlier,
// larger save cannot survive a smaller one. (Without a WAL the swap is
// still all-or-nothing with respect to concurrent readers, though crash
// atomicity then depends on page flush ordering, as for any mutation.)
func (s *CountStore) ReplaceAllCounts(ids []uint64, counts []float64) error {
	if len(ids) != len(counts) {
		return fmt.Errorf("engine: ids/counts length mismatch (%d vs %d)", len(ids), len(counts))
	}
	t, err := s.db.getTable(s.table)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Encode every new row first: an encoding error must not leave the
	// table half-cleared.
	recs := make([][]byte, len(ids))
	for i, id := range ids {
		row := catalog.Row{catalog.IntValue(int64(id)), catalog.FloatValue(counts[i])}
		rec, err := catalog.EncodeRow(t.schema, row)
		if err != nil {
			return err
		}
		recs[i] = rec
	}
	// Clear the old snapshot.
	type victim struct {
		rid storage.RID
		key int64
	}
	var victims []victim
	var scanErr error
	err = t.heap.Scan(func(rid storage.RID, rec []byte) bool {
		row, derr := catalog.DecodeRow(t.schema, rec)
		if derr != nil {
			scanErr = derr
			return false
		}
		victims = append(victims, victim{rid: rid, key: row[0].Int})
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return fmt.Errorf("engine: scanning counts for replace: %w", err)
	}
	for _, v := range victims {
		if err := t.heap.Delete(v.rid); err != nil {
			return fmt.Errorf("engine: clearing count row: %w", err)
		}
		t.pk.Delete(v.key)
	}
	// Write the new snapshot.
	for i, rec := range recs {
		rid, err := t.heap.Insert(rec)
		if err != nil {
			return fmt.Errorf("engine: writing count row: %w", err)
		}
		t.pk.Put(int64(ids[i]), rid)
	}
	// One commit record for the whole clear-and-write.
	return t.logMutation()
}

// AllCounts returns every persisted (id, count) pair, in key order. It
// lets a restarted shield reload its learned distribution.
func (s *CountStore) AllCounts() (ids []uint64, counts []float64, err error) {
	t, err := s.db.getTable(s.table)
	if err != nil {
		return nil, nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var scanErr error
	err = t.heap.Scan(func(_ storage.RID, rec []byte) bool {
		row, derr := catalog.DecodeRow(t.schema, rec)
		if derr != nil {
			scanErr = derr
			return false
		}
		ids = append(ids, uint64(row[0].Int))
		counts = append(counts, row[1].Float)
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return nil, nil, fmt.Errorf("engine: reading counts: %w", err)
	}
	return ids, counts, nil
}

var _ interface {
	GetCount(uint64) (float64, bool, error)
	PutCount(uint64, float64) error
	ReplaceAllCounts([]uint64, []float64) error
} = (*CountStore)(nil)
