package engine

import (
	"fmt"
	"testing"
)

// TestNoPinLeaksAcrossStatementKinds audits pin/unpin balance on every
// executor path that can terminate a scan early: LIMIT on full scans
// (sequential and parallel), LIMIT on index ranges, mid-scan evaluation
// errors, impossible plans, DML, and aggregates. mustExec already
// asserts PinnedFrames()==0 after each statement; this test adds the
// paths that exit through errors, which mustExec never sees.
func TestNoPinLeaksAcrossStatementKinds(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := testDB(t, WithScanWorkers(workers))
			loadWideTable(t, db, 1200)

			stmts := []string{
				`SELECT * FROM wide LIMIT 1`,
				`SELECT id FROM wide WHERE grp = 4 LIMIT 3`,
				`SELECT id FROM wide WHERE id BETWEEN 100 AND 110 LIMIT 2`,
				`SELECT id FROM wide WHERE id = 7`,
				`SELECT COUNT(*), AVG(id) FROM wide WHERE grp < 3`,
				`SELECT id FROM wide WHERE id = 1 AND id = 2`,
				`SELECT id FROM wide ORDER BY grp DESC LIMIT 9`,
				`UPDATE wide SET grp = 99 WHERE id = 42`,
				`DELETE FROM wide WHERE id = 43`,
				`INSERT INTO wide VALUES (9999, 0, 'late')`,
			}
			for _, s := range stmts {
				mustExec(t, db, s)
			}

			// Error exits: the scan aborts partway through a page with
			// frames pinned; the abort path must still unpin them.
			failing := []string{
				`SELECT id FROM wide WHERE pad > 5`,
				`SELECT SUM(pad) FROM wide`,
				`SELECT nosuch FROM wide`,
				`UPDATE wide SET grp = 1 WHERE pad < 10`,
				`DELETE FROM wide WHERE pad >= 3`,
			}
			for _, s := range failing {
				if _, err := db.Exec(s); err == nil {
					t.Fatalf("%s: expected error", s)
				}
				if n := db.PinnedFrames(); n != 0 {
					t.Fatalf("%s: %d frames left pinned after error", s, n)
				}
			}
		})
	}
}
