package engine

import (
	"fmt"
	"strings"
	"testing"
)

// loadWideTable fills t with rows padded wide enough that the heap spans
// well past minParallelScanPages pages, so the parallel executor engages.
func loadWideTable(t *testing.T, db *Database, rows int) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE wide (id INT PRIMARY KEY, grp INT, pad TEXT)`)
	pad := strings.Repeat("x", 100)
	var stmt strings.Builder
	for i := 0; i < rows; i++ {
		if stmt.Len() == 0 {
			stmt.WriteString(`INSERT INTO wide VALUES `)
		} else {
			stmt.WriteString(", ")
		}
		fmt.Fprintf(&stmt, `(%d, %d, '%s-%d')`, i, i%7, pad, i)
		if (i+1)%100 == 0 || i == rows-1 {
			mustExec(t, db, stmt.String())
			stmt.Reset()
		}
	}
}

func TestParallelScanEngages(t *testing.T) {
	db := testDB(t, WithScanWorkers(4))
	loadWideTable(t, db, 2000)
	tbl, err := db.getTable("wide")
	if err != nil {
		t.Fatal(err)
	}
	if n := tbl.heap.NumPages(); n < minParallelScanPages {
		t.Fatalf("heap only %d pages; test table too small to exercise the executor", n)
	}
	if w := db.scanWorkersFor(tbl); w != 4 {
		t.Fatalf("scanWorkersFor = %d, want 4", w)
	}
}

// TestParallelScanMatchesSequential runs the same statements through a
// parallel and a sequential engine over identical data: rows, order, and
// keys must be indistinguishable.
func TestParallelScanMatchesSequential(t *testing.T) {
	par := testDB(t, WithScanWorkers(8))
	seq := testDB(t, WithScanWorkers(1))
	loadWideTable(t, par, 1500)
	loadWideTable(t, seq, 1500)

	queries := []string{
		`SELECT * FROM wide`,
		`SELECT id FROM wide WHERE grp = 3`,
		`SELECT id FROM wide WHERE grp = 3 LIMIT 17`,
		`SELECT id, grp FROM wide WHERE grp >= 5 ORDER BY id DESC LIMIT 40`,
		`SELECT COUNT(*), SUM(id), AVG(id), MIN(id), MAX(id) FROM wide WHERE grp != 2`,
		`SELECT COUNT(*) FROM wide WHERE grp = 99`,
	}
	for _, q := range queries {
		pr := mustExec(t, par, q)
		sr := mustExec(t, seq, q)
		if len(pr.Rows) != len(sr.Rows) {
			t.Fatalf("%s: %d rows parallel vs %d sequential", q, len(pr.Rows), len(sr.Rows))
		}
		for i := range pr.Rows {
			if fmt.Sprint(pr.Rows[i]) != fmt.Sprint(sr.Rows[i]) {
				t.Fatalf("%s: row %d differs: %v vs %v", q, i, pr.Rows[i], sr.Rows[i])
			}
		}
		if fmt.Sprint(pr.Keys) != fmt.Sprint(sr.Keys) {
			t.Fatalf("%s: keys differ", q)
		}
	}
}

// TestParallelScanLimitCancels: a tight LIMIT over a big heap must not
// scan every page — early-cancel reaches the workers. Workers free-run
// until the reducer raises the stop flag, so the exact overshoot is
// scheduling-dependent; scanning less than half the heap is the robust
// signal that cancellation propagated at all (a broken path scans 100%).
func TestParallelScanLimitCancels(t *testing.T) {
	db := testDB(t, WithScanWorkers(4))
	loadWideTable(t, db, 8000)
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	h0, m0, _ := db.PoolStats()
	res := mustExec(t, db, `SELECT id FROM wide LIMIT 5`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	h1, m1, _ := db.PoolStats()
	tbl, _ := db.getTable("wide")
	touched := (h1 - h0) + (m1 - m0)
	if total := int64(tbl.heap.NumPages()); touched > total/2 {
		t.Fatalf("LIMIT 5 touched %d of %d pages; early-cancel not propagating", touched, total)
	}
}

// TestParallelScanPropagatesErrors: a mid-scan evaluation error (TEXT
// column compared to an INT literal) must surface, not hang or panic.
func TestParallelScanPropagatesErrors(t *testing.T) {
	db := testDB(t, WithScanWorkers(4))
	loadWideTable(t, db, 1200)
	if _, err := db.Exec(`SELECT id FROM wide WHERE pad > 5`); err == nil {
		t.Fatal("TEXT-vs-INT comparison succeeded")
	}
	if got := db.PinnedFrames(); got != 0 {
		t.Fatalf("pinned frames after failed scan = %d", got)
	}
}

// TestScanWorkersForSmallHeap: tiny heaps stay sequential regardless of
// the configured ceiling.
func TestScanWorkersForSmallHeap(t *testing.T) {
	db := testDB(t, WithScanWorkers(8))
	mustExec(t, db, `CREATE TABLE small (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO small VALUES (1), (2), (3)`)
	tbl, err := db.getTable("small")
	if err != nil {
		t.Fatal(err)
	}
	if w := db.scanWorkersFor(tbl); w != 1 {
		t.Fatalf("scanWorkersFor(small) = %d, want 1", w)
	}
}

// TestParallelScanUnderWriters exercises the reader/writer model with
// the executor on: concurrent full scans and point updates must agree
// with a final consistency check.
func TestParallelScanUnderWriters(t *testing.T) {
	db := testDB(t, WithScanWorkers(4))
	loadWideTable(t, db, 1000)
	markConcurrent(t, db)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := db.Exec(fmt.Sprintf(`UPDATE wide SET grp = %d WHERE id = %d`, i%7, i%1000)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 30; i++ {
		res := mustExec(t, db, `SELECT COUNT(*) FROM wide`)
		if res.Rows[0][0].Int != 1000 {
			t.Fatalf("count = %v", res.Rows[0][0])
		}
	}
	<-done
}
