package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestEngineAgainstMapModel drives the engine with random statements and
// mirrors them into a plain map, then verifies full agreement — both
// through point lookups (index path) and full scans.
func TestEngineAgainstMapModel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEngineModel(t, seed, false)
		})
	}
}

// TestEngineAgainstMapModelWithWAL repeats the model test on the WAL
// configuration: logging must not change semantics.
func TestEngineAgainstMapModelWithWAL(t *testing.T) {
	runEngineModel(t, 99, true)
}

func runEngineModel(t *testing.T, seed int64, wal bool) {
	t.Helper()
	opts := []Option{WithPoolPages(4)} // tiny pool: force eviction traffic
	if wal {
		opts = append(opts, WithWAL(false))
	}
	db, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE m (id INT PRIMARY KEY, v INT, s TEXT)`)

	type rowVal struct {
		v int64
		s string
	}
	model := map[int64]rowVal{}
	rng := rand.New(rand.NewSource(seed))

	for op := 0; op < 1500; op++ {
		id := int64(rng.Intn(120))
		switch rng.Intn(5) {
		case 0, 1: // insert
			v := int64(rng.Intn(1000))
			s := fmt.Sprintf("s-%d", rng.Intn(50))
			_, err := db.Exec(fmt.Sprintf(`INSERT INTO m VALUES (%d, %d, '%s')`, id, v, s))
			if _, exists := model[id]; exists {
				if err == nil {
					t.Fatalf("op %d: duplicate insert of %d accepted", op, id)
				}
			} else {
				if err != nil {
					t.Fatalf("op %d: insert %d: %v", op, id, err)
				}
				model[id] = rowVal{v, s}
			}
		case 2: // update
			v := int64(rng.Intn(1000))
			res, err := db.Exec(fmt.Sprintf(`UPDATE m SET v = %d WHERE id = %d`, v, id))
			if err != nil {
				t.Fatalf("op %d: update: %v", op, err)
			}
			if _, exists := model[id]; exists {
				if res.Affected != 1 {
					t.Fatalf("op %d: update affected %d", op, res.Affected)
				}
				model[id] = rowVal{v, model[id].s}
			} else if res.Affected != 0 {
				t.Fatalf("op %d: phantom update", op)
			}
		case 3: // delete
			res, err := db.Exec(fmt.Sprintf(`DELETE FROM m WHERE id = %d`, id))
			if err != nil {
				t.Fatalf("op %d: delete: %v", op, err)
			}
			_, exists := model[id]
			if exists != (res.Affected == 1) {
				t.Fatalf("op %d: delete affected %d, model has=%v", op, res.Affected, exists)
			}
			delete(model, id)
		case 4: // point read
			res, err := db.Exec(fmt.Sprintf(`SELECT v, s FROM m WHERE id = %d`, id))
			if err != nil {
				t.Fatalf("op %d: select: %v", op, err)
			}
			want, exists := model[id]
			if exists != (len(res.Rows) == 1) {
				t.Fatalf("op %d: select rows=%d, model has=%v", op, len(res.Rows), exists)
			}
			if exists {
				if res.Rows[0][0].Int != want.v || res.Rows[0][1].Str != want.s {
					t.Fatalf("op %d: row mismatch %v vs %+v", op, res.Rows[0], want)
				}
			}
		}
	}

	// Full reconciliation: scan path.
	res := mustExec(t, db, `SELECT id, v, s FROM m ORDER BY id`)
	if len(res.Rows) != len(model) {
		t.Fatalf("scan rows = %d, model = %d", len(res.Rows), len(model))
	}
	var ids []int64
	for id := range model {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for i, id := range ids {
		row := res.Rows[i]
		want := model[id]
		if row[0].Int != id || row[1].Int != want.v || row[2].Str != want.s {
			t.Fatalf("row %d: %v vs id=%d %+v", i, row, id, want)
		}
	}
	// Aggregates agree.
	var wantSum int64
	for _, rv := range model {
		wantSum += rv.v
	}
	agg := mustExec(t, db, `SELECT COUNT(*), SUM(v) FROM m`)
	if agg.Rows[0][0].Int != int64(len(model)) {
		t.Fatalf("count = %v", agg.Rows[0][0])
	}
	if int64(agg.Rows[0][1].Float) != wantSum {
		t.Fatalf("sum = %v, want %d", agg.Rows[0][1], wantSum)
	}
}

// TestEngineModelWithSecondaryIndex repeats reconciliation with a
// secondary index active, comparing index-path and scan-path answers
// after heavy churn.
func TestEngineModelWithSecondaryIndex(t *testing.T) {
	db := testDB(t, WithPoolPages(4))
	mustExec(t, db, `CREATE TABLE m (id INT PRIMARY KEY, tag TEXT)`)
	mustExec(t, db, `CREATE INDEX by_tag ON m (tag)`)
	rng := rand.New(rand.NewSource(7))
	model := map[int64]string{}
	for op := 0; op < 1200; op++ {
		id := int64(rng.Intn(80))
		tag := fmt.Sprintf("t%d", rng.Intn(6))
		switch rng.Intn(3) {
		case 0:
			if _, exists := model[id]; !exists {
				mustExec(t, db, fmt.Sprintf(`INSERT INTO m VALUES (%d, '%s')`, id, tag))
				model[id] = tag
			}
		case 1:
			if _, exists := model[id]; exists {
				mustExec(t, db, fmt.Sprintf(`UPDATE m SET tag = '%s' WHERE id = %d`, tag, id))
				model[id] = tag
			}
		case 2:
			if _, exists := model[id]; exists {
				mustExec(t, db, fmt.Sprintf(`DELETE FROM m WHERE id = %d`, id))
				delete(model, id)
			}
		}
	}
	for tagN := 0; tagN < 6; tagN++ {
		tag := fmt.Sprintf("t%d", tagN)
		want := 0
		for _, v := range model {
			if v == tag {
				want++
			}
		}
		res := mustExec(t, db, fmt.Sprintf(`SELECT COUNT(*) FROM m WHERE tag = '%s'`, tag))
		if res.Rows[0][0].Int != int64(want) {
			t.Fatalf("tag %s: index count %v, model %d", tag, res.Rows[0][0], want)
		}
	}
}
