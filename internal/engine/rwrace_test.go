package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestSelectUpdatePageByteRace is the regression test for the reader/
// writer model. Before table.mu became an RWMutex with readers holding
// it shared, execSelect walked page bytes with no table lock at all
// while execUpdate rewrote records in place on the same pinned frames —
// a data race on the page byte slices that -race catches reliably.
// The test hammers full scans, point lookups, and aggregates against a
// writer updating the same rows; it must run clean under -race and
// every read must observe a consistent row count.
func TestSelectUpdatePageByteRace(t *testing.T) {
	db := testDB(t, WithScanWorkers(4))
	loadWideTable(t, db, 600)

	const readers = 3
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 150; i++ {
			q := fmt.Sprintf(`UPDATE wide SET pad = 'rewritten-%d', grp = %d WHERE id = %d`,
				i, i%7, (i*37)%600)
			if _, err := db.Exec(q); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var q string
				switch (i + r) % 3 {
				case 0:
					q = `SELECT * FROM wide WHERE grp = 3`
				case 1:
					q = fmt.Sprintf(`SELECT pad FROM wide WHERE id = %d`, (i*13)%600)
				default:
					q = `SELECT COUNT(*), MAX(id) FROM wide`
				}
				res, err := db.Exec(q)
				if err != nil {
					t.Errorf("read %q: %v", q, err)
					return
				}
				if (i+r)%3 == 2 && res.Rows[0][0].Int != 600 {
					t.Errorf("count = %v, want 600", res.Rows[0][0])
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
