package engine

import (
	"fmt"
	"sync"
	"testing"
)

// The concurrent write path's correctness tests: writers no longer hold
// the table lock exclusively, so these hammer parallel mutations against
// snapshot scans and assert statement atomicity — a reader must see all
// of a multi-row statement or none of it, never a torn prefix.

// loadGroupTable creates table g(id INT PRIMARY KEY, grp INT, v INT)
// with groups*span rows: group g holds ids [g*span, (g+1)*span), all
// with v = 0, plus a secondary index on grp.
func loadGroupTable(t *testing.T, db *Database, groups, span int) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE g (id INT PRIMARY KEY, grp INT, v INT)`)
	mustExec(t, db, `CREATE INDEX g_grp ON g (grp)`)
	for g := 0; g < groups; g++ {
		stmt := `INSERT INTO g VALUES `
		for i := 0; i < span; i++ {
			if i > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, %d, 0)", g*span+i, g)
		}
		mustExec(t, db, stmt)
	}
}

// checkUniform asserts that a (grp, v) result set has one v per group
// and, when span > 0, exactly span rows per group.
func checkUniform(t *testing.T, res *Result, span int, what string) {
	t.Helper()
	vals := make(map[int64]int64)
	counts := make(map[int64]int)
	for _, row := range res.Rows {
		g, v := row[0].Int, row[1].Int
		if prev, ok := vals[g]; ok && prev != v {
			t.Errorf("%s: group %d torn: saw v=%d and v=%d", what, g, prev, v)
			return
		}
		vals[g] = v
		counts[g]++
	}
	if span > 0 {
		for g, n := range counts {
			if n != span {
				t.Errorf("%s: group %d has %d rows, want %d", what, g, n, span)
				return
			}
		}
	}
}

// TestConcurrentWritersSnapshotAtomicity races multi-row UPDATE
// statements — disjoint groups and deliberately overlapping ones —
// against full scans, secondary-index lookups, and point queries. A
// group's rows span several pages, so a torn statement (some rows at
// the new v, some at the old) is exactly what a non-atomic publish or a
// non-snapshot scan would expose. Must run clean under -race.
func TestConcurrentWritersSnapshotAtomicity(t *testing.T) {
	const (
		groups = 8
		span   = 64 // ~several pages per group
		iters  = 60
	)
	db := testDB(t, WithScanWorkers(4))
	markConcurrent(t, db)
	loadGroupTable(t, db, groups, span)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var once sync.Once
	done := func() { once.Do(func() { close(stop) }) }

	// Disjoint writers: each owns two groups. Overlapping writers: all
	// hammer group 0 — strict two-phase latching still serializes them,
	// so uniformity per group must hold throughout.
	writer := func(w int, grps []int) {
		defer wg.Done()
		defer done()
		for i := 1; i <= iters; i++ {
			g := grps[i%len(grps)]
			q := fmt.Sprintf(`UPDATE g SET v = %d WHERE grp = %d`, w*1_000_000+i, g)
			if _, err := db.Exec(q); err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
		}
	}
	wg.Add(4)
	go writer(1, []int{1, 2})
	go writer(2, []int{3, 4})
	go writer(3, []int{0, 5})
	go writer(4, []int{0, 6})

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (i + r) % 3 {
				case 0: // snapshot full scan
					res, err := db.Exec(`SELECT grp, v FROM g`)
					if err != nil {
						t.Errorf("scan: %v", err)
						return
					}
					checkUniform(t, res, span, "full scan")
				case 1: // secondary-index lookup
					g := i % groups
					res, err := db.Exec(fmt.Sprintf(`SELECT grp, v FROM g WHERE grp = %d`, g))
					if err != nil {
						t.Errorf("index lookup: %v", err)
						return
					}
					checkUniform(t, res, span, "index lookup")
				default: // point query + aggregate over one group
					id := i % (groups * span)
					if _, err := db.Exec(fmt.Sprintf(`SELECT v FROM g WHERE id = %d`, id)); err != nil {
						t.Errorf("point: %v", err)
						return
					}
					res, err := db.Exec(fmt.Sprintf(`SELECT MIN(v), MAX(v) FROM g WHERE grp = %d`, i%groups))
					if err != nil {
						t.Errorf("agg: %v", err)
						return
					}
					if mn, mx := res.Rows[0][0].Int, res.Rows[0][1].Int; mn != mx {
						t.Errorf("agg: group %d torn: min v=%d max v=%d", i%groups, mn, mx)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestConcurrentInsertDeleteAtomicity races multi-row INSERT and DELETE
// statements (each a batch of rows in its own group) against scans that
// assert every batch is fully present or fully absent. Concurrent
// inserters also contend on the heap's last-page hint and on page
// allocation, exercising the TryAcquire-or-allocate insert path.
func TestConcurrentInsertDeleteAtomicity(t *testing.T) {
	const (
		writers = 4
		batch   = 16
		rounds  = 40
	)
	db := testDB(t)
	markConcurrent(t, db)
	mustExec(t, db, `CREATE TABLE b (id INT PRIMARY KEY, grp INT, v INT)`)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var once sync.Once
	done := func() { once.Do(func() { close(stop) }) }

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer done()
			for r := 0; r < rounds; r++ {
				grp := w*rounds + r
				stmt := `INSERT INTO b VALUES `
				for i := 0; i < batch; i++ {
					if i > 0 {
						stmt += ", "
					}
					stmt += fmt.Sprintf("(%d, %d, %d)", grp*batch+i, grp, w)
				}
				if _, err := db.Exec(stmt); err != nil {
					t.Errorf("insert writer %d: %v", w, err)
					return
				}
				if r%2 == 1 { // delete the previous round's batch whole
					q := fmt.Sprintf(`DELETE FROM b WHERE grp = %d`, grp-1)
					if _, err := db.Exec(q); err != nil {
						t.Errorf("delete writer %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Exec(`SELECT grp, id FROM b`)
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				counts := make(map[int64]int)
				for _, row := range res.Rows {
					counts[row[0].Int]++
				}
				for g, n := range counts {
					if n != batch {
						t.Errorf("scan: batch %d has %d rows, want %d (torn statement)", g, n, batch)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Quiesced: every surviving batch must be complete and the index
	// consistent with the heap.
	res := mustExec(t, db, `SELECT grp, id FROM b`)
	counts := make(map[int64]int)
	for _, row := range res.Rows {
		counts[row[0].Int]++
		id := row[1].Int
		one := mustExec(t, db, fmt.Sprintf(`SELECT id FROM b WHERE id = %d`, id))
		if len(one.Rows) != 1 {
			t.Fatalf("point lookup of id %d: %d rows", id, len(one.Rows))
		}
	}
	for g, n := range counts {
		if n != batch {
			t.Fatalf("final: batch %d has %d rows, want %d", g, n, batch)
		}
	}
}

// TestConcurrentKeyChangeUpdates races UPDATE statements that move rows
// between primary keys against inserts of those same keys: exactly one
// owner of a key may win, and no key may ever appear twice.
func TestConcurrentKeyChangeUpdates(t *testing.T) {
	db := testDB(t)
	markConcurrent(t, db)
	mustExec(t, db, `CREATE TABLE k (id INT PRIMARY KEY, v INT)`)
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO k VALUES (%d, 0)`, i))
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				src := (w*13 + i) % 50
				// Move src to 1000+src and back; collisions between the
				// movers and the re-inserters are expected errors.
				db.Exec(fmt.Sprintf(`UPDATE k SET id = %d WHERE id = %d`, 1000+src, src))
				db.Exec(fmt.Sprintf(`UPDATE k SET id = %d WHERE id = %d`, src, 1000+src))
				db.Exec(fmt.Sprintf(`INSERT INTO k VALUES (%d, %d)`, src, w))
			}
		}(w)
	}
	wg.Wait()

	res := mustExec(t, db, `SELECT id FROM k`)
	seen := make(map[int64]bool)
	for _, row := range res.Rows {
		if seen[row[0].Int] {
			t.Fatalf("duplicate primary key %d visible after quiesce", row[0].Int)
		}
		seen[row[0].Int] = true
	}
	if len(seen) != 50 {
		t.Fatalf("expected 50 distinct keys, got %d", len(seen))
	}
}
