package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/storage"
)

// TestCheckpointFailureDoesNotFailStatement pins the post-commit error
// contract: a checkpoint runs after its triggering statement committed,
// published, and became WAL-durable, so a checkpoint failure must not be
// reported as the statement failing. The statement's Result reaches the
// caller; the failure is recorded on the Database for health machinery
// (the shield latches degraded mode from TakeCheckpointErr).
func TestCheckpointFailureDoesNotFailStatement(t *testing.T) {
	db := testDB(t, WithWAL(false), WithPoolPages(64))
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, pad TEXT)`)

	// Fail every data-file fsync: FlushAll succeeds, pager.Sync dies, so
	// each checkpoint attempt fails after its statement committed.
	fault.Enable(fault.NewRegistry(1).Add(fault.Rule{
		Site: fault.PagerSync, Kind: fault.Error, Every: 1,
	}))
	defer fault.Disable()

	// Multi-row statements with fat pads push the WAL past the 8 MiB
	// checkpoint threshold quickly (~16 dirty pages ≈ 64 KiB logged per
	// statement).
	pad := strings.Repeat("x", 1000)
	const rowsPer = 64
	id := 0
	for stmt := 0; stmt < 160; stmt++ {
		var sb strings.Builder
		sb.WriteString(`INSERT INTO t VALUES `)
		for i := 0; i < rowsPer; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, '%s')", id, pad)
			id++
		}
		res, err := db.Exec(sb.String())
		if err != nil {
			t.Fatalf("statement %d failed despite committing: %v", stmt, err)
		}
		if res.Affected != rowsPer {
			t.Fatalf("statement %d affected %d rows", stmt, res.Affected)
		}
	}
	if n := db.CheckpointFailures(); n == 0 {
		t.Fatal("no checkpoint failure recorded despite failing fsyncs past the threshold")
	}
	cperr := db.TakeCheckpointErr()
	if cperr == nil {
		t.Fatal("TakeCheckpointErr returned nil")
	}
	if !errors.Is(cperr, storage.ErrIO) {
		t.Fatalf("checkpoint error not classified ErrIO: %v", cperr)
	}
	if db.TakeCheckpointErr() != nil {
		t.Fatal("TakeCheckpointErr did not clear the recorded error")
	}

	// Disk repaired: the next triggering mutation checkpoints cleanly and
	// the data survived the whole episode.
	fault.Disable()
	mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'last')`, id))
	if r := mustExec(t, db, fmt.Sprintf(`SELECT pad FROM t WHERE id = %d`, id)); len(r.Rows) != 1 {
		t.Fatal("row lost after checkpoint failures")
	}
	if r := mustExec(t, db, `SELECT pad FROM t WHERE id = 0`); len(r.Rows) != 1 {
		t.Fatal("first row lost after checkpoint failures")
	}
}
