package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestWALRecoversAfterCrash simulates a crash by abandoning a database
// whose dirty pages never reached the data file, then reopening the
// directory: the WAL must restore every committed statement.
func TestWALRecoversAfterCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithWAL(false), WithPoolPages(1024))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row-%d')`, i, i))
	}
	mustExec(t, db, `UPDATE t SET v = 'patched' WHERE id = 42`)
	mustExec(t, db, `DELETE FROM t WHERE id = 199`)
	// Crash: no Close, no flush. The pool (1024 pages) still holds
	// everything; the data file has only what allocation wrote.
	db = nil

	db2, err := Open(dir, WithWAL(false))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	all := mustExec(t, db2, `SELECT * FROM t`)
	if len(all.Rows) != 199 {
		t.Fatalf("recovered %d rows, want 199", len(all.Rows))
	}
	r := mustExec(t, db2, `SELECT v FROM t WHERE id = 42`)
	if len(r.Rows) != 1 || r.Rows[0][0].Str != "patched" {
		t.Fatalf("update lost: %v", r.Rows)
	}
	if r := mustExec(t, db2, `SELECT * FROM t WHERE id = 199`); len(r.Rows) != 0 {
		t.Fatal("delete lost")
	}
}

// TestWALCrashWithoutWALLosesData is the control: the same crash without
// a WAL loses the unflushed rows, proving the recovery test is actually
// exercising the log.
func TestWALCrashWithoutWALLosesData(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithPoolPages(1024))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row-%d')`, i, i))
	}
	db = nil

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	all := mustExec(t, db2, `SELECT * FROM t`)
	if len(all.Rows) >= 200 {
		t.Fatalf("no-WAL crash kept all %d rows; control invalid", len(all.Rows))
	}
}

// TestWALTornTailAfterCrash: chop the WAL mid-batch before reopening —
// the prefix must recover and the torn batch must vanish without error.
func TestWALTornTailAfterCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithWAL(false), WithPoolPages(1024))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	db = nil

	walPath := filepath.Join(dir, "t.tbl.wal")
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, st.Size()-100); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, WithWAL(false))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	all := mustExec(t, db2, `SELECT * FROM t`)
	if len(all.Rows) == 0 || len(all.Rows) >= 50 {
		t.Fatalf("torn recovery rows = %d, want a proper prefix", len(all.Rows))
	}
}

// TestWALCleanCloseTruncatesLog: a clean shutdown flushes pages and empties
// the log, so reopening does no replay work.
func TestWALCleanCloseTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithWAL(false))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "t.tbl.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("wal size after clean close = %d", st.Size())
	}
	db2, err := Open(dir, WithWAL(false))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if r := mustExec(t, db2, `SELECT * FROM t`); len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

// TestWALCheckpointBoundsLogSize: a long mutation stream must not grow
// the log without bound.
func TestWALCheckpointBoundsLogSize(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithWAL(false), WithPoolPages(8))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, pad TEXT)`)
	// Enough mutations that naive logging would exceed the checkpoint
	// threshold many times over.
	for i := 0; i < 3000; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx')`, i))
	}
	st, err := os.Stat(filepath.Join(dir, "t.tbl.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 2*walCheckpointBytes {
		t.Fatalf("wal grew to %d bytes despite checkpointing", st.Size())
	}
	// Data still intact.
	if r := mustExec(t, db, `SELECT * FROM t WHERE id = 2999`); len(r.Rows) != 1 {
		t.Fatal("row lost across checkpoints")
	}
}

// TestWALDropTableRemovesLog verifies DROP TABLE cleans up the log file.
func TestWALDropTableRemovesLog(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithWAL(false))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	mustExec(t, db, `DROP TABLE t`)
	if _, err := os.Stat(filepath.Join(dir, "t.tbl.wal")); !os.IsNotExist(err) {
		t.Fatalf("wal file survives drop: %v", err)
	}
}

// TestWALSyncedMode exercises the fsync-per-commit configuration.
func TestWALSyncedModeEngine(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithWAL(true))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	if r := mustExec(t, db, `SELECT * FROM t`); len(r.Rows) != 1 {
		t.Fatal("row missing in synced mode")
	}
}
