package engine

import (
	"fmt"
	"testing"
)

func TestCountStoreAllCounts(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE base (id INT PRIMARY KEY)`)
	cs, err := NewCountStore(db, "base")
	if err != nil {
		t.Fatal(err)
	}
	ids, counts, err := cs.AllCounts()
	if err != nil || len(ids) != 0 || len(counts) != 0 {
		t.Fatalf("empty AllCounts = %v %v %v", ids, counts, err)
	}
	for i := 0; i < 20; i++ {
		if err := cs.PutCount(uint64(i), float64(i)*1.5); err != nil {
			t.Fatal(err)
		}
	}
	ids, counts, err = cs.AllCounts()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 20 {
		t.Fatalf("AllCounts len = %d", len(ids))
	}
	seen := map[uint64]float64{}
	for i, id := range ids {
		seen[id] = counts[i]
	}
	for i := 0; i < 20; i++ {
		if seen[uint64(i)] != float64(i)*1.5 {
			t.Fatalf("id %d count = %v", i, seen[uint64(i)])
		}
	}
}

func TestSecondaryIndexFloatAndTextChurn(t *testing.T) {
	// Exercise secondary.remove across all three key types through heavy
	// update/delete churn, then reconcile against a scan.
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE m (id INT PRIMARY KEY, f FLOAT, s TEXT, n INT)`)
	mustExec(t, db, `CREATE INDEX by_f ON m (f)`)
	mustExec(t, db, `CREATE INDEX by_s ON m (s)`)
	mustExec(t, db, `CREATE INDEX by_n ON m (n)`)
	for i := 0; i < 60; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO m VALUES (%d, %d.5, 'tag%d', %d)`, i, i%4, i%5, i%6))
	}
	// Churn: moves between keys and deletions.
	mustExec(t, db, `UPDATE m SET f = 99.5, s = 'moved', n = 99 WHERE id < 10`)
	mustExec(t, db, `DELETE FROM m WHERE id >= 50`)

	check := func(where string, wantBy func(id int64) bool) {
		t.Helper()
		res := mustExec(t, db, `SELECT id FROM m WHERE `+where)
		got := map[int64]bool{}
		for _, row := range res.Rows {
			got[row[0].Int] = true
		}
		for id := int64(0); id < 60; id++ {
			want := wantBy(id)
			if got[id] != want {
				t.Fatalf("WHERE %s: id %d present=%v want=%v", where, id, got[id], want)
			}
		}
	}
	live := func(id int64) bool { return id < 50 }
	check(`f = 99.5`, func(id int64) bool { return live(id) && id < 10 })
	check(`s = 'moved'`, func(id int64) bool { return live(id) && id < 10 })
	check(`n = 99`, func(id int64) bool { return live(id) && id < 10 })
	check(`f = 1.5`, func(id int64) bool { return live(id) && id >= 10 && id%4 == 1 })
	check(`s = 'tag2'`, func(id int64) bool { return live(id) && id >= 10 && id%5 == 2 })
	check(`n = 3`, func(id int64) bool { return live(id) && id >= 10 && id%6 == 3 })
}

func TestLoadTableRebuildsSecondaries(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE m (id INT PRIMARY KEY, f FLOAT)`)
	mustExec(t, db, `CREATE INDEX by_f ON m (f)`)
	mustExec(t, db, `INSERT INTO m VALUES (1, 2.5), (2, 2.5), (3, 9.5)`)
	db.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res := mustExec(t, db2, `SELECT COUNT(*) FROM m WHERE f = 2.5`)
	if res.Rows[0][0].Int != 2 {
		t.Fatalf("rebuilt float index count = %v", res.Rows[0][0])
	}
	// And the plan actually uses it.
	plan := mustExec(t, db2, `EXPLAIN SELECT * FROM m WHERE f = 2.5`)
	if plan.Rows[0][0].Str == "full table scan" {
		t.Fatal("rebuilt index not used")
	}
}
