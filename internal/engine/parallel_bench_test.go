package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchEngine opens a database with a wide table of rows records. The
// returned cleanup closes it.
func benchEngine(b *testing.B, rows int, opts ...Option) *Database {
	b.Helper()
	db, err := Open(b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE wide (id INT PRIMARY KEY, grp INT, pad TEXT)`); err != nil {
		b.Fatal(err)
	}
	stmt := ""
	for i := 0; i < rows; i++ {
		if stmt == "" {
			stmt = `INSERT INTO wide VALUES `
		} else {
			stmt += ", "
		}
		stmt += fmt.Sprintf(`(%d, %d, 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx-%d')`, i, i%7, i)
		if (i+1)%200 == 0 || i == rows-1 {
			if _, err := db.Exec(stmt); err != nil {
				b.Fatal(err)
			}
			stmt = ""
		}
	}
	return db
}

// BenchmarkEnginePointQuery measures primary-key point SELECT latency
// with g client goroutines issuing statements concurrently. Reads share
// the table lock, so added clients should not queue on the read path.
// GOMAXPROCS is raised with g but capped at the hardware parallelism:
// beyond NumCPU extra OS threads cannot run queries in parallel, they
// can only thrash the scheduler and stretch GC stop-the-world phases —
// which measures the runtime, not the engine. The query strings are
// pregenerated for the same reason (fmt is not the system under test).
func BenchmarkEnginePointQuery(b *testing.B) {
	queries := make([]string, 2000)
	for i := range queries {
		queries[i] = fmt.Sprintf(`SELECT grp FROM wide WHERE id = %d`, i)
	}
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			db := benchEngine(b, 2000)
			// Warm the pool.
			if _, err := db.Exec(`SELECT COUNT(*) FROM wide`); err != nil {
				b.Fatal(err)
			}
			procs := min(g, runtime.NumCPU())
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			var seq atomic.Int64
			b.SetParallelism((g + procs - 1) / procs)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				base := int(seq.Add(1)) * 97
				i := 0
				for pb.Next() {
					q := queries[(base+i*13)%2000]
					i++
					res, err := db.Exec(q)
					if err != nil {
						b.Error(err)
						return
					}
					if len(res.Rows) != 1 {
						b.Errorf("%s: %d rows", q, len(res.Rows))
						return
					}
				}
			})
		})
	}
}

// BenchmarkEnginePointQueryPlanCache isolates what the plan cache buys a
// repeated point-query shape: with the cache on (the default), every
// statement after the first binds a cached template and skips the lexer,
// parser, and name resolution; with the cache off, each pays the full
// front end. The hit-counter assertions keep the benchmark honest — if
// the cache stops hitting, the run fails rather than quietly measuring
// the parse path twice.
func BenchmarkEnginePointQueryPlanCache(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "cache=on"
		var opts []Option
		if !on {
			name = "cache=off"
			opts = append(opts, WithPlanCache(0))
		}
		b.Run(name, func(b *testing.B) {
			db := benchEngine(b, 2000, opts...)
			if _, err := db.Exec(`SELECT COUNT(*) FROM wide`); err != nil {
				b.Fatal(err)
			}
			h0, _, _, _ := db.PlanCacheStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := fmt.Sprintf(`SELECT grp FROM wide WHERE id = %d`, (i*13)%2000)
				res, err := db.Exec(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatalf("%s: %d rows", q, len(res.Rows))
				}
			}
			b.StopTimer()
			hits, misses, _, _ := db.PlanCacheStats()
			if on && hits-h0 < int64(b.N-1) {
				b.Fatalf("cache on: %d hits over %d queries", hits-h0, b.N)
			}
			if !on && (hits != 0 || misses != 0) {
				b.Fatalf("cache off: stats %d/%d, want 0/0", hits, misses)
			}
		})
	}
}

// BenchmarkEngineScan measures warm full-scan throughput with the
// parallel executor at w scan workers. Pages are pool-resident, so this
// is the CPU-bound decode/filter path; worker scaling tracks available
// cores.
func BenchmarkEngineScan(b *testing.B) {
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("g=%d", w), func(b *testing.B) {
			db := benchEngine(b, 4000, WithScanWorkers(w))
			if _, err := db.Exec(`SELECT COUNT(*) FROM wide`); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Exec(`SELECT COUNT(*), SUM(id) FROM wide WHERE grp != 3`)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatal("no aggregate row")
				}
			}
		})
	}
}

// BenchmarkEngineScanColdIO measures cold full scans under the modeled
// 2004-era I/O latency the Table 5 harness uses, with a pool smaller
// than the heap so every scan pays real misses. The parallel executor's
// workers miss on different pool shards and overlap the modeled reads —
// the end-to-end win of the striped pool + latch-free page loads + the
// chunked scan executor, visible even on a single-core host.
func BenchmarkEngineScanColdIO(b *testing.B) {
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("g=%d", w), func(b *testing.B) {
			ioWait := func() { time.Sleep(100 * time.Microsecond) }
			var enabled atomic.Bool
			db := benchEngine(b, 1500,
				WithScanWorkers(w),
				WithPoolPages(16),
				WithIOCost(func() {
					if enabled.Load() {
						ioWait()
					}
				}),
			)
			enabled.Store(true) // loading the table above stays fast
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Exec(`SELECT COUNT(*) FROM wide`)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rows[0][0].Int != 1500 {
					b.Fatalf("count = %v", res.Rows[0][0])
				}
			}
		})
	}
}

// BenchmarkEngineMixedReadWrite measures point reads competing with a
// writer goroutine issuing UPDATEs — the reader/writer table lock lets
// reads share while writes serialize.
func BenchmarkEngineMixedReadWrite(b *testing.B) {
	db := benchEngine(b, 2000)
	if _, err := db.Exec(`SELECT COUNT(*) FROM wide`); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(fmt.Sprintf(`UPDATE wide SET grp = %d WHERE id = %d`, i%7, i%2000)); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(fmt.Sprintf(`SELECT grp FROM wide WHERE id = %d`, (i*13)%2000)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
