package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchEngine opens a database with a wide table of rows records. The
// returned cleanup closes it.
func benchEngine(b *testing.B, rows int, opts ...Option) *Database {
	b.Helper()
	db, err := Open(b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE wide (id INT PRIMARY KEY, grp INT, pad TEXT)`); err != nil {
		b.Fatal(err)
	}
	stmt := ""
	for i := 0; i < rows; i++ {
		if stmt == "" {
			stmt = `INSERT INTO wide VALUES `
		} else {
			stmt += ", "
		}
		stmt += fmt.Sprintf(`(%d, %d, 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx-%d')`, i, i%7, i)
		if (i+1)%200 == 0 || i == rows-1 {
			if _, err := db.Exec(stmt); err != nil {
				b.Fatal(err)
			}
			stmt = ""
		}
	}
	return db
}

// BenchmarkEnginePointQuery measures primary-key point SELECT latency
// with g client goroutines issuing statements concurrently. Reads share
// the table lock, so added clients should not queue on the read path.
func BenchmarkEnginePointQuery(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			db := benchEngine(b, 2000)
			// Warm the pool.
			if _, err := db.Exec(`SELECT COUNT(*) FROM wide`); err != nil {
				b.Fatal(err)
			}
			prev := runtime.GOMAXPROCS(g)
			defer runtime.GOMAXPROCS(prev)
			var seq atomic.Int64
			b.SetParallelism((g + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				base := int(seq.Add(1)) * 97
				i := 0
				for pb.Next() {
					q := fmt.Sprintf(`SELECT grp FROM wide WHERE id = %d`, (base+i*13)%2000)
					i++
					res, err := db.Exec(q)
					if err != nil {
						b.Error(err)
						return
					}
					if len(res.Rows) != 1 {
						b.Errorf("%s: %d rows", q, len(res.Rows))
						return
					}
				}
			})
		})
	}
}

// BenchmarkEngineScan measures warm full-scan throughput with the
// parallel executor at w scan workers. Pages are pool-resident, so this
// is the CPU-bound decode/filter path; worker scaling tracks available
// cores.
func BenchmarkEngineScan(b *testing.B) {
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("g=%d", w), func(b *testing.B) {
			db := benchEngine(b, 4000, WithScanWorkers(w))
			if _, err := db.Exec(`SELECT COUNT(*) FROM wide`); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Exec(`SELECT COUNT(*), SUM(id) FROM wide WHERE grp != 3`)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatal("no aggregate row")
				}
			}
		})
	}
}

// BenchmarkEngineScanColdIO measures cold full scans under the modeled
// 2004-era I/O latency the Table 5 harness uses, with a pool smaller
// than the heap so every scan pays real misses. The parallel executor's
// workers miss on different pool shards and overlap the modeled reads —
// the end-to-end win of the striped pool + latch-free page loads + the
// chunked scan executor, visible even on a single-core host.
func BenchmarkEngineScanColdIO(b *testing.B) {
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("g=%d", w), func(b *testing.B) {
			ioWait := func() { time.Sleep(100 * time.Microsecond) }
			var enabled atomic.Bool
			db := benchEngine(b, 1500,
				WithScanWorkers(w),
				WithPoolPages(16),
				WithIOCost(func() {
					if enabled.Load() {
						ioWait()
					}
				}),
			)
			enabled.Store(true) // loading the table above stays fast
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Exec(`SELECT COUNT(*) FROM wide`)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rows[0][0].Int != 1500 {
					b.Fatalf("count = %v", res.Rows[0][0])
				}
			}
		})
	}
}

// BenchmarkEngineMixedReadWrite measures point reads competing with a
// writer goroutine issuing UPDATEs — the reader/writer table lock lets
// reads share while writes serialize.
func BenchmarkEngineMixedReadWrite(b *testing.B) {
	db := benchEngine(b, 2000)
	if _, err := db.Exec(`SELECT COUNT(*) FROM wide`); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(fmt.Sprintf(`UPDATE wide SET grp = %d WHERE id = %d`, i%7, i%2000)); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(fmt.Sprintf(`SELECT grp FROM wide WHERE id = %d`, (i*13)%2000)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
