package engine

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// benchMixed drives a mixed point workload against a synced-WAL table:
// each operation is an in-place UPDATE by primary key with probability
// writeFrac%, otherwise a point SELECT. Statements are pregenerated and
// goroutine/GOMAXPROCS conventions follow BenchmarkEnginePointQuery.
func benchMixed(b *testing.B, writeFrac, g int, opts ...Option) {
	b.Helper()
	const rows = 2000
	db := benchEngine(b, rows, append([]Option{WithWAL(true)}, opts...)...)
	if _, err := db.Exec(`SELECT COUNT(*) FROM wide`); err != nil {
		b.Fatal(err)
	}
	reads := make([]string, rows)
	writes := make([]string, rows)
	for i := range reads {
		reads[i] = fmt.Sprintf(`SELECT grp FROM wide WHERE id = %d`, i)
		writes[i] = fmt.Sprintf(`UPDATE wide SET grp = %d WHERE id = %d`, i%7, i)
	}
	procs := min(g, runtime.NumCPU())
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	var seq atomic.Int64
	b.SetParallelism((g + procs - 1) / procs)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := int(seq.Add(1)) * 97
		i := 0
		for pb.Next() {
			n := base + i*13
			i++
			var q string
			if n%100 < writeFrac {
				q = writes[n%rows]
			} else {
				q = reads[n%rows]
			}
			if _, err := db.Exec(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkEngineMixed measures mixed read/write throughput on the
// concurrent write path (per-page latches, snapshot reads, group-commit
// WAL) across write fractions and client counts. Writers touching
// different pages proceed in parallel and share fsyncs through the
// group-commit window; readers never block behind them.
func BenchmarkEngineMixed(b *testing.B) {
	for _, w := range []int{10, 50, 90} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for _, g := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
					benchMixed(b, w, g)
				})
			}
		})
	}
}

// BenchmarkEngineMixedLegacy is the A/B baseline for the concurrent
// write path: the same mixed workload on the legacy table-exclusive
// write lock with per-commit fsyncs (group window disabled). The
// acceptance target is w50/g=16 concurrent ≥ 3× this.
func BenchmarkEngineMixedLegacy(b *testing.B) {
	b.Run("w50/g=16", func(b *testing.B) {
		benchMixed(b, 50, 16, WithExclusiveWrites(), WithWALGroupWindow(0))
	})
}

// BenchmarkWALCommit isolates the WAL commit path: g goroutines issue
// single-row in-place UPDATEs against a synced log, with the
// group-commit window off (every commit writes and fsyncs alone) and on
// (concurrent commits coalesce into shared flushes). The fsyncs/commit
// metric is measured from the WAL's own counters; with grouping on at
// g=8 it must drop below 0.5 — the whole point of the leader/follower
// protocol — and the benchmark fails if it does not.
func BenchmarkWALCommit(b *testing.B) {
	for _, grouped := range []bool{false, true} {
		name := "group=off"
		opts := []Option{WithWALGroupWindow(0)}
		if grouped {
			name = "group=on"
			opts = []Option{WithWALGroupWindow(DefaultWALGroupWindow)}
		}
		b.Run(name, func(b *testing.B) {
			for _, g := range []int{1, 8} {
				b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
					const rows = 512
					db := benchEngine(b, rows, append([]Option{WithWAL(true)}, opts...)...)
					if _, err := db.Exec(`SELECT COUNT(*) FROM wide`); err != nil {
						b.Fatal(err)
					}
					writes := make([]string, rows)
					for i := range writes {
						writes[i] = fmt.Sprintf(`UPDATE wide SET grp = %d WHERE id = %d`, i%7, i)
					}
					procs := min(g, runtime.NumCPU())
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					var seq atomic.Int64
					b.SetParallelism((g + procs - 1) / procs)
					c0, _, f0, _ := db.WALGroupStats()
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						base := int(seq.Add(1)) * 97
						i := 0
						for pb.Next() {
							q := writes[(base+i*13)%rows]
							i++
							if _, err := db.Exec(q); err != nil {
								b.Error(err)
								return
							}
						}
					})
					b.StopTimer()
					commits, _, fsyncs, wait := db.WALGroupStats()
					commits -= c0
					fsyncs -= f0
					if commits > 0 {
						ratio := float64(fsyncs) / float64(commits)
						b.ReportMetric(ratio, "fsyncs/commit")
						b.ReportMetric(wait/float64(commits), "window-wait-s/commit")
						if grouped && g == 8 && commits >= 200 && ratio >= 0.5 {
							b.Fatalf("grouped commit at g=8: %.3f fsyncs/commit (%d fsyncs / %d commits), want < 0.5",
								ratio, fsyncs, commits)
						}
						if !grouped && ratio != 1 {
							b.Fatalf("ungrouped commit: %.3f fsyncs/commit, want exactly 1", ratio)
						}
					}
				})
			}
		})
	}
}
