package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRelocatingUpdatesNoDeadlock hammers the latch-order
// regression: an UPDATE whose pad grows past the slot forces a
// page-overflow relocation, so revalidation chases the moved row onto
// an arbitrary (typically freshly allocated, high-numbered) page. The
// statement then continues latching its remaining lower-numbered
// matches; before the high-water-mark discipline, blocking there could
// close a latch cycle against an ascending statement and wedge the
// table (both sides held the table read lock, so checkpoints and DDL
// hung behind them too). Overlapping key ranges with alternating
// grow/shrink pads make relocations and latch overlap constant; the
// test's only assertions are that every statement terminates and no
// rows are lost. Run under -race in CI.
func TestConcurrentRelocatingUpdatesNoDeadlock(t *testing.T) {
	const (
		rows    = 256
		writers = 8
		iters   = 300
	)
	db := testDB(t, WithPoolPages(256))
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, pad TEXT)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO t VALUES `)
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 's')", i)
	}
	mustExec(t, db, sb.String())

	grown := strings.Repeat("g", 700) // ~5 rows fill a page: growth relocates
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Overlapping half-table ranges, sliding per writer and
				// iteration; even passes grow (relocate), odd shrink.
				lo := ((w*37 + i*53) % rows) / 2
				pad := grown
				if i%2 == 1 {
					pad = "s"
				}
				_, err := db.Exec(fmt.Sprintf(
					`UPDATE t SET pad = '%s' WHERE id >= %d AND id < %d`, pad, lo, lo+rows/2))
				if err != nil {
					errs[w] = fmt.Errorf("writer %d iter %d: %w", w, i, err)
					return
				}
				// Interleave scans so snapshot readers ride along.
				if _, err := db.Exec(`SELECT id FROM t WHERE id >= 0`); err != nil {
					errs[w] = fmt.Errorf("writer %d scan %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if r := mustExec(t, db, `SELECT id FROM t`); len(r.Rows) != rows {
		t.Fatalf("%d rows after relocation storm, want %d", len(r.Rows), rows)
	}
}
