package engine

import (
	"fmt"
	"math"
	"testing"
)

func aggDB(t *testing.T) *Database {
	t.Helper()
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE sales (id INT PRIMARY KEY, region TEXT, amount FLOAT, units INT)`)
	rows := []string{
		`(1, 'east', 100.5, 10)`,
		`(2, 'west', 200.25, 20)`,
		`(3, 'east', 50.25, 5)`,
		`(4, 'north', 400.0, 40)`,
		`(5, 'east', 150.0, 15)`,
	}
	for _, r := range rows {
		mustExec(t, db, "INSERT INTO sales VALUES "+r)
	}
	return db
}

func TestCountStar(t *testing.T) {
	db := aggDB(t)
	res := mustExec(t, db, `SELECT COUNT(*) FROM sales`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "count(*)" {
		t.Fatalf("columns = %v", res.Columns)
	}
	// Every aggregated tuple is charged.
	if len(res.Keys) != 5 {
		t.Fatalf("keys = %v", res.Keys)
	}
}

func TestCountWithWhere(t *testing.T) {
	db := aggDB(t)
	res := mustExec(t, db, `SELECT COUNT(*) FROM sales WHERE region = 'east'`)
	if res.Rows[0][0].Int != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if len(res.Keys) != 3 {
		t.Fatalf("keys = %v", res.Keys)
	}
}

func TestSumAvgMinMax(t *testing.T) {
	db := aggDB(t)
	res := mustExec(t, db, `SELECT SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM sales`)
	row := res.Rows[0]
	if math.Abs(row[0].Float-901.0) > 1e-9 {
		t.Fatalf("sum = %v", row[0])
	}
	if math.Abs(row[1].Float-180.2) > 1e-9 {
		t.Fatalf("avg = %v", row[1])
	}
	if row[2].Float != 50.25 || row[3].Float != 400.0 {
		t.Fatalf("min/max = %v/%v", row[2], row[3])
	}
	if res.Columns[0] != "sum(amount)" || res.Columns[2] != "min(amount)" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestAggregateOverIntColumn(t *testing.T) {
	db := aggDB(t)
	res := mustExec(t, db, `SELECT SUM(units), MIN(units), MAX(units), COUNT(units) FROM sales`)
	row := res.Rows[0]
	if row[0].Float != 90 {
		t.Fatalf("sum units = %v", row[0])
	}
	if row[1].Int != 5 || row[2].Int != 40 {
		t.Fatalf("min/max = %v/%v", row[1], row[2])
	}
	if row[3].Int != 5 {
		t.Fatalf("count = %v", row[3])
	}
}

func TestMinMaxOverText(t *testing.T) {
	db := aggDB(t)
	res := mustExec(t, db, `SELECT MIN(region), MAX(region) FROM sales`)
	row := res.Rows[0]
	if row[0].Str != "east" || row[1].Str != "west" {
		t.Fatalf("min/max text = %v/%v", row[0], row[1])
	}
}

func TestAggregateEmptyMatch(t *testing.T) {
	db := aggDB(t)
	res := mustExec(t, db, `SELECT COUNT(*), SUM(amount), AVG(amount), MIN(amount) FROM sales WHERE id > 100`)
	row := res.Rows[0]
	if row[0].Int != 0 || row[1].Float != 0 || row[2].Float != 0 {
		t.Fatalf("empty aggregates = %v", row)
	}
	if len(res.Keys) != 0 {
		t.Fatal("keys on empty aggregate")
	}
}

func TestAggregateErrors(t *testing.T) {
	db := aggDB(t)
	if _, err := db.Exec(`SELECT SUM(region) FROM sales`); err == nil {
		t.Fatal("SUM over TEXT accepted")
	}
	if _, err := db.Exec(`SELECT AVG(region) FROM sales`); err == nil {
		t.Fatal("AVG over TEXT accepted")
	}
	if _, err := db.Exec(`SELECT SUM(nope) FROM sales`); err == nil {
		t.Fatal("unknown aggregate column accepted")
	}
}

func TestOrderByAsc(t *testing.T) {
	db := aggDB(t)
	res := mustExec(t, db, `SELECT id FROM sales ORDER BY amount`)
	want := []int64{3, 1, 5, 2, 4}
	for i, row := range res.Rows {
		if row[0].Int != want[i] {
			t.Fatalf("order = %v", res.Rows)
		}
	}
	// Keys follow row order.
	if res.Keys[0] != 3 || res.Keys[4] != 4 {
		t.Fatalf("keys = %v", res.Keys)
	}
}

func TestOrderByDescWithLimit(t *testing.T) {
	db := aggDB(t)
	res := mustExec(t, db, `SELECT id, amount FROM sales ORDER BY amount DESC LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int != 4 || res.Rows[1][0].Int != 2 {
		t.Fatalf("order = %v", res.Rows)
	}
}

func TestOrderByTextAndWhere(t *testing.T) {
	db := aggDB(t)
	res := mustExec(t, db, `SELECT region FROM sales WHERE amount >= 100 ORDER BY region ASC`)
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0].Str)
	}
	want := []string{"east", "east", "north", "west"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestOrderByUnknownColumn(t *testing.T) {
	db := aggDB(t)
	if _, err := db.Exec(`SELECT id FROM sales ORDER BY nope`); err == nil {
		t.Fatal("unknown ORDER BY column accepted")
	}
}

func TestOrderByStableOnTies(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	for i := 1; i <= 6; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i%2))
	}
	res := mustExec(t, db, `SELECT id FROM t ORDER BY v`)
	// Ties keep scan (id) order: 2,4,6 then 1,3,5.
	want := []int64{2, 4, 6, 1, 3, 5}
	for i, row := range res.Rows {
		if row[0].Int != want[i] {
			t.Fatalf("order = %v", res.Rows)
		}
	}
}

func TestAggregateParsing(t *testing.T) {
	db := aggDB(t)
	// Aggregates mixed with plain columns are rejected at parse time.
	if _, err := db.Exec(`SELECT id, COUNT(*) FROM sales`); err == nil {
		t.Fatal("mixed select accepted")
	}
	// SUM(*) invalid.
	if _, err := db.Exec(`SELECT SUM(*) FROM sales`); err == nil {
		t.Fatal("SUM(*) accepted")
	}
	// ORDER BY with aggregates invalid.
	if _, err := db.Exec(`SELECT COUNT(*) FROM sales ORDER BY id`); err == nil {
		t.Fatal("ORDER BY with aggregate accepted")
	}
	// A column named like a function without parens is a plain column.
	mustExec(t, db, `CREATE TABLE funcs (id INT PRIMARY KEY, count INT)`)
	mustExec(t, db, `INSERT INTO funcs VALUES (1, 9)`)
	res := mustExec(t, db, `SELECT count FROM funcs`)
	if res.Rows[0][0].Int != 9 {
		t.Fatalf("plain column shadowing func name: %v", res.Rows)
	}
}
