package engine

import (
	"fmt"
	"testing"
)

func secDB(t *testing.T) *Database {
	t.Helper()
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE users (id INT PRIMARY KEY, city TEXT, age INT, score FLOAT)`)
	for i := 0; i < 100; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO users VALUES (%d, 'city-%d', %d, %d.5)`,
			i, i%10, 20+i%5, i%7))
	}
	return db
}

func TestCreateIndexAndLookup(t *testing.T) {
	db := secDB(t)
	mustExec(t, db, `CREATE INDEX by_city ON users (city)`)
	res := mustExec(t, db, `SELECT id FROM users WHERE city = 'city-3'`)
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[0].Int%10 != 3 {
			t.Fatalf("wrong row %v", row)
		}
	}
}

func TestSecondaryIndexIntAndFloat(t *testing.T) {
	db := secDB(t)
	mustExec(t, db, `CREATE INDEX by_age ON users (age)`)
	mustExec(t, db, `CREATE INDEX by_score ON users (score)`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM users WHERE age = 22`)
	if res.Rows[0][0].Int != 20 {
		t.Fatalf("age count = %v", res.Rows[0][0])
	}
	res2 := mustExec(t, db, `SELECT COUNT(*) FROM users WHERE score = 3.5`)
	if res2.Rows[0][0].Int == 0 {
		t.Fatalf("score count = %v", res2.Rows[0][0])
	}
	// Int literal against float index coerces.
	res3 := mustExec(t, db, `SELECT COUNT(*) FROM users WHERE score = 4`)
	if res3.Rows[0][0].Int != 0 {
		// scores are all x.5, so an integer probe matches nothing — but
		// through the index path, not a scan error.
		t.Fatalf("int-literal float probe = %v", res3.Rows[0][0])
	}
}

func TestSecondaryIndexMaintainedOnWrite(t *testing.T) {
	db := secDB(t)
	mustExec(t, db, `CREATE INDEX by_city ON users (city)`)
	// Insert after index creation.
	mustExec(t, db, `INSERT INTO users VALUES (1000, 'city-3', 99, 0.0)`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM users WHERE city = 'city-3'`)
	if res.Rows[0][0].Int != 11 {
		t.Fatalf("after insert = %v", res.Rows[0][0])
	}
	// Update moves a row between keys.
	mustExec(t, db, `UPDATE users SET city = 'city-moved' WHERE id = 3`)
	res = mustExec(t, db, `SELECT COUNT(*) FROM users WHERE city = 'city-3'`)
	if res.Rows[0][0].Int != 10 {
		t.Fatalf("after update = %v", res.Rows[0][0])
	}
	res = mustExec(t, db, `SELECT id FROM users WHERE city = 'city-moved'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 3 {
		t.Fatalf("moved row = %v", res.Rows)
	}
	// Delete removes from the index.
	mustExec(t, db, `DELETE FROM users WHERE id = 13`)
	res = mustExec(t, db, `SELECT COUNT(*) FROM users WHERE city = 'city-3'`)
	if res.Rows[0][0].Int != 9 {
		t.Fatalf("after delete = %v", res.Rows[0][0])
	}
}

func TestSecondaryIndexWithExtraPredicates(t *testing.T) {
	db := secDB(t)
	mustExec(t, db, `CREATE INDEX by_city ON users (city)`)
	// The index narrows to city-3; the residual predicate filters further.
	res := mustExec(t, db, `SELECT id FROM users WHERE city = 'city-3' AND id < 50`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSecondaryIndexPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, tag TEXT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'a')`)
	mustExec(t, db, `CREATE INDEX by_tag ON t (tag)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s, err := db2.Schema("t")
	if err != nil || len(s.Indexes) != 1 || s.Indexes[0].Name != "by_tag" {
		t.Fatalf("schema = %+v, %v", s, err)
	}
	res := mustExec(t, db2, `SELECT COUNT(*) FROM t WHERE tag = 'a'`)
	if res.Rows[0][0].Int != 2 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestDropIndex(t *testing.T) {
	db := secDB(t)
	mustExec(t, db, `CREATE INDEX by_city ON users (city)`)
	mustExec(t, db, `DROP INDEX by_city ON users`)
	s, _ := db.Schema("users")
	if len(s.Indexes) != 0 {
		t.Fatalf("indexes = %v", s.Indexes)
	}
	// Query still works via scan.
	res := mustExec(t, db, `SELECT COUNT(*) FROM users WHERE city = 'city-3'`)
	if res.Rows[0][0].Int != 10 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if _, err := db.Exec(`DROP INDEX by_city ON users`); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestCreateIndexErrors(t *testing.T) {
	db := secDB(t)
	if _, err := db.Exec(`CREATE INDEX i ON nope (city)`); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := db.Exec(`CREATE INDEX i ON users (nope)`); err == nil {
		t.Fatal("unknown column accepted")
	}
	mustExec(t, db, `CREATE INDEX i ON users (city)`)
	if _, err := db.Exec(`CREATE INDEX i ON users (age)`); err == nil {
		t.Fatal("duplicate index name accepted")
	}
}

func TestIndexedQueryMatchesScan(t *testing.T) {
	// The same query with and without the index must agree.
	db := secDB(t)
	scan := mustExec(t, db, `SELECT id FROM users WHERE age = 23 ORDER BY id`)
	mustExec(t, db, `CREATE INDEX by_age ON users (age)`)
	indexed := mustExec(t, db, `SELECT id FROM users WHERE age = 23 ORDER BY id`)
	if len(scan.Rows) != len(indexed.Rows) {
		t.Fatalf("scan %d vs indexed %d", len(scan.Rows), len(indexed.Rows))
	}
	for i := range scan.Rows {
		if scan.Rows[i][0].Int != indexed.Rows[i][0].Int {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestParseCreateDropIndex(t *testing.T) {
	db := secDB(t)
	// Parser-level errors.
	for _, bad := range []string{
		`CREATE INDEX ON users (city)`,
		`CREATE INDEX i users (city)`,
		`CREATE INDEX i ON users city`,
		`CREATE INDEX i ON users (city`,
		`DROP INDEX i users`,
		`DROP INDEX ON users`,
	} {
		if _, err := db.Exec(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
