// Parallel scan executor: full table scans and aggregates partition the
// heap's page range into fixed-size chunks that a small worker pool
// claims through an atomic cursor. Workers fetch, decode, and filter
// pages concurrently — the buffer pool's lock striping keeps them off
// each other's latches — while the calling goroutine consumes chunk
// results strictly in page order, so parallel execution is
// indistinguishable from a sequential scan to everything above it
// (row order, LIMIT semantics, Keys order, aggregate merge order).
//
// Early termination (LIMIT satisfied, callback false, first error)
// raises a shared stop flag that workers poll between pages; per-chunk
// result channels are buffered so no goroutine ever blocks on a
// consumer that has already left.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// scanChunkPages is the claim unit: large enough that the atomic cursor
// and channel round-trip amortize across many pages, small enough that
// chunks stripe evenly across workers and LIMIT cancellation is prompt.
const scanChunkPages = 16

// minParallelScanPages gates the executor: below two chunks there is
// nothing to overlap and goroutine setup would only add latency.
const minParallelScanPages = 2 * scanChunkPages

// scanWorkersFor resolves the worker count for a scan of t: the
// configured ceiling (default GOMAXPROCS), further capped by the chunk
// count so no worker starts without work. Returns 1 — sequential — for
// small heaps.
func (db *Database) scanWorkersFor(t *table) int {
	n := t.heap.NumPages()
	if n < minParallelScanPages || db.scanWorkers <= 1 {
		return 1
	}
	w := db.scanWorkers
	if chunks := int((n + scanChunkPages - 1) / scanChunkPages); w > chunks {
		w = chunks
	}
	return w
}

// chunkResult carries one chunk's mapped value or the error that ended
// its scan.
type chunkResult[T any] struct {
	val T
	err error
}

// runChunkedScan partitions [0, n) pages into chunks, maps each chunk on
// one of workers goroutines, and reduces results on the calling
// goroutine in ascending chunk order. mapChunk should poll stop between
// pages and return early when it is set; reduce returning false (or
// either function erroring) cancels the remaining work. runChunkedScan
// returns only after every worker has exited, so mapped state is never
// touched after it returns.
func runChunkedScan[T any](n storage.PageID, workers int,
	mapChunk func(lo, hi storage.PageID, stop *atomic.Bool) (T, error),
	reduce func(T) (bool, error),
) error {
	chunks := int((n + scanChunkPages - 1) / scanChunkPages)
	if chunks == 0 {
		return nil
	}
	// One buffered slot per chunk: a worker's send never blocks, so
	// workers can drain to exit even when the reducer stopped early.
	outs := make([]chan chunkResult[T], chunks)
	for i := range outs {
		outs[i] = make(chan chunkResult[T], 1)
	}
	var (
		cursor atomic.Int64
		stop   atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(cursor.Add(1) - 1)
				if c >= chunks || stop.Load() {
					return
				}
				lo := storage.PageID(c) * scanChunkPages
				hi := lo + scanChunkPages
				if hi > n {
					hi = n
				}
				val, err := mapChunk(lo, hi, &stop)
				if err != nil {
					stop.Store(true)
				}
				outs[c] <- chunkResult[T]{val: val, err: err}
				// Yield so the reducer can act on the chunk just sent:
				// with few (or one) scheduler Ps a worker would otherwise
				// run far ahead of the consumer, and a LIMIT that was
				// satisfied chunks ago would keep scanning.
				runtime.Gosched()
			}
		}()
	}
	// Workers claim chunks in ascending order, so the next unread chunk
	// is always the earliest-claimed outstanding one: the reducer never
	// waits on a chunk behind an unclaimed one, and once stop is set it
	// stops reading entirely (buffered sends are simply dropped).
	var err error
	for c := 0; c < chunks && err == nil; c++ {
		out := <-outs[c]
		if out.err != nil {
			err = out.err
			break
		}
		cont, rerr := reduce(out.val)
		if rerr != nil {
			err = rerr
		}
		if rerr != nil || !cont {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	return err
}

// scannedRows is one chunk's matching rows, decoded and filtered by the
// worker that scanned it.
type scannedRows struct {
	rids []storage.RID
	rows []catalog.Row
}

// scanChunk scans heap pages [lo, hi), decoding every live record and
// keeping the rows that match the conjuncts. Kept rows own their memory
// (freshly allocated, strings copied out of the pinned page), so they
// outlive the pin and survive hand-off to the reducer. need is the
// decode mask (must cover the conjunct columns).
func scanChunk(t *table, conj []boundConj, need []bool, snap uint64, lo, hi storage.PageID, stop *atomic.Bool) (scannedRows, error) {
	var out scannedRows
	for id := lo; id < hi; id++ {
		if stop.Load() {
			return out, nil
		}
		var innerErr error
		_, err := t.heap.ScanPageAt(id, snap, func(rid storage.RID, rec []byte) bool {
			row, derr := catalog.DecodeRowInto(t.schema, rec, nil, need)
			if derr != nil {
				innerErr = derr
				return false
			}
			ok, merr := matchesBound(row, conj)
			if merr != nil {
				innerErr = merr
				return false
			}
			if ok {
				out.rids = append(out.rids, rid)
				out.rows = append(out.rows, row)
			}
			return true
		})
		if err == nil {
			err = innerErr
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// parallelFullScan streams matching rows to fn in page order through the
// chunked executor, reading every page at the snapshot epoch the caller
// registered. fn runs on the calling goroutine only; fn returning
// false cancels outstanding workers (LIMIT early-cancel). Callers hold
// at least the table read lock.
func (db *Database) parallelFullScan(t *table, conj []boundConj, need []bool, workers int, snap uint64, fn func(storage.RID, catalog.Row) (bool, error)) error {
	return runChunkedScan(t.heap.NumPages(), workers,
		func(lo, hi storage.PageID, stop *atomic.Bool) (scannedRows, error) {
			return scanChunk(t, conj, need, snap, lo, hi, stop)
		},
		func(c scannedRows) (bool, error) {
			for i := range c.rows {
				cont, err := fn(c.rids[i], c.rows[i])
				if err != nil || !cont {
					return cont, err
				}
			}
			return true, nil
		})
}

// chunkAgg is one chunk's aggregate partial: private accumulators plus
// the keys of the rows folded into them.
type chunkAgg struct {
	accs []aggAccum
	keys []uint64
}

// parallelAggregate evaluates the accumulators over all matching rows of
// a full scan: every worker folds its chunk's rows into private
// accumulators, and the reducer merges the partials in page order —
// deterministic for a given heap layout, bitwise-identical to the
// sequential fold. Callers hold at least the table read lock and a
// registered snapshot at snap.
func (db *Database) parallelAggregate(t *table, conj []boundConj, need []bool, workers int, snap uint64, accs []aggAccum, res *Result) error {
	return runChunkedScan(t.heap.NumPages(), workers,
		func(lo, hi storage.PageID, stop *atomic.Bool) (chunkAgg, error) {
			part := chunkAgg{accs: make([]aggAccum, len(accs))}
			for i := range accs {
				part.accs[i].col = accs[i].col
			}
			// Rows are folded into the accumulators and dropped, so the
			// whole chunk decodes through one scratch row. (observe copies
			// the values it keeps; decoded strings own their memory.)
			var scratch catalog.Row
			for id := lo; id < hi; id++ {
				if stop.Load() {
					return part, nil
				}
				var innerErr error
				_, err := t.heap.ScanPageAt(id, snap, func(_ storage.RID, rec []byte) bool {
					row, derr := catalog.DecodeRowInto(t.schema, rec, scratch[:0], need)
					if derr != nil {
						innerErr = derr
						return false
					}
					scratch = row
					ok, merr := matchesBound(row, conj)
					if merr != nil {
						innerErr = merr
						return false
					}
					if !ok {
						return true
					}
					part.keys = append(part.keys, uint64(row[t.schema.Key].Int))
					for i := range part.accs {
						part.accs[i].observe(row)
					}
					return true
				})
				if err == nil {
					err = innerErr
				}
				if err != nil {
					return part, err
				}
			}
			return part, nil
		},
		func(part chunkAgg) (bool, error) {
			res.Keys = append(res.Keys, part.keys...)
			for i := range accs {
				accs[i].merge(part.accs[i])
			}
			return true, nil
		})
}
