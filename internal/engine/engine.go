// Package engine is the embedded relational database the delay defense
// wraps: heap files behind an LRU buffer pool, a B+tree per table on the
// INT primary key, and an executor for the sqlmini statement set. It
// stands in for the "commercial relational database" of the paper's
// evaluation so that the Table 5 overhead experiment measures a real
// disk-backed query path.
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/index"
	"repro/internal/sqlmini"
	"repro/internal/storage"
)

// DefaultPoolPages is the per-table buffer pool capacity when none is
// configured.
const DefaultPoolPages = 256

// DefaultPlanCacheEntries is the prepared-statement cache capacity when
// none is configured. The cache keys on normalized SQL text, so the
// working set is the number of distinct query shapes, not distinct
// queries; 1024 shapes covers any workload this engine serves.
const DefaultPlanCacheEntries = 1024

// Option configures a Database.
type Option func(*Database)

// WithPoolPages sets the per-table buffer pool capacity in pages.
func WithPoolPages(n int) Option {
	return func(db *Database) { db.poolPages = n }
}

// WithIOCost installs a hook invoked on every physical page read/write,
// used by experiments to model 2004-era I/O latency.
func WithIOCost(fn func()) Option {
	return func(db *Database) { db.ioCost = fn }
}

// WithScanWorkers caps the goroutines a full table scan or aggregate may
// fan out across. The default is GOMAXPROCS; 1 disables the parallel
// scan executor. Values above GOMAXPROCS are honored — workers then
// timeshare cores, which still overlaps page decode with pool I/O.
func WithScanWorkers(n int) Option {
	return func(db *Database) { db.scanWorkers = n }
}

// WithWAL enables per-statement write-ahead logging: every mutating
// statement appends the pages it dirtied plus a commit record to
// <table>.wal before returning, and recovery replays committed batches
// at open. synced additionally fsyncs the log on every commit (durable
// against power loss, not just process crash).
func WithWAL(synced bool) Option {
	return func(db *Database) {
		db.useWAL = true
		db.walSynced = synced
	}
}

// WithPlanCache sets the prepared-statement cache capacity in entries;
// 0 disables the cache (every statement parses and plans from scratch).
func WithPlanCache(n int) Option {
	return func(db *Database) { db.planCacheCap = n }
}

// DefaultWALGroupWindow is the group-commit accumulation window when
// none is configured: long enough to coalesce a burst of concurrent
// commits into one fsync, short enough to be invisible next to the
// fsync it saves. Sequential committers never wait it (a solo leader
// flushes immediately), so it costs single-writer workloads nothing.
const DefaultWALGroupWindow = 200 * time.Microsecond

// WithWALGroupWindow sets the WAL group-commit accumulation window.
// 0 disables grouping: every commit writes and fsyncs alone, exactly
// the pre-group-commit behavior.
func WithWALGroupWindow(d time.Duration) Option {
	return func(db *Database) { db.walGroupWindow = d }
}

// WithExclusiveWrites keeps mutating statements on the legacy
// table-exclusive write path: one writer at a time per table, in-place
// page mutation, whole-pool dirty-image logging. The default is the
// concurrent write path (per-page latches, private page copies,
// epoch-stamped snapshot publication). The option exists for A/B
// benchmarking and as an escape hatch.
func WithExclusiveWrites() Option {
	return func(db *Database) { db.exclusiveWrites = true }
}

// walCheckpointBytes is the log size past which a mutation triggers a
// checkpoint (flush data pages, sync, truncate the log).
const walCheckpointBytes = 8 << 20

// Database is an embedded relational database rooted at a directory: one
// page file per table plus a JSON catalog. It is safe for concurrent use;
// statements execute atomically with respect to each other per table.
type Database struct {
	dir          string
	cat          *catalog.Catalog
	poolPages    int
	scanWorkers  int
	planCacheCap int
	ioCost       func()
	useWAL       bool
	walSynced    bool
	// walGroupWindow is the group-commit accumulation window (0 = every
	// commit flushes alone); exclusiveWrites selects the legacy
	// table-exclusive mutation path over the concurrent one.
	walGroupWindow  time.Duration
	exclusiveWrites bool

	// cpFailures/cpErr record post-commit checkpoint failures; see
	// noteCheckpointErr.
	cpFailures atomic.Int64
	cpErr      atomic.Pointer[error]

	// schemaEpoch counts DDL statements (table and index create/drop).
	// Cached plans are stamped with the epoch they were built under and
	// are only executed while it still matches; every DDL bumps the
	// epoch inside its exclusive section and purges the plan cache.
	schemaEpoch atomic.Uint64
	planCache   *planCache // nil when WithPlanCache(0)

	mu     sync.RWMutex
	tables map[string]*table
	closed bool
}

// table couples one heap file with its indexes.
//
// mu is the table lifecycle lock. On the concurrent write path every
// statement — reads AND writes — holds it shared; the exclusive takers
// are the operations that need the table quiescent: index DDL,
// checkpoints, Flush/DropCaches, Close/DropTable, and the CountStore's
// legacy in-place mutations. Writers therefore never block readers at
// table granularity; their mutual isolation comes from per-page write
// latches (storage.WriteSet) plus the structures below. Under
// WithExclusiveWrites, mutating statements take mu exclusively instead
// and the pre-latch invariants hold: page bytes are mutated in place
// only under the exclusive lock while the frame is pinned.
//
// idxMu guards the primary key B+tree and the secondary indexes on the
// concurrent path. Commits apply index changes under idxMu exclusive
// immediately after publishing their page versions, so a reader that
// captures (index state, snapshot epoch) under idxMu shared always gets
// a mutually consistent pair.
//
// keyMu/inflight is the insert key-claim map: concurrent INSERTs claim
// their primary keys before probing the index, converting a racing
// duplicate insert into a clean duplicate-key error for exactly one of
// the two statements.
type table struct {
	mu     sync.RWMutex
	schema catalog.Schema
	pager  *storage.Pager
	pool   *storage.Pool
	heap   *storage.HeapFile
	pk     *index.BTree[int64, storage.RID]
	wal    *storage.WAL // nil unless WithWAL
	// secondaries parallel schema.Indexes, same order.
	secondaries []*secondary

	idxMu    sync.RWMutex
	keyMu    sync.Mutex
	inflight map[int64]struct{}
}

// claimKeys atomically claims every key for an in-flight insert, or
// claims none and reports the first key already claimed by a concurrent
// statement.
func (t *table) claimKeys(keys []int64) (int64, bool) {
	t.keyMu.Lock()
	defer t.keyMu.Unlock()
	if t.inflight == nil {
		t.inflight = make(map[int64]struct{})
	}
	for i, k := range keys {
		if _, busy := t.inflight[k]; busy {
			for _, u := range keys[:i] {
				delete(t.inflight, u)
			}
			return k, false
		}
		t.inflight[k] = struct{}{}
	}
	return 0, true
}

func (t *table) releaseKeys(keys []int64) {
	t.keyMu.Lock()
	for _, k := range keys {
		delete(t.inflight, k)
	}
	t.keyMu.Unlock()
}

// commitWrite is the concurrent-path commit point: it logs the write
// set's page images, then — under the index lock — publishes the page
// versions and applies the index changes, so snapshot readers observe
// the whole statement or none of it. On a WAL error nothing publishes:
// the caller releases the write set and the statement has rolled back.
// It reports whether the log has grown past the checkpoint threshold;
// the caller runs t.checkpoint() after dropping its table read lock.
func (t *table) commitWrite(ws *storage.WriteSet, apply func()) (checkpoint bool, err error) {
	if t.wal != nil {
		if err := t.wal.AppendBatch(ws.Images()); err != nil {
			return false, err
		}
	}
	t.idxMu.Lock()
	ws.Publish()
	apply()
	t.idxMu.Unlock()
	return t.wal != nil && t.wal.Size() >= walCheckpointBytes, nil
}

// checkpoint flushes data pages and truncates the log once it outgrows
// the threshold. It takes the table lock exclusively — no statement may
// be in flight — and rechecks the size, so concurrent committers that
// all observed the threshold run one checkpoint, not several.
func (t *table) checkpoint() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wal == nil || t.wal.Size() < walCheckpointBytes {
		return nil
	}
	if err := t.pool.FlushAll(); err != nil {
		return err
	}
	if err := t.pager.Sync(); err != nil {
		return err
	}
	return t.wal.Truncate()
}

// Open opens (creating if needed) the database in dir.
func Open(dir string, opts ...Option) (*Database, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: creating %s: %w", dir, err)
	}
	cat, err := catalog.Open(dir)
	if err != nil {
		return nil, err
	}
	db := &Database{
		dir:            dir,
		cat:            cat,
		poolPages:      DefaultPoolPages,
		scanWorkers:    runtime.GOMAXPROCS(0),
		planCacheCap:   DefaultPlanCacheEntries,
		walGroupWindow: DefaultWALGroupWindow,
		tables:         make(map[string]*table),
	}
	for _, opt := range opts {
		opt(db)
	}
	if db.poolPages < 1 {
		return nil, errors.New("engine: pool pages < 1")
	}
	if db.scanWorkers < 1 {
		return nil, errors.New("engine: scan workers < 1")
	}
	if db.planCacheCap < 0 {
		return nil, errors.New("engine: plan cache entries < 0")
	}
	if db.planCacheCap > 0 {
		db.planCache = newPlanCache(db.planCacheCap)
	}
	for _, name := range cat.Tables() {
		schema, err := cat.Get(name)
		if err != nil {
			return nil, err
		}
		if _, err := db.loadTable(schema); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (db *Database) tablePath(name string) string {
	return filepath.Join(db.dir, strings.ToLower(name)+".tbl")
}

// loadTable opens the table's page file and rebuilds its primary key
// index from the heap.
func (db *Database) loadTable(schema catalog.Schema) (*table, error) {
	pager, err := storage.OpenPager(db.tablePath(schema.Table))
	if err != nil {
		return nil, err
	}
	if db.ioCost != nil {
		pager.SetIOCost(db.ioCost)
	}
	var wal *storage.WAL
	if db.useWAL {
		wal, err = storage.OpenWAL(db.tablePath(schema.Table)+".wal", db.walSynced)
		if err != nil {
			pager.Close()
			return nil, err
		}
		if db.walGroupWindow > 0 {
			wal.SetGroupWindow(db.walGroupWindow)
		}
		// Recover: reapply committed batches, then checkpoint so the log
		// starts empty.
		if _, err := wal.Replay(func(im storage.PageImage) error {
			return pager.WriteImage(im.ID, im.Image)
		}); err != nil {
			wal.Close()
			pager.Close()
			return nil, fmt.Errorf("engine: recovering %q: %w", schema.Table, err)
		}
		if err := pager.Sync(); err != nil {
			wal.Close()
			pager.Close()
			return nil, err
		}
		if err := wal.Truncate(); err != nil {
			wal.Close()
			pager.Close()
			return nil, err
		}
	}
	pool, err := storage.NewPool(pager, db.poolPages)
	if err != nil {
		pager.Close()
		return nil, err
	}
	heap, err := storage.NewHeapFile(pool)
	if err != nil {
		pager.Close()
		return nil, err
	}
	t := &table{
		schema: schema,
		pager:  pager,
		pool:   pool,
		heap:   heap,
		pk:     index.NewBTree[int64, storage.RID](),
		wal:    wal,
	}
	for _, def := range schema.Indexes {
		sec, serr := newSecondary(def, schema)
		if serr != nil {
			pager.Close()
			return nil, serr
		}
		t.secondaries = append(t.secondaries, sec)
	}
	var scanErr error
	err = heap.Scan(func(rid storage.RID, rec []byte) bool {
		row, derr := catalog.DecodeRow(schema, rec)
		if derr != nil {
			scanErr = fmt.Errorf("engine: rebuilding index for %q at %v: %w", schema.Table, rid, derr)
			return false
		}
		t.pk.Put(row[schema.Key].Int, rid)
		for _, sec := range t.secondaries {
			sec.insert(row, rid)
		}
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		pager.Close()
		return nil, err
	}
	db.mu.Lock()
	db.tables[strings.ToLower(schema.Table)] = t
	db.mu.Unlock()
	return t, nil
}

func (db *Database) getTable(name string) (*table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, errors.New("engine: database closed")
	}
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", name)
	}
	return t, nil
}

// HasTuple reports whether any table holds a row whose primary key is
// key — the existence check behind the admin quote endpoint's
// unknown-tuple validation. Tuple ids in delay accounting are the
// primary keys queries return, so a key unknown to every table can
// never have been priced.
func (db *Database) HasTuple(key uint64) bool {
	db.mu.RLock()
	tables := make([]*table, 0, len(db.tables))
	if !db.closed {
		for _, t := range db.tables {
			tables = append(tables, t)
		}
	}
	db.mu.RUnlock()
	for _, t := range tables {
		t.mu.RLock()
		t.idxMu.RLock()
		_, ok := t.pk.Get(int64(key))
		t.idxMu.RUnlock()
		t.mu.RUnlock()
		if ok {
			return true
		}
	}
	return false
}

// Tables returns the names of all tables.
func (db *Database) Tables() []string { return db.cat.Tables() }

// Schema returns the schema of the named table.
func (db *Database) Schema(name string) (catalog.Schema, error) { return db.cat.Get(name) }

// CreateTable registers a new table.
func (db *Database) CreateTable(schema catalog.Schema) error {
	if err := db.cat.Create(schema); err != nil {
		return err
	}
	if _, err := db.loadTable(schema); err != nil {
		db.cat.Drop(schema.Table)
		return err
	}
	db.bumpSchemaEpoch()
	return nil
}

// DropTable removes a table and deletes its data file.
func (db *Database) DropTable(name string) error {
	t, err := db.getTable(name)
	if err != nil {
		return err
	}
	if err := db.cat.Drop(name); err != nil {
		return err
	}
	db.mu.Lock()
	delete(db.tables, strings.ToLower(name))
	db.mu.Unlock()
	db.bumpSchemaEpoch()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wal != nil {
		if err := t.wal.Close(); err != nil {
			return err
		}
		if err := os.Remove(db.tablePath(name) + ".wal"); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("engine: removing table wal: %w", err)
		}
	}
	if err := t.pager.Close(); err != nil {
		return err
	}
	if err := os.Remove(db.tablePath(name)); err != nil {
		return fmt.Errorf("engine: removing table file: %w", err)
	}
	return nil
}

// Flush writes all dirty pages of all tables to disk. The exclusive
// table lock excludes in-flight mutators (concurrent-path writers hold
// it shared for the whole statement) so no torn page image reaches disk.
func (db *Database) Flush() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for name, t := range db.tables {
		t.mu.Lock()
		err := t.pool.FlushAll()
		if err == nil {
			err = t.pager.Sync()
		}
		t.mu.Unlock()
		if err != nil {
			return fmt.Errorf("engine: flushing %q: %w", name, err)
		}
	}
	return nil
}

// DropCaches flushes and empties every table's buffer pool, simulating a
// cold start for the Table 5 base-cost measurement.
func (db *Database) DropCaches() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for name, t := range db.tables {
		t.mu.Lock()
		err := t.pool.DropAll()
		t.mu.Unlock()
		if err != nil {
			return fmt.Errorf("engine: dropping caches of %q: %w", name, err)
		}
	}
	return nil
}

// PoolStats aggregates buffer pool statistics across tables.
func (db *Database) PoolStats() (hits, misses, evicts int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		h, m, e := t.pool.Stats()
		hits += h
		misses += m
		evicts += e
	}
	return hits, misses, evicts
}

// WriteStats aggregates concurrent-write-path counters across tables:
// page write-latch acquisitions and contended waits, and snapshot page
// versions currently retained / retired in total — the
// engine_write_latch_* and engine_snapshot_* instruments.
func (db *Database) WriteStats() (latchAcq, latchWaits, versLive, versRetired int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		a, w, l, r := t.pool.WriteStats()
		latchAcq += a
		latchWaits += w
		versLive += l
		versRetired += r
	}
	return latchAcq, latchWaits, versLive, versRetired
}

// noteCheckpointErr records a checkpoint failure. A checkpoint runs
// after its triggering statement has committed, published, and become
// WAL-durable, so the failure must not be reported as the statement
// failing — the mutation's Result still reaches the caller, and the
// failure is surfaced here for health machinery (the shield latches
// degraded mode from TakeCheckpointErr after each write).
func (db *Database) noteCheckpointErr(err error) {
	if err == nil {
		return
	}
	db.cpFailures.Add(1)
	db.cpErr.Store(&err)
}

// CheckpointFailures counts post-commit checkpoint failures since open —
// the engine_checkpoint_failures_total instrument.
func (db *Database) CheckpointFailures() int64 { return db.cpFailures.Load() }

// TakeCheckpointErr returns and clears the most recent post-commit
// checkpoint failure, or nil. The statement that triggered the failed
// checkpoint succeeded; callers use the error only to judge storage
// health (errors.Is(err, storage.ErrIO)), never to fail a request.
func (db *Database) TakeCheckpointErr() error {
	if p := db.cpErr.Swap(nil); p != nil {
		return *p
	}
	return nil
}

// WALGroupStats aggregates group-commit pipeline counters across table
// WALs: committed batches, page records, fsyncs issued, and leader time
// spent in the accumulation window — the wal_group_* instruments.
func (db *Database) WALGroupStats() (commits, records, fsyncs int64, windowWaitSeconds float64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		if t.wal == nil {
			continue
		}
		c, r, f, w := t.wal.GroupStats()
		commits += c
		records += r
		fsyncs += f
		windowWaitSeconds += w.Seconds()
	}
	return commits, records, fsyncs, windowWaitSeconds
}

// TablePoolStats reports one table's buffer pool counters, for the
// per-table engine_pool_* instruments at GET /metrics.
func (db *Database) TablePoolStats(name string) (hits, misses, evicts int64, err error) {
	t, err := db.getTable(name)
	if err != nil {
		return 0, 0, 0, err
	}
	hits, misses, evicts = t.pool.Stats()
	return hits, misses, evicts, nil
}

// PinnedFrames returns the total buffer pool pin count across tables.
// Between statements it must be zero — every fetch is balanced by an
// unpin on all paths, including early-terminated scans — and the
// leak-check tests assert exactly that.
func (db *Database) PinnedFrames() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, t := range db.tables {
		n += t.pool.Pinned()
	}
	return n
}

// Close flushes and closes every table.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("engine: already closed")
	}
	db.closed = true
	var first error
	for _, t := range db.tables {
		// Exclusive table lock: in-flight statements that grabbed the
		// table before closed was set finish before teardown.
		t.mu.Lock()
		defer t.mu.Unlock()
		if err := t.pool.FlushAll(); err != nil && first == nil {
			first = err
		}
		if t.wal != nil {
			// Data pages are down; the log is no longer needed.
			if err := t.pager.Sync(); err != nil && first == nil {
				first = err
			}
			if err := t.wal.Truncate(); err != nil && first == nil {
				first = err
			}
			if err := t.wal.Close(); err != nil && first == nil {
				first = err
			}
		}
		if err := t.pager.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// logMutation appends the table's dirty pages plus a commit record to its
// WAL (when enabled), checkpointing once the log grows large. Mutating
// statement paths call it before returning success.
func (t *table) logMutation() error {
	if t.wal == nil {
		return nil
	}
	if err := t.wal.AppendBatch(t.pool.DirtyImages()); err != nil {
		return err
	}
	if t.wal.Size() < walCheckpointBytes {
		return nil
	}
	if err := t.pool.FlushAll(); err != nil {
		return err
	}
	if err := t.pager.Sync(); err != nil {
		return err
	}
	return t.wal.Truncate()
}

// Result is the outcome of executing one statement.
type Result struct {
	// Columns names the projected columns for SELECT results.
	Columns []string
	// Rows holds SELECT output.
	Rows []catalog.Row
	// Keys holds the primary keys of the tuples the statement touched:
	// for SELECT, one per output row in row order (the tuple ids the
	// delay defense charges for); for UPDATE and DELETE, the keys of the
	// affected rows (which the freshness tracker bumps).
	Keys []uint64
	// Affected is the number of rows inserted, updated, or deleted.
	Affected int
}

// Exec executes one SQL statement through the prepared-statement path:
// a repeated SELECT shape hits the plan cache and skips parse and plan
// entirely.
func (db *Database) Exec(sql string) (*Result, error) {
	p, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	res, err := p.Exec()
	p.Release()
	return res, err
}

// bumpSchemaEpoch records a DDL statement: stamped plans become stale
// and the cache is purged. Callers hold the exclusive lock the DDL runs
// under, so the bump is ordered against every plan build and execution
// of the affected table.
func (db *Database) bumpSchemaEpoch() {
	db.schemaEpoch.Add(1)
	if db.planCache != nil {
		db.planCache.purge()
	}
}

// PlanCacheStats reports the plan cache's counters for the
// engine_plan_cache_* instruments at GET /metrics. All zeros when the
// cache is disabled.
func (db *Database) PlanCacheStats() (hits, misses, invalidations int64, entries int) {
	if db.planCache == nil {
		return 0, 0, 0, 0
	}
	return db.planCache.stats()
}

// ExecScript executes a semicolon-separated statement sequence (e.g. a
// schema/load file), stopping at the first error. It returns one result
// per executed statement; on error the results of the statements that
// already ran are returned alongside it.
func (db *Database) ExecScript(src string) ([]*Result, error) {
	stmts, err := sqlmini.ParseScript(src)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, 0, len(stmts))
	for i, stmt := range stmts {
		res, err := db.ExecStmt(stmt)
		if err != nil {
			return results, fmt.Errorf("engine: statement %d: %w", i+1, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// ExecStmt executes a parsed statement.
func (db *Database) ExecStmt(stmt sqlmini.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlmini.CreateTable:
		return db.execCreate(s)
	case *sqlmini.DropTable:
		if err := db.DropTable(s.Table); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlmini.CreateIndex:
		return db.execCreateIndex(s)
	case *sqlmini.DropIndex:
		return db.execDropIndex(s)
	case *sqlmini.Insert:
		return db.execInsert(s)
	case *sqlmini.Select:
		return db.execSelect(s)
	case *sqlmini.Update:
		return db.execUpdate(s)
	case *sqlmini.Delete:
		return db.execDelete(s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}
