package engine

import (
	"fmt"
	"sync"
	"testing"
)

// planCacheDB opens a database (plan cache on by default) with a small
// populated table: ids 0..49, grp = id%5, name = "n<id>".
func planCacheDB(t *testing.T, opts ...Option) *Database {
	t.Helper()
	db := testDB(t, opts...)
	mustExec(t, db, `CREATE TABLE items (id INT PRIMARY KEY, grp INT, name TEXT)`)
	for i := 0; i < 50; i += 10 {
		stmt := `INSERT INTO items VALUES `
		for j := i; j < i+10; j++ {
			if j > i {
				stmt += ", "
			}
			stmt += fmt.Sprintf(`(%d, %d, 'n%d')`, j, j%5, j)
		}
		mustExec(t, db, stmt)
	}
	return db
}

func TestPlanCacheHitOnRepeatedShape(t *testing.T) {
	db := planCacheDB(t)
	h0, m0, _, _ := db.PlanCacheStats()

	r1 := mustExec(t, db, `SELECT name FROM items WHERE id = 7`)
	if len(r1.Rows) != 1 || r1.Rows[0][0].Str != "n7" {
		t.Fatalf("first query: %+v", r1.Rows)
	}
	h1, m1, _, e1 := db.PlanCacheStats()
	if h1 != h0 || m1 != m0+1 || e1 != 1 {
		t.Fatalf("after first query: hits %d->%d misses %d->%d entries %d",
			h0, h1, m0, m1, e1)
	}

	// Same shape, different literal: must hit and bind the new parameter.
	r2 := mustExec(t, db, `SELECT name FROM items WHERE id = 9`)
	if len(r2.Rows) != 1 || r2.Rows[0][0].Str != "n9" {
		t.Fatalf("second query: %+v", r2.Rows)
	}
	h2, m2, _, e2 := db.PlanCacheStats()
	if h2 != h1+1 || m2 != m1 || e2 != 1 {
		t.Fatalf("after second query: hits %d->%d misses %d->%d entries %d",
			h1, h2, m1, m2, e2)
	}
}

func TestPlanCacheNormalizationSharesShapes(t *testing.T) {
	db := planCacheDB(t)

	// Case, whitespace, trailing semicolon, and literal value all
	// normalize away: five statements, one cache entry, four hits.
	variants := []struct {
		sql  string
		want string
	}{
		{`SELECT name FROM items WHERE id = 3`, "n3"},
		{`select name from items where id = 4`, "n4"},
		{"SELECT\tname  FROM items\nWHERE id=5", "n5"},
		{`  SELECT name FROM items WHERE id = 6 ; `, "n6"},
		{`Select Name From Items Where Id = 7`, "n7"},
	}
	h0, m0, _, _ := db.PlanCacheStats()
	for _, v := range variants {
		res := mustExec(t, db, v.sql)
		if len(res.Rows) != 1 || res.Rows[0][0].Str != v.want {
			t.Fatalf("%q: got %+v, want %q", v.sql, res.Rows, v.want)
		}
	}
	h1, m1, _, entries := db.PlanCacheStats()
	if m1 != m0+1 {
		t.Errorf("misses: %d -> %d, want exactly one (shared shape)", m0, m1)
	}
	if h1 != h0+int64(len(variants)-1) {
		t.Errorf("hits: %d -> %d, want +%d", h0, h1, len(variants)-1)
	}
	if entries != 1 {
		t.Errorf("entries = %d, want 1", entries)
	}
}

func TestPlanCacheInvalidatedByIndexDDL(t *testing.T) {
	db := planCacheDB(t)
	mustExec(t, db, `SELECT grp FROM items WHERE id = 1`)
	mustExec(t, db, `SELECT grp FROM items WHERE id = 2`) // hit: cache warm
	_, m0, inv0, _ := db.PlanCacheStats()

	mustExec(t, db, `CREATE INDEX by_grp ON items (grp)`)
	_, _, inv1, entries := db.PlanCacheStats()
	if inv1 <= inv0 {
		t.Errorf("invalidations %d -> %d, want growth on CREATE INDEX", inv0, inv1)
	}
	if entries != 0 {
		t.Errorf("entries = %d after CREATE INDEX, want 0", entries)
	}

	// The dropped plan must not be served: the next same-shape query
	// misses, rebuilds against the new schema epoch, and still answers
	// correctly (now eligible for the secondary index path on grp).
	res := mustExec(t, db, `SELECT grp FROM items WHERE id = 3`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 3 {
		t.Fatalf("post-DDL query: %+v", res.Rows)
	}
	_, m1, _, _ := db.PlanCacheStats()
	if m1 != m0+1 {
		t.Errorf("misses %d -> %d, want exactly one post-DDL rebuild", m0, m1)
	}

	mustExec(t, db, `DROP INDEX by_grp ON items`)
	if _, _, _, entries := db.PlanCacheStats(); entries != 0 {
		t.Errorf("entries = %d after DROP INDEX, want 0", entries)
	}
	res = mustExec(t, db, `SELECT grp FROM items WHERE id = 4`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 4 {
		t.Fatalf("post-DROP INDEX query: %+v", res.Rows)
	}
}

func TestPlanCacheNeverServesAcrossSchemaChange(t *testing.T) {
	db := planCacheDB(t)
	// Warm the shape against the original layout (name is column 2).
	mustExec(t, db, `SELECT name FROM items WHERE id = 1`)
	mustExec(t, db, `SELECT name FROM items WHERE id = 2`)

	// Recreate the table with name moved to column 1 and a new column. A
	// stale template would project the old ordinal and read grp's slot.
	mustExec(t, db, `DROP TABLE items`)
	mustExec(t, db, `CREATE TABLE items (id INT PRIMARY KEY, name TEXT, extra INT)`)
	mustExec(t, db, `INSERT INTO items VALUES (1, 'fresh', 42)`)

	res := mustExec(t, db, `SELECT name FROM items WHERE id = 1`)
	if len(res.Columns) != 1 || res.Columns[0] != "name" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "fresh" {
		t.Fatalf("rows = %+v, want [[fresh]]", res.Rows)
	}
}

func TestPlanCacheParamEdgesMatchUncached(t *testing.T) {
	cached := planCacheDB(t)
	uncached := planCacheDB(t, WithPlanCache(0))

	// Each query runs twice on the cached database so the second execution
	// goes through the bound template, and once uncached as the oracle.
	queries := []string{
		`SELECT name FROM items WHERE id = 5`,
		`SELECT name FROM items WHERE id = 5.5`, // float on INT key: no match, no error
		`SELECT id FROM items WHERE grp = 1 LIMIT 2`,
		`SELECT id FROM items WHERE grp = 1 LIMIT 3`, // same shape, LIMIT is a parameter
		`SELECT id FROM items WHERE grp = 1 LIMIT 0`,
		`SELECT name FROM items WHERE id >= 48 AND id <= 49`,
		`SELECT name FROM items WHERE id BETWEEN 48 AND 49`,
	}
	for _, q := range queries {
		want := mustExec(t, uncached, q)
		mustExec(t, cached, q) // warm the shape
		got := mustExec(t, cached, q)
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%q: cached %d rows, uncached %d", q, len(got.Rows), len(want.Rows))
		}
		for i := range got.Rows {
			for j := range got.Rows[i] {
				if got.Rows[i][j] != want.Rows[i][j] {
					t.Fatalf("%q row %d col %d: cached %+v, uncached %+v",
						q, i, j, got.Rows[i][j], want.Rows[i][j])
				}
			}
		}
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := planCacheDB(t, WithPlanCache(0))
	for i := 0; i < 3; i++ {
		res := mustExec(t, db, fmt.Sprintf(`SELECT name FROM items WHERE id = %d`, i))
		if len(res.Rows) != 1 {
			t.Fatalf("query %d: %+v", i, res.Rows)
		}
	}
	if h, m, inv, e := db.PlanCacheStats(); h != 0 || m != 0 || inv != 0 || e != 0 {
		t.Fatalf("disabled cache has stats %d/%d/%d/%d", h, m, inv, e)
	}
}

// TestPlanCacheConcurrentDDL races point queries against index churn:
// every query must still parse-or-bind to a correct single-row answer,
// and -race must stay quiet across the epoch bumps and purges.
func TestPlanCacheConcurrentDDL(t *testing.T) {
	db := planCacheDB(t)
	markConcurrent(t, db)

	stop := make(chan struct{})
	var ddl sync.WaitGroup
	ddl.Add(1)
	go func() {
		defer ddl.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				_, err = db.Exec(`CREATE INDEX by_grp ON items (grp)`)
			} else {
				_, err = db.Exec(`DROP INDEX by_grp ON items`)
			}
			if err != nil {
				t.Errorf("DDL %d: %v", i, err)
				return
			}
		}
	}()

	const readers = 4
	var rd sync.WaitGroup
	rd.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer rd.Done()
			for i := 0; i < 200; i++ {
				id := (r*97 + i*13) % 50
				res, err := db.Exec(fmt.Sprintf(`SELECT name FROM items WHERE id = %d`, id))
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if len(res.Rows) != 1 || res.Rows[0][0].Str != fmt.Sprintf("n%d", id) {
					t.Errorf("reader %d id %d: %+v", r, id, res.Rows)
					return
				}
			}
		}(r)
	}

	rd.Wait()
	close(stop)
	ddl.Wait()
}

// At capacity, new shapes must not cache — and, critically, must not
// evict the warm working set (DESIGN §13: an adversarial flood of
// distinct shapes is priced by the delay defense, not allowed to churn
// the cache).
func TestPlanCacheCapacityFloodDoesNotEvict(t *testing.T) {
	db := planCacheDB(t, WithPlanCache(2))

	warm := []string{
		`SELECT name FROM items WHERE id = 1`,
		`SELECT grp FROM items WHERE id = 2`,
	}
	for _, q := range warm {
		mustExec(t, db, q)
	}
	if _, _, _, e := db.PlanCacheStats(); e != 2 {
		t.Fatalf("entries = %d after warming, want 2", e)
	}

	// Flood with distinct shapes: none may enter, none may evict.
	flood := []string{
		`SELECT id FROM items WHERE grp = 3`,
		`SELECT name, grp FROM items WHERE id = 4`,
		`SELECT id, name FROM items WHERE grp = 0 AND id = 5`,
		`SELECT grp, name FROM items WHERE id = 6 LIMIT 1`,
	}
	for _, q := range flood {
		mustExec(t, db, q)
	}
	if _, _, _, e := db.PlanCacheStats(); e != 2 {
		t.Fatalf("entries = %d after flood, want 2 (no eviction at capacity)", e)
	}

	// The warm shapes still hit.
	h0, _, _, _ := db.PlanCacheStats()
	for _, q := range warm {
		mustExec(t, db, q)
	}
	h1, _, _, e := db.PlanCacheStats()
	if h1 != h0+int64(len(warm)) || e != 2 {
		t.Fatalf("warm shapes after flood: hits %d->%d entries %d, want %d hits and 2 entries",
			h0, h1, e, h0+int64(len(warm)))
	}
}

// A store stamped before a racing DDL purge must not wipe the entries
// rebuilt under the new epoch: only entries older than the incoming
// stamp are dropped during the copy, and the stale insert itself is
// rejected by the next lookup.
func TestPlanCacheStaleStoreKeepsNewerEntries(t *testing.T) {
	pc := newPlanCache(8)
	fresh := &planEntry{epoch: 2, table: "items"}
	pc.store([]byte("k-fresh"), fresh)

	// Racing store built under the pre-purge epoch.
	pc.store([]byte("k-stale"), &planEntry{epoch: 1, table: "items"})

	if got := pc.lookup([]byte("k-fresh"), 2); got != fresh {
		t.Fatalf("fresh entry lost after stale store: %+v", got)
	}
	if got := pc.lookup([]byte("k-stale"), 2); got != nil {
		t.Fatalf("stale entry served: %+v", got)
	}
	// The stale entry was dropped by its failed lookup; a current-epoch
	// store for the same key must now succeed.
	cur := &planEntry{epoch: 2, table: "items"}
	pc.store([]byte("k-stale"), cur)
	if got := pc.lookup([]byte("k-stale"), 2); got != cur {
		t.Fatalf("current-epoch re-store missing: %+v", got)
	}
}
