package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
)

func testDB(t *testing.T, opts ...Option) *Database {
	t.Helper()
	db, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	// Every statement must leave the buffer pool fully unpinned — a
	// nonzero count here means some fetch path leaked a pin. Skip the
	// check when another statement may be in flight on this db (the
	// concurrency tests run their own goroutines through db.Exec).
	if !concurrentUse(db) {
		if n := db.PinnedFrames(); n != 0 {
			t.Fatalf("Exec(%q): %d frames left pinned", sql, n)
		}
	}
	return res
}

// concurrentUse reports whether the test registered db as having
// statements in flight from other goroutines, which makes a
// point-in-time PinnedFrames()==0 assertion meaningless.
func concurrentUse(db *Database) bool {
	concurrentDBs.RLock()
	defer concurrentDBs.RUnlock()
	return concurrentDBs.m[db]
}

var concurrentDBs = struct {
	sync.RWMutex
	m map[*Database]bool
}{m: make(map[*Database]bool)}

// markConcurrent exempts db from mustExec's pin-leak assertion for the
// remainder of the test.
func markConcurrent(t *testing.T, db *Database) {
	t.Helper()
	concurrentDBs.Lock()
	concurrentDBs.m[db] = true
	concurrentDBs.Unlock()
	t.Cleanup(func() {
		concurrentDBs.Lock()
		delete(concurrentDBs.m, db)
		concurrentDBs.Unlock()
	})
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, gross FLOAT)`)
	res := mustExec(t, db, `INSERT INTO movies VALUES (1, 'Spider-Man', 403.7), (2, 'Signs', 227.9)`)
	if res.Affected != 2 {
		t.Fatalf("Affected = %d", res.Affected)
	}
	sel := mustExec(t, db, `SELECT * FROM movies WHERE id = 2`)
	if len(sel.Rows) != 1 {
		t.Fatalf("rows = %d", len(sel.Rows))
	}
	row := sel.Rows[0]
	if row[0].Int != 2 || row[1].Str != "Signs" || row[2].Float != 227.9 {
		t.Fatalf("row = %v", row)
	}
	if len(sel.Keys) != 1 || sel.Keys[0] != 2 {
		t.Fatalf("keys = %v", sel.Keys)
	}
	if strings.Join(sel.Columns, ",") != "id,title,gross" {
		t.Fatalf("columns = %v", sel.Columns)
	}
}

func TestSelectProjectionAndLimit(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, name TEXT)`)
	for i := 1; i <= 10; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'n%d')`, i, i))
	}
	sel := mustExec(t, db, `SELECT name FROM t LIMIT 3`)
	if len(sel.Rows) != 3 || len(sel.Rows[0]) != 1 {
		t.Fatalf("rows = %v", sel.Rows)
	}
	if sel.Columns[0] != "name" {
		t.Fatalf("columns = %v", sel.Columns)
	}
	// Keys accompany projected rows even when the key is not projected.
	if len(sel.Keys) != 3 {
		t.Fatalf("keys = %v", sel.Keys)
	}
}

func TestSelectRangeUsesIndexOrder(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	// Insert out of order.
	for _, id := range []int{5, 1, 9, 3, 7, 2, 8, 4, 6} {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, id, id*10))
	}
	sel := mustExec(t, db, `SELECT id FROM t WHERE id BETWEEN 3 AND 7`)
	if len(sel.Rows) != 5 {
		t.Fatalf("rows = %d", len(sel.Rows))
	}
	for i, row := range sel.Rows {
		if row[0].Int != int64(i+3) {
			t.Fatalf("range scan out of order: %v", sel.Rows)
		}
	}
}

func TestSelectNonKeyPredicateFullScan(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, grade TEXT, score FLOAT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'a', 10.5), (2, 'b', 20.5), (3, 'a', 30.5)`)
	sel := mustExec(t, db, `SELECT id FROM t WHERE grade = 'a' AND score > 15`)
	if len(sel.Rows) != 1 || sel.Rows[0][0].Int != 3 {
		t.Fatalf("rows = %v", sel.Rows)
	}
	// Numeric coercion: float column vs int literal.
	sel2 := mustExec(t, db, `SELECT id FROM t WHERE score <= 20.5`)
	if len(sel2.Rows) != 2 {
		t.Fatalf("rows = %v", sel2.Rows)
	}
}

func TestSelectImpossibleEquality(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	sel := mustExec(t, db, `SELECT * FROM t WHERE id = 1 AND id = 2`)
	if len(sel.Rows) != 0 {
		t.Fatalf("impossible predicate returned %v", sel.Rows)
	}
}

func TestInsertDuplicateKeyRejected(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestInsertArityAndTypeErrors(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, name TEXT)`)
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := db.Exec(`INSERT INTO t VALUES ('x', 'y')`); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1.5, 'y')`); err == nil {
		t.Fatal("float into INT accepted")
	}
}

func TestUpdateRows(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT, tag TEXT)`)
	for i := 1; i <= 5; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, %d, 'x')`, i, i))
	}
	res := mustExec(t, db, `UPDATE t SET v = 100, tag = 'hot' WHERE id >= 4`)
	if res.Affected != 2 {
		t.Fatalf("Affected = %d", res.Affected)
	}
	sel := mustExec(t, db, `SELECT id FROM t WHERE tag = 'hot'`)
	if len(sel.Rows) != 2 {
		t.Fatalf("rows = %v", sel.Rows)
	}
	// Unchanged rows keep values.
	sel2 := mustExec(t, db, `SELECT v FROM t WHERE id = 1`)
	if sel2.Rows[0][0].Int != 1 {
		t.Fatalf("row 1 damaged: %v", sel2.Rows)
	}
}

func TestUpdatePrimaryKeyMovesIndex(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10)`)
	mustExec(t, db, `UPDATE t SET id = 99 WHERE id = 1`)
	if sel := mustExec(t, db, `SELECT * FROM t WHERE id = 1`); len(sel.Rows) != 0 {
		t.Fatal("old key still resolves")
	}
	sel := mustExec(t, db, `SELECT v FROM t WHERE id = 99`)
	if len(sel.Rows) != 1 || sel.Rows[0][0].Int != 10 {
		t.Fatalf("new key: %v", sel.Rows)
	}
}

func TestUpdatePrimaryKeyCollisionRejected(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2)`)
	if _, err := db.Exec(`UPDATE t SET id = 2 WHERE id = 1`); err == nil {
		t.Fatal("PK collision accepted")
	}
}

func TestDeleteRows(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	for i := 1; i <= 10; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	res := mustExec(t, db, `DELETE FROM t WHERE id > 5`)
	if res.Affected != 5 {
		t.Fatalf("Affected = %d", res.Affected)
	}
	sel := mustExec(t, db, `SELECT * FROM t`)
	if len(sel.Rows) != 5 {
		t.Fatalf("remaining = %d", len(sel.Rows))
	}
	// Deleted keys gone from index path too.
	if sel := mustExec(t, db, `SELECT * FROM t WHERE id = 7`); len(sel.Rows) != 0 {
		t.Fatal("deleted key still found")
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`CREATE TABLE t (id INT, v INT)`); err == nil {
		t.Fatal("no primary key accepted")
	}
	if _, err := db.Exec(`CREATE TABLE t (id INT PRIMARY KEY, v INT PRIMARY KEY)`); err == nil {
		t.Fatal("two primary keys accepted")
	}
	if _, err := db.Exec(`CREATE TABLE t (id BLOB PRIMARY KEY)`); err == nil {
		t.Fatal("unknown type accepted")
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	if _, err := db.Exec(`CREATE TABLE t (id INT PRIMARY KEY)`); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestDropTable(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `DROP TABLE t`)
	if _, err := db.Exec(`SELECT * FROM t`); err == nil {
		t.Fatal("dropped table queryable")
	}
	// Can recreate.
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
}

func TestUnknownTableAndColumnErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`SELECT * FROM nope`); err == nil {
		t.Fatal("unknown table accepted")
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	if _, err := db.Exec(`SELECT nope FROM t`); err == nil {
		t.Fatal("unknown projection column accepted")
	}
	if _, err := db.Exec(`SELECT * FROM t WHERE nope = 1`); err == nil {
		t.Fatal("unknown where column accepted")
	}
	if _, err := db.Exec(`UPDATE t SET nope = 1`); err == nil {
		t.Fatal("unknown set column accepted")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, name TEXT)`)
	for i := 1; i <= 100; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'name-%d')`, i, i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	sel := mustExec(t, db2, `SELECT name FROM t WHERE id = 42`)
	if len(sel.Rows) != 1 || sel.Rows[0][0].Str != "name-42" {
		t.Fatalf("reopened row = %v", sel.Rows)
	}
	all := mustExec(t, db2, `SELECT * FROM t`)
	if len(all.Rows) != 100 {
		t.Fatalf("reopened count = %d", len(all.Rows))
	}
}

func TestLargeTableSpillsPool(t *testing.T) {
	db := testDB(t, WithPoolPages(2))
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, pad TEXT)`)
	pad := strings.Repeat("x", 500)
	for i := 0; i < 200; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, '%s')`, i, pad))
	}
	for i := 0; i < 200; i += 17 {
		sel := mustExec(t, db, fmt.Sprintf(`SELECT id FROM t WHERE id = %d`, i))
		if len(sel.Rows) != 1 {
			t.Fatalf("row %d missing", i)
		}
	}
	_, misses, evicts := db.PoolStats()
	if misses == 0 || evicts == 0 {
		t.Fatalf("tiny pool: misses=%d evicts=%d", misses, evicts)
	}
}

func TestDropCachesForcesColdReads(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	mustExec(t, db, `SELECT * FROM t WHERE id = 1`)
	_, missesBefore, _ := db.PoolStats()
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `SELECT * FROM t WHERE id = 1`)
	_, missesAfter, _ := db.PoolStats()
	if missesAfter <= missesBefore {
		t.Fatal("read after DropCaches did not miss")
	}
}

func TestIOCostHookFires(t *testing.T) {
	calls := 0
	db := testDB(t, WithIOCost(func() { calls++ }))
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	db.Flush()
	if calls == 0 {
		t.Fatal("IO cost hook never fired")
	}
}

func TestClosedDatabaseErrors(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`SELECT * FROM t`); err == nil {
		t.Fatal("query on closed db accepted")
	}
	if err := db.Close(); err == nil {
		t.Fatal("double close accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)`)
	s, err := db.Schema("t")
	if err != nil || len(s.Columns) != 2 || s.Columns[1].Type != catalog.Float {
		t.Fatalf("schema = %+v, %v", s, err)
	}
	if tables := db.Tables(); len(tables) != 1 || tables[0] != "t" {
		t.Fatalf("tables = %v", tables)
	}
}

func TestNegativeKeysWork(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (-5), (0), (5)`)
	sel := mustExec(t, db, `SELECT * FROM t WHERE id = -5`)
	if len(sel.Rows) != 1 || sel.Rows[0][0].Int != -5 {
		t.Fatalf("negative key: %v", sel.Rows)
	}
	r := mustExec(t, db, `SELECT * FROM t WHERE id >= -5 AND id <= 0`)
	if len(r.Rows) != 2 {
		t.Fatalf("negative range: %v", r.Rows)
	}
}

func TestCountStore(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE base (id INT PRIMARY KEY)`)
	cs, err := NewCountStore(db, "base")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cs.GetCount(7); err != nil || ok {
		t.Fatalf("fresh GetCount = %v, %v", ok, err)
	}
	if err := cs.PutCount(7, 3.5); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cs.GetCount(7)
	if err != nil || !ok || v != 3.5 {
		t.Fatalf("GetCount = %v, %v, %v", v, ok, err)
	}
	// Overwrite.
	if err := cs.PutCount(7, 9.5); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := cs.GetCount(7); v != 9.5 {
		t.Fatalf("updated count = %v", v)
	}
	// Reopening the store finds the same table.
	cs2, err := NewCountStore(db, "base")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := cs2.GetCount(7); !ok || v != 9.5 {
		t.Fatalf("second store GetCount = %v, %v", v, ok)
	}
}

func TestExecParseError(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`SELEC * FROM t`); err == nil {
		t.Fatal("parse error swallowed")
	}
}
