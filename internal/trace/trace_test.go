package trace

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/zipf"
)

func TestSyntheticShape(t *testing.T) {
	tr, err := Synthetic("s", 1000, 50000, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 50000 || tr.NumObjects != 1000 {
		t.Fatalf("shape: %d reqs, %d objects", len(tr.Requests), tr.NumObjects)
	}
	// Object 0 (rank 1) must dominate.
	counts := tr.Counts()
	if counts[0] < 10*counts[500] {
		t.Fatalf("insufficient skew: c0=%d c500=%d", counts[0], counts[500])
	}
	// Estimated alpha close to 1.5.
	fc := make([]float64, len(counts))
	for i, c := range counts {
		fc[i] = float64(c)
	}
	alpha, err := zipf.EstimateAlpha(fc, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-1.5) > 0.3 {
		t.Fatalf("estimated alpha = %v", alpha)
	}
}

func TestSyntheticErrors(t *testing.T) {
	if _, err := Synthetic("s", 0, 10, 1, 1); err == nil {
		t.Fatal("0 objects accepted")
	}
	if _, err := Synthetic("s", 10, 10, -1, 1); err == nil {
		t.Fatal("bad alpha accepted")
	}
}

func TestSyntheticCalgaryConstants(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size Calgary trace in -short mode")
	}
	tr, err := SyntheticCalgary(7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumObjects != 12179 || len(tr.Requests) != 725091 {
		t.Fatalf("shape: %d objects, %d requests", tr.NumObjects, len(tr.Requests))
	}
	if tr.Weeks != 0 || tr.WeekOf != nil {
		t.Fatal("calgary trace should be weekless")
	}
}

func TestUniformTrace(t *testing.T) {
	tr := Uniform("u", 100, 100000, 3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := tr.Counts()
	for id, c := range counts {
		if math.Abs(float64(c)-1000) > 250 {
			t.Fatalf("object %d count %d far from uniform 1000", id, c)
		}
	}
}

func TestTopK(t *testing.T) {
	tr := &Trace{
		Name: "tiny", NumObjects: 5,
		Requests: []uint64{0, 0, 0, 2, 2, 4},
	}
	ids, counts := tr.TopK(3)
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 2 || ids[2] != 4 {
		t.Fatalf("TopK ids = %v", ids)
	}
	if counts[0] != 3 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("TopK counts = %v", counts)
	}
	// k larger than touched objects.
	ids, _ = tr.TopK(10)
	if len(ids) != 3 {
		t.Fatalf("TopK(10) len = %d", len(ids))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	bad := &Trace{Name: "b", NumObjects: 2, Requests: []uint64{5}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range id accepted")
	}
	bad2 := &Trace{Name: "b", NumObjects: 0}
	if bad2.Validate() == nil {
		t.Fatal("0 objects accepted")
	}
	bad3 := &Trace{Name: "b", NumObjects: 2, Requests: []uint64{0, 1}, WeekOf: []int{0}}
	if bad3.Validate() == nil {
		t.Fatal("week length mismatch accepted")
	}
	bad4 := &Trace{Name: "b", NumObjects: 2, Requests: []uint64{0}, WeekOf: []int{5}, Weeks: 2}
	if bad4.Validate() == nil {
		t.Fatal("week out of range accepted")
	}
}

func TestBoxOffice2002Shape(t *testing.T) {
	b := BoxOffice2002(42)
	if err := b.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Trace.NumObjects != BoxOfficeFilms || b.Trace.Weeks != BoxOfficeWeeks {
		t.Fatalf("films=%d weeks=%d", b.Trace.NumObjects, b.Trace.Weeks)
	}
	if len(b.Trace.Requests) < 10000 {
		t.Fatalf("suspiciously few requests: %d", len(b.Trace.Requests))
	}
	// Weeks must be non-decreasing in replay order.
	for i := 1; i < len(b.Trace.WeekOf); i++ {
		if b.Trace.WeekOf[i] < b.Trace.WeekOf[i-1] {
			t.Fatal("weeks out of order")
		}
	}
	// Annual sales consistent with weekly sales.
	var weeklyTotal float64
	for w := range b.WeeklySales {
		for _, s := range b.WeeklySales[w] {
			weeklyTotal += s
		}
	}
	var annualTotal float64
	for _, s := range b.AnnualSales {
		annualTotal += s
	}
	if math.Abs(weeklyTotal-annualTotal) > 1 {
		t.Fatalf("weekly %v != annual %v", weeklyTotal, annualTotal)
	}
}

func TestBoxOfficeWeeklySkewSharperThanAnnual(t *testing.T) {
	// The paper's Fig 2 vs Fig 3: each week is more sharply skewed than
	// the year as a whole. Compare top-1/top-10 ratios.
	b := BoxOffice2002(42)
	_, annual := b.TopAnnual(10)
	if len(annual) < 10 {
		t.Fatal("fewer than 10 films with sales")
	}
	annualRatio := annual[0] / annual[9]

	// Average the weekly ratio over mid-year weeks (all have full release
	// history).
	var sum float64
	var weeks int
	for w := 20; w < 40; w++ {
		_, week := b.TopWeek(w, 10)
		if len(week) < 10 || week[9] <= 0 {
			continue
		}
		sum += week[0] / week[9]
		weeks++
	}
	if weeks == 0 {
		t.Fatal("no usable weeks")
	}
	weeklyRatio := sum / float64(weeks)
	if weeklyRatio <= annualRatio {
		t.Fatalf("weekly skew %.1f not sharper than annual %.1f", weeklyRatio, annualRatio)
	}
}

func TestBoxOfficePopularityShifts(t *testing.T) {
	// §4.2: "new movies are released all the time, become immensely
	// popular for a while, and then rapidly fade away". The week-1 top
	// film should not still top week 40.
	b := BoxOffice2002(42)
	top1, _ := b.TopWeek(1, 1)
	top40, _ := b.TopWeek(40, 1)
	if top1[0] == top40[0] {
		t.Fatalf("week-1 leader %d still leads week 40", top1[0])
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr, err := Synthetic("round-trip", 50, 1000, 1.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.NumObjects != tr.NumObjects || len(got.Requests) != len(tr.Requests) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range tr.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d mismatch", i)
		}
	}
}

func TestTraceRoundTripWithWeeks(t *testing.T) {
	b := BoxOffice2002(1)
	var buf bytes.Buffer
	if _, err := b.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weeks != b.Trace.Weeks || len(got.WeekOf) != len(b.Trace.WeekOf) {
		t.Fatal("weeks lost in round trip")
	}
	for i := range got.WeekOf {
		if got.WeekOf[i] != b.Trace.WeekOf[i] {
			t.Fatalf("week %d mismatch", i)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
	// Truncated valid prefix.
	tr, _ := Synthetic("x", 10, 100, 1, 1)
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	b := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(b[:len(b)/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestDeterministicGenerators(t *testing.T) {
	a, _ := Synthetic("a", 100, 1000, 1.2, 5)
	b, _ := Synthetic("a", 100, 1000, 1.2, 5)
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatal("synthetic not deterministic")
		}
	}
	x := BoxOffice2002(5)
	y := BoxOffice2002(5)
	if len(x.Trace.Requests) != len(y.Trace.Requests) {
		t.Fatal("box office not deterministic")
	}
	for f := range x.AnnualSales {
		if x.AnnualSales[f] != y.AnnualSales[f] {
			t.Fatal("box office sales not deterministic")
		}
	}
}
