// Package trace provides the workload substrates of the paper's
// evaluation. The paper replayed two real traces — the Calgary web-server
// trace (Arlitt & Williamson) and Variety's 2002 weekly box-office data —
// neither of which ships with this repository, so the package synthesizes
// statistically equivalent workloads:
//
//   - SyntheticCalgary: 12,179 objects, 725,091 requests drawn from a
//     static Zipf(α≈1.5) distribution — the properties §4.1's analysis
//     depends on.
//   - BoxOffice2002: 634 films with staggered release weeks, lognormal
//     opening sales, and geometric weekly decay, queried at one request
//     per $100,000 of weekly sales — reproducing both the mild annual
//     skew of Fig 2 and the sharp single-week skew of Fig 3.
//
// DESIGN.md records why these substitutions preserve the behaviours the
// experiments measure.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/zipf"
)

// Trace is a replayable request workload over NumObjects object ids
// (0-based). Weeks, when present, partition the request stream for
// workloads whose popularity shifts over time.
type Trace struct {
	Name       string
	NumObjects int
	// Requests holds object ids in replay order.
	Requests []uint64
	// WeekOf[i] is the week number of Requests[i]; nil for weekless
	// traces.
	WeekOf []int
	// Weeks is the number of weeks covered (0 for weekless traces).
	Weeks int
}

// Validate checks structural invariants.
func (t *Trace) Validate() error {
	if t.NumObjects < 1 {
		return errors.New("trace: no objects")
	}
	if t.WeekOf != nil && len(t.WeekOf) != len(t.Requests) {
		return errors.New("trace: WeekOf length mismatch")
	}
	for i, id := range t.Requests {
		if id >= uint64(t.NumObjects) {
			return fmt.Errorf("trace: request %d references object %d ≥ %d", i, id, t.NumObjects)
		}
	}
	if t.WeekOf != nil {
		for i, w := range t.WeekOf {
			if w < 0 || w >= t.Weeks {
				return fmt.Errorf("trace: request %d has week %d outside [0,%d)", i, w, t.Weeks)
			}
		}
	}
	return nil
}

// Counts returns per-object request totals.
func (t *Trace) Counts() []int64 {
	out := make([]int64, t.NumObjects)
	for _, id := range t.Requests {
		out[id]++
	}
	return out
}

// TopK returns the ids and counts of the k most requested objects,
// descending. Fewer are returned if the trace touches fewer objects.
func (t *Trace) TopK(k int) (ids []uint64, counts []int64) {
	c := t.Counts()
	type pair struct {
		id uint64
		n  int64
	}
	var pairs []pair
	for id, n := range c {
		if n > 0 {
			pairs = append(pairs, pair{uint64(id), n})
		}
	}
	// Selection of top k by partial sort (k is small).
	for i := 0; i < k && i < len(pairs); i++ {
		best := i
		for j := i + 1; j < len(pairs); j++ {
			if pairs[j].n > pairs[best].n {
				best = j
			}
		}
		pairs[i], pairs[best] = pairs[best], pairs[i]
		ids = append(ids, pairs[i].id)
		counts = append(counts, pairs[i].n)
	}
	return ids, counts
}

// Calgary trace shape constants, from the paper's §4.1.
const (
	CalgaryObjects  = 12179
	CalgaryRequests = 725091
	CalgaryAlpha    = 1.5
	// CalgaryTailAlpha is the body skew of the two-regime synthesis: the
	// paper fits α≈1.5 to the top-10 ranks (Fig 1), but real web traces
	// are much flatter past the head (Breslau et al. report 0.64–0.83
	// overall), which is what pushes the request-weighted median out to
	// ranks with non-trivial delay (Table 3's 15.4 ms at no decay).
	CalgaryTailAlpha = 0.8
	// CalgaryHeadRanks is where the head regime hands over to the tail.
	CalgaryHeadRanks = 10
)

// SyntheticCalgary synthesizes a Calgary-shaped trace: CalgaryObjects
// objects, CalgaryRequests requests, static two-regime power-law
// popularity (α≈1.5 over the top ranks, flatter body). Object id k is
// the (k+1)-th most popular, so popularity rank is the id plus one —
// convenient for assertions.
func SyntheticCalgary(seed int64) (*Trace, error) {
	return SyntheticWeb("calgary-synthetic", CalgaryObjects, CalgaryRequests,
		CalgaryAlpha, CalgaryTailAlpha, CalgaryHeadRanks, seed)
}

// SyntheticWeb builds a static trace whose popularity follows a
// two-regime power law: rank i ≤ headRanks has weight i^(−headAlpha);
// beyond that the weight continues continuously with exponent tailAlpha.
// This is the empirical shape of web-server traces — a steep celebrity
// head over a flat long tail.
func SyntheticWeb(name string, objects, requests int, headAlpha, tailAlpha float64, headRanks int, seed int64) (*Trace, error) {
	if objects < 1 {
		return nil, errors.New("trace: no objects")
	}
	if requests < 0 {
		return nil, errors.New("trace: negative request count")
	}
	if headRanks < 1 || headAlpha < 0 || tailAlpha < 0 {
		return nil, errors.New("trace: bad power-law regime parameters")
	}
	// Continuity factor: head weight at headRanks equals tail weight
	// there, i.e. tailScale · headRanks^(−tailAlpha) = headRanks^(−headAlpha).
	tailScale := math.Pow(float64(headRanks), tailAlpha-headAlpha)
	cdf := make([]float64, objects)
	var cum float64
	for i := 1; i <= objects; i++ {
		var w float64
		if i <= headRanks {
			w = math.Pow(float64(i), -headAlpha)
		} else {
			w = tailScale * math.Pow(float64(i), -tailAlpha)
		}
		cum += w
		cdf[i-1] = cum
	}
	for i := range cdf {
		cdf[i] /= cum
	}
	cdf[objects-1] = 1

	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Name: name, NumObjects: objects, Requests: make([]uint64, requests)}
	for i := 0; i < requests; i++ {
		u := rng.Float64()
		t.Requests[i] = uint64(searchCDF(cdf, u))
	}
	return t, nil
}

// searchCDF returns the index of the first cdf entry ≥ u.
func searchCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Synthetic builds a static Zipf trace with the given shape.
func Synthetic(name string, objects, requests int, alpha float64, seed int64) (*Trace, error) {
	d, err := zipf.New(objects, alpha)
	if err != nil {
		return nil, err
	}
	s := zipf.NewSampler(d, seed)
	t := &Trace{Name: name, NumObjects: objects, Requests: make([]uint64, requests)}
	for i := 0; i < requests; i++ {
		t.Requests[i] = uint64(s.Next() - 1) // rank r → id r-1
	}
	return t, nil
}

// Uniform builds a trace with uniformly distributed requests — the
// workload the popularity scheme cannot defend (§2) and the update-rate
// scheme (§3) is designed for.
func Uniform(name string, objects, requests int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Name: name, NumObjects: objects, Requests: make([]uint64, requests)}
	for i := 0; i < requests; i++ {
		t.Requests[i] = uint64(rng.Intn(objects))
	}
	return t
}

// Box-office generator constants.
const (
	BoxOfficeFilms = 634
	BoxOfficeWeeks = 52
	// DollarsPerRequest is the paper's sampling rate: "one [request] per
	// $100,000 in weekly box office sales".
	DollarsPerRequest = 100_000
	// boxOfficeDecay is the geometric week-over-week sales decay; 0.55
	// matches the empirical ~45% second-weekend drop of wide releases.
	boxOfficeDecay = 0.55
	// boxOfficeMedianOpen and boxOfficeSigma parameterize the lognormal
	// opening-week sales distribution (median ≈ $2M, heavy upper tail
	// reaching the ≈$100M openings of 2002's blockbusters).
	boxOfficeMedianOpen = 2_000_000
	boxOfficeSigma      = 1.6
)

// BoxOffice is a box-office-shaped workload: films, their weekly sales,
// and the request trace derived from them.
type BoxOffice struct {
	Trace *Trace
	// WeeklySales[w][f] is film f's sales in week w, dollars.
	WeeklySales [][]float64
	// AnnualSales[f] is film f's total sales, dollars.
	AnnualSales []float64
	// ReleaseWeek[f] is the week film f opened.
	ReleaseWeek []int
}

// BoxOffice2002 synthesizes the §4.2 workload: BoxOfficeFilms films
// released evenly over BoxOfficeWeeks weeks, lognormal opening sales,
// geometric decay, one request per DollarsPerRequest of weekly sales.
// Requests within a week are shuffled.
func BoxOffice2002(seed int64) *BoxOffice {
	rng := rand.New(rand.NewSource(seed))
	b := &BoxOffice{
		WeeklySales: make([][]float64, BoxOfficeWeeks),
		AnnualSales: make([]float64, BoxOfficeFilms),
		ReleaseWeek: make([]int, BoxOfficeFilms),
	}
	opening := make([]float64, BoxOfficeFilms)
	for f := 0; f < BoxOfficeFilms; f++ {
		b.ReleaseWeek[f] = f % BoxOfficeWeeks
		opening[f] = boxOfficeMedianOpen * math.Exp(boxOfficeSigma*rng.NormFloat64())
	}
	tr := &Trace{Name: "boxoffice-2002", NumObjects: BoxOfficeFilms, Weeks: BoxOfficeWeeks}
	for w := 0; w < BoxOfficeWeeks; w++ {
		b.WeeklySales[w] = make([]float64, BoxOfficeFilms)
		var weekReqs []uint64
		for f := 0; f < BoxOfficeFilms; f++ {
			age := w - b.ReleaseWeek[f]
			if age < 0 {
				continue
			}
			sales := opening[f] * math.Pow(boxOfficeDecay, float64(age))
			if sales < 1000 {
				continue // fell out of theatres
			}
			b.WeeklySales[w][f] = sales
			b.AnnualSales[f] += sales
			for r := 0; r < int(sales/DollarsPerRequest); r++ {
				weekReqs = append(weekReqs, uint64(f))
			}
		}
		rng.Shuffle(len(weekReqs), func(i, j int) {
			weekReqs[i], weekReqs[j] = weekReqs[j], weekReqs[i]
		})
		for _, id := range weekReqs {
			tr.Requests = append(tr.Requests, id)
			tr.WeekOf = append(tr.WeekOf, w)
		}
	}
	b.Trace = tr
	return b
}

// TopAnnual returns the ids and sales of the k top-grossing films of the
// whole year (Fig 2's data).
func (b *BoxOffice) TopAnnual(k int) (ids []int, sales []float64) {
	return topSales(b.AnnualSales, k)
}

// TopWeek returns the ids and sales of the k top-grossing films of one
// week (Fig 3's data, with w = 0).
func (b *BoxOffice) TopWeek(w, k int) (ids []int, sales []float64) {
	return topSales(b.WeeklySales[w], k)
}

func topSales(sales []float64, k int) (ids []int, out []float64) {
	idx := make([]int, len(sales))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if sales[idx[j]] > sales[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
		ids = append(ids, idx[i])
		out = append(out, sales[idx[i]])
	}
	return ids, out
}

// traceMagic identifies the binary trace file format.
const traceMagic = "DLYTRC01"

// WriteTo serializes the trace in a compact binary format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(traceMagic)); err != nil {
		return n, err
	}
	var hdr [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(hdr[:], v)
		return count(bw.Write(hdr[:k]))
	}
	if err := writeUvarint(uint64(len(t.Name))); err != nil {
		return n, err
	}
	if err := count(bw.WriteString(t.Name)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(t.NumObjects)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(t.Weeks)); err != nil {
		return n, err
	}
	hasWeeks := uint64(0)
	if t.WeekOf != nil {
		hasWeeks = 1
	}
	if err := writeUvarint(hasWeeks); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(t.Requests))); err != nil {
		return n, err
	}
	for i, id := range t.Requests {
		if err := writeUvarint(id); err != nil {
			return n, err
		}
		if t.WeekOf != nil {
			if err := writeUvarint(uint64(t.WeekOf[i])); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo and validates it.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, errors.New("trace: bad magic")
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, errors.New("trace: unreasonable name length")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	numObjects, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	weeks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	hasWeeks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	nreq, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nreq > 1<<31 {
		return nil, errors.New("trace: unreasonable request count")
	}
	t := &Trace{
		Name:       string(name),
		NumObjects: int(numObjects),
		Weeks:      int(weeks),
		Requests:   make([]uint64, nreq),
	}
	if hasWeeks == 1 {
		t.WeekOf = make([]int, nreq)
	}
	for i := range t.Requests {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: request %d: %w", i, err)
		}
		t.Requests[i] = id
		if t.WeekOf != nil {
			w, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: week of request %d: %w", i, err)
			}
			t.WeekOf[i] = int(w)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
