package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestStdev(t *testing.T) {
	if got := Stdev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2.13809, 1e-4) {
		t.Errorf("Stdev = %v", got)
	}
	if got := Stdev([]float64{1}); got != 0 {
		t.Errorf("Stdev of single = %v, want 0", got)
	}
	if got := Stdev(nil); got != 0 {
		t.Errorf("Stdev(nil) = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	med, err := Median(xs)
	if err != nil || med != 3 {
		t.Fatalf("Median = %v, %v", med, err)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 5 {
		t.Fatalf("extremes = %v, %v", q0, q1)
	}
	q25, _ := Quantile(xs, 0.25)
	if q25 != 2 {
		t.Fatalf("q25 = %v, want 2", q25)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("empty quantile err = %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range q accepted")
	}
	// Input unmodified.
	if xs[0] != 3 {
		t.Fatal("Quantile modified its input")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	q, _ := Quantile(xs, 0.5)
	if !almostEqual(q, 5, 1e-12) {
		t.Fatalf("interpolated median = %v, want 5", q)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestFitPowerLawRecoversAlpha(t *testing.T) {
	// y = 100 · x^(−1.5)
	var xs, ys []float64
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
		ys = append(ys, 100*math.Pow(float64(i), -1.5))
	}
	alpha, fit, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(alpha, 1.5, 1e-9) {
		t.Fatalf("alpha = %v, want 1.5", alpha)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitPowerLawSkipsNonPositive(t *testing.T) {
	xs := []float64{0, -1, 1, 2, 4}
	ys := []float64{5, 5, 8, 4, 2}
	if _, _, err := FitPowerLaw(xs, ys); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestHarmonicSmall(t *testing.T) {
	// H(4,1) = 1 + 1/2 + 1/3 + 1/4 = 2.08333...
	if got := Harmonic(4, 1); !almostEqual(got, 25.0/12.0, 1e-12) {
		t.Fatalf("Harmonic(4,1) = %v", got)
	}
	if got := Harmonic(0, 1); got != 0 {
		t.Fatalf("Harmonic(0,1) = %v", got)
	}
	// H(3,2) = 1 + 1/4 + 1/9
	if got := Harmonic(3, 2); !almostEqual(got, 1+0.25+1.0/9, 1e-12) {
		t.Fatalf("Harmonic(3,2) = %v", got)
	}
}

func TestHarmonicLargeApproximation(t *testing.T) {
	// Compare the approximation path (n > 2^16) against brute force.
	n := 1 << 17
	var brute float64
	for i := 1; i <= n; i++ {
		brute += 1 / float64(i)
	}
	got := Harmonic(n, 1)
	if math.Abs(got-brute)/brute > 1e-6 {
		t.Fatalf("Harmonic(%d,1) = %v, brute = %v", n, got, brute)
	}
}

func TestPowerSum(t *testing.T) {
	// Σ i^2 for 1..4 = 30
	if got := PowerSum(4, 2); !almostEqual(got, 30, 1e-12) {
		t.Fatalf("PowerSum(4,2) = %v", got)
	}
	if got := PowerSum(0, 2); got != 0 {
		t.Fatalf("PowerSum(0,2) = %v", got)
	}
	// Approximation path vs brute force for p = 1.5.
	n := 1 << 17
	var brute float64
	for i := 1; i <= n; i++ {
		brute += math.Pow(float64(i), 1.5)
	}
	got := PowerSum(n, 1.5)
	if math.Abs(got-brute)/brute > 1e-6 {
		t.Fatalf("PowerSum approx = %v, brute = %v", got, brute)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bucket %d count = %d", i, c)
		}
	}
	if h.N() != 10 {
		t.Fatalf("N = %d", h.N())
	}
	if b := h.Bucket(3); !almostEqual(b, 3, 1e-12) {
		t.Fatalf("Bucket(3) = %v", b)
	}
}

func TestHistogramClamps(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(1e9)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	med, err := h.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med < 40 || med > 60 {
		t.Fatalf("histogram median = %v", med)
	}
	if _, err := NewHistogram(0, 1, 1).Quantile(0.5); err != ErrEmpty {
		t.Fatalf("empty histogram quantile err = %v", err)
	}
}

func TestHistogramPanics(t *testing.T) {
	assertPanics := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	assertPanics(func() { NewHistogram(0, 10, 0) })
	assertPanics(func() { NewHistogram(10, 10, 4) })
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil {
				return false
			}
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitPowerLawPropertyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		trueAlpha := 0.25 + 2.25*rng.Float64()
		scale := 1 + 1000*rng.Float64()
		var xs, ys []float64
		for i := 1; i <= 200; i++ {
			xs = append(xs, float64(i))
			ys = append(ys, scale*math.Pow(float64(i), -trueAlpha))
		}
		alpha, _, err := FitPowerLaw(xs, ys)
		return err == nil && math.Abs(alpha-trueAlpha) < 1e-6
	}
	for i := 0; i < 50; i++ {
		if !f() {
			t.Fatal("power-law recovery failed")
		}
	}
}
