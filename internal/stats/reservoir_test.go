package stats

import (
	"math"
	"sync"
	"testing"
)

func TestReservoirExactWhileSmall(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 1; i <= 10; i++ {
		r.Add(float64(i))
	}
	if r.N() != 10 {
		t.Fatalf("N = %d", r.N())
	}
	med, err := r.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med != 5.5 {
		t.Fatalf("median = %v", med)
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(10, 1)
	if _, err := r.Quantile(0.5); err == nil {
		t.Fatal("empty reservoir quantile succeeded")
	}
}

func TestReservoirClampsK(t *testing.T) {
	r := NewReservoir(0, 1)
	r.Add(7)
	v, err := r.Quantile(0.5)
	if err != nil || v != 7 {
		t.Fatalf("%v, %v", v, err)
	}
}

func TestReservoirApproximatesStreamQuantiles(t *testing.T) {
	r := NewReservoir(2048, 3)
	// Uniform 0..9999 stream.
	for i := 0; i < 100_000; i++ {
		r.Add(float64(i % 10000))
	}
	med, err := r.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-5000) > 500 {
		t.Fatalf("median estimate = %v", med)
	}
	p99, _ := r.Quantile(0.99)
	if math.Abs(p99-9900) > 300 {
		t.Fatalf("p99 estimate = %v", p99)
	}
}

func TestReservoirConcurrent(t *testing.T) {
	r := NewReservoir(512, 5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(float64(i))
			}
		}()
	}
	wg.Wait()
	if r.N() != 8000 {
		t.Fatalf("N = %d", r.N())
	}
}
