// Package stats provides the small statistical toolkit the delay-defense
// analysis needs: quantiles, moments, log–log regression for Zipf-parameter
// estimation, generalized harmonic sums, and fixed-bucket histograms.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stdev returns the sample standard deviation (n−1 denominator) of xs.
// It returns 0 for fewer than two samples.
func Stdev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. xs need not be sorted; it is not
// modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q), nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// LinearFit holds the result of an ordinary least-squares line fit
// y = Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitLine fits y = a·x + b by least squares. It needs at least two points
// with distinct x values.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched lengths")
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// FitPowerLaw fits y = C·x^(−alpha) by regressing log y on log x and
// returns the estimated alpha (as a positive skew value when the data is
// decreasing) and the fit. Points with non-positive x or y are skipped.
func FitPowerLaw(xs, ys []float64) (alpha float64, fit LinearFit, err error) {
	if len(xs) != len(ys) {
		return 0, LinearFit{}, errors.New("stats: mismatched lengths")
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	fit, err = FitLine(lx, ly)
	if err != nil {
		return 0, LinearFit{}, err
	}
	return -fit.Slope, fit, nil
}

// Harmonic returns the generalized harmonic number H(n, s) = Σ_{i=1..n} i^(−s).
// For large n it switches to the Euler–Maclaurin approximation to stay O(1).
func Harmonic(n int, s float64) float64 {
	if n <= 0 {
		return 0
	}
	const exactLimit = 1 << 16
	if n <= exactLimit {
		var sum float64
		for i := 1; i <= n; i++ {
			sum += math.Pow(float64(i), -s)
		}
		return sum
	}
	// Exact head plus integral tail with midpoint correction.
	var sum float64
	for i := 1; i <= exactLimit; i++ {
		sum += math.Pow(float64(i), -s)
	}
	a, b := float64(exactLimit), float64(n)
	var tail float64
	if s == 1 {
		tail = math.Log(b) - math.Log(a)
	} else {
		tail = (math.Pow(b, 1-s) - math.Pow(a, 1-s)) / (1 - s)
	}
	// Trapezoidal end corrections.
	tail += 0.5 * (math.Pow(b, -s) - math.Pow(a, -s))
	return sum + tail
}

// PowerSum returns Σ_{i=1..n} i^p for real p ≥ 0, using exact summation for
// small n and the integral approximation for large n.
func PowerSum(n int, p float64) float64 {
	if n <= 0 {
		return 0
	}
	const exactLimit = 1 << 16
	if n <= exactLimit {
		var sum float64
		for i := 1; i <= n; i++ {
			sum += math.Pow(float64(i), p)
		}
		return sum
	}
	var sum float64
	for i := 1; i <= exactLimit; i++ {
		sum += math.Pow(float64(i), p)
	}
	a, b := float64(exactLimit), float64(n)
	tail := (math.Pow(b, p+1) - math.Pow(a, p+1)) / (p + 1)
	tail += 0.5 * (math.Pow(b, p) - math.Pow(a, p))
	return sum + tail
}

// Histogram is a fixed-width bucket histogram over [Min, Max). Values
// outside the range are clamped into the first or last bucket.
type Histogram struct {
	Min, Max float64
	Counts   []int64
	n        int64
}

// NewHistogram creates a histogram with nbuckets buckets spanning
// [min, max). It panics if nbuckets < 1 or max ≤ min.
func NewHistogram(min, max float64, nbuckets int) *Histogram {
	if nbuckets < 1 {
		panic("stats: nbuckets < 1")
	}
	if max <= min {
		panic("stats: max <= min")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int64, nbuckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	b := int(float64(len(h.Counts)) * (x - h.Min) / (h.Max - h.Min))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.n++
}

// N returns the number of observations recorded.
func (h *Histogram) N() int64 { return h.n }

// Bucket returns the lower bound of bucket i.
func (h *Histogram) Bucket(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + float64(i)*w
}

// Quantile returns an approximate q-quantile from the bucket counts, using
// the midpoint of the bucket containing the target rank.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if h.n == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range")
	}
	target := int64(q * float64(h.n-1))
	var cum int64
	w := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			return h.Min + (float64(i)+0.5)*w, nil
		}
	}
	return h.Max, nil
}
