package stats

import (
	"math/rand"
	"sync"
)

// Reservoir maintains a fixed-size uniform random sample of a stream
// (Vitter's algorithm R), from which stream quantiles can be estimated
// with O(k) memory. It is safe for concurrent use.
type Reservoir struct {
	mu     sync.Mutex
	k      int
	n      int64
	sample []float64
	rng    *rand.Rand
}

// NewReservoir returns a reservoir keeping at most k samples. k < 1 is
// clamped to 1.
func NewReservoir(k int, seed int64) *Reservoir {
	if k < 1 {
		k = 1
	}
	return &Reservoir{k: k, rng: rand.New(rand.NewSource(seed))}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, x)
		return
	}
	if j := r.rng.Int63n(r.n); j < int64(r.k) {
		r.sample[j] = x
	}
}

// N returns how many observations have been offered.
func (r *Reservoir) N() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Quantile estimates the stream's q-quantile from the sample.
func (r *Reservoir) Quantile(q float64) (float64, error) {
	r.mu.Lock()
	cp := append([]float64(nil), r.sample...)
	r.mu.Unlock()
	return Quantile(cp, q)
}
