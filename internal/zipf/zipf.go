// Package zipf implements the Zipf (power-law) distribution machinery the
// paper's analysis rests on: a seedable rank sampler, exact and asymptotic
// median-rank computation (Eq 3), and skew estimation from observed
// rank-frequency data.
//
// In a Zipf distribution with parameter alpha over N ranks, the i-th most
// popular item is requested with probability proportional to i^(−alpha).
package zipf

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/stats"
)

// Dist describes a Zipf distribution over ranks 1..N with skew Alpha ≥ 0.
// Alpha = 0 degenerates to the uniform distribution.
type Dist struct {
	N     int
	Alpha float64
	// h is the normalizing constant H(N, Alpha) = Σ i^(−Alpha).
	h float64
}

// New returns a Dist over ranks 1..n with the given skew. It returns an
// error if n < 1 or alpha is negative or not finite.
func New(n int, alpha float64) (*Dist, error) {
	if n < 1 {
		return nil, errors.New("zipf: n < 1")
	}
	if alpha < 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, errors.New("zipf: invalid alpha")
	}
	return &Dist{N: n, Alpha: alpha, h: stats.Harmonic(n, alpha)}, nil
}

// Prob returns the probability of rank i (1-based). Ranks outside 1..N have
// probability 0.
func (d *Dist) Prob(i int) float64 {
	if i < 1 || i > d.N {
		return 0
	}
	return math.Pow(float64(i), -d.Alpha) / d.h
}

// Freq returns the request frequency of rank i given total request rate
// `total` (requests per unit time): total · Prob(i).
func (d *Dist) Freq(i int, total float64) float64 {
	return total * d.Prob(i)
}

// MedianRank returns the smallest rank m such that the cumulative
// probability of ranks 1..m is at least 1/2. This is the rank of the item a
// median legitimate request touches.
func (d *Dist) MedianRank() int {
	return d.QuantileRank(0.5)
}

// QuantileRank returns the smallest rank m whose cumulative probability
// reaches q (0 < q ≤ 1).
func (d *Dist) QuantileRank(q float64) int {
	if q <= 0 {
		return 1
	}
	target := q * d.h
	var cum float64
	// For large N with small alpha the loop is long; use doubling +
	// refinement via the integral approximation first.
	if d.N > 1<<20 {
		lo, hi := 1, d.N
		for lo < hi {
			mid := (lo + hi) / 2
			if stats.Harmonic(mid, d.Alpha) >= target {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	for i := 1; i <= d.N; i++ {
		cum += math.Pow(float64(i), -d.Alpha)
		if cum >= target {
			return i
		}
	}
	return d.N
}

// AsymptoticMedianRank returns the Θ-class value for the median rank from
// the paper's Eq 3:
//
//	α < 1: Θ(2^(1/(α−1)) · N)  — a constant fraction of N
//	α = 1: Θ(√N)
//	α > 1: Θ(log N)
//
// The returned value is the dominant term without hidden constants; tests
// verify it tracks MedianRank within a constant factor.
func (d *Dist) AsymptoticMedianRank() float64 {
	n := float64(d.N)
	switch {
	case math.Abs(d.Alpha-1) < 1e-9:
		return math.Sqrt(n)
	case d.Alpha < 1:
		return math.Pow(2, 1/(d.Alpha-1)) * n
	default:
		return math.Log(n)
	}
}

// Sampler draws ranks from a Dist using a precomputed CDF and binary
// search. It is deterministic for a fixed seed and safe for use from a
// single goroutine; create one per goroutine for concurrency.
type Sampler struct {
	dist *Dist
	cdf  []float64
	rng  *rand.Rand
}

// NewSampler builds a sampler for d seeded with seed. Building is O(N).
func NewSampler(d *Dist, seed int64) *Sampler {
	cdf := make([]float64, d.N)
	var cum float64
	for i := 1; i <= d.N; i++ {
		cum += math.Pow(float64(i), -d.Alpha)
		cdf[i-1] = cum
	}
	// Normalize so the last entry is exactly 1.
	for i := range cdf {
		cdf[i] /= cum
	}
	cdf[d.N-1] = 1
	return &Sampler{dist: d, cdf: cdf, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next sampled rank in 1..N.
func (s *Sampler) Next() int {
	u := s.rng.Float64()
	return sort.SearchFloat64s(s.cdf, u) + 1
}

// Dist returns the distribution this sampler draws from.
func (s *Sampler) Dist() *Dist { return s.dist }

// EstimateAlpha fits a power law to observed per-item request counts and
// returns the estimated skew. counts need not be sorted. Items with zero
// count are ignored. topK limits the fit to the topK most frequent items
// (0 means all); the head of the distribution is where real traces are most
// power-law-like.
func EstimateAlpha(counts []float64, topK int) (float64, error) {
	s := make([]float64, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			s = append(s, c)
		}
	}
	if len(s) < 2 {
		return 0, errors.New("zipf: need at least two nonzero counts")
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	if topK > 0 && topK < len(s) {
		s = s[:topK]
	}
	xs := make([]float64, len(s))
	for i := range s {
		xs[i] = float64(i + 1)
	}
	alpha, _, err := stats.FitPowerLaw(xs, s)
	return alpha, err
}

// Uniform reports whether the distribution is (near) uniform, i.e. the
// skew is too small for the popularity-based defense to help (paper §2:
// "If the legitimate query workload has a uniform distribution over the
// data elements, then the core proposal described here will not work").
func (d *Dist) Uniform() bool { return d.Alpha < 0.05 }
