package zipf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := New(10, -1); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := New(10, math.NaN()); err == nil {
		t.Fatal("NaN alpha accepted")
	}
	if _, err := New(10, math.Inf(1)); err == nil {
		t.Fatal("Inf alpha accepted")
	}
	if _, err := New(10, 0); err != nil {
		t.Fatal("alpha=0 rejected")
	}
}

func TestProbSumsToOne(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 1, 1.5, 2.5} {
		d, err := New(1000, alpha)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := 1; i <= d.N; i++ {
			sum += d.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%v: probs sum to %v", alpha, sum)
		}
	}
}

func TestProbOutOfRange(t *testing.T) {
	d, _ := New(10, 1)
	if d.Prob(0) != 0 || d.Prob(11) != 0 || d.Prob(-3) != 0 {
		t.Fatal("out-of-range rank has nonzero probability")
	}
}

func TestProbMonotoneDecreasing(t *testing.T) {
	d, _ := New(100, 1.2)
	for i := 2; i <= d.N; i++ {
		if d.Prob(i) > d.Prob(i-1) {
			t.Fatalf("Prob(%d) > Prob(%d)", i, i-1)
		}
	}
}

func TestFreq(t *testing.T) {
	d, _ := New(10, 1)
	if got, want := d.Freq(1, 100), 100*d.Prob(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Freq = %v, want %v", got, want)
	}
}

func TestUniformDetection(t *testing.T) {
	u, _ := New(10, 0)
	if !u.Uniform() {
		t.Fatal("alpha=0 not detected as uniform")
	}
	z, _ := New(10, 1.5)
	if z.Uniform() {
		t.Fatal("alpha=1.5 detected as uniform")
	}
}

func TestMedianRankUniform(t *testing.T) {
	d, _ := New(100, 0)
	m := d.MedianRank()
	if m != 50 {
		t.Fatalf("uniform median rank = %d, want 50", m)
	}
}

func TestMedianRankSkewed(t *testing.T) {
	// With strong skew the median request lands on a very early rank.
	d, _ := New(100000, 1.5)
	m := d.MedianRank()
	if m > 100 {
		t.Fatalf("alpha=1.5 median rank = %d, expected small", m)
	}
	// Weak skew: median rank is a large fraction of N.
	d2, _ := New(100000, 0.5)
	m2 := d2.MedianRank()
	if m2 < 10000 {
		t.Fatalf("alpha=0.5 median rank = %d, expected large", m2)
	}
	if m2 <= m {
		t.Fatal("median rank should grow as skew falls")
	}
}

func TestQuantileRankBounds(t *testing.T) {
	d, _ := New(1000, 1)
	if d.QuantileRank(0) != 1 {
		t.Fatal("q=0 rank != 1")
	}
	if d.QuantileRank(1) != 1000 {
		t.Fatalf("q=1 rank = %d, want N", d.QuantileRank(1))
	}
	// Monotone in q.
	prev := 0
	for q := 0.1; q <= 1.0; q += 0.1 {
		r := d.QuantileRank(q)
		if r < prev {
			t.Fatalf("QuantileRank not monotone at q=%v", q)
		}
		prev = r
	}
}

func TestQuantileRankLargeNBinarySearch(t *testing.T) {
	// Exercise the binary-search path (N > 2^20) and check against the
	// loop path on a distribution where both are feasible... instead use
	// consistency: cumulative prob at returned rank must straddle q.
	d, _ := New(1<<21, 1.0)
	m := d.MedianRank()
	if m < 1 || m > d.N {
		t.Fatalf("median rank out of bounds: %d", m)
	}
	// For alpha=1, median rank ≈ sqrt(N) asymptotically.
	want := math.Sqrt(float64(d.N))
	if float64(m) < want/100 || float64(m) > want*100 {
		t.Fatalf("median rank %d far from Θ(√N)=%v", m, want)
	}
}

func TestAsymptoticMedianRankRegimes(t *testing.T) {
	n := 1 << 16
	lt, _ := New(n, 0.5)
	eq, _ := New(n, 1.0)
	gt, _ := New(n, 1.5)
	if lt.AsymptoticMedianRank() <= eq.AsymptoticMedianRank() {
		t.Fatal("alpha<1 asymptotic median should exceed alpha=1")
	}
	if eq.AsymptoticMedianRank() <= gt.AsymptoticMedianRank() {
		t.Fatal("alpha=1 asymptotic median should exceed alpha>1")
	}
	if got := gt.AsymptoticMedianRank(); math.Abs(got-math.Log(float64(n))) > 1e-9 {
		t.Fatalf("alpha>1 asymptotic = %v, want log N", got)
	}
}

func TestAsymptoticTracksExactForAlphaGT1(t *testing.T) {
	// Exact median rank should be within a constant factor of log N.
	for _, n := range []int{1000, 10000, 100000} {
		d, _ := New(n, 1.5)
		exact := float64(d.MedianRank())
		asym := d.AsymptoticMedianRank()
		if exact > 20*asym || asym > 20*exact {
			t.Fatalf("n=%d: exact=%v asym=%v diverge", n, exact, asym)
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	d, _ := New(1000, 1.2)
	a := NewSampler(d, 7)
	b := NewSampler(d, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if a.Dist() != d {
		t.Fatal("Dist accessor wrong")
	}
}

func TestSamplerRange(t *testing.T) {
	d, _ := New(50, 2)
	s := NewSampler(d, 1)
	for i := 0; i < 10000; i++ {
		r := s.Next()
		if r < 1 || r > 50 {
			t.Fatalf("sample out of range: %d", r)
		}
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	d, _ := New(100, 1.0)
	s := NewSampler(d, 99)
	const n = 200000
	counts := make([]int, d.N+1)
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	// Empirical frequency of rank 1 should be close to Prob(1).
	for _, rank := range []int{1, 2, 5, 10} {
		emp := float64(counts[rank]) / n
		want := d.Prob(rank)
		if math.Abs(emp-want) > 0.02+0.2*want {
			t.Errorf("rank %d: empirical %v vs theoretical %v", rank, emp, want)
		}
	}
	// Rank 1 must dominate rank 100 heavily.
	if counts[1] < 10*counts[100] {
		t.Errorf("rank 1 count %d not ≫ rank 100 count %d", counts[1], counts[100])
	}
}

func TestSamplerUniformAlphaZero(t *testing.T) {
	d, _ := New(10, 0)
	s := NewSampler(d, 3)
	counts := make([]int, 11)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	for r := 1; r <= 10; r++ {
		emp := float64(counts[r]) / n
		if math.Abs(emp-0.1) > 0.01 {
			t.Fatalf("rank %d empirical %v, want ~0.1", r, emp)
		}
	}
}

func TestEstimateAlphaRecovers(t *testing.T) {
	for _, trueAlpha := range []float64{0.5, 1.0, 1.5, 2.0} {
		counts := make([]float64, 500)
		for i := range counts {
			counts[i] = 1e6 * math.Pow(float64(i+1), -trueAlpha)
		}
		got, err := EstimateAlpha(counts, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-trueAlpha) > 0.01 {
			t.Errorf("EstimateAlpha = %v, want %v", got, trueAlpha)
		}
	}
}

func TestEstimateAlphaFromSamples(t *testing.T) {
	d, _ := New(2000, 1.5)
	s := NewSampler(d, 5)
	counts := make([]float64, d.N)
	for i := 0; i < 2_000_000; i++ {
		counts[s.Next()-1]++
	}
	got, err := EstimateAlpha(counts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.5) > 0.15 {
		t.Fatalf("EstimateAlpha from samples = %v, want ≈1.5", got)
	}
}

func TestEstimateAlphaErrors(t *testing.T) {
	if _, err := EstimateAlpha(nil, 0); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := EstimateAlpha([]float64{5, 0, 0}, 0); err == nil {
		t.Fatal("single nonzero accepted")
	}
}

func TestQuantileRankProperty(t *testing.T) {
	f := func(seed int64) bool {
		alpha := math.Mod(math.Abs(float64(seed%100))/40.0, 2.5)
		d, err := New(500, alpha)
		if err != nil {
			return false
		}
		// CDF at QuantileRank(q) must be ≥ q and CDF at rank−1 < q.
		for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			r := d.QuantileRank(q)
			var cum float64
			for i := 1; i <= r; i++ {
				cum += d.Prob(i)
			}
			if cum < q-1e-9 {
				return false
			}
			if r > 1 && cum-d.Prob(r) >= q+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
