// Package ratelimit implements the paper's §2.4 defenses against
// parallelized extraction: per-identity query rate limiting, subnet-level
// aggregation (so a Sybil adversary squatting on one subnet is treated as
// a single principal), a registration throttle that lower-bounds the time
// needed to accumulate identities, and the closed-form cost model that
// says when a parallel attack has been "rendered moot".
package ratelimit

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

// TokenBucket is a standard token-bucket limiter driven by an injected
// clock. It is safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	clock  vclock.Clock
}

// NewTokenBucket returns a bucket that refills at rate tokens/second up to
// burst. The bucket starts full.
func NewTokenBucket(rate, burst float64, clock vclock.Clock) (*TokenBucket, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, errors.New("ratelimit: rate must be positive and finite")
	}
	if burst < 1 {
		return nil, errors.New("ratelimit: burst must be at least 1")
	}
	if clock == nil {
		return nil, errors.New("ratelimit: nil clock")
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: clock.Now(), clock: clock}, nil
}

// Allow consumes one token if available and reports whether it succeeded.
func (b *TokenBucket) Allow() bool { return b.AllowN(1) }

// AllowN consumes n tokens if available.
func (b *TokenBucket) AllowN(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Wait reports the duration until one token will be available (0 if one is
// available now). It does not consume.
func (b *TokenBucket) Wait() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens >= 1 {
		return 0
	}
	need := 1 - b.tokens
	return time.Duration(need / b.rate * float64(time.Second))
}

func (b *TokenBucket) refillLocked() {
	now := b.clock.Now()
	el := now.Sub(b.last).Seconds()
	if el > 0 {
		b.tokens = math.Min(b.burst, b.tokens+el*b.rate)
		b.last = now
	}
}

// Tokens returns the current token count (after refill).
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens
}

// IdentityLimiter keeps one TokenBucket per principal. Principals are
// free-form strings — account names, or subnet keys from SubnetKey when
// defending against address forgery. It is safe for concurrent use.
type IdentityLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	clock   vclock.Clock
	buckets map[string]*TokenBucket
	max     int
	rejects *metrics.Counter // optional, set via SetRejectionCounter
}

// NewIdentityLimiter returns a limiter granting each principal rate
// queries/second with the given burst. maxPrincipals bounds memory; when
// exceeded, the limiter evicts the bucket holding the most tokens — the
// principal closest to a fresh, unthrottled state, who therefore loses
// the least by being forgotten. Evicting arbitrarily would let a Sybil
// adversary wash out their own throttled bucket (and regain full burst)
// just by registering maxPrincipals fresh identities.
func NewIdentityLimiter(rate, burst float64, maxPrincipals int, clock vclock.Clock) (*IdentityLimiter, error) {
	if maxPrincipals < 1 {
		return nil, errors.New("ratelimit: maxPrincipals < 1")
	}
	if _, err := NewTokenBucket(rate, burst, clock); err != nil {
		return nil, err
	}
	return &IdentityLimiter{
		rate: rate, burst: burst, clock: clock,
		buckets: make(map[string]*TokenBucket),
		max:     maxPrincipals,
	}, nil
}

// SetRejectionCounter attaches an optional counter bumped on every
// rejected Allow. Call before the limiter is shared between goroutines.
func (l *IdentityLimiter) SetRejectionCounter(c *metrics.Counter) { l.rejects = c }

// Allow consumes one query credit for the principal.
func (l *IdentityLimiter) Allow(principal string) bool {
	l.mu.Lock()
	b, ok := l.buckets[principal]
	if !ok {
		if len(l.buckets) >= l.max {
			l.evictFullestLocked()
		}
		b, _ = NewTokenBucket(l.rate, l.burst, l.clock)
		l.buckets[principal] = b
	}
	l.mu.Unlock()
	ok = b.Allow()
	if !ok && l.rejects != nil {
		l.rejects.Inc()
	}
	return ok
}

// RetryAfter reports how long the principal must wait until its bucket
// holds one token again (0 if a query would be admitted now). It does
// not consume and does not create state for unknown principals — a
// principal with no bucket has never been throttled and waits nothing.
// Edge limiters use it to stamp 429 responses with a Retry-After that
// lands exactly when admission will succeed, instead of a static guess
// that either hammers the edge early or idles past the refill.
func (l *IdentityLimiter) RetryAfter(principal string) time.Duration {
	l.mu.Lock()
	b, ok := l.buckets[principal]
	l.mu.Unlock()
	if !ok {
		return 0
	}
	return b.Wait()
}

// evictFullestLocked drops the bucket with the most tokens. Ties (e.g.
// several full buckets) break arbitrarily; what matters is that a
// throttled, near-empty bucket is never the victim while fuller ones
// exist. Callers hold l.mu.
func (l *IdentityLimiter) evictFullestLocked() {
	var victim string
	found := false
	most := math.Inf(-1)
	for k, b := range l.buckets {
		if t := b.Tokens(); t > most {
			most, victim, found = t, k, true
		}
	}
	if found {
		delete(l.buckets, victim)
	}
}

// Principals returns the number of tracked principals.
func (l *IdentityLimiter) Principals() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// SubnetKey maps an IP address to its aggregation key: the /24 for IPv4
// and the /48 for IPv6. The paper's Sybil defense: "any given subnet can
// be treated as an aggregate, with responses rate-limited across all
// users in that subnet." Non-IP inputs are returned unchanged so opaque
// account names still work as principals.
func SubnetKey(addr string) string {
	host := addr
	if h, _, err := net.SplitHostPort(addr); err == nil {
		host = h
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return addr
	}
	if v4 := ip.To4(); v4 != nil {
		return fmt.Sprintf("%d.%d.%d.0/24", v4[0], v4[1], v4[2])
	}
	masked := ip.Mask(net.CIDRMask(48, 128))
	return masked.String() + "/48"
}

// RegistrationThrottle admits at most one new identity every Interval, the
// paper's "If only one new user every t seconds is given an account"
// defense. It is safe for concurrent use.
type RegistrationThrottle struct {
	mu       sync.Mutex
	interval time.Duration
	clock    vclock.Clock
	nextAt   time.Time
	granted  int64
	rejects  *metrics.Counter // optional, set via SetRejectionCounter
}

// NewRegistrationThrottle returns a throttle admitting one registration
// per interval.
func NewRegistrationThrottle(interval time.Duration, clock vclock.Clock) (*RegistrationThrottle, error) {
	if interval <= 0 {
		return nil, errors.New("ratelimit: non-positive registration interval")
	}
	if clock == nil {
		return nil, errors.New("ratelimit: nil clock")
	}
	return &RegistrationThrottle{interval: interval, clock: clock}, nil
}

// SetRejectionCounter attaches an optional counter bumped on every
// throttled TryRegister. Call before the throttle is shared between
// goroutines.
func (r *RegistrationThrottle) SetRejectionCounter(c *metrics.Counter) { r.rejects = c }

// TryRegister attempts to register a new identity now. On success it
// returns (0, true); otherwise it returns how long until the next slot.
func (r *RegistrationThrottle) TryRegister() (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	if now.Before(r.nextAt) {
		if r.rejects != nil {
			r.rejects.Inc()
		}
		return r.nextAt.Sub(now), false
	}
	r.nextAt = now.Add(r.interval)
	r.granted++
	return 0, true
}

// Granted returns the number of identities registered so far.
func (r *RegistrationThrottle) Granted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.granted
}

// ParallelAttackTime models the wall-clock cost of a k-identity parallel
// extraction against a registration throttle of one identity per t:
// the adversary spends k·t accumulating identities, then the extraction's
// total delay dtotal is divided across k parallel streams (the paper's
// observation that the adversary "pays only the maximum among individual
// penalties" — with an even split, dtotal/k).
func ParallelAttackTime(dtotal, t time.Duration, k int) time.Duration {
	if k < 1 {
		k = 1
	}
	reg := time.Duration(k) * t
	return reg + dtotal/time.Duration(k)
}

// OptimalParallelism returns the identity count k* minimizing
// ParallelAttackTime, k* = √(dtotal/t), and the resulting minimum attack
// time 2·√(dtotal·t).
func OptimalParallelism(dtotal, t time.Duration) (k int, attack time.Duration) {
	if t <= 0 || dtotal <= 0 {
		return 1, dtotal
	}
	kf := math.Sqrt(dtotal.Seconds() / t.Seconds())
	if kf < 1 {
		kf = 1
	}
	k = int(math.Round(kf))
	best := ParallelAttackTime(dtotal, t, k)
	// Integer neighbourhood check.
	for _, cand := range []int{k - 1, k + 1} {
		if cand >= 1 {
			if at := ParallelAttackTime(dtotal, t, cand); at < best {
				best, k = at, cand
			}
		}
	}
	return k, best
}

// RegistrationIntervalToNeutralize returns the registration interval t
// that makes the *optimal* parallel attack take at least the single-
// identity extraction time dtotal: from 2·√(dtotal·t) ≥ dtotal,
// t ≥ dtotal/4.
func RegistrationIntervalToNeutralize(dtotal time.Duration) time.Duration {
	return dtotal / 4
}

// FeeToNeutralize returns the per-registration fee that makes a k-way
// parallel adversary spend at least dataValue in fees, the paper's
// alternative: "charge a small fee for registration, computed so that a
// parallel adversary would have to spend as much in registration fees as
// to collect the data separately."
func FeeToNeutralize(dataValue float64, k int) float64 {
	if k < 1 {
		k = 1
	}
	return dataValue / float64(k)
}
