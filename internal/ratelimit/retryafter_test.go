package ratelimit

import (
	"testing"
	"time"
)

func TestRetryAfterTracksRefill(t *testing.T) {
	clk := simClock()
	l, err := NewIdentityLimiter(0.5, 1, 16, clk)
	if err != nil {
		t.Fatal(err)
	}

	// Unknown principal: never throttled, waits nothing.
	if d := l.RetryAfter("stranger"); d != 0 {
		t.Fatalf("RetryAfter(unknown) = %v, want 0", d)
	}

	if !l.Allow("alice") {
		t.Fatal("first request denied")
	}
	if l.Allow("alice") {
		t.Fatal("second request admitted past burst 1")
	}
	// Empty bucket at 0.5 tokens/s: a token in 2 seconds.
	if d := l.RetryAfter("alice"); d != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s", d)
	}
	clk.Sleep(1500 * time.Millisecond)
	if d := l.RetryAfter("alice"); d != 500*time.Millisecond {
		t.Fatalf("RetryAfter after 1.5s = %v, want 500ms", d)
	}

	// RetryAfter must not consume: after the refill lands the request
	// is admitted even though RetryAfter was polled repeatedly.
	clk.Sleep(500 * time.Millisecond)
	if d := l.RetryAfter("alice"); d != 0 {
		t.Fatalf("RetryAfter at refill = %v, want 0", d)
	}
	if !l.Allow("alice") {
		t.Fatal("request denied after full refill")
	}

	// A throttled principal's wait is independent of other buckets.
	if !l.Allow("bob") {
		t.Fatal("bob's first request denied")
	}
	l.Allow("bob")
	if d := l.RetryAfter("alice"); d != 2*time.Second {
		t.Fatalf("alice RetryAfter = %v, want 2s", d)
	}
	if d := l.RetryAfter("bob"); d != 2*time.Second {
		t.Fatalf("bob RetryAfter = %v, want 2s", d)
	}
}
