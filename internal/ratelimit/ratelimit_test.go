package ratelimit

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

func simClock() *vclock.Simulated {
	return vclock.NewSimulated(time.Date(2004, 8, 1, 0, 0, 0, 0, time.UTC))
}

func TestNewTokenBucketValidation(t *testing.T) {
	clk := simClock()
	if _, err := NewTokenBucket(0, 1, clk); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := NewTokenBucket(-1, 1, clk); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := NewTokenBucket(math.Inf(1), 1, clk); err == nil {
		t.Fatal("inf rate accepted")
	}
	if _, err := NewTokenBucket(1, 0.5, clk); err == nil {
		t.Fatal("burst < 1 accepted")
	}
	if _, err := NewTokenBucket(1, 1, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestTokenBucketBurstThenThrottle(t *testing.T) {
	clk := simClock()
	b, err := NewTokenBucket(1, 3, clk)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if b.Allow() {
		t.Fatal("request beyond burst allowed")
	}
	if w := b.Wait(); w <= 0 || w > time.Second {
		t.Fatalf("Wait = %v", w)
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("refilled token denied")
	}
	if b.Allow() {
		t.Fatal("second token granted after only 1s refill")
	}
}

func TestTokenBucketRefillCapsAtBurst(t *testing.T) {
	clk := simClock()
	b, _ := NewTokenBucket(10, 5, clk)
	clk.Advance(time.Hour)
	if got := b.Tokens(); got != 5 {
		t.Fatalf("Tokens = %v, want burst cap 5", got)
	}
}

func TestTokenBucketAllowN(t *testing.T) {
	clk := simClock()
	b, _ := NewTokenBucket(1, 10, clk)
	if !b.AllowN(7) {
		t.Fatal("AllowN(7) denied with 10 tokens")
	}
	if b.AllowN(4) {
		t.Fatal("AllowN(4) allowed with 3 tokens")
	}
	if !b.AllowN(3) {
		t.Fatal("AllowN(3) denied with 3 tokens")
	}
}

func TestTokenBucketWaitZeroWhenAvailable(t *testing.T) {
	clk := simClock()
	b, _ := NewTokenBucket(1, 1, clk)
	if w := b.Wait(); w != 0 {
		t.Fatalf("Wait with full bucket = %v", w)
	}
}

func TestTokenBucketConcurrentNoOverissue(t *testing.T) {
	clk := simClock()
	b, _ := NewTokenBucket(0.001, 100, clk)
	var granted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < 100; i++ {
				if b.Allow() {
					local++
				}
			}
			mu.Lock()
			granted += int64(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if granted > 100 {
		t.Fatalf("granted %d from burst of 100", granted)
	}
}

func TestIdentityLimiterIsolatesPrincipals(t *testing.T) {
	clk := simClock()
	l, err := NewIdentityLimiter(1, 2, 100, clk)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Allow("alice") || !l.Allow("alice") {
		t.Fatal("alice burst denied")
	}
	if l.Allow("alice") {
		t.Fatal("alice over-burst allowed")
	}
	// bob unaffected by alice's exhaustion.
	if !l.Allow("bob") {
		t.Fatal("bob denied")
	}
	if l.Principals() != 2 {
		t.Fatalf("Principals = %d", l.Principals())
	}
}

func TestIdentityLimiterEvictsAtCapacity(t *testing.T) {
	clk := simClock()
	l, _ := NewIdentityLimiter(1, 1, 3, clk)
	for _, p := range []string{"a", "b", "c", "d", "e"} {
		l.Allow(p)
	}
	if got := l.Principals(); got > 3 {
		t.Fatalf("Principals = %d exceeds max", got)
	}
}

// TestThrottledPrincipalSurvivesEvictionStorm is the Sybil-wash
// regression: an adversary who floods maxPrincipals fresh identities
// must not be able to evict their own throttled bucket and regain full
// burst. Eviction picks the fullest bucket, so the drained "sybil"
// principal outlives every fresher arrival.
func TestThrottledPrincipalSurvivesEvictionStorm(t *testing.T) {
	clk := simClock()
	// Rate so slow nothing refills during the test; burst 10.
	l, _ := NewIdentityLimiter(1e-9, 10, 8, clk)
	// The adversary drains their primary identity to zero tokens.
	for i := 0; i < 10; i++ {
		if !l.Allow("sybil") {
			t.Fatalf("burst query %d denied", i)
		}
	}
	if l.Allow("sybil") {
		t.Fatal("sybil over-burst allowed")
	}
	// Eviction storm: far more fresh identities than the table holds,
	// each spending one token (so they sit at 9 tokens — far fuller than
	// sybil's 0).
	for i := 0; i < 100; i++ {
		l.Allow(fmt.Sprintf("fresh-%d", i))
	}
	if got := l.Principals(); got > 8 {
		t.Fatalf("Principals = %d exceeds max", got)
	}
	// The wash must have failed: sybil is still the throttled principal,
	// not a forgotten one with a fresh burst.
	if l.Allow("sybil") {
		t.Fatal("eviction storm washed out the throttled bucket")
	}
}

func TestIdentityLimiterRejectionCounter(t *testing.T) {
	clk := simClock()
	l, _ := NewIdentityLimiter(1e-9, 1, 8, clk)
	var c metrics.Counter
	l.SetRejectionCounter(&c)
	l.Allow("p")
	l.Allow("p")
	l.Allow("p")
	if c.Value() != 2 {
		t.Fatalf("rejections = %d", c.Value())
	}
}

func TestRegistrationThrottleRejectionCounter(t *testing.T) {
	r, _ := NewRegistrationThrottle(time.Hour, simClock())
	var c metrics.Counter
	r.SetRejectionCounter(&c)
	r.TryRegister()
	r.TryRegister()
	if c.Value() != 1 {
		t.Fatalf("rejections = %d", c.Value())
	}
}

func TestIdentityLimiterValidation(t *testing.T) {
	if _, err := NewIdentityLimiter(1, 1, 0, simClock()); err == nil {
		t.Fatal("maxPrincipals 0 accepted")
	}
	if _, err := NewIdentityLimiter(0, 1, 10, simClock()); err == nil {
		t.Fatal("rate 0 accepted")
	}
}

func TestSubnetKeyIPv4(t *testing.T) {
	cases := map[string]string{
		"192.168.1.57":       "192.168.1.0/24",
		"192.168.1.200:8080": "192.168.1.0/24",
		"10.0.0.1":           "10.0.0.0/24",
		"10.0.0.99":          "10.0.0.0/24",
	}
	for in, want := range cases {
		if got := SubnetKey(in); got != want {
			t.Errorf("SubnetKey(%q) = %q, want %q", in, got, want)
		}
	}
	// Two hosts on one subnet share a key; different subnets do not.
	if SubnetKey("1.2.3.4") != SubnetKey("1.2.3.250") {
		t.Error("same-/24 hosts got different keys")
	}
	if SubnetKey("1.2.3.4") == SubnetKey("1.2.4.4") {
		t.Error("different /24s share a key")
	}
}

func TestSubnetKeyIPv6(t *testing.T) {
	a := SubnetKey("2001:db8:abcd:12::1")
	b := SubnetKey("2001:db8:abcd:99::2")
	if a != b {
		t.Errorf("same /48 differ: %q vs %q", a, b)
	}
	c := SubnetKey("2001:db9::1")
	if a == c {
		t.Error("different /48s share a key")
	}
}

func TestSubnetKeyOpaque(t *testing.T) {
	if got := SubnetKey("account-1234"); got != "account-1234" {
		t.Errorf("opaque principal mangled: %q", got)
	}
}

func TestRegistrationThrottle(t *testing.T) {
	clk := simClock()
	r, err := NewRegistrationThrottle(time.Minute, clk)
	if err != nil {
		t.Fatal(err)
	}
	if wait, ok := r.TryRegister(); !ok || wait != 0 {
		t.Fatalf("first registration denied: %v, %v", wait, ok)
	}
	wait, ok := r.TryRegister()
	if ok {
		t.Fatal("immediate second registration allowed")
	}
	if wait <= 0 || wait > time.Minute {
		t.Fatalf("wait = %v", wait)
	}
	clk.Advance(time.Minute)
	if _, ok := r.TryRegister(); !ok {
		t.Fatal("registration after interval denied")
	}
	if r.Granted() != 2 {
		t.Fatalf("Granted = %d", r.Granted())
	}
}

func TestRegistrationThrottleValidation(t *testing.T) {
	if _, err := NewRegistrationThrottle(0, simClock()); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewRegistrationThrottle(time.Second, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestParallelAttackTime(t *testing.T) {
	dtotal := 100 * time.Hour
	reg := time.Hour
	// k=1: no parallel benefit.
	if got := ParallelAttackTime(dtotal, reg, 1); got != reg+dtotal {
		t.Fatalf("k=1: %v", got)
	}
	// k=10: 10h registering + 10h extracting.
	if got := ParallelAttackTime(dtotal, reg, 10); got != 20*time.Hour {
		t.Fatalf("k=10: %v", got)
	}
	// k<1 clamps.
	if got := ParallelAttackTime(dtotal, reg, 0); got != reg+dtotal {
		t.Fatalf("k=0: %v", got)
	}
}

func TestOptimalParallelism(t *testing.T) {
	dtotal := 100 * time.Hour
	reg := time.Hour
	k, attack := OptimalParallelism(dtotal, reg)
	if k != 10 {
		t.Fatalf("k* = %d, want 10", k)
	}
	if attack != 20*time.Hour {
		t.Fatalf("attack = %v, want 20h", attack)
	}
	// Check it is genuinely minimal over a sweep.
	for cand := 1; cand <= 100; cand++ {
		if at := ParallelAttackTime(dtotal, reg, cand); at < attack {
			t.Fatalf("k=%d beats optimal: %v < %v", cand, at, attack)
		}
	}
	// Degenerate throttle.
	if k, at := OptimalParallelism(dtotal, 0); k != 1 || at != dtotal {
		t.Fatalf("no-throttle optimal = %d, %v", k, at)
	}
}

func TestRegistrationIntervalToNeutralize(t *testing.T) {
	dtotal := 40 * time.Hour
	tReg := RegistrationIntervalToNeutralize(dtotal)
	if tReg != 10*time.Hour {
		t.Fatalf("interval = %v", tReg)
	}
	// With that interval, the optimal attack takes at least dtotal.
	_, attack := OptimalParallelism(dtotal, tReg)
	if attack < dtotal {
		t.Fatalf("neutralized attack %v still beats single-identity %v", attack, dtotal)
	}
}

func TestFeeToNeutralize(t *testing.T) {
	if got := FeeToNeutralize(1000, 10); got != 100 {
		t.Fatalf("fee = %v", got)
	}
	if got := FeeToNeutralize(1000, 0); got != 1000 {
		t.Fatalf("fee k=0 = %v", got)
	}
}

// TestIdentityLimiterRegistrationStormChurn: a Sybil registration storm
// must stay within the principal cap via fullest-bucket eviction, and
// must not evict an active legitimate principal. The proof of the second
// half is the legit bucket's token debt: if the storm evicted it, the
// principal would be reborn with a full bucket and its next Allow would
// wrongly succeed.
func TestIdentityLimiterRegistrationStormChurn(t *testing.T) {
	const maxPrincipals = 64
	clk := simClock()
	l, err := NewIdentityLimiter(1, 2, maxPrincipals, clk)
	if err != nil {
		t.Fatal(err)
	}
	// The legitimate principal drains its burst; the clock never
	// advances, so the bucket sits at zero tokens for the whole storm.
	for i := 0; i < 2; i++ {
		if !l.Allow("alice") {
			t.Fatalf("alice denied within burst (query %d)", i)
		}
	}
	if l.Allow("alice") {
		t.Fatal("alice allowed past burst")
	}
	// 1000 fresh identities register and fire one query each. Every
	// sybil bucket holds burst−1 tokens, so eviction always lands on a
	// sybil, never on the drained legit bucket.
	for i := 0; i < 1000; i++ {
		if !l.Allow(fmt.Sprintf("sybil-%d", i)) {
			t.Fatalf("sybil-%d first query denied (fresh bucket)", i)
		}
		if got := l.Principals(); got > maxPrincipals {
			t.Fatalf("tracked %d principals mid-storm, cap %d", got, maxPrincipals)
		}
	}
	if got := l.Principals(); got != maxPrincipals {
		t.Fatalf("tracked %d principals after storm, want %d", got, maxPrincipals)
	}
	// Alice survived the churn: still the same drained bucket, not an
	// evict-rebirth with fresh tokens.
	if l.Allow("alice") {
		t.Fatal("alice allowed after storm — her bucket was evicted and reborn full")
	}
}
