package counters

import (
	"math/rand"
	"testing"
)

func TestNewMultiDecayValidation(t *testing.T) {
	if _, err := NewMultiDecay(nil, 0.9, 10); err == nil {
		t.Fatal("empty rates accepted")
	}
	if _, err := NewMultiDecay([]float64{1}, 0, 10); err == nil {
		t.Fatal("scoreDecay 0 accepted")
	}
	if _, err := NewMultiDecay([]float64{1}, 1.5, 10); err == nil {
		t.Fatal("scoreDecay > 1 accepted")
	}
	if _, err := NewMultiDecay([]float64{0.5}, 0.9, 10); err == nil {
		t.Fatal("bad decay rate accepted")
	}
}

func TestMultiDecayWarmupUsesFirst(t *testing.T) {
	m, err := NewMultiDecay([]float64{1, 2}, 0.9, 100)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(1)
	_, idx := m.Active()
	if idx != 0 {
		t.Fatalf("Active during warmup = %d, want 0", idx)
	}
	if len(m.Trackers()) != 2 {
		t.Fatalf("Trackers len = %d", len(m.Trackers()))
	}
}

func TestMultiDecayPrefersNoDecayOnStaticWorkload(t *testing.T) {
	// Static Zipf-ish workload: the no-decay tracker predicts best, as the
	// paper observes for the Calgary trace ("it is best to use the full
	// history of prior accesses").
	m, err := NewMultiDecay([]float64{1.0, 1.5}, 0.99, 200)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		// 3 hot ids dominating, static.
		var id uint64
		switch r := rng.Float64(); {
		case r < 0.5:
			id = 0
		case r < 0.8:
			id = 1
		case r < 0.95:
			id = 2
		default:
			id = uint64(3 + rng.Intn(50))
		}
		m.Observe(id)
	}
	_, idx := m.Active()
	if idx != 0 {
		t.Fatalf("Active on static workload = %d (scores %v), want 0", idx, m.Scores())
	}
}

func TestMultiDecayPrefersDecayOnShiftingWorkload(t *testing.T) {
	// Popularity shifts entirely every phase: a decaying tracker adapts,
	// the no-decay tracker keeps predicting stale favorites.
	m, err := NewMultiDecay([]float64{1.0, 1.05}, 0.995, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for phase := 0; phase < 30; phase++ {
		hot := uint64(phase * 10)
		for i := 0; i < 400; i++ {
			var id uint64
			if rng.Float64() < 0.9 {
				id = hot + uint64(rng.Intn(2))
			} else {
				id = uint64(rng.Intn(1000))
			}
			m.Observe(id)
		}
	}
	_, idx := m.Active()
	if idx != 1 {
		t.Fatalf("Active on shifting workload = %d (scores %v), want 1", idx, m.Scores())
	}
}

func TestMultiDecayScoresCopied(t *testing.T) {
	m, _ := NewMultiDecay([]float64{1, 2}, 0.9, 0)
	s := m.Scores()
	s[0] = 12345
	if m.Scores()[0] == 12345 {
		t.Fatal("Scores returned internal slice")
	}
}
