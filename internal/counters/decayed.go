// Package counters implements the per-tuple access statistics of the
// paper's §2.3: exponentially decayed request counts maintained with the
// "inflation trick" (grow the per-request increment instead of discounting
// every count), adaptive multi-rate decay tracking, a write-behind count
// cache that bounds memory and I/O (§4.4), and a sampled synopsis counter
// in the spirit of Gibbons & Matias.
package counters

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/ostree"
)

// renormThreshold is the increment value past which all weights are scaled
// back down to avoid floating-point overflow, "at some loss of precision"
// as the paper puts it.
const renormThreshold = 1e100

// Decayed tracks exponentially decayed access counts per item id and
// answers rank queries against the current popularity ordering.
//
// Decay semantics: conceptually, every existing count is multiplied by 1/δ
// at each decay step, so old accesses fade. Implemented by inflation: an
// access at step t adds inc(t) to the item's raw weight, where inc grows by
// the factor δ at every decay step. The decayed count of an item is its raw
// weight divided by the current increment; popularity (the paper's
// normalized frequency) is raw weight divided by total raw weight.
//
// A decay rate of exactly 1 means no decay: the full history counts.
// Decayed is safe for concurrent use.
type Decayed struct {
	mu    sync.Mutex
	decay float64
	inc   float64
	total float64
	tree  *ostree.Tree
	obs   int64
	// renorms counts how many times the inflation counter was reset; it is
	// exposed for tests and the ablation benchmarks.
	renorms int64
	// epoch is a generation counter advanced on every mutation (each
	// observation, decay tick, removal, and import). Readers use it to
	// invalidate derived state — the delay price cache compares the epoch
	// a price was computed at against the current one — so it is atomic
	// and readable without taking mu.
	epoch atomic.Uint64
}

// NewDecayed returns a tracker with decay rate decay (≥ 1). It returns an
// error for rates below 1, NaN, or +Inf.
func NewDecayed(decay float64) (*Decayed, error) {
	if decay < 1 || math.IsNaN(decay) || math.IsInf(decay, 0) {
		return nil, errors.New("counters: decay rate must be a finite value >= 1")
	}
	return &Decayed{decay: decay, inc: 1, tree: ostree.New(1)}, nil
}

// DecayRate returns the configured δ.
func (d *Decayed) DecayRate() float64 { return d.decay }

// Observe records one access to id and then applies one decay step. This
// is the per-request cadence used for the web-trace workloads, where the
// paper applies decay "at each request, uniformly to all counts".
func (d *Decayed) Observe(id uint64) {
	d.mu.Lock()
	d.observeLocked(id, false)
	d.tickLocked()
	d.mu.Unlock()
}

// ObserveNoDecay records one access without a decay step. Workloads that
// apply decay at coarser boundaries (the box-office trace decays weekly)
// use this together with Tick.
func (d *Decayed) ObserveNoDecay(id uint64) {
	d.mu.Lock()
	d.observeLocked(id, false)
	d.mu.Unlock()
}

// observeLocked records one access. deferTree queues the rank-tree repair
// for the next rank read instead of applying it in place; batch observes
// use it so a k-tuple burst pays one amortized repair pass.
func (d *Decayed) observeLocked(id uint64, deferTree bool) {
	w, _ := d.tree.Weight(id)
	if deferTree {
		d.tree.UpsertDeferred(id, w+d.inc)
	} else {
		d.tree.Upsert(id, w+d.inc)
	}
	d.total += d.inc
	d.obs++
	d.epoch.Add(1)
}

// ObserveBatch records one access to every id in order, each followed by
// one decay step — exactly the state sequence len(ids) Observe calls
// would produce — under a single lock acquisition. It is the tracker
// half of the batch-first quote/observe path: a k-tuple SELECT pays one
// lock round-trip here instead of k.
func (d *Decayed) ObserveBatch(ids []uint64) {
	if len(ids) == 0 {
		return
	}
	// A single-tuple batch keeps the eager treap write: deferring would
	// only queue pending-map churn ahead of the very next rank read.
	deferTree := len(ids) > 1
	d.mu.Lock()
	for _, id := range ids {
		d.observeLocked(id, deferTree)
		d.tickLocked()
	}
	d.mu.Unlock()
}

// Tick applies one decay step to all counts (via increment inflation).
func (d *Decayed) Tick() {
	d.mu.Lock()
	d.tickLocked()
	d.mu.Unlock()
}

// TickN applies n decay steps.
func (d *Decayed) TickN(n int) {
	d.mu.Lock()
	for i := 0; i < n; i++ {
		d.tickLocked()
	}
	d.mu.Unlock()
}

func (d *Decayed) tickLocked() {
	if d.decay == 1 {
		// No decay: counts are unchanged, so the epoch must not advance
		// (it would spuriously invalidate cached delay prices).
		return
	}
	d.epoch.Add(1)
	d.inc *= d.decay
	if d.inc > renormThreshold {
		scale := 1 / d.inc
		d.tree.ScaleAll(scale)
		d.total *= scale
		d.inc = 1
		d.renorms++
	}
}

// Remove drops id from the tracker entirely (e.g. when the tuple is
// deleted from the database). Reports whether it was tracked.
func (d *Decayed) Remove(id uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.tree.Weight(id)
	if !ok {
		return false
	}
	d.tree.Delete(id)
	d.total -= w
	if d.total < 0 {
		d.total = 0
	}
	d.epoch.Add(1)
	return true
}

// Epoch returns the tracker's mutation generation: it advances at least
// once per state change (observation, effective decay tick, removal,
// import). Consumers snapshot it before deriving state from the tracker
// and compare later to decide whether the derivation is still fresh; the
// delay price cache bounds staleness by an epoch lag. Epoch does not
// take the tracker lock.
func (d *Decayed) Epoch() uint64 { return d.epoch.Load() }

// Count returns the decayed count of id: raw weight normalized by the
// current increment. Unseen ids return 0.
func (d *Decayed) Count(id uint64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, _ := d.tree.Weight(id)
	return w / d.inc
}

// Popularity returns id's share of the total decayed weight, in [0, 1].
// This is the paper's "value of this count, normalized by a global count
// of all requests". Returns 0 before any observation.
func (d *Decayed) Popularity(id uint64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.total <= 0 {
		return 0
	}
	w, _ := d.tree.Weight(id)
	return w / d.total
}

// MaxCount returns the decayed count of the most requested item — the
// paper's fmax in effective-request units. Returns 0 before any
// observation.
func (d *Decayed) MaxCount() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	w, ok := d.tree.MaxWeight()
	if !ok {
		return 0
	}
	return w / d.inc
}

// MaxPopularity returns the popularity of the most requested item — the
// paper's fmax as a fraction of total traffic. Returns 0 before any
// observation.
func (d *Decayed) MaxPopularity() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.total <= 0 {
		return 0
	}
	w, ok := d.tree.MaxWeight()
	if !ok {
		return 0
	}
	return w / d.total
}

// Rank returns the 1-based popularity rank of id. Ids never observed rank
// after every observed id (Len()+1), matching the paper's start-up rule
// that "all items are equally unpopular with frequencies of zero".
func (d *Decayed) Rank(id uint64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, _ := d.tree.Rank(id)
	return r
}

// RankBatch returns the 1-based popularity rank of every id under one
// lock acquisition — the batch counterpart of per-id Count+Rank calls on
// the quote hot path. Ids never observed report -1; callers map that to
// their policy's "maximally unpopular" rank (the delay policies use N).
func (d *Decayed) RankBatch(ids []uint64) []int {
	out := make([]int, len(ids))
	d.mu.Lock()
	for i, id := range ids {
		if _, ok := d.tree.Weight(id); !ok {
			out[i] = -1
			continue
		}
		out[i], _ = d.tree.Rank(id)
	}
	d.mu.Unlock()
	return out
}

// RankOne is RankBatch for a single id without the result-slice
// allocation; the single-tuple quote path lives on it.
func (d *Decayed) RankOne(id uint64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tree.Weight(id); !ok {
		return -1
	}
	r, _ := d.tree.Rank(id)
	return r
}

// Len returns the number of distinct ids observed.
func (d *Decayed) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tree.Len()
}

// Observations returns the total number of accesses recorded.
func (d *Decayed) Observations() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.obs
}

// Renormalizations returns how many times counts were rescaled to avoid
// overflow.
func (d *Decayed) Renormalizations() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.renorms
}

// Ascend visits observed ids in rank order (most popular first) until fn
// returns false. The weight passed to fn is the decayed count. The lock is
// held for the duration; fn must not call back into d.
func (d *Decayed) Ascend(fn func(rank int, id uint64, count float64) bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	inc := d.inc
	d.tree.Ascend(func(rank int, id uint64, w float64) bool {
		return fn(rank, id, w/inc)
	})
}

// Export returns every observed id with its decayed count, in rank
// order, for persistence. Pair with Import to carry learned popularity
// across restarts.
func (d *Decayed) Export() (ids []uint64, counts []float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	inc := d.inc
	d.tree.Ascend(func(_ int, id uint64, w float64) bool {
		ids = append(ids, id)
		counts = append(counts, w/inc)
		return true
	})
	return ids, counts
}

// Import replaces the tracker's state with the given decayed counts
// (e.g. from a previous process's Export). Non-positive counts are
// skipped. The observation total is reset to the number of imported ids;
// the decay increment restarts at 1.
func (d *Decayed) Import(ids []uint64, counts []float64) error {
	if len(ids) != len(counts) {
		return errors.New("counters: import length mismatch")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tree = ostree.New(1)
	d.total = 0
	d.inc = 1
	d.obs = 0
	for i, id := range ids {
		c := counts[i]
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			continue
		}
		d.tree.Upsert(id, c)
		d.total += c
		d.obs++
	}
	d.epoch.Add(1)
	return nil
}

// Snapshot returns all observed ids in rank order together with their
// popularities. It is used by experiment harnesses to freeze a learned
// distribution.
func (d *Decayed) Snapshot() (ids []uint64, pops []float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := d.total
	d.tree.Ascend(func(_ int, id uint64, w float64) bool {
		ids = append(ids, id)
		if total > 0 {
			pops = append(pops, w/total)
		} else {
			pops = append(pops, 0)
		}
		return true
	})
	return ids, pops
}
