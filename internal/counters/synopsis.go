package counters

import (
	"math/rand"
	"sync"
)

// Synopsis is a bounded-memory approximate counter modeled on the
// counting samples of Gibbons & Matias (SIGMOD 1998), which the paper
// cites (§4.4) as a way to shrink count-maintenance overhead further. It
// keeps exact counts for a sampled subset of ids; ids enter the sample
// with probability 1/tau, and when the sample outgrows its capacity, tau
// is raised and existing entries are thinned so the inclusion probability
// stays consistent.
//
// Estimate returns an (approximately) unbiased estimate of an id's true
// count: a tracked id with sampled count c is estimated as c + tau − 1,
// accounting for the expected number of occurrences before the one that
// put it in the sample. Synopsis is safe for concurrent use.
type Synopsis struct {
	mu       sync.Mutex
	capacity int
	tau      float64
	growth   float64
	counts   map[uint64]float64
	rng      *rand.Rand
	total    int64
}

// NewSynopsis returns a synopsis holding at most capacity tracked ids.
// growth (> 1) is the factor by which the sampling threshold tau rises on
// overflow; 1.5 is a reasonable default.
func NewSynopsis(capacity int, growth float64, seed int64) *Synopsis {
	if capacity < 1 {
		capacity = 1
	}
	if growth <= 1 {
		growth = 1.5
	}
	return &Synopsis{
		capacity: capacity,
		tau:      1,
		growth:   growth,
		counts:   make(map[uint64]float64),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Observe records one occurrence of id.
func (s *Synopsis) Observe(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if _, ok := s.counts[id]; ok {
		s.counts[id]++
		return
	}
	if s.rng.Float64() < 1/s.tau {
		s.counts[id] = 1
		if len(s.counts) > s.capacity {
			s.thinLocked()
		}
	}
}

// thinLocked raises tau and re-samples existing entries so that each
// retained id remains in the sample with probability 1/tau under the new
// threshold. Following Gibbons & Matias: for each entry, the first unit
// survives with probability tau/tau'; if it dies, subsequent units each
// survive with probability 1/tau' until one survives or the count is
// exhausted (then the entry is evicted).
func (s *Synopsis) thinLocked() {
	for len(s.counts) > s.capacity {
		oldTau := s.tau
		s.tau *= s.growth
		for id, c := range s.counts {
			if s.rng.Float64() < oldTau/s.tau {
				continue // survives intact
			}
			c--
			for c > 0 && s.rng.Float64() >= 1/s.tau {
				c--
			}
			if c <= 0 {
				delete(s.counts, id)
			} else {
				s.counts[id] = c
			}
		}
	}
}

// Estimate returns the estimated occurrence count of id (0 if untracked).
func (s *Synopsis) Estimate(id uint64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counts[id]
	if !ok {
		return 0
	}
	return c + s.tau - 1
}

// Tracked returns the number of ids currently in the sample.
func (s *Synopsis) Tracked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.counts)
}

// Tau returns the current sampling threshold.
func (s *Synopsis) Tau() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tau
}

// Total returns the total number of observations presented.
func (s *Synopsis) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
