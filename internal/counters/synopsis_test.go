package counters

import (
	"math"
	"math/rand"
	"testing"
)

func TestSynopsisExactWhileSmall(t *testing.T) {
	s := NewSynopsis(100, 1.5, 1)
	for i := 0; i < 10; i++ {
		s.Observe(1)
	}
	for i := 0; i < 4; i++ {
		s.Observe(2)
	}
	// tau is still 1 ⇒ exact counts.
	if got := s.Estimate(1); got != 10 {
		t.Fatalf("Estimate(1) = %v", got)
	}
	if got := s.Estimate(2); got != 4 {
		t.Fatalf("Estimate(2) = %v", got)
	}
	if got := s.Estimate(3); got != 0 {
		t.Fatalf("Estimate(unseen) = %v", got)
	}
	if s.Tau() != 1 {
		t.Fatalf("Tau = %v", s.Tau())
	}
	if s.Total() != 14 {
		t.Fatalf("Total = %v", s.Total())
	}
}

func TestSynopsisBoundedMemory(t *testing.T) {
	s := NewSynopsis(50, 1.5, 2)
	for i := 0; i < 100000; i++ {
		s.Observe(uint64(i % 5000))
	}
	if got := s.Tracked(); got > 50 {
		t.Fatalf("Tracked = %d exceeds capacity", got)
	}
	if s.Tau() <= 1 {
		t.Fatal("tau never raised despite overflow")
	}
}

func TestSynopsisHeavyHittersSurvive(t *testing.T) {
	s := NewSynopsis(64, 1.5, 3)
	rng := rand.New(rand.NewSource(5))
	const n = 200000
	// id 1 gets 30% of traffic; the rest spread over 10k ids.
	var trueCount1 float64
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			s.Observe(1)
			trueCount1++
		} else {
			s.Observe(uint64(2 + rng.Intn(10000)))
		}
	}
	est := s.Estimate(1)
	if est == 0 {
		t.Fatal("heavy hitter evicted from synopsis")
	}
	if math.Abs(est-trueCount1)/trueCount1 > 0.1 {
		t.Fatalf("heavy-hitter estimate %v vs true %v", est, trueCount1)
	}
}

func TestSynopsisEstimateRoughlyUnbiased(t *testing.T) {
	// Average estimate across many seeds for a mid-frequency item should
	// be near its true count.
	const trials = 60
	const trueCount = 500
	var sum float64
	for seed := int64(0); seed < trials; seed++ {
		s := NewSynopsis(32, 1.5, seed)
		rng := rand.New(rand.NewSource(seed + 1000))
		for i := 0; i < trueCount; i++ {
			s.Observe(7)
			// Interleave noise to force thinning.
			for j := 0; j < 40; j++ {
				s.Observe(uint64(100 + rng.Intn(5000)))
			}
		}
		sum += s.Estimate(7)
	}
	avg := sum / trials
	if math.Abs(avg-trueCount)/trueCount > 0.25 {
		t.Fatalf("mean estimate %v vs true %v", avg, trueCount)
	}
}

func TestSynopsisDefensiveParams(t *testing.T) {
	s := NewSynopsis(0, 0.5, 1) // both invalid; clamped
	s.Observe(1)
	if s.Tracked() > 1 {
		t.Fatal("capacity clamp failed")
	}
}
