package counters

import (
	"math"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	d, _ := NewDecayed(1)
	for i := 0; i < 7; i++ {
		d.Observe(1)
	}
	for i := 0; i < 3; i++ {
		d.Observe(2)
	}
	ids, counts := d.Export()
	if len(ids) != 2 || ids[0] != 1 || counts[0] != 7 || counts[1] != 3 {
		t.Fatalf("export = %v %v", ids, counts)
	}

	fresh, _ := NewDecayed(1)
	if err := fresh.Import(ids, counts); err != nil {
		t.Fatal(err)
	}
	if fresh.Count(1) != 7 || fresh.Count(2) != 3 {
		t.Fatalf("imported counts = %v, %v", fresh.Count(1), fresh.Count(2))
	}
	if fresh.Rank(1) != 1 || fresh.Rank(2) != 2 {
		t.Fatal("imported ranks wrong")
	}
	if fresh.MaxCount() != 7 {
		t.Fatalf("imported MaxCount = %v", fresh.MaxCount())
	}
	// Popularities normalized.
	if math.Abs(fresh.Popularity(1)-0.7) > 1e-12 {
		t.Fatalf("imported popularity = %v", fresh.Popularity(1))
	}
}

func TestExportAfterDecayGivesDecayedCounts(t *testing.T) {
	d, _ := NewDecayed(2)
	d.ObserveNoDecay(1)
	d.Tick() // count halves
	_, counts := d.Export()
	if counts[0] != 0.5 {
		t.Fatalf("decayed export = %v", counts[0])
	}
}

func TestImportValidation(t *testing.T) {
	d, _ := NewDecayed(1)
	if err := d.Import([]uint64{1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Bad values skipped, not fatal.
	if err := d.Import([]uint64{1, 2, 3, 4}, []float64{5, -1, math.NaN(), math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Count(1) != 5 {
		t.Fatalf("after import: len=%d count=%v", d.Len(), d.Count(1))
	}
}

func TestRemove(t *testing.T) {
	d, _ := NewDecayed(1)
	for i := 0; i < 4; i++ {
		d.Observe(1)
	}
	d.Observe(2)
	if !d.Remove(1) {
		t.Fatal("Remove(tracked) = false")
	}
	if d.Remove(1) || d.Remove(99) {
		t.Fatal("Remove(untracked) = true")
	}
	if d.Count(1) != 0 || d.Len() != 1 {
		t.Fatalf("after remove: count=%v len=%d", d.Count(1), d.Len())
	}
	// Remaining tuple now holds all popularity mass and rank 1.
	if d.Popularity(2) != 1 || d.Rank(2) != 1 {
		t.Fatalf("pop=%v rank=%d", d.Popularity(2), d.Rank(2))
	}
}

func TestImportReplacesPriorState(t *testing.T) {
	d, _ := NewDecayed(1)
	d.Observe(42)
	if err := d.Import([]uint64{7}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if d.Count(42) != 0 {
		t.Fatal("old state survived import")
	}
	if d.Len() != 1 {
		t.Fatalf("len = %d", d.Len())
	}
	// Tracker remains usable after import.
	d.Observe(7)
	if d.Count(7) != 3 {
		t.Fatalf("count after import+observe = %v", d.Count(7))
	}
}
