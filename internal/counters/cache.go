package counters

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Store is the backing store a CountCache spills to. Implementations are
// a plain map (tests), a file (tools), or a column in the database engine
// itself (the Table 5 overhead experiment).
type Store interface {
	// GetCount returns the persisted count for id, or ok=false if never
	// persisted.
	GetCount(id uint64) (count float64, ok bool, err error)
	// PutCount persists the count for id.
	PutCount(id uint64, count float64) error
}

// BatchStore is a Store that can atomically replace its entire contents.
// Snapshot writers (Shield.SaveCounts) prefer it over row-by-row
// PutCount, which can fail midway and leave a torn snapshot — and which
// never removes rows from a previous, larger save.
type BatchStore interface {
	Store
	// ReplaceAllCounts clears every persisted count and writes the given
	// pairs as one atomic unit: a reader (or a crash-recovered store)
	// sees either the complete old contents or the complete new ones.
	ReplaceAllCounts(ids []uint64, counts []float64) error
}

// MapStore is an in-memory Store for tests and examples. It is safe for
// concurrent use.
type MapStore struct {
	mu   sync.Mutex
	m    map[uint64]float64
	gets int64
	puts int64
}

// NewMapStore returns an empty MapStore.
func NewMapStore() *MapStore { return &MapStore{m: make(map[uint64]float64)} }

// GetCount implements Store.
func (s *MapStore) GetCount(id uint64) (float64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	c, ok := s.m[id]
	return c, ok, nil
}

// PutCount implements Store.
func (s *MapStore) PutCount(id uint64, count float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.m[id] = count
	return nil
}

// ReplaceAllCounts implements BatchStore: the map is swapped wholesale
// under the lock.
func (s *MapStore) ReplaceAllCounts(ids []uint64, counts []float64) error {
	if len(ids) != len(counts) {
		return errors.New("counters: ids/counts length mismatch")
	}
	m := make(map[uint64]float64, len(ids))
	for i, id := range ids {
		m[id] = counts[i]
	}
	s.mu.Lock()
	s.m = m
	s.puts += int64(len(ids))
	s.mu.Unlock()
	return nil
}

// Ops returns the number of get and put operations served, for overhead
// accounting in tests and benchmarks.
func (s *MapStore) Ops() (gets, puts int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gets, s.puts
}

// Len returns the number of persisted ids.
func (s *MapStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// CountCache is the paper's §4.4 "small, write-behind cache of tuple
// counts. However, not all counts are kept in memory, resulting in some
// I/O overhead." It keeps at most capacity counts resident; increments
// hit memory, and dirty entries are written back only on eviction or
// Flush. CountCache is safe for concurrent use.
type CountCache struct {
	mu       sync.Mutex
	capacity int
	store    Store
	entries  map[uint64]*list.Element
	lru      *list.List // front = most recently used
	hits     int64
	misses   int64
	evicts   int64
}

type cacheEntry struct {
	id    uint64
	count float64
	dirty bool
}

// NewCountCache returns a cache of the given capacity over store.
func NewCountCache(capacity int, store Store) (*CountCache, error) {
	if capacity < 1 {
		return nil, errors.New("counters: cache capacity < 1")
	}
	if store == nil {
		return nil, errors.New("counters: nil store")
	}
	return &CountCache{
		capacity: capacity,
		store:    store,
		entries:  make(map[uint64]*list.Element),
		lru:      list.New(),
	}, nil
}

// Add increases id's count by delta and returns the new count. On a cache
// miss the prior count is faulted in from the store (the I/O the paper's
// overhead numbers include).
func (c *CountCache) Add(id uint64, delta float64) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, err := c.faultLocked(id)
	if err != nil {
		return 0, err
	}
	e.count += delta
	e.dirty = true
	return e.count, nil
}

// Get returns id's current count, faulting from the store if needed.
func (c *CountCache) Get(id uint64) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, err := c.faultLocked(id)
	if err != nil {
		return 0, err
	}
	return e.count, nil
}

func (c *CountCache) faultLocked(id uint64) (*cacheEntry, error) {
	if el, ok := c.entries[id]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry), nil
	}
	c.misses++
	count, _, err := c.store.GetCount(id)
	if err != nil {
		return nil, fmt.Errorf("counters: faulting id %d: %w", id, err)
	}
	if len(c.entries) >= c.capacity {
		if err := c.evictLocked(); err != nil {
			return nil, err
		}
	}
	e := &cacheEntry{id: id, count: count}
	c.entries[id] = c.lru.PushFront(e)
	return e, nil
}

func (c *CountCache) evictLocked() error {
	el := c.lru.Back()
	if el == nil {
		return nil
	}
	e := el.Value.(*cacheEntry)
	if e.dirty {
		if err := c.store.PutCount(e.id, e.count); err != nil {
			return fmt.Errorf("counters: writing back id %d: %w", e.id, err)
		}
	}
	c.lru.Remove(el)
	delete(c.entries, e.id)
	c.evicts++
	return nil
}

// Flush writes every dirty resident count to the store. Entries stay
// resident but clean.
func (c *CountCache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if !e.dirty {
			continue
		}
		if err := c.store.PutCount(e.id, e.count); err != nil {
			return fmt.Errorf("counters: flushing id %d: %w", e.id, err)
		}
		e.dirty = false
	}
	return nil
}

// Stats returns cache hit/miss/eviction counters.
func (c *CountCache) Stats() (hits, misses, evicts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicts
}

// Resident returns the number of counts currently held in memory.
func (c *CountCache) Resident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
