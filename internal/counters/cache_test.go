package counters

import (
	"errors"
	"sync"
	"testing"
)

func TestNewCountCacheValidation(t *testing.T) {
	if _, err := NewCountCache(0, NewMapStore()); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewCountCache(10, nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestCacheAddAndGet(t *testing.T) {
	c, _ := NewCountCache(4, NewMapStore())
	if got, err := c.Add(1, 2); err != nil || got != 2 {
		t.Fatalf("Add = %v, %v", got, err)
	}
	if got, err := c.Add(1, 3); err != nil || got != 5 {
		t.Fatalf("Add = %v, %v", got, err)
	}
	if got, err := c.Get(1); err != nil || got != 5 {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if got, err := c.Get(2); err != nil || got != 0 {
		t.Fatalf("Get unseen = %v, %v", got, err)
	}
}

func TestCacheEvictionWritesBack(t *testing.T) {
	store := NewMapStore()
	c, _ := NewCountCache(2, store)
	c.Add(1, 10)
	c.Add(2, 20)
	c.Add(3, 30) // evicts id 1 (LRU)
	if c.Resident() != 2 {
		t.Fatalf("Resident = %d", c.Resident())
	}
	if v, ok, _ := store.GetCount(1); !ok || v != 10 {
		t.Fatalf("store count for evicted id = %v, %v", v, ok)
	}
	// Faulting id 1 back finds the persisted count.
	if got, _ := c.Get(1); got != 10 {
		t.Fatalf("refaulted count = %v", got)
	}
	_, misses, evicts := func() (int64, int64, int64) { return c.Stats() }()
	if misses < 4 || evicts < 1 {
		t.Fatalf("stats: misses=%d evicts=%d", misses, evicts)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	store := NewMapStore()
	c, _ := NewCountCache(2, store)
	c.Add(1, 1)
	c.Add(2, 1)
	c.Get(1)    // touch 1, so 2 is now LRU
	c.Add(3, 1) // must evict 2
	if v, ok, _ := store.GetCount(2); !ok || v != 1 {
		t.Fatalf("id 2 not written back: %v, %v", v, ok)
	}
	if v, ok, _ := store.GetCount(1); ok && v != 0 {
		t.Fatalf("id 1 unexpectedly written back: %v", v)
	}
}

func TestCacheFlush(t *testing.T) {
	store := NewMapStore()
	c, _ := NewCountCache(8, store)
	c.Add(1, 5)
	c.Add(2, 6)
	if store.Len() != 0 {
		t.Fatal("counts persisted before flush")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("store len = %d", store.Len())
	}
	// Second flush with no new writes must not re-put.
	_, puts := store.Ops()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, puts2 := store.Ops(); puts2 != puts {
		t.Fatal("clean entries re-flushed")
	}
}

func TestCacheCleanEvictionSkipsWrite(t *testing.T) {
	store := NewMapStore()
	c, _ := NewCountCache(1, store)
	c.Add(1, 5)
	c.Flush()
	_, putsBefore := store.Ops()
	c.Get(2) // evicts clean id 1
	if _, puts := store.Ops(); puts != putsBefore {
		t.Fatal("clean eviction wrote back")
	}
}

type failingStore struct{ failGet, failPut bool }

func (f *failingStore) GetCount(uint64) (float64, bool, error) {
	if f.failGet {
		return 0, false, errors.New("boom get")
	}
	return 0, false, nil
}
func (f *failingStore) PutCount(uint64, float64) error {
	if f.failPut {
		return errors.New("boom put")
	}
	return nil
}

func TestCachePropagatesStoreErrors(t *testing.T) {
	c, _ := NewCountCache(1, &failingStore{failGet: true})
	if _, err := c.Get(1); err == nil {
		t.Fatal("get error swallowed")
	}
	c2, _ := NewCountCache(1, &failingStore{failPut: true})
	c2.Add(1, 1)
	if _, err := c2.Add(2, 1); err == nil {
		t.Fatal("eviction writeback error swallowed")
	}
	c3, _ := NewCountCache(4, &failingStore{failPut: true})
	c3.Add(1, 1)
	if err := c3.Flush(); err == nil {
		t.Fatal("flush error swallowed")
	}
}

func TestCacheConcurrent(t *testing.T) {
	store := NewMapStore()
	c, _ := NewCountCache(16, store)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if _, err := c.Add(uint64(i%64), 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Total across store + zero lost updates.
	var total float64
	for id := uint64(0); id < 64; id++ {
		v, err := c.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if total != 8*500 {
		t.Fatalf("total = %v, want %d (lost updates)", total, 8*500)
	}
}
