package counters

import (
	"math/rand"
	"testing"
)

// ObserveBatch must leave the tracker in exactly the state a sequence of
// per-tuple Observe calls produces: same counts bit for bit, same
// observation totals, same ranks.
func TestObserveBatchMatchesSequentialObserve(t *testing.T) {
	for _, decay := range []float64{1, 1.000001, 1.05} {
		seq, _ := NewDecayed(decay)
		bat, _ := NewDecayed(decay)
		rng := rand.New(rand.NewSource(7))
		ids := make([]uint64, 500)
		for i := range ids {
			ids[i] = uint64(rng.Intn(40))
		}
		for _, id := range ids {
			seq.Observe(id)
		}
		bat.ObserveBatch(ids)
		if seq.Observations() != bat.Observations() {
			t.Fatalf("decay %v: observations %d vs %d", decay, seq.Observations(), bat.Observations())
		}
		for id := uint64(0); id < 40; id++ {
			if seq.Count(id) != bat.Count(id) {
				t.Fatalf("decay %v: count(%d) %v vs %v", decay, id, seq.Count(id), bat.Count(id))
			}
			if seq.Rank(id) != bat.Rank(id) {
				t.Fatalf("decay %v: rank(%d) %d vs %d", decay, id, seq.Rank(id), bat.Rank(id))
			}
		}
	}
}

// RankBatch must agree with the per-id Count/Rank protocol the delay
// policies used before batching: -1 exactly for never-observed ids, the
// tree rank otherwise.
func TestRankBatchMatchesPerIDRank(t *testing.T) {
	d, _ := NewDecayed(1.0001)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		d.Observe(uint64(rng.Intn(100)))
	}
	ids := make([]uint64, 150)
	for i := range ids {
		ids[i] = uint64(i) // 100..149 never observed (probably); verified below
	}
	ranks := d.RankBatch(ids)
	if len(ranks) != len(ids) {
		t.Fatalf("len %d != %d", len(ranks), len(ids))
	}
	for i, id := range ids {
		if d.Count(id) <= 0 {
			if ranks[i] != -1 {
				t.Fatalf("unseen id %d: rank %d, want -1", id, ranks[i])
			}
			continue
		}
		if want := d.Rank(id); ranks[i] != want {
			t.Fatalf("id %d: rank %d, want %d", id, ranks[i], want)
		}
	}
}

// The epoch must advance on every state change and stay put when nothing
// changes — including the decay-1 tick, which is a no-op.
func TestEpochAdvancesOnMutation(t *testing.T) {
	d, _ := NewDecayed(1)
	e0 := d.Epoch()
	d.Observe(1)
	if d.Epoch() <= e0 {
		t.Fatal("epoch did not advance on Observe")
	}
	e1 := d.Epoch()
	d.Tick() // decay 1: a no-op, must not invalidate
	if d.Epoch() != e1 {
		t.Fatal("epoch advanced on a no-op tick")
	}
	if d.Count(1) != 1 || d.Rank(1) != 1 {
		t.Fatal("reads changed state")
	}
	if d.Epoch() != e1 {
		t.Fatal("epoch advanced on reads")
	}
	d.Remove(1)
	if d.Epoch() <= e1 {
		t.Fatal("epoch did not advance on Remove")
	}
	e2 := d.Epoch()
	if err := d.Import([]uint64{5}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() <= e2 {
		t.Fatal("epoch did not advance on Import")
	}

	dd, _ := NewDecayed(1.5)
	dd.Observe(1)
	ed := dd.Epoch()
	dd.Tick() // real decay changes all counts
	if dd.Epoch() <= ed {
		t.Fatal("epoch did not advance on an effective tick")
	}
}

// MultiDecay.ObserveBatch must match per-id Observe exactly, scores
// included.
func TestMultiDecayObserveBatchMatchesSequential(t *testing.T) {
	seq, _ := NewMultiDecay([]float64{1, 1.05}, 0.9, 5)
	bat, _ := NewMultiDecay([]float64{1, 1.05}, 0.9, 5)
	rng := rand.New(rand.NewSource(3))
	ids := make([]uint64, 200)
	for i := range ids {
		ids[i] = uint64(rng.Intn(20))
	}
	for _, id := range ids {
		seq.Observe(id)
	}
	bat.ObserveBatch(ids)
	ss, bs := seq.Scores(), bat.Scores()
	for i := range ss {
		if ss[i] != bs[i] {
			t.Fatalf("score[%d] %v vs %v", i, ss[i], bs[i])
		}
	}
	_, si := seq.Active()
	_, bi := bat.Active()
	if si != bi {
		t.Fatalf("active index %d vs %d", si, bi)
	}
}
