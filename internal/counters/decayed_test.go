package counters

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewDecayedValidation(t *testing.T) {
	for _, bad := range []float64{0.5, 0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewDecayed(bad); err == nil {
			t.Errorf("decay %v accepted", bad)
		}
	}
	d, err := NewDecayed(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.DecayRate() != 1 {
		t.Fatalf("DecayRate = %v", d.DecayRate())
	}
}

func TestNoDecayCountsExactly(t *testing.T) {
	d, _ := NewDecayed(1)
	for i := 0; i < 10; i++ {
		d.Observe(1)
	}
	for i := 0; i < 3; i++ {
		d.Observe(2)
	}
	if got := d.Count(1); got != 10 {
		t.Fatalf("Count(1) = %v", got)
	}
	if got := d.Count(2); got != 3 {
		t.Fatalf("Count(2) = %v", got)
	}
	if got := d.Count(99); got != 0 {
		t.Fatalf("Count(unseen) = %v", got)
	}
	if got := d.Observations(); got != 13 {
		t.Fatalf("Observations = %v", got)
	}
	if got := d.Len(); got != 2 {
		t.Fatalf("Len = %v", got)
	}
}

func TestPopularityNormalized(t *testing.T) {
	d, _ := NewDecayed(1)
	if d.Popularity(1) != 0 || d.MaxPopularity() != 0 {
		t.Fatal("popularity before observations nonzero")
	}
	for i := 0; i < 8; i++ {
		d.Observe(1)
	}
	for i := 0; i < 2; i++ {
		d.Observe(2)
	}
	if got := d.Popularity(1); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Popularity(1) = %v", got)
	}
	if got := d.MaxPopularity(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("MaxPopularity = %v", got)
	}
	// Sum of popularities is 1.
	sum := d.Popularity(1) + d.Popularity(2)
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("popularities sum to %v", sum)
	}
}

func TestRankOrdering(t *testing.T) {
	d, _ := NewDecayed(1)
	for i := 0; i < 5; i++ {
		d.Observe(100)
	}
	for i := 0; i < 3; i++ {
		d.Observe(200)
	}
	d.Observe(300)
	if d.Rank(100) != 1 || d.Rank(200) != 2 || d.Rank(300) != 3 {
		t.Fatalf("ranks = %d, %d, %d", d.Rank(100), d.Rank(200), d.Rank(300))
	}
	// Unseen id ranks after everything — the start-up transient rule.
	if got := d.Rank(999); got != 4 {
		t.Fatalf("unseen rank = %d, want 4", got)
	}
}

func TestDecayForgetsOldAccesses(t *testing.T) {
	// Item 1 is hammered early, item 2 recently; with aggressive decay the
	// recent item must outrank the old one despite fewer total accesses.
	d, _ := NewDecayed(1.5)
	for i := 0; i < 50; i++ {
		d.Observe(1)
	}
	for i := 0; i < 10; i++ {
		d.Observe(2)
	}
	if d.Rank(2) != 1 {
		t.Fatalf("recent item rank = %d, want 1 (old=%v new=%v)",
			d.Rank(2), d.Count(1), d.Count(2))
	}
	// Without decay the totals would have kept item 1 on top.
	nd, _ := NewDecayed(1)
	for i := 0; i < 50; i++ {
		nd.Observe(1)
	}
	for i := 0; i < 10; i++ {
		nd.Observe(2)
	}
	if nd.Rank(1) != 1 {
		t.Fatal("no-decay control: old item should stay rank 1")
	}
}

func TestObserveNoDecayPlusTickEquivalence(t *testing.T) {
	// Observe == ObserveNoDecay followed by Tick.
	a, _ := NewDecayed(1.01)
	b, _ := NewDecayed(1.01)
	ids := []uint64{1, 2, 1, 3, 1, 2}
	for _, id := range ids {
		a.Observe(id)
		b.ObserveNoDecay(id)
		b.Tick()
	}
	for _, id := range []uint64{1, 2, 3} {
		if math.Abs(a.Count(id)-b.Count(id)) > 1e-9 {
			t.Fatalf("id %d: %v vs %v", id, a.Count(id), b.Count(id))
		}
	}
}

func TestTickN(t *testing.T) {
	a, _ := NewDecayed(2)
	b, _ := NewDecayed(2)
	a.ObserveNoDecay(1)
	b.ObserveNoDecay(1)
	a.TickN(5)
	for i := 0; i < 5; i++ {
		b.Tick()
	}
	if math.Abs(a.Count(1)-b.Count(1)) > 1e-12 {
		t.Fatalf("TickN mismatch: %v vs %v", a.Count(1), b.Count(1))
	}
	// Count decays by 2^5.
	if want := 1.0 / 32; math.Abs(a.Count(1)-want) > 1e-12 {
		t.Fatalf("Count = %v, want %v", a.Count(1), want)
	}
}

func TestRenormalizationPreservesSemantics(t *testing.T) {
	// Huge decay rate forces renormalization quickly.
	d, _ := NewDecayed(1e20)
	for i := 0; i < 40; i++ {
		d.Observe(uint64(i % 4))
	}
	if d.Renormalizations() == 0 {
		t.Fatal("expected at least one renormalization")
	}
	// Popularities still sum to 1 and ranks are still well defined.
	var sum float64
	for i := uint64(0); i < 4; i++ {
		sum += d.Popularity(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("popularities sum to %v after renorm", sum)
	}
	seen := map[int]bool{}
	for i := uint64(0); i < 4; i++ {
		r := d.Rank(i)
		if r < 1 || r > 4 || seen[r] {
			t.Fatalf("bad rank %d for id %d", r, i)
		}
		seen[r] = true
	}
}

func TestRenormalizationKeepsRelativeCounts(t *testing.T) {
	d, _ := NewDecayed(1e30)
	d.ObserveNoDecay(1)
	d.ObserveNoDecay(1)
	d.ObserveNoDecay(2)
	for i := 0; i < 20; i++ {
		d.Tick()
	}
	// Relative popularity must be exactly 2:1 regardless of renorms.
	p1, p2 := d.Popularity(1), d.Popularity(2)
	if math.Abs(p1/p2-2) > 1e-9 {
		t.Fatalf("popularity ratio = %v, want 2", p1/p2)
	}
}

func TestAscendAndSnapshot(t *testing.T) {
	d, _ := NewDecayed(1)
	for i := 0; i < 3; i++ {
		d.Observe(7)
	}
	d.Observe(8)
	var order []uint64
	d.Ascend(func(rank int, id uint64, count float64) bool {
		order = append(order, id)
		return true
	})
	if len(order) != 2 || order[0] != 7 || order[1] != 8 {
		t.Fatalf("Ascend order = %v", order)
	}
	ids, pops := d.Snapshot()
	if len(ids) != 2 || ids[0] != 7 {
		t.Fatalf("Snapshot ids = %v", ids)
	}
	if math.Abs(pops[0]-0.75) > 1e-12 || math.Abs(pops[1]-0.25) > 1e-12 {
		t.Fatalf("Snapshot pops = %v", pops)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	d, _ := NewDecayed(1)
	ids, pops := d.Snapshot()
	if len(ids) != 0 || len(pops) != 0 {
		t.Fatal("empty snapshot nonempty")
	}
}

func TestConcurrentObserve(t *testing.T) {
	d, _ := NewDecayed(1)
	var wg sync.WaitGroup
	const workers = 8
	const per = 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d.Observe(uint64(w % 4))
			}
		}(w)
	}
	wg.Wait()
	if got := d.Observations(); got != workers*per {
		t.Fatalf("Observations = %d", got)
	}
	var total float64
	for i := uint64(0); i < 4; i++ {
		total += d.Count(i)
	}
	if math.Abs(total-workers*per) > 1e-6 {
		t.Fatalf("total counts = %v", total)
	}
}

func TestPopularitySumProperty(t *testing.T) {
	f := func(accesses []uint8) bool {
		d, _ := NewDecayed(1.001)
		seen := map[uint64]bool{}
		for _, a := range accesses {
			d.Observe(uint64(a))
			seen[uint64(a)] = true
		}
		if len(seen) == 0 {
			return true
		}
		var sum float64
		for id := range seen {
			sum += d.Popularity(id)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRanksArePermutationProperty(t *testing.T) {
	f := func(accesses []uint8) bool {
		d, _ := NewDecayed(1.1)
		seen := map[uint64]bool{}
		for _, a := range accesses {
			d.Observe(uint64(a))
			seen[uint64(a)] = true
		}
		ranks := map[int]bool{}
		for id := range seen {
			r := d.Rank(id)
			if r < 1 || r > len(seen) || ranks[r] {
				return false
			}
			ranks[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
