package counters

import (
	"errors"
	"math"
)

// MultiDecay simultaneously tracks access counts under several decay rates
// and selects the rate whose popularity estimates best predict the
// observed request stream. The paper (§2.3) suggests exactly this when the
// dynamics of the popularity distribution are unknown: "one can
// simultaneously track counts with more than one decay term, switching to
// the appropriate set as the request pattern warrants", citing the agile
// estimators used in wireless networking and energy management.
//
// Selection uses an exponentially weighted average of per-request
// predictive log-likelihood: just before an access to id is recorded, each
// tracker's smoothed probability estimate for id is scored; higher average
// log-likelihood means that tracker's notion of "current popularity"
// matches reality better. MultiDecay is safe for concurrent use through
// the underlying trackers but Observe itself must not race with Active;
// callers serialize externally (the Shield does).
type MultiDecay struct {
	trackers []*Decayed
	scores   []float64
	// scoreDecay smooths the log-likelihood scores (a second-order decay,
	// which also lets the selector track non-stationary second-order
	// dynamics, as the paper notes).
	scoreDecay float64
	warmup     int64
	seen       int64
}

// NewMultiDecay builds trackers for each rate in rates. scoreDecay in
// (0, 1] smooths the selection signal (values near 1 react slowly);
// warmup is the number of observations before Active may switch away from
// the first tracker.
func NewMultiDecay(rates []float64, scoreDecay float64, warmup int) (*MultiDecay, error) {
	if len(rates) == 0 {
		return nil, errors.New("counters: no decay rates")
	}
	if scoreDecay <= 0 || scoreDecay > 1 {
		return nil, errors.New("counters: scoreDecay out of (0,1]")
	}
	m := &MultiDecay{
		scoreDecay: scoreDecay,
		warmup:     int64(warmup),
		scores:     make([]float64, len(rates)),
	}
	for _, r := range rates {
		d, err := NewDecayed(r)
		if err != nil {
			return nil, err
		}
		m.trackers = append(m.trackers, d)
	}
	return m, nil
}

// Observe scores every tracker's prediction for id, then records the
// access (with one decay step) in all of them.
func (m *MultiDecay) Observe(id uint64) { m.observe(id, false) }

func (m *MultiDecay) observe(id uint64, deferTree bool) {
	for i, tr := range m.trackers {
		p := m.smoothedProb(tr, id)
		m.scores[i] = m.scoreDecay*m.scores[i] + (1-m.scoreDecay)*math.Log(p)
	}
	for _, tr := range m.trackers {
		tr.mu.Lock()
		tr.observeLocked(id, deferTree)
		tr.tickLocked()
		tr.mu.Unlock()
	}
	m.seen++
}

// ObserveBatch records the ids in order with exactly the semantics of
// len(ids) Observe calls (each id is scored against the pre-observation
// state, then recorded in every tracker). It exists so the shield's
// serialization section around MultiDecay is entered once per query
// batch instead of once per tuple; like Observe, it must not race with
// Active — the caller holds the same external lock for the whole batch.
// The per-tracker rank-tree repairs are deferred for multi-tuple batches:
// the selection scores read only decayed weights, never tree structure,
// so deferral cannot change which tracker wins.
func (m *MultiDecay) ObserveBatch(ids []uint64) {
	deferTree := len(ids) > 1
	for _, id := range ids {
		m.observe(id, deferTree)
	}
}

// smoothedProb is a Laplace-smoothed popularity estimate so unseen ids do
// not produce log(0).
func (m *MultiDecay) smoothedProb(tr *Decayed, id uint64) float64 {
	n := float64(tr.Len()) + 1
	// Popularity is weight/total; smooth with one pseudo-count spread over
	// the observed universe.
	p := tr.Popularity(id)
	return (p*float64(tr.Observations()) + 1) / (float64(tr.Observations()) + n)
}

// Active returns the currently best tracker and its index. During warmup
// the first tracker wins unconditionally.
func (m *MultiDecay) Active() (*Decayed, int) {
	if m.seen < m.warmup {
		return m.trackers[0], 0
	}
	best := 0
	for i := 1; i < len(m.scores); i++ {
		if m.scores[i] > m.scores[best] {
			best = i
		}
	}
	return m.trackers[best], best
}

// Trackers returns the underlying trackers, one per configured rate.
func (m *MultiDecay) Trackers() []*Decayed { return m.trackers }

// Scores returns a copy of the current per-tracker scores.
func (m *MultiDecay) Scores() []float64 {
	out := make([]float64, len(m.scores))
	copy(out, m.scores)
	return out
}
