package freshness

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2004, 8, 1, 0, 0, 0, 0, time.UTC)

func TestBumpAndVersion(t *testing.T) {
	s := NewStore()
	if s.Version(1) != 0 {
		t.Fatal("fresh store has nonzero version")
	}
	if got := s.Bump(1, t0); got != 1 {
		t.Fatalf("first bump = %d", got)
	}
	if got := s.Bump(1, t0.Add(time.Second)); got != 2 {
		t.Fatalf("second bump = %d", got)
	}
	if s.Version(1) != 2 {
		t.Fatalf("Version = %d", s.Version(1))
	}
	if s.Updates() != 2 {
		t.Fatalf("Updates = %d", s.Updates())
	}
}

func TestLastUpdated(t *testing.T) {
	s := NewStore()
	if _, ok := s.LastUpdated(5); ok {
		t.Fatal("never-updated id has LastUpdated")
	}
	at := t0.Add(3 * time.Hour)
	s.Bump(5, at)
	got, ok := s.LastUpdated(5)
	if !ok || !got.Equal(at) {
		t.Fatalf("LastUpdated = %v, %v", got, ok)
	}
}

func TestObserveAndStaleness(t *testing.T) {
	s := NewStore()
	s.Bump(1, t0)
	s.Bump(2, t0)

	// Adversary extracts ids 1, 2, 3 (3 never updated: version 0).
	snap := []Extracted{s.Observe(1), s.Observe(2), s.Observe(3)}
	if got := s.StaleFraction(snap); got != 0 {
		t.Fatalf("staleness immediately after extraction = %v", got)
	}

	// Tuple 1 changes after extraction ⇒ 1/3 stale.
	s.Bump(1, t0.Add(time.Minute))
	if got := s.StaleCount(snap); got != 1 {
		t.Fatalf("StaleCount = %d", got)
	}
	if got := s.StaleFraction(snap); got != 1.0/3 {
		t.Fatalf("StaleFraction = %v", got)
	}

	// Tuple 3 gets its first ever update ⇒ 2/3 stale.
	s.Bump(3, t0.Add(2*time.Minute))
	if got := s.StaleFraction(snap); got != 2.0/3 {
		t.Fatalf("StaleFraction = %v", got)
	}
}

func TestStaleFractionEmptySnapshot(t *testing.T) {
	s := NewStore()
	if got := s.StaleFraction(nil); got != 0 {
		t.Fatalf("empty snapshot staleness = %v", got)
	}
}

func TestMultipleUpdatesStillOneStaleEntry(t *testing.T) {
	s := NewStore()
	snap := []Extracted{s.Observe(9)}
	s.Bump(9, t0)
	s.Bump(9, t0)
	s.Bump(9, t0)
	if got := s.StaleCount(snap); got != 1 {
		t.Fatalf("StaleCount = %d, want 1", got)
	}
}

func TestConcurrentBumps(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Bump(uint64(i%16), t0)
			}
		}()
	}
	wg.Wait()
	if s.Updates() != 8000 {
		t.Fatalf("Updates = %d", s.Updates())
	}
	var total uint64
	for id := uint64(0); id < 16; id++ {
		total += s.Version(id)
	}
	if total != 8000 {
		t.Fatalf("version total = %d (lost updates)", total)
	}
}
