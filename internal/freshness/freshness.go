// Package freshness tracks tuple versions so the §3 staleness guarantee
// can be measured: after an adversary finishes extracting the dataset,
// what fraction of the copy is already obsolete?
//
// "An item in the dataset is considered stale if its value changes at
// least once during the execution of the adversary's query, i.e., its
// value is no longer the same as that obtained via the query."
package freshness

import (
	"sync"
	"time"
)

// Store records a monotonically increasing version per tuple id, bumped on
// every update. It is safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	versions map[uint64]uint64
	updates  int64
	lastAt   map[uint64]time.Time
}

// NewStore returns an empty version store.
func NewStore() *Store {
	return &Store{
		versions: make(map[uint64]uint64),
		lastAt:   make(map[uint64]time.Time),
	}
}

// Bump records an update to id at the given instant and returns the new
// version. Version 0 means "never updated"; the first Bump yields 1.
func (s *Store) Bump(id uint64, at time.Time) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.versions[id]++
	s.updates++
	s.lastAt[id] = at
	return s.versions[id]
}

// Version returns id's current version (0 if never updated).
func (s *Store) Version(id uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.versions[id]
}

// LastUpdated returns when id was last updated; ok=false if never.
func (s *Store) LastUpdated(id uint64) (time.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	at, ok := s.lastAt[id]
	return at, ok
}

// Updates returns the total number of Bump calls.
func (s *Store) Updates() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.updates
}

// Extracted is one tuple in an adversary's stolen snapshot: the id and the
// version the adversary saw at extraction time.
type Extracted struct {
	ID      uint64
	Version uint64
}

// Observe returns the Extracted record for id right now.
func (s *Store) Observe(id uint64) Extracted {
	return Extracted{ID: id, Version: s.Version(id)}
}

// StaleCount returns how many snapshot entries are stale: their current
// version differs from the extracted one.
func (s *Store) StaleCount(snapshot []Extracted) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, e := range snapshot {
		if s.versions[e.ID] != e.Version {
			n++
		}
	}
	return n
}

// StaleFraction returns StaleCount normalized by the snapshot size, or 0
// for an empty snapshot.
func (s *Store) StaleFraction(snapshot []Extracted) float64 {
	if len(snapshot) == 0 {
		return 0
	}
	return float64(s.StaleCount(snapshot)) / float64(len(snapshot))
}
