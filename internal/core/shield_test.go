package core

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/vclock"
)

func testDB(t *testing.T, n int) *engine.Database {
	t.Helper()
	db, err := engine.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE items (id INT PRIMARY KEY, payload TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 500 {
		stmt := "INSERT INTO items VALUES "
		for j := i; j < i+500 && j < n; j++ {
			if j > i {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'payload-%d')", j, j)
		}
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func simClock() *vclock.Simulated {
	return vclock.NewSimulated(time.Date(2004, 8, 1, 0, 0, 0, 0, time.UTC))
}

func TestNewValidation(t *testing.T) {
	db := testDB(t, 10)
	if _, err := New(nil, Config{N: 10}); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := New(db, Config{}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := New(db, Config{N: 10, DecayRate: 0.5}); err == nil {
		t.Fatal("bad decay accepted")
	}
	if _, err := New(db, Config{N: 10, Kind: PolicyKind(9)}); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestColdQueriesPayCapThenLearn(t *testing.T) {
	db := testDB(t, 100)
	clk := simClock()
	cap := 10 * time.Second
	s, err := New(db, Config{N: 100, Alpha: 1, Beta: 2, Cap: cap, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	// First query: nothing learned ⇒ the cap.
	_, stats, err := s.Query("alice", `SELECT * FROM items WHERE id = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delay != cap || stats.Tuples != 1 {
		t.Fatalf("cold stats = %+v", stats)
	}
	if clk.Slept() != cap {
		t.Fatalf("slept %v", clk.Slept())
	}
	// Hammer tuple 5; its delay must collapse.
	for i := 0; i < 200; i++ {
		s.Query("alice", `SELECT * FROM items WHERE id = 5`)
	}
	_, stats, _ = s.Query("alice", `SELECT * FROM items WHERE id = 5`)
	if stats.Delay >= cap/100 {
		t.Fatalf("hot tuple still slow: %v", stats.Delay)
	}
	// A cold tuple still pays the cap.
	_, stats, _ = s.Query("alice", `SELECT * FROM items WHERE id = 99`)
	if stats.Delay != cap {
		t.Fatalf("cold tuple delay = %v", stats.Delay)
	}
}

func TestMultiTupleQueryChargesSum(t *testing.T) {
	db := testDB(t, 50)
	clk := simClock()
	cap := time.Second
	s, _ := New(db, Config{N: 50, Alpha: 1, Beta: 1, Cap: cap, Clock: clk})
	_, stats, err := s.Query("bob", `SELECT * FROM items WHERE id >= 0 AND id <= 9`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tuples != 10 {
		t.Fatalf("tuples = %d", stats.Tuples)
	}
	if stats.Delay != 10*cap {
		t.Fatalf("aggregate delay = %v, want 10×cap", stats.Delay)
	}
}

func TestEmptySelectFreeOfDelay(t *testing.T) {
	db := testDB(t, 10)
	clk := simClock()
	s, _ := New(db, Config{N: 10, Alpha: 1, Beta: 1, Cap: time.Second, Clock: clk})
	_, stats, err := s.Query("x", `SELECT * FROM items WHERE id = 12345`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delay != 0 || stats.Tuples != 0 {
		t.Fatalf("empty select stats = %+v", stats)
	}
}

func TestWritesBumpVersionsNotDelay(t *testing.T) {
	db := testDB(t, 10)
	clk := simClock()
	s, _ := New(db, Config{N: 10, Alpha: 1, Beta: 1, Cap: time.Hour, Clock: clk})
	snap := s.Snapshot([]uint64{3, 4})
	_, stats, err := s.Query("writer", `UPDATE items SET payload = 'new' WHERE id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delay != 0 {
		t.Fatalf("write delayed: %v", stats.Delay)
	}
	if s.Versions().Version(3) != 1 || s.Versions().Version(4) != 0 {
		t.Fatal("versions not bumped correctly")
	}
	if got := s.StaleFraction(snap); got != 0.5 {
		t.Fatalf("stale fraction = %v", got)
	}
}

func TestRateLimiting(t *testing.T) {
	db := testDB(t, 10)
	clk := simClock()
	s, _ := New(db, Config{
		N: 10, Alpha: 1, Beta: 1, Cap: time.Millisecond, Clock: clk,
		QueryRate: 1, QueryBurst: 2,
	})
	q := `SELECT * FROM items WHERE id = 1`
	if _, _, err := s.Query("eve", q); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query("eve", q); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Query("eve", q)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third query err = %v", err)
	}
	// Different principal unaffected.
	if _, _, err := s.Query("mallory", q); err != nil {
		t.Fatal(err)
	}
	// Tokens refill with time. (Delays themselves advance the simulated
	// clock, so this follows the paper's observation that imposed delay
	// naturally rate-limits too.)
	clk.Advance(5 * time.Second)
	if _, _, err := s.Query("eve", q); err != nil {
		t.Fatal(err)
	}
}

func TestSubnetAggregationDefeatsSybils(t *testing.T) {
	db := testDB(t, 10)
	clk := simClock()
	s, _ := New(db, Config{
		N: 10, Alpha: 1, Beta: 1, Cap: time.Millisecond, Clock: clk,
		QueryRate: 0.001, QueryBurst: 3, SubnetAggregation: true,
	})
	q := `SELECT * FROM items WHERE id = 1`
	// Three "identities" on one /24 share a budget of 3.
	for i, addr := range []string{"10.1.2.3", "10.1.2.44", "10.1.2.200"} {
		if _, _, err := s.Query(addr, q); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if _, _, err := s.Query("10.1.2.99", q); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("4th same-subnet query err = %v", err)
	}
	// A different subnet is a different principal.
	if _, _, err := s.Query("10.1.3.1", q); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationThrottle(t *testing.T) {
	db := testDB(t, 10)
	clk := simClock()
	s, _ := New(db, Config{
		N: 10, Alpha: 1, Beta: 1, Cap: time.Second, Clock: clk,
		RegistrationInterval: time.Hour,
	})
	if err := s.Register("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("b"); !errors.Is(err, ErrRegistrationThrottled) {
		t.Fatalf("second registration err = %v", err)
	}
	clk.Advance(time.Hour)
	if err := s.Register("b"); err != nil {
		t.Fatal(err)
	}
	// No throttle configured ⇒ registration always succeeds.
	s2, _ := New(db, Config{N: 10, Alpha: 1, Beta: 1, Cap: time.Second, Clock: clk})
	for i := 0; i < 10; i++ {
		if err := s2.Register(fmt.Sprintf("id%d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUpdateRateShield(t *testing.T) {
	db := testDB(t, 100)
	clk := simClock()
	cap := 10 * time.Second
	s, err := New(db, Config{
		Kind: ByUpdateRate, N: 100, Alpha: 1, C: 1, Cap: cap, Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.UpdatePolicy() == nil {
		t.Fatal("no update policy")
	}
	// Update tuple 1 frequently; pass time so rates are meaningful.
	for i := 0; i < 50; i++ {
		if _, _, err := s.Query("w", `UPDATE items SET payload = 'x' WHERE id = 1`); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	if _, _, err := s.Query("w", `UPDATE items SET payload = 'x' WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	// Frequently updated tuple must be cheaper than rarely updated one,
	// which must be cheaper than or equal to a never-updated one.
	_, s1, _ := s.Query("r", `SELECT * FROM items WHERE id = 1`)
	_, s2, _ := s.Query("r", `SELECT * FROM items WHERE id = 2`)
	_, s3, _ := s.Query("r", `SELECT * FROM items WHERE id = 50`)
	if s1.Delay >= s2.Delay {
		t.Fatalf("hot-update delay %v not below cold %v", s1.Delay, s2.Delay)
	}
	if s3.Delay < s2.Delay {
		t.Fatalf("never-updated delay %v below rarely-updated %v", s3.Delay, s2.Delay)
	}
}

func TestQuoteExtractionDoesNotPerturb(t *testing.T) {
	db := testDB(t, 50)
	clk := simClock()
	s, _ := New(db, Config{N: 50, Alpha: 1, Beta: 1, Cap: time.Second, Clock: clk})
	ids := make([]uint64, 50)
	for i := range ids {
		ids[i] = uint64(i)
	}
	before := s.Tracker().Observations()
	q1 := s.QuoteExtraction(ids)
	q2 := s.QuoteExtraction(ids)
	if q1 != q2 {
		t.Fatalf("quote unstable: %v vs %v", q1, q2)
	}
	if s.Tracker().Observations() != before {
		t.Fatal("quote recorded observations")
	}
	if clk.Slept() != 0 {
		t.Fatal("quote slept")
	}
	// All 50 tuples cold ⇒ quote = 50 × cap.
	if q1 != 50*time.Second {
		t.Fatalf("cold quote = %v", q1)
	}
}

func TestAdversaryVsUserEndToEnd(t *testing.T) {
	// The headline behaviour through the full stack: replay a skewed
	// workload, then compare median user delay against a full extraction.
	const n = 2000
	db := testDB(t, n)
	clk := simClock()
	cap := 10 * time.Second
	s, _ := New(db, Config{N: n, Alpha: 1.2, Beta: 2.5, Cap: cap, Clock: clk})

	// Zipf-ish replay: tuple k gets ~ (k+1)^-1.2 share. Use a crude
	// deterministic schedule: tuple k queried max(1, 3000/(k+1)^1.2).
	for k := 0; k < 200; k++ {
		reps := int(3000 / math.Pow(float64(k+1), 1.2))
		if reps < 1 {
			reps = 1
		}
		for r := 0; r < reps; r++ {
			s.Tracker().Observe(uint64(k))
		}
	}
	// Median-ish user query (tuple rank ~3).
	_, userStats, err := s.Query("user", `SELECT * FROM items WHERE id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	advDelay := s.QuoteExtraction(ids)
	if advDelay < 1000*userStats.Delay {
		t.Fatalf("adversary %v not ≫ user %v", advDelay, userStats.Delay)
	}
	// Adversary within the N·cap bound.
	if advDelay > time.Duration(n)*cap {
		t.Fatalf("adversary %v exceeds N·cap", advDelay)
	}
}

func TestShieldAccessors(t *testing.T) {
	db := testDB(t, 10)
	s, _ := New(db, Config{N: 10, Alpha: 1, Beta: 1, Cap: time.Second, Clock: simClock()})
	if s.DB() != db {
		t.Fatal("DB accessor")
	}
	if s.Tracker() == nil || s.Versions() == nil || s.Gate() == nil {
		t.Fatal("nil accessor")
	}
	if s.UpdatePolicy() != nil {
		t.Fatal("popularity shield has update policy")
	}
	if s.Window() != 0 {
		t.Fatalf("window = %v", s.Window())
	}
}

func TestQueryErrorsPropagate(t *testing.T) {
	db := testDB(t, 10)
	s, _ := New(db, Config{N: 10, Alpha: 1, Beta: 1, Cap: time.Second, Clock: simClock()})
	if _, _, err := s.Query("u", `SELECT * FROM missing`); err == nil {
		t.Fatal("engine error swallowed")
	}
	if _, _, err := s.Query("u", `NOT SQL`); err == nil {
		t.Fatal("parse error swallowed")
	}
}
