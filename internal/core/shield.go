// Package core assembles the paper's defense into a single front door:
// the Shield wraps the embedded relational engine with access counting
// (§2.3), popularity- or update-rate-keyed delay (§2, §3), per-principal
// and subnet-aggregated rate limiting, and a registration throttle
// (§2.4), plus tuple version tracking for the staleness guarantee (§3).
//
// Every query enters through Shield.Query: the statement runs against the
// engine, the returned tuples are priced by the delay policy, the shield
// sleeps for the total on its clock (a simulated clock in experiments),
// the access counts are updated, and only then does the result leave the
// building.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/counters"
	"repro/internal/delay"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/freshness"
	"repro/internal/metrics"
	"repro/internal/ratelimit"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// ErrRateLimited is returned when a principal exceeds its query rate.
var ErrRateLimited = errors.New("core: rate limited")

// ErrRegistrationThrottled is returned when a new identity cannot be
// registered yet.
var ErrRegistrationThrottled = errors.New("core: registration throttled")

// ErrDegraded is returned for write statements while the shield is in
// degraded mode: a storage-layer I/O failure has been observed, so
// mutations are refused rather than risk divergence between the heap
// and the log, while reads — priced entirely from the in-memory
// counters — keep flowing, delays and all. The front door maps it to
// HTTP 503.
var ErrDegraded = errors.New("core: shield degraded: persistence is failing, writes are refused")

// PolicyKind selects how delays are keyed.
type PolicyKind int

// Available policy kinds.
const (
	// ByPopularity keys delay to access popularity (§2); it requires
	// skewed access patterns.
	ByPopularity PolicyKind = iota + 1
	// ByUpdateRate keys delay to update rate (§3); it works even with
	// uniform access patterns, provided updates are skewed.
	ByUpdateRate
)

// Config parameterizes a Shield.
type Config struct {
	// Kind selects the delay policy. Default ByPopularity.
	Kind PolicyKind
	// N is the dataset size the delay formulas use. Required.
	N int
	// Alpha is the assumed or estimated skew parameter.
	Alpha float64
	// Beta is the popularity policy's penalty exponent (ByPopularity).
	Beta float64
	// C is the update-rate policy's delay constant (ByUpdateRate).
	C float64
	// Cap bounds any single tuple's delay (dmax). Strongly recommended;
	// without it cold tuples are delayed effectively forever.
	Cap time.Duration
	// DecayRate is the access-count decay δ ≥ 1 (1 = no decay).
	DecayRate float64
	// AdaptiveDecayRates, when non-empty, tracks counts under every
	// listed rate simultaneously and serves delays from whichever tracker
	// best predicts the live request stream — §2.3's answer to unknown
	// popularity dynamics ("one can simultaneously track counts with more
	// than one decay term, switching to the appropriate set as the
	// request pattern warrants"). Overrides DecayRate. ByPopularity only.
	AdaptiveDecayRates []float64
	// AdaptiveWarmup is the observation count before the adaptive
	// selector may switch trackers (default 1000).
	AdaptiveWarmup int
	// Clock defaults to the wall clock; experiments inject a simulated
	// clock so adversary delays accumulate instantly.
	Clock vclock.Clock

	// QueryRate/QueryBurst enable per-principal rate limiting when
	// QueryRate > 0.
	QueryRate  float64
	QueryBurst float64
	// MaxPrincipals bounds limiter memory (default 65536).
	MaxPrincipals int
	// SubnetAggregation treats all addresses in one /24 (IPv4) or /48
	// (IPv6) as a single principal, the paper's Sybil defense.
	SubnetAggregation bool
	// RegistrationInterval enables the one-identity-per-interval
	// registration throttle when positive.
	RegistrationInterval time.Duration

	// PriceCacheSize, when positive, enables the delay price cache: a
	// sharded fixed-capacity map from tuple id to (delay, epoch) that
	// serves repeat quotes for hot tuples without touching the rank tree.
	// In adaptive mode every candidate tracker's policy gets its own
	// cache of this size (epochs are per tracker).
	PriceCacheSize int
	// PriceCacheShards stripes the cache; rounded up to a power of two,
	// default delay.DefaultPriceCacheShards.
	PriceCacheShards int
	// PriceCacheEpochLag bounds how many tracker mutations a cached
	// price may be stale by. 0 (the default) means exact: any mutation
	// invalidates. Positive values trade rank freshness for throughput,
	// which is safe for hot tuples (their delays are pinned near zero by
	// low rank) — see DESIGN.md.
	PriceCacheEpochLag uint64

	// Detect, when non-nil, enables the extraction detector: every
	// SELECT's returned tuple ids feed per-principal coverage sketches,
	// and the escalation multiplier they produce scales the policy delay
	// at charge time (DESIGN.md §10). A zero CatalogSize inherits N.
	Detect *detect.Config
}

func (c *Config) fill() error {
	if c.Kind == 0 {
		c.Kind = ByPopularity
	}
	if c.N < 1 {
		return errors.New("core: config N < 1")
	}
	if c.DecayRate == 0 {
		c.DecayRate = 1
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
	if c.MaxPrincipals == 0 {
		c.MaxPrincipals = 65536
	}
	if c.Kind == ByUpdateRate && c.C == 0 {
		c.C = 1
	}
	if c.AdaptiveWarmup == 0 {
		c.AdaptiveWarmup = 1000
	}
	if len(c.AdaptiveDecayRates) > 0 && c.Kind != ByPopularity {
		return errors.New("core: adaptive decay applies to the popularity policy only")
	}
	return nil
}

// QueryStats describes what one query cost.
type QueryStats struct {
	// Delay is the total pause imposed before results were released.
	Delay time.Duration
	// Tuples is the number of tuples the query returned (and was charged
	// for).
	Tuples int
}

// Shield is the delay-defended front door to a database. It is safe for
// concurrent use.
type Shield struct {
	cfg       Config
	db        *engine.Database
	tracker   *counters.Decayed
	multi     *counters.MultiDecay // non-nil in adaptive mode
	multiMu   sync.Mutex           // serializes MultiDecay.Observe/Active
	adaptive  *adaptivePolicy
	updPolicy *delay.UpdateRate
	gate      *delay.Gate
	limiter   *ratelimit.IdentityLimiter
	registrar *ratelimit.RegistrationThrottle
	detector  *detect.Detector // nil unless Config.Detect set
	versions  *freshness.Store
	delays    *stats.Reservoir
	started   time.Time
	met       shieldMetrics
	// priceCaches holds every quote cache in use (one per candidate
	// policy), for instrumentation and size reporting.
	priceCaches []*delay.PriceCache
	// observeLocks counts serialization-section entries on the observe
	// path — one per charged query batch, not one per tuple. The
	// regression test pins this down so per-tuple locking cannot creep
	// back into the hot path.
	observeLocks atomic.Int64
	// degraded latches when a storage I/O failure is observed; cause
	// holds the first triggering error's message for /healthz. Cleared
	// only by an explicit operator ClearDegraded.
	degraded      atomic.Bool
	degradedCause atomic.Pointer[string]
}

// shieldMetrics is the shield's operational instrumentation, exported as
// JSON through Metrics().Handler() (the server mounts it at /metrics).
type shieldMetrics struct {
	registry *metrics.Registry
	// served counts SELECTs whose full delay was paid; cancelled counts
	// SELECTs whose sleep was cut short by context cancellation or
	// deadline (their tokens and observations are charged regardless).
	served    *metrics.Counter
	cancelled *metrics.Counter
	writes    *metrics.Counter
	tuples    *metrics.Counter
}

// adaptivePolicy serves delays from whichever tracker the multi-decay
// selector currently trusts.
type adaptivePolicy struct {
	shield *Shield
	pols   []*delay.Popularity // one per tracker, same order as multi.Trackers()
}

// Delay implements delay.Policy.
func (a *adaptivePolicy) Delay(id uint64) time.Duration {
	return a.ResolveBatch().Delay(id)
}

// ResolveBatch implements delay.BatchResolver: the active tracker index
// is resolved under multiMu once per Quote/Charge batch, not once per
// tuple — a 10k-tuple SELECT costs one lock round-trip instead of 10k.
func (a *adaptivePolicy) ResolveBatch() delay.Policy {
	a.shield.multiMu.Lock()
	_, idx := a.shield.multi.Active()
	a.shield.multiMu.Unlock()
	return a.pols[idx]
}

// DelayBatch implements delay.BatchPolicy for callers that hold the
// adaptive policy directly (the gate resolves first and never takes this
// path): resolve once, then price the batch through the active policy.
func (a *adaptivePolicy) DelayBatch(ids []uint64) time.Duration {
	return a.ResolveBatch().(delay.BatchPolicy).DelayBatch(ids)
}

// New wraps db in a Shield.
func New(db *engine.Database, cfg Config) (*Shield, error) {
	if db == nil {
		return nil, errors.New("core: nil database")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	tracker, err := counters.NewDecayed(cfg.DecayRate)
	if err != nil {
		return nil, err
	}
	s := &Shield{
		cfg:      cfg,
		db:       db,
		tracker:  tracker,
		versions: freshness.NewStore(),
		delays:   stats.NewReservoir(4096, 1),
		started:  cfg.Clock.Now(),
	}

	// newPriceCache hands each candidate policy its own quote cache when
	// the config enables one (epochs are per tracker, so caches are too).
	newPriceCache := func() (*delay.PriceCache, error) {
		if cfg.PriceCacheSize <= 0 {
			return nil, nil
		}
		pc, err := delay.NewPriceCache(cfg.PriceCacheSize, cfg.PriceCacheShards, cfg.PriceCacheEpochLag)
		if err != nil {
			return nil, err
		}
		s.priceCaches = append(s.priceCaches, pc)
		return pc, nil
	}

	var policy delay.Policy
	switch cfg.Kind {
	case ByPopularity:
		if len(cfg.AdaptiveDecayRates) > 0 {
			multi, err := counters.NewMultiDecay(cfg.AdaptiveDecayRates, 0.995, cfg.AdaptiveWarmup)
			if err != nil {
				return nil, err
			}
			s.multi = multi
			ap := &adaptivePolicy{shield: s}
			for _, tr := range multi.Trackers() {
				p, err := delay.NewPopularity(delay.PopularityConfig{
					N: cfg.N, Alpha: cfg.Alpha, Beta: cfg.Beta, Cap: cfg.Cap,
				}, tr)
				if err != nil {
					return nil, err
				}
				pc, err := newPriceCache()
				if err != nil {
					return nil, err
				}
				p.SetPriceCache(pc)
				ap.pols = append(ap.pols, p)
			}
			s.adaptive = ap
			policy = ap
			break
		}
		p, err := delay.NewPopularity(delay.PopularityConfig{
			N: cfg.N, Alpha: cfg.Alpha, Beta: cfg.Beta, Cap: cfg.Cap,
		}, tracker)
		if err != nil {
			return nil, err
		}
		pc, err := newPriceCache()
		if err != nil {
			return nil, err
		}
		p.SetPriceCache(pc)
		policy = p
	case ByUpdateRate:
		upd, err := counters.NewDecayed(cfg.DecayRate)
		if err != nil {
			return nil, err
		}
		u, err := delay.NewUpdateRate(delay.UpdateRateConfig{
			N: cfg.N, Alpha: cfg.Alpha, C: cfg.C, Cap: cfg.Cap,
		}, upd)
		if err != nil {
			return nil, err
		}
		pc, err := newPriceCache()
		if err != nil {
			return nil, err
		}
		u.SetPriceCache(pc)
		s.updPolicy = u
		policy = u
	default:
		return nil, fmt.Errorf("core: unknown policy kind %d", cfg.Kind)
	}

	// The gate keeps a per-tuple observer for completeness, but charges
	// go through the batch observer: one serialization-section entry per
	// query (tracked in observeLocks) instead of one per returned tuple.
	observe := func(id uint64) { tracker.Observe(id) }
	observeBatch := func(ids []uint64) {
		s.observeLocks.Add(1)
		tracker.ObserveBatch(ids)
	}
	if s.multi != nil {
		observe = func(id uint64) {
			s.multiMu.Lock()
			s.multi.Observe(id)
			s.multiMu.Unlock()
		}
		observeBatch = func(ids []uint64) {
			s.observeLocks.Add(1)
			s.multiMu.Lock()
			s.multi.ObserveBatch(ids)
			s.multiMu.Unlock()
		}
	}
	gate, err := delay.NewGate(policy, cfg.Clock, observe)
	if err != nil {
		return nil, err
	}
	gate.SetBatchObserver(observeBatch)
	s.gate = gate

	reg := metrics.NewRegistry()
	s.met = shieldMetrics{
		registry:  reg,
		served:    reg.Counter("shield_queries_served_total"),
		cancelled: reg.Counter("shield_queries_cancelled_total"),
		writes:    reg.Counter("shield_write_statements_total"),
		tuples:    reg.Counter("shield_tuples_charged_total"),
	}
	// Rejection counters exist (at zero) even when the corresponding
	// defense is off, so dashboards see a stable schema.
	reg.Counter("shield_rate_limit_rejections_total")
	reg.Counter("shield_registration_rejections_total")
	// Degraded-mode instruments: the gauge is the alerting signal, the
	// counters record how often persistence failed over and how many
	// writes the failure turned away.
	reg.Counter("shield_degraded_entries_total")
	reg.Counter("shield_degraded_write_rejections_total")
	reg.GaugeFunc("shield_degraded", func() float64 {
		if s.degraded.Load() {
			return 1
		}
		return 0
	})
	gate.Instrument(
		reg.Gauge("shield_inflight_delays"),
		reg.Histogram("shield_query_delay_seconds", metrics.DefaultDelayBuckets()),
		// Cancelled charges get their own histogram so total imposed
		// delay is fully accounted even when adversaries hang up early,
		// while staying distinguishable from served-query latency.
		reg.Histogram("shield_query_delay_cancelled_seconds", metrics.DefaultDelayBuckets()),
	)
	// Price cache instruments exist (at zero) even with the cache off, so
	// dashboards see a stable schema. All caches share one set: hit rates
	// are a property of the front door, not of one adaptive candidate.
	cacheHits := reg.Counter("shield_price_cache_hits_total")
	cacheMisses := reg.Counter("shield_price_cache_misses_total")
	cacheStale := reg.Counter("shield_price_cache_stale_total")
	cacheContention := reg.Gauge("shield_price_cache_shard_contention")
	for _, pc := range s.priceCaches {
		pc.Instrument(cacheHits, cacheMisses, cacheStale, cacheContention)
	}
	reg.GaugeFunc("shield_price_cache_entries", func() float64 {
		n := 0
		for _, pc := range s.priceCaches {
			n += pc.Len()
		}
		return float64(n)
	})
	reg.GaugeFunc("shield_tracker_size", func() float64 { return float64(s.Tracker().Len()) })
	if s.updPolicy != nil {
		reg.GaugeFunc("shield_update_tracker_size", func() float64 {
			return float64(s.updPolicy.Tracker().Len())
		})
	}

	// Detection instruments exist (at zero) even with the detector off,
	// matching the rejection-counter convention above.
	escalations := reg.Counter("shield_detect_escalations_total")
	reg.GaugeFunc("shield_detect_tracked_principals", func() float64 {
		if s.detector == nil {
			return 0
		}
		return float64(s.detector.TrackedPrincipals())
	})
	reg.GaugeFunc("shield_detect_sketch_bytes", func() float64 {
		if s.detector == nil {
			return 0
		}
		return float64(s.detector.SketchBytes())
	})
	reg.GaugeFunc("shield_detect_coalitions", func() float64 {
		if s.detector == nil {
			return 0
		}
		return float64(s.detector.Coalitions())
	})
	reg.GaugeFunc("shield_detect_max_coverage", func() float64 {
		if s.detector == nil {
			return 0
		}
		return s.detector.MaxCoverage()
	})
	if cfg.Detect != nil {
		dcfg := *cfg.Detect
		if dcfg.CatalogSize == 0 {
			dcfg.CatalogSize = cfg.N
		}
		det, err := detect.NewDetector(dcfg)
		if err != nil {
			return nil, err
		}
		det.SetEscalationCounter(escalations)
		s.detector = det
	}

	if cfg.QueryRate > 0 {
		burst := cfg.QueryBurst
		if burst < 1 {
			burst = 1
		}
		lim, err := ratelimit.NewIdentityLimiter(cfg.QueryRate, burst, cfg.MaxPrincipals, cfg.Clock)
		if err != nil {
			return nil, err
		}
		lim.SetRejectionCounter(reg.Counter("shield_rate_limit_rejections_total"))
		reg.GaugeFunc("shield_limiter_principals", func() float64 { return float64(lim.Principals()) })
		s.limiter = lim
	}
	if cfg.RegistrationInterval > 0 {
		regThrottle, err := ratelimit.NewRegistrationThrottle(cfg.RegistrationInterval, cfg.Clock)
		if err != nil {
			return nil, err
		}
		regThrottle.SetRejectionCounter(reg.Counter("shield_registration_rejections_total"))
		reg.GaugeFunc("shield_registrations_granted", func() float64 {
			return float64(regThrottle.Granted())
		})
		s.registrar = regThrottle
	}

	// Storage-layer instruments: aggregate pool counters plus the pin
	// balance (nonzero between statements means a leak). Per-table gauges
	// are synced here and again on each /metrics scrape, picking up tables
	// created after the shield started.
	reg.GaugeFunc("engine_pool_pinned", func() float64 { return float64(s.db.PinnedFrames()) })
	reg.GaugeFunc("engine_pool_hits", func() float64 { h, _, _ := s.db.PoolStats(); return float64(h) })
	reg.GaugeFunc("engine_pool_misses", func() float64 { _, m, _ := s.db.PoolStats(); return float64(m) })
	reg.GaugeFunc("engine_pool_evicts", func() float64 { _, _, e := s.db.PoolStats(); return float64(e) })
	// Plan cache instruments: all zeros when the cache is disabled.
	reg.GaugeFunc("engine_plan_cache_hits", func() float64 {
		h, _, _, _ := s.db.PlanCacheStats()
		return float64(h)
	})
	reg.GaugeFunc("engine_plan_cache_misses", func() float64 {
		_, m, _, _ := s.db.PlanCacheStats()
		return float64(m)
	})
	reg.GaugeFunc("engine_plan_cache_invalidations", func() float64 {
		_, _, inv, _ := s.db.PlanCacheStats()
		return float64(inv)
	})
	reg.GaugeFunc("engine_plan_cache_entries", func() float64 {
		_, _, _, n := s.db.PlanCacheStats()
		return float64(n)
	})
	// Concurrent write-path instruments: per-page latch traffic (waits
	// climbing against acquisitions means page-level contention), the
	// group-commit pipeline (fsyncs well below commits is the batching
	// win; window_waits_seconds is the latency spent earning it), and the
	// snapshot version chains (live versions held for in-flight scans,
	// retired ones reclaimed behind them).
	reg.GaugeFunc("engine_write_latch_acquisitions", func() float64 {
		a, _, _, _ := s.db.WriteStats()
		return float64(a)
	})
	reg.GaugeFunc("engine_write_latch_waits", func() float64 {
		_, w, _, _ := s.db.WriteStats()
		return float64(w)
	})
	reg.GaugeFunc("engine_snapshot_versions_live", func() float64 {
		_, _, live, _ := s.db.WriteStats()
		return float64(live)
	})
	reg.GaugeFunc("engine_snapshot_retired_total", func() float64 {
		_, _, _, ret := s.db.WriteStats()
		return float64(ret)
	})
	reg.GaugeFunc("wal_group_commits", func() float64 {
		c, _, _, _ := s.db.WALGroupStats()
		return float64(c)
	})
	reg.GaugeFunc("wal_group_batched_records", func() float64 {
		_, r, _, _ := s.db.WALGroupStats()
		return float64(r)
	})
	reg.GaugeFunc("wal_group_fsyncs", func() float64 {
		_, _, f, _ := s.db.WALGroupStats()
		return float64(f)
	})
	reg.GaugeFunc("wal_group_window_waits_seconds", func() float64 {
		_, _, _, wait := s.db.WALGroupStats()
		return wait
	})
	// Post-commit checkpoint failures: the triggering statements
	// succeeded (they were already WAL-durable), but the log cleaner is
	// failing — the same I/O signal that latches degraded mode.
	reg.GaugeFunc("engine_checkpoint_failures_total", func() float64 {
		return float64(s.db.CheckpointFailures())
	})
	s.SyncEngineMetrics()
	return s, nil
}

// Metrics returns the shield's instrument registry; serve its Handler at
// GET /metrics (internal/server does).
func (s *Shield) Metrics() *metrics.Registry { return s.met.registry }

// SyncEngineMetrics registers per-table buffer-pool gauges
// (engine_pool_hits{table="x"} and friends) for every table currently in
// the catalog. Registration overwrites, so re-syncing is idempotent; the
// server calls it before serving each /metrics scrape so tables created
// since startup appear without a restart.
func (s *Shield) SyncEngineMetrics() {
	reg := s.met.registry
	for _, name := range s.db.Tables() {
		name := name
		stat := func(pick func(h, m, e int64) int64) func() float64 {
			return func() float64 {
				h, m, e, err := s.db.TablePoolStats(name)
				if err != nil {
					return 0 // table dropped since registration
				}
				return float64(pick(h, m, e))
			}
		}
		reg.GaugeFunc(fmt.Sprintf("engine_pool_hits{table=%q}", name),
			stat(func(h, _, _ int64) int64 { return h }))
		reg.GaugeFunc(fmt.Sprintf("engine_pool_misses{table=%q}", name),
			stat(func(_, m, _ int64) int64 { return m }))
		reg.GaugeFunc(fmt.Sprintf("engine_pool_evicts{table=%q}", name),
			stat(func(_, _, e int64) int64 { return e }))
	}
}

// DB returns the wrapped database — the unprotected back door, used by
// loaders and experiments. Production front ends expose only the Shield.
func (s *Shield) DB() *engine.Database { return s.db }

// Tracker returns the access-count tracker. In adaptive mode it is the
// tracker selected at the time of the call — a concurrent selector
// switch may deactivate it at any moment, so multi-step reads that must
// be consistent with the active selection go through withActiveTracker
// instead (TopK and SaveCounts do).
func (s *Shield) Tracker() *counters.Decayed {
	if s.multi != nil {
		s.multiMu.Lock()
		defer s.multiMu.Unlock()
		tr, _ := s.multi.Active()
		return tr
	}
	return s.tracker
}

// withActiveTracker runs fn on the active tracker; in adaptive mode the
// selector lock is held for the duration, so a concurrent switch cannot
// interleave with the read. fn must not call back into the shield.
func (s *Shield) withActiveTracker(fn func(tr *counters.Decayed)) {
	if s.multi != nil {
		s.multiMu.Lock()
		defer s.multiMu.Unlock()
		tr, _ := s.multi.Active()
		fn(tr)
		return
	}
	fn(s.tracker)
}

// ActiveDecayRate returns the decay rate the shield is currently keying
// delays to — interesting in adaptive mode, where it may switch.
func (s *Shield) ActiveDecayRate() float64 {
	return s.Tracker().DecayRate()
}

// TopK returns the k most popular tuple ids with their decayed counts,
// per the current tracker. The snapshot is taken under the selector lock
// in adaptive mode, so it is consistent with one selection even while
// concurrent queries are switching trackers.
func (s *Shield) TopK(k int) (ids []uint64, counts []float64) {
	s.withActiveTracker(func(tr *counters.Decayed) {
		tr.Ascend(func(rank int, id uint64, count float64) bool {
			if rank > k {
				return false
			}
			ids = append(ids, id)
			counts = append(counts, count)
			return true
		})
	})
	return ids, counts
}

// ObserveLockAcquisitions returns how many times the observe path has
// entered its serialization section. The batch-first invariant is one
// entry per charged query, independent of the tuple count; the adaptive
// regression test and benchmark pin this down.
func (s *Shield) ObserveLockAcquisitions() int64 { return s.observeLocks.Load() }

// Versions returns the tuple version store.
func (s *Shield) Versions() *freshness.Store { return s.versions }

// UpdatePolicy returns the update-rate policy, or nil when the shield is
// popularity-keyed.
func (s *Shield) UpdatePolicy() *delay.UpdateRate { return s.updPolicy }

// Gate returns the delay gate (experiments use Quote for non-invasive
// measurement).
func (s *Shield) Gate() *delay.Gate { return s.gate }

// Detector returns the extraction detector, or nil when detection is
// off. The server's suspects endpoint reads through it.
func (s *Shield) Detector() *detect.Detector { return s.detector }

// Degraded reports whether the shield is in degraded mode, and if so
// the message of the I/O failure that put it there.
func (s *Shield) Degraded() (bool, string) {
	if !s.degraded.Load() {
		return false, ""
	}
	if cause := s.degradedCause.Load(); cause != nil {
		return true, *cause
	}
	return true, "unknown cause"
}

// enterDegraded latches degraded mode in response to a storage I/O
// failure. The first cause wins; repeated failures while already
// degraded change nothing. Reads keep flowing (the delay policy prices
// from in-memory counters), writes are refused until ClearDegraded.
func (s *Shield) enterDegraded(err error) {
	cause := err.Error()
	s.degradedCause.CompareAndSwap(nil, &cause)
	if s.degraded.CompareAndSwap(false, true) {
		s.met.registry.Counter("shield_degraded_entries_total").Inc()
	}
}

// ClearDegraded re-admits writes after the operator has repaired the
// storage fault (or verified it was transient). There is deliberately no
// automatic probe: a shield that flaps between modes under a half-dead
// disk is worse than one that stays down until a human looks.
func (s *Shield) ClearDegraded() {
	s.degraded.Store(false)
	s.degradedCause.Store(nil)
}

// noteExecError inspects a statement-execution error and latches
// degraded mode when it classifies as a storage I/O failure — injected
// or real. Request-shaped errors (bad SQL, duplicate keys, unknown
// tables) pass through untouched.
func (s *Shield) noteExecError(err error) {
	if errors.Is(err, storage.ErrIO) {
		s.enterDegraded(err)
	}
}

// principalKey maps an identity to its rate-limiting principal.
func (s *Shield) principalKey(identity string) string {
	if s.cfg.SubnetAggregation {
		return ratelimit.SubnetKey(identity)
	}
	return identity
}

// Register admits a new identity through the registration throttle. With
// no throttle configured it always succeeds.
func (s *Shield) Register(identity string) error {
	if s.registrar == nil {
		return nil
	}
	if wait, ok := s.registrar.TryRegister(); !ok {
		return fmt.Errorf("%w: next slot in %v", ErrRegistrationThrottled, wait)
	}
	return nil
}

// ErrExplainBlocked is returned for EXPLAIN through the shielded front
// door: plans reveal index candidate counts without paying any delay.
var ErrExplainBlocked = errors.New("core: EXPLAIN is not available through the shielded front door")

// Query executes sql on behalf of identity, imposing the policy delay on
// returned tuples before the result is released. It is QueryCtx with an
// uncancellable context.
func (s *Shield) Query(identity, sql string) (*engine.Result, QueryStats, error) {
	return s.QueryCtx(context.Background(), identity, sql)
}

// QueryCtx is Query with cancellation: if ctx is cancelled or its
// deadline passes while the policy delay is being served, the call
// returns ctx's error promptly (on a real clock, without waiting out the
// remaining delay) and the result is withheld.
//
// Cancellation is NOT a refund. The rate-limit token is burned at entry,
// and the access observations are recorded even when the sleep is cut
// short — otherwise an adversary could quote the delay oracle for free by
// issuing queries and cancelling them the moment the response failed to
// arrive. QueryStats still carries the full quoted delay, but the caller
// never sees the tuples.
func (s *Shield) QueryCtx(ctx context.Context, identity, sql string) (*engine.Result, QueryStats, error) {
	return s.QueryFilteredCtx(ctx, identity, sql, nil)
}

// QueryFilteredCtx is QueryCtx with a row filter applied between
// execution and observation: rows whose primary key fails keep are
// dropped from the result BEFORE the detector observes them and before
// the delay gate prices them. The shard-side partition filter uses this
// so a replica answering for a subset of its locally held partitions
// charges (and exposes to detection) only the tuples it actually
// returns — otherwise every replica of a scanned range would inflate the
// caller's coverage sketch R-fold. keep is called in output-row order,
// so a stateful closure can also enforce a post-filter LIMIT. A nil
// keep keeps every row (identical to QueryCtx). Filtering applies only
// to row-aligned SELECT results; passing a filter with an aggregate or
// write statement is an error.
func (s *Shield) QueryFilteredCtx(ctx context.Context, identity, sql string, keep func(key uint64) bool) (*engine.Result, QueryStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.limiter != nil && !s.limiter.Allow(s.principalKey(identity)) {
		return nil, QueryStats{}, fmt.Errorf("%w: principal %q", ErrRateLimited, s.principalKey(identity))
	}
	// Prepare instead of Parse: a repeated SELECT shape hits the
	// engine's plan cache and skips the parser entirely; the statement
	// kind is available either way for the gate checks below.
	prep, err := s.db.Prepare(sql)
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer prep.Release()
	kind := prep.Kind()
	if kind == engine.KindExplain {
		return nil, QueryStats{}, ErrExplainBlocked
	}
	if kind != engine.KindSelect {
		// Writes are refused while degraded: with persistence failing,
		// accepting a mutation risks acknowledging state that will not
		// survive a restart. Reads are still served (and still priced —
		// the counters are in memory).
		if on, cause := s.Degraded(); on {
			s.met.registry.Counter("shield_degraded_write_rejections_total").Inc()
			return nil, QueryStats{}, fmt.Errorf("%w (cause: %s)", ErrDegraded, cause)
		}
	}
	res, err := prep.Exec()
	if err != nil {
		s.noteExecError(err)
		return nil, QueryStats{}, err
	}
	if kind != engine.KindSelect {
		// A post-commit checkpoint failure does not fail its statement —
		// the mutation committed and is WAL-durable — but it is a storage
		// I/O failure all the same: latch degraded mode so later writes
		// are refused rather than accepted against a failing disk.
		if cperr := s.db.TakeCheckpointErr(); cperr != nil {
			s.noteExecError(cperr)
		}
	}
	if keep != nil {
		if res.Columns == nil || len(res.Keys) != len(res.Rows) {
			return nil, QueryStats{}, errors.New("core: row filter requires a row-aligned SELECT result")
		}
		rows, keys := res.Rows[:0], res.Keys[:0]
		for i, k := range res.Keys {
			if keep(k) {
				rows = append(rows, res.Rows[i])
				keys = append(keys, k)
			}
		}
		res.Rows, res.Keys = rows, keys
	}
	if res.Columns != nil {
		// SELECT: charge delay for every returned tuple. ChargeCtx
		// records the access observations even on cancellation.
		//
		// Detection observes first (one sharded batch update, before the
		// sleep, so cancellation cannot dodge it) and returns the
		// escalation multiplier including this query's own tuples — a
		// single catalog-wide scan cannot finish inside its grace period.
		mult := 1.0
		if s.detector != nil {
			mult = s.detector.ObserveBatch(s.principalKey(identity), res.Keys)
		}
		d, cerr := s.gate.ChargeCtxScaled(ctx, mult, res.Keys...)
		qs := QueryStats{Delay: d, Tuples: len(res.Keys)}
		s.met.tuples.Add(int64(len(res.Keys)))
		if cerr != nil {
			s.met.cancelled.Inc()
			return nil, qs, cerr
		}
		s.delays.Add(d.Seconds())
		s.met.served.Inc()
		return res, qs, nil
	}
	// Write statement: record updates; evict deleted tuples from the
	// popularity tracking.
	s.met.writes.Inc()
	now := s.cfg.Clock.Now()
	if kind == engine.KindDelete {
		for _, key := range res.Keys {
			// A deleted tuple is the most stale a tuple can be: bump its
			// version (a tombstone) so an adversary's extracted copy of
			// it counts as stale, then evict it from the trackers.
			s.versions.Bump(key, now)
			s.forgetTuple(key)
		}
		return res, QueryStats{}, nil
	}
	for _, key := range res.Keys {
		s.versions.Bump(key, now)
		if s.updPolicy != nil {
			s.updPolicy.RecordUpdate(key)
		}
	}
	if s.updPolicy != nil {
		s.updPolicy.SetWindow(s.Window())
	}
	return res, QueryStats{}, nil
}

// DelayQuantile estimates the q-quantile of the per-query delays this
// shield has imposed (from a uniform reservoir sample). ok is false
// before any query has been served.
func (s *Shield) DelayQuantile(q float64) (d time.Duration, ok bool) {
	sec, err := s.delays.Quantile(q)
	if err != nil {
		return 0, false
	}
	return delay.SecondsToDuration(sec), true
}

// QueriesServed returns the number of SELECT queries the shield has
// priced.
func (s *Shield) QueriesServed() int64 { return s.delays.N() }

// forgetTuple drops a deleted tuple from every tracker so dead tuples do
// not keep occupying popularity ranks.
func (s *Shield) forgetTuple(id uint64) {
	if s.multi != nil {
		s.multiMu.Lock()
		for _, tr := range s.multi.Trackers() {
			tr.Remove(id)
		}
		s.multiMu.Unlock()
	} else {
		s.tracker.Remove(id)
	}
	if s.updPolicy != nil {
		s.updPolicy.Tracker().Remove(id)
	}
}

// Window returns the seconds elapsed on the shield's clock since it was
// created — the observation window used to turn update counts into rates.
func (s *Shield) Window() float64 {
	return s.cfg.Clock.Now().Sub(s.started).Seconds()
}

// SaveCounts persists the current tracker's learned counts to store —
// the paper's design point that counts live with the data. Pair with
// LoadCounts at startup so the defense does not relearn from scratch
// (and re-expose the start-up transient) after every restart.
//
// When store implements counters.BatchStore (the engine's CountStore
// does), the snapshot is written as one atomic clear-and-replace: a crash
// mid-save recovers to the previous complete snapshot, and stale rows
// from an earlier, larger save cannot shadow the current state. The
// row-by-row fallback offers neither property.
func (s *Shield) SaveCounts(store counters.Store) error {
	var ids []uint64
	var counts []float64
	s.withActiveTracker(func(tr *counters.Decayed) { ids, counts = tr.Export() })
	if bs, ok := store.(counters.BatchStore); ok {
		if err := bs.ReplaceAllCounts(ids, counts); err != nil {
			s.noteExecError(err)
			return fmt.Errorf("core: saving counts: %w", err)
		}
		return nil
	}
	for i, id := range ids {
		if err := store.PutCount(id, counts[i]); err != nil {
			s.noteExecError(err)
			return fmt.Errorf("core: saving count for %d: %w", id, err)
		}
	}
	return nil
}

// LoadCounts restores learned counts previously written by SaveCounts.
// In adaptive mode every tracker is seeded with the same counts.
func (s *Shield) LoadCounts(all func() (ids []uint64, counts []float64, err error)) error {
	ids, counts, err := all()
	if err != nil {
		return err
	}
	if s.multi != nil {
		s.multiMu.Lock()
		defer s.multiMu.Unlock()
		for _, tr := range s.multi.Trackers() {
			if err := tr.Import(ids, counts); err != nil {
				return err
			}
		}
		return nil
	}
	return s.tracker.Import(ids, counts)
}

// QuoteExtraction returns, without sleeping or perturbing counts, the
// total delay an adversary would face extracting the given tuple ids
// one query at a time under the current learned state.
func (s *Shield) QuoteExtraction(ids []uint64) time.Duration {
	return s.gate.Quote(ids...)
}

// Snapshot extracts the current version vector for the given ids, as an
// adversary's stolen copy; pair with StaleFraction after time passes.
func (s *Shield) Snapshot(ids []uint64) []freshness.Extracted {
	out := make([]freshness.Extracted, len(ids))
	for i, id := range ids {
		out[i] = s.versions.Observe(id)
	}
	return out
}

// StaleFraction reports how much of an extracted snapshot is already
// obsolete.
func (s *Shield) StaleFraction(snap []freshness.Extracted) float64 {
	return s.versions.StaleFraction(snap)
}
