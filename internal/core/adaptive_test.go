package core

import (
	"fmt"
	"testing"
	"time"
)

func TestAdaptiveConfigValidation(t *testing.T) {
	db := testDB(t, 10)
	if _, err := New(db, Config{
		Kind: ByUpdateRate, N: 10, Alpha: 1, C: 1,
		AdaptiveDecayRates: []float64{1, 1.01},
	}); err == nil {
		t.Fatal("adaptive + update-rate accepted")
	}
	if _, err := New(db, Config{
		N: 10, Alpha: 1, Beta: 1, Cap: time.Second,
		AdaptiveDecayRates: []float64{0.5},
	}); err == nil {
		t.Fatal("bad adaptive rate accepted")
	}
}

func TestAdaptiveShieldServesQueries(t *testing.T) {
	db := testDB(t, 100)
	clk := simClock()
	s, err := New(db, Config{
		N: 100, Alpha: 1, Beta: 2, Cap: time.Second, Clock: clk,
		AdaptiveDecayRates: []float64{1.0, 1.05},
		AdaptiveWarmup:     50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cold: cap. Warm: cheap. Same contract as the fixed-rate shield.
	_, stats, err := s.Query("u", `SELECT * FROM items WHERE id = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delay != time.Second {
		t.Fatalf("cold delay = %v", stats.Delay)
	}
	for i := 0; i < 300; i++ {
		if _, _, err := s.Query("u", `SELECT * FROM items WHERE id = 5`); err != nil {
			t.Fatal(err)
		}
	}
	_, stats, _ = s.Query("u", `SELECT * FROM items WHERE id = 5`)
	if stats.Delay >= time.Second/10 {
		t.Fatalf("hot delay = %v", stats.Delay)
	}
}

func TestAdaptiveSwitchesOnShiftingWorkload(t *testing.T) {
	db := testDB(t, 2000)
	clk := simClock()
	s, err := New(db, Config{
		N: 2000, Alpha: 1, Beta: 2, Cap: time.Second, Clock: clk,
		AdaptiveDecayRates: []float64{1.0, 1.05},
		AdaptiveWarmup:     500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveDecayRate(); got != 1.0 {
		t.Fatalf("initial active rate = %v", got)
	}
	// Popularity shifts every phase: the decaying tracker must win.
	for phase := 0; phase < 40; phase++ {
		hot := (phase * 37) % 1900
		for i := 0; i < 200; i++ {
			id := hot + i%3
			if _, _, err := s.Query("u", fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := s.ActiveDecayRate(); got != 1.05 {
		t.Fatalf("active rate on shifting workload = %v, want 1.05", got)
	}
}

func TestAdaptiveStaysOnStaticWorkload(t *testing.T) {
	db := testDB(t, 500)
	clk := simClock()
	s, err := New(db, Config{
		N: 500, Alpha: 1, Beta: 2, Cap: time.Second, Clock: clk,
		AdaptiveDecayRates: []float64{1.0, 1.1},
		AdaptiveWarmup:     300,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Static head: ids 0..4 dominate forever.
	for i := 0; i < 5000; i++ {
		id := (i * i) % 5
		if _, _, err := s.Query("u", fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, id)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ActiveDecayRate(); got != 1.0 {
		t.Fatalf("active rate on static workload = %v, want 1.0 (no decay)", got)
	}
}

func TestTopK(t *testing.T) {
	db := testDB(t, 50)
	s, _ := New(db, Config{N: 50, Alpha: 1, Beta: 1, Cap: time.Second, Clock: simClock()})
	for i := 0; i < 9; i++ {
		s.Query("u", `SELECT * FROM items WHERE id = 7`)
	}
	for i := 0; i < 4; i++ {
		s.Query("u", `SELECT * FROM items WHERE id = 3`)
	}
	s.Query("u", `SELECT * FROM items WHERE id = 1`)
	ids, counts := s.TopK(2)
	if len(ids) != 2 || ids[0] != 7 || ids[1] != 3 {
		t.Fatalf("TopK ids = %v", ids)
	}
	if counts[0] != 9 || counts[1] != 4 {
		t.Fatalf("TopK counts = %v", counts)
	}
	// k beyond distinct ids.
	ids, _ = s.TopK(100)
	if len(ids) != 3 {
		t.Fatalf("TopK(100) = %v", ids)
	}
}
