package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/counters"
	"repro/internal/detect"
	"repro/internal/vclock"
)

// TestRaceQueryCtxSaveCountsTopK races the paths that share the tracker
// and the delays reservoir and had never been exercised together:
// concurrent QueryCtx (some cancelled mid-delay), SaveCounts snapshots,
// and TopK rank scans, on one adaptive shield under -race.
func TestRaceQueryCtxSaveCountsTopK(t *testing.T) {
	db := testDB(t, 100)
	s, err := New(db, Config{
		// Real clock with a microscopic cap: delays are genuinely slept
		// (so cancellation can land mid-sleep) but the test stays fast.
		N: 100, Alpha: 1, Beta: 1, Cap: 200 * time.Microsecond, Clock: vclock.Real{},
		AdaptiveDecayRates: []float64{1, 1.05},
		AdaptiveWarmup:     10,
		QueryRate:          1e6, QueryBurst: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		queriers = 4
		perG     = 60
	)
	var wg sync.WaitGroup
	// Query workers: even iterations run to completion, odd ones get a
	// context that may expire mid-delay.
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sql := fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, (g*perG+i)%100)
				if i%2 == 0 {
					if _, _, err := s.QueryCtx(context.Background(), "u", sql); err != nil {
						t.Errorf("query: %v", err)
						return
					}
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Microsecond)
				s.QueryCtx(ctx, "u", sql) // cancellation is an expected outcome
				cancel()
			}
		}(g)
	}
	// Snapshot worker: SaveCounts exports the live tracker repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		store := counters.NewMapStore()
		for i := 0; i < 40; i++ {
			if err := s.SaveCounts(store); err != nil {
				t.Errorf("save: %v", err)
				return
			}
		}
	}()
	// Rank worker: TopK walks the tracker's order statistics.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			ids, countsOut := s.TopK(10)
			if len(ids) != len(countsOut) {
				t.Errorf("TopK lengths diverge: %d vs %d", len(ids), len(countsOut))
				return
			}
		}
	}()
	wg.Wait()

	served := s.Metrics().Counter("shield_queries_served_total").Value()
	cancelled := s.Metrics().Counter("shield_queries_cancelled_total").Value()
	if served+cancelled != queriers*perG {
		t.Fatalf("served %d + cancelled %d != %d issued", served, cancelled, queriers*perG)
	}
	if served < queriers*perG/2 {
		t.Fatalf("served %d < the %d uncancellable queries issued", served, queriers*perG/2)
	}
	if s.Metrics().Gauge("shield_inflight_delays").Value() != 0 {
		t.Fatal("inflight gauge nonzero after quiescence")
	}
}

// TestRaceDetectionOn races the full detection path: concurrent
// principals scanning (sketch updates + escalation), cadence-driven
// clustering sweeps, suspects/gauge reads, and metrics exports.
func TestRaceDetectionOn(t *testing.T) {
	db := testDB(t, 100)
	s, err := New(db, Config{
		N: 100, Alpha: 1, Beta: 1, Cap: 50 * time.Microsecond, Clock: vclock.Real{},
		Detect: &detect.Config{
			Policy:         detect.EscalationPolicy{Grace: 0.10, Cap: 8, RampWidth: 0.10, Hysteresis: 0.10},
			ReclusterEvery: 16,
			MaxPrincipals:  8, // force eviction churn under race
			Shards:         2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			identity := fmt.Sprintf("p%d", g)
			for i := 0; i < 40; i++ {
				lo := (g*7 + i*13) % 90
				sql := fmt.Sprintf(`SELECT * FROM items WHERE id >= %d AND id < %d`, lo, lo+10)
				if _, _, err := s.QueryCtx(context.Background(), identity, sql); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			s.Detector().Recluster()
			s.Detector().Suspects(5)
			s.Metrics().Export()
		}
	}()
	wg.Wait()
	if n := s.Detector().TrackedPrincipals(); n > 8 {
		t.Fatalf("tracked %d principals, cap 8", n)
	}
}
