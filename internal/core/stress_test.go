package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentQueriesAndWrites hammers one shield from many goroutines
// mixing reads and writes; afterwards the books must balance.
func TestConcurrentQueriesAndWrites(t *testing.T) {
	db := testDB(t, 200)
	s, err := New(db, Config{N: 200, Alpha: 1, Beta: 1, Cap: time.Millisecond, Clock: simClock()})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := (w*perWorker + i) % 200
				var err error
				if i%4 == 3 {
					_, _, err = s.Query(fmt.Sprintf("w%d", w),
						fmt.Sprintf(`UPDATE items SET payload = 'v%d' WHERE id = %d`, i, id))
				} else {
					_, _, err = s.Query(fmt.Sprintf("w%d", w),
						fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, id))
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// 3/4 of statements were reads; every read observed exactly one tuple.
	wantReads := int64(workers * perWorker * 3 / 4)
	if got := s.Tracker().Observations(); got != wantReads {
		t.Fatalf("observations = %d, want %d", got, wantReads)
	}
	wantWrites := int64(workers * perWorker / 4)
	if got := s.Versions().Updates(); got != wantWrites {
		t.Fatalf("updates = %d, want %d", got, wantWrites)
	}
}

// TestConcurrentAdaptiveShield stresses the adaptive (multi-decay) path,
// which serializes tracker selection behind a shield-level mutex.
func TestConcurrentAdaptiveShield(t *testing.T) {
	db := testDB(t, 100)
	s, err := New(db, Config{
		N: 100, Alpha: 1, Beta: 1, Cap: time.Millisecond, Clock: simClock(),
		AdaptiveDecayRates: []float64{1.0, 1.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, _, err := s.Query("u", fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, i%100)); err != nil {
					t.Error(err)
					return
				}
				_ = s.ActiveDecayRate()
			}
		}(w)
	}
	wg.Wait()
	if got := s.Tracker().Observations(); got != 800 {
		t.Fatalf("observations = %d", got)
	}
}

// TestConcurrentRegistrationsRaceOneWinner: with a throttle, exactly one
// of many simultaneous registrations may win per interval.
func TestConcurrentRegistrationsRaceOneWinner(t *testing.T) {
	db := testDB(t, 10)
	s, err := New(db, Config{
		N: 10, Alpha: 1, Beta: 1, Cap: time.Millisecond, Clock: simClock(),
		RegistrationInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	won := 0
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := s.Register(fmt.Sprintf("id%d", w)); err == nil {
				mu.Lock()
				won++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if won != 1 {
		t.Fatalf("%d registrations won, want 1", won)
	}
}
