package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/detect"
)

// detectShield builds a shield over n tuples with detection enabled:
// 10% grace, ×16 cap, tight ramp — small enough to exercise escalation
// inside a test-sized catalog.
func detectShield(t *testing.T, n int) *Shield {
	t.Helper()
	s, err := New(testDB(t, n), Config{
		N: n, Alpha: 1, Beta: 2, Cap: time.Second, Clock: simClock(),
		Detect: &detect.Config{
			Policy:         detect.EscalationPolicy{Grace: 0.10, Cap: 16, RampWidth: 0.10, Hysteresis: 0.10},
			ReclusterEvery: 8,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDetectEscalatesScanner(t *testing.T) {
	const n = 500
	s := detectShield(t, n)
	if s.Detector() == nil {
		t.Fatal("detector not wired")
	}
	// A scanning principal sweeps the catalog in 50-tuple windows; once
	// its coverage clears the ramp the charged delay must be the policy
	// quote times the cap multiplier. The raw quote is captured before
	// each window — the charge itself advances the tracker.
	lastIDs := make([]uint64, 50)
	for i := range lastIDs {
		lastIDs[i] = uint64(n - 50 + i)
	}
	var last QueryStats
	var raw time.Duration
	for lo := 0; lo < n; lo += 50 {
		if lo == n-50 {
			raw = s.gate.Quote(lastIDs...)
		}
		q := fmt.Sprintf("SELECT * FROM items WHERE id >= %d AND id < %d", lo, lo+50)
		_, qs, err := s.Query("scanner", q)
		if err != nil {
			t.Fatal(err)
		}
		last = qs
	}
	if mult := s.Detector().Multiplier(s.principalKey("scanner")); mult != 16 {
		t.Fatalf("scanner multiplier %v, want cap 16", mult)
	}
	if want := 16 * raw; last.Delay != want {
		t.Fatalf("escalated charge %v, want 16×%v = %v", last.Delay, raw, want)
	}
	if got := s.Metrics().Counter("shield_detect_escalations_total").Value(); got != 1 {
		t.Fatalf("escalations counter %d, want 1", got)
	}
	// The detection gauges are live in the metrics export.
	exp := s.Metrics().Export()
	if exp["shield_detect_tracked_principals"].(float64) != 1 {
		t.Fatalf("tracked principals gauge = %v", exp["shield_detect_tracked_principals"])
	}
	if exp["shield_detect_sketch_bytes"].(float64) <= 0 {
		t.Fatalf("sketch bytes gauge = %v", exp["shield_detect_sketch_bytes"])
	}
	if exp["shield_detect_max_coverage"].(float64) < 0.8 {
		t.Fatalf("max coverage gauge = %v, want ≈1", exp["shield_detect_max_coverage"])
	}
}

func TestDetectLeavesModestUsersAlone(t *testing.T) {
	const n = 500
	s := detectShield(t, n)
	// A user repeatedly reading the same 20 tuples (4% coverage) never
	// escalates: every charge equals the raw quote.
	ids := make([]uint64, 20)
	for j := range ids {
		ids[j] = uint64(j)
	}
	for i := 0; i < 50; i++ {
		raw := s.gate.Quote(ids...)
		_, qs, err := s.Query("regular", "SELECT * FROM items WHERE id < 20")
		if err != nil {
			t.Fatal(err)
		}
		if qs.Delay != raw {
			t.Fatalf("iteration %d: charged %v, raw quote %v", i, qs.Delay, raw)
		}
	}
	if mult := s.Detector().Multiplier(s.principalKey("regular")); mult != 1 {
		t.Fatalf("regular user multiplier %v, want 1", mult)
	}
	if got := s.Metrics().Counter("shield_detect_escalations_total").Value(); got != 0 {
		t.Fatalf("escalations counter %d, want 0", got)
	}
}

// TestDetectOffIsZeroOverhead pins the detection-off hot path: no
// detector is constructed, charges are bit-identical to the raw quote,
// and the detection instruments export as zeros (stable schema).
func TestDetectOffIsZeroOverhead(t *testing.T) {
	db := testDB(t, 100)
	s, err := New(db, Config{N: 100, Alpha: 1, Beta: 2, Cap: time.Second, Clock: simClock()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Detector() != nil {
		t.Fatal("detector constructed without Config.Detect")
	}
	ids := make([]uint64, 30)
	for j := range ids {
		ids[j] = uint64(j)
	}
	for i := 0; i < 20; i++ {
		raw := s.gate.Quote(ids...)
		_, qs, err := s.Query("u", "SELECT * FROM items WHERE id < 30")
		if err != nil {
			t.Fatal(err)
		}
		if qs.Delay != raw {
			t.Fatalf("detection off: charged %v != quote %v", qs.Delay, raw)
		}
	}
	exp := s.Metrics().Export()
	for _, name := range []string{
		"shield_detect_tracked_principals", "shield_detect_sketch_bytes",
		"shield_detect_coalitions", "shield_detect_max_coverage",
	} {
		if v, ok := exp[name].(float64); !ok || v != 0 {
			t.Errorf("%s = %v, want 0 with detection off", name, exp[name])
		}
	}
	if exp["shield_detect_escalations_total"].(int64) != 0 {
		t.Errorf("escalations = %v, want 0", exp["shield_detect_escalations_total"])
	}
}

// TestDetectSubnetAggregation: with subnet aggregation on, Sybil
// identities inside one /24 share a single detector principal, so their
// sketches merge and the coalition does not even need clustering.
func TestDetectSubnetAggregation(t *testing.T) {
	const n = 500
	db := testDB(t, n)
	s, err := New(db, Config{
		N: n, Alpha: 1, Beta: 2, Cap: time.Second, Clock: simClock(),
		SubnetAggregation: true,
		Detect: &detect.Config{
			Policy: detect.EscalationPolicy{Grace: 0.10, Cap: 16, RampWidth: 0.10, Hysteresis: 0.10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		identity := fmt.Sprintf("10.0.0.%d:4000", i+1)
		lo := i * 50
		q := fmt.Sprintf("SELECT * FROM items WHERE id >= %d AND id < %d", lo, lo+50)
		if _, _, err := s.Query(identity, q); err != nil {
			t.Fatal(err)
		}
	}
	if d := s.Detector(); d.TrackedPrincipals() != 1 {
		t.Fatalf("tracked %d principals, want 1 (subnet-aggregated)", d.TrackedPrincipals())
	}
	if mult := s.Detector().Multiplier(s.principalKey("10.0.0.1:4000")); mult != 16 {
		t.Fatalf("subnet multiplier %v, want cap 16", mult)
	}
}
