package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/vclock"
)

// TestCancelledQueryStillCharges is the anti-free-probe invariant on a
// real clock: a cancelled QueryCtx must return context.Canceled promptly
// (far sooner than the quoted delay), yet the access observations, the
// rate-limit token, and the cancellation metric must all reflect the
// attempt as if it had been served.
func TestCancelledQueryStillCharges(t *testing.T) {
	db := testDB(t, 50)
	// Real clock: a cold tuple quotes the full 30s cap, which the test
	// must not wait out.
	s, err := New(db, Config{
		N: 50, Alpha: 1, Beta: 2, Cap: 30 * time.Second, Clock: vclock.Real{},
		QueryRate: 1e-9, QueryBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		stats QueryStats
		err   error
	}
	done := make(chan result, 1)
	start := time.Now()
	go func() {
		_, stats, err := s.QueryCtx(ctx, "robot", `SELECT * FROM items WHERE id = 7`)
		done <- result{stats, err}
	}()
	// Give the goroutine a moment to reach the sleep, then cancel.
	time.Sleep(20 * time.Millisecond)
	cancel()
	var res result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query never returned")
	}
	elapsed := time.Since(start)
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("err = %v", res.err)
	}
	// Prompt: well under the 30s quote.
	if elapsed >= 5*time.Second {
		t.Fatalf("cancellation took %v against a 30s quote", elapsed)
	}
	if res.stats.Delay != 30*time.Second || res.stats.Tuples != 1 {
		t.Fatalf("stats = %+v, want full 30s quote for 1 tuple", res.stats)
	}

	// 1. The access observation was recorded: the tuple is now tracked.
	if s.Tracker().Count(7) != 1 {
		t.Fatalf("tracker count = %v; cancellation was a free probe", s.Tracker().Count(7))
	}
	// 2. The rate-limit token was burned: with burst 1 and a glacial
	// refill rate, the same principal is now rejected outright.
	if _, _, err := s.QueryCtx(context.Background(), "robot", `SELECT * FROM items WHERE id = 8`); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second query err = %v, want rate limited", err)
	}
	// 3. The cancellation metric reflects the attempt, and nothing was
	// counted as served.
	if got := s.Metrics().Counter("shield_queries_cancelled_total").Value(); got != 1 {
		t.Fatalf("cancelled metric = %d", got)
	}
	if got := s.Metrics().Counter("shield_queries_served_total").Value(); got != 0 {
		t.Fatalf("served metric = %d", got)
	}
	if s.QueriesServed() != 0 {
		t.Fatalf("QueriesServed = %d after a cancelled query", s.QueriesServed())
	}
}

// TestCancelledQueryDeterministic exercises the same invariant on a
// blocking simulated clock: the sleeper parks, the test cancels, and the
// wake-up is deterministic — no real time involved.
func TestCancelledQueryDeterministic(t *testing.T) {
	db := testDB(t, 20)
	clk := simClock()
	clk.SetBlocking(true)
	s, err := New(db, Config{N: 20, Alpha: 1, Beta: 1, Cap: time.Hour, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.QueryCtx(ctx, "u", `SELECT * FROM items WHERE id = 5`)
		errc <- err
	}()
	// Wait until the query goroutine is parked in the delay sleep.
	deadline := time.Now().Add(5 * time.Second)
	for clk.Waiters() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the delay gate")
		}
		time.Sleep(50 * time.Microsecond)
	}
	if got := s.Metrics().Gauge("shield_inflight_delays").Value(); got != 1 {
		t.Fatalf("inflight gauge = %d while parked", got)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if s.Tracker().Count(5) != 1 {
		t.Fatal("cancelled query did not record its observation")
	}
	if got := s.Metrics().Gauge("shield_inflight_delays").Value(); got != 0 {
		t.Fatalf("inflight gauge = %d after cancel", got)
	}
	// The clock never advanced: the cancelled sleep was not served.
	if clk.Slept() != 0 {
		t.Fatalf("slept = %v", clk.Slept())
	}

	// A deadline-expired context is charged the same way.
	clk.SetBlocking(false)
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	_, _, err = s.QueryCtx(dctx, "u", `SELECT * FROM items WHERE id = 6`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if s.Tracker().Count(6) != 1 {
		t.Fatal("deadline-expired query did not record its observation")
	}
	if got := s.Metrics().Counter("shield_queries_cancelled_total").Value(); got != 2 {
		t.Fatalf("cancelled metric = %d", got)
	}
}

// TestQueryDelegatesToQueryCtx: the legacy path still serves, uncancelled.
func TestQueryDelegatesToQueryCtx(t *testing.T) {
	db := testDB(t, 10)
	clk := simClock()
	s, err := New(db, Config{N: 10, Alpha: 1, Beta: 1, Cap: time.Second, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := s.Query("u", `SELECT * FROM items WHERE id = 1`)
	if err != nil || res == nil || stats.Tuples != 1 {
		t.Fatalf("res=%v stats=%+v err=%v", res, stats, err)
	}
	if got := s.Metrics().Counter("shield_queries_served_total").Value(); got != 1 {
		t.Fatalf("served metric = %d", got)
	}
	if h := s.Metrics().Histogram("shield_query_delay_seconds", nil); h.Count() != 1 {
		t.Fatalf("delay histogram count = %d", h.Count())
	}
}
