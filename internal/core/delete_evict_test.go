package core

import (
	"errors"
	"testing"
	"time"
)

func TestDeleteEvictsFromTracker(t *testing.T) {
	db := testDB(t, 20)
	s, _ := New(db, Config{N: 20, Alpha: 1, Beta: 1, Cap: time.Second, Clock: simClock()})
	for i := 0; i < 10; i++ {
		s.Query("u", `SELECT * FROM items WHERE id = 3`)
	}
	if s.Tracker().Count(3) != 10 {
		t.Fatalf("count = %v", s.Tracker().Count(3))
	}
	if _, _, err := s.Query("u", `DELETE FROM items WHERE id = 3`); err != nil {
		t.Fatal(err)
	}
	if s.Tracker().Count(3) != 0 {
		t.Fatalf("deleted tuple still tracked: %v", s.Tracker().Count(3))
	}
	// Deleting bumps the version (a tombstone): a tuple removed after
	// extraction is maximally stale, and StaleFraction must say so.
	if s.Versions().Version(3) == 0 {
		t.Fatal("delete left no tombstone version")
	}
}

// TestDeleteMakesExtractedCopyStale is the staleness-undercount
// regression: an adversary snapshots a tuple, the tuple is deleted, and
// the snapshot must now count as stale rather than fresh.
func TestDeleteMakesExtractedCopyStale(t *testing.T) {
	db := testDB(t, 20)
	s, _ := New(db, Config{N: 20, Alpha: 1, Beta: 1, Cap: time.Second, Clock: simClock()})
	snap := s.Snapshot([]uint64{3, 4})
	if got := s.StaleFraction(snap); got != 0 {
		t.Fatalf("fresh snapshot already stale: %v", got)
	}
	if _, _, err := s.Query("u", `DELETE FROM items WHERE id = 3`); err != nil {
		t.Fatal(err)
	}
	if got := s.StaleFraction(snap); got != 0.5 {
		t.Fatalf("StaleFraction after delete = %v, want 0.5", got)
	}
	// The tombstone survives even though the tuple left every tracker.
	if s.Tracker().Count(3) != 0 {
		t.Fatal("deleted tuple still tracked")
	}
}

func TestDeleteEvictsFromAdaptiveTrackers(t *testing.T) {
	db := testDB(t, 20)
	s, _ := New(db, Config{
		N: 20, Alpha: 1, Beta: 1, Cap: time.Second, Clock: simClock(),
		AdaptiveDecayRates: []float64{1, 1.1},
	})
	for i := 0; i < 5; i++ {
		s.Query("u", `SELECT * FROM items WHERE id = 2`)
	}
	s.Query("u", `DELETE FROM items WHERE id = 2`)
	if s.Tracker().Count(2) != 0 {
		t.Fatal("adaptive tracker kept deleted tuple")
	}
}

func TestExplainBlockedThroughShield(t *testing.T) {
	db := testDB(t, 10)
	s, _ := New(db, Config{N: 10, Alpha: 1, Beta: 1, Cap: time.Second, Clock: simClock()})
	_, _, err := s.Query("u", `EXPLAIN SELECT * FROM items WHERE id = 1`)
	if !errors.Is(err, ErrExplainBlocked) {
		t.Fatalf("err = %v", err)
	}
	// EXPLAIN remains available on the administrative path.
	res, err := s.DB().Exec(`EXPLAIN SELECT * FROM items WHERE id = 1`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("admin explain: %v, %v", res, err)
	}
}
