package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

// The batch-first invariant: a k-tuple SELECT enters the observe
// serialization section exactly once, in both adaptive and fixed-rate
// mode. Before batching, the adaptive observe closure took multiMu once
// per tuple.
func TestObserveBatchSingleLockPerQuery(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		name := "fixed"
		cfg := Config{N: 200, Alpha: 1, Beta: 2, Cap: time.Second, Clock: simClock()}
		if adaptive {
			name = "adaptive"
			cfg.AdaptiveDecayRates = []float64{1, 1.05}
			cfg.AdaptiveWarmup = 10
		}
		t.Run(name, func(t *testing.T) {
			db := testDB(t, 200)
			s, err := New(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, scan := range []int{1, 10, 100} {
				res, _, err := s.Query("u", fmt.Sprintf(`SELECT * FROM items WHERE id < %d`, scan))
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Keys) != scan {
					t.Fatalf("scan %d returned %d tuples", scan, len(res.Keys))
				}
				if got := s.ObserveLockAcquisitions(); got != int64(i+1) {
					t.Fatalf("after %d queries (last: %d tuples): %d observe lock acquisitions", i+1, scan, got)
				}
			}
		})
	}
}

// TopK snapshots under the selector lock: hammer it against queries that
// drive selector switches (tiny warmup, shifting workload) with the
// price cache enabled, under -race.
func TestRaceAdaptiveTopKDuringSelectorSwitches(t *testing.T) {
	db := testDB(t, 300)
	s, err := New(db, Config{
		N: 300, Alpha: 1, Beta: 2, Cap: 100 * time.Microsecond, Clock: vclock.Real{},
		AdaptiveDecayRates: []float64{1, 1.02, 1.05},
		AdaptiveWarmup:     5,
		PriceCacheSize:     128,
		PriceCacheEpochLag: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				// Shift the hot set every few queries so tracker scores
				// diverge and the selector has reason to move.
				id := (i/8)*37%300 + g
				sql := fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, id%300)
				if _, _, err := s.Query("u", sql); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			ids, counts := s.TopK(10)
			if len(ids) != len(counts) {
				t.Errorf("TopK: %d ids, %d counts", len(ids), len(counts))
				return
			}
			s.ActiveDecayRate()
		}
	}()
	wg.Wait()
}

// A shield with the price cache at lag 0 must quote exactly what an
// uncached shield quotes after an identical observation history, and the
// cache must actually be exercised (hits on repeat quotes).
func TestPriceCacheShieldQuoteParity(t *testing.T) {
	mk := func(cacheSize int) *Shield {
		db := testDB(t, 500)
		s, err := New(db, Config{
			N: 500, Alpha: 1, Beta: 2, Cap: time.Second, Clock: simClock(),
			PriceCacheSize: cacheSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cached, uncached := mk(256), mk(0)
	for _, s := range []*Shield{cached, uncached} {
		for i := 0; i < 400; i++ {
			if _, _, err := s.Query("u", fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, (i*i)%120)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ids := make([]uint64, 500)
	for i := range ids {
		ids[i] = uint64(i)
	}
	// Quote twice: fill, then serve from cache.
	if q1, q2 := cached.QuoteExtraction(ids), cached.QuoteExtraction(ids); q1 != q2 {
		t.Fatalf("repeat cached quotes differ: %v vs %v", q1, q2)
	}
	qc, qu := cached.QuoteExtraction(ids), uncached.QuoteExtraction(ids)
	if qc != qu {
		t.Fatalf("cached quote %v != uncached quote %v", qc, qu)
	}
	hits := cached.Metrics().Counter("shield_price_cache_hits_total").Value()
	if hits == 0 {
		t.Fatal("price cache never hit")
	}
	if uncached.Metrics().Counter("shield_price_cache_misses_total").Value() != 0 {
		t.Fatal("disabled cache recorded misses")
	}
}
