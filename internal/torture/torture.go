// Package torture is the crash-consistency harness: it replays a
// deterministic mutating workload against the WAL-enabled engine,
// simulates a crash at enumerated byte offsets of the log — every byte
// of the first commit batch, every header/commit byte of the rest, and
// stride-sampled payload bytes — by truncating a copy of the on-disk
// files and reopening, then asserts the recovery invariants:
//
//   - committed batches are fully replayed (recovered state equals the
//     shadow state as of the last commit at or before the crash point);
//   - torn tails are dropped, never partially applied;
//   - every recovered heap page decodes cleanly (the open-time index
//     rebuild touches every row of every page);
//   - count-snapshot saves (ReplaceAllCounts, one commit per save) are
//     atomic — recovery yields exactly snapshot A or snapshot B, so the
//     charged-delay quote, a deterministic function of the count vector,
//     is exactly quote(A) or quote(B) and never a torn in-between.
//
// Crash images are honest for this engine because the data-page path is
// no-steal below the checkpoint threshold: mutations dirty pages only in
// the buffer pool (allocation writes through immediately), so the
// on-disk table bytes plus a truncated log are precisely what a crash at
// that log offset leaves behind. The workloads here stay far below
// walCheckpointBytes, so no checkpoint retires the log mid-run.
package torture

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/storage"
)

// walRecordSize mirrors the storage package's page-record layout:
// kind(1) + pageID(4) + crc(4) + payload(PageSize).
const walRecordSize = 1 + 4 + 4 + storage.PageSize

// Config bounds a torture run.
type Config struct {
	// Statements is the mutating workload length (default 18).
	Statements int
	// Stride samples payload bytes of batches after the first (default 97).
	Stride int
	// MaxPoints caps the crash points exercised (0 = every candidate).
	// Candidates are downsampled evenly and deterministically; batch
	// boundaries are always kept.
	MaxPoints int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Statements <= 0 {
		c.Statements = 18
	}
	if c.Stride <= 0 {
		c.Stride = 97
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Result reports what a torture run covered.
type Result struct {
	Points     int      // crash points exercised
	Statements int      // workload statements (commits) replayed
	WALBytes   int64    // full log length enumerated over
	Violations []string // invariant violations, empty on success
}

const maxViolations = 20

// image is a captured crash image: the raw bytes of every file a
// reopened engine needs, with the log truncatable per crash point.
type image struct {
	catalog []byte
	tables  map[string][]byte // file name -> bytes (.tbl files)
	wal     []byte
	walName string
}

// capture reads the on-disk bytes of dir while the engine still holds
// them open — exactly the crash image, since dirty pages live only in
// the pool.
func capture(dir, walName string) (*image, error) {
	im := &image{tables: make(map[string][]byte), walName: walName}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		switch {
		case e.Name() == "catalog.json":
			im.catalog = data
		case e.Name() == walName:
			im.wal = data
		case strings.HasSuffix(e.Name(), ".wal"):
			// A second table's log; keep it verbatim.
			im.tables[e.Name()] = data
		default:
			im.tables[e.Name()] = data
		}
	}
	if im.catalog == nil {
		return nil, fmt.Errorf("torture: no catalog.json in %s", dir)
	}
	return im, nil
}

// materialize writes the image into dir with the log truncated to n
// bytes — the filesystem state a crash at log offset n leaves behind.
func (im *image) materialize(dir string, n int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), im.catalog, 0o644); err != nil {
		return err
	}
	for name, data := range im.tables {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	if n > int64(len(im.wal)) {
		n = int64(len(im.wal))
	}
	return os.WriteFile(filepath.Join(dir, im.walName), im.wal[:n], 0o644)
}

// snapshotTable canonicalizes a table's contents: sorted "col|col|…"
// lines, one per row. Two equal snapshots mean identical logical state.
func snapshotTable(db *engine.Database, table string) (string, error) {
	res, err := db.Exec("SELECT * FROM " + table)
	if err != nil {
		return "", err
	}
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		lines = append(lines, strings.Join(parts, "|"))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n"), nil
}

// workload returns the deterministic mutating statement sequence: a core
// of inserts with periodic updates and deletes so recovered states
// differ at every commit boundary.
func workload(n int) []string {
	stmts := make([]string, 0, n)
	key := 0
	for len(stmts) < n {
		switch len(stmts) % 5 {
		case 3:
			if key > 1 {
				stmts = append(stmts, fmt.Sprintf(
					"UPDATE t SET v = 'patched-%d' WHERE id = %d", len(stmts), key/2))
				continue
			}
		case 4:
			if key > 2 {
				stmts = append(stmts, fmt.Sprintf("DELETE FROM t WHERE id = %d", key-1))
				continue
			}
		}
		stmts = append(stmts, fmt.Sprintf("INSERT INTO t VALUES (%d, 'row-%d')", key, key))
		key++
	}
	return stmts
}

// runWorkload executes stmts against a fresh WAL-enabled engine in dir,
// recording the canonical state and log length after every statement.
// The returned image is captured with the engine still open — the crash
// image — and the engine is closed afterwards only to release handles.
func runWorkload(dir string, stmts []string) (im *image, states []string, walEnds []int64, err error) {
	db, err := engine.Open(dir, engine.WithWAL(false), engine.WithPoolPages(1024))
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		db.Close()
		return nil, nil, nil, err
	}
	walPath := filepath.Join(dir, "t.tbl.wal")
	sizeOf := func() (int64, error) {
		st, err := os.Stat(walPath)
		if err != nil {
			return 0, err
		}
		return st.Size(), nil
	}
	// State 0: table created, log empty.
	s0, err := snapshotTable(db, "t")
	if err != nil {
		db.Close()
		return nil, nil, nil, err
	}
	states = append(states, s0)
	walEnds = append(walEnds, 0)
	for _, sql := range stmts {
		if _, err := db.Exec(sql); err != nil {
			db.Close()
			return nil, nil, nil, fmt.Errorf("torture: workload %q: %w", sql, err)
		}
		s, err := snapshotTable(db, "t")
		if err != nil {
			db.Close()
			return nil, nil, nil, err
		}
		sz, err := sizeOf()
		if err != nil {
			db.Close()
			return nil, nil, nil, err
		}
		states = append(states, s)
		walEnds = append(walEnds, sz)
	}
	im, err = capture(dir, "t.tbl.wal")
	db.Close() // release handles; the crash image is already in memory
	if err != nil {
		return nil, nil, nil, err
	}
	return im, states, walEnds, nil
}

// crashPoints enumerates the log offsets to torture: every byte of the
// first batch, every header and commit byte of later batches plus
// stride-sampled payload bytes, and all batch boundaries. The list is
// deduped, sorted, and (when max > 0) evenly downsampled with the batch
// boundaries always retained.
func crashPoints(walEnds []int64, stride int, max int) []int64 {
	total := walEnds[len(walEnds)-1]
	seen := make(map[int64]bool)
	add := func(off int64) {
		if off >= 0 && off <= total {
			seen[off] = true
		}
	}
	boundary := make(map[int64]bool)
	for i, end := range walEnds {
		add(end)
		boundary[end] = true
		if i == 0 {
			continue
		}
		start := walEnds[i-1]
		if i == 1 {
			// First batch: exhaustive, every byte.
			for off := start; off <= end; off++ {
				add(off)
			}
			continue
		}
		// Later batches: record headers, record boundaries, the commit
		// byte, and strided payload bytes.
		for rec := start; rec < end-1; rec += walRecordSize {
			for h := int64(0); h <= 9; h++ {
				add(rec + h)
			}
			add(rec + walRecordSize - 1)
		}
		add(end - 1) // commit byte missing
		for off := start; off < end; off += int64(stride) {
			add(off)
		}
	}
	points := make([]int64, 0, len(seen))
	for off := range seen {
		points = append(points, off)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	if max > 0 && len(points) > max {
		sampled := make([]int64, 0, max+len(walEnds))
		kept := make(map[int64]bool)
		for i := 0; i < max; i++ {
			off := points[i*len(points)/max]
			if !kept[off] {
				sampled = append(sampled, off)
				kept[off] = true
			}
		}
		for off := range boundary {
			if !kept[off] {
				sampled = append(sampled, off)
				kept[off] = true
			}
		}
		sort.Slice(sampled, func(i, j int) bool { return sampled[i] < sampled[j] })
		points = sampled
	}
	return points
}

// expectedIndex returns the statement index whose state a crash at log
// offset n must recover: the last commit boundary at or before n.
func expectedIndex(walEnds []int64, n int64) int {
	k := 0
	for i, end := range walEnds {
		if end <= n {
			k = i
		}
	}
	return k
}

// Run executes the WAL-commit crash enumeration: workload, capture,
// then truncate-and-reopen at every enumerated offset, checking that
// recovery lands exactly on a committed shadow state.
func Run(scratch string, cfg Config) (*Result, error) {
	cfg.fill()
	workDir := filepath.Join(scratch, "work")
	im, states, walEnds, err := runWorkload(workDir, workload(cfg.Statements))
	if err != nil {
		return nil, err
	}
	points := crashPoints(walEnds, cfg.Stride, cfg.MaxPoints)
	res := &Result{
		Points:     len(points),
		Statements: cfg.Statements,
		WALBytes:   walEnds[len(walEnds)-1],
	}
	cfg.Logf("torture: %d crash points over %d bytes of log (%d commits)",
		len(points), res.WALBytes, cfg.Statements)
	crashDir := filepath.Join(scratch, "crash")
	for i, off := range points {
		if len(res.Violations) >= maxViolations {
			break
		}
		if err := os.RemoveAll(crashDir); err != nil {
			return nil, err
		}
		if err := im.materialize(crashDir, off); err != nil {
			return nil, err
		}
		db, err := engine.Open(crashDir, engine.WithWAL(false), engine.WithPoolPages(1024))
		if err != nil {
			// Recovery must absorb any torn tail; failure to open is a
			// violation, not an environment error.
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: reopen failed: %v", off, err))
			continue
		}
		got, err := snapshotTable(db, "t")
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: post-recovery scan failed: %v", off, err))
			db.Close()
			continue
		}
		k := expectedIndex(walEnds, off)
		if got != states[k] {
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: recovered state != state after commit %d (got %d rows, want %d)",
					off, k, strings.Count(got, "\n")+1, strings.Count(states[k], "\n")+1))
		}
		if err := db.Close(); err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: close after recovery: %v", off, err))
		}
		// Recovery must be idempotent: a second crash-free reopen (the log
		// was checkpointed away by the first) lands on the same state.
		if i%64 == 0 {
			db2, err := engine.Open(crashDir, engine.WithWAL(false), engine.WithPoolPages(1024))
			if err != nil {
				res.Violations = append(res.Violations,
					fmt.Sprintf("offset %d: second reopen failed: %v", off, err))
				continue
			}
			again, err := snapshotTable(db2, "t")
			if err == nil && again != states[k] {
				err = fmt.Errorf("state drifted from commit %d", k)
			}
			if err != nil {
				res.Violations = append(res.Violations,
					fmt.Sprintf("offset %d: recovery not idempotent: %v", off, err))
			}
			db2.Close()
		}
	}
	return res, nil
}

// canonCounts canonicalizes an (ids, counts) vector for set comparison.
func canonCounts(ids []uint64, counts []float64) string {
	lines := make([]string, len(ids))
	for i, id := range ids {
		lines[i] = fmt.Sprintf("%d=%.6f", id, counts[i])
	}
	sort.Strings(lines)
	return strings.Join(lines, ",")
}

// quoteOf is a stand-in for the gate's pricing: any deterministic
// function of the count vector works for the atomicity check, because
// snapshot identity implies quote identity. Total count is the simplest.
func quoteOf(counts []float64) float64 {
	var sum float64
	for _, c := range counts {
		sum += c
	}
	return sum
}

// RunCountSnapshot tortures the SaveCounts path: two successive
// ReplaceAllCounts snapshots (B elementwise ≥ A, as decayed counts
// between saves are), a crash at every sampled offset of the second
// save's commit, and the assertion that recovery yields exactly
// snapshot A or exactly snapshot B — so the recovered quote is exactly
// quote(A) or quote(B), and since B dominates A, never more than the
// last acknowledged quote: charged-delay accounting stays monotone.
func RunCountSnapshot(scratch string, cfg Config) (*Result, error) {
	cfg.fill()
	workDir := filepath.Join(scratch, "work")
	db, err := engine.Open(workDir, engine.WithWAL(false), engine.WithPoolPages(1024))
	if err != nil {
		return nil, err
	}
	store, err := engine.NewCountStore(db, "t")
	if err != nil {
		db.Close()
		return nil, err
	}
	const nids = 40
	idsA := make([]uint64, nids)
	countsA := make([]float64, nids)
	countsB := make([]float64, nids)
	for i := range idsA {
		idsA[i] = uint64(i + 1)
		countsA[i] = float64(i%7) + 0.5
		countsB[i] = countsA[i] + float64(i%3) + 1 // B dominates A
	}
	if err := store.ReplaceAllCounts(idsA, countsA); err != nil {
		db.Close()
		return nil, err
	}
	walPath := filepath.Join(workDir, "__counts_t.tbl.wal")
	stA, err := os.Stat(walPath)
	if err != nil {
		db.Close()
		return nil, err
	}
	if err := store.ReplaceAllCounts(idsA, countsB); err != nil {
		db.Close()
		return nil, err
	}
	stB, err := os.Stat(walPath)
	if err != nil {
		db.Close()
		return nil, err
	}
	im, err := capture(workDir, "__counts_t.tbl.wal")
	db.Close()
	if err != nil {
		return nil, err
	}

	wantA := canonCounts(idsA, countsA)
	wantB := canonCounts(idsA, countsB)
	quoteA, quoteB := quoteOf(countsA), quoteOf(countsB)
	walEnds := []int64{0, stA.Size(), stB.Size()}
	points := crashPoints(walEnds, cfg.Stride, cfg.MaxPoints)
	res := &Result{Points: len(points), Statements: 2, WALBytes: stB.Size()}
	cfg.Logf("torture: count snapshot, %d crash points over %d bytes", len(points), stB.Size())
	crashDir := filepath.Join(scratch, "crash")
	for _, off := range points {
		if len(res.Violations) >= maxViolations {
			break
		}
		if err := os.RemoveAll(crashDir); err != nil {
			return nil, err
		}
		if err := im.materialize(crashDir, off); err != nil {
			return nil, err
		}
		db2, err := engine.Open(crashDir, engine.WithWAL(false), engine.WithPoolPages(1024))
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: reopen failed: %v", off, err))
			continue
		}
		store2, err := engine.NewCountStore(db2, "t")
		var ids []uint64
		var counts []float64
		if err == nil {
			ids, counts, err = store2.AllCounts()
		}
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: reading recovered counts: %v", off, err))
			db2.Close()
			continue
		}
		got := canonCounts(ids, counts)
		switch {
		case off < stA.Size() && got != "" && got != wantA:
			// Mid-first-save: empty (nothing committed) or exactly A.
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: torn first snapshot (%d ids)", off, len(ids)))
		case off >= stA.Size() && got != wantA && got != wantB:
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: recovered counts are neither snapshot A nor B (%d ids)", off, len(ids)))
		case quoteOf(counts) != quoteA && quoteOf(counts) != quoteB && got != "":
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: recovered quote %.3f not in {%.3f, %.3f}",
					off, quoteOf(counts), quoteA, quoteB))
		case quoteOf(counts) > quoteB:
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: recovered quote %.3f exceeds last acknowledged %.3f",
					off, quoteOf(counts), quoteB))
		}
		db2.Close()
	}
	return res, nil
}

// RunFaultSweep drives the wal.append failpoint instead of offline
// truncation: for each commit k of the workload, one run arms a torn
// write on the k-th append (the torn length cycling through header,
// mid-record, record-boundary, and near-full cuts), the engine observes
// the injected I/O error, the process "crashes" (files captured without
// a close), and recovery must land exactly on the state after commit
// k-1. This exercises the same invariant as Run but through the live
// write path, including the garbage tail the torn write leaves past the
// logical end of the log.
func RunFaultSweep(scratch string, cfg Config) (*Result, error) {
	cfg.fill()
	stmts := workload(cfg.Statements)
	// Every cut is strictly below the minimum batch size (one record plus
	// the commit byte), so the torn write is always genuinely partial: a
	// cut past the whole buffer would let the batch — commit marker
	// included — reach disk before the error, and recovery to state k
	// would then be correct too.
	tornCuts := []int{0, 1, 5, 9, walRecordSize / 2, walRecordSize - 1, walRecordSize}
	res := &Result{Statements: len(stmts)}
	for k := 1; k <= len(stmts); k++ {
		if len(res.Violations) >= maxViolations {
			break
		}
		dir := filepath.Join(scratch, fmt.Sprintf("sweep-%d", k))
		db, err := engine.Open(dir, engine.WithWAL(false), engine.WithPoolPages(1024))
		if err != nil {
			return nil, err
		}
		if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
			db.Close()
			return nil, err
		}
		var states []string
		s0, err := snapshotTable(db, "t")
		if err != nil {
			db.Close()
			return nil, err
		}
		states = append(states, s0)
		fault.Enable(fault.NewRegistry(uint64(k)).Add(fault.Rule{
			Site:      fault.WALAppend,
			Kind:      fault.Torn,
			TornBytes: tornCuts[k%len(tornCuts)],
			After:     uint64(k - 1),
			Count:     1,
		}))
		var faultErr error
		for j, sql := range stmts {
			_, err := db.Exec(sql)
			if err != nil {
				if j != k-1 {
					fault.Disable()
					db.Close()
					return nil, fmt.Errorf("torture: sweep %d: statement %d failed early: %w", k, j+1, err)
				}
				faultErr = err
				break
			}
			s, serr := snapshotTable(db, "t")
			if serr != nil {
				fault.Disable()
				db.Close()
				return nil, serr
			}
			states = append(states, s)
		}
		fault.Disable()
		if faultErr == nil {
			db.Close()
			return nil, fmt.Errorf("torture: sweep %d: torn fault never fired", k)
		}
		if !errors.Is(faultErr, storage.ErrIO) {
			res.Violations = append(res.Violations,
				fmt.Sprintf("sweep %d: injected fault not classified ErrIO: %v", k, faultErr))
		}
		// Crash: capture the files as they are; no flush, no close.
		im, err := capture(dir, "t.tbl.wal")
		db.Close() // release handles only — the image predates this
		if err != nil {
			return nil, err
		}
		crashDir := filepath.Join(scratch, fmt.Sprintf("sweep-%d-crash", k))
		if err := im.materialize(crashDir, int64(len(im.wal))); err != nil {
			return nil, err
		}
		db2, err := engine.Open(crashDir, engine.WithWAL(false), engine.WithPoolPages(1024))
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("sweep %d: reopen failed: %v", k, err))
			continue
		}
		got, err := snapshotTable(db2, "t")
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("sweep %d: post-recovery scan: %v", k, err))
		} else if got != states[k-1] {
			res.Violations = append(res.Violations,
				fmt.Sprintf("sweep %d: recovered state != state after commit %d", k, k-1))
		}
		db2.Close()
		res.Points++
		os.RemoveAll(dir)
		os.RemoveAll(crashDir)
	}
	return res, nil
}
