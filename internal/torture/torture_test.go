package torture

import (
	"os"
	"strconv"
	"testing"
)

// maxPoints resolves the crash-point budget: the TORTURE_POINTS env knob
// wins (0 = unbounded full enumeration), then -short gets a small
// sample, and the default exercises the acceptance floor of ≥1000
// points.
func maxPoints(t *testing.T, def int) int {
	t.Helper()
	if s := os.Getenv("TORTURE_POINTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			t.Fatalf("TORTURE_POINTS=%q is not a non-negative integer", s)
		}
		return n
	}
	if testing.Short() {
		return def / 5
	}
	return def
}

func report(t *testing.T, res *Result) {
	t.Helper()
	t.Logf("crash points exercised: %d (workload: %d commits, %d log bytes)",
		res.Points, res.Statements, res.WALBytes)
	for _, v := range res.Violations {
		t.Errorf("invariant violation: %s", v)
	}
}

// TestCrashEnumeration is the tentpole check: truncate-and-reopen at
// every enumerated byte offset of the commit log, with recovery landing
// exactly on a committed shadow state every time.
func TestCrashEnumeration(t *testing.T) {
	budget := maxPoints(t, 1100)
	res, err := Run(t.TempDir(), Config{MaxPoints: budget, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	report(t, res)
	if want := 1000; budget == 0 || budget >= want {
		if res.Points < want {
			t.Errorf("only %d crash points enumerated, want >= %d", res.Points, want)
		}
	} else if res.Points < budget/2 {
		t.Errorf("only %d crash points enumerated with budget %d", res.Points, budget)
	}
}

// TestCountSnapshotAtomicity: a crash anywhere inside a count-snapshot
// save recovers exactly snapshot A or snapshot B — never a torn mix —
// so the delay quote stays one of the two acknowledged prices.
func TestCountSnapshotAtomicity(t *testing.T) {
	res, err := RunCountSnapshot(t.TempDir(), Config{MaxPoints: maxPoints(t, 600), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	report(t, res)
	if res.Points < 50 {
		t.Errorf("only %d crash points enumerated", res.Points)
	}
}

// TestFaultSweep drives the same invariant through the live wal.append
// failpoint: each commit of the workload is torn once, in-process, and
// recovery lands on the previous commit's state.
func TestFaultSweep(t *testing.T) {
	res, err := RunFaultSweep(t.TempDir(), Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	report(t, res)
	if res.Points != res.Statements {
		t.Errorf("swept %d of %d commits", res.Points, res.Statements)
	}
}

// TestGroupCommitCrashEnumeration tortures crash points inside coalesced
// group-commit flushes: concurrent committers share one write + fsync,
// and a crash anywhere in the group must recover a committed prefix per
// participating commit — whole statements only, counted exactly by the
// complete commit batches before the crash point.
func TestGroupCommitCrashEnumeration(t *testing.T) {
	res, err := RunGroupCommit(t.TempDir(), Config{MaxPoints: maxPoints(t, 600), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	report(t, res)
	if res.Points < 50 {
		t.Errorf("only %d crash points enumerated", res.Points)
	}
}

// TestGroupFlushFaultSweep injects an I/O error in the group leader's
// flush (after the write, before the fsync) at every commit of the
// workload: the statement fails wrapping storage.ErrIO — the signal the
// shield latches degraded mode on — and recovery lands on the prior
// commit or, since the bytes did reach the file, the ambiguous commit
// itself; never a torn state.
func TestGroupFlushFaultSweep(t *testing.T) {
	res, err := RunGroupFlushFault(t.TempDir(), Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	report(t, res)
	if res.Points != res.Statements {
		t.Errorf("swept %d of %d commits", res.Points, res.Statements)
	}
}
