// cluster.go is the shard-kill torture harness: a partitioned,
// replicated (R=2) in-process cluster of chaos shards driven through a
// scripted sequence of fault windows — RPC error/latency/torn-body
// injection, whole-shard kills, a rebalance raced against a kill — with
// a deterministic read/write workload running throughout. The shadow
// state tracks, per key, the last ACKED write and the last ATTEMPTED
// write; the invariants checked after every recovery are the cluster's
// contract:
//
//   - no acked write is ever lost: a point read of an acked key returns
//     a value at least as new as the last ack (unacked attempts may or
//     may not have applied — both are legal);
//   - reads stay available around a single dead shard (R=2 failover),
//     with unavailability bounded, never total;
//   - detection sketches reconverge after a kill/revive cycle: once the
//     revived shard rejoins the exchange, a catalog-spanning scan
//     escalates on EVERY shard, including the one that missed it;
//   - a rebalance raced against a shard kill either completes or rolls
//     back cleanly — GET /admin/rebalance never reports a stuck
//     migration, and the data plane stays correct either way.
package torture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/vclock"
)

// ClusterConfig bounds a cluster torture run.
type ClusterConfig struct {
	// Shards is the cluster size (default 4).
	Shards int
	// Partitions is the partition-map size (default 16).
	Partitions int
	// Replication is the replica-group size (default 2).
	Replication int
	// SeedTuples is the initial dataset loaded through the router
	// (default 96).
	SeedTuples int
	// Ops is the per-phase workload length (default 40); fault and kill
	// phases run 2×Ops.
	Ops int
	// Seed drives the workload PRNG and the fault registry (default 1).
	Seed int64
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *ClusterConfig) fill() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Partitions <= 0 {
		c.Partitions = 16
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.SeedTuples <= 0 {
		c.SeedTuples = 96
	}
	if c.Ops <= 0 {
		c.Ops = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// ClusterResult reports what a cluster torture run covered.
type ClusterResult struct {
	Ops         int      // workload operations issued
	Reads       int      // point reads issued
	Writes      int      // write statements issued
	Acked       int      // writes acknowledged by the router
	Unavailable int      // operations answered 5xx during fault windows
	Kills       int      // shard kill/revive cycles
	Rebalances  int      // migrations attempted
	Violations  []string // invariant violations, empty on success
}

// keyShadow is the per-key shadow state: counters embedded in the cell
// value (`v<key>_<counter>`) totally order every write to the key.
// acked == -1 marks a key whose insert was never acknowledged — it may
// legally be absent.
type keyShadow struct {
	acked     int
	attempted int
}

// clusterHarness owns the cluster under torture and the shadow state.
type clusterHarness struct {
	cfg     ClusterConfig
	r       *cluster.Router
	h       http.Handler
	shields []*core.Shield
	chaos   []*cluster.Chaos
	names   []string
	rng     *rand.Rand

	state   map[int]*keyShadow
	keys    []int // acked keys, insertion order (update/read targets)
	nextKey int
	phase   string

	res *ClusterResult
}

// RunCluster builds the cluster under dir and drives the full scripted
// torture sequence. The returned result carries every invariant
// violation; err is reserved for harness setup/teardown failures.
func RunCluster(dir string, cfg ClusterConfig) (*ClusterResult, error) {
	cfg.fill()
	h := &clusterHarness{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		state: make(map[int]*keyShadow),
		res:   &ClusterResult{},
	}
	defer fault.Disable()

	// Build the shards: WAL-enabled engines under dir, each behind its
	// own shield and HTTP surface, each on a killable transport.
	det := &detect.Config{
		Policy: detect.EscalationPolicy{Grace: 0.60, Cap: 8, RampWidth: 0.20, Hysteresis: 0.10},
	}
	// Catalog sized so the finale's full-table scan clears the 60%
	// escalation grace with margin even before any insert lands.
	catalogN := cfg.SeedTuples + cfg.SeedTuples/2
	nodes := make([]*cluster.Node, cfg.Shards)
	h.shields = make([]*core.Shield, cfg.Shards)
	h.chaos = make([]*cluster.Chaos, cfg.Shards)
	h.names = make([]string, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		sub := filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
		db, err := engine.Open(sub)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		defer db.Close()
		if _, err := db.Exec(`CREATE TABLE items (id INT PRIMARY KEY, v TEXT)`); err != nil {
			return nil, err
		}
		shield, err := core.New(db, core.Config{
			N: catalogN, Alpha: 1, Beta: 1, Cap: time.Millisecond,
			Clock:                vclock.NewSimulated(time.Date(2004, 8, 1, 0, 0, 0, 0, time.UTC)),
			Detect:               det,
			RegistrationInterval: time.Second,
		})
		if err != nil {
			return nil, err
		}
		srv, err := server.New(shield)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("shard-%d", i)
		node, ch := cluster.NewChaosNode(name, srv.Handler())
		nodes[i] = node
		h.shields[i] = shield
		h.chaos[i] = ch
		h.names[i] = name
	}
	r, err := cluster.NewRouter(nodes, cluster.Config{
		Partitions:  cfg.Partitions,
		Replication: cfg.Replication,
		// The workload is one sequential client far above any realistic
		// per-principal rate; admission throttling is not under test.
		AdmitRate: 1e6, AdmitBurst: 1e6,
		ShardTimeout: 2 * time.Second,
		Clock:        vclock.NewSimulated(time.Date(2004, 8, 1, 0, 0, 0, 0, time.UTC)),
	})
	if err != nil {
		return nil, err
	}
	h.r = r
	h.h = r.Handler()

	// Seed tuples 1..SeedTuples through the router's own planner, so
	// each lands on its owner group. Counter 0 = the seed write.
	var sb strings.Builder
	sb.WriteString("INSERT INTO items VALUES ")
	for i := 1; i <= cfg.SeedTuples; i++ {
		if i > 1 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'v%d_0')", i, i)
	}
	if err := r.ExecScript(sb.String()); err != nil {
		return nil, fmt.Errorf("seeding: %w", err)
	}
	for i := 1; i <= cfg.SeedTuples; i++ {
		h.state[i] = &keyShadow{acked: 0, attempted: 0}
		h.keys = append(h.keys, i)
	}
	h.nextKey = cfg.SeedTuples + 1

	h.runScript()
	return h.res, nil
}

// violatef records one invariant violation, capped like the crash
// harness so a systemic failure doesn't drown the report.
func (h *clusterHarness) violatef(format string, args ...any) {
	if len(h.res.Violations) < maxViolations {
		h.res.Violations = append(h.res.Violations, fmt.Sprintf(format, args...))
	}
}

// runScript is the torture timeline. Every phase ends in a recovery +
// full shadow verification, so a violation pins to the phase that
// caused it.
func (h *clusterHarness) runScript() {
	cfg := h.cfg
	logf := cfg.Logf

	logf("phase 1: baseline workload (%d ops, no faults)", cfg.Ops)
	h.phase = "baseline"
	h.workload(cfg.Ops, false)
	h.verifyAll("baseline")

	logf("phase 2: RPC fault window (%d ops: latency/error/torn + fan-out errors)", 2*cfg.Ops)
	fault.Enable(fault.NewRegistry(uint64(cfg.Seed)).
		Add(fault.Rule{Site: fault.ClusterRPC, Kind: fault.Latency, P: 0.20, Latency: 200 * time.Microsecond}).
		Add(fault.Rule{Site: fault.ClusterRPC, Kind: fault.Error, P: 0.05}).
		Add(fault.Rule{Site: fault.ClusterRPC, Kind: fault.Torn, P: 0.03, TornBytes: 7}).
		Add(fault.Rule{Site: fault.ClusterFanout, Kind: fault.Error, P: 0.05}))
	h.phase = "rpc-faults"
	h.workload(2*cfg.Ops, true)
	fault.Disable()
	h.recover("rpc-faults")
	h.verifyAll("rpc-faults")

	k1 := h.rng.Intn(cfg.Shards)
	logf("phase 3: kill %s mid-workload (%d ops)", h.names[k1], 2*cfg.Ops)
	h.chaos[k1].Kill()
	h.res.Kills++
	h.phase = "kill"
	failed := h.workload(2*cfg.Ops, true)
	// R=2 failover: with one dead shard every partition keeps a live
	// replica, so unavailability must stay bounded, never total.
	if failed > cfg.Ops {
		h.violatef("kill %s: %d of %d ops failed — failover did not bound unavailability", h.names[k1], failed, 2*cfg.Ops)
	}
	h.chaos[k1].Revive()
	h.recover("kill-revive")
	h.verifyAll("kill-revive")

	k2 := (k1 + 1) % cfg.Shards
	logf("phase 4: rebalance raced against killing %s", h.names[k2])
	h.chaos[k2].Kill()
	h.res.Kills++
	h.rebalance(false)
	h.phase = "rebalance-mid-kill"
	h.workload(cfg.Ops, true)
	h.chaos[k2].Revive()
	h.recover("rebalance-mid-kill")
	h.verifyAll("rebalance-mid-kill")

	logf("phase 5: rebalance with the cluster healthy (must complete)")
	h.rebalance(true)
	h.phase = "rebalance-clean"
	h.workload(cfg.Ops, false)
	h.verifyAll("rebalance-clean")

	logf("phase 6: sketch reconvergence after revival")
	h.checkSketchConvergence()

	logf("cluster torture: %d ops (%d reads, %d writes, %d acked), %d kills, %d rebalances, %d unavailable, %d violations",
		h.res.Ops, h.res.Reads, h.res.Writes, h.res.Acked,
		h.res.Kills, h.res.Rebalances, h.res.Unavailable, len(h.res.Violations))
}

// query drives one request through the router as the given principal.
func (h *clusterHarness) query(principal, sql string) (int, server.QueryResponse, string) {
	body, _ := json.Marshal(server.QueryRequest{SQL: sql})
	req := httptest.NewRequest(http.MethodPost, "http://router/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Identity", principal)
	rec := httptest.NewRecorder()
	h.h.ServeHTTP(rec, req)
	var qr server.QueryResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
			// A 200 whose body dies mid-stream (the cluster.rpc torn
			// fault relayed through the router, exactly what a client
			// sees when the connection drops mid-reply): the outcome is
			// unknowable, which for a write means ack-unknown — report
			// it as the transport failure it is, not as a decoded zero.
			return 0, qr, rec.Body.String()
		}
	}
	return rec.Code, qr, rec.Body.String()
}

// post drives one admin POST through the router.
func (h *clusterHarness) post(path string, payload any) (int, string) {
	body, _ := json.Marshal(payload)
	req := httptest.NewRequest(http.MethodPost, "http://router"+path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// transientStatus reports whether a failure is a legal transient during
// a fault window: unavailability (5xx), admission (429), a
// partition-map race (409), or a reply torn below HTTP (code 0).
// Anything else — 400s especially — is a router bug, faults or not.
func transientStatus(code int) bool {
	return code >= 500 || code < 100 ||
		code == http.StatusTooManyRequests || code == http.StatusConflict
}

// workload runs n deterministic operations (50% point reads, 30%
// updates, 20% inserts) and returns how many failed with a transient
// status. lenient permits transients; outside fault windows every
// operation must succeed.
func (h *clusterHarness) workload(n int, lenient bool) (failed int) {
	for i := 0; i < n; i++ {
		h.res.Ops++
		principal := fmt.Sprintf("client-%d", h.rng.Intn(4))
		switch roll := h.rng.Float64(); {
		case roll < 0.50:
			if !h.pointRead(principal, h.keys[h.rng.Intn(len(h.keys))], lenient, "workload") {
				failed++
			}
		case roll < 0.80:
			if !h.update(principal, h.keys[h.rng.Intn(len(h.keys))], lenient) {
				failed++
			}
		default:
			if !h.insert(principal, lenient) {
				failed++
			}
		}
	}
	return failed
}

// pointRead reads one key through the router and checks the value
// against the shadow: at least as new as the last ack, no newer than
// the last attempt. Returns false on a (legal, counted) transient.
func (h *clusterHarness) pointRead(principal string, key int, lenient bool, phase string) bool {
	h.res.Reads++
	code, qr, body := h.query(principal, fmt.Sprintf(`SELECT v FROM items WHERE id = %d`, key))
	if code != http.StatusOK {
		if !lenient || !transientStatus(code) {
			h.violatef("%s: read key %d: HTTP %d: %s", phase, key, code, body)
		}
		h.res.Unavailable++
		return false
	}
	st := h.state[key]
	if len(qr.Rows) == 0 {
		if st.acked >= 0 {
			h.violatef("%s: acked key %d missing (acked counter %d)", phase, key, st.acked)
		}
		return true
	}
	c, err := parseShadowValue(qr.Rows[0][0], key)
	if err != nil {
		h.violatef("%s: key %d: %v", phase, key, err)
		return true
	}
	if st.acked >= 0 && c < st.acked {
		h.violatef("%s: key %d read counter %d, older than last ack %d — acked write lost", phase, key, c, st.acked)
	}
	if c > st.attempted {
		h.violatef("%s: key %d read counter %d beyond last attempt %d", phase, key, c, st.attempted)
	}
	return true
}

// update attempts the next write to an existing acked key.
func (h *clusterHarness) update(principal string, key int, lenient bool) bool {
	st := h.state[key]
	h.res.Writes++
	c := st.attempted + 1
	st.attempted = c
	code, qr, body := h.query(principal,
		fmt.Sprintf(`UPDATE items SET v = 'v%d_%d' WHERE id = %d`, key, c, key))
	switch {
	case code == http.StatusOK:
		if qr.Affected == 0 {
			// The router acked an update that matched no row on any
			// readable replica: the tuple is gone.
			h.violatef("%s: update key %d acked with 0 rows affected — acked tuple lost", h.phase, key)
			return true
		}
		st.acked = c
		h.res.Acked++
		return true
	case lenient && transientStatus(code):
		h.res.Unavailable++
		return false
	default:
		h.violatef("%s: update key %d: HTTP %d: %s", h.phase, key, code, body)
		return false
	}
}

// insert attempts a brand-new key; an unacked insert is allowed to be
// absent forever (acked = -1).
func (h *clusterHarness) insert(principal string, lenient bool) bool {
	key := h.nextKey
	h.nextKey++
	h.res.Writes++
	code, _, body := h.query(principal,
		fmt.Sprintf(`INSERT INTO items VALUES (%d, 'v%d_1')`, key, key))
	switch {
	case code == http.StatusOK:
		h.state[key] = &keyShadow{acked: 1, attempted: 1}
		h.keys = append(h.keys, key)
		h.res.Acked++
		return true
	case lenient && transientStatus(code):
		h.state[key] = &keyShadow{acked: -1, attempted: 1}
		h.res.Unavailable++
		return false
	default:
		h.violatef("%s: insert key %d: HTTP %d: %s", h.phase, key, code, body)
		return false
	}
}

// parseShadowValue decodes `v<key>_<counter>` and checks it belongs to
// the key it was read from — a cross-key value means partition routing
// delivered someone else's tuple.
func parseShadowValue(v string, key int) (int, error) {
	rest, ok := strings.CutPrefix(v, fmt.Sprintf("v%d_", key))
	if !ok {
		return 0, fmt.Errorf("value %q does not belong to key %d", v, key)
	}
	c, err := strconv.Atoi(rest)
	if err != nil {
		return 0, fmt.Errorf("value %q: bad counter: %v", v, err)
	}
	return c, nil
}

// recover brings the cluster back to fully healthy after a fault
// window: an exchange round probes down peers back into resync, then
// every degraded peer is caught up over /admin/resync (the automated
// CatchUpPeer path), and /healthz must agree everything is ok.
func (h *clusterHarness) recover(phase string) {
	// Probe phase of the exchange revives reachable down peers into the
	// writes-only resync latch; the errors a round may return while
	// peers are still latched are expected, so only the post-resync
	// round is asserted.
	h.r.ExchangeNow()
	// Catch-up can legitimately refuse a peer whose partition has no
	// readable source until a fresher sibling is resynced first (a 409
	// naming the blocker), so retry passes resolve the ordering; only a
	// peer still degraded after every pass is a violation.
	var lastRefusal string
	for attempt := 0; attempt <= h.cfg.Shards; attempt++ {
		degraded := h.degradedPeers()
		if len(degraded) == 0 {
			break
		}
		for _, name := range degraded {
			if code, body := h.post("/admin/resync", map[string]string{"name": name}); code != http.StatusOK {
				lastRefusal = fmt.Sprintf("resync %s: HTTP %d: %s", name, code, body)
			}
		}
	}
	if err := h.r.ExchangeNow(); err != nil {
		h.violatef("%s: exchange after recovery: %v", phase, err)
	}
	if degraded := h.degradedPeers(); len(degraded) > 0 {
		h.violatef("%s: peers still degraded after resync: %v (last refusal: %s)", phase, degraded, lastRefusal)
	}
}

// degradedPeers lists peers /healthz reports as anything but "ok".
func (h *clusterHarness) degradedPeers() []string {
	req := httptest.NewRequest(http.MethodGet, "http://router/healthz", nil)
	rec := httptest.NewRecorder()
	h.h.ServeHTTP(rec, req)
	var hr cluster.HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		h.violatef("healthz: %v", err)
		return nil
	}
	var out []string
	for _, p := range hr.Peers {
		if p.Status != "ok" {
			out = append(out, p.Name)
		}
	}
	return out
}

// verifyAll replays a point read of EVERY shadow key against a healthy
// cluster: the strictest form of "no acked write lost".
func (h *clusterHarness) verifyAll(phase string) {
	keys := make([]int, 0, len(h.state))
	for k := range h.state {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		h.pointRead("verifier", k, false, "verify-"+phase)
	}
}

// rebalance proposes the next-version map with every third partition's
// replica group rotated one node to the right, waits for the migration
// synchronously, and checks the outcome. mustComplete asserts the
// success path (healthy cluster); otherwise a clean rollback is an
// equally correct answer to a mid-migration kill.
func (h *clusterHarness) rebalance(mustComplete bool) {
	h.res.Rebalances++
	pm := h.r.CurrentPartitionMap()
	if pm == nil {
		h.violatef("rebalance: partitioning not enabled")
		return
	}
	replicas := make([][]string, len(pm.Owners))
	for p := range pm.Owners {
		g := pm.GroupOf(p)
		names := make([]string, len(g))
		for i, n := range g {
			if p%3 == 0 {
				n = (n + 1) % h.cfg.Shards
			}
			names[i] = h.names[n]
		}
		replicas[p] = names
	}
	target := pm.Version + 1
	code, body := h.post("/admin/rebalance", cluster.PartitionMapUpdate{
		Version: target, Replicas: replicas, Wait: true,
	})
	switch code {
	case http.StatusOK:
	case http.StatusBadGateway:
		if mustComplete {
			h.violatef("rebalance to v%d rolled back on a healthy cluster: %s", target, body)
		}
	default:
		h.violatef("rebalance to v%d: HTTP %d: %s", target, code, body)
		return
	}

	// The migration must have settled into a terminal state — "done"
	// with the map installed, or "rolled_back" with the old map intact.
	// A stuck "running" after a synchronous call is a harness-visible
	// deadlock.
	req := httptest.NewRequest(http.MethodGet, "http://router/admin/rebalance", nil)
	rec := httptest.NewRecorder()
	h.h.ServeHTTP(rec, req)
	var prog cluster.MigrationProgress
	if err := json.Unmarshal(rec.Body.Bytes(), &prog); err != nil {
		h.violatef("rebalance progress: %v", err)
		return
	}
	switch {
	case prog.Active || prog.State == "running":
		h.violatef("rebalance to v%d still running after synchronous call", target)
	case prog.State == "done":
		if v := h.r.CurrentPartitionMap().Version; v != target {
			h.violatef("rebalance done but map at v%d, want v%d", v, target)
		}
	case prog.State == "rolled_back":
		if mustComplete {
			h.violatef("rebalance to v%d rolled back on a healthy cluster: %s", target, prog.Error)
		}
		if v := h.r.CurrentPartitionMap().Version; v != pm.Version {
			h.violatef("rolled-back rebalance left map at v%d, want v%d", v, pm.Version)
		}
	default:
		h.violatef("rebalance to v%d: unexpected state %q", target, prog.State)
	}
	h.cfg.Logf("rebalance to v%d: %s (%d partitions, %d tuples copied)",
		target, prog.State, prog.PartitionsMoved, prog.TuplesCopied)
}

// checkSketchConvergence runs a catalog-spanning scan through the
// router — each covering shard observes only its slice, all well under
// the 60% escalation grace — then one exchange round, after which
// every shard, including any that was killed and revived earlier, must
// price the scanner above 1×: the union view survived the outage.
func (h *clusterHarness) checkSketchConvergence() {
	for i := 0; i < 2; i++ {
		if code, _, body := h.query("scanner", `SELECT * FROM items`); code != http.StatusOK {
			h.violatef("convergence scan: HTTP %d: %s", code, body)
			return
		}
	}
	if err := h.r.ExchangeNow(); err != nil {
		h.violatef("convergence exchange: %v", err)
		return
	}
	for i, sh := range h.shields {
		if m := sh.Detector().Multiplier("scanner"); m <= 1 {
			h.violatef("shard %d prices the full-catalog scanner at %gx after exchange — sketches did not reconverge", i, m)
		}
	}
}
