package torture

import "testing"

// TestClusterTorture drives the scripted shard-kill sequence: RPC
// faults, a mid-workload kill with R=2 failover, a rebalance raced
// against a kill, a clean rebalance, and the sketch-reconvergence
// finale — asserting no acked write is ever lost across any of it.
func TestClusterTorture(t *testing.T) {
	cfg := ClusterConfig{Logf: t.Logf}
	if testing.Short() {
		cfg.SeedTuples = 48
		cfg.Ops = 16
	}
	res, err := RunCluster(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.Acked == 0 {
		t.Error("no write was ever acked; the harness exercised nothing")
	}
	if res.Kills != 2 || res.Rebalances != 2 {
		t.Errorf("kills=%d rebalances=%d, want 2 and 2", res.Kills, res.Rebalances)
	}
	t.Logf("cluster torture: %d ops (%d reads, %d writes, %d acked), %d unavailable, %d violations",
		res.Ops, res.Reads, res.Writes, res.Acked, res.Unavailable, len(res.Violations))
}
