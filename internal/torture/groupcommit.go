package torture

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/storage"
)

// batchEnds parses the commit-batch boundaries of a clean (untorn) log:
// offsets just past each commit marker, with 0 prepended. The layout is
// the one Replay consumes — page records of walRecordSize bytes, then a
// one-byte commit marker per batch — so a coalesced group flush still
// yields one boundary per participating commit.
func batchEnds(wal []byte) ([]int64, error) {
	ends := []int64{0}
	off := int64(0)
	for off < int64(len(wal)) {
		switch wal[off] {
		case 1: // page record
			off += walRecordSize
		case 2: // commit marker
			off++
			ends = append(ends, off)
		default:
			return nil, fmt.Errorf("torture: unknown WAL record kind %d at offset %d", wal[off], off)
		}
	}
	if off != int64(len(wal)) {
		return nil, fmt.Errorf("torture: trailing garbage in captured log")
	}
	return ends, nil
}

// RunGroupCommit tortures the group-commit path: concurrent bursts of
// multi-row INSERT statements commit through a wide accumulation window
// against a synced WAL (fsync latency piles committers up), so flushes
// carry several coalesced commit batches. The captured log is then
// truncated at every enumerated offset — including offsets strictly
// inside a coalesced group write — and recovery must expose a committed
// prefix per participating commit:
//
//   - every recovered statement is whole (all of its rows or none);
//   - the number of recovered statements equals the number of complete
//     commit batches before the crash point, even mid-group;
//   - recovered sets grow monotonically with the crash offset;
//   - the full log recovers every statement.
//
// The run retries bursts until the WAL stats prove at least one flush
// carried ≥2 commits, so the enumeration demonstrably crosses group
// boundaries rather than degenerating to the solo-leader path.
func RunGroupCommit(scratch string, cfg Config) (*Result, error) {
	cfg.fill()
	const (
		writers   = 4
		rowsEach  = 3
		maxRounds = 40
		minStmts  = 24
	)
	workDir := filepath.Join(scratch, "work")
	db, err := engine.Open(workDir,
		engine.WithWAL(true), // synced: fsync latency is what piles commits up
		engine.WithPoolPages(1024),
		engine.WithWALGroupWindow(2*time.Millisecond))
	if err != nil {
		return nil, err
	}
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		db.Close()
		return nil, err
	}

	stmtRows := make(map[string]int) // tag -> rows the statement inserted
	stmts := 0
	coalesced := false
	for round := 0; round < maxRounds && (!coalesced || stmts < minStmts); round++ {
		var wg sync.WaitGroup
		start := make(chan struct{})
		errs := make([]error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				tag := fmt.Sprintf("s%d", round*writers+w)
				var sb strings.Builder
				sb.WriteString("INSERT INTO t VALUES ")
				for i := 0; i < rowsEach; i++ {
					if i > 0 {
						sb.WriteString(", ")
					}
					fmt.Fprintf(&sb, "(%d, '%s')", (round*writers+w)*rowsEach+i, tag)
				}
				_, errs[w] = db.Exec(sb.String())
			}(w)
		}
		close(start) // barrier: all writers fire together
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				db.Close()
				return nil, fmt.Errorf("torture: group burst round %d writer %d: %w", round, w, err)
			}
			stmtRows[fmt.Sprintf("s%d", round*writers+w)] = rowsEach
			stmts++
		}
		commits, _, fsyncs, _ := db.WALGroupStats()
		coalesced = commits > fsyncs
	}
	if !coalesced {
		db.Close()
		return nil, errors.New("torture: group commit never coalesced ≥2 commits into one flush")
	}

	im, err := capture(workDir, "t.tbl.wal")
	db.Close()
	if err != nil {
		return nil, err
	}
	ends, err := batchEnds(im.wal)
	if err != nil {
		return nil, err
	}
	if len(ends)-1 != stmts {
		return nil, fmt.Errorf("torture: %d commit batches on disk for %d statements", len(ends)-1, stmts)
	}

	points := crashPoints(ends, cfg.Stride, cfg.MaxPoints)
	res := &Result{
		Points:     len(points),
		Statements: stmts,
		WALBytes:   ends[len(ends)-1],
	}
	cfg.Logf("torture: group commit, %d crash points over %d bytes (%d commits, coalesced flushes confirmed)",
		len(points), res.WALBytes, stmts)

	crashDir := filepath.Join(scratch, "crash")
	prev := make(map[string]bool) // tags recovered at the previous (smaller) offset
	for _, off := range points {
		if len(res.Violations) >= maxViolations {
			break
		}
		if err := os.RemoveAll(crashDir); err != nil {
			return nil, err
		}
		if err := im.materialize(crashDir, off); err != nil {
			return nil, err
		}
		db2, err := engine.Open(crashDir, engine.WithWAL(false), engine.WithPoolPages(1024))
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: reopen failed: %v", off, err))
			continue
		}
		rows, err := db2.Exec("SELECT v FROM t")
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: post-recovery scan failed: %v", off, err))
			db2.Close()
			continue
		}
		got := make(map[string]int)
		for _, row := range rows.Rows {
			got[row[0].Str]++
		}
		for tag, n := range got {
			if want, ok := stmtRows[tag]; !ok {
				res.Violations = append(res.Violations,
					fmt.Sprintf("offset %d: recovered unknown statement tag %q", off, tag))
			} else if n != want {
				res.Violations = append(res.Violations,
					fmt.Sprintf("offset %d: statement %q torn: %d of %d rows", off, tag, n, want))
			}
		}
		if k := expectedIndex(ends, off); len(got) != k {
			res.Violations = append(res.Violations,
				fmt.Sprintf("offset %d: %d statements recovered, want %d complete commit batches",
					off, len(got), k))
		}
		for tag := range prev {
			if _, ok := got[tag]; !ok {
				res.Violations = append(res.Violations,
					fmt.Sprintf("offset %d: statement %q recovered at a smaller offset but lost here", off, tag))
			}
		}
		prev = make(map[string]bool, len(got))
		for tag := range got {
			prev[tag] = true
		}
		db2.Close()
	}
	if len(prev) != stmts && len(res.Violations) < maxViolations && len(points) > 0 &&
		points[len(points)-1] == ends[len(ends)-1] {
		res.Violations = append(res.Violations,
			fmt.Sprintf("full log recovered %d of %d statements", len(prev), stmts))
	}
	return res, nil
}

// RunGroupFlushFault drives the wal.groupflush failpoint: for each
// commit k of the sequential workload, one run injects an I/O error in
// the group leader's flush after the coalesced write hits the file but
// before the fsync. The statement must fail wrapping storage.ErrIO (the
// signal the shield latches degraded mode on), and recovery from the
// captured crash image must land on state k-1 or state k — the write
// reached the file before the "fsync" died, so the commit's durability
// is genuinely ambiguous, exactly like a real power cut mid-fsync; what
// is never allowed is a torn or mixed state.
func RunGroupFlushFault(scratch string, cfg Config) (*Result, error) {
	cfg.fill()
	stmts := workload(cfg.Statements)
	// Shadow states from a clean run: the faulted run can never record
	// state k (statement k fails), but recovery may legitimately land on
	// it when the group write reached the file before the fsync died.
	shadowDir := filepath.Join(scratch, "shadow")
	_, shadow, _, err := runWorkload(shadowDir, stmts)
	if err != nil {
		return nil, err
	}
	res := &Result{Statements: len(stmts)}
	for k := 1; k <= len(stmts); k++ {
		if len(res.Violations) >= maxViolations {
			break
		}
		dir := filepath.Join(scratch, fmt.Sprintf("gflush-%d", k))
		db, err := engine.Open(dir, engine.WithWAL(false), engine.WithPoolPages(1024))
		if err != nil {
			return nil, err
		}
		if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
			db.Close()
			return nil, err
		}
		fault.Enable(fault.NewRegistry(uint64(k)).Add(fault.Rule{
			Site:  fault.WALGroupFlush,
			Kind:  fault.Error,
			After: uint64(k - 1),
			Count: 1,
		}))
		var faultErr error
		for j, sql := range stmts {
			_, err := db.Exec(sql)
			if err != nil {
				if j != k-1 {
					fault.Disable()
					db.Close()
					return nil, fmt.Errorf("torture: gflush %d: statement %d failed early: %w", k, j+1, err)
				}
				faultErr = err
				break
			}
			s, serr := snapshotTable(db, "t")
			if serr != nil {
				fault.Disable()
				db.Close()
				return nil, serr
			}
			if s != shadow[j+1] {
				fault.Disable()
				db.Close()
				return nil, fmt.Errorf("torture: gflush %d: live state diverged from shadow at commit %d", k, j+1)
			}
		}
		fault.Disable()
		if faultErr == nil {
			db.Close()
			return nil, fmt.Errorf("torture: gflush %d: fault never fired", k)
		}
		if !errors.Is(faultErr, storage.ErrIO) {
			res.Violations = append(res.Violations,
				fmt.Sprintf("gflush %d: injected fault not classified ErrIO: %v", k, faultErr))
		}
		im, err := capture(dir, "t.tbl.wal")
		db.Close()
		if err != nil {
			return nil, err
		}
		crashDir := filepath.Join(scratch, fmt.Sprintf("gflush-%d-crash", k))
		if err := im.materialize(crashDir, int64(len(im.wal))); err != nil {
			return nil, err
		}
		db2, err := engine.Open(crashDir, engine.WithWAL(false), engine.WithPoolPages(1024))
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("gflush %d: reopen failed: %v", k, err))
			continue
		}
		got, err := snapshotTable(db2, "t")
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("gflush %d: post-recovery scan: %v", k, err))
		} else if got != shadow[k-1] && got != shadow[k] {
			res.Violations = append(res.Violations,
				fmt.Sprintf("gflush %d: recovered state is neither commit %d nor commit %d", k, k-1, k))
		}
		db2.Close()
		res.Points++
		os.RemoveAll(dir)
		os.RemoveAll(crashDir)
	}
	return res, nil
}
