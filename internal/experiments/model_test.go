package experiments

import (
	"strconv"
	"testing"
)

func TestModelValidationAgreement(t *testing.T) {
	p := DefaultModelParams()
	p.N = 5000
	p.Requests = 200_000
	tab, err := ModelValidation(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var prevRatio float64
	for _, row := range tab.Rows {
		analyticTotal := mustFloat(t, row[1])
		measuredTotal := mustFloat(t, row[2])
		if relDiff(analyticTotal, measuredTotal) > 0.05 {
			t.Errorf("α=%s: dtotal disagreement %s vs %s", row[0], row[1], row[2])
		}
		analyticRatio := mustFloat(t, row[3])
		measuredRatio := mustFloat(t, row[4])
		// Median ranks differ slightly between ideal and learned
		// distributions; a factor-3 band still separates the α regimes,
		// which differ by orders of magnitude.
		if measuredRatio < analyticRatio/3 || measuredRatio > analyticRatio*3 {
			t.Errorf("α=%s: ratio disagreement %s vs %s", row[0], row[3], row[4])
		}
		// The paper's central claim: the ratio explodes as α grows.
		if analyticRatio <= prevRatio*10 {
			t.Errorf("ratio not growing strongly: %v after %v", analyticRatio, prevRatio)
		}
		prevRatio = analyticRatio
	}
}

func TestModelValidationParams(t *testing.T) {
	p := DefaultModelParams()
	p.N = 0
	if _, err := ModelValidation(p); err == nil {
		t.Fatal("bad params accepted")
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d / m
}
