package experiments

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/counters"
	"repro/internal/delay"
	"repro/internal/zipf"
)

// DynamicParams configures the §4.3 dynamic-data simulations (Figs 4–6):
// a relation under uniform queries and Zipf-skewed updates, with delays
// assigned by update rate.
type DynamicParams struct {
	// N is the relation size (paper: 100,000 tuples).
	N int
	// Skews are the update Zipf parameters swept on the x axis.
	Skews []float64
	// Cap is dmax (paper behaviour: "as much as ten seconds per tuple").
	Cap time.Duration
	// C is Eq 9's constant, held fixed across skews.
	C float64
	// TotalUpdateRate is the aggregate update traffic in updates/second,
	// distributed across tuples by the skew.
	TotalUpdateRate float64
	Seed            int64
}

// DefaultDynamicParams returns the paper-scale configuration.
func DefaultDynamicParams() DynamicParams {
	return DynamicParams{
		N:               100_000,
		Skews:           []float64{0.25, 0.50, 0.75, 1.00, 1.25, 1.50, 1.75, 2.00, 2.25, 2.50},
		Cap:             10 * time.Second,
		C:               8,
		TotalUpdateRate: 1000,
		Seed:            43,
	}
}

// DynamicRow is one skew point of the §4.3 sweep, feeding Figs 4, 5,
// and 6 simultaneously (the paper plots the same experiment three ways).
type DynamicRow struct {
	Skew           float64
	MedianDelay    time.Duration // Fig 4
	AdversaryDelay time.Duration // Fig 5
	StaleFraction  float64       // Fig 6
	PredictedStale float64       // Eq 12, for comparison
}

// DynamicSweep runs the §4.3 simulation at every skew and returns the
// three figures' tables plus raw rows.
//
// Methodology per skew α:
//   - update rates: tuple of update-rank r receives TotalUpdateRate ·
//     Zipf_α(r); rmax is the rank-1 rate.
//   - delays: d(r) = (C/N)·r^α/rmax, capped (Eq 9).
//   - Fig 4: queries are uniform, so the median legitimate query hits the
//     median rank N/2.
//   - Fig 5: the adversary extracts all N tuples; total delay Eq 6-style.
//   - Fig 6: extraction is simulated against the Poisson update processes
//     and the extracted snapshot's stale fraction measured.
func DynamicSweep(p DynamicParams) (fig4, fig5, fig6 *Table, rows []DynamicRow, err error) {
	if p.N < 2 {
		return nil, nil, nil, nil, fmt.Errorf("experiments: dynamic N = %d", p.N)
	}
	fig4 = &Table{
		Title:  "Fig 4. Median User Delay – Assigned by Update (log y in paper)",
		Header: []string{"Skew (Zipf Parameter)", "Median Delay (seconds)"},
	}
	fig5 = &Table{
		Title:  "Fig 5. Total Delay for Adversary – Assigned by Update (log y in paper)",
		Header: []string{"Skew (Zipf Parameter)", "Adversary Delay (seconds)"},
	}
	fig6 = &Table{
		Title:  "Fig 6. Fraction of Stale Data – Assigned by Update",
		Header: []string{"Skew (Zipf Parameter)", "Staleness (%)", "Eq 12 Prediction (%)"},
	}
	for _, alpha := range p.Skews {
		dist, derr := zipf.New(p.N, alpha)
		if derr != nil {
			return nil, nil, nil, nil, derr
		}
		rmax := p.TotalUpdateRate * dist.Prob(1)
		tracker, terr := counters.NewDecayed(1)
		if terr != nil {
			return nil, nil, nil, nil, terr
		}
		pol, perr := delay.NewUpdateRate(delay.UpdateRateConfig{
			N: p.N, Alpha: alpha, C: p.C, Cap: p.Cap, Rmax: rmax,
		}, tracker)
		if perr != nil {
			return nil, nil, nil, nil, perr
		}

		// Fig 4: uniform queries ⇒ median query hits the median rank.
		median := pol.DelayForRank(p.N / 2)

		// Fig 5 + Fig 6: simulated extraction under change.
		rep, aerr := adversary.ExtractUnderChange(pol, p.N, alpha, p.TotalUpdateRate, p.Seed)
		if aerr != nil {
			return nil, nil, nil, nil, aerr
		}

		row := DynamicRow{
			Skew:           alpha,
			MedianDelay:    median,
			AdversaryDelay: rep.TotalDelay,
			StaleFraction:  rep.StaleFraction,
			PredictedStale: rep.PredictedStale,
		}
		rows = append(rows, row)
		fig4.Rows = append(fig4.Rows, []string{
			fmt.Sprintf("%.2f", alpha), fmt.Sprintf("%.4f", median.Seconds()),
		})
		fig5.Rows = append(fig5.Rows, []string{
			fmt.Sprintf("%.2f", alpha), fmt.Sprintf("%.0f", rep.TotalDelay.Seconds()),
		})
		fig6.Rows = append(fig6.Rows, []string{
			fmt.Sprintf("%.2f", alpha),
			fmt.Sprintf("%.0f%%", 100*rep.StaleFraction),
			fmt.Sprintf("%.0f%%", 100*minf(rep.PredictedStale, 1)),
		})
	}
	var medSeries, advSeries, staleSeries []float64
	for _, r := range rows {
		medSeries = append(medSeries, r.MedianDelay.Seconds())
		advSeries = append(advSeries, r.AdversaryDelay.Seconds())
		staleSeries = append(staleSeries, r.StaleFraction)
	}
	addBarColumn(fig4, medSeries, 30, true)
	addBarColumn(fig5, advSeries, 30, true)
	addBarColumn(fig6, staleSeries, 30, false)

	note := fmt.Sprintf("N=%d, c=%g, cap=%v, total update rate %g/s", p.N, p.C, p.Cap, p.TotalUpdateRate)
	fig4.Notes = append(fig4.Notes, note, "paper shape: rising with skew, plateauing at the cap")
	fig5.Notes = append(fig5.Notes, note, "paper shape: 10^1 → 10^7 seconds as skew rises")
	fig6.Notes = append(fig6.Notes, note, "paper shape: ≈100% at modest skew, falling once updates concentrate")
	return fig4, fig5, fig6, rows, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
