package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/delay"
	"repro/internal/detect"
	"repro/internal/trace"
	"repro/internal/zipf"
)

// ShardedSybilParams configures the clustered rerun of the Sybil
// detection experiment: the same coordinated k-identity extraction, but
// against Shards detector instances, one per cluster node, with the
// adversary deliberately rotating every identity's queries across
// shards so no single detector sees enough local coverage to escalate.
// Anti-entropy — the periodic per-principal sketch exchange the cluster
// router runs — is the countermeasure under test.
type ShardedSybilParams struct {
	SybilDetectionParams
	// Shards is the number of detector instances (cluster nodes).
	Shards int
	// ExchangeEvery is how many lockstep batch rounds pass between
	// anti-entropy exchanges in the on mode.
	ExchangeEvery int
	// ExportFloor is the minimum local coverage a principal needs for
	// its sketches to be gossiped (the router's -antientropy-floor).
	ExportFloor float64
}

// DefaultShardedSybilParams returns the paper-scale configuration: the
// single-node defaults spread over a 4-shard cluster exchanging every
// round.
func DefaultShardedSybilParams() ShardedSybilParams {
	return ShardedSybilParams{
		SybilDetectionParams: DefaultSybilDetectionParams(),
		Shards:               4,
		ExchangeEvery:        1,
		ExportFloor:          0.01,
	}
}

// ShardedSybilResult carries the measured quantities for assertions.
type ShardedSybilResult struct {
	Table *Table
	// BaselineWall is the single-identity, detection-off extraction time.
	BaselineWall time.Duration
	// OffWall and OnWall are the coalition wall times with anti-entropy
	// off and on, indexed like Params.Ks.
	OffWall []time.Duration
	OnWall  []time.Duration
	// OffUnionCoverage and OnUnionCoverage are one shard's best estimate
	// of the coalition's catalog share after each run — without exchange
	// a shard only ever sees its 1/Shards slice.
	OffUnionCoverage []float64
	OnUnionCoverage  []float64
	// LegitMedianOff/On are legitimate per-query median delays without
	// and with detection+exchange in the loop.
	LegitMedianOff time.Duration
	LegitMedianOn  time.Duration
}

// ShardedSybilDetection reruns the Sybil detection analysis across a
// sharded cluster. Each of k coordinated identities walks its share of
// the catalog plus the shared verification sample, and every query
// rotates to a different shard — the evasion the paper's single-node
// detector cannot see, because each shard observes only ~1/Shards of
// any identity's stream and stays under the escalation grace. With
// anti-entropy on, shards exchange per-principal HLL/MinHash deltas
// every ExchangeEvery rounds; the merged sketches restore each shard's
// view of every identity's *global* coverage, and the surcharge returns
// to within the single-node detector's reach.
func ShardedSybilDetection(p ShardedSybilParams) (*ShardedSybilResult, error) {
	if p.Shards < 2 {
		return nil, errors.New("experiments: sharded Sybil needs at least 2 shards")
	}
	if p.ExchangeEvery < 1 {
		return nil, errors.New("experiments: ExchangeEvery must be >= 1")
	}
	cal := CalgaryParams{Scale: p.Scale, Cap: p.Cap, CapFraction: p.CapFraction, Seed: p.Seed}
	tr, err := calgaryTrace("sybil-detect-cluster", cal)
	if err != nil {
		return nil, err
	}
	tracker, err := learnTracker(tr, 1)
	if err != nil {
		return nil, err
	}
	n := cal.objects()
	beta, err := delay.TuneBeta(n, trace.CalgaryAlpha, tracker.MaxCount(), p.Cap, p.CapFraction)
	if err != nil {
		return nil, err
	}
	pol, err := delay.NewPopularity(delay.PopularityConfig{
		N: n, Alpha: trace.CalgaryAlpha, Beta: beta, Cap: p.Cap,
	}, tracker)
	if err != nil {
		return nil, err
	}
	gate, err := delay.NewGate(pol, noSleepClock{}, nil)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	dcfg := detect.Config{
		CatalogSize: n,
		Policy: detect.EscalationPolicy{
			Grace: p.Grace, Cap: p.MultCap, RampWidth: p.RampWidth, Hysteresis: 0.10,
		},
		JaccardThreshold: p.Jaccard,
	}

	baseline, err := adversary.Sequential(gate, ids)
	if err != nil {
		return nil, err
	}
	res := &ShardedSybilResult{BaselineWall: baseline.WallTime}
	t := &Table{
		Title: fmt.Sprintf(
			"Sharded Sybil extraction over %d shards: anti-entropy sketch exchange restores the surcharge",
			p.Shards),
		Header: []string{
			"Identities", "Exchange off (h)", "Exchange on (h)",
			"On/baseline", "Shard cov off", "Shard cov on",
		},
	}

	var lastOn []*detect.Detector
	for _, k := range p.Ks {
		offWall, offCov, _, err := p.runCoalition(gate, dcfg, ids, k, false)
		if err != nil {
			return nil, err
		}
		onWall, onCov, dets, err := p.runCoalition(gate, dcfg, ids, k, true)
		if err != nil {
			return nil, err
		}
		res.OffWall = append(res.OffWall, offWall)
		res.OnWall = append(res.OnWall, onWall)
		res.OffUnionCoverage = append(res.OffUnionCoverage, offCov)
		res.OnUnionCoverage = append(res.OnUnionCoverage, onCov)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			Hours(offWall), Hours(onWall),
			fmt.Sprintf("%.1fx", onWall.Seconds()/baseline.WallTime.Seconds()),
			fmt.Sprintf("%.1f%%", 100*offCov), fmt.Sprintf("%.1f%%", 100*onCov),
		})
		lastOn = dets
	}

	// Collateral damage: Zipf readers pinned to their hash shard (the
	// router's affinity policy), through the detectors that just watched
	// the largest exchanged coalition.
	dist, err := zipf.New(n, p.LegitAlpha)
	if err != nil {
		return nil, err
	}
	sampler := zipf.NewSampler(dist, p.Seed+1)
	var offs, ons []float64
	for u := 0; u < p.LegitUsers; u++ {
		name := fmt.Sprintf("user-%d", u)
		shard := lastOn[u%p.Shards]
		for q := 0; q < p.LegitQueries; q++ {
			id := uint64(sampler.Next() - 1)
			off := gate.Quote(id)
			mult := shard.ObserveBatch(name, []uint64{id})
			offs = append(offs, off.Seconds())
			ons = append(ons, gate.QuoteScaled(mult, id).Seconds())
		}
	}
	res.LegitMedianOff = delay.SecondsToDuration(medianSeconds(offs))
	res.LegitMedianOn = delay.SecondsToDuration(medianSeconds(ons))
	res.Table = t
	t.Notes = append(t.Notes,
		fmt.Sprintf("single-identity detection-off baseline: %s hours over %d tuples; identities rotate shards per batch, exchange every %d round(s), export floor %.0f%%",
			Hours(baseline.WallTime), n, p.ExchangeEvery, 100*p.ExportFloor),
		fmt.Sprintf("legitimate median delay: %s off vs %s with sharded detection (%d Zipf(%.1f) users × %d queries, hash-affinity shards)",
			Millis(res.LegitMedianOff), Millis(res.LegitMedianOn),
			p.LegitUsers, p.LegitAlpha, p.LegitQueries))
	return res, nil
}

// runCoalition drives one k-identity coordinated extraction against
// Shards detectors, rotating each identity across shards per batch
// round. With exchange on, detectors gossip sketch deltas every
// ExchangeEvery rounds, exactly as the cluster router's anti-entropy
// loop does (ExportSince watermarks, Absorb merges). Returns the
// coalition wall time, shard 0's best coalition-coverage estimate after
// a final exchange+recluster, and the detectors for reuse.
func (p ShardedSybilParams) runCoalition(gate *delay.Gate, dcfg detect.Config, ids []uint64, k int, exchange bool) (time.Duration, float64, []*detect.Detector, error) {
	dets := make([]*detect.Detector, p.Shards)
	for s := range dets {
		d, err := detect.NewDetector(dcfg)
		if err != nil {
			return 0, 0, nil, err
		}
		dets[s] = d
	}
	streams, err := adversary.CoordinatedStreams(ids, k, p.VerifyFraction, p.Seed)
	if err != nil {
		return 0, 0, nil, err
	}
	marks := make([]uint64, p.Shards)
	walls := make([]time.Duration, k)
	round := 0
	for pos := 0; ; pos += sybilBatch {
		done := true
		for i, stream := range streams {
			if pos >= len(stream) {
				continue
			}
			done = false
			batch := stream[pos:min(pos+sybilBatch, len(stream))]
			// The evasive rotation: identity i's round-r batch lands on
			// shard (i+r) mod Shards, so every shard sees a thin slice
			// of every identity.
			shard := (i + round) % p.Shards
			mult := dets[shard].ObserveBatch(fmt.Sprintf("sybil-%d", i), batch)
			walls[i] += gate.QuoteScaled(mult, batch...)
		}
		if done {
			break
		}
		round++
		if exchange && round%p.ExchangeEvery == 0 {
			exchangeSketches(dets, marks, p.ExportFloor)
		}
	}
	if exchange {
		exchangeSketches(dets, marks, p.ExportFloor)
	}
	var wall time.Duration
	for _, w := range walls {
		if w > wall {
			wall = w
		}
	}
	for _, d := range dets {
		d.Recluster()
	}
	var union float64
	for _, s := range dets[0].Suspects(k) {
		u := s.Coverage
		if s.CoalitionCoverage > u {
			u = s.CoalitionCoverage
		}
		if u > union {
			union = u
		}
	}
	return wall, union, dets, nil
}

// exchangeSketches is one hub-spoke anti-entropy round in miniature:
// pull each shard's delta past its watermark, push it to every other
// shard. Sketches are CRDTs, so the merge order is irrelevant and
// re-delivery is harmless.
func exchangeSketches(dets []*detect.Detector, marks []uint64, floor float64) {
	pages := make([][]detect.SketchSnapshot, len(dets))
	for s, d := range dets {
		pages[s], marks[s] = d.ExportSince(marks[s], floor)
	}
	for t, d := range dets {
		for s, snaps := range pages {
			if s == t || len(snaps) == 0 {
				continue
			}
			d.Absorb(snaps)
		}
	}
}
