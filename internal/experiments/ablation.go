package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/ostree"
)

// AblationParams configures the design-choice ablations of DESIGN.md §5.
type AblationParams struct {
	// IDs is the distinct-tuple universe size for the counting ablations.
	IDs int
	// Ops is the operation count per timed measurement.
	Ops int
	// Dir hosts the database for the count-persistence ablation.
	Dir string
	// IOCost is the synthetic per-page I/O cost for that ablation.
	IOCost time.Duration
	Seed   int64
}

// DefaultAblationParams returns a configuration that finishes in a couple
// of seconds.
func DefaultAblationParams(dir string) AblationParams {
	return AblationParams{IDs: 10_000, Ops: 50_000, Dir: dir, IOCost: 20 * time.Microsecond, Seed: 3}
}

// Ablations measures each kept design choice against its strawman and
// returns one comparison table. These are the same comparisons as the
// BenchmarkAblation* benchmarks, packaged as a printable experiment.
func Ablations(p AblationParams) (*Table, error) {
	if p.IDs < 1 || p.Ops < 1 {
		return nil, fmt.Errorf("experiments: bad ablation params %+v", p)
	}
	t := &Table{
		Title:  "Ablations: kept design choice vs. strawman (per-operation cost)",
		Header: []string{"Design choice", "Kept", "Strawman", "Speedup"},
	}

	row := func(name string, kept, straw time.Duration) {
		speedup := "-"
		if kept > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(straw)/float64(kept))
		}
		t.Rows = append(t.Rows, []string{name, perOp(kept), perOp(straw), speedup})
	}

	// 1. Decay via the inflation trick vs. rescanning every count.
	kept, err := timeDecayInflation(p)
	if err != nil {
		return nil, err
	}
	straw := timeDecayNaive(p)
	row("decayed counts: inflation trick vs per-access rescan", kept, straw)

	// 2. Rank via order-statistics treap vs. full sort per query.
	kept = timeRankTree(p)
	straw = timeRankSort(p)
	row("rank lookup: order-statistics treap vs full sort", kept, straw)

	// 3. Count persistence: write-behind cache vs. synchronous puts,
	// both over a count table in a real database paying page I/O.
	kept, straw, err = timeCountPersistence(p)
	if err != nil {
		return nil, err
	}
	row("count persistence: write-behind cache vs synchronous", kept, straw)

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d distinct ids, measured over %d ops (fewer for quadratic strawmen), synthetic I/O %v/page",
			p.IDs, p.Ops, p.IOCost))
	return t, nil
}

func perOp(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2f ms/op", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2f µs/op", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%d ns/op", d.Nanoseconds())
	}
}

func timeDecayInflation(p AblationParams) (time.Duration, error) {
	d, err := counters.NewDecayed(1.000001)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < p.Ops; i++ {
		d.Observe(uint64(i % p.IDs))
	}
	return time.Since(start) / time.Duration(p.Ops), nil
}

func timeDecayNaive(p AblationParams) time.Duration {
	counts := make(map[uint64]float64, p.IDs)
	for i := 0; i < p.IDs; i++ {
		counts[uint64(i)] = 1
	}
	// The rescan is O(ids) per op; cap the strawman's op count so the
	// experiment stays fast, then report per-op cost.
	ops := p.Ops / 100
	if ops < 10 {
		ops = 10
	}
	inv := 1 / 1.000001
	start := time.Now()
	for i := 0; i < ops; i++ {
		for k, v := range counts {
			counts[k] = v * inv
		}
		counts[uint64(i%p.IDs)]++
	}
	return time.Since(start) / time.Duration(ops)
}

func timeRankTree(p AblationParams) time.Duration {
	tr := ostree.New(1)
	for i := 0; i < p.IDs; i++ {
		tr.Upsert(uint64(i), float64(i%997))
	}
	start := time.Now()
	for i := 0; i < p.Ops; i++ {
		tr.Rank(uint64(i % p.IDs))
	}
	return time.Since(start) / time.Duration(p.Ops)
}

func timeRankSort(p AblationParams) time.Duration {
	counts := make([]float64, p.IDs)
	for i := range counts {
		counts[i] = float64(i % 997)
	}
	ops := p.Ops / 1000
	if ops < 5 {
		ops = 5
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		snapshot := append([]float64(nil), counts...)
		sort.Sort(sort.Reverse(sort.Float64Slice(snapshot)))
		_ = sort.SearchFloat64s(snapshot, counts[i%p.IDs])
	}
	return time.Since(start) / time.Duration(ops)
}

func timeCountPersistence(p AblationParams) (withCache, synchronous time.Duration, err error) {
	db, err := engine.Open(p.Dir, engine.WithPoolPages(16), engine.WithIOCost(spin(p.IOCost)))
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE base (id INT PRIMARY KEY)`); err != nil {
		return 0, 0, err
	}
	store, err := engine.NewCountStore(db, "base")
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	// Zipf-ish skewed id stream: hot ids dominate, which is where the
	// write-behind cache earns its keep.
	idAt := func(i int) uint64 {
		if rng.Intn(10) < 8 {
			return uint64(rng.Intn(64))
		}
		return uint64(rng.Intn(p.IDs))
	}

	ops := p.Ops / 10
	if ops < 100 {
		ops = 100
	}

	cache, err := counters.NewCountCache(256, store)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := cache.Add(idAt(i), 1); err != nil {
			return 0, 0, err
		}
	}
	if err := cache.Flush(); err != nil {
		return 0, 0, err
	}
	withCache = time.Since(start) / time.Duration(ops)

	rng = rand.New(rand.NewSource(p.Seed))
	start = time.Now()
	for i := 0; i < ops; i++ {
		id := idAt(i)
		v, _, err := store.GetCount(id)
		if err != nil {
			return 0, 0, err
		}
		if err := store.PutCount(id, v+1); err != nil {
			return 0, 0, err
		}
	}
	synchronous = time.Since(start) / time.Duration(ops)
	return withCache, synchronous, nil
}
