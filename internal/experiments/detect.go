package experiments

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/delay"
	"repro/internal/detect"
	"repro/internal/trace"
	"repro/internal/zipf"
)

// SybilDetectionParams configures the extraction-detection rerun of the
// §2.4 Sybil analysis: coordinated k-identity extraction against a
// defense that sketches per-principal coverage, clusters coordinated
// signatures into coalitions, and surcharges the coalition's delay.
type SybilDetectionParams struct {
	Scale       int
	Cap         time.Duration
	CapFraction float64
	// Ks are the identity counts evaluated.
	Ks   []int
	Seed int64

	// Grace, MultCap, RampWidth and Jaccard parameterize the detector;
	// see detect.Config.
	Grace     float64
	MultCap   float64
	RampWidth float64
	Jaccard   float64
	// VerifyFraction is the shared verification sample each Sybil stream
	// re-fetches (see adversary.CoordinatedStreams).
	VerifyFraction float64

	// LegitUsers Zipf(LegitAlpha) readers issue LegitQueries queries each
	// through the same detector, to measure collateral damage.
	LegitUsers   int
	LegitQueries int
	LegitAlpha   float64
}

// DefaultSybilDetectionParams returns the paper-scale configuration.
func DefaultSybilDetectionParams() SybilDetectionParams {
	return SybilDetectionParams{
		Scale: 1, Cap: 10 * time.Second, CapFraction: 0.1,
		Ks:    []int{1, 4, 16, 64},
		Seed:  2004,
		Grace: 0.08, MultCap: 256, RampWidth: 0.10, Jaccard: 0.35,
		VerifyFraction: 0.25,
		LegitUsers:     32, LegitQueries: 1000, LegitAlpha: 1.0,
	}
}

// sybilBatch is how many tuples a stream fetches per query; streams are
// interleaved batch-by-batch so the detector sees them concurrently.
const sybilBatch = 50

// SybilDetectionResult carries the measured quantities behind the table,
// for assertions.
type SybilDetectionResult struct {
	Table *Table
	// BaselineWall is the single-identity, detection-off extraction time.
	BaselineWall time.Duration
	// NoDetectWall and DetectWall are indexed like Params.Ks.
	NoDetectWall []time.Duration
	DetectWall   []time.Duration
	// PerIdentityCoverage and UnionCoverage are the detector's estimates
	// after each k-identity run.
	PerIdentityCoverage []float64
	UnionCoverage       []float64
	// LegitMedianOff/On are the legitimate per-query median delays
	// without and with detection (shared detector with the largest-k
	// coalition).
	LegitMedianOff time.Duration
	LegitMedianOn  time.Duration
}

// SybilDetection reruns the parallel-extraction analysis with the
// detection subsystem in the loop. Each of k Sybil identities fetches a
// disjoint shard plus a shared verification sample; the detector's
// signature clustering attributes the union coverage back to every
// member, so the per-stream surcharge grows with what the *coalition*
// holds and the k-way wall-time advantage collapses.
func SybilDetection(p SybilDetectionParams) (*SybilDetectionResult, error) {
	cal := CalgaryParams{Scale: p.Scale, Cap: p.Cap, CapFraction: p.CapFraction, Seed: p.Seed}
	tr, err := calgaryTrace("sybil-detect", cal)
	if err != nil {
		return nil, err
	}
	tracker, err := learnTracker(tr, 1)
	if err != nil {
		return nil, err
	}
	n := cal.objects()
	beta, err := delay.TuneBeta(n, trace.CalgaryAlpha, tracker.MaxCount(), p.Cap, p.CapFraction)
	if err != nil {
		return nil, err
	}
	pol, err := delay.NewPopularity(delay.PopularityConfig{
		N: n, Alpha: trace.CalgaryAlpha, Beta: beta, Cap: p.Cap,
	}, tracker)
	if err != nil {
		return nil, err
	}
	gate, err := delay.NewGate(pol, noSleepClock{}, nil)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	dcfg := detect.Config{
		CatalogSize: n,
		Policy: detect.EscalationPolicy{
			Grace: p.Grace, Cap: p.MultCap, RampWidth: p.RampWidth, Hysteresis: 0.10,
		},
		JaccardThreshold: p.Jaccard,
	}

	baseline, err := adversary.Sequential(gate, ids)
	if err != nil {
		return nil, err
	}
	res := &SybilDetectionResult{BaselineWall: baseline.WallTime}
	t := &Table{
		Title: "Sybil extraction with detection: coalition surcharges collapse the k-identity advantage",
		Header: []string{
			"Identities", "No detection (h)", "With detection (h)",
			"Per-identity cov", "Union cov",
		},
	}

	var lastDet *detect.Detector
	for _, k := range p.Ks {
		rNone, err := adversary.Parallel(gate, ids, k, 0)
		if err != nil {
			return nil, err
		}

		det, err := detect.NewDetector(dcfg)
		if err != nil {
			return nil, err
		}
		streams, err := adversary.CoordinatedStreams(ids, k, p.VerifyFraction, p.Seed)
		if err != nil {
			return nil, err
		}
		// Streams advance in lockstep, one batch per round, each paying
		// the quoted delay scaled by its current detector multiplier.
		walls := make([]time.Duration, k)
		for pos := 0; ; pos += sybilBatch {
			done := true
			for i, stream := range streams {
				if pos >= len(stream) {
					continue
				}
				done = false
				batch := stream[pos:min(pos+sybilBatch, len(stream))]
				mult := det.ObserveBatch(fmt.Sprintf("sybil-%d", i), batch)
				walls[i] += gate.QuoteScaled(mult, batch...)
			}
			if done {
				break
			}
		}
		var wall time.Duration
		for _, w := range walls {
			if w > wall {
				wall = w
			}
		}
		det.Recluster()
		var perID, union float64
		for _, s := range det.Suspects(k) {
			perID += s.Coverage / float64(k)
			u := s.Coverage
			if s.CoalitionCoverage > u {
				u = s.CoalitionCoverage
			}
			if u > union {
				union = u
			}
		}
		res.NoDetectWall = append(res.NoDetectWall, rNone.WallTime)
		res.DetectWall = append(res.DetectWall, wall)
		res.PerIdentityCoverage = append(res.PerIdentityCoverage, perID)
		res.UnionCoverage = append(res.UnionCoverage, union)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			Hours(rNone.WallTime), Hours(wall),
			fmt.Sprintf("%.1f%%", 100*perID), fmt.Sprintf("%.1f%%", 100*union),
		})
		lastDet = det
	}

	// Collateral damage: Zipf readers through the detector that just
	// watched the largest coalition, vs the same queries detection-off.
	dist, err := zipf.New(n, p.LegitAlpha)
	if err != nil {
		return nil, err
	}
	sampler := zipf.NewSampler(dist, p.Seed+1)
	var offs, ons []float64
	for u := 0; u < p.LegitUsers; u++ {
		name := fmt.Sprintf("user-%d", u)
		for q := 0; q < p.LegitQueries; q++ {
			id := uint64(sampler.Next() - 1)
			off := gate.Quote(id)
			mult := lastDet.ObserveBatch(name, []uint64{id})
			offs = append(offs, off.Seconds())
			ons = append(ons, gate.QuoteScaled(mult, id).Seconds())
		}
	}
	res.LegitMedianOff = delay.SecondsToDuration(medianSeconds(offs))
	res.LegitMedianOn = delay.SecondsToDuration(medianSeconds(ons))
	res.Table = t
	t.Notes = append(t.Notes,
		fmt.Sprintf("single-identity detection-off baseline: %s hours over %d tuples; every coalition stream re-fetches a shared %.0f%% verification sample",
			Hours(baseline.WallTime), n, 100*p.VerifyFraction),
		fmt.Sprintf("legitimate median delay: %s off vs %s with detection (%d Zipf(%.1f) users × %d queries, shared detector)",
			Millis(res.LegitMedianOff), Millis(res.LegitMedianOn),
			p.LegitUsers, p.LegitAlpha, p.LegitQueries))
	return res, nil
}
