package experiments

import (
	"fmt"
	"time"

	"repro/internal/delay"
	"repro/internal/trace"
)

// BoxOfficeParams configures the §4.2 experiments (Figs 2–3, Table 4).
type BoxOfficeParams struct {
	Cap time.Duration
	// CapFraction tunes β exactly as in the Calgary experiments.
	CapFraction float64
	Seed        int64
}

// DefaultBoxOfficeParams returns the paper-scale configuration (the box
// office dataset is small — 634 films — so there is no scale knob).
func DefaultBoxOfficeParams() BoxOfficeParams {
	return BoxOfficeParams{Cap: 10 * time.Second, CapFraction: 0.25, Seed: 2002}
}

// Fig2 reproduces Figure 2: annual sales of the year's top 10 films —
// the mildly skewed whole-year view.
func Fig2(p BoxOfficeParams) (*Table, error) {
	b := trace.BoxOffice2002(p.Seed)
	_, sales := b.TopAnnual(10)
	t := &Table{
		Title:  "Fig 2. Sales Distribution of Top 10 Movies of 2002 (synthetic)",
		Header: []string{"Rank", "Annual Sales ($)"},
	}
	for i, s := range sales {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i+1), fmt.Sprintf("%.0f", s)})
	}
	addBarColumn(t, sales, 40, false)
	if len(sales) >= 10 && sales[9] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("top-1/top-10 ratio %.1f (mild skew; paper shows ≈2.5)", sales[0]/sales[9]))
	}
	return t, nil
}

// Fig3 reproduces Figure 3: the same view for a single week — sharply
// skewed, because only a handful of recent releases dominate any week.
func Fig3(p BoxOfficeParams) (*Table, error) {
	b := trace.BoxOffice2002(p.Seed)
	// Week 1 in the paper; any single week shows the effect. Use a week
	// deep enough that the release schedule has filled in.
	const week = 26
	_, sales := b.TopWeek(week, 10)
	t := &Table{
		Title:  "Fig 3. Top 10 Movies for One Week of 2002 (synthetic)",
		Header: []string{"Rank", "Weekly Sales ($)"},
	}
	for i, s := range sales {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i+1), fmt.Sprintf("%.0f", s)})
	}
	addBarColumn(t, sales, 40, false)
	if len(sales) >= 10 && sales[9] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("top-1/top-10 ratio %.1f (sharp skew; paper shows ≈10)", sales[0]/sales[9]))
	}
	return t, nil
}

// Table4Row is one measured row of Table 4.
type Table4Row struct {
	DecayRate      float64
	MedianDelay    time.Duration
	AdversaryDelay time.Duration
}

// Table4 reproduces Table 4 (Delays in Box Office Data): the full-year
// replay with decay applied at weekly boundaries, across nine rates. The
// popularity distribution shifts fast, so aggressive decay tracks it
// better; the adversary pays essentially the full N·dmax at high decay
// (the paper's "an adversary incurs 100% of the maximum possible total
// delay in this scenario").
//
// Divergence note: in our synthetic workload the median *falls* as decay
// strengthens, because without decay newly released films carry poor
// cumulative ranks and their (numerous) requests pay high delays — the
// exact §2.3 problem decay exists to solve ("Because there are often
// many more newly-popular requests, they have a significant impact on
// median delay"). The paper's Table 4 shows a mild rise instead,
// suggesting its real 2002 data was dominated by films whose cumulative
// rank was insensitive to decay. Both medians stay small; the adversary
// column matches the paper's shape closely. See EXPERIMENTS.md.
func Table4(p BoxOfficeParams) (*Table, []Table4Row, error) {
	decays := []float64{1.00, 1.01, 1.02, 1.05, 1.10, 1.20, 1.50, 2.00, 5.00}
	b := trace.BoxOffice2002(p.Seed)
	n := b.Trace.NumObjects

	// β from a no-decay pre-pass, as in Table 3.
	pre, err := learnTracker(b.Trace, 1)
	if err != nil {
		return nil, nil, err
	}
	beta, err := delay.TuneBeta(n, 1.0, pre.MaxCount(), p.Cap, p.CapFraction)
	if err != nil {
		return nil, nil, err
	}

	t := &Table{
		Title:  "Table 4. Delays in Box Office Data (weekly decay sweep)",
		Header: []string{"Decay Rate", "Median User Delay (ms)", "Adversary Delay (hours)"},
	}
	var rows []Table4Row
	for _, rate := range decays {
		res, err := ReplayPopularity(b.Trace, rate, delay.PopularityConfig{
			N: n, Alpha: 1.0, Beta: beta, Cap: p.Cap,
		}, true)
		if err != nil {
			return nil, nil, err
		}
		row := Table4Row{DecayRate: rate, MedianDelay: res.MedianDelay, AdversaryDelay: res.AdversaryDelay}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", rate),
			Millis(row.MedianDelay),
			Hours(row.AdversaryDelay),
		})
	}
	maxPossible := time.Duration(n) * p.Cap
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d films, %d requests, max possible adversary delay %s hours; paper: median 0.03→1.26 ms, adversary 1.33→1.76 hours of a 1.76-hour max",
			n, len(b.Trace.Requests), Hours(maxPossible)))
	return t, rows, nil
}
