package experiments

import (
	"testing"
	"time"
)

func TestSybilAnalysisShape(t *testing.T) {
	p := DefaultSybilParams()
	p.Scale = 20
	p.Ks = []int{1, 8, 64}
	tab, err := SybilAnalysis(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Column 1 (no throttle) falls with k; column 3 (neutralizing) never
	// drops below the k=1 wall time.
	noThrottle := make([]float64, len(tab.Rows))
	neutral := make([]float64, len(tab.Rows))
	for i, row := range tab.Rows {
		noThrottle[i] = mustFloat(t, row[1])
		neutral[i] = mustFloat(t, row[3])
	}
	if !(noThrottle[0] > noThrottle[1] && noThrottle[1] > noThrottle[2]) {
		t.Fatalf("no-throttle wall times not decreasing: %v", noThrottle)
	}
	for i := 1; i < len(neutral); i++ {
		if neutral[i] < neutral[0]*0.99 {
			t.Fatalf("neutralizing throttle beaten at k=%s: %v < %v",
				tab.Rows[i][0], neutral[i], neutral[0])
		}
	}
}

func TestStorefrontCoverageShape(t *testing.T) {
	p := DefaultStorefrontParams()
	p.N = 3000
	p.Queries = 150_000
	tab, err := StorefrontCoverage(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(p.Alphas) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Coverage must be non-increasing in skew, and materially below 100%
	// at the sharpest skew.
	var prev = 101.0
	for _, row := range tab.Rows {
		cov := mustFloat(t, row[2][:len(row[2])-1]) // strip %
		if cov > prev+0.1 {
			t.Fatalf("coverage rose with skew: %v after %v", cov, prev)
		}
		prev = cov
	}
	if prev > 60 {
		t.Fatalf("sharpest-skew coverage = %v%%, expected well below 100%%", prev)
	}
}

func TestStorefrontCoverageValidation(t *testing.T) {
	p := DefaultStorefrontParams()
	p.N = 0
	if _, err := StorefrontCoverage(p); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestZeroQuoter(t *testing.T) {
	if zeroQuoter.Quote(zeroQuoter{}, 1, 2, 3) != 0 {
		t.Fatal("zeroQuoter nonzero")
	}
	var c noSleepClock
	c.Sleep(time.Hour) // must not block
	if c.Now() != time.Unix(0, 0) {
		t.Fatal("noSleepClock time")
	}
}
