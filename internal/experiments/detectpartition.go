package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/cluster"
	"repro/internal/delay"
	"repro/internal/detect"
	"repro/internal/trace"
	"repro/internal/zipf"
)

// PartitionedSybilParams configures the Sybil rerun against a
// partitioned cluster: tuples hash to owner shards via the router's
// partition map, so an extraction coalition does not choose which shard
// sees a query — the tuple's owner does. The natural evasion flips from
// rotation to key-range splitting: each identity walks its slice of the
// catalog through point queries, and each shard's detector observes
// only the ~1/Shards of those tuples it owns.
type PartitionedSybilParams struct {
	ShardedSybilParams
	// Partitions is the partition-map size (cluster.DefaultPartitions
	// when 0).
	Partitions int
}

// DefaultPartitionedSybilParams returns the paper-scale configuration:
// the sharded defaults with the router's default partition map.
func DefaultPartitionedSybilParams() PartitionedSybilParams {
	return PartitionedSybilParams{
		ShardedSybilParams: DefaultShardedSybilParams(),
		Partitions:         cluster.DefaultPartitions,
	}
}

// PartitionedSybilDetection reruns the Sybil detection analysis against
// a partitioned cluster. Ownership, not the adversary, picks the shard
// a query lands on, and a query touching tuples on several shards costs
// the client the SUM of the per-shard delays — the shards serve one
// sequential client, there is no parallel wall-time discount for
// scattering. What partitioning does hand the coalition is coverage
// dilution: every shard's detector sees only its slice of every
// identity's stream (~1/(k·Shards) of the catalog), far under the
// escalation grace. Anti-entropy is again the countermeasure: merged
// sketches restore each shard's view of global per-identity coverage
// and of the shared verification sample that clusters the coalition.
func PartitionedSybilDetection(p PartitionedSybilParams) (*ShardedSybilResult, error) {
	if p.Shards < 2 {
		return nil, errors.New("experiments: partitioned Sybil needs at least 2 shards")
	}
	if p.ExchangeEvery < 1 {
		return nil, errors.New("experiments: ExchangeEvery must be >= 1")
	}
	if p.Partitions == 0 {
		p.Partitions = cluster.DefaultPartitions
	}
	pm, err := cluster.NewPartitionMap(1, p.Partitions, p.Shards, 0, 1)
	if err != nil {
		return nil, err
	}
	cal := CalgaryParams{Scale: p.Scale, Cap: p.Cap, CapFraction: p.CapFraction, Seed: p.Seed}
	tr, err := calgaryTrace("sybil-detect-partition", cal)
	if err != nil {
		return nil, err
	}
	tracker, err := learnTracker(tr, 1)
	if err != nil {
		return nil, err
	}
	n := cal.objects()
	beta, err := delay.TuneBeta(n, trace.CalgaryAlpha, tracker.MaxCount(), p.Cap, p.CapFraction)
	if err != nil {
		return nil, err
	}
	pol, err := delay.NewPopularity(delay.PopularityConfig{
		N: n, Alpha: trace.CalgaryAlpha, Beta: beta, Cap: p.Cap,
	}, tracker)
	if err != nil {
		return nil, err
	}
	gate, err := delay.NewGate(pol, noSleepClock{}, nil)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	dcfg := detect.Config{
		CatalogSize: n,
		Policy: detect.EscalationPolicy{
			Grace: p.Grace, Cap: p.MultCap, RampWidth: p.RampWidth, Hysteresis: 0.10,
		},
		JaccardThreshold: p.Jaccard,
	}

	baseline, err := adversary.Sequential(gate, ids)
	if err != nil {
		return nil, err
	}
	res := &ShardedSybilResult{BaselineWall: baseline.WallTime}
	t := &Table{
		Title: fmt.Sprintf(
			"Partitioned Sybil extraction: %d shards × %d partitions, coalition splits the key range",
			p.Shards, p.Partitions),
		Header: []string{
			"Identities", "Exchange off (h)", "Exchange on (h)",
			"On/baseline", "Shard cov off", "Shard cov on",
		},
	}

	var lastOn []*detect.Detector
	for _, k := range p.Ks {
		offWall, offCov, _, err := p.runPartitionedCoalition(gate, dcfg, pm, ids, k, false, -1)
		if err != nil {
			return nil, err
		}
		onWall, onCov, dets, err := p.runPartitionedCoalition(gate, dcfg, pm, ids, k, true, -1)
		if err != nil {
			return nil, err
		}
		res.OffWall = append(res.OffWall, offWall)
		res.OnWall = append(res.OnWall, onWall)
		res.OffUnionCoverage = append(res.OffUnionCoverage, offCov)
		res.OnUnionCoverage = append(res.OnUnionCoverage, onCov)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			Hours(offWall), Hours(onWall),
			fmt.Sprintf("%.1fx", onWall.Seconds()/baseline.WallTime.Seconds()),
			fmt.Sprintf("%.1f%%", 100*offCov), fmt.Sprintf("%.1f%%", 100*onCov),
		})
		lastOn = dets
	}

	// Collateral damage: Zipf readers issuing point queries, each routed
	// to the queried tuple's owner shard — the partitioned router's only
	// read path for key lookups.
	dist, err := zipf.New(n, p.LegitAlpha)
	if err != nil {
		return nil, err
	}
	sampler := zipf.NewSampler(dist, p.Seed+1)
	var offs, ons []float64
	for u := 0; u < p.LegitUsers; u++ {
		name := fmt.Sprintf("user-%d", u)
		for q := 0; q < p.LegitQueries; q++ {
			id := uint64(sampler.Next() - 1)
			shard := lastOn[pm.OwnerOf(int64(id))]
			off := gate.Quote(id)
			mult := shard.ObserveBatch(name, []uint64{id})
			offs = append(offs, off.Seconds())
			ons = append(ons, gate.QuoteScaled(mult, id).Seconds())
		}
	}
	res.LegitMedianOff = delay.SecondsToDuration(medianSeconds(offs))
	res.LegitMedianOn = delay.SecondsToDuration(medianSeconds(ons))
	res.Table = t
	t.Notes = append(t.Notes,
		fmt.Sprintf("single-identity detection-off baseline: %s hours over %d tuples; tuples hash to owners, exchange every %d round(s), export floor %.0f%%",
			Hours(baseline.WallTime), n, p.ExchangeEvery, 100*p.ExportFloor),
		fmt.Sprintf("legitimate median delay: %s off vs %s with partitioned detection (%d Zipf(%.1f) users × %d point queries to owner shards)",
			Millis(res.LegitMedianOff), Millis(res.LegitMedianOn),
			p.LegitUsers, p.LegitAlpha, p.LegitQueries))
	return res, nil
}

// PartitionedShardKillSybil reruns the k = max(Ks) key-splitting
// coalition against the replicated layout (R = 2) with one of the
// shards dead for the entire attack. Failover routes each query to the
// surviving replica of its partition, whose detector observes it, and
// the anti-entropy exchange runs among the survivors only — so the
// coalition's union coverage still reassembles and the surcharge must
// hold without the dead shard's evidence. This is the detection half of
// the shard-kill contract: losing a replica loses no acked writes
// (torture.RunCluster) and loses no extraction pricing (this table).
func PartitionedShardKillSybil(p PartitionedSybilParams) (*ShardedSybilResult, error) {
	if p.Shards < 2 {
		return nil, errors.New("experiments: shard-kill Sybil needs at least 2 shards")
	}
	if p.Partitions == 0 {
		p.Partitions = cluster.DefaultPartitions
	}
	pm, err := cluster.NewPartitionMap(1, p.Partitions, p.Shards, 0, 2)
	if err != nil {
		return nil, err
	}
	cal := CalgaryParams{Scale: p.Scale, Cap: p.Cap, CapFraction: p.CapFraction, Seed: p.Seed}
	tr, err := calgaryTrace("sybil-detect-shardkill", cal)
	if err != nil {
		return nil, err
	}
	tracker, err := learnTracker(tr, 1)
	if err != nil {
		return nil, err
	}
	n := cal.objects()
	beta, err := delay.TuneBeta(n, trace.CalgaryAlpha, tracker.MaxCount(), p.Cap, p.CapFraction)
	if err != nil {
		return nil, err
	}
	pol, err := delay.NewPopularity(delay.PopularityConfig{
		N: n, Alpha: trace.CalgaryAlpha, Beta: beta, Cap: p.Cap,
	}, tracker)
	if err != nil {
		return nil, err
	}
	gate, err := delay.NewGate(pol, noSleepClock{}, nil)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	dcfg := detect.Config{
		CatalogSize: n,
		Policy: detect.EscalationPolicy{
			Grace: p.Grace, Cap: p.MultCap, RampWidth: p.RampWidth, Hysteresis: 0.10,
		},
		JaccardThreshold: p.Jaccard,
	}
	baseline, err := adversary.Sequential(gate, ids)
	if err != nil {
		return nil, err
	}
	res := &ShardedSybilResult{BaselineWall: baseline.WallTime}
	t := &Table{
		Title: fmt.Sprintf(
			"Shard-kill Sybil extraction: %d shards × %d partitions × R=2, shard-0 dead for the whole attack",
			p.Shards, p.Partitions),
		Header: []string{
			"Identities", "All shards up (h)", "Shard down (h)",
			"Up/baseline", "Down/baseline", "Cov (down)",
		},
	}
	for _, k := range p.Ks {
		upWall, _, _, err := p.runPartitionedCoalition(gate, dcfg, pm, ids, k, true, -1)
		if err != nil {
			return nil, err
		}
		downWall, downCov, _, err := p.runPartitionedCoalition(gate, dcfg, pm, ids, k, true, 0)
		if err != nil {
			return nil, err
		}
		res.OffWall = append(res.OffWall, upWall)
		res.OnWall = append(res.OnWall, downWall)
		res.OnUnionCoverage = append(res.OnUnionCoverage, downCov)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			Hours(upWall), Hours(downWall),
			fmt.Sprintf("%.1fx", upWall.Seconds()/baseline.WallTime.Seconds()),
			fmt.Sprintf("%.1fx", downWall.Seconds()/baseline.WallTime.Seconds()),
			fmt.Sprintf("%.1f%%", 100*downCov),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("single-identity detection-off baseline: %s hours over %d tuples; failover serves each dead-shard partition from its surviving replica, whose detector observes the query",
			Hours(baseline.WallTime), n))
	res.Table = t
	return res, nil
}

// runPartitionedCoalition drives one k-identity extraction where each
// identity's batch is split by tuple ownership: the sub-batch owned by
// shard s is observed by shard s's detector, and the identity — a
// sequential client of the front door — pays the sum of the per-shard
// quotes. Detectors gossip every ExchangeEvery rounds when exchange is
// on. dead (when >= 0) marks one shard down for the whole run: queries
// fail over to the next live member of the tuple's replica group, and
// the dead shard neither observes nor exchanges. Returns the coalition
// wall time, a live shard's best coalition-coverage estimate after a
// final exchange+recluster, and the detectors.
func (p PartitionedSybilParams) runPartitionedCoalition(gate *delay.Gate, dcfg detect.Config, pm *cluster.PartitionMap, ids []uint64, k int, exchange bool, dead int) (time.Duration, float64, []*detect.Detector, error) {
	dets := make([]*detect.Detector, p.Shards)
	for s := range dets {
		d, err := detect.NewDetector(dcfg)
		if err != nil {
			return 0, 0, nil, err
		}
		dets[s] = d
	}
	streams, err := adversary.CoordinatedStreams(ids, k, p.VerifyFraction, p.Seed)
	if err != nil {
		return 0, 0, nil, err
	}
	marks := make([]uint64, p.Shards)
	walls := make([]time.Duration, k)
	sub := make([][]uint64, p.Shards)
	round := 0
	for pos := 0; ; pos += sybilBatch {
		done := true
		for i, stream := range streams {
			if pos >= len(stream) {
				continue
			}
			done = false
			batch := stream[pos:min(pos+sybilBatch, len(stream))]
			for s := range sub {
				sub[s] = sub[s][:0]
			}
			for _, id := range batch {
				s := pm.OwnerOf(int64(id))
				if s == dead {
					for _, m := range pm.GroupOf(pm.PartitionOf(int64(id))) {
						if m != dead {
							s = m
							break
						}
					}
				}
				sub[s] = append(sub[s], id)
			}
			name := fmt.Sprintf("sybil-%d", i)
			for s, part := range sub {
				if len(part) == 0 {
					continue
				}
				mult := dets[s].ObserveBatch(name, part)
				walls[i] += gate.QuoteScaled(mult, part...)
			}
		}
		if done {
			break
		}
		round++
		if exchange && round%p.ExchangeEvery == 0 {
			exchangeLiveSketches(dets, marks, p.ExportFloor, dead)
		}
	}
	if exchange {
		exchangeLiveSketches(dets, marks, p.ExportFloor, dead)
	}
	var wall time.Duration
	for _, w := range walls {
		if w > wall {
			wall = w
		}
	}
	for _, d := range dets {
		d.Recluster()
	}
	viewer := 0
	if viewer == dead {
		viewer = 1
	}
	var union float64
	for _, s := range dets[viewer].Suspects(k) {
		u := s.Coverage
		if s.CoalitionCoverage > u {
			u = s.CoalitionCoverage
		}
		if u > union {
			union = u
		}
	}
	return wall, union, dets, nil
}

// exchangeLiveSketches is exchangeSketches restricted to the shards
// that are up: a dead shard (index dead, -1 for none) neither exports
// nor absorbs, exactly as the router's exchange skips latched peers.
func exchangeLiveSketches(dets []*detect.Detector, marks []uint64, floor float64, dead int) {
	if dead < 0 {
		exchangeSketches(dets, marks, floor)
		return
	}
	pages := make([][]detect.SketchSnapshot, len(dets))
	for s, d := range dets {
		if s == dead {
			continue
		}
		pages[s], marks[s] = d.ExportSince(marks[s], floor)
	}
	for t, d := range dets {
		if t == dead {
			continue
		}
		for s, snaps := range pages {
			if s == t || len(snaps) == 0 {
				continue
			}
			d.Absorb(snaps)
		}
	}
}
