package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/counters"
	"repro/internal/delay"
	"repro/internal/engine"
	"repro/internal/stats"
)

// OverheadParams configures the §4.4 implementation-overhead experiment
// (Table 5): simple selection queries with and without count maintenance
// and delay computation, on the embedded engine.
type OverheadParams struct {
	// Rows is the table size.
	Rows int
	// Queries is how many random selections to average over (paper: 100).
	Queries int
	// PayloadBytes pads each row so the table spans many pages.
	PayloadBytes int
	// PoolPages is the buffer pool capacity; caches are dropped before
	// every query so each selection pays real page I/O, as the paper's
	// 55 ms base cost implies.
	PoolPages int
	// CountCacheSize bounds the write-behind count cache; keeping it
	// below Rows reproduces the paper's "not all counts are kept in
	// memory, resulting in some I/O overhead".
	CountCacheSize int
	// IOCost adds a fixed CPU spin per physical page I/O to stand in for
	// 2004-era disk latency; 0 disables it.
	IOCost time.Duration
	// IndexIO is the number of synthetic index-page reads charged per
	// selection in BOTH measured paths. The commercial RDBMS of the
	// paper descends a disk-resident index (3–4 page reads) before
	// touching the data page; our B+tree lives in memory, so without
	// this the base query would be unrealistically cheap relative to
	// count maintenance and the overhead ratio would not be comparable.
	IndexIO int
	// Dir is the working directory for the database files.
	Dir  string
	Seed int64
}

// DefaultOverheadParams returns a configuration sized to finish in a few
// seconds while remaining I/O-bound like the paper's setup.
func DefaultOverheadParams(dir string) OverheadParams {
	return OverheadParams{
		Rows:           20_000,
		Queries:        100,
		PayloadBytes:   200,
		PoolPages:      32,
		CountCacheSize: 512,
		IOCost:         200 * time.Microsecond,
		IndexIO:        3,
		Dir:            dir,
		Seed:           5,
	}
}

// Table5Result carries the measured costs.
type Table5Result struct {
	BaseAvg, BaseStdev   time.Duration
	TotalAvg, TotalStdev time.Duration
	Overhead             time.Duration
	OverheadPercent      float64
}

// Table5 reproduces Table 5 (Overheads in Simple Selection Queries): 100
// random single-tuple selections, measured bare and then with the full
// §2.3/§4.4 machinery — per-tuple count maintenance through a
// write-behind cache backed by a count table in the same database, plus
// per-query delay computation. Wall-clock times are real; the imposed
// delay itself is quoted but not slept, since Table 5 measures mechanism
// cost, not the defense.
func Table5(p OverheadParams) (*Table, *Table5Result, error) {
	if p.Rows < 1 || p.Queries < 1 {
		return nil, nil, fmt.Errorf("experiments: bad overhead params %+v", p)
	}
	db, err := engine.Open(p.Dir, engine.WithPoolPages(p.PoolPages), engine.WithIOCost(spin(p.IOCost)))
	if err != nil {
		return nil, nil, err
	}
	defer db.Close()
	if err := loadItems(db, p.Rows, p.PayloadBytes); err != nil {
		return nil, nil, err
	}

	rng := rand.New(rand.NewSource(p.Seed))
	queries := make([]string, p.Queries)
	for i := range queries {
		queries[i] = fmt.Sprintf(`SELECT * FROM items WHERE id = %d`, rng.Intn(p.Rows))
	}

	// indexIO models the disk-resident index descent of the paper's
	// substrate; charged identically on both paths.
	indexIO := spin(time.Duration(p.IndexIO) * p.IOCost)

	// Base: bare selections on a cold cache.
	base := make([]float64, p.Queries)
	for i, q := range queries {
		if err := db.DropCaches(); err != nil {
			return nil, nil, err
		}
		start := time.Now()
		indexIO()
		if _, err := db.Exec(q); err != nil {
			return nil, nil, err
		}
		base[i] = float64(time.Since(start)) / float64(time.Millisecond)
	}

	// With the scheme: counts through a write-behind cache backed by a
	// count table in the same database, plus delay computation.
	store, err := engine.NewCountStore(db, "items")
	if err != nil {
		return nil, nil, err
	}
	// The paper's design gives every tuple a count attribute; populate
	// the count table up front (setup cost, untimed) so count reads
	// fault real pages like any other column would.
	for id := 0; id < p.Rows; id++ {
		if err := store.PutCount(uint64(id), 0); err != nil {
			return nil, nil, err
		}
	}
	if err := db.Flush(); err != nil {
		return nil, nil, err
	}
	cache, err := counters.NewCountCache(p.CountCacheSize, store)
	if err != nil {
		return nil, nil, err
	}
	tracker, err := counters.NewDecayed(1)
	if err != nil {
		return nil, nil, err
	}
	pol, err := delay.NewPopularity(delay.PopularityConfig{
		N: p.Rows, Alpha: 1.0, Beta: 2.0, Cap: 10 * time.Second,
	}, tracker)
	if err != nil {
		return nil, nil, err
	}

	total := make([]float64, p.Queries)
	for i, q := range queries {
		if err := db.DropCaches(); err != nil {
			return nil, nil, err
		}
		start := time.Now()
		indexIO()
		res, err := db.Exec(q)
		if err != nil {
			return nil, nil, err
		}
		// Delay computation (quoted, not slept) and count maintenance for
		// every returned tuple.
		for _, key := range res.Keys {
			_ = pol.Delay(key)
			tracker.Observe(key)
			if _, err := cache.Add(key, 1); err != nil {
				return nil, nil, err
			}
		}
		total[i] = float64(time.Since(start)) / float64(time.Millisecond)
	}
	if err := cache.Flush(); err != nil {
		return nil, nil, err
	}

	res := &Table5Result{
		BaseAvg:    delay.SecondsToDuration(stats.Mean(base) / 1000),
		BaseStdev:  delay.SecondsToDuration(stats.Stdev(base) / 1000),
		TotalAvg:   delay.SecondsToDuration(stats.Mean(total) / 1000),
		TotalStdev: delay.SecondsToDuration(stats.Stdev(total) / 1000),
	}
	res.Overhead = res.TotalAvg - res.BaseAvg
	if res.BaseAvg > 0 {
		res.OverheadPercent = 100 * float64(res.Overhead) / float64(res.BaseAvg)
	}

	t := &Table{
		Title: "Table 5. Overheads in Simple Selection Queries",
		Header: []string{
			"Base avg (ms)", "Base stdev (ms)",
			"Total avg (ms)", "Total stdev (ms)",
			"Overhead (ms)", "Overhead (%)",
		},
		Rows: [][]string{{
			Millis(res.BaseAvg), Millis(res.BaseStdev),
			Millis(res.TotalAvg), Millis(res.TotalStdev),
			Millis(res.Overhead), fmt.Sprintf("%.1f%%", res.OverheadPercent),
		}},
		Notes: []string{
			fmt.Sprintf("%d rows, %d queries, pool %d pages, count cache %d entries, synthetic I/O cost %v/page, %d index page reads charged per selection",
				p.Rows, p.Queries, p.PoolPages, p.CountCacheSize, p.IOCost, p.IndexIO),
			"paper: base 55.17 (15.61) ms, total 66.20 (27.84) ms, overhead 11.04 ms ≈ 20%",
		},
	}
	return t, res, nil
}

// loadItems populates the items table with padded rows using multi-row
// inserts.
func loadItems(db *engine.Database, rows, payloadBytes int) error {
	if _, err := db.Exec(`CREATE TABLE items (id INT PRIMARY KEY, payload TEXT)`); err != nil {
		return err
	}
	pad := strings.Repeat("x", payloadBytes)
	const batch = 500
	for lo := 0; lo < rows; lo += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO items VALUES ")
		for i := lo; i < lo+batch && i < rows; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, '%s')", i, pad)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			return err
		}
	}
	return db.Flush()
}

// spin returns a function that busy-waits for d; busy-waiting is steadier
// than time.Sleep at sub-millisecond granularity.
func spin(d time.Duration) func() {
	if d <= 0 {
		return func() {}
	}
	return func() {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
		}
	}
}
