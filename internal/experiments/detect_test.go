package experiments

import (
	"testing"
	"time"
)

// testSybilDetectionParams shrinks the experiment to test scale: a 608-
// object catalogue with a grace wide enough that legitimate Zipf readers
// (~25 distinct tuples each) stay under the candidate floor.
func testSybilDetectionParams() SybilDetectionParams {
	p := DefaultSybilDetectionParams()
	p.Scale = 20
	p.Ks = []int{1, 4, 16}
	p.Grace = 0.15
	p.LegitUsers = 8
	p.LegitQueries = 40
	return p
}

func TestSybilDetectionCollapsesAdvantage(t *testing.T) {
	p := testSybilDetectionParams()
	res, err := SybilDetection(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != len(p.Ks) {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	for i, k := range p.Ks {
		// Without detection the k-identity adversary keeps its near-1/k
		// advantage over the sequential baseline.
		if k > 1 {
			if limit := res.BaselineWall / time.Duration(k/2); res.NoDetectWall[i] > limit {
				t.Errorf("k=%d no-detect wall %v, want < %v (≈baseline/k)",
					k, res.NoDetectWall[i], limit)
			}
		}
		// With detection the advantage collapses: the coalition's wall
		// time stays at least half the single-identity baseline (the
		// acceptance bar; in practice the surcharge puts it far above).
		if res.DetectWall[i] < res.BaselineWall/2 {
			t.Errorf("k=%d detect wall %v < 0.5×baseline %v — advantage survived",
				k, res.DetectWall[i], res.BaselineWall)
		}
	}
	// Coalition attribution recovers (most of) the union coverage even
	// though each identity holds only a 1/k shard plus the sample.
	last := len(p.Ks) - 1
	if res.UnionCoverage[last] < 0.6 {
		t.Errorf("k=%d union coverage %.3f, want ≥ 0.6 via coalition attribution",
			p.Ks[last], res.UnionCoverage[last])
	}
	if res.PerIdentityCoverage[last] >= res.UnionCoverage[last] {
		t.Errorf("per-identity coverage %.3f not below union %.3f at k=%d",
			res.PerIdentityCoverage[last], res.UnionCoverage[last], p.Ks[last])
	}
	// Legitimate readers are collateral-free: median delay within 5% of
	// the detection-off median.
	if res.LegitMedianOn > res.LegitMedianOff+res.LegitMedianOff/20 {
		t.Errorf("legit median %v with detection vs %v off — more than 5%% collateral",
			res.LegitMedianOn, res.LegitMedianOff)
	}
}
