package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/delay"
	"repro/internal/ratelimit"
	"repro/internal/trace"
)

// SybilParams configures the §2.4 parallel-attack analysis. The paper
// argues in prose that a registration throttle of one identity per t
// renders parallelism moot when t is comparable to the single-identity
// extraction delay; this experiment quantifies the claim on the learned
// Calgary-shaped defense.
type SybilParams struct {
	Scale       int
	Cap         time.Duration
	CapFraction float64
	// Ks are the identity counts evaluated.
	Ks   []int
	Seed int64
}

// DefaultSybilParams returns the paper-scale configuration.
func DefaultSybilParams() SybilParams {
	return SybilParams{
		Scale: 1, Cap: 10 * time.Second, CapFraction: 0.1,
		Ks:   []int{1, 4, 16, 64, 256},
		Seed: 2004,
	}
}

// SybilAnalysis builds the learned Calgary-shaped defense, then prices
// parallel extraction at several identity counts under three regimes: no
// registration throttle, a modest throttle, and the §2.4 neutralizing
// throttle t = dtotal/4.
func SybilAnalysis(p SybilParams) (*Table, error) {
	cal := CalgaryParams{Scale: p.Scale, Cap: p.Cap, CapFraction: p.CapFraction, Seed: p.Seed}
	tr, err := calgaryTrace("sybil", cal)
	if err != nil {
		return nil, err
	}
	tracker, err := learnTracker(tr, 1)
	if err != nil {
		return nil, err
	}
	beta, err := delay.TuneBeta(cal.objects(), trace.CalgaryAlpha, tracker.MaxCount(), p.Cap, p.CapFraction)
	if err != nil {
		return nil, err
	}
	pol, err := delay.NewPopularity(delay.PopularityConfig{
		N: cal.objects(), Alpha: trace.CalgaryAlpha, Beta: beta, Cap: p.Cap,
	}, tracker)
	if err != nil {
		return nil, err
	}
	gate, err := delay.NewGate(pol, noSleepClock{}, nil)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, cal.objects())
	for i := range ids {
		ids[i] = uint64(i)
	}
	seq, err := adversary.Sequential(gate, ids)
	if err != nil {
		return nil, err
	}
	neutral := ratelimit.RegistrationIntervalToNeutralize(seq.TotalDelay)
	modest := time.Hour

	t := &Table{
		Title: "§2.4 analysis: parallel (Sybil) extraction wall time vs identity count",
		Header: []string{
			"Identities", "No throttle (h)",
			fmt.Sprintf("1 id/%v (h)", modest),
			fmt.Sprintf("1 id/%s h — neutralizing (h)", Hours(neutral)),
		},
	}
	for _, k := range p.Ks {
		rNone, err := adversary.Parallel(gate, ids, k, 0)
		if err != nil {
			return nil, err
		}
		rModest, err := adversary.Parallel(gate, ids, k, modest)
		if err != nil {
			return nil, err
		}
		rNeutral, err := adversary.Parallel(gate, ids, k, neutral)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			Hours(rNone.WallTime), Hours(rModest.WallTime), Hours(rNeutral.WallTime),
		})
	}
	kStar, best := ratelimit.OptimalParallelism(seq.TotalDelay, neutral)
	t.Notes = append(t.Notes,
		fmt.Sprintf("single-identity extraction: %s hours over %d tuples", Hours(seq.TotalDelay), len(ids)),
		fmt.Sprintf("under the neutralizing throttle the optimal attack (k*=%d) still takes %s hours ≥ the sequential cost — parallelism is moot", kStar, Hours(best)))
	return t, nil
}

// StorefrontParams configures the storefront-relay coverage experiment.
type StorefrontParams struct {
	// N is the catalogue size.
	N int
	// Alphas are the customer-workload skews evaluated.
	Alphas []float64
	// Queries is the customer traffic volume relayed.
	Queries int
	Seed    int64
}

// DefaultStorefrontParams returns the default configuration.
func DefaultStorefrontParams() StorefrontParams {
	return StorefrontParams{
		N:       trace.CalgaryObjects,
		Alphas:  []float64{0.0, 1.0, 1.5, 2.0},
		Queries: 725_091,
		Seed:    9,
	}
}

// StorefrontCoverage measures what fraction of the catalogue a
// storefront accumulates by relaying legitimate customer traffic, per
// workload skew. The §2.4 storefront attack only sees what customers ask
// for; under realistic skew the long tail never arrives.
func StorefrontCoverage(p StorefrontParams) (*Table, error) {
	if p.N < 1 || p.Queries < 1 {
		return nil, fmt.Errorf("experiments: bad storefront params %+v", p)
	}
	t := &Table{
		Title:  "§2.4 analysis: storefront relay coverage after a year of customer traffic",
		Header: []string{"Customer workload α", "Queries relayed", "Catalogue coverage"},
	}
	quoter := zeroQuoter{}
	for _, alpha := range p.Alphas {
		rep, err := adversary.Storefront(quoter, p.N, alpha, p.Queries, p.Seed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", alpha),
			fmt.Sprintf("%d", rep.QueriesForwarded),
			fmt.Sprintf("%.1f%%", 100*rep.Coverage),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("catalogue of %d objects; low-skew customers eventually cover everything, but the sharper the skew the larger the tail that never arrives", p.N))
	return t, nil
}

// noSleepClock quotes without sleeping.
type noSleepClock struct{}

func (noSleepClock) Now() time.Time                                      { return time.Unix(0, 0) }
func (noSleepClock) Sleep(_ time.Duration)                               {}
func (noSleepClock) SleepCtx(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// zeroQuoter prices everything at zero — storefront coverage does not
// depend on delay.
type zeroQuoter struct{}

func (zeroQuoter) Quote(ids ...uint64) time.Duration { return 0 }
