package experiments

import (
	"testing"
)

// testShardedSybilParams mirrors testSybilDetectionParams at 1/20 scale
// over a 4-shard cluster.
func testShardedSybilParams() ShardedSybilParams {
	p := DefaultShardedSybilParams()
	p.Scale = 20
	p.Ks = []int{1, 4, 16}
	p.Grace = 0.15
	p.LegitUsers = 8
	p.LegitQueries = 40
	return p
}

func TestShardedSybilExchangeRestoresSurcharge(t *testing.T) {
	p := testShardedSybilParams()
	res, err := ShardedSybilDetection(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != len(p.Ks) {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	last := len(p.Ks) - 1

	// Exchange off, the shard rotation is a working evasion: each shard
	// sees under-grace coverage of the largest coalition's identities, no
	// surcharge lands, and the k-way advantage survives (wall well below
	// the sequential baseline).
	if res.OffUnionCoverage[last] >= p.Grace {
		t.Errorf("off-mode shard coverage %.3f >= grace %.2f — rotation failed to dilute",
			res.OffUnionCoverage[last], p.Grace)
	}
	if res.OffWall[last] >= res.BaselineWall {
		t.Errorf("off-mode k=%d wall %v >= baseline %v — evasion should have kept the advantage",
			p.Ks[last], res.OffWall[last], res.BaselineWall)
	}

	// Exchange on, the merged sketches restore the global view: the
	// coalition pays >= 20x the single-identity baseline (the acceptance
	// bar; measured ~39x, on par with the single-node detector).
	if res.OnWall[last] < 20*res.BaselineWall {
		t.Errorf("on-mode k=%d wall %v < 20x baseline %v — exchange did not restore the surcharge",
			p.Ks[last], res.OnWall[last], res.BaselineWall)
	}
	if res.OnUnionCoverage[last] < 0.9 {
		t.Errorf("on-mode merged coverage %.3f, want >= 0.9 after exchange + coalition attribution",
			res.OnUnionCoverage[last])
	}

	// The sharded on-cost stays within 2x of the single-node detector on
	// the same workload — distributing the detector costs the defense at
	// most a factor of two, not its teeth.
	sp := testSybilDetectionParams()
	single, err := SybilDetection(sp)
	if err != nil {
		t.Fatal(err)
	}
	singleWall := single.DetectWall[len(sp.Ks)-1]
	if res.OnWall[last] < singleWall/2 {
		t.Errorf("sharded on-cost %v < half the single-node cost %v",
			res.OnWall[last], singleWall)
	}
	if res.OnWall[last] > 2*singleWall {
		t.Errorf("sharded on-cost %v > 2x the single-node cost %v",
			res.OnWall[last], singleWall)
	}

	// Legitimate readers pinned to their hash shard see no collateral:
	// median delay within 5% of detection-off.
	if res.LegitMedianOn > res.LegitMedianOff+res.LegitMedianOff/20 {
		t.Errorf("legit median %v with sharded detection vs %v off — more than 5%% collateral",
			res.LegitMedianOn, res.LegitMedianOff)
	}
}

func TestShardedSybilParamValidation(t *testing.T) {
	p := testShardedSybilParams()
	p.Shards = 1
	if _, err := ShardedSybilDetection(p); err == nil {
		t.Error("Shards=1 accepted")
	}
	p = testShardedSybilParams()
	p.ExchangeEvery = 0
	if _, err := ShardedSybilDetection(p); err == nil {
		t.Error("ExchangeEvery=0 accepted")
	}
}
