package experiments

import (
	"strings"
	"testing"
)

func TestBarsLinear(t *testing.T) {
	out := bars([]float64{10, 5, 0, 1}, 10)
	if out[0] != strings.Repeat("#", 10) {
		t.Fatalf("max bar = %q", out[0])
	}
	if out[1] != strings.Repeat("#", 5) {
		t.Fatalf("half bar = %q", out[1])
	}
	if out[2] != "" {
		t.Fatalf("zero bar = %q", out[2])
	}
	if out[3] != "#" {
		t.Fatalf("trace bar = %q", out[3])
	}
}

func TestBarsAllZero(t *testing.T) {
	out := bars([]float64{0, 0}, 5)
	if out[0] != "" || out[1] != "" {
		t.Fatalf("zero series = %v", out)
	}
	// Width clamp.
	if got := bars([]float64{1}, 0); got[0] != "#" {
		t.Fatalf("clamped = %v", got)
	}
}

func TestLogBarsSpanOrders(t *testing.T) {
	out := logBars([]float64{1, 100, 10000}, 21)
	l0, l1, l2 := len(out[0]), len(out[1]), len(out[2])
	if l0 >= l1 || l1 >= l2 {
		t.Fatalf("log bars not increasing: %d, %d, %d", l0, l1, l2)
	}
	// Log spacing is even for even exponent steps.
	if (l1-l0)-(l2-l1) > 1 || (l2-l1)-(l1-l0) > 1 {
		t.Fatalf("log spacing uneven: %d, %d, %d", l0, l1, l2)
	}
	// Zeros render empty.
	out2 := logBars([]float64{0, 10}, 10)
	if out2[0] != "" || out2[1] == "" {
		t.Fatalf("zero handling: %v", out2)
	}
	// Constant series renders full bars without division by zero.
	out3 := logBars([]float64{5, 5}, 10)
	if len(out3[0]) != 10 || len(out3[1]) != 10 {
		t.Fatalf("constant series: %v", out3)
	}
}

func TestAddBarColumn(t *testing.T) {
	tab := &Table{
		Title:  "x",
		Header: []string{"a"},
		Rows:   [][]string{{"1"}, {"2"}},
	}
	addBarColumn(tab, []float64{1, 2}, 8, false)
	if len(tab.Header) != 2 {
		t.Fatalf("header = %v", tab.Header)
	}
	if len(tab.Rows[0]) != 2 || tab.Rows[1][1] != strings.Repeat("#", 8) {
		t.Fatalf("rows = %v", tab.Rows)
	}
}
