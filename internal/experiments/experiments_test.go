package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// testCalgaryParams runs the Calgary experiments at 1/20 scale.
func testCalgaryParams() CalgaryParams {
	p := DefaultCalgaryParams()
	p.Scale = 20
	return p
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"T\n", "a", "bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if Millis(1500*time.Microsecond) != "1.5000" {
		t.Fatal(Millis(1500 * time.Microsecond))
	}
	if Hours(90*time.Minute) != "1.50" {
		t.Fatal(Hours(90 * time.Minute))
	}
	if WeeksStr(7*24*time.Hour) != "1.0" {
		t.Fatal(WeeksStr(7 * 24 * time.Hour))
	}
	if SecondsStr(1500*time.Millisecond) != "1.50" {
		t.Fatal(SecondsStr(1500 * time.Millisecond))
	}
}

func TestFig1ShowsSkew(t *testing.T) {
	tab, err := Fig1(testCalgaryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Frequencies strictly ordered and heavily skewed: rank 1 ≫ rank 10.
	first := atoiOrFail(t, tab.Rows[0][1])
	last := atoiOrFail(t, tab.Rows[9][1])
	if first < 5*last {
		t.Fatalf("rank 1 freq %d not ≫ rank 10 freq %d", first, last)
	}
}

func atoiOrFail(t *testing.T, s string) int {
	t.Helper()
	var n int
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestTable1Shape(t *testing.T) {
	tab, rows, err := Table1(testCalgaryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Median user delay ≈ 0 ms (paper: 0.0).
		if r.MedianDelay > 5*time.Millisecond {
			t.Errorf("size %d: median %v not ≈0", r.N, r.MedianDelay)
		}
		// Adversary within [80%, 100%] of N·cap.
		maxPossible := time.Duration(r.N) * 10 * time.Second
		if r.AdversaryDelay < maxPossible*8/10 || r.AdversaryDelay > maxPossible {
			t.Errorf("size %d: adversary %v vs max %v", r.N, r.AdversaryDelay, maxPossible)
		}
		// Monotone growth with N.
		if i > 0 && r.AdversaryDelay <= rows[i-1].AdversaryDelay {
			t.Error("adversary delay not growing with N")
		}
	}
}

func TestTable2Shape(t *testing.T) {
	_, rows, err := Table2(testCalgaryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	p := testCalgaryParams()
	n := p.objects()
	for i, r := range rows {
		maxPossible := time.Duration(n) * r.Cap
		if r.AdversaryDelay > maxPossible {
			t.Errorf("cap %v: adversary %v exceeds N·cap %v", r.Cap, r.AdversaryDelay, maxPossible)
		}
		// Adversary delay should be a large fraction of the ceiling —
		// larger for small caps (more ranks capped).
		frac := float64(r.AdversaryDelay) / float64(maxPossible)
		if frac < 0.5 {
			t.Errorf("cap %v: adversary only %.2f of ceiling", r.Cap, frac)
		}
		if i > 0 {
			if r.AdversaryDelay <= rows[i-1].AdversaryDelay {
				t.Error("adversary delay not growing with cap")
			}
			prevFrac := float64(rows[i-1].AdversaryDelay) / float64(time.Duration(n)*rows[i-1].Cap)
			if frac > prevFrac+1e-9 {
				t.Errorf("ceiling fraction should fall as cap grows: %.3f then %.3f", prevFrac, frac)
			}
		}
	}
}

func TestTable3Shape(t *testing.T) {
	_, rows, err := Table3(testCalgaryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Median rises with decay (weakly monotone; allow tiny noise at the
	// flat head).
	if rows[len(rows)-1].MedianDelay <= rows[0].MedianDelay {
		t.Errorf("median did not rise with decay: %v → %v",
			rows[0].MedianDelay, rows[len(rows)-1].MedianDelay)
	}
	// Adversary rises toward the ceiling with decay and stays below it.
	p := testCalgaryParams()
	ceiling := time.Duration(p.objects()) * p.Cap
	if rows[len(rows)-1].AdversaryDelay < rows[0].AdversaryDelay {
		t.Error("adversary delay fell with decay")
	}
	for _, r := range rows {
		if r.AdversaryDelay > ceiling {
			t.Errorf("decay %v: adversary above ceiling", r.DecayRate)
		}
		if r.AdversaryDelay < ceiling/2 {
			t.Errorf("decay %v: adversary %v below half ceiling %v", r.DecayRate, r.AdversaryDelay, ceiling)
		}
	}
}

func TestFig2Fig3SkewContrast(t *testing.T) {
	p := DefaultBoxOfficeParams()
	f2, err := Fig2(p)
	if err != nil {
		t.Fatal(err)
	}
	f3, err := Fig3(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Rows) != 10 || len(f3.Rows) != 10 {
		t.Fatalf("rows: %d, %d", len(f2.Rows), len(f3.Rows))
	}
	ratio := func(tab *Table) float64 {
		first := parseFloat(t, tab.Rows[0][1])
		last := parseFloat(t, tab.Rows[9][1])
		return first / last
	}
	annual, weekly := ratio(f2), ratio(f3)
	if weekly <= annual {
		t.Fatalf("weekly skew %.1f not sharper than annual %.1f", weekly, annual)
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	var frac, div float64 = 0, 1
	inFrac := false
	for _, c := range s {
		switch {
		case c == '.':
			inFrac = true
		case c >= '0' && c <= '9':
			if inFrac {
				frac = frac*10 + float64(c-'0')
				div *= 10
			} else {
				v = v*10 + float64(c-'0')
			}
		default:
			t.Fatalf("not a float: %q", s)
		}
	}
	return v + frac/div
}

func TestTable4Shape(t *testing.T) {
	_, rows, err := Table4(DefaultBoxOfficeParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	// On this fast-shifting workload decay lowers the median (see the
	// divergence note on Table4): strong decay must beat no decay by a
	// wide margin, and the decayed medians must be small in absolute
	// terms.
	first, last := rows[0], rows[len(rows)-1]
	if float64(last.MedianDelay) > float64(first.MedianDelay)/5 {
		t.Errorf("decay did not lower median: %v → %v", first.MedianDelay, last.MedianDelay)
	}
	if last.MedianDelay > 5*time.Millisecond {
		t.Errorf("high-decay median %v not small", last.MedianDelay)
	}
	// Adversary approaches the ceiling at high decay and never exceeds it.
	ceiling := time.Duration(634) * 10 * time.Second
	if last.AdversaryDelay > ceiling {
		t.Fatalf("adversary above ceiling")
	}
	if float64(last.AdversaryDelay) < 0.9*float64(ceiling) {
		t.Errorf("high-decay adversary %v below 90%% of ceiling %v", last.AdversaryDelay, ceiling)
	}
	if float64(first.AdversaryDelay) < 0.75*float64(ceiling) {
		t.Errorf("no-decay adversary %v below 75%% of ceiling %v", first.AdversaryDelay, ceiling)
	}
	// Monotone rise across the sweep.
	for i := 1; i < len(rows); i++ {
		if rows[i].AdversaryDelay < rows[i-1].AdversaryDelay {
			t.Error("adversary delay fell with decay")
		}
	}
}

func testDynamicParams() DynamicParams {
	p := DefaultDynamicParams()
	p.N = 5000
	return p
}

func TestDynamicSweepShapes(t *testing.T) {
	fig4, fig5, fig6, rows, err := DynamicSweep(testDynamicParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(fig4.Rows) != 10 || len(fig5.Rows) != 10 || len(fig6.Rows) != 10 {
		t.Fatal("figure row counts")
	}
	first, last := rows[0], rows[len(rows)-1]
	// Fig 4: median rises with skew by orders of magnitude.
	if float64(last.MedianDelay) < 100*float64(first.MedianDelay) {
		t.Errorf("median barely rose: %v → %v", first.MedianDelay, last.MedianDelay)
	}
	// Fig 5: adversary delay rises by orders of magnitude.
	if float64(last.AdversaryDelay) < 1000*float64(first.AdversaryDelay) {
		t.Errorf("adversary barely rose: %v → %v", first.AdversaryDelay, last.AdversaryDelay)
	}
	// Fig 6: staleness near-total at modest skew, falling at high skew.
	if first.StaleFraction < 0.8 {
		t.Errorf("low-skew staleness = %v, want ≈1", first.StaleFraction)
	}
	if last.StaleFraction > first.StaleFraction/2 {
		t.Errorf("staleness did not fall: %v → %v", first.StaleFraction, last.StaleFraction)
	}
}

func TestDynamicSweepValidation(t *testing.T) {
	p := testDynamicParams()
	p.N = 0
	if _, _, _, _, err := DynamicSweep(p); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestTable5Overhead(t *testing.T) {
	p := DefaultOverheadParams(t.TempDir())
	// Shrink for test speed; keep the I/O-bound character.
	p.Rows = 3000
	p.Queries = 40
	p.IOCost = 100 * time.Microsecond
	tab, res, err := Table5(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatal("table shape")
	}
	if res.BaseAvg <= 0 || res.TotalAvg <= 0 {
		t.Fatalf("non-positive timings: %+v", res)
	}
	if res.TotalAvg < res.BaseAvg {
		t.Fatalf("scheme faster than base: %+v", res)
	}
	// Overhead modest: the paper reports 20%; allow a generous band but
	// fail if the scheme multiplies the query cost.
	if res.OverheadPercent > 150 {
		t.Fatalf("overhead %.1f%% is not modest", res.OverheadPercent)
	}
}

func TestTable5Validation(t *testing.T) {
	p := DefaultOverheadParams(t.TempDir())
	p.Rows = 0
	if _, _, err := Table5(p); err == nil {
		t.Fatal("rows=0 accepted")
	}
}
