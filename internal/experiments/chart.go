package experiments

import (
	"math"
	"strings"
)

// bars renders values as ASCII bars of at most width characters, scaled
// linearly from zero to the maximum value. It gives the Fig-style
// experiments chart-like output in a terminal.
func bars(values []float64, width int) []string {
	if width < 1 {
		width = 1
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make([]string, len(values))
	for i, v := range values {
		n := 0
		if max > 0 && v > 0 {
			n = int(math.Round(v / max * float64(width)))
			if n == 0 {
				n = 1 // visible trace for nonzero values
			}
		}
		out[i] = strings.Repeat("#", n)
	}
	return out
}

// logBars renders values on a log scale, for series spanning orders of
// magnitude (the paper's Figs 4 and 5 use log axes).
func logBars(values []float64, width int) []string {
	logs := make([]float64, len(values))
	var min, max float64
	first := true
	for i, v := range values {
		if v <= 0 {
			logs[i] = math.Inf(-1)
			continue
		}
		logs[i] = math.Log10(v)
		if first || logs[i] < min {
			min = logs[i]
		}
		if first || logs[i] > max {
			max = logs[i]
		}
		first = false
	}
	out := make([]string, len(values))
	span := max - min
	for i, l := range logs {
		if math.IsInf(l, -1) {
			out[i] = ""
			continue
		}
		frac := 1.0
		if span > 0 {
			frac = (l - min) / span
		}
		n := 1 + int(math.Round(frac*float64(width-1)))
		out[i] = strings.Repeat("#", n)
	}
	return out
}

// addBarColumn appends a bar column to a table given the numeric series
// backing one of its columns.
func addBarColumn(t *Table, values []float64, width int, logScale bool) {
	var rendered []string
	if logScale {
		rendered = logBars(values, width)
	} else {
		rendered = bars(values, width)
	}
	t.Header = append(t.Header, "")
	for i := range t.Rows {
		if i < len(rendered) {
			t.Rows[i] = append(t.Rows[i], rendered[i])
		}
	}
}
