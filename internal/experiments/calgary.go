package experiments

import (
	"fmt"
	"time"

	"repro/internal/counters"
	"repro/internal/delay"
	"repro/internal/trace"
	"repro/internal/zipf"
)

// CalgaryParams configures the §4.1 experiments (Fig 1, Tables 1–3).
type CalgaryParams struct {
	// Scale divides object and request counts for fast test runs;
	// 1 = paper scale (12,179 objects, 725,091 requests).
	Scale int
	// Cap is dmax (paper: 10 s).
	Cap time.Duration
	// CapFraction is the fraction of ranks left below the cap when β is
	// tuned; ~0.1 reproduces the paper's "nearly 90% of the maximum
	// possible delay" adversary outcome.
	CapFraction float64
	Seed        int64
}

// DefaultCalgaryParams returns the paper-scale configuration.
func DefaultCalgaryParams() CalgaryParams {
	return CalgaryParams{Scale: 1, Cap: 10 * time.Second, CapFraction: 0.1, Seed: 2004}
}

func (p CalgaryParams) objects() int  { return max(trace.CalgaryObjects/p.Scale, 50) }
func (p CalgaryParams) requests() int { return max(trace.CalgaryRequests/p.Scale, 5000) }

// learnTracker replays a trace into a fresh tracker (no delay policy
// involved) and returns it.
func learnTracker(tr *trace.Trace, decayRate float64) (*counters.Decayed, error) {
	tracker, err := counters.NewDecayed(decayRate)
	if err != nil {
		return nil, err
	}
	for _, id := range tr.Requests {
		tracker.Observe(id)
	}
	return tracker, nil
}

// calgaryTrace synthesizes the two-regime Calgary-shaped workload at the
// configured scale.
func calgaryTrace(name string, p CalgaryParams) (*trace.Trace, error) {
	return trace.SyntheticWeb(name, p.objects(), p.requests(),
		trace.CalgaryAlpha, trace.CalgaryTailAlpha, trace.CalgaryHeadRanks, p.Seed)
}

// Fig1 reproduces Figure 1: the rank-frequency head of the Calgary-shaped
// trace, plus the power-law skew fitted to the top ranks.
func Fig1(p CalgaryParams) (*Table, error) {
	tr, err := calgaryTrace("calgary", p)
	if err != nil {
		return nil, err
	}
	return Fig1FromTrace(tr)
}

// Fig1FromTrace runs the Figure 1 analysis on an arbitrary trace — pass
// the real Calgary trace (converted with cmd/tracegen's format) to
// reproduce the paper's figure exactly.
func Fig1FromTrace(tr *trace.Trace) (*Table, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	_, counts := tr.TopK(10)
	t := &Table{
		Title:  "Fig 1. Request Distribution: Calgary-shaped trace (top 10 by rank)",
		Header: []string{"Rank", "Frequency (requests)"},
	}
	fc := make([]float64, len(counts))
	for i, c := range counts {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", c)})
		fc[i] = float64(c)
	}
	addBarColumn(t, fc, 40, false)
	if alpha, err := zipf.EstimateAlpha(fc, 10); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf("fitted Zipf parameter over top 10: alpha ≈ %.2f (paper: ≈1.5)", alpha))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d objects, %d requests", tr.NumObjects, len(tr.Requests)))
	return t, nil
}

// Table1Row is one measured row of Table 1.
type Table1Row struct {
	N              int
	MedianDelay    time.Duration
	AdversaryDelay time.Duration
}

// Table1 reproduces Table 1 (Delays in Synthetic Traces): Calgary-shaped
// workloads over databases of increasing size. The request volume stays
// at the trace's 725,091, so larger databases have ever-longer unvisited
// tails — which is exactly why the adversary's total delay approaches
// N·dmax (2, 8, and 17 weeks in the paper).
func Table1(p CalgaryParams) (*Table, []Table1Row, error) {
	sizes := []int{100_000, 500_000, 1_000_000}
	t := &Table{
		Title:  "Table 1. Delays in Synthetic Traces",
		Header: []string{"Database Size (tuples)", "Median User Delay (ms)", "Adversary Delay (weeks)"},
	}
	var rows []Table1Row
	for _, size := range sizes {
		n := max(size/p.Scale, 100)
		reqs := p.requests()
		tr, err := trace.Synthetic("t1", n, reqs, trace.CalgaryAlpha, p.Seed)
		if err != nil {
			return nil, nil, err
		}
		tracker, err := learnTracker(tr, 1)
		if err != nil {
			return nil, nil, err
		}
		fmax := tracker.MaxCount()
		beta, err := delay.TuneBeta(n, trace.CalgaryAlpha, fmax, p.Cap, p.CapFraction)
		if err != nil {
			return nil, nil, err
		}
		pol, err := delay.NewPopularity(delay.PopularityConfig{
			N: n, Alpha: trace.CalgaryAlpha, Beta: beta, Cap: p.Cap,
		}, tracker)
		if err != nil {
			return nil, nil, err
		}
		// Median legitimate delay: quote a fresh sample from the same
		// workload distribution against the learned state.
		d, err := zipf.New(n, trace.CalgaryAlpha)
		if err != nil {
			return nil, nil, err
		}
		s := zipf.NewSampler(d, p.Seed+1)
		probe := 10001
		delays := make([]float64, probe)
		for i := range delays {
			delays[i] = pol.Delay(uint64(s.Next() - 1)).Seconds()
		}
		row := Table1Row{
			N:              n,
			MedianDelay:    delay.SecondsToDuration(medianSeconds(delays)),
			AdversaryDelay: pol.ExtractionDelay(),
		}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.N),
			fmt.Sprintf("%.1f", float64(row.MedianDelay)/float64(time.Millisecond)),
			WeeksStr(row.AdversaryDelay),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cap %v, %d learning requests per size (paper: 0.0 ms / 2, 8, 17 weeks)", p.Cap, p.requests()))
	return t, rows, nil
}

// Table2Row is one measured row of Table 2.
type Table2Row struct {
	Cap            time.Duration
	AdversaryDelay time.Duration
}

// Table2 reproduces Table 2 (Scaling Maximum Delay Costs): the adversary
// delay on the Calgary-shaped dataset as the cap sweeps 0.1 s → 100 s,
// with β held at its 10 s tuning. "Raising the cap has no impact on the
// median delay, but directly affects the total delay imposed on an
// adversary."
func Table2(p CalgaryParams) (*Table, []Table2Row, error) {
	caps := []time.Duration{
		100 * time.Millisecond, time.Second, 10 * time.Second, 100 * time.Second,
	}
	tr, err := calgaryTrace("t2", p)
	if err != nil {
		return nil, nil, err
	}
	tracker, err := learnTracker(tr, 1)
	if err != nil {
		return nil, nil, err
	}
	fmax := tracker.MaxCount()
	beta, err := delay.TuneBeta(p.objects(), trace.CalgaryAlpha, fmax, p.Cap, p.CapFraction)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Table 2. Scaling Maximum Delay Costs",
		Header: []string{"Cap (sec)", "Adversary Delay (hours)"},
	}
	var rows []Table2Row
	for _, cap := range caps {
		pol, err := delay.NewPopularity(delay.PopularityConfig{
			N: p.objects(), Alpha: trace.CalgaryAlpha, Beta: beta, Cap: cap,
		}, tracker)
		if err != nil {
			return nil, nil, err
		}
		row := Table2Row{Cap: cap, AdversaryDelay: pol.ExtractionDelay()}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", cap.Seconds()),
			Hours(row.AdversaryDelay),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d objects, beta tuned at cap 10 s (paper: 0.33, 3.16, 30.17, 282.70 hours)", p.objects()))
	return t, rows, nil
}

// Table3Row is one measured row of Table 3.
type Table3Row struct {
	DecayRate      float64
	MedianDelay    time.Duration
	AdversaryDelay time.Duration
}

// Table3 reproduces Table 3 (Delays in Calgary Trace): the full online
// replay — nothing known at the start, the distribution learned along the
// way — across six per-request decay rates. Stronger decay shrinks the
// effective history, which shrinks fmax, which raises every delay: median
// delays climb, and adversary delay creeps toward the N·dmax ceiling.
func Table3(p CalgaryParams) (*Table, []Table3Row, error) {
	decays := []float64{1.000000, 1.000001, 1.000002, 1.000005, 1.000010, 1.000020}
	// Decay rates are per-request exponents; scaled-down replays have
	// fewer requests, so amplify the rates to keep the effective history
	// window a comparable fraction of the trace.
	if p.Scale > 1 {
		for i := range decays {
			decays[i] = 1 + (decays[i]-1)*float64(p.Scale)
		}
	}
	tr, err := calgaryTrace("t3", p)
	if err != nil {
		return nil, nil, err
	}
	return Table3FromTrace(tr, p, decays)
}

// Table3FromTrace runs the Table 3 decay sweep on an arbitrary trace —
// pass the real Calgary trace to reproduce the paper's table exactly.
func Table3FromTrace(tr *trace.Trace, p CalgaryParams, decays []float64) (*Table, []Table3Row, error) {
	if err := tr.Validate(); err != nil {
		return nil, nil, err
	}
	n := tr.NumObjects
	// β tuned once, from a no-decay pre-pass, then held fixed across
	// rates — the decay sweep must change only the learning dynamics.
	pre, err := learnTracker(tr, 1)
	if err != nil {
		return nil, nil, err
	}
	beta, err := delay.TuneBeta(n, trace.CalgaryAlpha, pre.MaxCount(), p.Cap, p.CapFraction)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title:  "Table 3. Delays in Calgary Trace (online learning, decay sweep)",
		Header: []string{"Decay Rate", "Median User Delay (ms)", "Adversary Delay (hours)"},
	}
	var rows []Table3Row
	for _, rate := range decays {
		res, err := ReplayPopularity(tr, rate, delay.PopularityConfig{
			N: n, Alpha: trace.CalgaryAlpha, Beta: beta, Cap: p.Cap,
		}, false)
		if err != nil {
			return nil, nil, err
		}
		row := Table3Row{DecayRate: rate, MedianDelay: res.MedianDelay, AdversaryDelay: res.AdversaryDelay}
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.6f", rate),
			Millis(row.MedianDelay),
			Hours(row.AdversaryDelay),
		})
	}
	maxPossible := time.Duration(n) * p.Cap
	t.Notes = append(t.Notes,
		fmt.Sprintf("maximum possible adversary delay %s hours; paper: median 15.4→2241.6 ms, adversary 30.17→33.61 hours of a 33.8-hour max", Hours(maxPossible)))
	return t, rows, nil
}
