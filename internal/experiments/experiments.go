// Package experiments reproduces every table and figure of the paper's
// evaluation (§4). Each experiment has paper-scale defaults and a Scale
// knob so the test suite can run the same code at reduced size; the
// extractbench command and the bench_test.go benchmarks run them at full
// scale and print rows in the paper's format.
//
// The experiment ↔ module map lives in DESIGN.md; measured-vs-paper
// numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/counters"
	"repro/internal/delay"
	"repro/internal/trace"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry methodology remarks printed under the table.
	Notes []string
}

// Print renders the table in aligned plain text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Formatting helpers matching the paper's units.

// Millis renders a duration in milliseconds.
func Millis(d time.Duration) string {
	return fmt.Sprintf("%.4f", float64(d)/float64(time.Millisecond))
}

// Hours renders a duration in hours.
func Hours(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Hours())
}

// WeeksStr renders a duration in weeks.
func WeeksStr(d time.Duration) string {
	return fmt.Sprintf("%.1f", d.Hours()/(24*7))
}

// SecondsStr renders a duration in seconds.
func SecondsStr(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

// medianSeconds returns the median of xs (seconds); 0 for empty.
func medianSeconds(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// ReplayResult is the outcome of replaying a trace through a popularity
// policy: the learned tracker plus the per-request delays a legitimate
// user would have experienced.
type ReplayResult struct {
	// MedianDelay is the median per-request delay over the replay.
	MedianDelay time.Duration
	// AdversaryDelay is the post-replay full-extraction delay (Eq 6
	// under the learned counts).
	AdversaryDelay time.Duration
	// MaxPossible is N·cap, the delay ceiling for a full extraction.
	MaxPossible time.Duration
	// Requests is the number of requests replayed.
	Requests int
}

// ReplayPopularity replays tr through a fresh tracker with the given
// decay rate and a popularity policy with the given parameters, learning
// the distribution online exactly as §2.3 describes: each request is
// quoted the delay implied by the counts so far, then counted.
//
// weeklyDecay selects the §4.2 cadence (decay applied at week boundaries)
// instead of the §4.1 per-request cadence.
func ReplayPopularity(tr *trace.Trace, decayRate float64, cfg delay.PopularityConfig, weeklyDecay bool) (ReplayResult, error) {
	tracker, err := counters.NewDecayed(decayRate)
	if err != nil {
		return ReplayResult{}, err
	}
	pol, err := delay.NewPopularity(cfg, tracker)
	if err != nil {
		return ReplayResult{}, err
	}
	delays := make([]float64, 0, len(tr.Requests))
	week := 0
	for i, id := range tr.Requests {
		if weeklyDecay && tr.WeekOf != nil && tr.WeekOf[i] != week {
			for w := week; w < tr.WeekOf[i]; w++ {
				tracker.Tick()
			}
			week = tr.WeekOf[i]
		}
		delays = append(delays, pol.Delay(id).Seconds())
		if weeklyDecay {
			tracker.ObserveNoDecay(id)
		} else {
			tracker.Observe(id)
		}
	}
	return ReplayResult{
		MedianDelay:    delay.SecondsToDuration(medianSeconds(delays)),
		AdversaryDelay: pol.ExtractionDelay(),
		MaxPossible:    time.Duration(cfg.N) * cfg.Cap,
		Requests:       len(tr.Requests),
	}, nil
}
