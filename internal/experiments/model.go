package experiments

import (
	"fmt"
	"time"

	"repro/internal/counters"
	"repro/internal/delay"
	"repro/internal/zipf"
)

// ModelParams configures the analysis-validation experiment: the §2.1
// closed forms against the learned implementation.
type ModelParams struct {
	// N is the dataset size.
	N int
	// Requests is the learning workload length per skew.
	Requests int
	// Skews are the workload Zipf parameters compared.
	Skews []float64
	// Beta and Cap parameterize the policy identically for both sides.
	Beta float64
	Cap  time.Duration
	Seed int64
}

// DefaultModelParams returns a configuration spanning the paper's three
// α regimes (α < 1, α = 1, α > 1).
func DefaultModelParams() ModelParams {
	return ModelParams{
		N:        50_000,
		Requests: 2_000_000,
		Skews:    []float64{0.8, 1.0, 1.5},
		Beta:     2.0,
		Cap:      10 * time.Second,
		Seed:     77,
	}
}

// ModelValidation compares, for each workload skew, the closed-form
// adversary/median ratio (Eq 4/7 via delay.Model) with the ratio measured
// from a tracker that learned the same distribution from samples. Close
// agreement means the implementation realizes the analysis; the ratio's
// growth across the α regimes is the paper's central claim.
func ModelValidation(p ModelParams) (*Table, error) {
	if p.N < 2 || p.Requests < 1 {
		return nil, fmt.Errorf("experiments: bad model params %+v", p)
	}
	t := &Table{
		Title: "Analysis validation: Eq 1–7 closed forms vs learned implementation",
		Header: []string{
			"Workload α", "Analytic dtotal (h)", "Measured dtotal (h)",
			"Analytic dtotal/dmed", "Measured dtotal/dmed",
		},
	}
	for _, alpha := range p.Skews {
		dist, err := zipf.New(p.N, alpha)
		if err != nil {
			return nil, err
		}
		sampler := zipf.NewSampler(dist, p.Seed)
		tracker, err := counters.NewDecayed(1)
		if err != nil {
			return nil, err
		}
		for i := 0; i < p.Requests; i++ {
			tracker.ObserveNoDecay(uint64(sampler.Next() - 1))
		}

		// Same fmax on both sides: the learned count of the hottest item.
		fmax := tracker.MaxCount()
		model := delay.Model{N: p.N, Alpha: alpha, Beta: p.Beta, Fmax: fmax, Cap: p.Cap}
		if err := model.Validate(); err != nil {
			return nil, err
		}
		analyticTotal := model.TotalExtractionSeconds()
		analyticRatio, err := model.Ratio()
		if err != nil {
			return nil, err
		}

		pol, err := delay.NewPopularity(delay.PopularityConfig{
			N: p.N, Alpha: alpha, Beta: p.Beta, Cap: p.Cap,
		}, tracker)
		if err != nil {
			return nil, err
		}
		measuredTotal := pol.ExtractionDelay().Seconds()
		// Measured median: quote fresh draws from the same workload.
		probe := zipf.NewSampler(dist, p.Seed+1)
		delays := make([]float64, 20001)
		for i := range delays {
			// Float seconds: hot-tuple delays can be sub-nanosecond.
			delays[i] = pol.DelaySeconds(uint64(probe.Next() - 1))
		}
		med := medianSeconds(delays)
		measuredRatio := 0.0
		if med > 0 {
			measuredRatio = measuredTotal / med
		}

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", alpha),
			fmt.Sprintf("%.2f", analyticTotal/3600),
			fmt.Sprintf("%.2f", measuredTotal/3600),
			fmt.Sprintf("%.3g", analyticRatio),
			fmt.Sprintf("%.3g", measuredRatio),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("N=%d, β=%g, cap=%v, %d learning requests per skew", p.N, p.Beta, p.Cap, p.Requests),
		"analytic medians use the ideal Zipf median rank; measured medians sample the learned policy — agreement within a small factor validates Eq 1–7")
	return t, nil
}
