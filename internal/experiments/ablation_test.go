package experiments

import (
	"testing"
	"time"
)

func TestAblationsProduceTable(t *testing.T) {
	p := DefaultAblationParams(t.TempDir())
	p.IDs = 2000
	p.Ops = 5000
	p.IOCost = 5 * time.Microsecond
	tab, err := Ablations(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 4 || row[1] == "" || row[2] == "" {
			t.Fatalf("malformed row %v", row)
		}
	}
}

func TestAblationsValidation(t *testing.T) {
	p := DefaultAblationParams(t.TempDir())
	p.IDs = 0
	if _, err := Ablations(p); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestAblationInflationBeatsRescanDecisively(t *testing.T) {
	p := DefaultAblationParams(t.TempDir())
	p.IDs = 5000
	p.Ops = 20000
	kept, err := timeDecayInflation(p)
	if err != nil {
		t.Fatal(err)
	}
	straw := timeDecayNaive(p)
	if straw < 20*kept {
		t.Fatalf("inflation %v vs rescan %v: expected ≥20x", kept, straw)
	}
}

func TestAblationTreapBeatsSortDecisively(t *testing.T) {
	p := DefaultAblationParams(t.TempDir())
	p.IDs = 5000
	p.Ops = 20000
	kept := timeRankTree(p)
	straw := timeRankSort(p)
	if straw < 20*kept {
		t.Fatalf("treap %v vs sort %v: expected ≥20x", kept, straw)
	}
}
